// Ablation (DESIGN.md §4): what does TRIC's trie *clustering* actually buy?
// Runs TRIC and TRIC+ against variants with prefix sharing disabled (every
// covering path gets private trie nodes and views) and with the covering-
// path decomposition replaced by one path per edge. The gaps isolate the
// contributions of §4.1 Step 1 (path covering) and Step 2 (trie sharing).

#include "bench/harness.h"

#include "tric/tric_engine.h"

namespace {

using namespace gstream;
using namespace gstream::bench;

CellResult RunVariant(const tric::TricEngine::Options& options,
                      const std::vector<QueryPattern>& queries,
                      const UpdateStream& stream, double budget_seconds,
                      const BenchOptions& opts) {
  CellResult cell;
  tric::TricEngine engine(options);
  cell.index_stats = IndexQueries(engine, queries);
  RunConfig config;
  config.budget_seconds = budget_seconds;
  config.batch_window = opts.batch;
  config.batch_threads = opts.threads;
  RunStats stats = RunStream(engine, stream, config);
  cell.ms_per_update = stats.MsecPerUpdate();
  cell.partial = stats.timed_out;
  cell.memory_bytes = stats.memory_bytes;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Ablation", "TRIC design choices: trie sharing and path covering",
              opts);

  const size_t edges = opts.Pick(8'000, 100'000);
  const size_t num_queries = opts.Pick(500, 5000);
  std::printf("dataset=snb  |GE|=%zu  |QDB|=%zu  l=5  sigma=25%%  o=35%%\n\n", edges,
              num_queries);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);
  workload::QuerySet qs =
      workload::GenerateQueries(w, BaselineQueryConfig(opts, num_queries));

  struct Variant {
    const char* label;
    tric::TricEngine::Options options;
  };
  const Variant variants[] = {
      {"TRIC", {false, true, false}},
      {"TRIC-nocluster", {false, false, false}},
      {"TRIC-peredge", {false, true, true}},
      {"TRIC+", {true, true, false}},
      {"TRIC+-nocluster", {true, false, false}},
      {"TRIC+-peredge", {true, true, true}},
  };

  TextTable table({"variant", "ms/update", "index ms/query", "memory MB"});
  for (const auto& v : variants) {
    CellResult cell =
        RunVariant(v.options, qs.queries, w.stream, opts.cell_budget_seconds * 3, opts);
    table.AddRow({v.label, FormatMs(cell.ms_per_update, cell.partial),
                  TextTable::Num(cell.index_stats.MsecPerQuery(), 4),
                  TextTable::Num(
                      static_cast<double>(cell.memory_bytes) / (1024.0 * 1024.0), 1)});
    std::printf("  %s done\n", v.label);
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
