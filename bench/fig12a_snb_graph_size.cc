// Reproduces paper Fig. 12(a): query answering time vs graph size on the
// SNB dataset, all seven algorithms.
//
// Paper configuration: |GE| = 10K..100K edges, |QDB| = 5K, l = 5, σ = 25%,
// o = 35%. Expected shape: TRIC/TRIC+ lowest and nearly flat; INV slowest;
// INC between INV and GraphDB; cached (+) variants faster than their bases.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  RunGrowthFigure("Fig 12(a)", "SNB: answering time vs graph size (all engines)",
                  "snb", opts.Pick(10'000, 100'000), 10, opts.Pick(2500, 5000),
                  PaperEngineKinds(), opts);
  return 0;
}
