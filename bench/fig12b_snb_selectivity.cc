// Reproduces paper Fig. 12(b): query answering time when varying the
// selectivity σ (the fraction of the query set that is ultimately
// satisfied) over 10%..30%, SNB, |GE| = 100K, |QDB| = 5K at paper scale.
//
// To isolate the σ effect from query-set variance, one query set is
// generated at the highest σ and lower values are produced by *poisoning* a
// random subset of its planted queries (swapping one literal for a phantom
// entity that never appears in the stream) — structures stay fixed, only
// satisfiability changes.

#include <algorithm>

#include "bench/harness.h"

#include "common/rng.h"

namespace {

using namespace gstream;

/// Returns `q` with one literal vertex replaced by a fresh phantom literal
/// (or the first vertex literalized when the query has none).
QueryPattern Poison(const QueryPattern& q, StringInterner& interner,
                    uint64_t& phantom_counter) {
  int victim = -1;
  for (uint32_t v = 0; v < q.NumVertices(); ++v) {
    if (!q.vertex(v).is_var) {
      victim = static_cast<int>(v);
      break;
    }
  }
  if (victim < 0) victim = 0;
  VertexId phantom =
      interner.Intern("sweep_phantom_" + std::to_string(phantom_counter++));

  QueryPattern out;
  for (uint32_t v = 0; v < q.NumVertices(); ++v) {
    if (static_cast<int>(v) == victim) {
      out.AddLiteral(phantom);
    } else if (q.vertex(v).is_var) {
      out.AddVariable(q.vertex(v).var_name);
    } else {
      out.AddLiteral(q.vertex(v).literal);
    }
  }
  for (uint32_t e = 0; e < q.NumEdges(); ++e)
    out.AddEdge(q.edge(e).src, q.edge(e).label, q.edge(e).dst);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 12(b)", "SNB: influence of selectivity sigma", opts);

  const size_t edges = opts.Pick(6'000, 100'000);
  const size_t num_queries = opts.Pick(400, 5000);
  const double sigmas[] = {0.10, 0.15, 0.20, 0.25, 0.30};
  std::printf("dataset=snb  |GE|=%zu  |QDB|=%zu  l=5  o=35%%\n\n", edges, num_queries);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);
  workload::QueryGenConfig qc = BaselineQueryConfig(opts, num_queries);
  qc.selectivity = sigmas[4];  // generate once at the top of the sweep
  workload::QuerySet base = workload::GenerateQueries(w, qc);

  std::vector<size_t> planted_idx;
  for (size_t i = 0; i < base.queries.size(); ++i)
    if (base.planted[i]) planted_idx.push_back(i);
  Rng shuffle_rng(opts.seed * 7 + 3);
  std::shuffle(planted_idx.begin(), planted_idx.end(), shuffle_rng.engine());

  std::vector<std::string> header{"sigma"};
  for (EngineKind kind : PaperEngineKinds()) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));

  uint64_t phantom_counter = 0;
  for (double sigma : sigmas) {
    // Keep the first sigma*|QDB| planted queries; poison the rest.
    const size_t keep = static_cast<size_t>(
        sigma * static_cast<double>(num_queries) + 0.5);
    std::vector<QueryPattern> queries;
    queries.reserve(base.queries.size());
    std::vector<bool> poison(base.queries.size(), false);
    for (size_t k = keep; k < planted_idx.size(); ++k) poison[planted_idx[k]] = true;
    for (size_t i = 0; i < base.queries.size(); ++i) {
      queries.push_back(poison[i] ? Poison(base.queries[i], *w.interner, phantom_counter)
                                  : base.queries[i]);
    }

    std::vector<std::string> row{TextTable::Num(sigma * 100, 0) + "%"};
    for (EngineKind kind : PaperEngineKinds()) {
      CellResult cell = RunCell(kind, queries, w.stream, opts.cell_budget_seconds, opts.batch, opts.threads);
      row.push_back(FormatMs(cell.ms_per_update, cell.partial));
      BenchLine("fig12b")
          .Add("engine", EngineKindName(kind))
          .Add("sigma", sigma)
          .Add("ms_per_update", cell.ms_per_update)
          .Add("updates_per_sec", cell.UpdatesPerSec())
          .Add("updates_applied", static_cast<uint64_t>(cell.updates_applied))
          .Add("final_join_passes", cell.final_join_passes)
          .Emit();
    }
    table.AddRow(std::move(row));
    std::printf("  sigma=%.0f%% done\n", sigma * 100);
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
