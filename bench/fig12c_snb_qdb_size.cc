// Reproduces paper Fig. 12(c): query answering time when varying the query
// database size |QDB| (1K, 3K, 5K at paper scale; the paper's y-axis is
// logarithmic). TRIC's trie clustering amortizes growth in |QDB|; the
// per-query baselines degrade roughly linearly.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 12(c)", "SNB: influence of query database size |QDB|", opts);

  const size_t edges = opts.Pick(6'000, 100'000);
  const size_t sizes_quick[] = {100, 300, 500};
  const size_t sizes_paper[] = {1000, 3000, 5000};
  std::printf("dataset=snb  |GE|=%zu  l=5  sigma=25%%  o=35%%\n\n", edges);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);

  std::vector<std::string> header{"|QDB|"};
  for (EngineKind kind : PaperEngineKinds()) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));

  // One query set at the largest size; smaller cells use nested prefixes so
  // the sweep isolates |QDB| from query-set variance.
  const size_t max_qdb = opts.full ? sizes_paper[2] : sizes_quick[2];
  workload::QuerySet qs =
      workload::GenerateQueries(w, BaselineQueryConfig(opts, max_qdb));

  for (int i = 0; i < 3; ++i) {
    const size_t qdb = opts.full ? sizes_paper[i] : sizes_quick[i];
    std::vector<QueryPattern> slice(qs.queries.begin(), qs.queries.begin() + qdb);
    std::vector<std::string> row{std::to_string(qdb)};
    for (EngineKind kind : PaperEngineKinds()) {
      CellResult cell = RunCell(kind, slice, w.stream, opts.cell_budget_seconds, opts.batch, opts.threads);
      row.push_back(FormatMs(cell.ms_per_update, cell.partial));
    }
    table.AddRow(std::move(row));
    std::printf("  |QDB|=%zu done\n", qdb);
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
