// Reproduces paper Fig. 12(d): query answering time when varying the
// average query size l over {3, 5, 7, 9} edges per pattern. Longer queries
// mean longer covering paths and deeper joins; the paper reports every
// engine slowing with l, the baselines dramatically so.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 12(d)", "SNB: influence of average query size l", opts);

  const size_t edges = opts.Pick(6'000, 100'000);
  const size_t num_queries = opts.Pick(400, 5000);
  const double sizes[] = {3, 5, 7, 9};
  std::printf("dataset=snb  |GE|=%zu  |QDB|=%zu  sigma=25%%  o=35%%\n\n", edges,
              num_queries);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);

  std::vector<std::string> header{"l"};
  for (EngineKind kind : PaperEngineKinds()) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));

  for (double l : sizes) {
    workload::QueryGenConfig qc = BaselineQueryConfig(opts, num_queries);
    qc.avg_size = l;
    workload::QuerySet qs = workload::GenerateQueries(w, qc);
    std::vector<std::string> row{TextTable::Num(l, 0)};
    for (EngineKind kind : PaperEngineKinds()) {
      CellResult cell =
          RunCell(kind, qs.queries, w.stream, opts.cell_budget_seconds, opts.batch, opts.threads);
      row.push_back(FormatMs(cell.ms_per_update, cell.partial));
    }
    table.AddRow(std::move(row));
    std::printf("  l=%.0f done\n", l);
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
