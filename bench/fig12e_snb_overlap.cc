// Reproduces paper Fig. 12(e): query answering time when varying the query
// overlap o over 25%..65%. More shared sub-patterns let TRIC cluster more
// covering paths into shared trie prefixes, so its curve should flatten or
// drop with o while the no-sharing baselines barely benefit.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 12(e)", "SNB: influence of query overlap o", opts);

  const size_t edges = opts.Pick(6'000, 100'000);
  const size_t num_queries = opts.Pick(400, 5000);
  const double overlaps[] = {0.25, 0.35, 0.45, 0.55, 0.65};
  std::printf("dataset=snb  |GE|=%zu  |QDB|=%zu  l=5  sigma=25%%\n\n", edges,
              num_queries);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);

  std::vector<std::string> header{"o"};
  for (EngineKind kind : PaperEngineKinds()) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));

  for (double o : overlaps) {
    workload::QueryGenConfig qc = BaselineQueryConfig(opts, num_queries);
    qc.overlap = o;
    workload::QuerySet qs = workload::GenerateQueries(w, qc);
    std::vector<std::string> row{TextTable::Num(o * 100, 0) + "%"};
    for (EngineKind kind : PaperEngineKinds()) {
      CellResult cell =
          RunCell(kind, qs.queries, w.stream, opts.cell_budget_seconds, opts.batch, opts.threads);
      row.push_back(FormatMs(cell.ms_per_update, cell.partial));
    }
    table.AddRow(std::move(row));
    std::printf("  o=%.0f%% done\n", o * 100);
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
