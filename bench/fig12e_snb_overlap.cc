// Reproduces paper Fig. 12(e): query answering time when varying the query
// overlap o over 25%..65%. More shared sub-patterns let TRIC cluster more
// covering paths into shared trie prefixes, so its curve should flatten or
// drop with o while the no-sharing baselines barely benefit.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 12(e)", "SNB: influence of query overlap o", opts);

  const size_t edges = opts.Pick(6'000, 100'000);
  const size_t num_queries = opts.Pick(400, 5000);
  const double overlaps[] = {0.25, 0.35, 0.45, 0.55, 0.65};
  std::printf("dataset=snb  |GE|=%zu  |QDB|=%zu  l=5  sigma=25%%\n\n", edges,
              num_queries);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);

  std::vector<std::string> header{"o"};
  for (EngineKind kind : PaperEngineKinds()) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));

  for (double o : overlaps) {
    workload::QueryGenConfig qc = BaselineQueryConfig(opts, num_queries);
    qc.overlap = o;
    workload::QuerySet qs = workload::GenerateQueries(w, qc);
    std::vector<std::string> row{TextTable::Num(o * 100, 0) + "%"};
    for (EngineKind kind : PaperEngineKinds()) {
      CellResult cell =
          RunCell(kind, qs.queries, w.stream, opts.cell_budget_seconds, opts.batch,
                  opts.threads, opts.shared_finalize);
      row.push_back(FormatMs(cell.ms_per_update, cell.partial));
      // The trajectory cell of the shared-finalize lever (DESIGN.md §9):
      // high overlap means many queries share covering-path signatures, so
      // final_join_passes should collapse toward #distinct signatures per
      // window and shared_finalize_groups counts the fan-outs. `partial`
      // marks budget-clipped cells — their updates/s is not comparable.
      BenchLine("fig12e_overlap")
          .Add("dataset", std::string("snb"))
          .Add("engine", std::string(EngineKindName(kind)))
          .Add("exec", opts.batch > 1
                           ? "batch" + std::to_string(opts.batch)
                           : std::string("per-update"))
          .Add("finalize", std::string(opts.shared_finalize ? "shared" : "per-query"))
          .Add("overlap", o)
          .Add("updates_per_sec", cell.UpdatesPerSec())
          .Add("updates_applied", static_cast<uint64_t>(cell.updates_applied))
          .Add("partial", static_cast<uint64_t>(cell.partial ? 1 : 0))
          .Add("final_join_passes", cell.final_join_passes)
          .Add("shared_finalize_groups", cell.shared_finalize_groups)
          .Emit();
    }
    table.AddRow(std::move(row));
    std::printf("  o=%.0f%% done\n", o * 100);
    std::fflush(stdout);
  }
  std::printf("\n");
  PrintTable(table, opts);

  // Multi-tenant duplication cell (DESIGN.md §9): the generated sets above
  // are text-deduplicated, so whole-query signature collisions are rare and
  // the covering-path sharing lever is the trie's prefix clustering. The
  // production regime the shared-finalize planner targets is different: many
  // tenants registering the *same* pattern. |QDB|/T distinct patterns, each
  // registered by T tenants, batched windows — shared finalization should
  // collapse final_join_passes by ~T and lift updates/s accordingly, with
  // byte-identical results (the A/B pair below is the measured proof).
  {
    const size_t tenants = 4;
    const size_t tenant_batch = opts.batch > 1 ? opts.batch : 64;
    workload::QueryGenConfig qc = BaselineQueryConfig(opts, num_queries / tenants);
    qc.overlap = 0.35;
    workload::QuerySet qs = workload::GenerateQueries(w, qc);
    std::vector<QueryPattern> dup;
    dup.reserve(qs.queries.size() * tenants);
    for (size_t t = 0; t < tenants; ++t)
      dup.insert(dup.end(), qs.queries.begin(), qs.queries.end());

    std::printf("multi-tenant cell: %zu distinct patterns x %zu tenants, "
                "batch=%zu\n",
                qs.queries.size(), tenants, tenant_batch);
    TextTable ttable({"engine", "finalize", "ms/upd", "final joins", "shared"});
    for (EngineKind kind : PaperEngineKinds()) {
      if (kind == EngineKind::kGraphDb) continue;  // no final-join stage
      for (const bool shared : {true, false}) {
        CellResult cell = RunCell(kind, dup, w.stream, opts.cell_budget_seconds,
                                  tenant_batch, opts.threads, shared);
        ttable.AddRow({EngineKindName(kind), shared ? "shared" : "per-query",
                       FormatMs(cell.ms_per_update, cell.partial),
                       std::to_string(cell.final_join_passes),
                       std::to_string(cell.shared_finalize_groups)});
        BenchLine("fig12e_tenants")
            .Add("dataset", std::string("snb"))
            .Add("engine", std::string(EngineKindName(kind)))
            .Add("exec", "batch" + std::to_string(tenant_batch))
            .Add("finalize", std::string(shared ? "shared" : "per-query"))
            .Add("tenants", static_cast<uint64_t>(tenants))
            .Add("updates_per_sec", cell.UpdatesPerSec())
            .Add("updates_applied", static_cast<uint64_t>(cell.updates_applied))
            .Add("partial", static_cast<uint64_t>(cell.partial ? 1 : 0))
            .Add("final_join_passes", cell.final_join_passes)
            .Add("shared_finalize_groups", cell.shared_finalize_groups)
            .Emit();
      }
    }
    std::printf("\n");
    PrintTable(ttable, opts);
  }
  return 0;
}
