// Reproduces paper Fig. 12(f): large-graph SNB run (100K..1M edges at paper
// scale). The paper reports INV/INV+ timing out at |GE| ≈ 210K and INC/INC+
// at ≈ 310K (asterisks); the same asterisks appear here at quick scale when
// an engine exhausts its budget.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  RunGrowthFigure("Fig 12(f)", "SNB large: inverted-index baselines time out",
                  "snb", opts.Pick(40'000, 1'000'000), 10, opts.Pick(2500, 5000),
                  PaperEngineKinds(), opts);
  return 0;
}
