// Reproduces paper Fig. 13(a): XL SNB run (1M..10M edges at paper scale),
// survivors only — TRIC, TRIC+ and the graph database. The paper reports
// TRIC timing out at |GE| ≈ 5.47M and Neo4j at ≈ 4.3M while TRIC+ finishes.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  RunGrowthFigure(
      "Fig 13(a)", "SNB XL: TRIC vs TRIC+ vs GraphDB at scale", "snb",
      opts.Pick(100'000, 10'000'000), 10, opts.Pick(2500, 5000),
      {EngineKind::kTric, EngineKind::kTricPlus, EngineKind::kGraphDb}, opts);
  return 0;
}
