// Reproduces paper Fig. 13(b): query indexing time in msec per query when
// inserting successive 1K-query batches into a growing query database
// (1K..5K at paper scale; the paper's y-axis is logarithmic). The first
// batch is slower for every engine (cold data structures); later batches
// benefit from already-present shared entries.

#include "bench/harness.h"

#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 13(b)", "SNB: query indexing time per batch", opts);

  const size_t edges = opts.Pick(6'000, 100'000);
  const size_t batch = opts.Pick(200, 1000);
  const size_t num_batches = 5;
  std::printf("dataset=snb  |GE|=%zu  batch=%zu queries x %zu batches\n\n", edges,
              batch, num_batches);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);
  workload::QuerySet qs =
      workload::GenerateQueries(w, BaselineQueryConfig(opts, batch * num_batches));

  std::vector<std::string> header{"|QDB| after batch"};
  for (EngineKind kind : PaperEngineKinds()) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));

  // One engine instance per algorithm; batches stream into the same engine
  // so clustering effects across batches are visible.
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));

  for (size_t b = 0; b < num_batches; ++b) {
    std::vector<std::string> row{std::to_string((b + 1) * batch)};
    for (auto& engine : engines) {
      WallTimer timer;
      for (size_t i = b * batch; i < (b + 1) * batch; ++i)
        engine->AddQuery(static_cast<QueryId>(i), qs.queries[i]);
      row.push_back(TextTable::Num(timer.ElapsedMillis() / batch, 4));
    }
    table.AddRow(std::move(row));
  }
  PrintTable(table, opts);
  return 0;
}
