// Reproduces paper Fig. 13(c): memory requirements (MB) of every algorithm
// after indexing the query set and processing the stream, for all three
// datasets. Expected shape: base algorithms lowest; the "+" (caching)
// variants slightly higher; the graph database — which retains the whole
// graph — highest.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig 13(c)", "Memory requirements per algorithm and dataset", opts);

  const size_t edges = opts.Pick(5'000, 100'000);
  const size_t num_queries = opts.Pick(300, 5000);
  const double budget = opts.full ? opts.budget_seconds : 10.0;
  const char* datasets[] = {"snb", "taxi", "bio"};
  std::printf("|GE|=%zu  |QDB|=%zu  l=5  sigma=25%%  o=35%%\n", edges, num_queries);
  std::printf("cells: MB after the run; '*' = stream not finished in budget\n\n");

  std::vector<std::string> header{"algorithm", "SNB", "TAXI", "BioGRID"};
  TextTable table(std::move(header));

  std::vector<std::vector<std::string>> cells(
      PaperEngineKinds().size(), std::vector<std::string>(3));
  for (int d = 0; d < 3; ++d) {
    workload::Workload w = MakeWorkload(datasets[d], edges, opts.seed);
    workload::QuerySet qs =
        workload::GenerateQueries(w, BaselineQueryConfig(opts, num_queries));
    size_t e = 0;
    for (EngineKind kind : PaperEngineKinds()) {
      CellResult cell = RunCell(kind, qs.queries, w.stream, budget, opts.batch, opts.threads);
      double mb = static_cast<double>(cell.memory_bytes) / (1024.0 * 1024.0);
      cells[e][d] = TextTable::Num(mb, 1) + "MB" + (cell.partial ? "*" : "");
      ++e;
    }
    std::printf("  %s done\n", datasets[d]);
    std::fflush(stdout);
  }
  std::printf("\n");
  size_t e = 0;
  for (EngineKind kind : PaperEngineKinds()) {
    table.AddRow({EngineKindName(kind), cells[e][0], cells[e][1], cells[e][2]});
    ++e;
  }
  PrintTable(table, opts);
  return 0;
}
