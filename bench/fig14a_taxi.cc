// Reproduces paper Fig. 14(a): the NYC TAXI dataset (100K..1M edges at paper
// scale), all seven algorithms. Paper: INV/INV+ time out at ≈ 210K/300K
// edges, INC/INC+ at ≈ 220K/360K; TRIC improves on the graph database by
// ≈ 60% and TRIC+ by ≈ 82%.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  RunGrowthFigure("Fig 14(a)", "TAXI: answering time vs graph size (all engines)",
                  "taxi", opts.Pick(20'000, 1'000'000), 10, opts.Pick(2500, 5000),
                  PaperEngineKinds(), opts);
  return 0;
}
