// Reproduces paper Fig. 14(b): the BioGRID stress test (10K..100K edges at
// paper scale). One vertex class and one edge label mean every update
// affects the whole query database; the paper reports INV/INV+/INC timing
// out at ≈ 50K edges and INC+ at ≈ 60K while TRIC/TRIC+ survive.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  RunGrowthFigure("Fig 14(b)", "BioGRID stress: every update affects all queries",
                  "bio", opts.Pick(4'000, 100'000), 10, opts.Pick(1000, 5000),
                  PaperEngineKinds(), opts);
  return 0;
}
