// Reproduces paper Fig. 14(c): BioGRID at 100K..1M edges, survivors only —
// TRIC, TRIC+ and the graph database. Paper: Neo4j times out at ≈ 550K
// edges; TRIC/TRIC+ finish the full stream.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  RunGrowthFigure(
      "Fig 14(c)", "BioGRID large: TRIC vs TRIC+ vs GraphDB", "bio",
      opts.Pick(30'000, 1'000'000), 10, opts.Pick(1000, 5000),
      {EngineKind::kTric, EngineKind::kTricPlus, EngineKind::kGraphDb}, opts);
  return 0;
}
