// Query-churn bench (beyond the paper's figures): the dynamic query
// database the problem definition (§3.2) assumes — continuous queries
// register and expire while the stream runs. A base QDB is indexed up
// front; every K updates the oldest query is removed and a fresh one
// registered, holding |QDB| steady. Reported per engine, separately:
// indexing time (initial + churn adds), removal/GC time, and answering
// time — plus memory after the run, which the refcounted shared-view GC
// must keep in line with the steady-state QDB instead of growing with
// every query ever registered.

#include "bench/harness.h"

using namespace gstream;
using namespace gstream::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("fig15-churn", "query churn: add/remove queries mid-stream (SNB)",
              opts);

  const size_t total_updates = opts.Pick(20'000, 500'000);
  const size_t base_queries = opts.Pick(60, 300);
  const size_t pool_queries = opts.Pick(120, 600);
  const size_t churn_every = opts.Pick(100, 500);
  std::printf(
      "dataset=snb  |GE|=%zu  base |QDB|=%zu  churn: -1/+1 every %zu updates "
      "(%zu fresh queries)\n\n",
      total_updates, base_queries, churn_every, pool_queries);

  workload::Workload w = MakeWorkload("snb", total_updates, opts.seed);
  workload::QuerySet base =
      workload::GenerateQueries(w, BaselineQueryConfig(opts, base_queries));
  workload::QueryGenConfig pool_cfg = BaselineQueryConfig(opts, pool_queries);
  pool_cfg.seed = opts.seed * 2654435761ull + 101;  // disjoint from the base set
  workload::QuerySet pool = workload::GenerateQueries(w, pool_cfg);

  TextTable table({"engine", "index ms/q", "add ms/q", "remove ms/q",
                   "answer ms/upd", "upd/s", "MB end", "|QDB| end"});
  for (EngineKind kind : PaperEngineKinds()) {
    std::printf("  running %-8s ...", EngineKindName(kind));
    std::fflush(stdout);
    ChurnCellResult cell =
        RunChurnCell(kind, base.queries, pool.queries, w.stream, churn_every,
                     opts.budget_seconds, opts.batch, opts.threads,
                     opts.shared_finalize, opts.route_index);
    const MixedRunStats& s = cell.stats;
    const double upd_per_sec =
        s.answer_millis <= 0.0 ? 0.0 : s.updates_applied * 1000.0 / s.answer_millis;
    std::printf(
        " %zu/%zu updates, +%zu/-%zu queries, %.0f upd/s, %.1f MB%s\n",
        s.updates_applied, total_updates, s.queries_added, s.queries_removed,
        upd_per_sec, static_cast<double>(s.memory_bytes) / (1024.0 * 1024.0),
        s.timed_out ? " *" : "");

    table.AddRow({EngineKindName(kind),
                  TextTable::Num(cell.initial_index.MsecPerQuery(), 3),
                  TextTable::Num(s.MsecPerAdd(), 3),
                  TextTable::Num(s.MsecPerRemove(), 3),
                  FormatMs(s.MsecPerUpdate(), s.timed_out),
                  TextTable::Num(upd_per_sec, 0),
                  TextTable::Num(static_cast<double>(s.memory_bytes) /
                                     (1024.0 * 1024.0),
                                 2),
                  std::to_string(cell.live_queries_end)});

    BenchLine("fig15_churn")
        .Add("dataset", std::string("snb"))
        .Add("engine", std::string(EngineKindName(kind)))
        .Add("updates_per_sec", upd_per_sec)
        .Add("index_ms_per_query", cell.initial_index.MsecPerQuery())
        .Add("add_ms_per_query", s.MsecPerAdd())
        .Add("remove_ms_per_query", s.MsecPerRemove())
        .Add("queries_added", static_cast<uint64_t>(s.queries_added))
        .Add("queries_removed", static_cast<uint64_t>(s.queries_removed))
        .Add("updates_applied", static_cast<uint64_t>(s.updates_applied))
        .Add("partial", static_cast<uint64_t>(s.timed_out ? 1 : 0))
        .Add("memory_bytes", static_cast<uint64_t>(s.memory_bytes))
        .Add("final_join_passes", cell.final_join_passes)
        .Add("shared_finalize_groups", cell.shared_finalize_groups)
        .Add("route_index", static_cast<uint64_t>(opts.route_index ? 1 : 0))
        .Emit();
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
