// Sliding-window bench (beyond the paper's figures): the taxi stream under
// a 1-hour event-time window — the geofencing deployment the temporal
// subsystem (src/time, DESIGN.md §13) targets. Every trip edge carries a
// synthetic event timestamp; the windowed runner splices the deletions the
// advancing watermark makes due into the same batch windows, so engines pay
// real retraction work in steady state instead of growing without bound.
// Reported per engine: throughput with the window on, plus the temporal
// accounting (`ingested == live + expired` is checked, not just printed).

#include <cstdlib>

#include "bench/harness.h"
#include "time/windowed_stream.h"

using namespace gstream;
using namespace gstream::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("fig16a-taxi-window",
              "1-hour sliding window over the taxi stream (event time)", opts);

  const size_t total_updates = opts.Pick(12'000, 400'000);
  const size_t num_queries = opts.Pick(40, 200);
  // Event-time shape: ~2 trips per second ⇒ the quick stream spans ~100
  // minutes, so a 1-hour window expires a large fraction mid-run.
  const uint64_t kTripsPerSecond = 2;
  const uint64_t kWindowSeconds = 3600;

  workload::Workload w = MakeWorkload("taxi", total_updates, opts.seed);
  workload::QuerySet qs =
      workload::GenerateQueries(w, BaselineQueryConfig(opts, num_queries));

  std::vector<StreamEvent> events;
  events.reserve(w.stream.size());
  for (size_t i = 0; i < w.stream.size(); ++i) {
    EdgeUpdate u = w.stream[i];
    u.ts = i / kTripsPerSecond;
    events.push_back(StreamEvent::Update(u));
  }

  temporal::WindowConfig window;
  window.policy = temporal::WindowPolicy::kTime;
  window.width = kWindowSeconds;

  std::printf(
      "dataset=taxi  |GE|=%zu  |QDB|=%zu  window=%llus  stream span=%llus\n\n",
      total_updates, qs.queries.size(),
      static_cast<unsigned long long>(kWindowSeconds),
      static_cast<unsigned long long>(total_updates / kTripsPerSecond));

  TextTable table({"engine", "answer ms/upd", "upd/s", "expired", "batches",
                   "live end", "MB end"});
  for (EngineKind kind : PaperEngineKinds()) {
    std::printf("  running %-8s ...", EngineKindName(kind));
    std::fflush(stdout);

    auto engine = CreateEngine(kind);
    engine->SetSharedFinalize(opts.shared_finalize);
    engine->SetRouteIndex(opts.route_index);
    IndexStats index = IndexQueries(*engine, qs.queries);

    RunConfig config;
    config.budget_seconds = opts.budget_seconds;
    config.batch_window = opts.batch;
    config.batch_threads = opts.threads;
    const temporal::WindowedRunStats s =
        temporal::RunWindowedStream(*engine, events, window, config);

    // The accounting gate: every ingested edge is live, expired, or
    // explicitly removed — nothing leaks, nothing double-retires.
    if (s.ingested_edges !=
        s.live_edges + s.expired_edges + s.removed_edges) {
      std::fprintf(stderr,
                   "FATAL %s: ingested=%llu != live=%llu + expired=%llu + "
                   "removed=%llu\n",
                   EngineKindName(kind),
                   static_cast<unsigned long long>(s.ingested_edges),
                   static_cast<unsigned long long>(s.live_edges),
                   static_cast<unsigned long long>(s.expired_edges),
                   static_cast<unsigned long long>(s.removed_edges));
      return 1;
    }

    const double upd_per_sec = s.mixed.answer_millis <= 0.0
                                   ? 0.0
                                   : s.mixed.updates_applied * 1000.0 /
                                         s.mixed.answer_millis;
    std::printf(" %zu ops (%llu expired in %llu batches), %.0f upd/s%s\n",
                s.mixed.updates_applied,
                static_cast<unsigned long long>(s.expired_edges),
                static_cast<unsigned long long>(s.expiry_batches), upd_per_sec,
                s.mixed.timed_out ? " *" : "");

    table.AddRow({EngineKindName(kind),
                  FormatMs(s.mixed.MsecPerUpdate(), s.mixed.timed_out),
                  TextTable::Num(upd_per_sec, 0),
                  std::to_string(s.expired_edges),
                  std::to_string(s.expiry_batches),
                  std::to_string(s.live_edges),
                  TextTable::Num(static_cast<double>(s.mixed.memory_bytes) /
                                     (1024.0 * 1024.0),
                                 2)});

    BenchLine("fig16a_taxi_window")
        .Add("dataset", std::string("taxi"))
        .Add("engine", std::string(EngineKindName(kind)))
        .Add("window_policy", std::string("time"))
        .Add("window_width", kWindowSeconds)
        .Add("updates_per_sec", upd_per_sec)
        .Add("ms_per_update", s.mixed.MsecPerUpdate())
        .Add("index_ms_per_query", index.MsecPerQuery())
        .Add("updates_applied", static_cast<uint64_t>(s.mixed.updates_applied))
        .Add("ingested_edges", s.ingested_edges)
        .Add("expired_edges", s.expired_edges)
        .Add("expiry_batches", s.expiry_batches)
        .Add("live_edges", s.live_edges)
        .Add("removed_edges", s.removed_edges)
        .Add("watermark", s.watermark)
        .Add("partial", static_cast<uint64_t>(s.mixed.timed_out ? 1 : 0))
        .Add("memory_bytes", static_cast<uint64_t>(s.mixed.memory_bytes))
        .Emit();
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
