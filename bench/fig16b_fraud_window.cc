// Rolling-window fraud bench (beyond the paper's figures): layered
// money-mule chains (wire -> wire -> cashout) hidden in a background
// payment stream, matched under per-label TTLs — cashout edges age out
// faster than wires, the rolling-window regime fraud teams actually run.
// Short-lived "investigation" queries register mid-stream with a TTL and
// are auto-removed by the watermark (src/time, DESIGN.md §13), exercising
// the `expired_queries` path end to end. The temporal accounting
// (`ingested == live + expired + removed`) is checked, not just printed.

#include <cstdlib>
#include <random>

#include "bench/harness.h"
#include "query/parser.h"
#include "time/windowed_stream.h"

using namespace gstream;
using namespace gstream::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("fig16b-fraud-window",
              "money-mule chains under rolling per-label TTLs + TTL'd queries",
              opts);

  const size_t total_updates = opts.Pick(10'000, 300'000);
  const size_t num_accounts = opts.Pick(400, 4'000);
  const size_t kTxnsPerTick = 4;       // Event-time rate.
  const uint64_t kWireTtl = 600;       // Rolling window per label.
  const uint64_t kCashoutTtl = 300;
  const uint64_t kQueryTtl = 500;      // Investigation-query lifetime.
  const size_t kInvestigationEvery = total_updates / 8;

  StringInterner in;
  const LabelId wire = in.Intern("wire");
  const LabelId cashout = in.Intern("cashout");
  std::vector<VertexId> accounts;
  for (size_t i = 0; i < num_accounts; ++i)
    accounts.push_back(in.Intern("acct" + std::to_string(i)));

  // The registered pattern set: the full mule chain, its two-hop prefix and
  // suffix, and the plain hops — duplicated per "team" so signature groups
  // form (shared finalize collapses the fan-out exactly as in fig12e).
  auto parse = [&](const char* text) {
    ParseResult r = ParsePattern(text, in);
    if (!r.ok) {
      std::fprintf(stderr, "FATAL: bad pattern %s: %s\n", text, r.error.c_str());
      std::exit(1);
    }
    return r.pattern;
  };
  const std::vector<QueryPattern> shapes = {
      parse("(?a)-[wire]->(?b); (?b)-[wire]->(?c); (?c)-[cashout]->(?d)"),
      parse("(?a)-[wire]->(?b); (?b)-[wire]->(?c)"),
      parse("(?a)-[wire]->(?b); (?b)-[cashout]->(?c)"),
      parse("(?a)-[cashout]->(?b)"),
  };
  const size_t teams = opts.Pick(6, 30);

  // Background payments with injected mule chains: every ~50 transactions a
  // fresh 4-account chain fires within one tick, so the chain is alive
  // inside every label's window when the cashout lands.
  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<size_t> acct(0, accounts.size() - 1);
  std::vector<StreamEvent> events;
  events.reserve(total_updates + 64);
  size_t emitted = 0;
  while (emitted < total_updates) {
    const uint64_t ts = emitted / kTxnsPerTick;
    if (emitted % 50 == 47 && emitted + 3 <= total_updates) {
      const VertexId m1 = accounts[acct(rng)], m2 = accounts[acct(rng)],
                     m3 = accounts[acct(rng)], m4 = accounts[acct(rng)];
      for (EdgeUpdate u : {EdgeUpdate{m1, wire, m2, UpdateOp::kAdd},
                           EdgeUpdate{m2, wire, m3, UpdateOp::kAdd},
                           EdgeUpdate{m3, cashout, m4, UpdateOp::kAdd}}) {
        u.ts = ts;
        events.push_back(StreamEvent::Update(u));
        ++emitted;
      }
      continue;
    }
    EdgeUpdate u{accounts[acct(rng)], rng() % 8 == 0 ? cashout : wire,
                 accounts[acct(rng)], UpdateOp::kAdd};
    u.ts = ts;
    events.push_back(StreamEvent::Update(u));
    ++emitted;
  }

  // TTL'd investigation queries: the full chain pattern, registered at eight
  // stream positions, each auto-expiring kQueryTtl ticks later.
  const QueryId first_ttl_qid = static_cast<QueryId>(shapes.size() * teams);
  size_t investigations = 0;
  for (size_t pos = kInvestigationEvery; pos < events.size();
       pos += kInvestigationEvery) {
    events.insert(events.begin() + pos,
                  StreamEvent::Add(first_ttl_qid + investigations, shapes[0],
                                   kQueryTtl));
    ++investigations;
  }

  temporal::WindowConfig window;
  window.policy = temporal::WindowPolicy::kLabelTtl;
  window.width = kWireTtl;  // Default TTL (wire).
  window.label_ttls.push_back({cashout, kCashoutTtl});

  std::printf(
      "accounts=%zu  |GE|=%zu  |QDB|=%zu+%zu ttl'd  wire ttl=%llu  cashout "
      "ttl=%llu\n\n",
      num_accounts, events.size(), shapes.size() * teams, investigations,
      static_cast<unsigned long long>(kWireTtl),
      static_cast<unsigned long long>(kCashoutTtl));

  TextTable table({"engine", "answer ms/upd", "upd/s", "expired", "live end",
                   "q expired", "matches"});
  for (EngineKind kind : PaperEngineKinds()) {
    std::printf("  running %-8s ...", EngineKindName(kind));
    std::fflush(stdout);

    auto engine = CreateEngine(kind);
    engine->SetSharedFinalize(opts.shared_finalize);
    engine->SetRouteIndex(opts.route_index);
    std::vector<QueryPattern> base;
    for (size_t t = 0; t < teams; ++t)
      for (const QueryPattern& q : shapes) base.push_back(q);
    IndexStats index = IndexQueries(*engine, base);

    RunConfig config;
    config.budget_seconds = opts.budget_seconds;
    config.batch_window = opts.batch;
    config.batch_threads = opts.threads;
    const temporal::WindowedRunStats s =
        temporal::RunWindowedStream(*engine, events, window, config);

    if (s.ingested_edges !=
        s.live_edges + s.expired_edges + s.removed_edges) {
      std::fprintf(stderr,
                   "FATAL %s: ingested=%llu != live=%llu + expired=%llu + "
                   "removed=%llu\n",
                   EngineKindName(kind),
                   static_cast<unsigned long long>(s.ingested_edges),
                   static_cast<unsigned long long>(s.live_edges),
                   static_cast<unsigned long long>(s.expired_edges),
                   static_cast<unsigned long long>(s.removed_edges));
      return 1;
    }

    const double upd_per_sec = s.mixed.answer_millis <= 0.0
                                   ? 0.0
                                   : s.mixed.updates_applied * 1000.0 /
                                         s.mixed.answer_millis;
    std::printf(
        " %zu ops (%llu expired, %llu queries aged out), %.0f upd/s%s\n",
        s.mixed.updates_applied,
        static_cast<unsigned long long>(s.expired_edges),
        static_cast<unsigned long long>(s.expired_queries), upd_per_sec,
        s.mixed.timed_out ? " *" : "");

    table.AddRow({EngineKindName(kind),
                  FormatMs(s.mixed.MsecPerUpdate(), s.mixed.timed_out),
                  TextTable::Num(upd_per_sec, 0),
                  std::to_string(s.expired_edges),
                  std::to_string(s.live_edges),
                  std::to_string(s.expired_queries),
                  std::to_string(s.mixed.new_embeddings)});

    BenchLine("fig16b_fraud_window")
        .Add("dataset", std::string("fraud"))
        .Add("engine", std::string(EngineKindName(kind)))
        .Add("window_policy", std::string("label-ttl"))
        .Add("window_width", kWireTtl)
        .Add("updates_per_sec", upd_per_sec)
        .Add("ms_per_update", s.mixed.MsecPerUpdate())
        .Add("index_ms_per_query", index.MsecPerQuery())
        .Add("updates_applied", static_cast<uint64_t>(s.mixed.updates_applied))
        .Add("ingested_edges", s.ingested_edges)
        .Add("expired_edges", s.expired_edges)
        .Add("expiry_batches", s.expiry_batches)
        .Add("live_edges", s.live_edges)
        .Add("removed_edges", s.removed_edges)
        .Add("expired_queries", s.expired_queries)
        .Add("new_embeddings", s.mixed.new_embeddings)
        .Add("partial", static_cast<uint64_t>(s.mixed.timed_out ? 1 : 0))
        .Add("memory_bytes", static_cast<uint64_t>(s.mixed.memory_bytes))
        .Emit();
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
