// fig_scale: million-query routing (DESIGN.md §12). Scales |QDB| far past the
// paper's 5K ceiling — 10k, 100k, 1M queries — by tenant duplication: a base
// set of distinct subscriptions replicated verbatim under fresh query ids
// (`QueryGenConfig::tenants`), the realistic shape of a large multi-tenant
// deployment. Each cell measures updates/s, routed candidate work items per
// update, prefilter rejects, and engine bytes per query.
//
// The two smaller cells run an A/B against the legacy linear dispatch
// (`SetRouteIndex(false)`): the routed path must keep candidates/update flat
// (sublinear in |QDB|) while the legacy path scans every registered query per
// affecting update. The 1M cell runs routed-only — the linear path would not
// finish any prefix worth reporting within budget — and exists to show the
// index itself stays inside the bench memory budget.

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace gstream;
  using namespace gstream::bench;
  BenchOptions opts = BenchOptions::FromArgs(argc, argv);
  PrintHeader("Fig scale", "SNB: query-DB scaling via tenant duplication", opts);

  const size_t edges = opts.Pick(2'000, 20'000);
  const size_t base_queries = 100;  // distinct subscriptions per tenant
  // Routing pays off on the window-delta path; default to a window unless the
  // caller pinned one explicitly.
  const size_t batch = opts.batch > 1 ? opts.batch : 128;

  struct ScaleCell {
    size_t tenants;
    const char* name;
    bool legacy_ab;  ///< Also run the pre-index linear dispatch for speedup.
  };
  // `--tenants=N` replaces the full 10k/100k/1M sweep with one A/B cell at
  // N tenants — the smoke pass runs a cell small enough to complete inside
  // its budget (partial cells are excluded from the CI regression gate).
  std::vector<ScaleCell> cells;
  if (opts.tenants > 1) {
    cells.push_back({opts.tenants, "smoke", true});
  } else {
    cells = {{100, "10k", true}, {1000, "100k", true}, {10000, "1m", false}};
  }

  std::printf("dataset=snb  |GE|=%zu  base |QDB|=%zu  batch=%zu  l=3\n\n",
              edges, base_queries, batch);

  workload::Workload w = MakeWorkload("snb", edges, opts.seed);
  workload::QueryGenConfig qc = BaselineQueryConfig(opts, base_queries);
  // Smaller patterns than the paper baseline (l=3 vs l=5): the sweep's axis
  // is |QDB|, and the 1M cell's per-query state has to stay inside the bench
  // memory budget.
  qc.avg_size = 3.0;
  // Sparser than the paper baseline (σ=5% vs 25%): at 1M queries the
  // baseline σ would satisfy 250k subscriptions, so notification fan-out —
  // inherent output volume, identical in both modes — would mask the
  // dispatch cost this figure isolates.
  qc.selectivity = 0.05;

  const EngineKind kinds[] = {EngineKind::kTricPlus, EngineKind::kInvPlus};

  TextTable table({"|QDB|", "engine", "mode", "upd/s", "cand/upd", "rejects",
                   "B/query", "speedup"});

  for (const ScaleCell& cell : cells) {
    qc.tenants = cell.tenants;
    workload::QuerySet qs = workload::GenerateQueries(w, qc);
    const size_t qdb = qs.queries.size();
    for (EngineKind kind : kinds) {
      // The 1M cell runs on the trie engine only: one cell is enough to prove
      // the memory bound, and the recompute baselines' per-query view state
      // dominates the budget well before the routing index does.
      if (!cell.legacy_ab && kind != EngineKind::kTricPlus) continue;

      CellResult routed =
          RunCell(kind, qs.queries, w.stream, opts.cell_budget_seconds, batch,
                  opts.threads, opts.shared_finalize, /*route_index=*/true);
      const double routed_bpq =
          qdb == 0 ? 0.0 : static_cast<double>(routed.memory_bytes) / qdb;

      CellResult legacy;
      double speedup = 0.0;
      if (cell.legacy_ab) {
        legacy =
            RunCell(kind, qs.queries, w.stream, opts.cell_budget_seconds, batch,
                    opts.threads, opts.shared_finalize, /*route_index=*/false);
        if (legacy.UpdatesPerSec() > 0.0)
          speedup = routed.UpdatesPerSec() / legacy.UpdatesPerSec();
      }

      auto add_row = [&](const char* mode, const CellResult& r, double bpq,
                         double spd) {
        char upd[32], cand[32], bytes[32], spd_buf[32];
        std::snprintf(upd, sizeof(upd), "%.0f%s", r.UpdatesPerSec(),
                      r.partial ? "*" : "");
        std::snprintf(cand, sizeof(cand), "%.1f", r.CandidatesPerUpdate());
        std::snprintf(bytes, sizeof(bytes), "%.0f", bpq);
        if (spd > 0.0)
          std::snprintf(spd_buf, sizeof(spd_buf), "%.1fx", spd);
        else
          std::snprintf(spd_buf, sizeof(spd_buf), "-");
        table.AddRow({std::to_string(qdb), EngineKindName(kind), mode, upd,
                      cand, std::to_string(r.prefilter_rejects), bytes,
                      spd_buf});

        BenchLine line("fig_scale");
        line.Add("dataset", std::string("snb"))
            .Add("cell", std::string(cell.name))
            .Add("qdb", static_cast<uint64_t>(qdb))
            .Add("engine", std::string(EngineKindName(kind)))
            .Add("mode", std::string(mode))
            .Add("updates_per_sec", r.UpdatesPerSec())
            .Add("ms_per_update", r.ms_per_update)
            .Add("candidates_per_update", r.CandidatesPerUpdate())
            .Add("routed_candidates", r.routed_candidates)
            .Add("prefilter_rejects", r.prefilter_rejects)
            .Add("memory_bytes", static_cast<uint64_t>(r.memory_bytes))
            .Add("bytes_per_query", bpq)
            .Add("index_ms_per_query", r.index_stats.MsecPerQuery())
            .Add("partial", static_cast<uint64_t>(r.partial ? 1 : 0));
        if (spd > 0.0) line.Add("speedup_vs_legacy", spd);
        line.Emit();
      };

      add_row("routed", routed, routed_bpq, speedup);
      if (cell.legacy_ab) {
        const double legacy_bpq =
            qdb == 0 ? 0.0 : static_cast<double>(legacy.memory_bytes) / qdb;
        add_row("legacy", legacy, legacy_bpq, 0.0);
      }
      std::printf("  |QDB|=%zu %s done\n", qdb, EngineKindName(kind));
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  PrintTable(table, opts);
  return 0;
}
