#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "workload/bio.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace gstream {
namespace bench {

BenchOptions BenchOptions::FromArgs(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  static const char* kKnown[] = {"full",    "budget-sec", "cell-budget-sec",
                                 "seed",    "csv",        "batch",
                                 "threads", "no-shared-finalize",
                                 "no-route-index", "tenants", "help"};
  bool usage_error = false;
  for (const std::string& name : flags.Names()) {
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&](const char* k) { return name == k; }) == std::end(kKnown)) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      usage_error = true;
    }
  }
  if (usage_error || flags.Has("help")) {
    std::fprintf(stderr,
                 "bench flags: --full --budget-sec=S --cell-budget-sec=S "
                 "--seed=N --csv --batch=N --threads=N --no-shared-finalize "
                 "--no-route-index --tenants=N\n");
    std::exit(usage_error ? 2 : 0);
  }
  BenchOptions opts;
  opts.full = flags.GetBool("full", false);
  opts.shared_finalize = !flags.GetBool("no-shared-finalize", false);
  opts.route_index = !flags.GetBool("no-route-index", false);
  opts.budget_seconds =
      flags.GetDouble("budget-sec", opts.full ? 86400.0 : 8.0);
  opts.cell_budget_seconds =
      flags.GetDouble("cell-budget-sec", opts.full ? 86400.0 : 2.0);
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  opts.csv = flags.GetBool("csv", false);
  // Rejects 0/negative/non-numeric values with a clear error (exit 2).
  opts.batch = static_cast<size_t>(flags.GetPositiveInt("batch", 1));
  opts.threads = static_cast<int>(flags.GetPositiveInt("threads", 1));
  opts.tenants = static_cast<size_t>(flags.GetPositiveInt("tenants", 1));
  return opts;
}

GrowthSeries RunGrowthSeries(EngineKind kind,
                             const std::vector<QueryPattern>& queries,
                             const UpdateStream& stream,
                             const std::vector<size_t>& checkpoints,
                             double budget_seconds, size_t batch, int threads,
                             bool shared_finalize, bool route_index) {
  GrowthSeries series;
  series.kind = kind;
  series.segment_ms.assign(checkpoints.size(), std::nan(""));
  series.partial.assign(checkpoints.size(), false);

  auto engine = CreateEngine(kind);
  engine->SetSharedFinalize(shared_finalize);
  engine->SetRouteIndex(route_index);
  series.index_stats = IndexQueries(*engine, queries);

  Budget budget;
  budget.SetDeadlineAfter(budget_seconds);
  engine->set_budget(&budget);
  if (batch > 1) engine->SetBatchThreads(threads);

  size_t pos = 0;
  bool dead = false;
  WallTimer total;
  for (size_t seg = 0; seg < checkpoints.size() && !dead; ++seg) {
    const size_t seg_end = checkpoints[seg];
    const size_t seg_begin = pos;
    WallTimer seg_timer;
    while (pos < seg_end && !dead) {
      if (batch <= 1) {
        UpdateResult result = engine->ApplyUpdate(stream[pos]);
        ++pos;
        series.new_embeddings += result.new_embeddings;
        if (result.timed_out || budget.ExceededNow()) dead = true;
        continue;
      }
      const size_t n = std::min(batch, seg_end - pos);
      std::vector<UpdateResult> results =
          engine->ApplyBatch(&stream.updates()[pos], n);
      pos += results.size();
      for (const UpdateResult& r : results) {
        series.new_embeddings += r.new_embeddings;
        if (r.timed_out) dead = true;
      }
      if (results.size() < n || budget.ExceededNow()) dead = true;
    }
    const size_t processed = pos - seg_begin;
    if (processed > 0) {
      const double seg_ms = seg_timer.ElapsedMillis();
      series.answer_millis += seg_ms;
      series.segment_ms[seg] = seg_ms / processed;
      series.partial[seg] = dead && pos < seg_end;
    }
  }
  series.updates_applied = pos;
  series.memory_bytes = engine->MemoryBytes();
  series.final_join_passes = engine->final_join_passes();
  series.shared_finalize_groups = engine->shared_finalize_groups();
  series.routed_candidates = engine->routed_candidates();
  series.prefilter_rejects = engine->prefilter_rejects();
  return series;
}

CellResult RunCell(EngineKind kind, const std::vector<QueryPattern>& queries,
                   const UpdateStream& stream, double budget_seconds,
                   size_t batch, int threads, bool shared_finalize,
                   bool route_index) {
  CellResult cell;
  auto engine = CreateEngine(kind);
  engine->SetSharedFinalize(shared_finalize);
  engine->SetRouteIndex(route_index);
  cell.index_stats = IndexQueries(*engine, queries);
  RunConfig config;
  config.budget_seconds = budget_seconds;
  config.batch_window = batch;
  config.batch_threads = threads;
  RunStats stats = RunStream(*engine, stream, config);
  cell.ms_per_update = stats.MsecPerUpdate();
  cell.partial = stats.timed_out;
  cell.updates_applied = stats.updates_applied;
  cell.memory_bytes = stats.memory_bytes;
  cell.new_embeddings = stats.new_embeddings;
  cell.final_join_passes = engine->final_join_passes();
  cell.shared_finalize_groups = engine->shared_finalize_groups();
  cell.routed_candidates = engine->routed_candidates();
  cell.prefilter_rejects = engine->prefilter_rejects();
  cell.batch_tasks = engine->batch_tasks();
  cell.batch_steals = engine->batch_steals();
  cell.footprint_cache_hits = engine->footprint_cache_hits();
  cell.queries_satisfied = stats.queries_satisfied;
  return cell;
}

ChurnCellResult RunChurnCell(EngineKind kind,
                             const std::vector<QueryPattern>& base,
                             const std::vector<QueryPattern>& pool,
                             const UpdateStream& stream, size_t churn_every,
                             double budget_seconds, size_t batch, int threads,
                             bool shared_finalize, bool route_index) {
  ChurnCellResult cell;
  auto engine = CreateEngine(kind);
  engine->SetSharedFinalize(shared_finalize);
  engine->SetRouteIndex(route_index);
  cell.initial_index = IndexQueries(*engine, base);
  cell.memory_after_index = engine->MemoryBytes();

  // The mixed event sequence: every `churn_every` updates, retire the
  // oldest live query and register the next one from the pool (steady-state
  // |QDB|, FIFO lifetimes — the paper's expiring continuous queries).
  std::vector<StreamEvent> events;
  events.reserve(stream.size() + 2 * pool.size());
  std::vector<QueryId> live;
  for (QueryId q = 0; q < base.size(); ++q) live.push_back(q);
  QueryId next_qid = static_cast<QueryId>(base.size());
  size_t next_pool = 0;
  size_t oldest = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (churn_every > 0 && i > 0 && i % churn_every == 0 &&
        next_pool < pool.size() && oldest < live.size()) {
      events.push_back(StreamEvent::Remove(live[oldest++]));
      events.push_back(StreamEvent::Add(next_qid, pool[next_pool++]));
      live.push_back(next_qid++);
    }
    events.push_back(StreamEvent::Update(stream[i]));
  }

  RunConfig config;
  config.budget_seconds = budget_seconds;
  config.batch_window = batch;
  config.batch_threads = threads;
  cell.stats = RunMixedStream(*engine, events, config);
  cell.live_queries_end = engine->NumQueries();
  cell.final_join_passes = engine->final_join_passes();
  cell.shared_finalize_groups = engine->shared_finalize_groups();
  return cell;
}

std::string FormatMs(double ms, bool partial) {
  if (std::isnan(ms)) return "*";
  std::string s = TextTable::Num(ms, 3);
  if (partial) s += "*";
  return s;
}

BenchLine::BenchLine(const std::string& bench) {
  body_ = "{\"bench\":\"" + bench + "\"";
}

BenchLine& BenchLine::Add(const std::string& key, const std::string& value) {
  body_ += ",\"" + key + "\":\"" + value + "\"";
  return *this;
}

BenchLine& BenchLine::Add(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  body_ += ",\"" + key + "\":" + buf;
  return *this;
}

BenchLine& BenchLine::Add(const std::string& key, uint64_t value) {
  body_ += ",\"" + key + "\":" + std::to_string(value);
  return *this;
}

void BenchLine::Emit() {
  std::printf("BENCH_JSON %s}\n", body_.c_str());
  std::fflush(stdout);
  body_.clear();
}

std::vector<size_t> EvenCheckpoints(size_t total, size_t n) {
  std::vector<size_t> cp;
  cp.reserve(n);
  for (size_t i = 1; i <= n; ++i) cp.push_back(total * i / n);
  return cp;
}

void PrintHeader(const std::string& figure, const std::string& caption,
                 const BenchOptions& opts) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("mode=%s  budget=%.1fs/engine-series  seed=%llu\n",
              opts.full ? "FULL (paper scale)" : "QUICK (laptop scale)",
              opts.budget_seconds, static_cast<unsigned long long>(opts.seed));
  if (opts.batch > 1)
    std::printf("batched execution: ApplyBatch window=%zu threads=%d\n",
                opts.batch, opts.threads);
  if (!opts.shared_finalize)
    std::printf("shared window finalization DISABLED (per-query passes)\n");
  if (!opts.route_index)
    std::printf("query routing index DISABLED (legacy linear dispatch)\n");
  if (opts.tenants > 1)
    std::printf("tenant duplication: %zux (|QDB| scales accordingly)\n",
                opts.tenants);
  std::printf("cells marked '*' exceeded the time budget (paper's timeout marker);\n");
  std::printf("a value with '*' is the average over the prefix processed.\n");
  std::printf("==============================================================\n");
}

void PrintTable(const TextTable& table, const BenchOptions& opts) {
  std::printf("%s\n", table.ToString().c_str());
  if (opts.csv) std::printf("CSV:\n%s\n", table.ToCsv().c_str());
  std::fflush(stdout);
}

workload::Workload MakeWorkload(const std::string& dataset, size_t num_updates,
                                uint64_t seed) {
  if (dataset == "snb") {
    workload::SnbConfig c;
    c.num_updates = num_updates;
    c.seed = seed;
    return workload::GenerateSnb(c);
  }
  if (dataset == "taxi") {
    workload::TaxiConfig c;
    c.num_updates = num_updates;
    c.seed = seed;
    return workload::GenerateTaxi(c);
  }
  workload::BioConfig c;
  c.num_updates = num_updates;
  c.seed = seed;
  return workload::GenerateBio(c);
}

workload::QueryGenConfig BaselineQueryConfig(const BenchOptions& opts,
                                             size_t num_queries) {
  workload::QueryGenConfig qc;
  qc.num_queries = num_queries;
  qc.avg_size = 5.0;        // paper baseline l = 5
  qc.selectivity = 0.25;    // σ = 25%
  qc.overlap = 0.35;        // o = 35%
  qc.seed = opts.seed * 1315423911ull + 17;
  qc.tenants = opts.tenants;
  return qc;
}

void RunGrowthFigure(const std::string& figure, const std::string& caption,
                     const std::string& dataset, size_t total_updates,
                     size_t num_segments, size_t num_queries,
                     const std::vector<EngineKind>& kinds, const BenchOptions& opts) {
  PrintHeader(figure, caption, opts);
  std::printf("dataset=%s  |GE|=%zu  |QDB|=%zu  l=5  sigma=25%%  o=35%%\n\n",
              dataset.c_str(), total_updates, num_queries);

  workload::Workload w = MakeWorkload(dataset, total_updates, opts.seed);
  workload::QuerySet qs =
      workload::GenerateQueries(w, BaselineQueryConfig(opts, num_queries));
  const std::vector<size_t> checkpoints = EvenCheckpoints(total_updates, num_segments);

  std::vector<GrowthSeries> all;
  for (EngineKind kind : kinds) {
    std::printf("  running %-8s ...", EngineKindName(kind));
    std::fflush(stdout);
    GrowthSeries s =
        RunGrowthSeries(kind, qs.queries, w.stream, checkpoints,
                        opts.budget_seconds, opts.batch, opts.threads,
                        opts.shared_finalize, opts.route_index);
    std::printf(" %zu/%zu updates, %.0f updates/s, %.1f MB, %llu new embeddings\n",
                s.updates_applied, total_updates, s.UpdatesPerSec(),
                static_cast<double>(s.memory_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(s.new_embeddings));
    BenchLine(figure)
        .Add("dataset", dataset)
        .Add("engine", EngineKindName(kind))
        .Add("updates_per_sec", s.UpdatesPerSec())
        .Add("updates_applied", static_cast<uint64_t>(s.updates_applied))
        .Add("partial", static_cast<uint64_t>(s.updates_applied < total_updates ? 1 : 0))
        .Add("memory_bytes", static_cast<uint64_t>(s.memory_bytes))
        .Add("final_join_passes", s.final_join_passes)
        .Add("shared_finalize_groups", s.shared_finalize_groups)
        .Add("routed_candidates", s.routed_candidates)
        .Add("candidates_per_update", s.CandidatesPerUpdate())
        .Add("prefilter_rejects", s.prefilter_rejects)
        .Emit();
    all.push_back(std::move(s));
  }
  std::printf("\n");

  std::vector<std::string> header{"edges", "vertices"};
  for (EngineKind kind : kinds) header.emplace_back(EngineKindName(kind));
  TextTable table(std::move(header));
  for (size_t seg = 0; seg < checkpoints.size(); ++seg) {
    std::vector<std::string> row;
    row.push_back(std::to_string(checkpoints[seg]));
    row.push_back(std::to_string(w.stream.CountVertices(checkpoints[seg])));
    for (const auto& s : all)
      row.push_back(FormatMs(s.segment_ms[seg], s.partial[seg]));
    table.AddRow(std::move(row));
  }
  PrintTable(table, opts);
}

}  // namespace bench
}  // namespace gstream
