#ifndef GSTREAM_BENCH_HARNESS_H_
#define GSTREAM_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "engine/driver.h"
#include "engine/engine.h"
#include "graph/stream.h"
#include "workload/query_gen.h"
#include "workload/workload.h"

namespace gstream {
namespace bench {

/// Shared configuration of every figure bench.
///
/// Quick mode (default) shrinks the paper's scales so the whole bench suite
/// finishes in minutes on a laptop; `--full` restores paper scales (hours).
/// Each engine gets a wall-clock budget per series/cell; an engine that
/// cannot finish a cell within budget reports the average over the updates
/// it did process, suffixed `*` — the same timeout marker the paper uses in
/// Figs. 12(f)-14.
struct BenchOptions {
  bool full = false;
  double budget_seconds = 8.0;       ///< Per engine per growth series.
  double cell_budget_seconds = 2.0;  ///< Per engine per sweep cell.
  uint64_t seed = 42;
  bool csv = false;                  ///< Also print CSV rows.
  size_t batch = 1;                  ///< ApplyBatch window; 1 = per-update.
  int threads = 1;                   ///< Batch shard worker threads.
  /// Cross-query shared window finalization (DESIGN.md §9); the engines'
  /// default. `--no-shared-finalize` selects the per-(query, window) passes
  /// for A/B measurement.
  bool shared_finalize = true;
  /// Query routing index (DESIGN.md §12); the engines' default.
  /// `--no-route-index` selects the legacy linear dispatch for A/B
  /// measurement.
  bool route_index = true;
  /// Tenant duplication factor for the query generator (`--tenants=N`,
  /// validated positive): |QDB| = num_queries * tenants.
  size_t tenants = 1;

  /// Strict parse: an unknown `--flag` prints the flag set and exits with
  /// status 2 (a typo like `--ful` must not silently run quick mode).
  static BenchOptions FromArgs(int argc, char** argv);

  /// `quick` when !full, else `paper`.
  size_t Pick(size_t quick, size_t paper) const { return full ? paper : quick; }
  double PickD(double quick, double paper) const { return full ? paper : quick; }
};

/// One engine's series over growth checkpoints: ms/update within each
/// segment; NaN marks segments not reached before the budget expired.
struct GrowthSeries {
  EngineKind kind;
  std::vector<double> segment_ms;      ///< Per checkpoint.
  std::vector<bool> partial;           ///< Segment measured on a prefix only.
  IndexStats index_stats;
  size_t memory_bytes = 0;
  size_t updates_applied = 0;
  uint64_t new_embeddings = 0;
  uint64_t final_join_passes = 0;      ///< Final-join passes (see engine.h).
  uint64_t shared_finalize_groups = 0; ///< Passes fanned out to ≥ 2 queries.
  uint64_t routed_candidates = 0;      ///< Candidate work items (see engine.h).
  uint64_t prefilter_rejects = 0;      ///< Updates rejected by the prefilter.
  double answer_millis = 0.0;          ///< Total answering wall clock.

  /// Throughput counter: processed updates per second of answering time.
  double UpdatesPerSec() const {
    return answer_millis <= 0.0 ? 0.0 : updates_applied * 1000.0 / answer_millis;
  }

  /// Routing-selectivity counter: candidate work items per processed update.
  double CandidatesPerUpdate() const {
    return updates_applied == 0
               ? 0.0
               : static_cast<double>(routed_candidates) / updates_applied;
  }
};

/// Streams `stream` through a fresh engine of `kind` (after indexing
/// `queries`), recording the average answering time per update within each
/// checkpoint segment. `checkpoints` are ascending stream positions; the
/// budget covers the whole series, mirroring the paper's per-run ceiling.
GrowthSeries RunGrowthSeries(EngineKind kind,
                             const std::vector<QueryPattern>& queries,
                             const UpdateStream& stream,
                             const std::vector<size_t>& checkpoints,
                             double budget_seconds, size_t batch = 1,
                             int threads = 1, bool shared_finalize = true,
                             bool route_index = true);

/// One independent cell: average ms/update over the whole stream (or the
/// prefix processed within budget — flagged `partial`).
struct CellResult {
  double ms_per_update = 0.0;
  bool partial = false;
  size_t updates_applied = 0;
  size_t memory_bytes = 0;
  uint64_t new_embeddings = 0;
  uint64_t final_join_passes = 0;      ///< Final-join passes (see engine.h).
  uint64_t shared_finalize_groups = 0; ///< Passes fanned out to ≥ 2 queries.
  uint64_t routed_candidates = 0;      ///< Candidate work items (see engine.h).
  uint64_t prefilter_rejects = 0;      ///< Updates rejected by the prefilter.
  uint64_t batch_tasks = 0;            ///< Scheduler tasks (see engine.h).
  uint64_t batch_steals = 0;           ///< Cross-executor steals.
  uint64_t footprint_cache_hits = 0;   ///< Partition-memo window hits.
  size_t queries_satisfied = 0;
  IndexStats index_stats;

  /// Throughput counter: processed updates per second of answering time.
  double UpdatesPerSec() const {
    return ms_per_update <= 0.0 ? 0.0 : 1000.0 / ms_per_update;
  }

  /// Routing-selectivity counter: candidate work items per processed update.
  double CandidatesPerUpdate() const {
    return updates_applied == 0
               ? 0.0
               : static_cast<double>(routed_candidates) / updates_applied;
  }
};

CellResult RunCell(EngineKind kind, const std::vector<QueryPattern>& queries,
                   const UpdateStream& stream, double budget_seconds,
                   size_t batch = 1, int threads = 1,
                   bool shared_finalize = true, bool route_index = true);

/// One query-churn cell (the dynamic-QDB scenario): `base` queries are
/// registered up front (timed as the indexing phase, Fig. 13(b) style),
/// then the stream runs with one query removed (oldest first) and one fresh
/// query from `pool` registered every `churn_every` updates. The mixed-run
/// stats separate indexing, removal-GC, and answering time; `memory_*`
/// bracket the run to show the shared-view GC holding memory flat under
/// churn.
struct ChurnCellResult {
  MixedRunStats stats;
  IndexStats initial_index;          ///< Up-front registration of `base`.
  size_t memory_after_index = 0;     ///< Engine bytes before the stream.
  size_t live_queries_end = 0;       ///< |QDB| after the run.
  uint64_t final_join_passes = 0;      ///< Final-join passes (see engine.h).
  uint64_t shared_finalize_groups = 0; ///< Passes fanned out to ≥ 2 queries.
};

ChurnCellResult RunChurnCell(EngineKind kind,
                             const std::vector<QueryPattern>& base,
                             const std::vector<QueryPattern>& pool,
                             const UpdateStream& stream, size_t churn_every,
                             double budget_seconds, size_t batch = 1,
                             int threads = 1, bool shared_finalize = true,
                             bool route_index = true);

/// Formats a cell/segment value with the paper's timeout marker.
std::string FormatMs(double ms, bool partial);

/// Machine-readable result line for trajectory tracking: accumulates fields
/// and emits one `BENCH_JSON {...}` line on stdout. tools/bench_smoke.sh and
/// CI grep for these.
class BenchLine {
 public:
  explicit BenchLine(const std::string& bench);
  BenchLine& Add(const std::string& key, const std::string& value);  ///< Quoted.
  BenchLine& Add(const std::string& key, double value);
  BenchLine& Add(const std::string& key, uint64_t value);
  void Emit();  ///< Prints and invalidates the line.

 private:
  std::string body_;
};

/// Evenly spaced checkpoints 1/n..n/n of `total`.
std::vector<size_t> EvenCheckpoints(size_t total, size_t n);

/// Prints the standard bench header.
void PrintHeader(const std::string& figure, const std::string& caption,
                 const BenchOptions& opts);

/// Prints a finished table (and CSV when requested).
void PrintTable(const TextTable& table, const BenchOptions& opts);

/// Builds a workload by name ("snb" | "taxi" | "bio") with `num_updates`.
workload::Workload MakeWorkload(const std::string& dataset, size_t num_updates,
                                uint64_t seed);

/// The paper's §6.1 baseline query-set configuration, scaled.
workload::QueryGenConfig BaselineQueryConfig(const BenchOptions& opts,
                                             size_t num_queries);

/// Full growth-figure driver (Figs. 12(a), 12(f), 13(a), 14(a)-(c)): builds
/// the dataset and query set, runs every engine in `kinds` over the growing
/// stream and prints a table: one row per graph-size checkpoint (edges +
/// vertices), one column per engine, cells in msec/update.
void RunGrowthFigure(const std::string& figure, const std::string& caption,
                     const std::string& dataset, size_t total_updates,
                     size_t num_segments, size_t num_queries,
                     const std::vector<EngineKind>& kinds, const BenchOptions& opts);

}  // namespace bench
}  // namespace gstream

#endif  // GSTREAM_BENCH_HARNESS_H_
