// Micro-benchmarks of the graph-database substrate: store throughput and
// the backtracking subgraph matcher (the Neo4j-substitute's hot paths).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graphdb/executor.h"
#include "graphdb/store.h"
#include "query/parser.h"

namespace {

using namespace gstream;

void FillStore(graphdb::GraphStore& store, size_t n, uint64_t seed) {
  Rng rng(seed);
  const size_t universe = n / 4 + 8;
  size_t added = 0;
  while (added < n) {
    if (store.AddEdge(static_cast<VertexId>(rng.Next(universe)), 0,
                      static_cast<VertexId>(rng.Next(universe))))
      ++added;
  }
}

void BM_StoreAddEdge(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    graphdb::GraphStore store;
    state.ResumeTiming();
    for (uint32_t i = 0; i < 1000; ++i) store.AddEdge(i % 257, i % 5, i % 131);
    benchmark::DoNotOptimize(store.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_StoreAddEdge);

void BM_CountChain2(benchmark::State& state) {
  graphdb::GraphStore store;
  FillStore(store, static_cast<size_t>(state.range(0)), 2);
  StringInterner in;
  in.Intern("r");  // label 0
  auto r = ParsePattern("(?x)-[r]->(?y); (?y)-[r]->(?z)", in);
  auto plan = graphdb::PlanQuery(r.pattern);
  graphdb::MatchExecutor exec(&store);
  for (auto _ : state)
    benchmark::DoNotOptimize(exec.CountMatches(r.pattern, plan));
}
BENCHMARK(BM_CountChain2)->Range(1 << 8, 1 << 12);

void BM_CountTriangles(benchmark::State& state) {
  graphdb::GraphStore store;
  FillStore(store, static_cast<size_t>(state.range(0)), 3);
  StringInterner in;
  in.Intern("r");
  auto r = ParsePattern("(?x)-[r]->(?y); (?y)-[r]->(?z); (?z)-[r]->(?x)", in);
  auto plan = graphdb::PlanQuery(r.pattern);
  graphdb::MatchExecutor exec(&store);
  for (auto _ : state)
    benchmark::DoNotOptimize(exec.CountMatches(r.pattern, plan));
}
BENCHMARK(BM_CountTriangles)->Range(1 << 8, 1 << 12);

void BM_CountWithLiteralAnchor(benchmark::State& state) {
  graphdb::GraphStore store;
  FillStore(store, static_cast<size_t>(state.range(0)), 4);
  StringInterner in;
  in.Intern("r");
  // Vertex ids are numeric strings of the universe; anchor on one of them.
  auto r = ParsePattern("(?x)-[r]->(?y)", in);
  QueryPattern anchored;
  uint32_t x = anchored.AddVariable();
  uint32_t lit = anchored.AddLiteral(3);
  anchored.AddEdge(x, in.Find("r"), lit);
  auto plan = graphdb::PlanQuery(anchored);
  graphdb::MatchExecutor exec(&store);
  for (auto _ : state)
    benchmark::DoNotOptimize(exec.CountMatches(anchored, plan));
}
BENCHMARK(BM_CountWithLiteralAnchor)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
