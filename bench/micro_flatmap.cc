// Micro-benchmarks of the flat open-addressing containers against the
// node-based std equivalents they replaced (the data-plane overhaul's
// before/after at container granularity): build-table construction, probe
// throughput, and Relation's row dedup.

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "common/rng.h"
#include "matview/relation.h"

namespace {

using namespace gstream;

std::vector<VertexId> MakeKeys(size_t n, size_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> keys(n);
  for (auto& k : keys) k = static_cast<VertexId>(rng.Next(universe));
  return keys;
}

void BM_FlatPostingMapBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = MakeKeys(n, n / 4 + 8, 1);
  for (auto _ : state) {
    FlatPostingMap map;
    map.Reserve(n);
    for (uint32_t i = 0; i < n; ++i) map.Add(keys[i], i);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatPostingMapBuild)->Range(1 << 10, 1 << 16);

void BM_StdUnorderedMapBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = MakeKeys(n, n / 4 + 8, 1);
  for (auto _ : state) {
    std::unordered_map<VertexId, std::vector<uint32_t>> map;
    for (uint32_t i = 0; i < n; ++i) map[keys[i]].push_back(i);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdUnorderedMapBuild)->Range(1 << 10, 1 << 16);

void BM_FlatPostingMapProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t universe = n / 4 + 8;
  auto keys = MakeKeys(n, universe, 1);
  FlatPostingMap map;
  map.Reserve(n);
  for (uint32_t i = 0; i < n; ++i) map.Add(keys[i], i);
  auto probes = MakeKeys(n, universe * 2, 2);  // ~50% misses
  for (auto _ : state) {
    size_t hits = 0;
    for (VertexId k : probes) hits += map.Probe(k).size();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatPostingMapProbe)->Range(1 << 10, 1 << 16);

void BM_FlatPostingMapProbeGrown(benchmark::State& state) {
  // Natural growth (no Reserve): the table sits between 7/16 and 7/8 load,
  // the shape of every incrementally maintained index (HashIndex::CatchUp,
  // the trie/inverted routing maps). Long probe chains is where group
  // probing earns its keep.
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = MakeKeys(n, n, 1);  // mostly-distinct keys: high table load
  FlatPostingMap map;
  for (uint32_t i = 0; i < n; ++i) map.Add(keys[i], i);
  auto probes = MakeKeys(n, n * 2, 2);  // ~50% misses
  for (auto _ : state) {
    size_t hits = 0;
    for (VertexId k : probes) hits += map.Probe(k).size();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatPostingMapProbeGrown)->Range(1 << 10, 1 << 16);

void BM_FlatPostingMapProbeMissGrown(benchmark::State& state) {
  // All-miss probing at natural load: the routing-index fast path (most
  // streamed edges match no registered pattern). A miss must rule the key
  // out, which costs a walk to the next empty slot.
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = MakeKeys(n, n, 1);
  FlatPostingMap map;
  for (uint32_t i = 0; i < n; ++i) map.Add(keys[i], i);
  std::vector<VertexId> probes = MakeKeys(n, n, 5);
  for (auto& p : probes) p += static_cast<VertexId>(2 * n);  // disjoint universe
  for (auto _ : state) {
    size_t hits = 0;
    for (VertexId k : probes) hits += map.Probe(k).size();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatPostingMapProbeMissGrown)->Range(1 << 10, 1 << 16);

void BM_StdUnorderedMapProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t universe = n / 4 + 8;
  auto keys = MakeKeys(n, universe, 1);
  std::unordered_map<VertexId, std::vector<uint32_t>> map;
  for (uint32_t i = 0; i < n; ++i) map[keys[i]].push_back(i);
  auto probes = MakeKeys(n, universe * 2, 2);
  for (auto _ : state) {
    size_t hits = 0;
    for (VertexId k : probes) {
      auto it = map.find(k);
      if (it != map.end()) hits += it->second.size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdUnorderedMapProbe)->Range(1 << 10, 1 << 16);

void BM_RelationDedupAppend(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = MakeKeys(n, n / 2 + 8, 3);
  auto b = MakeKeys(n, n / 2 + 8, 4);
  for (auto _ : state) {
    Relation rel(2);
    rel.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      VertexId row[2] = {a[i], b[i]};
      rel.Append(row);
    }
    benchmark::DoNotOptimize(rel.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationDedupAppend)->Range(1 << 10, 1 << 16);

void BM_StdSetDedupAppend(benchmark::State& state) {
  // Reference shape of the seed's Relation: columnar data + node-based
  // unordered_set of row indexes.
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = MakeKeys(n, n / 2 + 8, 3);
  auto b = MakeKeys(n, n / 2 + 8, 4);
  struct RowHash {
    const std::vector<VertexId>* data;
    size_t operator()(uint32_t idx) const { return HashIds(data->data() + idx * 2, 2); }
  };
  struct RowEq {
    const std::vector<VertexId>* data;
    bool operator()(uint32_t x, uint32_t y) const {
      return (*data)[x * 2] == (*data)[y * 2] && (*data)[x * 2 + 1] == (*data)[y * 2 + 1];
    }
  };
  for (auto _ : state) {
    std::vector<VertexId> data;
    std::unordered_set<uint32_t, RowHash, RowEq> set(16, RowHash{&data}, RowEq{&data});
    uint32_t rows = 0;
    for (size_t i = 0; i < n; ++i) {
      data.push_back(a[i]);
      data.push_back(b[i]);
      if (set.insert(rows).second) {
        ++rows;
      } else {
        data.resize(data.size() - 2);
      }
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdSetDedupAppend)->Range(1 << 10, 1 << 16);

void BM_FlatMapJoinCacheKey(benchmark::State& state) {
  // JoinCache::Get key shape: (pointer, column).
  using Key = std::pair<const void*, uint32_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t seed = 0;
      HashCombine(seed, reinterpret_cast<uintptr_t>(k.first));
      HashCombine(seed, k.second);
      return seed;
    }
  };
  std::vector<Key> keys;
  for (uintptr_t i = 0; i < 256; ++i)
    keys.emplace_back(reinterpret_cast<const void*>(i * 64), i & 1);
  FlatMap<Key, uint64_t, KeyHash> map;
  for (const Key& k : keys) map.GetOrCreate(k) = 1;
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const Key& k : keys) sum += *map.Find(k);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_FlatMapJoinCacheKey);

}  // namespace

BENCHMARK_MAIN();
