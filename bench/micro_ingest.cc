// Micro-benchmarks of the fault-tolerant ingest path (DESIGN.md §10): raw
// `.gsb` decode throughput as a function of record-block size (the CRC +
// deframe cost per record), encode throughput, the bounded ring's
// hand-off rate between decode and apply threads, and the full replay
// pipeline's overhead — including the shed rate when the consumer is
// artificially stalled into overload.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "common/interning.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "graph/update.h"
#include "ingest/gsb_reader.h"
#include "ingest/gsb_writer.h"
#include "ingest/pipeline.h"
#include "ingest/ring_buffer.h"

namespace {

using namespace gstream;
using namespace gstream::ingest;

constexpr size_t kRecords = 50'000;

// A synthetic stream: enough label/vertex variety for a realistic dictionary
// without paying workload-generator cost at bench startup.
struct SyntheticStream {
  StringInterner interner;
  std::vector<EdgeUpdate> updates;
};

const SyntheticStream& TestStream() {
  static const SyntheticStream* stream = [] {
    auto* s = new SyntheticStream();
    std::vector<LabelId> labels;
    for (int i = 0; i < 16; ++i)
      labels.push_back(s->interner.Intern("label_" + std::to_string(i)));
    std::vector<VertexId> verts;
    for (int i = 0; i < 4096; ++i)
      verts.push_back(s->interner.Intern("v" + std::to_string(i)));
    Rng rng(99);
    s->updates.reserve(kRecords);
    for (size_t i = 0; i < kRecords; ++i) {
      EdgeUpdate u;
      u.src = verts[rng.Next(verts.size())];
      u.label = labels[rng.Next(labels.size())];
      u.dst = verts[rng.Next(verts.size())];
      u.op = UpdateOp::kAdd;
      s->updates.push_back(u);
    }
    return s;
  }();
  return *stream;
}

std::vector<uint8_t> EncodeWithBlockSize(size_t records_per_block) {
  GsbWriterOptions opt;
  opt.records_per_block = records_per_block;
  return EncodeGsb(TestStream().interner, TestStream().updates, opt);
}

// Decode throughput vs block size: scan once per iteration, CRC-check and
// deframe every record block.
void BM_GsbDecode(benchmark::State& state) {
  const auto image = EncodeWithBlockSize(static_cast<size_t>(state.range(0)));
  MemorySource src(image);
  for (auto _ : state) {
    GsbReader reader(src);
    if (!reader.Open()) state.SkipWithError("open failed");
    std::vector<GsbBlockRef> blocks;
    if (!reader.ScanBlocks(CorruptPolicy::kFail, blocks))
      state.SkipWithError("scan failed");
    std::vector<EdgeUpdate> out;
    out.reserve(kRecords);
    for (const GsbBlockRef& b : blocks) {
      if (b.kind != GsbBlockKind::kRecords) continue;
      if (reader.DecodeRecords(b, out, nullptr) != DecodeStatus::kOk)
        state.SkipWithError("decode failed");
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.SetBytesProcessed(state.iterations() * image.size());
}
BENCHMARK(BM_GsbDecode)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_GsbEncode(benchmark::State& state) {
  for (auto _ : state) {
    auto image = EncodeWithBlockSize(4096);
    benchmark::DoNotOptimize(image.data());
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
}
BENCHMARK(BM_GsbEncode);

// Ring hand-off rate: two producers push pre-built batches through a bounded
// ring to one consumer (block policy — the lossless backpressure path).
void BM_RingThroughput(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 1024;
  const size_t num_batches = kRecords / kBatch;
  std::vector<EdgeUpdate> batch(TestStream().updates.begin(),
                                TestStream().updates.begin() + kBatch);
  uint64_t max_occupancy = 0;
  for (auto _ : state) {
    BoundedBatchRing ring(capacity);
    ring.AddProducer();
    ring.AddProducer();
    auto produce = [&](size_t first) {
      for (size_t seq = first; seq < num_batches; seq += 2) {
        RecordBatch b;
        b.seq = seq;
        b.records = batch;
        ring.Push(std::move(b), OverloadPolicy::kBlock);
      }
      ring.ProducerDone();
    };
    std::thread p0(produce, 0), p1(produce, 1);
    size_t popped = 0;
    RecordBatch out;
    while (ring.Pop(out)) popped += out.records.size();
    p0.join();
    p1.join();
    max_occupancy = ring.stats().max_occupancy;
    benchmark::DoNotOptimize(popped);
  }
  state.SetItemsProcessed(state.iterations() * (kRecords / kBatch) * kBatch);
  state.counters["max_occupancy"] = static_cast<double>(max_occupancy);
}
BENCHMARK(BM_RingThroughput)->Arg(2)->Arg(8)->Arg(64);

// Full replay pipeline overhead (decode + ring + reassembly + apply) against
// a no-query engine, so the measured cost is the ingest machinery itself.
void BM_PipelineReplay(benchmark::State& state) {
  static const auto* image = new std::vector<uint8_t>(EncodeWithBlockSize(4096));
  MemorySource src(*image);
  uint64_t max_occupancy = 0;
  for (auto _ : state) {
    IngestSession session;
    if (!session.Open(src, CorruptPolicy::kFail))
      state.SkipWithError("open failed");
    auto engine = CreateEngine(EngineKind::kNaive);
    IngestOptions opts;
    opts.batch_window = 256;
    opts.reader_threads = static_cast<int>(state.range(0));
    opts.ring_capacity = 8;
    IngestStats stats = session.Replay(*engine, opts);
    if (stats.failed) state.SkipWithError(stats.error.c_str());
    max_occupancy = stats.ring.max_occupancy;
    benchmark::DoNotOptimize(stats.run.updates_applied);
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["ring_occupancy"] = static_cast<double>(max_occupancy);
}
BENCHMARK(BM_PipelineReplay)->Arg(1)->Arg(2)->Arg(4);

// Overload behavior: a stalled consumer with a tiny ring under the shed
// policy. Items/s here is the *applied* rate; the shed_rate counter is the
// fraction of the stream dropped (the quantity the policy trades for
// liveness).
void BM_ShedRateUnderStall(benchmark::State& state) {
  static const auto* image = new std::vector<uint8_t>(EncodeWithBlockSize(1024));
  MemorySource src(*image);
  double shed_rate = 0.0;
  uint64_t applied = 0;
  for (auto _ : state) {
    IngestSession session;
    if (!session.Open(src, CorruptPolicy::kFail))
      state.SkipWithError("open failed");
    auto engine = CreateEngine(EngineKind::kNaive);
    IngestOptions opts;
    opts.batch_window = 1024;
    opts.reader_threads = 2;
    opts.ring_capacity = 2;
    opts.overload = OverloadPolicy::kShed;
    opts.consumer_stall_micros = static_cast<int>(state.range(0));
    IngestStats stats = session.Replay(*engine, opts);
    if (stats.failed) state.SkipWithError(stats.error.c_str());
    applied = stats.run.updates_applied;
    shed_rate = static_cast<double>(stats.ring.records_shed) /
                static_cast<double>(kRecords);
    benchmark::DoNotOptimize(applied);
  }
  state.SetItemsProcessed(state.iterations() * applied);
  state.counters["shed_rate"] = shed_rate;
}
BENCHMARK(BM_ShedRateUnderStall)->Arg(0)->Arg(200)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
