// Micro-benchmarks of the join kernels (google-benchmark): the paper's
// hash-join build/probe cost with and without cached indexes — the
// difference that separates the "+" engines from their bases.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matview/binding.h"
#include "matview/join.h"
#include "matview/join_cache.h"

namespace {

using namespace gstream;

/// A base edge view of `n` rows over `universe` distinct vertices.
std::unique_ptr<Relation> MakeBase(size_t n, size_t universe, uint64_t seed) {
  auto rel = std::make_unique<Relation>(2);
  Rng rng(seed);
  while (rel->NumRows() < n) {
    VertexId row[2] = {static_cast<VertexId>(rng.Next(universe)),
                       static_cast<VertexId>(rng.Next(universe))};
    rel->Append(row);
  }
  return rel;
}

void BM_RelationAppendDedup(benchmark::State& state) {
  for (auto _ : state) {
    Relation rel(2);
    for (VertexId i = 0; i < 1000; ++i) {
      VertexId row[2] = {i % 128, i};
      rel.Append(row);
    }
    benchmark::DoNotOptimize(rel.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RelationAppendDedup);

void BM_ExtendRightScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(64, n / 4 + 8, 1);
  auto base = MakeBase(n, n / 4 + 8, 2);
  for (auto _ : state) {
    Relation out(3);
    ExtendRight(AllRows(*prefix), *base, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtendRightScan)->Range(1 << 10, 1 << 16);

void BM_ExtendRightIndexed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(64, n / 4 + 8, 1);
  auto base = MakeBase(n, n / 4 + 8, 2);
  HashIndex index(base.get(), 0);
  for (auto _ : state) {
    Relation out(3);
    ExtendRight(AllRows(*prefix), *base, &index, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ExtendRightIndexed)->Range(1 << 10, 1 << 16);

void BM_ExtendRightSingleScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(n, n / 4 + 8, 3);
  for (auto _ : state) {
    Relation out(3);
    ExtendRightSingle(AllRows(*prefix), 5, 77, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtendRightSingleScan)->Range(1 << 10, 1 << 16);

void BM_ExtendRightSingleIndexed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(n, n / 4 + 8, 3);
  HashIndex index(prefix.get(), 1);
  for (auto _ : state) {
    Relation out(3);
    ExtendRightSingle(AllRows(*prefix), 5, 77, &index, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtendRightSingleIndexed)->Range(1 << 10, 1 << 16);

void BM_JoinCacheCatchUp(benchmark::State& state) {
  auto base = MakeBase(1 << 14, 1 << 12, 4);
  for (auto _ : state) {
    JoinCache cache;
    benchmark::DoNotOptimize(cache.Get(base.get(), 0));
  }
}
BENCHMARK(BM_JoinCacheCatchUp);

// ---- Window-delta kernels (DESIGN.md §7) ------------------------------
// A window of W seed updates joining one base view: the per-update path
// runs W single-seed build+probe passes, the delta path runs ONE pass over
// the tagged W-row batch. Same output rows; the ratio is the batching win
// the engine-level window pipeline inherits.

/// W seed rows tagged 1..W in a provenance-enabled relation.
std::unique_ptr<Relation> MakeTaggedSeeds(size_t w, size_t universe, uint64_t seed) {
  auto rel = std::make_unique<Relation>(2);
  rel->EnableProvenance();
  Rng rng(seed);
  while (rel->NumRows() < w) {
    VertexId row[2] = {static_cast<VertexId>(rng.Next(universe)),
                       static_cast<VertexId>(rng.Next(universe))};
    rel->AppendTagged(row, static_cast<uint32_t>(rel->NumRows()) + 1);
  }
  return rel;
}

void BM_ExtendRightWindowLooped(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 13;
  auto seeds = MakeTaggedSeeds(w, n / 16 + 8, 7);
  auto base = MakeBase(n, n / 16 + 8, 8);
  for (auto _ : state) {
    Relation out(3);
    for (size_t i = 0; i < w; ++i)
      ExtendRight(RowRange{seeds.get(), i, i + 1}, *base, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * w);
}
BENCHMARK(BM_ExtendRightWindowLooped)->Range(8, 256);

void BM_ExtendRightWindowDelta(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 13;
  auto seeds = MakeTaggedSeeds(w, n / 16 + 8, 7);
  auto base = MakeBase(n, n / 16 + 8, 8);
  for (auto _ : state) {
    Relation out(3);
    out.EnableProvenance();
    ExtendRightDelta(DeltaBatch{AllRows(*seeds), TagsOfProvenance(*seeds)}, *base,
                     nullptr, RowTags{}, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * w);
}
BENCHMARK(BM_ExtendRightWindowDelta)->Range(8, 256);

void BM_JoinConcatWindowLooped(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 13;
  auto seeds = MakeTaggedSeeds(w, n / 16 + 8, 9);
  auto base = MakeBase(n, n / 16 + 8, 10);
  const std::vector<std::pair<uint32_t, uint32_t>> keys{{1, 0}};
  for (auto _ : state) {
    Relation out(4);
    for (size_t i = 0; i < w; ++i)
      JoinConcat(RowRange{seeds.get(), i, i + 1}, AllRows(*base), keys, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * w);
}
BENCHMARK(BM_JoinConcatWindowLooped)->Range(8, 256);

void BM_JoinConcatWindowDelta(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 13;
  auto seeds = MakeTaggedSeeds(w, n / 16 + 8, 9);
  auto base = MakeBase(n, n / 16 + 8, 10);
  const std::vector<std::pair<uint32_t, uint32_t>> keys{{1, 0}};
  for (auto _ : state) {
    Relation out(4);
    out.EnableProvenance();
    JoinConcatDelta(DeltaBatch{AllRows(*seeds), TagsOfProvenance(*seeds)},
                    AllRows(*base), RowTags{}, keys, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * w);
}
BENCHMARK(BM_JoinConcatWindowDelta)->Range(8, 256);

void BM_JoinBindings(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = MakeBase(n, n / 8 + 8, 5);
  auto b = MakeBase(n, n / 8 + 8, 6);
  for (auto _ : state) {
    auto joined = JoinBindingRanges({0, 1}, AllRows(*a), {1, 2}, AllRows(*b));
    benchmark::DoNotOptimize(joined.rows->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinBindings)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
