// Micro-benchmarks of the join kernels (google-benchmark): the paper's
// hash-join build/probe cost with and without cached indexes — the
// difference that separates the "+" engines from their bases.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matview/binding.h"
#include "matview/join.h"
#include "matview/join_cache.h"

namespace {

using namespace gstream;

/// A base edge view of `n` rows over `universe` distinct vertices.
std::unique_ptr<Relation> MakeBase(size_t n, size_t universe, uint64_t seed) {
  auto rel = std::make_unique<Relation>(2);
  Rng rng(seed);
  while (rel->NumRows() < n) {
    VertexId row[2] = {static_cast<VertexId>(rng.Next(universe)),
                       static_cast<VertexId>(rng.Next(universe))};
    rel->Append(row);
  }
  return rel;
}

void BM_RelationAppendDedup(benchmark::State& state) {
  for (auto _ : state) {
    Relation rel(2);
    for (VertexId i = 0; i < 1000; ++i) {
      VertexId row[2] = {i % 128, i};
      rel.Append(row);
    }
    benchmark::DoNotOptimize(rel.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RelationAppendDedup);

void BM_ExtendRightScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(64, n / 4 + 8, 1);
  auto base = MakeBase(n, n / 4 + 8, 2);
  for (auto _ : state) {
    Relation out(3);
    ExtendRight(AllRows(*prefix), *base, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtendRightScan)->Range(1 << 10, 1 << 16);

void BM_ExtendRightIndexed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(64, n / 4 + 8, 1);
  auto base = MakeBase(n, n / 4 + 8, 2);
  HashIndex index(base.get(), 0);
  for (auto _ : state) {
    Relation out(3);
    ExtendRight(AllRows(*prefix), *base, &index, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ExtendRightIndexed)->Range(1 << 10, 1 << 16);

void BM_ExtendRightSingleScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(n, n / 4 + 8, 3);
  for (auto _ : state) {
    Relation out(3);
    ExtendRightSingle(AllRows(*prefix), 5, 77, nullptr, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtendRightSingleScan)->Range(1 << 10, 1 << 16);

void BM_ExtendRightSingleIndexed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto prefix = MakeBase(n, n / 4 + 8, 3);
  HashIndex index(prefix.get(), 1);
  for (auto _ : state) {
    Relation out(3);
    ExtendRightSingle(AllRows(*prefix), 5, 77, &index, out);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtendRightSingleIndexed)->Range(1 << 10, 1 << 16);

void BM_JoinCacheCatchUp(benchmark::State& state) {
  auto base = MakeBase(1 << 14, 1 << 12, 4);
  for (auto _ : state) {
    JoinCache cache;
    benchmark::DoNotOptimize(cache.Get(base.get(), 0));
  }
}
BENCHMARK(BM_JoinCacheCatchUp);

void BM_JoinBindings(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = MakeBase(n, n / 8 + 8, 5);
  auto b = MakeBase(n, n / 8 + 8, 6);
  for (auto _ : state) {
    auto joined = JoinBindingRanges({0, 1}, AllRows(*a), {1, 2}, AllRows(*b));
    benchmark::DoNotOptimize(joined.rows->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinBindings)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
