// micro_sched — work-stealing scheduler calibration bench.
//
// Three cell families, all emitted as BENCH_JSON lines (collected into
// BENCH_RUNNER.json by tools/bench_runner.sh and gated by
// tools/bench_compare.py):
//
//  * dispatch — pure scheduler overhead: tasks/sec through Submit+Wait for
//    trivial tasks, plus the steal rate and coordinator queue depth. This
//    calibrates the task grain: engine tasks must be >> 1/tasks_per_sec.
//
//  * skew — the A/B the tentpole claims: a window of equal-cost tasks with
//    one hot task `hot_factor` times heavier, executed (a) statically
//    striped one-lane-per-executor, exactly the pre-PR-10 ApplyBatch
//    fan-out, and (b) as individually stealable tasks. With stealing the
//    makespan tracks max(hot, rest/(P-1)); with static striping the lane
//    that drew the hot task also drags its 1/P stripe of everything else.
//    `speedup_vs_static` > 1 on multi-core runners is the win CI records.
//
//  * engine_scale — end-to-end `--batch --threads` scaling cells: the snb
//    workload through TRIC+ and INV+ at the configured thread count,
//    reporting updates/sec plus the scheduler counters (tasks, steals,
//    partition-memo hits) so the runner-native baseline pins the whole
//    path, not just the synthetic core.
//
// Thread count comes from --threads; the bench-multicore CI job sweeps
// {1,2,4} and fails if threads=4 loses to threads=1 on any completed cell.

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench/harness.h"
#include "common/task_scheduler.h"

namespace gstream {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Deterministic CPU work: `iters` rounds of a 64-bit mix, returned so the
/// optimizer cannot delete the loop. ~1.5ns/iter on current x86.
uint64_t Spin(uint64_t iters, uint64_t seed) {
  uint64_t h = seed | 1;
  for (uint64_t i = 0; i < iters; ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= i;
  }
  return h;
}

struct SpinSink {
  std::vector<uint64_t> slots;  ///< One per task: no sharing, no races.
};

void RunDispatchCell(const BenchOptions& opts) {
  const size_t tasks = opts.Pick(20000, 200000);
  TaskScheduler sched(opts.threads);
  SpinSink sink;
  sink.slots.assign(tasks, 0);
  const auto start = Clock::now();
  for (size_t i = 0; i < tasks; ++i) {
    uint64_t* slot = &sink.slots[i];
    sched.Submit([slot, i] { *slot = Spin(1, i); });
  }
  sched.Wait();
  const double ms = MsSince(start);

  BenchLine line("micro_sched");
  line.Add("cell", std::string("dispatch"));
  line.Add("threads", static_cast<uint64_t>(opts.threads));
  line.Add("tasks", static_cast<uint64_t>(tasks));
  line.Add("tasks_per_sec", tasks * 1000.0 / ms);
  line.Add("steals", sched.steals());
  line.Add("max_queue_depth", sched.max_queue_depth());
  line.Emit();
}

/// One skew configuration: `tasks` tasks of `base_iters` work, task 0
/// inflated by `hot_factor`. Returns the makespan in ms.
double RunSkewStealing(TaskScheduler& sched, size_t tasks, uint64_t base_iters,
                       uint64_t hot_factor, SpinSink& sink) {
  const auto start = Clock::now();
  for (size_t i = 0; i < tasks; ++i) {
    const uint64_t iters = i == 0 ? base_iters * hot_factor : base_iters;
    uint64_t* slot = &sink.slots[i];
    sched.Submit([slot, iters, i] { *slot = Spin(iters, i); });
  }
  sched.Wait();
  return MsSince(start);
}

/// The pre-PR-10 fan-out, reproduced exactly: one task per executor, tasks
/// striped round-robin over the lanes — a lane runs its whole stripe with
/// no rebalancing, so the hot lane's makespan is hot + stripe.
double RunSkewStatic(TaskScheduler& sched, size_t tasks, uint64_t base_iters,
                     uint64_t hot_factor, SpinSink& sink) {
  const size_t lanes = static_cast<size_t>(sched.size());
  const auto start = Clock::now();
  for (size_t lane = 0; lane < lanes; ++lane) {
    uint64_t* slots = sink.slots.data();
    sched.Submit([slots, lane, lanes, tasks, base_iters, hot_factor] {
      for (size_t i = lane; i < tasks; i += lanes) {
        const uint64_t iters = i == 0 ? base_iters * hot_factor : base_iters;
        slots[i] = Spin(iters, i);
      }
    });
  }
  sched.Wait();
  return MsSince(start);
}

void RunSkewSweep(const BenchOptions& opts) {
  const size_t tasks = 64;
  const uint64_t base_iters = opts.Pick(200000, 2000000);
  for (uint64_t hot_factor : {1ull, 4ull, 16ull}) {
    // Alternate the modes and keep each mode's best of 3, so scheduler-
    // external noise (CI neighbors, frequency ramps) hits both sides alike
    // — the DESIGN.md §6.4 measurement protocol.
    double best_static = 0.0, best_steal = 0.0;
    uint64_t steals = 0;
    TaskScheduler sched(opts.threads);
    SpinSink sink;
    sink.slots.assign(tasks, 0);
    for (int rep = 0; rep < 3; ++rep) {
      const double stat =
          RunSkewStatic(sched, tasks, base_iters, hot_factor, sink);
      const uint64_t steals_before = sched.steals();
      const double steal =
          RunSkewStealing(sched, tasks, base_iters, hot_factor, sink);
      if (rep == 0 || stat < best_static) best_static = stat;
      if (rep == 0 || steal < best_steal) {
        best_steal = steal;
        steals = sched.steals() - steals_before;
      }
    }

    BenchLine line("micro_sched");
    line.Add("cell", std::string("skew"));
    line.Add("threads", static_cast<uint64_t>(opts.threads));
    line.Add("hot_factor", hot_factor);
    line.Add("tasks", static_cast<uint64_t>(tasks));
    line.Add("static_ms", best_static);
    line.Add("steal_ms", best_steal);
    line.Add("speedup_vs_static", best_static / best_steal);
    line.Add("steals", steals);
    line.Emit();
  }
}

void RunEngineScale(const BenchOptions& opts) {
  const size_t num_updates = opts.Pick(6000, 60000);
  const size_t num_queries = opts.Pick(40, 200);
  workload::Workload wl = MakeWorkload("snb", num_updates, opts.seed);
  workload::QueryGenConfig qcfg = BaselineQueryConfig(opts, num_queries);
  std::vector<QueryPattern> queries =
      workload::GenerateQueries(wl, qcfg).queries;

  const size_t batch = opts.batch > 1 ? opts.batch : 64;
  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kInvPlus}) {
    CellResult cell = RunCell(kind, queries, wl.stream,
                              opts.cell_budget_seconds * 4, batch,
                              opts.threads, opts.shared_finalize,
                              opts.route_index);
    BenchLine line("micro_sched");
    line.Add("cell", std::string("engine_scale"));
    line.Add("engine", std::string(EngineKindName(kind)));
    line.Add("threads", static_cast<uint64_t>(opts.threads));
    line.Add("batch", static_cast<uint64_t>(batch));
    line.Add("updates_per_sec", cell.UpdatesPerSec());
    line.Add("updates_applied", static_cast<uint64_t>(cell.updates_applied));
    line.Add("partial", static_cast<uint64_t>(cell.partial ? 1 : 0));
    line.Add("batch_tasks", cell.batch_tasks);
    line.Add("batch_steals", cell.batch_steals);
    line.Add("footprint_cache_hits", cell.footprint_cache_hits);
    line.Add("new_embeddings", cell.new_embeddings);
    line.Emit();
  }
}

void Main(const BenchOptions& opts) {
  PrintHeader("micro_sched",
              "Work-stealing scheduler calibration: dispatch overhead, "
              "hot-shard skew sweep (static vs stealing), engine scaling",
              opts);
  RunDispatchCell(opts);
  RunSkewSweep(opts);
  RunEngineScale(opts);
}

}  // namespace
}  // namespace bench
}  // namespace gstream

int main(int argc, char** argv) {
  gstream::bench::Main(gstream::bench::BenchOptions::FromArgs(argc, argv));
  return 0;
}
