// Micro-benchmark of the streaming socket server (DESIGN.md §11): loopback
// notification fan-out rate and end-to-end latency (producer send -> Notify
// callback) as a function of subscriber count and outbound-queue policy.
// The shed policy trades delivery completeness for bounded queues under
// fan-out pressure; the `shed` counter reports what that cost per run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/interning.h"
#include "graph/update.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace gstream;
using Clock = std::chrono::steady_clock;

constexpr size_t kRecords = 4000;
constexpr size_t kChunk = 128;  // StreamEdges granularity = send timestamps

// Every record is a distinct edge under one label, so each add produces
// exactly one new embedding for the single-edge pattern — one Notify per
// record per subscriber, the maximum fan-out pressure per applied record.
struct BenchStream {
  std::vector<std::string> dict;
  std::vector<EdgeUpdate> updates;
};

const BenchStream& TestStream() {
  static const BenchStream* stream = [] {
    auto* s = new BenchStream();
    StringInterner interner;
    const LabelId label = interner.Intern("e");
    s->updates.reserve(kRecords);
    for (size_t i = 0; i < kRecords; ++i) {
      EdgeUpdate u;
      u.src = interner.Intern("s" + std::to_string(i));
      u.label = label;
      u.dst = interner.Intern("d" + std::to_string(i));
      s->updates.push_back(u);
    }
    for (uint32_t id = 0; id < interner.size(); ++id)
      s->dict.push_back(interner.Lookup(id));
    return s;
  }();
  return *stream;
}

void BM_ServerNotifyFanout(benchmark::State& state) {
  const int num_subs = static_cast<int>(state.range(0));
  const bool shed = state.range(1) != 0;
  const BenchStream& bs = TestStream();

  double notifies_per_sec = 0;
  double p50_ms = 0, p99_ms = 0;
  uint64_t shed_total = 0;

  for (auto _ : state) {
    server::ServerOptions sopts;
    sopts.port = 0;
    sopts.batch_window = 64;
    sopts.window_flush_millis = 5;
    sopts.heartbeat_millis = 50;
    sopts.slow_client = shed ? server::SlowClientPolicy::kShedOldest
                             : server::SlowClientPolicy::kBlock;
    sopts.outbound_capacity = shed ? 64 : 4096;
    server::Server server(sopts);
    std::string err;
    if (!server.Start(&err)) state.SkipWithError(err.c_str());

    // Send timestamp per record (producer thread writes before the frame
    // goes out; subscriber reader threads read on Notify receipt).
    auto send_ns = std::make_unique<std::atomic<int64_t>[]>(kRecords);
    std::atomic<uint64_t> notify_count{0};
    std::mutex lat_mu;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(kRecords);

    std::vector<std::unique_ptr<server::Client>> subs;
    for (int i = 0; i < num_subs; ++i) {
      server::ClientOptions copts;
      copts.port = server.port();
      copts.name = "sub" + std::to_string(i);
      copts.heartbeat_millis = 50;
      auto sub = std::make_unique<server::Client>(copts);
      const bool sample = i == 0;  // latency sampled on one subscriber
      sub->OnNotify([&, sample](const server::NotifyMsg& m) {
        notify_count.fetch_add(1, std::memory_order_relaxed);
        if (!sample || m.record_index >= kRecords) return;
        const int64_t sent =
            send_ns[m.record_index].load(std::memory_order_relaxed);
        if (sent == 0) return;
        const double ms =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now().time_since_epoch())
                    .count() -
                sent) /
            1e6;
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies_ms.push_back(ms);
      });
      if (!sub->Connect(&err)) state.SkipWithError(err.c_str());
      server::SubAckMsg ack;
      if (!sub->Subscribe(0, "(?a)-[e]->(?b)", &ack, &err))
        state.SkipWithError(err.c_str());
      subs.push_back(std::move(sub));
    }

    server::ClientOptions popts;
    popts.port = server.port();
    popts.name = "producer";
    popts.heartbeat_millis = 50;
    server::Client producer(popts);
    if (!producer.Connect(&err)) state.SkipWithError(err.c_str());
    producer.SetDictionary(bs.dict);

    const auto t0 = Clock::now();
    for (size_t base = 0; base < kRecords; base += kChunk) {
      const size_t n = std::min(kChunk, kRecords - base);
      const int64_t now =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now().time_since_epoch())
              .count();
      for (size_t i = 0; i < n; ++i)
        send_ns[base + i].store(now, std::memory_order_relaxed);
      std::vector<EdgeUpdate> chunk(bs.updates.begin() + base,
                                    bs.updates.begin() + base + n);
      if (!producer.StreamEdges(chunk, &err)) state.SkipWithError(err.c_str());
    }
    if (!producer.WaitApplied(kRecords, &err)) state.SkipWithError(err.c_str());
    // Drain flushes every outbound queue (or counts the remainder shed), so
    // after it the delivery accounting is closed.
    producer.Close();
    server.Drain();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (auto& sub : subs) sub->Close();

    notifies_per_sec = static_cast<double>(notify_count.load()) / secs;
    shed_total = server.stats().notifications_shed;
    {
      std::lock_guard<std::mutex> lock(lat_mu);
      if (!latencies_ms.empty()) {
        std::sort(latencies_ms.begin(), latencies_ms.end());
        p50_ms = latencies_ms[latencies_ms.size() / 2];
        p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
      }
    }
  }

  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["notifies_per_sec"] = notifies_per_sec;
  state.counters["p50_ms"] = p50_ms;
  state.counters["p99_ms"] = p99_ms;
  state.counters["shed"] = static_cast<double>(shed_total);
}
// (subscribers, shed-policy): block vs shed-oldest at 1 and 4 subscribers.
BENCHMARK(BM_ServerNotifyFanout)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
