// Micro-benchmarks of the TRIC index structures: covering-path extraction,
// trie insertion (the indexing phase of Fig. 5) and update routing.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "query/parser.h"
#include "query/path_cover.h"
#include "tric/tric_engine.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace {

using namespace gstream;

workload::QuerySet SnbQueries(size_t n, workload::Workload& w) {
  workload::SnbConfig sc;
  sc.num_updates = 20'000;
  w = workload::GenerateSnb(sc);
  workload::QueryGenConfig qc;
  qc.num_queries = n;
  return workload::GenerateQueries(w, qc);
}

void BM_ExtractCoveringPaths(benchmark::State& state) {
  StringInterner in;
  auto r = ParsePattern(
      "(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
      "(?p1)-[posted]->(pst2); (?com)-[reply]->(pst2);"
      "(pst1)-[containedIn]->(?f2)",
      in);
  for (auto _ : state) {
    auto paths = ExtractCoveringPaths(r.pattern);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_ExtractCoveringPaths);

void BM_TricIndexQueries(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Workload w;
  workload::QuerySet qs = SnbQueries(n, w);
  for (auto _ : state) {
    tric::TricEngine engine(false);
    for (QueryId q = 0; q < qs.queries.size(); ++q)
      engine.AddQuery(q, qs.queries[q]);
    benchmark::DoNotOptimize(engine.forest().NumNodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TricIndexQueries)->Arg(100)->Arg(400)->Arg(1600);

void BM_TricAnswerUpdates(benchmark::State& state) {
  workload::Workload w;
  workload::QuerySet qs = SnbQueries(300, w);
  tric::TricEngine engine(true);
  for (QueryId q = 0; q < qs.queries.size(); ++q) engine.AddQuery(q, qs.queries[q]);
  size_t pos = 0;
  for (auto _ : state) {
    auto result = engine.ApplyUpdate(w.stream[pos]);
    benchmark::DoNotOptimize(result.new_embeddings);
    pos = (pos + 1) % w.stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TricAnswerUpdates);

void BM_TricApplyBatch(benchmark::State& state) {
  // Sharded batch execution over the same stream BM_TricAnswerUpdates feeds
  // one update at a time; range(0) = ApplyBatch window, range(1) = shard
  // worker threads (1 keeps the whole batch on the calling thread).
  const size_t window = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  workload::Workload w;
  workload::QuerySet qs = SnbQueries(300, w);
  tric::TricEngine engine(true);
  for (QueryId q = 0; q < qs.queries.size(); ++q) engine.AddQuery(q, qs.queries[q]);
  engine.SetBatchThreads(threads);
  const auto& updates = w.stream.updates();
  size_t pos = 0;
  for (auto _ : state) {
    const size_t n = std::min(window, updates.size() - pos);
    auto results = engine.ApplyBatch(&updates[pos], n);
    benchmark::DoNotOptimize(results.size());
    pos += n;
    if (pos >= updates.size()) pos = 0;
    state.SetItemsProcessed(state.items_processed() + static_cast<int64_t>(n));
  }
}
BENCHMARK(BM_TricApplyBatch)
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({128, 1})
    ->Args({128, 4});

}  // namespace

BENCHMARK_MAIN();
