// Micro-benchmarks of the workload generators: stream and query-set
// generation throughput (they gate the figure benches' setup time).

#include <benchmark/benchmark.h>

#include "workload/bio.h"
#include "workload/query_gen.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace {

using namespace gstream;

void BM_GenerateSnb(benchmark::State& state) {
  workload::SnbConfig c;
  c.num_updates = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto w = workload::GenerateSnb(c);
    benchmark::DoNotOptimize(w.stream.size());
  }
  state.SetItemsProcessed(state.iterations() * c.num_updates);
}
BENCHMARK(BM_GenerateSnb)->Arg(10'000)->Arg(100'000);

void BM_GenerateTaxi(benchmark::State& state) {
  workload::TaxiConfig c;
  c.num_updates = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto w = workload::GenerateTaxi(c);
    benchmark::DoNotOptimize(w.stream.size());
  }
  state.SetItemsProcessed(state.iterations() * c.num_updates);
}
BENCHMARK(BM_GenerateTaxi)->Arg(10'000)->Arg(100'000);

void BM_GenerateBio(benchmark::State& state) {
  workload::BioConfig c;
  c.num_updates = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto w = workload::GenerateBio(c);
    benchmark::DoNotOptimize(w.stream.size());
  }
  state.SetItemsProcessed(state.iterations() * c.num_updates);
}
BENCHMARK(BM_GenerateBio)->Arg(10'000)->Arg(100'000);

void BM_GenerateQueries(benchmark::State& state) {
  workload::SnbConfig sc;
  sc.num_updates = 20'000;
  auto w = workload::GenerateSnb(sc);
  workload::QueryGenConfig qc;
  qc.num_queries = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto qs = workload::GenerateQueries(w, qc);
    benchmark::DoNotOptimize(qs.queries.size());
  }
  state.SetItemsProcessed(state.iterations() * qc.num_queries);
}
BENCHMARK(BM_GenerateQueries)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
