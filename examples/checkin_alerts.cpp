// Check-in alerts on a synthetic social network — the paper's Fig. 3
// scenario ("notify me when two friends check in at the same place in Rio")
// running against the SNB-like generator at realistic volume, with all seven
// engines side by side on the same stream.
//
//   build/examples/checkin_alerts [--updates=20000]

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "workload/snb.h"

using namespace gstream;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 20'000));

  workload::SnbConfig config;
  config.num_updates = updates;
  workload::Workload w = workload::GenerateSnb(config);
  std::printf("generated SNB-like stream: %zu updates, %zu vertices\n",
              w.stream.size(), w.stream.CountVertices(w.stream.size()));

  // The Fig. 3 pattern plus a few operational variants (note the shared
  // sub-patterns across them: TRIC indexes those once).
  const char* patterns[] = {
      "(?p1)-[knows]->(?p2); (?p1)-[checksIn]->(?plc); (?p2)-[checksIn]->(?plc);"
      "(?plc)-[partOf]->(region_0)",
      "(?p1)-[knows]->(?p2); (?p1)-[checksIn]->(?plc); (?p2)-[checksIn]->(?plc)",
      "(?p1)-[checksIn]->(place_7)",
      "(?p1)-[knows]->(?p2); (?p2)-[checksIn]->(place_7)",
  };

  for (EngineKind kind : PaperEngineKinds()) {
    auto engine = CreateEngine(kind);
    QueryId qid = 0;
    for (const char* p : patterns) {
      ParseResult parsed = ParsePattern(p, *w.interner);
      if (!parsed.ok) {
        std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
        return 1;
      }
      engine->AddQuery(qid++, parsed.pattern);
    }

    WallTimer timer;
    uint64_t alerts = 0;
    size_t first_alert_at = 0;
    for (size_t i = 0; i < w.stream.size(); ++i) {
      UpdateResult r = engine->ApplyUpdate(w.stream[i]);
      alerts += r.new_embeddings;
      if (alerts > 0 && first_alert_at == 0) first_alert_at = i + 1;
    }
    std::printf(
        "%-8s processed %zu updates in %7.1f ms (%0.4f ms/update), "
        "%llu alerts, first after %zu updates\n",
        engine->name().c_str(), w.stream.size(), timer.ElapsedMillis(),
        timer.ElapsedMillis() / w.stream.size(),
        static_cast<unsigned long long>(alerts), first_alert_at);
  }
  return 0;
}
