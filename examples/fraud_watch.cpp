// Property-graph constraints (paper §4.3 extension): continuous fraud
// watches that combine structural patterns with vertex-attribute predicates
// — young accounts moving large sums through shared counterparties.
//
//   build/examples/fraud_watch

#include <cstdio>
#include <memory>

#include "common/interning.h"
#include "engine/engine.h"
#include "graph/properties.h"
#include "query/parser.h"

using namespace gstream;

int main() {
  StringInterner interner;
  PropertyStore props;
  auto engine = CreateEngine(EngineKind::kTricPlus);
  engine->set_property_store(&props);

  // Vertex attributes: account age in days, risk score 0-100.
  LabelId age_days = interner.Intern("ageDays");
  LabelId risk = interner.Intern("risk");
  auto account = [&](const char* name, int64_t age, int64_t r) {
    VertexId v = interner.Intern(name);
    props.Set(v, age_days, age);
    props.Set(v, risk, r);
    return v;
  };
  account("acct_old", 2100, 5);
  account("acct_fresh1", 3, 60);
  account("acct_fresh2", 7, 75);
  account("mule", 14, 90);

  // Watch 1: a fresh account (younger than 30 days) pays into any account
  // that also receives from a high-risk account.
  ParseResult w1 = ParsePattern(
      "(?fresh {ageDays<30})-[pays]->(?sink);"
      "(?risky {risk>=70})-[pays]->(?sink)",
      interner);
  // Watch 2: circular flow between two young accounts.
  ParseResult w2 = ParsePattern(
      "(?a {ageDays<30})-[pays]->(?b {ageDays<30}); (?b)-[pays]->(?a)", interner);
  if (!w1.ok || !w2.ok) {
    std::fprintf(stderr, "parse error: %s%s\n", w1.error.c_str(), w2.error.c_str());
    return 1;
  }
  engine->AddQuery(1, w1.pattern);
  engine->AddQuery(2, w2.pattern);

  auto pay = [&](const char* from, const char* to) {
    UpdateResult r = engine->ApplyUpdate({interner.Intern(from), interner.Intern("pays"),
                                          interner.Intern(to), UpdateOp::kAdd});
    std::printf("%-12s pays %-12s :", from, to);
    if (r.triggered.empty()) {
      std::printf(" ok\n");
    } else {
      for (auto [qid, n] : r.per_query)
        std::printf(" FRAUD-WATCH %u fired (%llu pattern(s))", qid,
                    static_cast<unsigned long long>(n));
      std::printf("\n");
    }
  };

  // Normal traffic: old, low-risk accounts.
  pay("acct_old", "acct_fresh1");

  // Fresh account pays a sink; no risky co-payer yet.
  pay("acct_fresh1", "acct_old");

  // The mule (risk 90) pays into the same sink -> watch 1 fires.
  pay("mule", "acct_old");

  // Circular flow between two fresh accounts -> watch 2 fires on closure.
  pay("acct_fresh1", "acct_fresh2");
  pay("acct_fresh2", "acct_fresh1");

  return 0;
}
