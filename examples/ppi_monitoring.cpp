// Protein-interaction monitoring over the BioGRID-like stream (paper §2:
// PPI repositories are "constantly updated due to additions and
// invalidations of interactions, while scientists manually query PPIs to
// discover new patterns"): standing queries around proteins of interest.
// This is also the paper's stress case — a single edge label means every
// update affects every query.
//
//   build/examples/ppi_monitoring [--updates=20000]

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "workload/bio.h"

using namespace gstream;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 20'000));

  workload::BioConfig config;
  config.num_updates = updates;
  workload::Workload w = workload::GenerateBio(config);
  std::printf("generated BioGRID-like stream: %zu interactions, %zu proteins\n",
              w.stream.size(), w.stream.CountVertices(w.stream.size()));

  // Standing queries a structural biologist might keep open. protein_0 and
  // protein_1 are the oldest (hence best-connected) proteins.
  struct Watch {
    const char* description;
    const char* pattern;
  };
  const Watch watches[] = {
      {"direct partners of protein_0", "(protein_0)-[interacts]->(?x)"},
      {"bridges protein_0 -> ? -> protein_1",
       "(protein_0)-[interacts]->(?x); (?x)-[interacts]->(protein_1)"},
      {"two-hop neighbourhood of protein_2",
       "(protein_2)-[interacts]->(?x); (?x)-[interacts]->(?y)"},
      {"feedback loops through protein_3",
       "(protein_3)-[interacts]->(?x); (?x)-[interacts]->(protein_3)"},
  };

  for (EngineKind kind : {EngineKind::kTric, EngineKind::kTricPlus}) {
    auto engine = CreateEngine(kind);
    for (QueryId qid = 0; qid < 4; ++qid) {
      ParseResult parsed = ParsePattern(watches[qid].pattern, *w.interner);
      if (!parsed.ok) {
        std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
        return 1;
      }
      engine->AddQuery(qid, parsed.pattern);
    }

    uint64_t hits[4] = {0, 0, 0, 0};
    WallTimer timer;
    for (size_t i = 0; i < w.stream.size(); ++i) {
      UpdateResult r = engine->ApplyUpdate(w.stream[i]);
      for (auto [qid, count] : r.per_query) hits[qid] += count;
    }
    const double ms = timer.ElapsedMillis();
    std::printf("%-6s: %zu updates in %.1f ms (%.4f ms/update)\n",
                engine->name().c_str(), w.stream.size(), ms, ms / w.stream.size());
    for (QueryId qid = 0; qid < 4; ++qid)
      std::printf("  %-42s : %llu notifications\n", watches[qid].description,
                  static_cast<unsigned long long>(hits[qid]));
  }
  return 0;
}
