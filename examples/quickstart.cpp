// Quickstart: register continuous queries, stream edge updates, get
// notified. This is the 60-second tour of the public API.
//
//   build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/interning.h"
#include "engine/engine.h"
#include "query/parser.h"

using namespace gstream;

int main() {
  // All labels are interned once at the boundary; the engines only ever see
  // 32-bit ids.
  StringInterner interner;

  // 1. Create the TRIC+ engine (trie clustering + join caching). Swap the
  //    EngineKind to compare against the paper's baselines.
  std::unique_ptr<ContinuousEngine> engine = CreateEngine(EngineKind::kTricPlus);

  // 2. Register continuous queries in the textual pattern language.
  //    Variables start with '?', literals are entity labels.
  const char* patterns[] = {
      // "Tell me when somebody I know checks in where I did."
      "(?me)-[knows]->(?friend); (?me)-[checksIn]->(?where);"
      "(?friend)-[checksIn]->(?where)",
      // "Tell me when anything is posted to the pinned post pst1."
      "(?someone)-[posted]->(pst1)",
  };
  for (QueryId qid = 0; qid < 2; ++qid) {
    ParseResult parsed = ParsePattern(patterns[qid], interner);
    if (!parsed.ok) {
      std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
      return 1;
    }
    engine->AddQuery(qid, parsed.pattern);
  }
  std::printf("registered %zu continuous queries\n", engine->NumQueries());

  // 3. Stream graph updates; each returns the queries it satisfied.
  struct Event {
    const char* src;
    const char* label;
    const char* dst;
  };
  const Event stream[] = {
      {"ann", "knows", "bob"},     {"ann", "checksIn", "rio"},
      {"cid", "checksIn", "rio"},  {"bob", "posted", "pst1"},
      {"bob", "checksIn", "rio"},  // completes query 0: ann & bob both in rio
  };

  for (const auto& [src, label, dst] : stream) {
    EdgeUpdate u{interner.Intern(src), interner.Intern(label), interner.Intern(dst),
                 UpdateOp::kAdd};
    UpdateResult result = engine->ApplyUpdate(u);
    std::printf("update (%s)-[%s]->(%s):", src, label, dst);
    if (result.triggered.empty()) {
      std::printf(" no matches\n");
    } else {
      for (auto [qid, count] : result.per_query)
        std::printf(" query %u matched (%llu new embeddings)", qid,
                    static_cast<unsigned long long>(count));
      std::printf("\n");
    }
  }

  std::printf("engine memory: %.1f KB\n",
              static_cast<double>(engine->MemoryBytes()) / 1024.0);
  return 0;
}
