// Spam detection over a social-network stream — the paper's motivating
// example (Fig. 1): catch groups of users promoting content that links to
// flagged domains, either as a friend clique sharing/liking each other's
// posts or as accounts posting from the same IP address.
//
//   build/examples/spam_detection

#include <cstdio>
#include <memory>
#include <vector>

#include "common/interning.h"
#include "engine/engine.h"
#include "query/parser.h"

using namespace gstream;

int main() {
  StringInterner interner;
  auto engine = CreateEngine(EngineKind::kTricPlus);

  // Fig. 1(a): users who know each other, one shares a post linking to a
  // flagged domain, the other likes it.
  ParseResult clique = ParsePattern(
      "(?u1)-[knows]->(?u2);"
      "(?u1)-[shares]->(?post); (?post)-[links]->(flaggedDomain);"
      "(?u2)-[likes]->(?post)",
      interner);
  // Fig. 1(b): two users sharing the same flagged post from the same IP.
  ParseResult same_ip = ParsePattern(
      "(?u1)-[loggedFrom]->(?ip); (?u2)-[loggedFrom]->(?ip);"
      "(?u1)-[shares]->(?post); (?u2)-[shares]->(?post);"
      "(?post)-[links]->(flaggedDomain)",
      interner);
  // Note how both queries contain the shared sub-pattern
  // (?u)-[shares]->(?post)-[links]->(flaggedDomain) — exactly what TRIC
  // clusters into one trie path with one shared materialized view.
  if (!clique.ok || !same_ip.ok) return 1;
  engine->AddQuery(100, clique.pattern);
  engine->AddQuery(200, same_ip.pattern);

  auto apply = [&](const char* s, const char* l, const char* t) {
    UpdateResult r = engine->ApplyUpdate(
        {interner.Intern(s), interner.Intern(l), interner.Intern(t), UpdateOp::kAdd});
    for (auto [qid, count] : r.per_query) {
      std::printf("  !! ALERT query %u (%s) fired on (%s)-[%s]->(%s) — %llu group(s)\n",
                  qid, qid == 100 ? "friend clique" : "shared IP", s, l, t,
                  static_cast<unsigned long long>(count));
    }
  };

  std::printf("monitoring for spam patterns...\n");
  // Benign background activity.
  apply("alice", "knows", "bob");
  apply("alice", "shares", "cat_video");
  apply("bob", "likes", "cat_video");

  // A spam ring forms.
  apply("eve", "knows", "mallory");
  apply("eve", "shares", "promo_post");
  apply("promo_post", "links", "flaggedDomain");
  std::printf("(no alert yet: mallory has not amplified the post)\n");
  apply("mallory", "likes", "promo_post");  // -> clique alert

  // The same post now shared again from one IP by two accounts.
  apply("eve", "loggedFrom", "ip_1337");
  apply("sybil", "loggedFrom", "ip_1337");
  apply("sybil", "shares", "promo_post");  // -> shared-IP alert

  std::printf("done; %zu queries standing, %.1f KB engine state\n",
              engine->NumQueries(),
              static_cast<double>(engine->MemoryBytes()) / 1024.0);
  return 0;
}
