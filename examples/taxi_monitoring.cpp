// Road-network monitoring over the TAXI-like stream (paper §2: "subgraph
// matching over road networks could capture traffic events, and taxi route
// pricing"): continuous watches over hot zones, round trips, and driver
// behaviour.
//
//   build/examples/taxi_monitoring [--updates=30000]

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "workload/taxi.h"

using namespace gstream;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 30'000));

  workload::TaxiConfig config;
  config.num_updates = updates;
  workload::Workload w = workload::GenerateTaxi(config);
  std::printf("generated TAXI-like stream: %zu updates, %zu vertices\n",
              w.stream.size(), w.stream.CountVertices(w.stream.size()));

  struct Watch {
    const char* description;
    const char* pattern;
  };
  const Watch watches[] = {
      {"card-paid rides out of the airport zone",
       "(?ride)-[pickupAt]->(zone_0); (?ride)-[paidBy]->(card_1)"},
      {"round trips (same pickup and dropoff zone)",
       "(?ride)-[pickupAt]->(?z); (?ride)-[dropoffAt]->(?z)"},
      {"rides on medallion_3 with an identified driver",
       "(?ride)-[byMedallion]->(medallion_3); (?ride)-[drivenBy]->(?d)"},
      {"driver licensed on medallion_3 picking up downtown",
       "(?d)-[drives]->(medallion_3); (?ride)-[drivenBy]->(?d);"
       "(?ride)-[pickupAt]->(zone_1)"},
  };

  auto engine = CreateEngine(EngineKind::kTricPlus);
  for (QueryId qid = 0; qid < 4; ++qid) {
    ParseResult parsed = ParsePattern(watches[qid].pattern, *w.interner);
    if (!parsed.ok) {
      std::fprintf(stderr, "parse error in watch %u: %s\n", qid,
                   parsed.error.c_str());
      return 1;
    }
    engine->AddQuery(qid, parsed.pattern);
  }

  uint64_t hits[4] = {0, 0, 0, 0};
  WallTimer timer;
  for (size_t i = 0; i < w.stream.size(); ++i) {
    UpdateResult r = engine->ApplyUpdate(w.stream[i]);
    for (auto [qid, count] : r.per_query) hits[qid] += count;
  }
  const double ms = timer.ElapsedMillis();

  std::printf("%s processed %zu updates in %.1f ms (%.4f ms/update)\n",
              engine->name().c_str(), w.stream.size(), ms, ms / w.stream.size());
  for (QueryId qid = 0; qid < 4; ++qid)
    std::printf("  watch %u — %-48s : %llu notifications\n", qid,
                watches[qid].description, static_cast<unsigned long long>(hits[qid]));
  return 0;
}
