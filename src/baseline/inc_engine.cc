#include "baseline/inc_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {
namespace baseline {

UpdateResult IncEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    // INC owns no per-query state beyond the shared views; retracting the
    // tuple is the whole story (deletions trigger nothing).
    result.changed = RemoveFromBaseViews(u);
    return result;
  }
  if (IsDuplicateUpdate(u)) return result;
  return ProcessInsert(u);
}

UpdateResult IncEngine::ProcessInsert(const EdgeUpdate& u) {
  UpdateResult result;
  result.changed = true;

  if (route_enabled() && !prefilter_.MayMatch(u)) {
    // No registered pattern carries this label, so there is no base view to
    // append to and no affected query — an O(words) reject on the
    // sequential path too.
    NotePrefilterReject();
    return result;
  }

  AppendToBaseViews(u);

  const std::vector<QueryId> affected = AffectedQueries(u);
  NoteRoutedCandidates(affected.size());
  for (QueryId qid : affected) {
    if (BudgetExceeded()) {
      result.timed_out = true;
      return result;
    }
    QueryEntry& entry = queries_.at(qid);
    const QueryPattern& q = entry.pattern;
    if (!AllViewsNonEmpty(entry)) continue;

    const size_t num_paths = entry.paths.size();
    size_t transient_bytes = 0;

    // Which covering paths does the update touch?
    std::vector<bool> touched(num_paths, false);
    bool any_touched = false;
    for (size_t pi = 0; pi < num_paths; ++pi) {
      for (const auto& pattern : entry.signatures[pi]) {
        if (pattern.Matches(u)) {
          touched[pi] = true;
          any_touched = true;
          break;
        }
      }
    }
    if (!any_touched) continue;
    NoteFinalJoinPass();

    // Seeded deltas for touched paths; lazy INV-style recomputation for the
    // rest (computed at most once per query per update).
    std::vector<std::unique_ptr<Relation>> deltas(num_paths);
    std::vector<std::unique_ptr<Relation>> fulls(num_paths);
    bool infeasible = false;
    for (size_t pi = 0; pi < num_paths && !infeasible; ++pi) {
      if (!touched[pi]) continue;
      deltas[pi] = MaterializePathDelta(entry, pi, u, IndexSource(), transient_bytes);
    }
    auto full_of = [&](size_t pi) -> Relation* {
      if (fulls[pi] == nullptr)
        fulls[pi] = MaterializeFullPath(entry, pi, IndexSource(), transient_bytes);
      return fulls[pi].get();
    };

    // New assignments (over all query vertices), deduped across seed paths.
    Relation assignments(static_cast<uint32_t>(q.NumVertices()));
    for (size_t pi = 0; pi < num_paths && !infeasible; ++pi) {
      if (!touched[pi] || deltas[pi] == nullptr || deltas[pi]->Empty()) continue;
      OwnedBindings acc = PathRowsToBindings(AllRows(*deltas[pi]), entry.specs[pi]);
      for (size_t pj = 0; pj < num_paths && !acc.Empty(); ++pj) {
        if (pj == pi) continue;
        Relation* other = full_of(pj);
        if (other == nullptr) {  // empty path view => query unsatisfiable now
          infeasible = true;
          break;
        }
        OwnedBindings ob = PathRowsToBindings(AllRows(*other), entry.specs[pj]);
        acc = JoinBindingRanges(acc.schema, acc.All(), ob.schema, ob.All());
        if (BudgetExceeded()) {
          result.timed_out = true;
          return result;
        }
      }
      if (infeasible || acc.Empty()) continue;

      // Project onto canonical vertex order; dedup across seeds.
      std::vector<uint32_t> perm(q.NumVertices());
      for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
      std::vector<VertexId> row(q.NumVertices());
      for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
        const VertexId* src = acc.rows->Row(r);
        for (uint32_t v = 0; v < q.NumVertices(); ++v) row[v] = src[perm[v]];
        // §4.3 extra phase: property constraints on the full assignment.
        if (!SatisfiesConstraints(q, row.data())) continue;
        assignments.Append(row.data());
      }
    }

    NotePeakTransient(transient_bytes + assignments.MemoryBytes());
    result.AddQueryCount(qid, assignments.NumRows());
  }
  return result;
}

bool IncEngine::EvaluateWindowSeeded(
    QueryEntry& entry, InvWindowContext& wctx,
    const std::vector<std::pair<uint32_t, const EdgeUpdate*>>& seeds,
    uint32_t probe_weight, bool& pass_ran, std::vector<uint32_t>& tags) {
  pass_ran = false;
  tags.clear();

  const QueryPattern& q = entry.pattern;
  if (!AllViewsNonEmpty(entry)) return true;

  const size_t num_paths = entry.paths.size();
  size_t transient_bytes = 0;

  // Which covering paths does *any* window update touch?
  std::vector<bool> touched(num_paths, false);
  bool any_touched = false;
  for (size_t pi = 0; pi < num_paths; ++pi) {
    for (const auto& pattern : entry.signatures[pi]) {
      for (const auto& [position, u] : seeds) {
        if (pattern.Matches(*u)) {
          touched[pi] = true;
          any_touched = true;
          break;
        }
      }
      if (touched[pi]) break;
    }
  }
  if (!any_touched) return true;
  NoteFinalJoinPass();
  pass_ran = true;

  // One tagged seeded evaluation per (query, window): batched deltas for
  // the touched paths, each other path re-materialized at most once.
  // `probe_weight` > 1 marks a pass standing in for that many per-query
  // chains (window-cache build decisions stay identical to the per-query
  // pipeline's).
  std::vector<std::unique_ptr<Relation>> deltas(num_paths);
  std::vector<std::unique_ptr<Relation>> fulls(num_paths);
  bool infeasible = false;
  for (size_t pi = 0; pi < num_paths; ++pi) {
    if (!touched[pi]) continue;
    deltas[pi] =
        MaterializePathDeltaBatch(entry, pi, seeds, IndexSource(), wctx.prov,
                                  transient_bytes, probe_weight);
  }
  auto full_of = [&](size_t pi) -> Relation* {
    if (fulls[pi] == nullptr)
      fulls[pi] = MaterializeFullPathTagged(entry, pi, IndexSource(), wctx.prov,
                                            transient_bytes, probe_weight);
    return fulls[pi].get();
  };

  // Assignments over all query vertices, deduped across seed paths, each
  // tagged with the window position sequential execution reports it at.
  Relation assignments(static_cast<uint32_t>(q.NumVertices()));
  assignments.EnableProvenance();
  for (size_t pi = 0; pi < num_paths && !infeasible; ++pi) {
    if (!touched[pi] || deltas[pi] == nullptr || deltas[pi]->Empty()) continue;
    OwnedBindings acc = PathRowsToBindingsTagged(
        AllRows(*deltas[pi]), entry.specs[pi], TagsOfProvenance(*deltas[pi]));
    for (size_t pj = 0; pj < num_paths && !acc.Empty(); ++pj) {
      if (pj == pi) continue;
      Relation* other = full_of(pj);
      if (other == nullptr) {
        // A dead path chain means the query is unsatisfiable now — unless
        // the materialization aborted on the budget, which must end the
        // whole finalize (results are partial either way under timeout).
        if (BudgetExceededNow()) return false;
        infeasible = true;
        break;
      }
      OwnedBindings ob = PathRowsToBindingsTagged(AllRows(*other), entry.specs[pj],
                                                  TagsOfProvenance(*other));
      acc = JoinBindingRangesTagged(acc.schema, acc.All(), ob.schema, ob.All(),
                                    TagsOfProvenance(*ob.rows));
      if (BudgetExceededNow()) return false;
    }
    if (infeasible || acc.Empty()) continue;

    std::vector<uint32_t> perm(q.NumVertices());
    for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
    std::vector<VertexId> row(q.NumVertices());
    for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
      const VertexId* src = acc.rows->Row(r);
      for (uint32_t v = 0; v < q.NumVertices(); ++v) row[v] = src[perm[v]];
      if (!SatisfiesConstraints(q, row.data())) continue;
      assignments.AppendTagged(row.data(), acc.rows->ProvOf(r));
    }
  }

  // The per-position counts the caller scatters back onto the window results.
  tags.reserve(assignments.NumRows());
  for (size_t r = 0; r < assignments.NumRows(); ++r) {
    const uint32_t tag = assignments.ProvOf(r);
    GS_DCHECK(tag > 0);
    tags.push_back(tag);
  }
  NotePeakTransient(transient_bytes + assignments.MemoryBytes());
  return true;
}

void IncEngine::FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) {
  InvWindowContext& wctx = static_cast<InvWindowContext&>(ctx);
  if (route_enabled()) {
    FinalizeWindowRouted(wctx, window_results);
    return;
  }
  if (wctx.affected.empty()) return;
  std::sort(wctx.affected.begin(), wctx.affected.end());

  size_t i = 0;
  while (i < wctx.affected.size()) {
    const QueryId qid = wctx.affected[i].first;
    size_t j = i;
    while (j < wctx.affected.size() && wctx.affected[j].first == qid) ++j;

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    // Shared finalization (§9): signature-equal queries share views, seed
    // positions, and binding specs, so one member's seeded evaluation (its
    // memoized tag list) serves the whole group.
    SharedFinalizeMemo* memo = SharedMemoFor(qid, wctx);
    std::vector<uint64_t> window_key;
    if (memo != nullptr) {
      window_key.reserve(j - i);
      for (size_t k = i; k < j; ++k) window_key.push_back(wctx.affected[k].second);
      if (memo->evaluated && memo->runtime_key == window_key) {
        ReplaySharedTags(*memo, qid, window_results);
        i = j;
        continue;
      }
    }

    // The query's window updates, ascending by position.
    std::vector<std::pair<uint32_t, const EdgeUpdate*>> seeds;
    seeds.reserve(j - i);
    for (size_t k = i; k < j; ++k)
      seeds.emplace_back(wctx.affected[k].second,
                         &wctx.window_updates[wctx.affected[k].second - 1]);
    i = j;

    QueryEntry& entry = queries_.at(qid);
    bool pass_ran = false;
    std::vector<uint32_t> tags;
    if (!EvaluateWindowSeeded(entry, wctx, seeds, SharedGroupSize(qid), pass_ran,
                              tags))
      return;
    if (memo != nullptr) memo->Store(pass_ran, std::move(window_key), &tags);
    ScatterTagCounts(tags, qid, window_results);
  }
}

void IncEngine::FinalizeWindowRouted(InvWindowContext& wctx,
                                     UpdateResult* window_results) {
  if (wctx.affected_groups.empty()) return;
  std::sort(wctx.affected_groups.begin(), wctx.affected_groups.end());
  const auto& groups = finalize_groups();

  size_t i = 0;
  while (i < wctx.affected_groups.size()) {
    const uint32_t gid = wctx.affected_groups[i].first;
    size_t j = i;
    while (j < wctx.affected_groups.size() && wctx.affected_groups[j].first == gid)
      ++j;

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    // The group's window updates, ascending by position. Signature-equal
    // members are affected at identical positions, so the group's seed list
    // is every member's seed list.
    std::vector<std::pair<uint32_t, const EdgeUpdate*>> seeds;
    seeds.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      const uint32_t position = wctx.affected_groups[k].second;
      seeds.emplace_back(position, &wctx.window_updates[position - 1]);
    }
    i = j;

    const FinalizeGroup& group = *groups[gid];
    if (GroupSharingApplies(group)) {
      // One seeded evaluation of the representative serves every member.
      QueryEntry& rep = queries_.at(group.members[0]);
      bool pass_ran = false;
      std::vector<uint32_t> tags;
      if (!EvaluateWindowSeeded(rep, wctx, seeds,
                                static_cast<uint32_t>(group.members.size()),
                                pass_ran, tags))
        return;
      if (pass_ran) NoteSharedGroupPass();
      if (tags.empty()) continue;
      for (QueryId qid : group.members) {
        std::vector<uint32_t> member_tags = tags;
        ScatterTagCounts(member_tags, qid, window_results);
      }
    } else {
      for (QueryId qid : group.members) {
        if (BudgetExceededNow()) return;
        bool pass_ran = false;
        std::vector<uint32_t> tags;
        if (!EvaluateWindowSeeded(queries_.at(qid), wctx, seeds,
                                  /*probe_weight=*/1, pass_ran, tags))
          return;
        ScatterTagCounts(tags, qid, window_results);
      }
    }
  }
}

}  // namespace baseline
}  // namespace gstream
