#include "baseline/inc_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {
namespace baseline {

UpdateResult IncEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    // INC owns no per-query state beyond the shared views; retracting the
    // tuple is the whole story (deletions trigger nothing).
    result.changed = RemoveFromBaseViews(u);
    return result;
  }
  if (IsDuplicateUpdate(u)) return result;
  return ProcessInsert(u);
}

UpdateResult IncEngine::ProcessInsert(const EdgeUpdate& u) {
  UpdateResult result;
  result.changed = true;

  AppendToBaseViews(u);

  for (QueryId qid : AffectedQueries(u)) {
    if (BudgetExceeded()) {
      result.timed_out = true;
      return result;
    }
    QueryEntry& entry = queries_.at(qid);
    const QueryPattern& q = entry.pattern;
    if (!AllViewsNonEmpty(entry)) continue;

    const size_t num_paths = entry.paths.size();
    size_t transient_bytes = 0;

    // Which covering paths does the update touch?
    std::vector<bool> touched(num_paths, false);
    bool any_touched = false;
    for (size_t pi = 0; pi < num_paths; ++pi) {
      for (const auto& pattern : entry.signatures[pi]) {
        if (pattern.Matches(u)) {
          touched[pi] = true;
          any_touched = true;
          break;
        }
      }
    }
    if (!any_touched) continue;

    // Seeded deltas for touched paths; lazy INV-style recomputation for the
    // rest (computed at most once per query per update).
    std::vector<std::unique_ptr<Relation>> deltas(num_paths);
    std::vector<std::unique_ptr<Relation>> fulls(num_paths);
    bool infeasible = false;
    for (size_t pi = 0; pi < num_paths && !infeasible; ++pi) {
      if (!touched[pi]) continue;
      deltas[pi] = MaterializePathDelta(entry, pi, u, IndexSource(), transient_bytes);
    }
    auto full_of = [&](size_t pi) -> Relation* {
      if (fulls[pi] == nullptr)
        fulls[pi] = MaterializeFullPath(entry, pi, IndexSource(), transient_bytes);
      return fulls[pi].get();
    };

    // New assignments (over all query vertices), deduped across seed paths.
    Relation assignments(static_cast<uint32_t>(q.NumVertices()));
    for (size_t pi = 0; pi < num_paths && !infeasible; ++pi) {
      if (!touched[pi] || deltas[pi] == nullptr || deltas[pi]->Empty()) continue;
      OwnedBindings acc = PathRowsToBindings(AllRows(*deltas[pi]), entry.specs[pi]);
      for (size_t pj = 0; pj < num_paths && !acc.Empty(); ++pj) {
        if (pj == pi) continue;
        Relation* other = full_of(pj);
        if (other == nullptr) {  // empty path view => query unsatisfiable now
          infeasible = true;
          break;
        }
        OwnedBindings ob = PathRowsToBindings(AllRows(*other), entry.specs[pj]);
        acc = JoinBindingRanges(acc.schema, acc.All(), ob.schema, ob.All());
        if (BudgetExceeded()) {
          result.timed_out = true;
          return result;
        }
      }
      if (infeasible || acc.Empty()) continue;

      // Project onto canonical vertex order; dedup across seeds.
      std::vector<uint32_t> perm(q.NumVertices());
      for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
      std::vector<VertexId> row(q.NumVertices());
      for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
        const VertexId* src = acc.rows->Row(r);
        for (uint32_t v = 0; v < q.NumVertices(); ++v) row[v] = src[perm[v]];
        // §4.3 extra phase: property constraints on the full assignment.
        if (!SatisfiesConstraints(q, row.data())) continue;
        assignments.Append(row.data());
      }
    }

    NotePeakTransient(transient_bytes + assignments.MemoryBytes());
    result.AddQueryCount(qid, assignments.NumRows());
  }
  return result;
}

}  // namespace baseline
}  // namespace gstream
