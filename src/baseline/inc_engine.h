#ifndef GSTREAM_BASELINE_INC_ENGINE_H_
#define GSTREAM_BASELINE_INC_ENGINE_H_

#include <memory>
#include <string>

#include "baseline/inverted_common.h"

namespace gstream {
namespace baseline {

/// INC — the incremental inverted-index baseline (paper §5.2) and its
/// caching extension INC+.
///
/// Same indexes and per-path processing as INV; the difference is the join
/// execution on the paths the update touches: instead of re-materializing
/// them in full, INC seeds those paths with the update tuple alone ("makes
/// use of only the update u_i and thus reduces the number of tuples examined
/// throughout the joining process of the paths") and grows the fragment
/// left/right over the edge views. The *other* covering paths of an affected
/// query still have to be re-materialized INV-style — INC owns no per-path
/// state — which is why the paper measures INC roughly 2x (not 100x) faster
/// than INV, still far behind TRIC's shared trie views.
///
/// INC+ reuses the per-view hash tables through a `JoinCache`.
class IncEngine : public InvertedIndexEngineBase {
 public:
  explicit IncEngine(bool enable_cache) : InvertedIndexEngineBase(enable_cache) {}

  std::string name() const override { return cache_ ? "INC+" : "INC"; }
  UpdateResult ApplyUpdate(const EdgeUpdate& u) override;

 protected:
  UpdateResult ProcessInsert(const EdgeUpdate& u) override;

  /// Window-delta pipeline: one tagged seeded evaluation per (query,
  /// window) — path deltas batched over every window update, the other
  /// paths re-materialized once instead of once per update. Routed mode
  /// (DESIGN.md §12) iterates the window's affected signature *groups* and
  /// evaluates each group's representative once.
  void FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) override;

 private:
  /// One tagged seeded whole-window evaluation of `entry` (the shared body
  /// of the legacy and routed FinalizeWindow paths): batched path deltas
  /// over `seeds`, window-position tag per new assignment. `pass_ran` is
  /// false when no covering path was touched or a view was empty. Returns
  /// false on a budget abort (the caller must end the finalize).
  bool EvaluateWindowSeeded(
      QueryEntry& entry, InvWindowContext& wctx,
      const std::vector<std::pair<uint32_t, const EdgeUpdate*>>& seeds,
      uint32_t probe_weight, bool& pass_ran, std::vector<uint32_t>& tags);

  void FinalizeWindowRouted(InvWindowContext& wctx, UpdateResult* window_results);
};

}  // namespace baseline
}  // namespace gstream

#endif  // GSTREAM_BASELINE_INC_ENGINE_H_
