#include "baseline/inv_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {
namespace baseline {

bool InvEngine::EvaluateQueryTotal(QueryEntry& entry, uint64_t& total) {
  total = 0;
  if (!AllViewsNonEmpty(entry)) return true;  // Step 1 candidate filter
  NoteFinalJoinPass();

  // Steps 2+3: re-materialize every covering path from scratch.
  size_t transient_bytes = 0;
  std::vector<std::unique_ptr<Relation>> path_views;
  for (size_t pi = 0; pi < entry.paths.size(); ++pi) {
    auto view = MaterializeFullPath(entry, pi, IndexSource(), transient_bytes);
    if (view == nullptr) {
      NotePeakTransient(transient_bytes);
      return !BudgetExceeded();
    }
    path_views.push_back(std::move(view));
  }
  NotePeakTransient(transient_bytes);

  // Final join across paths on shared query vertices.
  OwnedBindings acc = PathRowsToBindings(AllRows(*path_views[0]), entry.specs[0]);
  for (size_t pi = 1; pi < entry.paths.size() && !acc.Empty(); ++pi) {
    OwnedBindings other = PathRowsToBindings(AllRows(*path_views[pi]), entry.specs[pi]);
    acc = JoinBindingRanges(acc.schema, acc.All(), other.schema, other.All());
    if (BudgetExceeded()) return false;
  }
  if (acc.Empty()) return true;
  if (!entry.pattern.HasConstraints()) {
    total = acc.rows->NumRows();
    return true;
  }

  // §4.3 extra phase: count only assignments passing property constraints.
  const uint32_t num_vertices = static_cast<uint32_t>(entry.pattern.NumVertices());
  std::vector<uint32_t> perm(num_vertices);
  for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
  std::vector<VertexId> row(num_vertices);
  for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
    const VertexId* src = acc.rows->Row(r);
    for (uint32_t v = 0; v < num_vertices; ++v) row[v] = src[perm[v]];
    if (SatisfiesConstraints(entry.pattern, row.data())) ++total;
  }
  return true;
}

void InvEngine::AddQueryImpl(QueryId qid, const QueryPattern& q) {
  InvertedIndexEngineBase::AddQueryImpl(qid, q);
  if (seen_edges_.empty()) return;  // pre-stream registration: total is 0
  QueryEntry& entry = queries_.at(qid);
  uint64_t total = 0;
  if (EvaluateQueryTotal(entry, total)) entry.last_count = total;
}

UpdateResult InvEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    result.changed = RemoveFromBaseViews(u);
    if (!result.changed) return result;
    // Counts may have dropped; refresh the diff baseline of the affected
    // queries (deletions cannot trigger notifications).
    for (QueryId qid : AffectedQueries(u)) {
      QueryEntry& entry = queries_.at(qid);
      uint64_t total = 0;
      if (!EvaluateQueryTotal(entry, total)) {
        result.timed_out = true;
        return result;
      }
      entry.last_count = total;
    }
    return result;
  }

  if (IsDuplicateUpdate(u)) return result;
  return ProcessInsert(u);
}

UpdateResult InvEngine::ProcessInsert(const EdgeUpdate& u) {
  UpdateResult result;
  result.changed = true;

  if (route_enabled() && !prefilter_.MayMatch(u)) {
    // No registered pattern carries this label, so there is no base view to
    // append to and no affected query — an O(words) reject on the
    // sequential path too.
    NotePrefilterReject();
    return result;
  }

  AppendToBaseViews(u);

  const std::vector<QueryId> affected = AffectedQueries(u);
  NoteRoutedCandidates(affected.size());
  for (QueryId qid : affected) {
    if (BudgetExceeded()) {
      result.timed_out = true;
      return result;
    }
    QueryEntry& entry = queries_.at(qid);
    uint64_t total = 0;
    if (!EvaluateQueryTotal(entry, total)) {
      result.timed_out = true;
      return result;
    }
    if (total == 0) continue;
    GS_DCHECK(total >= entry.last_count);
    result.AddQueryCount(qid, total - entry.last_count);
    entry.last_count = total;
  }
  return result;
}

bool InvEngine::EvaluateWindowTagged(QueryEntry& entry, InvWindowContext& wctx,
                                     uint32_t probe_weight, bool& pass_ran,
                                     std::vector<uint32_t>& tags, uint64_t& total) {
  pass_ran = false;
  tags.clear();
  total = 0;

  // End-of-window candidate filter: views only grow inside an insert window,
  // so an empty view here means zero embeddings at every member position
  // (sequential evaluation would have found total == 0 each time).
  if (!AllViewsNonEmpty(entry)) return true;
  NoteFinalJoinPass();
  pass_ran = true;

  // One tagged full evaluation per (query, window): the per-update diffs INV
  // recomputes from scratch each time fall out of the histogram of
  // assignment tags (an assignment's tag is the window position its last
  // contributing edge arrived at — exactly when the sequential diff first
  // counts it; tag 0 = already counted in last_count). `probe_weight` > 1
  // marks a pass standing in for that many per-query chains (window-cache
  // build decisions stay identical to the per-query pipeline's).
  size_t transient_bytes = 0;
  std::vector<std::unique_ptr<Relation>> path_views;
  for (size_t pi = 0; pi < entry.paths.size(); ++pi) {
    auto view = MaterializeFullPathTagged(entry, pi, IndexSource(), wctx.prov,
                                          transient_bytes, probe_weight);
    if (view == nullptr) {
      NotePeakTransient(transient_bytes);
      // A dead chain means total 0 at every position (for every member) —
      // unless the budget killed it, which must end the whole finalize.
      return !BudgetExceededNow();
    }
    path_views.push_back(std::move(view));
  }
  NotePeakTransient(transient_bytes);

  OwnedBindings acc = PathRowsToBindingsTagged(
      AllRows(*path_views[0]), entry.specs[0], TagsOfProvenance(*path_views[0]));
  for (size_t pi = 1; pi < entry.paths.size() && !acc.Empty(); ++pi) {
    OwnedBindings other = PathRowsToBindingsTagged(
        AllRows(*path_views[pi]), entry.specs[pi], TagsOfProvenance(*path_views[pi]));
    acc = JoinBindingRangesTagged(acc.schema, acc.All(), other.schema,
                                  other.All(), TagsOfProvenance(*other.rows));
    if (BudgetExceededNow()) return false;
  }
  if (acc.Empty()) return true;

  // Count assignments passing the §4.3 property constraints, split by tag.
  const uint32_t num_vertices = static_cast<uint32_t>(entry.pattern.NumVertices());
  std::vector<uint32_t> perm(num_vertices);
  for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
  std::vector<VertexId> row(num_vertices);
  uint64_t pre_window = 0;
  for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
    if (entry.pattern.HasConstraints()) {
      const VertexId* src = acc.rows->Row(r);
      for (uint32_t v = 0; v < num_vertices; ++v) row[v] = src[perm[v]];
      if (!SatisfiesConstraints(entry.pattern, row.data())) continue;
    }
    ++total;
    const uint32_t tag = acc.rows->ProvOf(r);
    if (tag == 0)
      ++pre_window;
    else
      tags.push_back(tag);
  }
  // Assignments predating the window are exactly the ones the evaluated
  // entry's previous evaluations already counted.
  if (total > 0) GS_DCHECK(pre_window == entry.last_count);
  (void)pre_window;
  return true;
}

void InvEngine::FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) {
  InvWindowContext& wctx = static_cast<InvWindowContext&>(ctx);
  if (route_enabled()) {
    FinalizeWindowRouted(wctx, window_results);
    return;
  }
  if (wctx.affected.empty()) return;
  std::sort(wctx.affected.begin(), wctx.affected.end());

  size_t i = 0;
  while (i < wctx.affected.size()) {
    const QueryId qid = wctx.affected[i].first;
    size_t j = i;
    while (j < wctx.affected.size() && wctx.affected[j].first == qid) ++j;

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    // Shared finalization (§9): signature-equal queries see the same views
    // and the same affecting positions, so the memoized tag histogram (and
    // end-of-window total) of the group's first member serves the rest.
    SharedFinalizeMemo* memo = SharedMemoFor(qid, wctx);
    std::vector<uint64_t> window_key;
    if (memo != nullptr) {
      window_key.reserve(j - i);
      for (size_t k = i; k < j; ++k) window_key.push_back(wctx.affected[k].second);
    }
    i = j;  // positions are implied by the provenance histogram below
    if (memo != nullptr && memo->evaluated && memo->runtime_key == window_key) {
      if (memo->total == 0) {  // no-op for every member (see below)
        if (memo->pass_ran) NoteSharedServed(*memo);
        continue;
      }
      QueryEntry& entry = queries_.at(qid);
      // Assignments predating the window are exactly the ones this member's
      // previous evaluations already counted — same invariant as the
      // evaluating member's pre_window check.
      GS_DCHECK(entry.last_count == memo->total - memo->tags.size());
      ReplaySharedTags(*memo, qid, window_results);
      entry.last_count = memo->total;
      continue;
    }

    QueryEntry& entry = queries_.at(qid);
    bool pass_ran = false;
    std::vector<uint32_t> tags;
    uint64_t total = 0;
    if (!EvaluateWindowTagged(entry, wctx, SharedGroupSize(qid), pass_ran, tags,
                              total))
      return;
    if (memo != nullptr) memo->Store(pass_ran, std::move(window_key), &tags, total);
    if (total == 0) continue;
    ScatterTagCounts(tags, qid, window_results);
    entry.last_count = total;
  }
}

void InvEngine::FinalizeWindowRouted(InvWindowContext& wctx,
                                     UpdateResult* window_results) {
  if (wctx.affected_groups.empty()) return;
  std::sort(wctx.affected_groups.begin(), wctx.affected_groups.end());
  const auto& groups = finalize_groups();

  size_t i = 0;
  while (i < wctx.affected_groups.size()) {
    const uint32_t gid = wctx.affected_groups[i].first;
    size_t j = i;
    while (j < wctx.affected_groups.size() && wctx.affected_groups[j].first == gid)
      ++j;
    i = j;  // positions are implied by the provenance histogram

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    const FinalizeGroup& group = *groups[gid];
    if (GroupSharingApplies(group)) {
      // Evaluate the group's representative once; the tagged histogram (and
      // end-of-window total) serves every member — the same invariant as the
      // legacy memo path, without materializing per-member work items.
      QueryEntry& rep = queries_.at(group.members[0]);
      bool pass_ran = false;
      std::vector<uint32_t> tags;
      uint64_t total = 0;
      if (!EvaluateWindowTagged(rep, wctx,
                                static_cast<uint32_t>(group.members.size()),
                                pass_ran, tags, total))
        return;
      if (pass_ran) NoteSharedGroupPass();
      if (total == 0) continue;
      for (QueryId qid : group.members) {
        QueryEntry& entry = queries_.at(qid);
        GS_DCHECK(entry.last_count == total - tags.size());
        std::vector<uint32_t> member_tags = tags;
        ScatterTagCounts(member_tags, qid, window_results);
        entry.last_count = total;
      }
    } else {
      for (QueryId qid : group.members) {
        if (BudgetExceededNow()) return;
        QueryEntry& entry = queries_.at(qid);
        bool pass_ran = false;
        std::vector<uint32_t> tags;
        uint64_t total = 0;
        if (!EvaluateWindowTagged(entry, wctx, /*probe_weight=*/1, pass_ran,
                                  tags, total))
          return;
        if (total == 0) continue;
        ScatterTagCounts(tags, qid, window_results);
        entry.last_count = total;
      }
    }
  }
}

}  // namespace baseline
}  // namespace gstream
