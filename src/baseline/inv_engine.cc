#include "baseline/inv_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {
namespace baseline {

bool InvEngine::EvaluateQueryTotal(QueryEntry& entry, uint64_t& total) {
  total = 0;
  if (!AllViewsNonEmpty(entry)) return true;  // Step 1 candidate filter
  NoteFinalJoinPass();

  // Steps 2+3: re-materialize every covering path from scratch.
  size_t transient_bytes = 0;
  std::vector<std::unique_ptr<Relation>> path_views;
  for (size_t pi = 0; pi < entry.paths.size(); ++pi) {
    auto view = MaterializeFullPath(entry, pi, IndexSource(), transient_bytes);
    if (view == nullptr) {
      NotePeakTransient(transient_bytes);
      return !BudgetExceeded();
    }
    path_views.push_back(std::move(view));
  }
  NotePeakTransient(transient_bytes);

  // Final join across paths on shared query vertices.
  OwnedBindings acc = PathRowsToBindings(AllRows(*path_views[0]), entry.specs[0]);
  for (size_t pi = 1; pi < entry.paths.size() && !acc.Empty(); ++pi) {
    OwnedBindings other = PathRowsToBindings(AllRows(*path_views[pi]), entry.specs[pi]);
    acc = JoinBindingRanges(acc.schema, acc.All(), other.schema, other.All());
    if (BudgetExceeded()) return false;
  }
  if (acc.Empty()) return true;
  if (!entry.pattern.HasConstraints()) {
    total = acc.rows->NumRows();
    return true;
  }

  // §4.3 extra phase: count only assignments passing property constraints.
  const uint32_t num_vertices = static_cast<uint32_t>(entry.pattern.NumVertices());
  std::vector<uint32_t> perm(num_vertices);
  for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
  std::vector<VertexId> row(num_vertices);
  for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
    const VertexId* src = acc.rows->Row(r);
    for (uint32_t v = 0; v < num_vertices; ++v) row[v] = src[perm[v]];
    if (SatisfiesConstraints(entry.pattern, row.data())) ++total;
  }
  return true;
}

void InvEngine::AddQueryImpl(QueryId qid, const QueryPattern& q) {
  InvertedIndexEngineBase::AddQueryImpl(qid, q);
  if (seen_edges_.empty()) return;  // pre-stream registration: total is 0
  QueryEntry& entry = queries_.at(qid);
  uint64_t total = 0;
  if (EvaluateQueryTotal(entry, total)) entry.last_count = total;
}

UpdateResult InvEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    result.changed = RemoveFromBaseViews(u);
    if (!result.changed) return result;
    // Counts may have dropped; refresh the diff baseline of the affected
    // queries (deletions cannot trigger notifications).
    for (QueryId qid : AffectedQueries(u)) {
      QueryEntry& entry = queries_.at(qid);
      uint64_t total = 0;
      if (!EvaluateQueryTotal(entry, total)) {
        result.timed_out = true;
        return result;
      }
      entry.last_count = total;
    }
    return result;
  }

  if (IsDuplicateUpdate(u)) return result;
  return ProcessInsert(u);
}

UpdateResult InvEngine::ProcessInsert(const EdgeUpdate& u) {
  UpdateResult result;
  result.changed = true;

  AppendToBaseViews(u);

  for (QueryId qid : AffectedQueries(u)) {
    if (BudgetExceeded()) {
      result.timed_out = true;
      return result;
    }
    QueryEntry& entry = queries_.at(qid);
    uint64_t total = 0;
    if (!EvaluateQueryTotal(entry, total)) {
      result.timed_out = true;
      return result;
    }
    if (total == 0) continue;
    GS_DCHECK(total >= entry.last_count);
    result.AddQueryCount(qid, total - entry.last_count);
    entry.last_count = total;
  }
  return result;
}

void InvEngine::FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) {
  InvWindowContext& wctx = static_cast<InvWindowContext&>(ctx);
  if (wctx.affected.empty()) return;
  std::sort(wctx.affected.begin(), wctx.affected.end());

  size_t i = 0;
  while (i < wctx.affected.size()) {
    const QueryId qid = wctx.affected[i].first;
    size_t j = i;
    while (j < wctx.affected.size() && wctx.affected[j].first == qid) ++j;

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    // Shared finalization (§9): signature-equal queries see the same views
    // and the same affecting positions, so the memoized tag histogram (and
    // end-of-window total) of the group's first member serves the rest.
    SharedFinalizeMemo* memo = SharedMemoFor(qid, wctx);
    std::vector<uint64_t> window_key;
    if (memo != nullptr) {
      window_key.reserve(j - i);
      for (size_t k = i; k < j; ++k) window_key.push_back(wctx.affected[k].second);
    }
    i = j;  // positions are implied by the provenance histogram below
    if (memo != nullptr && memo->evaluated && memo->runtime_key == window_key) {
      if (memo->total == 0) {  // no-op for every member (see below)
        if (memo->pass_ran) NoteSharedServed(*memo);
        continue;
      }
      QueryEntry& entry = queries_.at(qid);
      // Assignments predating the window are exactly the ones this member's
      // previous evaluations already counted — same invariant as the
      // evaluating member's pre_window check.
      GS_DCHECK(entry.last_count == memo->total - memo->tags.size());
      ReplaySharedTags(*memo, qid, window_results);
      entry.last_count = memo->total;
      continue;
    }

    QueryEntry& entry = queries_.at(qid);
    // End-of-window candidate filter: views only grow inside an insert
    // window, so an empty view here means zero embeddings at every member
    // position (sequential evaluation would have found total == 0 each time).
    if (!AllViewsNonEmpty(entry)) {
      if (memo != nullptr) memo->Store(/*ran=*/false, std::move(window_key), nullptr);
      continue;
    }
    NoteFinalJoinPass();

    // One tagged full evaluation per (query, window): the per-update diffs
    // INV recomputes from scratch each time fall out of the histogram of
    // assignment tags (an assignment's tag is the window position its last
    // contributing edge arrived at — exactly when the sequential diff first
    // counts it; tag 0 = already counted in last_count).
    size_t transient_bytes = 0;
    std::vector<std::unique_ptr<Relation>> path_views;
    bool died = false;
    // This pass's view probes stand in for one per group member (window-
    // cache build decisions stay identical to the per-query pipeline's).
    const uint32_t probe_weight = SharedGroupSize(qid);
    for (size_t pi = 0; pi < entry.paths.size(); ++pi) {
      auto view = MaterializeFullPathTagged(entry, pi, IndexSource(), wctx.prov,
                                            transient_bytes, probe_weight);
      if (view == nullptr) {
        died = true;
        break;
      }
      path_views.push_back(std::move(view));
    }
    NotePeakTransient(transient_bytes);
    if (died) {
      if (BudgetExceededNow()) return;
      // A path chain died: total is 0 at every position (for every member).
      if (memo != nullptr) memo->Store(/*ran=*/true, std::move(window_key), nullptr);
      continue;
    }

    OwnedBindings acc = PathRowsToBindingsTagged(
        AllRows(*path_views[0]), entry.specs[0], TagsOfProvenance(*path_views[0]));
    for (size_t pi = 1; pi < entry.paths.size() && !acc.Empty(); ++pi) {
      OwnedBindings other = PathRowsToBindingsTagged(
          AllRows(*path_views[pi]), entry.specs[pi],
          TagsOfProvenance(*path_views[pi]));
      acc = JoinBindingRangesTagged(acc.schema, acc.All(), other.schema,
                                    other.All(), TagsOfProvenance(*other.rows));
      if (BudgetExceededNow()) return;
    }
    if (acc.Empty()) {
      if (memo != nullptr) memo->Store(/*ran=*/true, std::move(window_key), nullptr);
      continue;
    }

    // Count assignments passing the §4.3 property constraints, split by tag.
    const uint32_t num_vertices = static_cast<uint32_t>(entry.pattern.NumVertices());
    std::vector<uint32_t> perm(num_vertices);
    for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
    std::vector<VertexId> row(num_vertices);
    uint64_t total = 0;
    uint64_t pre_window = 0;
    std::vector<uint32_t> tags;
    for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
      if (entry.pattern.HasConstraints()) {
        const VertexId* src = acc.rows->Row(r);
        for (uint32_t v = 0; v < num_vertices; ++v) row[v] = src[perm[v]];
        if (!SatisfiesConstraints(entry.pattern, row.data())) continue;
      }
      ++total;
      const uint32_t tag = acc.rows->ProvOf(r);
      if (tag == 0)
        ++pre_window;
      else
        tags.push_back(tag);
    }
    if (total == 0) {
      if (memo != nullptr) memo->Store(/*ran=*/true, std::move(window_key), nullptr);
      continue;
    }
    // Assignments predating the window are exactly the ones the previous
    // evaluations already counted.
    GS_DCHECK(pre_window == entry.last_count);
    (void)pre_window;
    if (memo != nullptr) memo->Store(/*ran=*/true, std::move(window_key), &tags, total);
    ScatterTagCounts(tags, qid, window_results);
    entry.last_count = total;
  }
}

}  // namespace baseline
}  // namespace gstream
