#ifndef GSTREAM_BASELINE_INV_ENGINE_H_
#define GSTREAM_BASELINE_INV_ENGINE_H_

#include <memory>
#include <string>

#include "baseline/inverted_common.h"

namespace gstream {
namespace baseline {

/// INV — the inverted-index baseline (paper §5.1) and its caching extension
/// INV+.
///
/// Answering an update: (1) locate the affected queries through `edgeInd`
/// and keep those whose edge views are all non-empty; (2+3) re-materialize
/// every covering path of each affected query by chaining *full* hash joins
/// over the edge-level views — nothing is reused across updates or across
/// queries — then join the paths on their shared vertices to count
/// embeddings. Newly satisfied work is reported by diffing against the
/// query's previous total (sound: counts are monotone under insertion and
/// every new embedding makes the query affected).
///
/// INV+ keeps the per-view build-phase hash tables in a `JoinCache`; the
/// per-update intermediate results are still recomputed, which is why its
/// gain over INV is modest (paper: ~9%).
class InvEngine : public InvertedIndexEngineBase {
 public:
  explicit InvEngine(bool enable_cache) : InvertedIndexEngineBase(enable_cache) {}

  std::string name() const override { return cache_ ? "INV+" : "INV"; }
  UpdateResult ApplyUpdate(const EdgeUpdate& u) override;

 protected:
  /// Registration plus, mid-stream, a snapshot of the query's current
  /// embedding total: INV reports by diffing totals, so the baseline must
  /// start at "now" for a dynamically added query to notify only future
  /// matches (the backfilled base views would otherwise all be reported as
  /// new on the first affecting update).
  void AddQueryImpl(QueryId qid, const QueryPattern& q) override;

  UpdateResult ProcessInsert(const EdgeUpdate& u) override;

  /// Window-delta pipeline: one tagged full evaluation per (query, window);
  /// the per-position diffs fall out of the provenance histogram instead of
  /// re-evaluating the query once per update. Routed mode (DESIGN.md §12)
  /// iterates the window's affected signature *groups*, evaluates each
  /// group's representative once, and fans the memoized histogram out to
  /// every member.
  void FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) override;

 private:
  /// INV's core evaluation: recompute the query's current embedding total
  /// from the base views. Returns false when the time budget expired
  /// mid-evaluation (total is then unusable).
  bool EvaluateQueryTotal(QueryEntry& entry, uint64_t& total);

  /// One tagged whole-window evaluation of `entry` (the shared body of the
  /// legacy and routed FinalizeWindow paths): recomputes the end-of-window
  /// total and the window-position tag per new assignment. `pass_ran` is
  /// false when the candidate filter skipped the evaluation. Returns false
  /// on a budget abort (outputs are then unusable and the caller must end
  /// the finalize).
  bool EvaluateWindowTagged(QueryEntry& entry, InvWindowContext& wctx,
                            uint32_t probe_weight, bool& pass_ran,
                            std::vector<uint32_t>& tags, uint64_t& total);

  void FinalizeWindowRouted(InvWindowContext& wctx, UpdateResult* window_results);
};

}  // namespace baseline
}  // namespace gstream

#endif  // GSTREAM_BASELINE_INV_ENGINE_H_
