#include "baseline/inverted_common.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/mem_tracker.h"

namespace gstream {
namespace baseline {

InvertedIndexEngineBase::InvertedIndexEngineBase(bool enable_cache)
    : cache_(enable_cache ? std::make_unique<JoinCache>() : nullptr) {
  if (!enable_cache) EnableWindowCache();
}

void InvertedIndexEngineBase::AddQueryImpl(QueryId qid, const QueryPattern& q) {
  MarkReachDirty();

  QueryEntry entry;
  entry.pattern = q;
  entry.paths = ExtractCoveringPaths(q);
  for (const auto& path : entry.paths) {
    entry.signatures.push_back(GenericSignature(q, path));
    entry.specs.push_back(PathBindingSpec::For(path.vertices));
  }

  // Inverted indexes; one entry per distinct pattern per query. Base views
  // are reference-counted at the same granularity (covering paths traverse
  // exactly the query's genericized edges), so RemoveQueryImpl releases
  // symmetrically from the distinct-pattern set alone.
  std::unordered_set<GenericEdgePattern, GenericEdgePatternHash> distinct;
  for (uint32_t e = 0; e < q.NumEdges(); ++e) {
    GenericEdgePattern p = q.Genericized(e);
    if (!distinct.insert(p).second) continue;
    RefBaseView(p);
    edge_ind_.GetOrCreate(p).push_back(qid);
    source_ind_.GetOrCreate(p.src).push_back(p);
    target_ind_.GetOrCreate(p.dst).push_back(p);
    prefilter_.Add(p);
  }
  queries_.emplace(qid, std::move(entry));
}

void InvertedIndexEngineBase::RemoveQueryImpl(QueryId qid) {
  MarkReachDirty();
  QueryEntry entry = std::move(queries_.at(qid));
  queries_.erase(qid);

  std::unordered_set<GenericEdgePattern, GenericEdgePatternHash> distinct;
  for (uint32_t e = 0; e < entry.pattern.NumEdges(); ++e) {
    GenericEdgePattern p = entry.pattern.Genericized(e);
    if (!distinct.insert(p).second) continue;

    // edgeInd: drop this query's posting (registered exactly once per
    // distinct pattern). The pattern's sourceInd/targetInd entries are
    // per referencing query, so one occurrence goes with it; emptied
    // posting lists are erased outright.
    std::vector<QueryId>* qids = edge_ind_.Find(p);
    GS_CHECK(qids != nullptr);
    qids->erase(std::find(qids->begin(), qids->end(), qid));
    const bool last_query_of_pattern = qids->empty();
    if (last_query_of_pattern) edge_ind_.Erase(p);

    const auto drop_vertex_posting = [&](FlatMap<VertexId, std::vector<GenericEdgePattern>,
                                                 VertexIdHash>& ind,
                                         VertexId term) {
      std::vector<GenericEdgePattern>* ps = ind.Find(term);
      GS_CHECK(ps != nullptr);
      ps->erase(std::find(ps->begin(), ps->end(), p));
      if (ps->empty()) ind.Erase(term);
    };
    drop_vertex_posting(source_ind_, p.src);
    drop_vertex_posting(target_ind_, p.dst);
    prefilter_.Remove(p);

    UnrefBaseView(p);
  }

  // One compaction per removal: release the erased postings' slots and the
  // "+" cache's evicted entries so the GC shows up in MemoryBytes. The group
  // routing postings are rebuilt (and compacted) wholesale with the next
  // EnsureFinalizeGroups, so churn waves pay one deferred rebuild, not one
  // per removal.
  edge_ind_.Compact();
  source_ind_.Compact();
  target_ind_.Compact();
  prefilter_.Compact();
  if (cache_ != nullptr) cache_->Compact();
  CompactSharedState();
}

void InvertedIndexEngineBase::OnRelationEvicted(const Relation* rel) {
  if (cache_ != nullptr) cache_->Evict(rel);
}

std::vector<QueryId> InvertedIndexEngineBase::AffectedQueries(
    const EdgeUpdate& u) const {
  std::vector<QueryId> qids;
  for (const auto& g : Generalizations(u)) {
    const std::vector<QueryId>* hits = edge_ind_.Find(g);
    if (hits == nullptr) continue;
    qids.insert(qids.end(), hits->begin(), hits->end());
  }
  std::sort(qids.begin(), qids.end());
  qids.erase(std::unique(qids.begin(), qids.end()), qids.end());
  return qids;
}

void InvertedIndexEngineBase::BuildPatternReach() {
  // Per-pattern reach: the pattern's base view plus, for each query the
  // pattern can affect (edgeInd), the query's per-update state and every
  // base view its path (re)materialization scans.
  for (const auto& [pattern, view] : base_views_) {
    Footprint& fp = pattern_reach_[pattern];
    fp.push_back(PatternElem(PatternId(pattern)));
    if (const std::vector<QueryId>* qids = edge_ind_.Find(pattern)) {
      for (QueryId qid : *qids) {
        fp.push_back(QueryElem(qid));
        const QueryEntry& entry = queries_.at(qid);
        for (const auto& sig : entry.signatures)
          for (const auto& p : sig) fp.push_back(PatternElem(PatternId(p)));
      }
    }
    std::sort(fp.begin(), fp.end());
    fp.erase(std::unique(fp.begin(), fp.end()), fp.end());
  }
}

bool InvertedIndexEngineBase::AllViewsNonEmpty(const QueryEntry& entry) const {
  for (uint32_t e = 0; e < entry.pattern.NumEdges(); ++e) {
    const Relation* view = FindBaseView(entry.pattern.Genericized(e));
    if (view == nullptr || view->Empty()) return false;
  }
  return true;
}

std::unique_ptr<Relation> InvertedIndexEngineBase::MaterializeFullPath(
    const QueryEntry& entry, size_t pi, JoinIndexSource* cache, size_t& transient_bytes) {
  const auto& sig = entry.signatures[pi];
  const Relation* first = FindBaseView(sig[0]);
  GS_DCHECK(first != nullptr);

  // Copy-start the chain so single-edge and multi-edge paths are handled
  // uniformly (the copy is the price of owning no per-path state).
  auto current = std::make_unique<Relation>(2);
  current->AppendAll(*first);

  for (size_t i = 1; i < sig.size(); ++i) {
    if (current->Empty()) return nullptr;
    const Relation* base = FindBaseView(sig[i]);
    GS_DCHECK(base != nullptr);
    auto next = std::make_unique<Relation>(current->arity() + 1);
    ExtendRight(AllRows(*current), *base, cache ? cache->Get(base, 0) : nullptr,
                *next);
    transient_bytes += next->MemoryBytes();
    current = std::move(next);
    if (BudgetExceeded()) return nullptr;
  }
  if (current->Empty()) return nullptr;
  return current;
}

std::unique_ptr<Relation> InvertedIndexEngineBase::MaterializePathDelta(
    const QueryEntry& entry, size_t pi, const EdgeUpdate& u, JoinIndexSource* cache,
    size_t& transient_bytes) {
  const auto& sig = entry.signatures[pi];
  const uint32_t arity = static_cast<uint32_t>(sig.size()) + 1;
  auto delta = std::make_unique<Relation>(arity);

  for (size_t pos = 0; pos < sig.size(); ++pos) {
    if (!sig[pos].Matches(u)) continue;
    // Seed with the update tuple at `pos`, then grow the fragment leftwards
    // and rightwards over the edge views.
    auto cur = std::make_unique<Relation>(2);
    const VertexId seed[2] = {u.src, u.dst};
    cur->Append(seed);
    bool dead = false;
    for (size_t j = pos; j-- > 0 && !dead;) {
      const Relation* base = FindBaseView(sig[j]);
      auto next = std::make_unique<Relation>(cur->arity() + 1);
      ExtendLeft(AllRows(*cur), *base, cache ? cache->Get(base, 1) : nullptr, *next);
      transient_bytes += next->MemoryBytes();
      cur = std::move(next);
      dead = cur->Empty();
    }
    for (size_t j = pos + 1; j < sig.size() && !dead; ++j) {
      const Relation* base = FindBaseView(sig[j]);
      auto next = std::make_unique<Relation>(cur->arity() + 1);
      ExtendRight(AllRows(*cur), *base, cache ? cache->Get(base, 0) : nullptr, *next);
      transient_bytes += next->MemoryBytes();
      cur = std::move(next);
      dead = cur->Empty();
    }
    if (dead || BudgetExceeded()) continue;
    delta->AppendAll(*cur);
  }
  return delta;
}

bool InvertedIndexEngineBase::EncodeFinalizeSignature(QueryId qid,
                                                      std::vector<uint64_t>& out) {
  const QueryEntry& entry = queries_.at(qid);
  for (size_t pi = 0; pi < entry.paths.size(); ++pi) {
    out.push_back(~1ull);  // path delimiter: (a)(b,c) and (a,b)(c) differ
    for (const GenericEdgePattern& p : entry.signatures[pi])
      // Read-only lookup: PrepareFinalizeSignatures interned every id.
      out.push_back(PatternElem(PatternIdIfKnown(p)));
    out.push_back(~2ull);  // view ids above, binding spec below
    for (uint32_t v : entry.paths[pi].vertices) out.push_back(v);
  }
  AppendFilterSignature(entry.pattern, out);
  return true;
}

void InvertedIndexEngineBase::PrepareFinalizeSignatures(
    const std::vector<QueryId>& qids) {
  for (QueryId qid : qids)
    for (const auto& sig : queries_.at(qid).signatures)
      for (const GenericEdgePattern& p : sig) PatternId(p);
}

void InvertedIndexEngineBase::ListQueryIds(std::vector<QueryId>& out) const {
  out.reserve(out.size() + queries_.size());
  for (const auto& [qid, entry] : queries_) out.push_back(qid);
}

void InvertedIndexEngineBase::ProcessInsertDelta(const EdgeUpdate& u,
                                                 WindowContext& ctx,
                                                 UpdateResult& result) {
  InvWindowContext& wctx = static_cast<InvWindowContext&>(ctx);
  result.changed = true;

  if (route_enabled()) {
    // Routed dispatch (DESIGN.md §12): one O(words) label test rejects
    // updates no registered pattern can match — no pattern means no base
    // view either, so skipping the append is exact. Routed updates probe
    // only the live endpoint classes and record *group* ids; the per-member
    // fan-out happens once per group in FinalizeWindow.
    if (!prefilter_.MayMatch(u)) {
      NotePrefilterReject();
      return;
    }
    AppendToBaseViews(u, &ctx);
    wctx.route_scratch.clear();
    NoteRoutedCandidates(group_routes_.Route(u, wctx.route_scratch));
    for (uint32_t gid : wctx.route_scratch)
      wctx.affected_groups.emplace_back(gid, ctx.position);
    return;
  }

  AppendToBaseViews(u, &ctx);
  const std::vector<QueryId> qids = AffectedQueries(u);
  NoteRoutedCandidates(qids.size());
  for (QueryId qid : qids) wctx.affected.emplace_back(qid, ctx.position);
}

void InvertedIndexEngineBase::OnRouteGroupsRebuilt() {
  group_routes_.Clear();
  if (!route_enabled()) return;
  for (const auto& group : finalize_groups()) {
    const QueryEntry& rep = queries_.at(group->members[0]);
    std::unordered_set<GenericEdgePattern, GenericEdgePatternHash> distinct;
    for (uint32_t e = 0; e < rep.pattern.NumEdges(); ++e) {
      GenericEdgePattern p = rep.pattern.Genericized(e);
      if (distinct.insert(p).second) group_routes_.Add(p, group->id);
    }
  }
}

std::unique_ptr<Relation> InvertedIndexEngineBase::MaterializeFullPathTagged(
    const QueryEntry& entry, size_t pi, JoinIndexSource* cache,
    const WindowProvenance& prov, size_t& transient_bytes, uint32_t touch_weight) {
  const auto& sig = entry.signatures[pi];
  const Relation* first = FindBaseView(sig[0]);
  GS_DCHECK(first != nullptr);

  auto current = std::make_unique<Relation>(2);
  current->EnableProvenance();
  {
    const RowTags tags = prov.TagsFor(first);
    current->Reserve(first->NumRows());
    for (size_t i = 0; i < first->NumRows(); ++i)
      current->AppendTagged(first->Row(i), tags.TagOf(i));
  }

  for (size_t i = 1; i < sig.size(); ++i) {
    if (current->Empty()) return nullptr;
    const Relation* base = FindBaseView(sig[i]);
    GS_DCHECK(base != nullptr);
    auto next = std::make_unique<Relation>(current->arity() + 1);
    next->EnableProvenance();
    ExtendRightDelta(DeltaBatch{AllRows(*current), TagsOfProvenance(*current)},
                     *base, cache ? cache->Get(base, 0, touch_weight) : nullptr,
                     prov.TagsFor(base), *next);
    transient_bytes += next->MemoryBytes();
    current = std::move(next);
    // Non-sampling: each chain step is a whole-view join, so the sampled
    // poll could overshoot a deadline by hundreds of steps.
    if (BudgetExceededNow()) return nullptr;
  }
  if (current->Empty()) return nullptr;
  return current;
}

std::unique_ptr<Relation> InvertedIndexEngineBase::MaterializePathDeltaBatch(
    const QueryEntry& entry, size_t pi,
    const std::vector<std::pair<uint32_t, const EdgeUpdate*>>& seeds,
    JoinIndexSource* cache, const WindowProvenance& prov, size_t& transient_bytes,
    uint32_t touch_weight) {
  const auto& sig = entry.signatures[pi];
  const uint32_t arity = static_cast<uint32_t>(sig.size()) + 1;
  auto delta = std::make_unique<Relation>(arity);
  delta->EnableProvenance();

  for (size_t pos = 0; pos < sig.size(); ++pos) {
    // One tagged fragment chain per path position, seeded with *all* the
    // window's matching updates at once (a non-duplicate update's tuple is
    // always new to its matching views, so its seed tag is its own window
    // position).
    auto cur = std::make_unique<Relation>(2);
    cur->EnableProvenance();
    for (const auto& [position, u] : seeds) {
      if (!sig[pos].Matches(*u)) continue;
      const VertexId seed[2] = {u->src, u->dst};
      cur->AppendTagged(seed, position);
    }
    if (cur->Empty()) continue;
    bool dead = false;
    for (size_t j = pos; j-- > 0 && !dead;) {
      const Relation* base = FindBaseView(sig[j]);
      auto next = std::make_unique<Relation>(cur->arity() + 1);
      next->EnableProvenance();
      ExtendLeftDelta(DeltaBatch{AllRows(*cur), TagsOfProvenance(*cur)}, *base,
                      cache ? cache->Get(base, 1, touch_weight) : nullptr,
                      prov.TagsFor(base), *next);
      transient_bytes += next->MemoryBytes();
      cur = std::move(next);
      dead = cur->Empty();
    }
    for (size_t j = pos + 1; j < sig.size() && !dead; ++j) {
      const Relation* base = FindBaseView(sig[j]);
      auto next = std::make_unique<Relation>(cur->arity() + 1);
      next->EnableProvenance();
      ExtendRightDelta(DeltaBatch{AllRows(*cur), TagsOfProvenance(*cur)}, *base,
                       cache ? cache->Get(base, 0, touch_weight) : nullptr,
                       prov.TagsFor(base), *next);
      transient_bytes += next->MemoryBytes();
      cur = std::move(next);
      dead = cur->Empty();
    }
    if (dead || BudgetExceeded()) continue;
    delta->AppendAll(*cur);
  }
  return delta;
}

size_t InvertedIndexEngineBase::MemoryBytes() const {
  size_t bytes = SharedMemoryBytes();
  if (cache_ != nullptr) bytes += cache_->MemoryBytes();
  for (const auto& [qid, entry] : queries_) {
    bytes += sizeof(qid) + entry.pattern.MemoryBytes() + 2 * sizeof(void*);
    for (const auto& path : entry.paths)
      bytes += mem::OfVector(path.vertices) + mem::OfVector(path.edges);
    for (const auto& sig : entry.signatures)
      bytes += sig.capacity() * sizeof(GenericEdgePattern);
  }
  bytes += edge_ind_.MemoryBytes() + source_ind_.MemoryBytes() +
           target_ind_.MemoryBytes() + prefilter_.MemoryBytes() +
           group_routes_.MemoryBytes();
  edge_ind_.ForEach([&](const GenericEdgePattern&, const std::vector<QueryId>& qids) {
    bytes += qids.capacity() * sizeof(QueryId);
  });
  source_ind_.ForEach([&](VertexId, const std::vector<GenericEdgePattern>& ps) {
    bytes += ps.capacity() * sizeof(GenericEdgePattern);
  });
  target_ind_.ForEach([&](VertexId, const std::vector<GenericEdgePattern>& ps) {
    bytes += ps.capacity() * sizeof(GenericEdgePattern);
  });
  return bytes;
}

std::vector<uint32_t> PlanExtensionOrder(const QueryPattern& q, uint32_t seed) {
  const size_t n = q.NumEdges();
  std::vector<uint32_t> order;
  std::vector<bool> used(n, false);
  std::vector<bool> bound(q.NumVertices(), false);
  used[seed] = true;
  bound[q.edge(seed).src] = true;
  bound[q.edge(seed).dst] = true;

  for (size_t step = 1; step < n; ++step) {
    int best = -1;
    int best_score = -1;
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      const auto& edge = q.edge(e);
      int score = 0;
      score += bound[edge.src] ? 4 : (q.vertex(edge.src).is_var ? 0 : 1);
      score += bound[edge.dst] ? 4 : (q.vertex(edge.dst).is_var ? 0 : 1);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(e);
      }
    }
    used[best] = true;
    order.push_back(static_cast<uint32_t>(best));
    bound[q.edge(best).src] = true;
    bound[q.edge(best).dst] = true;
  }
  return order;
}

}  // namespace baseline
}  // namespace gstream
