#ifndef GSTREAM_BASELINE_INVERTED_COMMON_H_
#define GSTREAM_BASELINE_INVERTED_COMMON_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "engine/view_engine_base.h"
#include "matview/binding.h"
#include "matview/join_cache.h"
#include "query/path_cover.h"
#include "query/route_index.h"

namespace gstream {
namespace baseline {

/// Shared indexing state of the paper's advanced baselines INV and INC
/// (§5.1, §5.2). Both transform queries into covering paths stored per query
/// (`queryInd`) and build three inverted indexes:
///  * `edgeInd`:   genericized edge pattern -> query ids;
///  * `sourceInd`: source vertex term (literal label or ?var) -> patterns;
///  * `targetInd`: target vertex term -> patterns.
/// Unlike TRIC there is *no* sharing of materialized path state across
/// queries — only the edge-level base views are shared.
class InvertedIndexEngineBase : public ViewEngineBase {
 public:
  bool HasQuery(QueryId qid) const override { return queries_.count(qid) > 0; }
  size_t NumQueries() const override { return queries_.size(); }
  size_t MemoryBytes() const override;

 protected:
  /// `enable_cache` selects the "+" variant (a persistent JoinCache); the
  /// base variants amortize within batch windows only.
  explicit InvertedIndexEngineBase(bool enable_cache);

  void AddQueryImpl(QueryId qid, const QueryPattern& q) override;

  /// Query removal: drops the query's postings from edgeInd (and the
  /// pattern's sourceInd/targetInd entries when the last query using it
  /// goes), releases the shared base-view references, and compacts the
  /// inverted indexes so `MemoryBytes` reflects the GC. INV/INC own no
  /// persistent per-path state, so postings + base views are the whole
  /// story; the "+" variants additionally evict dead views' cached join
  /// indexes via OnRelationEvicted.
  void RemoveQueryImpl(QueryId qid) override;

  /// Lifecycle GC hook: a shared base view is going away — drop the "+"
  /// variant's cached indexes over it.
  void OnRelationEvicted(const Relation* rel) override;

  /// The "+" persistent cache, or the batch window's transient cache.
  JoinIndexSource* IndexSource() {
    return cache_ != nullptr ? static_cast<JoinIndexSource*>(cache_.get())
                             : window_cache();
  }
  /// Batch sharding (ViewEngineBase): a pattern's reach is its base view
  /// plus, per query it can affect, the query's per-update state and every
  /// base view its covering-path (re)materialization scans (INV redoes
  /// whole paths, INC seeds the touched ones — both stay within the query's
  /// signature patterns).
  void BuildPatternReach() override;

  /// Shard-local delta-window context (window-delta pipeline, DESIGN.md §7):
  /// the affected (query | signature group, window position) pairs
  /// accumulated across the window. The engine-specific FinalizeWindow
  /// overrides consume them to run one tagged evaluation per (query, window)
  /// — per (group, window) on the routed path.
  struct InvWindowContext : WindowContext {
    std::vector<std::pair<QueryId, uint32_t>> affected;  ///< Legacy path.
    /// Routed path (DESIGN.md §12): (group id, window position) pairs.
    std::vector<std::pair<uint32_t, uint32_t>> affected_groups;
    std::vector<uint32_t> route_scratch;  ///< Route() output, reused.
  };

  /// Maintenance is identical for INV and INC: append to the base views
  /// (checkpointing them) and record the affected queries; every join is
  /// deferred to the engine's FinalizeWindow.
  bool SupportsWindowDelta() const override { return true; }
  std::unique_ptr<WindowContext> NewWindowContext() override {
    return std::make_unique<InvWindowContext>();
  }
  void ProcessInsertDelta(const EdgeUpdate& u, WindowContext& ctx,
                          UpdateResult& result) override;

  /// Shared-finalize signature (DESIGN.md §9): per covering path the ordered
  /// shared base-view ids (from the refcounted view registry's pattern ids)
  /// and the path's vertex map (the binding spec), plus the filter spec.
  /// Equal encodings mean identical MaterializeFullPathTagged /
  /// MaterializePathDeltaBatch chains and identical final joins — INV and
  /// INC both qualify, so the hook lives here.
  bool EncodeFinalizeSignature(QueryId qid, std::vector<uint64_t>& out) override;
  /// Pre-interns every signature pattern id on the coordinator thread so the
  /// (possibly pool-parallel) encodes above are pure lookups.
  void PrepareFinalizeSignatures(const std::vector<QueryId>& qids) override;
  void ListQueryIds(std::vector<QueryId>& out) const override;

  /// Rebuilds the group routing postings (DESIGN.md §12): one posting per
  /// (distinct pattern of the group's representative member, group id).
  /// Signature-equal members have identical distinct-pattern sets, so the
  /// representative's set routes the whole group.
  void OnRouteGroupsRebuilt() override;

  struct QueryEntry {
    QueryPattern pattern;
    std::vector<CoveringPath> paths;
    std::vector<std::vector<GenericEdgePattern>> signatures;  ///< Per path.
    std::vector<PathBindingSpec> specs;                       ///< Per path.
    /// Embedding count at the previous evaluation (INV's diff bookkeeping).
    uint64_t last_count = 0;
  };

  /// Sorted unique query ids whose patterns match `u` (via edgeInd).
  std::vector<QueryId> AffectedQueries(const EdgeUpdate& u) const;

  /// True when every edge pattern of the query has a non-empty base view
  /// (paper §5.1 answering Step 1: a query is only a match candidate when all
  /// its materialized views are usable).
  bool AllViewsNonEmpty(const QueryEntry& entry) const;

  /// Re-materializes covering path `pi` of `entry` from scratch by chaining
  /// hash joins over the edge-level views (paper §5.1 Step 3 — INV's per-
  /// update cost, also paid by INC for the paths the update does not touch).
  /// Returns nullptr when the chain dies or the budget expires.
  std::unique_ptr<Relation> MaterializeFullPath(const QueryEntry& entry, size_t pi,
                                                JoinIndexSource* cache,
                                                size_t& transient_bytes);

  /// Materializes only the path rows that use update `u` (INC's seeded
  /// evaluation, §5.2): for every position of the path whose pattern matches
  /// `u`, seed with the update tuple and extend left/right over the edge
  /// views. Returns the (deduplicated) delta rows.
  std::unique_ptr<Relation> MaterializePathDelta(const QueryEntry& entry, size_t pi,
                                                 const EdgeUpdate& u, JoinIndexSource* cache,
                                                 size_t& transient_bytes);

  /// Tagged MaterializeFullPath (window-delta pipeline): the returned
  /// relation carries a provenance column — each row's tag is the max
  /// window position over its contributing base-view rows (0 = the row
  /// existed before the window), derived from `prov`'s checkpoints.
  /// `touch_weight` > 1 marks a shared finalize chain standing in for that
  /// many per-query chains (§9; window-cache build decisions stay put).
  std::unique_ptr<Relation> MaterializeFullPathTagged(const QueryEntry& entry,
                                                      size_t pi, JoinIndexSource* cache,
                                                      const WindowProvenance& prov,
                                                      size_t& transient_bytes,
                                                      uint32_t touch_weight = 1);

  /// Window-batched MaterializePathDelta: seeds *every* window update in
  /// `seeds` ((window position, update) pairs, ascending) that matches each
  /// path position in one tagged pass and extends over the end-of-window
  /// edge views — one build+probe chain per (path, window) instead of one
  /// per (path, update). Rows are tagged with the window position at which
  /// sequential per-update evaluation would have produced them.
  std::unique_ptr<Relation> MaterializePathDeltaBatch(
      const QueryEntry& entry, size_t pi,
      const std::vector<std::pair<uint32_t, const EdgeUpdate*>>& seeds,
      JoinIndexSource* cache, const WindowProvenance& prov, size_t& transient_bytes,
      uint32_t touch_weight = 1);

  std::unique_ptr<JoinCache> cache_;  ///< Non-null for INV+/INC+.
  std::unordered_map<QueryId, QueryEntry> queries_;
  /// Probed with every generalization of every streamed update — flat
  /// open-addressing postings (see flat_map.h).
  FlatMap<GenericEdgePattern, std::vector<QueryId>, GenericEdgePatternHash> edge_ind_;
  /// Vertex term (literal id; kNoVertex = ?var) -> patterns with that source
  /// / target. Kept for the paper's path-exploration structure and memory
  /// accounting; path re-evaluation walks the stored covering paths, which
  /// visits the same edges the index navigation would.
  FlatMap<VertexId, std::vector<GenericEdgePattern>, VertexIdHash> source_ind_;
  FlatMap<VertexId, std::vector<GenericEdgePattern>, VertexIdHash> target_ind_;
  /// Always-current label/class prefilter over the registered patterns,
  /// maintained incrementally per distinct pattern in Add/RemoveQueryImpl —
  /// valid on the sequential per-update path too, unlike the group routing
  /// postings below (which are only rebuilt with the signature grouping).
  RoutePrefilter prefilter_;
  /// Routed dispatch (DESIGN.md §12): genericized pattern -> affected
  /// signature-group ids. Posting lengths track distinct query structure,
  /// not tenant count. Rebuilt in OnRouteGroupsRebuilt.
  RouteIndex<uint32_t> group_routes_;
};

/// Greedy extension order over query edges starting from `seed` (most-bound,
/// then most-literal first). A planning utility for update-seeded whole-query
/// evaluation; INC's paper-faithful per-path evaluation does not use it, but
/// it is exercised by tests and available to custom engines.
std::vector<uint32_t> PlanExtensionOrder(const QueryPattern& q, uint32_t seed);

}  // namespace baseline
}  // namespace gstream

#endif  // GSTREAM_BASELINE_INVERTED_COMMON_H_
