#include "common/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace gstream {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    const std::string name = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "true" : arg.substr(eq + 1);
    // A repeated flag is always a command-line typo (the second occurrence
    // used to silently win); name the offender instead of guessing intent.
    if (!flags.values_.emplace(name, value).second) {
      std::fprintf(stderr, "--%s given more than once\n", name.c_str());
      std::exit(2);
    }
  }
  return flags;
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

int64_t Flags::GetIntAtLeast(const std::string& name, int64_t def,
                             int64_t min) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const char* text = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const int64_t value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "--%s: expected an integer, got '%s'\n", name.c_str(),
                 text);
    std::exit(2);
  }
  if (value < min) {
    std::fprintf(stderr, "--%s must be >= %lld (got %lld)\n", name.c_str(),
                 static_cast<long long>(min), static_cast<long long>(value));
    std::exit(2);
  }
  return value;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace gstream
