#ifndef GSTREAM_COMMON_FLAGS_H_
#define GSTREAM_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gstream {

/// Minimal `--key=value` / `--switch` command-line parser for the bench and
/// example binaries. Unknown flags are collected so benchmark binaries can
/// coexist with google-benchmark's own flags.
class Flags {
 public:
  /// Parses argv; flags look like `--name=value` or bare `--name` (= "true").
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// Strictly parsed integer in [min, 2^63): a present flag that is not a
  /// number, has trailing junk, or is below `min` prints a clear error to
  /// stderr and exits with status 2 (config typos like `--batch=0` or
  /// `--threads=-1` must not silently run a degenerate setup). Absent flags
  /// return `def` unchecked.
  int64_t GetIntAtLeast(const std::string& name, int64_t def, int64_t min) const;

  /// GetIntAtLeast with min = 1: window sizes, thread counts, scales.
  int64_t GetPositiveInt(const std::string& name, int64_t def) const {
    return GetIntAtLeast(name, def, 1);
  }

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags present on the command line (sorted; for strict
  /// parsers that reject unknown flags).
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_FLAGS_H_
