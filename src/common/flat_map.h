#ifndef GSTREAM_COMMON_FLAT_MAP_H_
#define GSTREAM_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"

namespace gstream {

/// Flat open-addressing hash containers for the data plane.
///
/// Every engine in this system funnels through the same two index shapes: a
/// `VertexId -> row ids` posting map (hash-join build tables, maintained
/// indexes, inverted indexes) and a row-dedup set (`Relation`'s set
/// semantics). The std containers used by the seed are node-based — one heap
/// allocation per key and a pointer chase per probe — which dominates
/// streaming-join cost (cf. Pacaci et al., "Evaluating Complex Queries on
/// Streaming Graphs"). The containers here are power-of-two, linear-probing
/// open-addressing tables with contiguous slot storage, sized so the hot
/// probe touches one or two cache lines.
///
/// Shared conventions:
///  * capacity is a power of two, probing is `(i + 1) & mask`;
///  * growth at ~7/8 load factor keeps probe chains short;
///  * no per-element erase (the data plane is append-only within a relation
///    generation; retractions rebuild), so no tombstones are needed.

namespace flat_internal {

/// Smallest power-of-two capacity that holds `n` entries at ≤7/8 load.
inline size_t RoundUpCapacity(size_t n) {
  size_t cap = 16;
  while (cap * 7 < n * 8) cap <<= 1;
  return cap;
}

/// 0 marks an empty slot in the hash-keyed tables; real hashes are forced
/// non-zero.
inline uint64_t MangleHash(uint64_t h) { return h ? h : 0x9e3779b97f4a7c15ull; }

}  // namespace flat_internal

/// Non-owning view over a posting list (row ids, ascending insertion order).
struct RowIdSpan {
  const uint32_t* data = nullptr;
  size_t count = 0;

  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }
  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + count; }
};

/// Small-buffer-optimized posting list: the first two row ids live inline in
/// the slot (most join keys in the paper's workloads have fanout 1-2), and
/// only high-fanout keys spill to a heap block. Move-only.
class PostingList {
 public:
  static constexpr uint32_t kInlineCap = 2;

  PostingList() = default;
  PostingList(const PostingList&) = delete;
  PostingList& operator=(const PostingList&) = delete;
  PostingList(PostingList&& o) noexcept : size_(o.size_), cap_(o.cap_) {
    std::memcpy(&storage_, &o.storage_, sizeof(storage_));
    o.size_ = 0;
    o.cap_ = kInlineCap;
  }
  PostingList& operator=(PostingList&& o) noexcept {
    if (this != &o) {
      if (spilled()) delete[] storage_.heap;
      size_ = o.size_;
      cap_ = o.cap_;
      std::memcpy(&storage_, &o.storage_, sizeof(storage_));
      o.size_ = 0;
      o.cap_ = kInlineCap;
    }
    return *this;
  }
  ~PostingList() {
    if (spilled()) delete[] storage_.heap;
  }

  void Append(uint32_t v) {
    if (size_ == cap_) Grow();
    (spilled() ? storage_.heap : storage_.inline_ids)[size_++] = v;
  }

  RowIdSpan Span() const {
    return {spilled() ? storage_.heap : storage_.inline_ids, size_};
  }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Heap bytes beyond the inline slot.
  size_t HeapBytes() const { return spilled() ? cap_ * sizeof(uint32_t) : 0; }

 private:
  bool spilled() const { return cap_ > kInlineCap; }

  void Grow() {
    const uint32_t new_cap = cap_ < 8 ? 8 : cap_ * 2;
    uint32_t* heap = new uint32_t[new_cap];
    std::memcpy(heap, spilled() ? storage_.heap : storage_.inline_ids,
                size_ * sizeof(uint32_t));
    if (spilled()) delete[] storage_.heap;
    storage_.heap = heap;
    cap_ = new_cap;
  }

  uint32_t size_ = 0;
  uint32_t cap_ = kInlineCap;
  union Storage {
    uint32_t inline_ids[kInlineCap];
    uint32_t* heap;
  } storage_ = {};
};

/// Open-addressing map `VertexId -> PostingList`, the hash-join build table
/// and maintained-index shape. Keys may be any VertexId including the
/// `kNoVertex` sentinel (stored out of band).
class FlatPostingMap {
 public:
  FlatPostingMap() = default;
  FlatPostingMap(FlatPostingMap&&) noexcept = default;
  FlatPostingMap& operator=(FlatPostingMap&&) noexcept = default;

  /// Pre-sizes for `n` distinct keys.
  void Reserve(size_t n) {
    const size_t cap = flat_internal::RoundUpCapacity(n);
    if (cap > Capacity()) Rehash(cap);
  }

  void Add(VertexId key, uint32_t row) { GetOrCreate(key).Append(row); }

  PostingList& GetOrCreate(VertexId key) {
    if (key == kEmptyKey) {
      if (!has_sentinel_) {
        has_sentinel_ = true;
        ++num_keys_;
      }
      return sentinel_list_;
    }
    if (Capacity() == 0 || (num_keys_ + 1) * 8 > Capacity() * 7)
      Rehash(Capacity() == 0 ? 16 : Capacity() * 2);
    size_t i = Bucket(key, mask_);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return lists_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    ++num_keys_;
    return lists_[i];
  }

  RowIdSpan Probe(VertexId key) const {
    if (key == kEmptyKey) return has_sentinel_ ? sentinel_list_.Span() : RowIdSpan{};
    if (num_keys_ == 0 || keys_.empty()) return {};
    size_t i = Bucket(key, mask_);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return lists_[i].Span();
      i = (i + 1) & mask_;
    }
    return {};
  }

  /// Number of distinct keys.
  size_t size() const { return num_keys_; }
  bool empty() const { return num_keys_ == 0; }

  void Clear() {
    keys_.clear();
    lists_.clear();
    num_keys_ = 0;
    mask_ = 0;
    has_sentinel_ = false;
    sentinel_list_ = PostingList();
  }

  /// `fn(VertexId, RowIdSpan)` over every key, table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != kEmptyKey) fn(keys_[i], lists_[i].Span());
    if (has_sentinel_) fn(kEmptyKey, sentinel_list_.Span());
  }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + keys_.capacity() * sizeof(VertexId) +
                   lists_.capacity() * sizeof(PostingList) + sentinel_list_.HeapBytes();
    for (const auto& l : lists_) bytes += l.HeapBytes();
    return bytes;
  }

 private:
  static constexpr VertexId kEmptyKey = kNoVertex;

  /// Fibonacci multiplicative bucket: one 64-bit multiply, no dependency
  /// chain — the probe hot path is a multiply, a shift, and one cache-line
  /// read. Bits 32.. of the product are well mixed for power-of-two masks.
  static size_t Bucket(VertexId key, size_t mask) {
    return static_cast<size_t>(
               (static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull) >> 32) &
           mask;
  }

  size_t Capacity() const { return keys_.size(); }

  void Rehash(size_t new_cap) {
    std::vector<VertexId> old_keys = std::move(keys_);
    std::vector<PostingList> old_lists = std::move(lists_);
    keys_.assign(new_cap, kEmptyKey);
    lists_.clear();
    lists_.resize(new_cap);
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      size_t j = Bucket(old_keys[i], mask_);
      while (keys_[j] != kEmptyKey) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      lists_[j] = std::move(old_lists[i]);
    }
  }

  std::vector<VertexId> keys_;      ///< kEmptyKey marks an empty slot.
  std::vector<PostingList> lists_;  ///< Parallel to keys_.
  size_t num_keys_ = 0;
  size_t mask_ = 0;
  bool has_sentinel_ = false;
  PostingList sentinel_list_;  ///< Postings for the kNoVertex key itself.
};

/// Open-addressing row-dedup set for `Relation`: stores (hash, row index)
/// pairs; the caller supplies row equality (the rows live in the relation's
/// own columnar buffer). ~12 bytes per row vs. the ~56 of a node-based
/// unordered_set entry, and insertion is allocation-free until growth.
class FlatRowSet {
 public:
  void Reserve(size_t n) {
    const size_t cap = flat_internal::RoundUpCapacity(n);
    if (cap > hashes_.size()) Rehash(cap);
  }

  /// Inserts row `idx` with precomputed `hash` unless an equal row exists;
  /// `eq(existing_idx)` decides equality. Returns true when inserted.
  template <typename EqFn>
  bool Insert(uint64_t hash, uint32_t idx, EqFn eq) {
    if (hashes_.empty() || (size_ + 1) * 8 > hashes_.size() * 7)
      Rehash(hashes_.empty() ? 16 : hashes_.size() * 2);
    const uint64_t h = flat_internal::MangleHash(hash);
    size_t i = h & mask_;
    while (hashes_[i] != 0) {
      if (hashes_[i] == h && eq(rows_[i])) return false;
      i = (i + 1) & mask_;
    }
    hashes_[i] = h;
    rows_[i] = idx;
    ++size_;
    return true;
  }

  size_t size() const { return size_; }

  void Clear() {
    std::fill(hashes_.begin(), hashes_.end(), 0);
    size_ = 0;
  }

  size_t MemoryBytes() const {
    return sizeof(*this) + hashes_.capacity() * sizeof(uint64_t) +
           rows_.capacity() * sizeof(uint32_t);
  }

 private:
  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<uint32_t> old_rows = std::move(rows_);
    hashes_.assign(new_cap, 0);
    rows_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_hashes.size(); ++i) {
      if (old_hashes[i] == 0) continue;
      size_t j = old_hashes[i] & mask_;
      while (hashes_[j] != 0) j = (j + 1) & mask_;
      hashes_[j] = old_hashes[i];
      rows_[j] = old_rows[i];
    }
  }

  std::vector<uint64_t> hashes_;  ///< Mangled hash; 0 = empty.
  std::vector<uint32_t> rows_;    ///< Parallel: row index in the relation.
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// Generic open-addressing map for the colder index shapes (JoinCache keys,
/// trie rootInd / node index, the baselines' inverted indexes). Keys must be
/// copyable and equality-comparable; values move on rehash, so stable-address
/// values belong behind unique_ptr. No per-element erase.
///
/// Pointer stability: unlike the node-based std maps this replaces, pointers
/// returned by Find/GetOrCreate are into slot storage and are invalidated by
/// the next insertion (rehash moves every slot). Copy out what you need
/// before mutating the map.
template <typename K, typename V, typename Hash, typename Eq = std::equal_to<K>>
class FlatMap {
 public:
  V& GetOrCreate(const K& key) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7)
      Rehash(slots_.empty() ? 16 : slots_.size() * 2);
    const uint64_t h = flat_internal::MangleHash(Hash{}(key));
    size_t i = h & mask_;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && Eq{}(slots_[i].key, key)) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    slots_[i].hash = h;
    slots_[i].key = key;
    ++size_;
    return slots_[i].value;
  }

  V* Find(const K& key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->Find(key));
  }
  const V* Find(const K& key) const {
    if (size_ == 0) return nullptr;
    const uint64_t h = flat_internal::MangleHash(Hash{}(key));
    size_t i = h & mask_;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && Eq{}(slots_[i].key, key)) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    const size_t cap = flat_internal::RoundUpCapacity(n);
    if (cap > slots_.size()) Rehash(cap);
  }

  void Clear() {
    slots_.clear();
    size_ = 0;
    mask_ = 0;
  }

  /// `fn(const K&, const V&)` / `fn(const K&, V&)` over every entry.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Slot& s : slots_)
      if (s.hash != 0) fn(s.key, s.value);
  }
  template <typename Fn>
  void ForEachMutable(Fn fn) {
    for (Slot& s : slots_)
      if (s.hash != 0) fn(s.key, s.value);
  }

  /// Slot-array bytes only; value-owned heap is the caller's to account.
  size_t MemoryBytes() const {
    return sizeof(*this) + slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    uint64_t hash = 0;  ///< 0 = empty.
    K key{};
    V value{};
  };

  void Rehash(size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_cap);
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (s.hash == 0) continue;
      size_t j = s.hash & mask_;
      while (slots_[j].hash != 0) j = (j + 1) & mask_;
      slots_[j] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// Hash functor for VertexId keys in FlatMap.
struct VertexIdHash {
  size_t operator()(VertexId v) const { return Mix64(v); }
};

/// Stack-first row scratch for the join kernels: join outputs are path rows
/// (arity = path length + 2, almost always tiny), so a per-call heap
/// std::vector is pure overhead. Falls back to the heap above kInline ids.
class RowScratch {
 public:
  explicit RowScratch(size_t n) {
    if (n <= kInline) {
      data_ = buf_;
    } else {
      heap_ = std::make_unique<VertexId[]>(n);
      data_ = heap_.get();
    }
  }
  RowScratch(const RowScratch&) = delete;
  RowScratch& operator=(const RowScratch&) = delete;

  VertexId* data() { return data_; }
  VertexId& operator[](size_t i) { return data_[i]; }

 private:
  static constexpr size_t kInline = 16;
  VertexId* data_;
  VertexId buf_[kInline];
  std::unique_ptr<VertexId[]> heap_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_FLAT_MAP_H_
