#ifndef GSTREAM_COMMON_FLAT_MAP_H_
#define GSTREAM_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"

#if !defined(GSTREAM_NO_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#elif !defined(GSTREAM_NO_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace gstream {

/// Flat open-addressing hash containers for the data plane.
///
/// Every engine in this system funnels through the same two index shapes: a
/// `VertexId -> row ids` posting map (hash-join build tables, maintained
/// indexes, inverted indexes) and a row-dedup set (`Relation`'s set
/// semantics). The std containers used by the seed are node-based — one heap
/// allocation per key and a pointer chase per probe — which dominates
/// streaming-join cost (cf. Pacaci et al., "Evaluating Complex Queries on
/// Streaming Graphs"). The containers here are power-of-two, open-addressing
/// tables with contiguous slot storage and SwissTable-style group probing: a
/// separate per-slot control byte (empty marker | 7-bit hash fragment) lets a
/// probe rule 16 slots in or out with one 16-byte compare, so slot storage is
/// only touched for candidates whose fragment already matched.
///
/// Shared conventions:
///  * capacity is a power of two (and a multiple of the 16-slot group);
///    probing walks group-aligned windows, `g = (g + 16) & mask`;
///  * growth at ~7/8 load factor keeps probe chains short;
///  * the two hot-path containers (`FlatPostingMap`, `FlatRowSet`) have no
///    per-element erase (the data plane is append-only within a relation
///    generation; retractions rebuild), so a group containing an empty slot
///    always terminates their probes. The colder `FlatMap` supports
///    `Erase`/`Compact` for the query-lifecycle GC (routing indexes and
///    cached join tables shrink when queries are removed): erased slots
///    become tombstones that keep probe chains intact, and `Compact`
///    rehashes them (and excess capacity) away so `MemoryBytes` reflects
///    the release.
///
/// SIMD: the 16-byte group compare uses SSE2 on x86 and NEON on arm; defining
/// `GSTREAM_NO_SIMD` (CMake option of the same name) selects a portable
/// scalar loop with bit-identical results. The scalar implementation is
/// always compiled (`ScalarGroup`) so the SIMD paths can be parity-tested
/// against it in the same binary.

namespace flat_internal {

/// Slots probed per group step (one SSE2/NEON register of control bytes).
inline constexpr size_t kGroupWidth = 16;

/// Control byte of an empty slot. Full slots store the 7-bit `H2` fragment
/// (0..127), so the sign bit alone distinguishes empty/deleted from full.
inline constexpr int8_t kCtrlEmpty = -128;

/// Control byte of a tombstoned (erased) slot: negative like kCtrlEmpty so
/// `MatchEmpty` (sign-bit) treats it as free for the containers that never
/// erase, but distinct so erase-aware probes (`FlatMap`) can keep walking
/// past it — a tombstone never terminates a probe chain.
inline constexpr int8_t kCtrlDeleted = -2;

/// Smallest power-of-two capacity that holds `n` entries at ≤7/8 load.
inline size_t RoundUpCapacity(size_t n) {
  size_t cap = kGroupWidth;
  while (cap * 7 < n * 8) cap <<= 1;
  return cap;
}

/// Splits a 64-bit hash for group probing: the home-group window and the
/// 7-bit `H2` control fragment must come from disjoint bit ranges, or
/// same-group entries get correlated fragments and the 16-byte prefilter
/// stops filtering. `FlatRowSet`/`FlatMap` index groups from the low bits,
/// so the top-bits fragment is disjoint below 2^57 slots; `FlatPostingMap`
/// indexes from bits 32.. and uses `H2Low` (bits 25..31), disjoint for any
/// capacity.
inline int8_t H2(uint64_t h) { return static_cast<int8_t>(h >> 57); }
inline int8_t H2Low(uint64_t h) { return static_cast<int8_t>((h >> 25) & 0x7f); }

/// Iterator over the matching lanes of one 16-slot group, lowest lane first.
/// `shift` folds the backend mask encodings into one type: SSE2/scalar masks
/// carry one bit per lane, the NEON mask carries one bit in the top of each
/// lane nibble (so lane = trailing-zeros >> shift and `bits & (bits - 1)`
/// clears exactly one lane in both encodings).
class LaneMask {
 public:
  LaneMask(uint64_t bits, uint32_t shift) : bits_(bits), shift_(shift) {}
  explicit operator bool() const { return bits_ != 0; }
  uint32_t Lane() const {
    return static_cast<uint32_t>(__builtin_ctzll(bits_)) >> shift_;
  }
  void Clear() { bits_ &= bits_ - 1; }

 private:
  uint64_t bits_;
  uint32_t shift_;
};

/// Portable group ops; also the reference the SIMD backends are tested
/// against (tests/flat_map_test.cc fuzzes Match/MatchEmpty parity).
struct ScalarGroup {
  explicit ScalarGroup(const int8_t* ctrl) : p(ctrl) {}

  LaneMask Match(int8_t h2) const {
    uint64_t m = 0;
    for (uint32_t i = 0; i < kGroupWidth; ++i)
      m |= static_cast<uint64_t>(p[i] == h2) << i;
    return {m, 0};
  }

  /// Empty slots are the only control bytes with the sign bit set.
  LaneMask MatchEmpty() const {
    uint64_t m = 0;
    for (uint32_t i = 0; i < kGroupWidth; ++i)
      m |= static_cast<uint64_t>(p[i] < 0) << i;
    return {m, 0};
  }

  const int8_t* p;
};

#if !defined(GSTREAM_NO_SIMD) && defined(__SSE2__)

struct SseGroup {
  explicit SseGroup(const int8_t* ctrl)
      : v(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))) {}

  LaneMask Match(int8_t h2) const {
    const uint32_t m = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_set1_epi8(h2))));
    return {m, 0};
  }

  LaneMask MatchEmpty() const {
    // kCtrlEmpty is the only byte value with the sign bit set.
    return {static_cast<uint32_t>(_mm_movemask_epi8(v)), 0};
  }

  __m128i v;
};
using Group = SseGroup;

#elif !defined(GSTREAM_NO_SIMD) && defined(__ARM_NEON)

struct NeonGroup {
  explicit NeonGroup(const int8_t* ctrl) : v(vld1q_s8(ctrl)) {}

  LaneMask Match(int8_t h2) const {
    return FromLanes(vceqq_s8(v, vdupq_n_s8(h2)));
  }

  LaneMask MatchEmpty() const {
    return FromLanes(vcltq_s8(v, vdupq_n_s8(0)));
  }

  /// Narrows a per-lane 0xFF/0x00 mask to 4 bits per lane and keeps one bit
  /// per lane (the nibble's top bit) so `bits & (bits - 1)` clears one lane.
  static LaneMask FromLanes(uint8x16_t eq) {
    const uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
    const uint64_t packed = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    return {packed & 0x8888888888888888ull, 2};
  }

  int8x16_t v;
};
using Group = NeonGroup;

#else
using Group = ScalarGroup;
#endif

/// First empty slot on the probe chain starting at group-aligned `g`
/// (insert/rehash path — the caller already knows the key is absent).
inline size_t FindFirstEmpty(const int8_t* ctrl, size_t mask, size_t g) {
  while (true) {
    if (auto e = Group(ctrl + g).MatchEmpty()) return g + e.Lane();
    g = (g + kGroupWidth) & mask;
  }
}

}  // namespace flat_internal

/// Non-owning view over a posting list (row ids, ascending insertion order).
struct RowIdSpan {
  const uint32_t* data = nullptr;
  size_t count = 0;

  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }
  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + count; }
};

/// Small-buffer-optimized posting list: the first two row ids live inline in
/// the slot (most join keys in the paper's workloads have fanout 1-2), and
/// only high-fanout keys spill to a heap block. Move-only.
class PostingList {
 public:
  static constexpr uint32_t kInlineCap = 2;

  PostingList() = default;
  PostingList(const PostingList&) = delete;
  PostingList& operator=(const PostingList&) = delete;
  PostingList(PostingList&& o) noexcept : size_(o.size_), cap_(o.cap_) {
    std::memcpy(&storage_, &o.storage_, sizeof(storage_));
    o.size_ = 0;
    o.cap_ = kInlineCap;
  }
  PostingList& operator=(PostingList&& o) noexcept {
    if (this != &o) {
      if (spilled()) delete[] storage_.heap;
      size_ = o.size_;
      cap_ = o.cap_;
      std::memcpy(&storage_, &o.storage_, sizeof(storage_));
      o.size_ = 0;
      o.cap_ = kInlineCap;
    }
    return *this;
  }
  ~PostingList() {
    if (spilled()) delete[] storage_.heap;
  }

  void Append(uint32_t v) {
    if (size_ == cap_) Grow();
    (spilled() ? storage_.heap : storage_.inline_ids)[size_++] = v;
  }

  RowIdSpan Span() const {
    return {spilled() ? storage_.heap : storage_.inline_ids, size_};
  }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Heap bytes beyond the inline slot.
  size_t HeapBytes() const { return spilled() ? cap_ * sizeof(uint32_t) : 0; }

 private:
  bool spilled() const { return cap_ > kInlineCap; }

  void Grow() {
    const uint32_t new_cap = cap_ < 8 ? 8 : cap_ * 2;
    uint32_t* heap = new uint32_t[new_cap];
    std::memcpy(heap, spilled() ? storage_.heap : storage_.inline_ids,
                size_ * sizeof(uint32_t));
    if (spilled()) delete[] storage_.heap;
    storage_.heap = heap;
    cap_ = new_cap;
  }

  uint32_t size_ = 0;
  uint32_t cap_ = kInlineCap;
  union Storage {
    uint32_t inline_ids[kInlineCap];
    uint32_t* heap;
  } storage_ = {};
};

/// Open-addressing map `VertexId -> PostingList`, the hash-join build table
/// and maintained-index shape. Keys may be any VertexId including the
/// `kNoVertex` sentinel (stored out of band).
class FlatPostingMap {
 public:
  FlatPostingMap() = default;
  FlatPostingMap(FlatPostingMap&&) noexcept = default;
  FlatPostingMap& operator=(FlatPostingMap&&) noexcept = default;

  /// Pre-sizes for `n` distinct keys.
  void Reserve(size_t n) {
    const size_t cap = flat_internal::RoundUpCapacity(n);
    if (cap > Capacity()) Rehash(cap);
  }

  void Add(VertexId key, uint32_t row) { GetOrCreate(key).Append(row); }

  PostingList& GetOrCreate(VertexId key) {
    if (key == kEmptyKey) {
      if (!has_sentinel_) {
        has_sentinel_ = true;
        ++num_keys_;
      }
      return sentinel_list_;
    }
    const uint64_t h = Hash(key);
    const int8_t h2 = flat_internal::H2Low(h);
    // Probe before the growth check: hitting an existing key must neither
    // rehash (slot pointers stay valid) nor pay a wasted table double.
    size_t insert_at = kNoSlot;
    if (!ctrl_.empty()) {
      size_t g = HomeGroup(h);
      while (true) {
        const flat_internal::Group grp(ctrl_.data() + g);
        for (auto m = grp.Match(h2); m; m.Clear()) {
          const size_t i = g + m.Lane();
          if (keys_[i] == key) return lists_[i];
        }
        if (auto e = grp.MatchEmpty()) {
          insert_at = g + e.Lane();
          break;
        }
        g = (g + flat_internal::kGroupWidth) & mask_;
      }
    }
    if (Capacity() == 0 || (num_keys_ + 1) * 8 > Capacity() * 7) {
      Rehash(Capacity() == 0 ? flat_internal::kGroupWidth : Capacity() * 2);
      insert_at = FindInsertSlot(h);
    }
    ctrl_[insert_at] = h2;
    keys_[insert_at] = key;
    ++num_keys_;
    return lists_[insert_at];
  }

  RowIdSpan Probe(VertexId key) const {
    if (key == kEmptyKey) return has_sentinel_ ? sentinel_list_.Span() : RowIdSpan{};
    if (num_keys_ == 0 || ctrl_.empty()) return {};
    const uint64_t h = Hash(key);
    const int8_t h2 = flat_internal::H2Low(h);
    size_t g = HomeGroup(h);
    while (true) {
      const flat_internal::Group grp(ctrl_.data() + g);
      for (auto m = grp.Match(h2); m; m.Clear()) {
        const size_t i = g + m.Lane();
        if (keys_[i] == key) return lists_[i].Span();
      }
      if (grp.MatchEmpty()) return {};
      g = (g + flat_internal::kGroupWidth) & mask_;
    }
  }

  /// Number of distinct keys.
  size_t size() const { return num_keys_; }
  bool empty() const { return num_keys_ == 0; }

  void Clear() {
    ctrl_.clear();
    keys_.clear();
    lists_.clear();
    num_keys_ = 0;
    mask_ = 0;
    has_sentinel_ = false;
    sentinel_list_ = PostingList();
  }

  /// `fn(VertexId, RowIdSpan)` over every key, table order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < ctrl_.size(); ++i)
      if (ctrl_[i] != flat_internal::kCtrlEmpty) fn(keys_[i], lists_[i].Span());
    if (has_sentinel_) fn(kEmptyKey, sentinel_list_.Span());
  }

  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this) + ctrl_.capacity() * sizeof(int8_t) +
                   keys_.capacity() * sizeof(VertexId) +
                   lists_.capacity() * sizeof(PostingList) + sentinel_list_.HeapBytes();
    for (const auto& l : lists_) bytes += l.HeapBytes();
    return bytes;
  }

 private:
  static constexpr VertexId kEmptyKey = kNoVertex;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Fibonacci multiplicative hash: one 64-bit multiply, no dependency
  /// chain — the probe hot path is a multiply, a shift, and one 16-byte
  /// control-group compare. Bits 32.. pick the home group, the top 7 bits
  /// are the control fragment.
  static uint64_t Hash(VertexId key) {
    return static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull;
  }

  /// Group-aligned home slot of `h`.
  size_t HomeGroup(uint64_t h) const {
    return (static_cast<size_t>(h >> 32) & mask_) & ~(flat_internal::kGroupWidth - 1);
  }

  size_t Capacity() const { return ctrl_.size(); }

  /// First empty slot on `h`'s probe chain (rehash path: keys are distinct,
  /// so no match scan is needed).
  size_t FindInsertSlot(uint64_t h) const {
    return flat_internal::FindFirstEmpty(ctrl_.data(), mask_, HomeGroup(h));
  }

  void Rehash(size_t new_cap) {
    std::vector<int8_t> old_ctrl = std::move(ctrl_);
    std::vector<VertexId> old_keys = std::move(keys_);
    std::vector<PostingList> old_lists = std::move(lists_);
    ctrl_.assign(new_cap, flat_internal::kCtrlEmpty);
    keys_.resize(new_cap);
    lists_.clear();
    lists_.resize(new_cap);
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] == flat_internal::kCtrlEmpty) continue;
      const uint64_t h = Hash(old_keys[i]);
      const size_t j = FindInsertSlot(h);
      ctrl_[j] = flat_internal::H2Low(h);
      keys_[j] = old_keys[i];
      lists_[j] = std::move(old_lists[i]);
    }
  }

  std::vector<int8_t> ctrl_;        ///< kCtrlEmpty | H2 fragment, per slot.
  std::vector<VertexId> keys_;      ///< Parallel to ctrl_; valid where full.
  std::vector<PostingList> lists_;  ///< Parallel to ctrl_.
  size_t num_keys_ = 0;
  size_t mask_ = 0;
  bool has_sentinel_ = false;
  PostingList sentinel_list_;  ///< Postings for the kNoVertex key itself.
};

/// Open-addressing row-dedup set for `Relation`: control bytes + row
/// indexes, 5 bytes per slot (vs. ~56 of a node-based unordered_set entry
/// and 13 of a stored-hash flat layout) — an insert touches one control
/// line and one row line. Full hashes are not stored: the 7-bit control
/// fragment prefilters (1/128 false-candidate rate) and `eq` confirms on
/// the relation's own row data; growth recomputes row hashes through the
/// caller-supplied `hash_of` (rows are cheap to rehash — a handful of ids).
class FlatRowSet {
 public:
  /// `hash_of(row_idx)` recomputes a stored row's hash (growth only).
  template <typename HashFn>
  void Reserve(size_t n, HashFn hash_of) {
    const size_t cap = flat_internal::RoundUpCapacity(n);
    if (cap > ctrl_.size()) Rehash(cap, hash_of);
  }

  /// Inserts row `idx` with precomputed `hash` unless an equal row exists;
  /// `eq(existing_idx)` decides equality. Returns true when inserted.
  template <typename EqFn, typename HashFn>
  bool Insert(uint64_t hash, uint32_t idx, EqFn eq, HashFn hash_of) {
    const int8_t h2 = flat_internal::H2(hash);
    // Probe before the growth check: rejecting a duplicate row must not pay
    // a wasted table double at the load threshold.
    size_t insert_at = static_cast<size_t>(-1);
    if (!ctrl_.empty()) {
      size_t g = HomeGroup(hash);
      while (true) {
        const flat_internal::Group grp(ctrl_.data() + g);
        for (auto m = grp.Match(h2); m; m.Clear()) {
          if (eq(rows_[g + m.Lane()])) return false;
        }
        if (auto e = grp.MatchEmpty()) {
          insert_at = g + e.Lane();
          break;
        }
        g = (g + flat_internal::kGroupWidth) & mask_;
      }
    }
    if (ctrl_.empty() || (size_ + 1) * 8 > ctrl_.size() * 7) {
      Rehash(ctrl_.empty() ? flat_internal::kGroupWidth : ctrl_.size() * 2, hash_of);
      insert_at = flat_internal::FindFirstEmpty(ctrl_.data(), mask_, HomeGroup(hash));
    }
    ctrl_[insert_at] = h2;
    rows_[insert_at] = idx;
    ++size_;
    return true;
  }

  size_t size() const { return size_; }

  void Clear() {
    std::fill(ctrl_.begin(), ctrl_.end(), flat_internal::kCtrlEmpty);
    size_ = 0;
  }

  size_t MemoryBytes() const {
    return sizeof(*this) + ctrl_.capacity() * sizeof(int8_t) +
           rows_.capacity() * sizeof(uint32_t);
  }

 private:
  size_t HomeGroup(uint64_t h) const {
    return (static_cast<size_t>(h) & mask_) & ~(flat_internal::kGroupWidth - 1);
  }

  template <typename HashFn>
  void Rehash(size_t new_cap, HashFn hash_of) {
    std::vector<int8_t> old_ctrl = std::move(ctrl_);
    std::vector<uint32_t> old_rows = std::move(rows_);
    ctrl_.assign(new_cap, flat_internal::kCtrlEmpty);
    rows_.resize(new_cap);
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] == flat_internal::kCtrlEmpty) continue;
      const size_t j = flat_internal::FindFirstEmpty(
          ctrl_.data(), mask_, HomeGroup(hash_of(old_rows[i])));
      ctrl_[j] = old_ctrl[i];
      rows_[j] = old_rows[i];
    }
  }

  std::vector<int8_t> ctrl_;    ///< kCtrlEmpty | H2 fragment, per slot.
  std::vector<uint32_t> rows_;  ///< Parallel: row index in the relation.
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// Generic open-addressing map for the colder index shapes (JoinCache keys,
/// trie rootInd / node index, the baselines' inverted indexes). Keys must be
/// copyable and equality-comparable; values move on rehash, so stable-address
/// values belong behind unique_ptr.
///
/// Erase support (query-lifecycle GC): `Erase` tombstones the slot so probe
/// chains through it stay intact; tombstones are reused by later inserts and
/// count against the load factor until `Compact` rehashes them away.
/// `Compact` also shrinks capacity to fit the live entries, so `MemoryBytes`
/// observably drops after a removal wave — call it once per removal batch,
/// not per erase.
///
/// Pointer stability: unlike the node-based std maps this replaces, pointers
/// returned by Find/GetOrCreate are into slot storage and are invalidated by
/// the next insertion, erase, or compaction (rehash moves every slot). Copy
/// out what you need before mutating the map.
template <typename K, typename V, typename Hash, typename Eq = std::equal_to<K>>
class FlatMap {
 public:
  V& GetOrCreate(const K& key) {
    const uint64_t h = Hash{}(key);
    const int8_t h2 = flat_internal::H2(h);
    // Probe before the growth check: hitting an existing key must neither
    // rehash (slot pointers stay valid) nor pay a wasted table double. The
    // first tombstone on the chain is remembered for reuse; only a truly
    // empty slot proves the key absent.
    size_t insert_at = static_cast<size_t>(-1);
    bool reuse_tombstone = false;
    if (!ctrl_.empty()) {
      size_t g = HomeGroup(h);
      while (true) {
        const flat_internal::Group grp(ctrl_.data() + g);
        for (auto m = grp.Match(h2); m; m.Clear()) {
          const size_t i = g + m.Lane();
          if (slots_[i].hash == h && Eq{}(slots_[i].key, key)) return slots_[i].value;
        }
        if (!reuse_tombstone) {
          if (auto d = grp.Match(flat_internal::kCtrlDeleted)) {
            insert_at = g + d.Lane();
            reuse_tombstone = true;
          }
        }
        if (auto e = grp.Match(flat_internal::kCtrlEmpty)) {
          if (!reuse_tombstone) insert_at = g + e.Lane();
          break;
        }
        g = (g + flat_internal::kGroupWidth) & mask_;
      }
    }
    if (ctrl_.empty() ||
        (!reuse_tombstone && (size_ + num_deleted_ + 1) * 8 > ctrl_.size() * 7)) {
      Rehash(ctrl_.empty() ? flat_internal::kGroupWidth : ctrl_.size() * 2);
      insert_at = flat_internal::FindFirstEmpty(ctrl_.data(), mask_, HomeGroup(h));
      reuse_tombstone = false;
    }
    if (reuse_tombstone) --num_deleted_;
    ctrl_[insert_at] = h2;
    slots_[insert_at].hash = h;
    slots_[insert_at].key = key;
    ++size_;
    return slots_[insert_at].value;
  }

  V* Find(const K& key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->Find(key));
  }
  const V* Find(const K& key) const {
    if (size_ == 0) return nullptr;
    const uint64_t h = Hash{}(key);
    const int8_t h2 = flat_internal::H2(h);
    size_t g = HomeGroup(h);
    while (true) {
      const flat_internal::Group grp(ctrl_.data() + g);
      for (auto m = grp.Match(h2); m; m.Clear()) {
        const size_t i = g + m.Lane();
        if (slots_[i].hash == h && Eq{}(slots_[i].key, key)) return &slots_[i].value;
      }
      // Tombstones must not terminate the probe, so match the exact empty
      // byte (same one-compare cost as the sign-bit check).
      if (grp.Match(flat_internal::kCtrlEmpty)) return nullptr;
      g = (g + flat_internal::kGroupWidth) & mask_;
    }
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Erases `key`'s entry (the value is destroyed in place); the slot
  /// becomes a tombstone until the next Compact/rehash. Returns true when
  /// the key was present.
  bool Erase(const K& key) {
    if (size_ == 0) return false;
    const uint64_t h = Hash{}(key);
    const int8_t h2 = flat_internal::H2(h);
    size_t g = HomeGroup(h);
    while (true) {
      const flat_internal::Group grp(ctrl_.data() + g);
      for (auto m = grp.Match(h2); m; m.Clear()) {
        const size_t i = g + m.Lane();
        if (slots_[i].hash == h && Eq{}(slots_[i].key, key)) {
          ctrl_[i] = flat_internal::kCtrlDeleted;
          slots_[i] = Slot{};
          --size_;
          ++num_deleted_;
          return true;
        }
      }
      if (grp.Match(flat_internal::kCtrlEmpty)) return false;
      g = (g + flat_internal::kGroupWidth) & mask_;
    }
  }

  /// Rehashes tombstones away and shrinks capacity to fit the live entries
  /// (an empty map releases all storage). Invalidates every slot pointer.
  void Compact() {
    if (size_ == 0) {
      std::vector<int8_t>().swap(ctrl_);
      std::vector<Slot>().swap(slots_);
      mask_ = 0;
      num_deleted_ = 0;
      return;
    }
    Rehash(flat_internal::RoundUpCapacity(size_));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    const size_t cap = flat_internal::RoundUpCapacity(n);
    if (cap > ctrl_.size()) Rehash(cap);
  }

  void Clear() {
    ctrl_.clear();
    slots_.clear();
    size_ = 0;
    mask_ = 0;
    num_deleted_ = 0;
  }

  /// `fn(const K&, const V&)` / `fn(const K&, V&)` over every entry.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < ctrl_.size(); ++i)
      if (ctrl_[i] >= 0) fn(slots_[i].key, slots_[i].value);
  }
  template <typename Fn>
  void ForEachMutable(Fn fn) {
    for (size_t i = 0; i < ctrl_.size(); ++i)
      if (ctrl_[i] >= 0) fn(slots_[i].key, slots_[i].value);
  }

  /// Slot-array bytes only; value-owned heap is the caller's to account.
  size_t MemoryBytes() const {
    return sizeof(*this) + ctrl_.capacity() * sizeof(int8_t) +
           slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    K key{};
    V value{};
  };

  size_t HomeGroup(uint64_t h) const {
    return (static_cast<size_t>(h) & mask_) & ~(flat_internal::kGroupWidth - 1);
  }

  void Rehash(size_t new_cap) {
    std::vector<int8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old = std::move(slots_);
    ctrl_.assign(new_cap, flat_internal::kCtrlEmpty);
    slots_.clear();
    slots_.resize(new_cap);
    mask_ = new_cap - 1;
    num_deleted_ = 0;  // tombstones are dropped, not migrated
    for (size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] < 0) continue;  // empty or tombstone
      const size_t j =
          flat_internal::FindFirstEmpty(ctrl_.data(), mask_, HomeGroup(old[i].hash));
      ctrl_[j] = old_ctrl[i];
      slots_[j] = std::move(old[i]);
    }
  }

  std::vector<int8_t> ctrl_;  ///< kCtrlEmpty | kCtrlDeleted | H2, per slot.
  std::vector<Slot> slots_;   ///< Parallel to ctrl_; valid where full.
  size_t size_ = 0;
  size_t mask_ = 0;
  size_t num_deleted_ = 0;    ///< Tombstoned slots (count against load).
};

/// Hash functor for VertexId keys in FlatMap.
struct VertexIdHash {
  size_t operator()(VertexId v) const { return Mix64(v); }
};

/// Stack-first row scratch for the join kernels: join outputs are path rows
/// (arity = path length + 2, almost always tiny), so a per-call heap
/// std::vector is pure overhead. Falls back to the heap above kInline ids.
class RowScratch {
 public:
  explicit RowScratch(size_t n) {
    if (n <= kInline) {
      data_ = buf_;
    } else {
      heap_ = std::make_unique<VertexId[]>(n);
      data_ = heap_.get();
    }
  }
  RowScratch(const RowScratch&) = delete;
  RowScratch& operator=(const RowScratch&) = delete;

  VertexId* data() { return data_; }
  VertexId& operator[](size_t i) { return data_[i]; }

 private:
  static constexpr size_t kInline = 16;
  VertexId* data_;
  VertexId buf_[kInline];
  std::unique_ptr<VertexId[]> heap_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_FLAT_MAP_H_
