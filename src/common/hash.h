#ifndef GSTREAM_COMMON_HASH_H_
#define GSTREAM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gstream {

/// 64-bit mix (splitmix64 finalizer). Cheap and well distributed; used as the
/// scalar hash throughout the join and index code.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Incrementally combines a value into a running hash seed.
inline void HashCombine(size_t& seed, uint64_t v) {
  seed ^= Mix64(v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Hash for a span of 32-bit ids (tuple keys in materialized views).
inline size_t HashIds(const uint32_t* data, size_t n) {
  size_t seed = 0x51ab5f1e9cce77d3ull ^ n;
  for (size_t i = 0; i < n; ++i) HashCombine(seed, data[i]);
  return seed;
}

/// std::hash adaptor for std::vector<uint32_t>.
struct IdVectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    return HashIds(v.data(), v.size());
  }
};

/// std::hash adaptor for std::pair of integral types.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashCombine(seed, static_cast<uint64_t>(p.first));
    HashCombine(seed, static_cast<uint64_t>(p.second));
    return seed;
  }
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_HASH_H_
