#ifndef GSTREAM_COMMON_IDS_H_
#define GSTREAM_COMMON_IDS_H_

#include <cstdint>
#include <limits>

namespace gstream {

/// Interned identifier of a vertex label. In our data model a vertex label
/// identifies an entity (paper §3.1: literals are "specific entities in the
/// graph identified by their label"), so `VertexId` doubles as the vertex
/// identity.
using VertexId = uint32_t;

/// Interned identifier of an edge label (relationship type).
using LabelId = uint32_t;

/// Identifier of a continuous query graph pattern inside a `QueryDb`.
using QueryId = uint32_t;

/// Identifier of a variable vertex inside one query pattern (local scope).
using VarId = uint32_t;

/// Sentinel: "no vertex".
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// Sentinel: "no label".
inline constexpr LabelId kNoLabel = std::numeric_limits<LabelId>::max();

/// Sentinel: "no query".
inline constexpr QueryId kNoQuery = std::numeric_limits<QueryId>::max();

}  // namespace gstream

#endif  // GSTREAM_COMMON_IDS_H_
