#include "common/interning.h"

namespace gstream {

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

uint32_t StringInterner::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNotFound : it->second;
}

size_t StringInterner::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
    // Hash-map entry: key string + id + bucket overhead (approximation).
    bytes += sizeof(std::string) + s.capacity() + sizeof(uint32_t) + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace gstream
