#ifndef GSTREAM_COMMON_INTERNING_H_
#define GSTREAM_COMMON_INTERNING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gstream {

/// Bidirectional string <-> dense integer id mapping.
///
/// All vertex and edge labels flowing through the system are interned once at
/// the boundary so that the hot path (indexing, joins, trie traversal) only
/// touches 32-bit ids. Ids are dense and start at 0, which lets downstream
/// structures use them as vector indexes.
class StringInterner {
 public:
  StringInterner() = default;

  /// Returns the id for `s`, creating a new one if unseen.
  uint32_t Intern(std::string_view s);

  /// Returns the id for `s` or `kNotFound` if it was never interned.
  uint32_t Find(std::string_view s) const;

  /// Returns the string for a previously returned id.
  const std::string& Lookup(uint32_t id) const { return strings_[id]; }

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

  /// Approximate heap footprint in bytes (for Fig. 13(c) accounting).
  size_t MemoryBytes() const;

  static constexpr uint32_t kNotFound = 0xffffffffu;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_INTERNING_H_
