#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gstream {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load()) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void CheckFailed(const char* expr, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] CHECK failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gstream
