#ifndef GSTREAM_COMMON_LOGGING_H_
#define GSTREAM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style one-shot logger; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& msg);

}  // namespace internal
}  // namespace gstream

#define GS_LOG(level)                                                            \
  ::gstream::internal::LogMessage(::gstream::LogLevel::k##level, __FILE__, __LINE__)

/// Always-on invariant check. Database code fails loudly on broken
/// invariants instead of silently corrupting results.
#define GS_CHECK(expr)                                                           \
  do {                                                                           \
    if (!(expr))                                                                 \
      ::gstream::internal::CheckFailed(#expr, __FILE__, __LINE__, std::string()); \
  } while (0)

#define GS_CHECK_MSG(expr, msg)                                                  \
  do {                                                                           \
    if (!(expr))                                                                 \
      ::gstream::internal::CheckFailed(#expr, __FILE__, __LINE__, (msg));        \
  } while (0)

#ifdef NDEBUG
#define GS_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define GS_DCHECK(expr) GS_CHECK(expr)
#endif

#endif  // GSTREAM_COMMON_LOGGING_H_
