#include "common/mem_tracker.h"

namespace gstream {

void MemTracker::Add(const std::string& component, size_t bytes) {
  breakdown_[component] += bytes;
}

void MemTracker::Clear() { breakdown_.clear(); }

size_t MemTracker::TotalBytes() const {
  size_t total = 0;
  for (const auto& [name, bytes] : breakdown_) total += bytes;
  return total;
}

}  // namespace gstream
