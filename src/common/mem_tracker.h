#ifndef GSTREAM_COMMON_MEM_TRACKER_H_
#define GSTREAM_COMMON_MEM_TRACKER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace gstream {

/// Container-footprint estimators used to reproduce the paper's memory table
/// (Fig. 13(c)). We deliberately account logical structure sizes instead of
/// RSS: RSS on a shared test machine is dominated by allocator and runtime
/// noise, while structure accounting preserves the paper's *relative*
/// ordering (base < "+" variants < graph database).
namespace mem {

template <typename T>
size_t OfVector(const std::vector<T>& v) {
  return sizeof(v) + v.capacity() * sizeof(T);
}

template <typename K, typename V, typename H, typename E>
size_t OfHashMap(const std::unordered_map<K, V, H, E>& m) {
  // Node-based map: per element one node (key+value+next pointer) plus the
  // bucket array.
  return sizeof(m) + m.size() * (sizeof(K) + sizeof(V) + 2 * sizeof(void*)) +
         m.bucket_count() * sizeof(void*);
}

inline size_t OfString(const std::string& s) { return sizeof(s) + s.capacity(); }

}  // namespace mem

/// Aggregates per-component byte counts so engines can answer
/// `MemoryBytes()` with a breakdown.
class MemTracker {
 public:
  void Add(const std::string& component, size_t bytes);
  void Clear();

  size_t TotalBytes() const;
  const std::unordered_map<std::string, size_t>& breakdown() const {
    return breakdown_;
  }

 private:
  std::unordered_map<std::string, size_t> breakdown_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_MEM_TRACKER_H_
