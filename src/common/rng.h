#ifndef GSTREAM_COMMON_RNG_H_
#define GSTREAM_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace gstream {

/// Deterministic random source used by all workload generators.
///
/// Every experiment in the paper is an average over repeated runs on a fixed
/// dataset; determinism (one seed -> one stream) is what makes our
/// cross-engine property tests and bench series reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n).
  uint64_t Next(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  bool Flip(double p) { return NextDouble() < p; }

  /// Raw engine access (for std:: distributions).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `s`.
///
/// Social-network activity (posts per forum, likes per post, friends per
/// person) is heavily skewed; SNB models this with power laws. We precompute
/// the CDF once and sample by binary search, so sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws one value in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_RNG_H_
