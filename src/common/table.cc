#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace gstream {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  GS_CHECK_MSG(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  for (size_t c = 0; c < header_.size(); ++c) rule.push_back(std::string(width[c], '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) out << (c == 0 ? "" : ",") << row[c];
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::Num(double v, int digits) {
  if (std::isnan(v)) return "*";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace gstream
