#ifndef GSTREAM_COMMON_TABLE_H_
#define GSTREAM_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace gstream {

/// Fixed-width text table used by the bench binaries to print paper-style
/// result series (one row per x-axis point, one column per algorithm).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders as comma-separated values (easy plotting).
  std::string ToCsv() const;

  /// Formats a double with `digits` decimals; NaN renders as the paper's
  /// timeout marker "*".
  static std::string Num(double v, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_TABLE_H_
