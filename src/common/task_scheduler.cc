#include "common/task_scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {

namespace {

/// Nodes per arena block: big enough that a typical window (a few dozen
/// shard-group tasks) never allocates twice, small enough to stay cheap for
/// engines that rarely batch.
constexpr size_t kArenaBlockSize = 64;

/// xorshift64* step; good-enough victim randomization without a heavyweight
/// RNG in the steal path.
inline uint64_t NextSeed(uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dull;
}

/// The executing task's scheduler + executor index, for Spawn. A pair so a
/// task of scheduler A can never spawn into an unrelated scheduler B that
/// happens to run on the same thread later.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local int tls_executor = -1;

}  // namespace

namespace internal {

WorkStealingDeque::WorkStealingDeque(size_t capacity) {
  // Power-of-two capacity for the mask; 8 is a floor, not a target.
  size_t cap = 8;
  while (cap < capacity) cap <<= 1;
  retired_.push_back(std::make_unique<Buffer>(cap));
  buffer_.store(retired_.back().get(), std::memory_order_relaxed);
}

void WorkStealingDeque::PushBottom(TaskNode* node) {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<int64_t>(buf->capacity)) buf = Grow(buf, t, b);
  buf->Put(b, node);
  // seq_cst publish: a thief that observes bottom > i also observes slot i.
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

TaskNode* WorkStealingDeque::PopBottom() {
  const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  // Publish the claim on slot b before reading top (Dekker handshake with
  // StealTop's CAS; both sides seq_cst).
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty: restore the canonical bottom == top state.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  TaskNode* node = buffer_.load(std::memory_order_acquire)->Get(b);
  if (t != b) return node;  // More than one element: no race possible.
  // Last element: win or lose it against concurrent thieves via the CAS.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst))
    node = nullptr;  // A thief took it.
  bottom_.store(b + 1, std::memory_order_relaxed);
  return node;
}

TaskNode* WorkStealingDeque::StealTop() {
  int64_t t = top_.load(std::memory_order_seq_cst);
  const int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  TaskNode* node = buffer_.load(std::memory_order_acquire)->Get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst))
    return nullptr;  // Lost the race; caller picks another victim.
  return node;
}

size_t WorkStealingDeque::ApproxSize() const {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<size_t>(b - t) : 0;
}

WorkStealingDeque::Buffer* WorkStealingDeque::Grow(Buffer* old, int64_t top,
                                                   int64_t bottom) {
  auto grown = std::make_unique<Buffer>(old->capacity * 2);
  for (int64_t i = top; i < bottom; ++i) grown->Put(i, old->Get(i));
  Buffer* raw = grown.get();
  retired_.push_back(std::move(grown));
  // Old buffers stay alive in retired_: a slow thief may still read a slot
  // through the stale pointer; the live range is identical and the CAS on
  // top_ arbitrates.
  buffer_.store(raw, std::memory_order_release);
  return raw;
}

}  // namespace internal

internal::TaskNode* TaskScheduler::Executor::AllocNode() {
  if (blocks.empty() || block_used == kArenaBlockSize) {
    blocks.push_back(std::make_unique<internal::TaskNode[]>(kArenaBlockSize));
    block_used = 0;
  }
  return &blocks.back()[block_used++];
}

TaskScheduler::TaskScheduler(int threads) {
  const int executors = std::max(threads, 1);
  executors_.reserve(static_cast<size_t>(executors));
  for (int i = 0; i < executors; ++i) {
    executors_.push_back(std::make_unique<Executor>());
    executors_.back()->steal_seed =
        0x9e3779b97f4a7c15ull * static_cast<uint64_t>(i + 1) + 1;
  }
  workers_.reserve(static_cast<size_t>(executors - 1));
  for (int i = 1; i < executors; ++i)
    workers_.emplace_back([this, i] { WorkerLoop(i); });
}

TaskScheduler::~TaskScheduler() { Shutdown(); }

bool TaskScheduler::Submit(std::function<void()> fn) {
  if (stop_.load(std::memory_order_acquire)) {
    GS_LOG(Error) << "TaskScheduler::Submit after Shutdown: task rejected "
                     "(the scheduler's workers are gone; see the lifecycle "
                     "contract in task_scheduler.h)";
    return false;
  }
  Executor& ex = *executors_[0];
  internal::TaskNode* node = ex.AllocNode();
  node->fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  unclaimed_.fetch_add(1, std::memory_order_seq_cst);
  ex.deque.PushBottom(node);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  const uint64_t depth = ex.deque.ApproxSize();
  uint64_t cur = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > cur && !max_queue_depth_.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }

  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    work_cv_.notify_one();
  }
  return true;
}

bool TaskScheduler::Spawn(std::function<void()> fn) {
  if (tls_scheduler != this || tls_executor < 0) {
    GS_LOG(Error) << "TaskScheduler::Spawn outside a running task: rejected";
    return false;
  }
  if (stop_.load(std::memory_order_acquire)) return false;
  Executor& ex = *executors_[tls_executor];
  internal::TaskNode* node = ex.AllocNode();
  node->fn = std::move(fn);
  pending_.fetch_add(1, std::memory_order_relaxed);
  unclaimed_.fetch_add(1, std::memory_order_seq_cst);
  ex.deque.PushBottom(node);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // A spawned task may need to wake a parked worker — or the coordinator,
  // which parks in Wait() when everything it can see is already claimed.
  if (sleepers_.load(std::memory_order_relaxed) > 0 ||
      coordinator_waiting_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mu_);
    work_cv_.notify_one();
    idle_cv_.notify_all();
  }
  return true;
}

void TaskScheduler::Wait() {
  Executor& ex = *executors_[0];
  while (true) {
    internal::TaskNode* node = ex.deque.PopBottom();
    if (node == nullptr) node = TrySteal(0);
    if (node != nullptr) {
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      RunTask(node, 0);
      continue;
    }
    if (pending_.load(std::memory_order_acquire) == 0) break;
    std::unique_lock<std::mutex> lock(mu_);
    coordinator_waiting_ = true;
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             unclaimed_.load(std::memory_order_acquire) > 0;
    });
    coordinator_waiting_ = false;
  }
  ResetArenas();
}

void TaskScheduler::Shutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true,
                                     std::memory_order_acq_rel)) {
    return;  // Idempotent.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

internal::TaskNode* TaskScheduler::TrySteal(int self) {
  const size_t n = executors_.size();
  if (n <= 1) return nullptr;
  uint64_t& seed = executors_[self]->steal_seed;
  // Two randomized sweeps over the other executors before giving up; a
  // failed CAS (lost race) just moves on to the next victim.
  for (size_t attempt = 0; attempt < 2 * n; ++attempt) {
    const size_t victim = NextSeed(seed) % n;
    if (victim == static_cast<size_t>(self)) continue;
    internal::TaskNode* node = executors_[victim]->deque.StealTop();
    if (node != nullptr) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return node;
    }
  }
  return nullptr;
}

void TaskScheduler::RunTask(internal::TaskNode* node, int self) {
  TaskScheduler* prev_sched = tls_scheduler;
  const int prev_exec = tls_executor;
  tls_scheduler = this;
  tls_executor = self;
  node->fn();
  node->fn = std::function<void()>();  // Drop captures at task exit.
  tls_scheduler = prev_sched;
  tls_executor = prev_exec;
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: wake the coordinator. Lock-then-notify pairs with Wait's
    // predicate check under the same mutex, so the wakeup cannot be missed.
    std::lock_guard<std::mutex> lock(mu_);
    idle_cv_.notify_all();
  }
}

void TaskScheduler::WorkerLoop(int self) {
  Executor& ex = *executors_[self];
  while (true) {
    internal::TaskNode* node = ex.deque.PopBottom();
    if (node == nullptr) node = TrySteal(self);
    if (node != nullptr) {
      unclaimed_.fetch_sub(1, std::memory_order_relaxed);
      RunTask(node, self);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    if (unclaimed_.load(std::memory_order_acquire) > 0) continue;  // Recheck.
    ++sleepers_;
    work_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             unclaimed_.load(std::memory_order_acquire) > 0;
    });
    --sleepers_;
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void TaskScheduler::ResetArenas() {
  // Barrier-only: every task finished, every deque is empty, and workers
  // touch arenas only from inside a running task — so the coordinator may
  // reset all of them. Keeps one block per executor to stay allocation-free
  // across steady-state windows.
  for (auto& ex : executors_) {
    if (ex->blocks.size() > 1) ex->blocks.resize(1);
    ex->block_used = 0;
  }
}

}  // namespace gstream
