#ifndef GSTREAM_COMMON_TASK_SCHEDULER_H_
#define GSTREAM_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gstream {

namespace internal {

/// One slot of work. Nodes live in per-executor arenas owned by the
/// scheduler; deque slots carry raw pointers (trivially copyable, so the
/// lock-free buffer never copies a non-trivial type concurrently).
struct TaskNode {
  std::function<void()> fn;
};

/// Chase-Lev-style work-stealing deque over `TaskNode*` slots.
///
/// The owner thread pushes and pops at the bottom (LIFO); any other thread
/// steals from the top (FIFO), arbitrated by a CAS on `top_`. The buffer
/// grows by doubling; retired buffers stay alive until destruction because a
/// slow thief may still read a slot through a stale buffer pointer (the CAS
/// on `top_` decides whether that read wins, and the copied live range is
/// identical across buffers).
///
/// Memory ordering is deliberately conservative: `top_`/`bottom_` use
/// seq_cst for the Dekker-style owner/thief handshake and the slots are
/// atomics, so every cross-thread access is on an atomic object — the
/// implementation is TSan-clean by construction, not by fence modeling
/// (TSan historically does not model standalone fences). At the scheduler's
/// task grain (shard groups, microseconds each) the seq_cst cost is noise.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(size_t capacity = 256);

  /// Owner only. Grows the buffer when full.
  void PushBottom(TaskNode* node);

  /// Owner only. Returns nullptr when empty (or when a thief won the race
  /// for the last element).
  TaskNode* PopBottom();

  /// Any thread. Returns nullptr when empty or when the CAS lost a race
  /// (callers treat both as "try elsewhere").
  TaskNode* StealTop();

  /// Approximate size (owner or external observer; racy but monotone enough
  /// for queue-depth stats).
  size_t ApproxSize() const;

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(new std::atomic<TaskNode*>[cap]) {}
    size_t capacity;
    size_t mask;
    std::unique_ptr<std::atomic<TaskNode*>[]> slots;

    TaskNode* Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void Put(int64_t i, TaskNode* n) {
      slots[static_cast<size_t>(i) & mask].store(n, std::memory_order_relaxed);
    }
  };

  Buffer* Grow(Buffer* old, int64_t top, int64_t bottom);

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  ///< Owner only.
};

}  // namespace internal

/// Work-stealing batch scheduler for the engines' sharded window execution
/// (`ViewEngineBase::ApplyBatch`) and the pool-parallel signature encode
/// (`EnsureFinalizeGroups`). Replaces the PR 2 fixed `ThreadPool` whose
/// one-task-per-executor striping starved under shard skew.
///
/// Topology: `threads` executors — executor 0 is the *coordinator* (the
/// calling thread, which executes work inside `Wait()`), executors 1..P-1
/// are worker threads. Every executor owns a Chase-Lev deque; idle
/// executors steal from victims in randomized order, so a burst of uneven
/// tasks balances itself: while one executor grinds a hot task, the others
/// drain everything else one steal at a time.
///
/// ## Lifecycle (the contract the old ThreadPool left implicit)
///
///   construct -> { Submit* ; Wait }* -> Shutdown (or destructor)
///
///  * `Submit` and `Wait` are coordinator-only entry points: the scheduler
///    is owned by one engine and driven from one coordinator thread at a
///    time. Only the submitted tasks run concurrently.
///  * `Submit` after `Shutdown` (or during it) is REJECTED: it logs an
///    error, returns false, and the task never runs. The old pool silently
///    enqueued into a dead queue — a leak that looked like a hang.
///  * `Wait` returns once every submitted (and spawned) task has finished;
///    it must be called before destroying state captured by the tasks.
///    After `Wait` returns, all task arenas are reset — no captures
///    outlive the window barrier.
///  * `Shutdown` joins the workers and is idempotent; the destructor calls
///    it. Tasks still queued at shutdown are never executed (`Wait` first
///    if that matters — the engines always do).
///
/// ## Task rules
///
/// Tasks must not throw (the engines' update paths are exception-free by
/// construction). A *running* task may `Spawn` subtasks — they are pushed
/// to the executing thread's own deque (owner push, Chase-Lev-legal) and
/// are stolen by idle executors; `Wait` covers them. Tasks must not call
/// `Submit`/`Wait`/`Shutdown`.
class TaskScheduler {
 public:
  /// `threads` executors total: `threads - 1` workers plus the coordinator.
  /// `threads <= 1` creates no workers — Submit+Wait degenerate to inline
  /// sequential execution on the calling thread (and steals() stays 0).
  explicit TaskScheduler(int threads);

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  ~TaskScheduler();

  /// Total executors (workers + the waiting coordinator).
  int size() const { return static_cast<int>(executors_.size()); }

  /// Enqueues one task onto the coordinator's deque (coordinator only).
  /// Returns false — and drops the task, loudly — after Shutdown.
  bool Submit(std::function<void()> fn);

  /// Enqueues a subtask from *inside* a running task, onto the executing
  /// thread's own deque. Only valid on a thread currently running one of
  /// this scheduler's tasks; returns false otherwise (and from a dead
  /// scheduler, mirroring Submit).
  bool Spawn(std::function<void()> fn);

  /// Coordinator only: executes queued tasks (own deque first, then
  /// randomized steals) until every task — submitted or spawned — has
  /// finished, then resets the task arenas.
  void Wait();

  /// Joins the workers; idempotent. Further Submits are rejected.
  void Shutdown();

  /// True once Shutdown began (Submit will reject).
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  // ----- observability (relaxed counters; exact after Wait returns) -----

  /// Tasks acquired via a cross-executor steal.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Tasks executed to completion.
  uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// Tasks accepted by Submit + Spawn.
  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }

  /// High-water mark of the coordinator deque's depth at Submit time (the
  /// micro_sched calibration bench reads this).
  uint64_t max_queue_depth() const {
    return max_queue_depth_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-executor state: the deque plus a block arena for task nodes. The
  /// arena is owner-mutated only (Submit/Spawn allocate on the pushing
  /// thread) and reset wholesale at the Wait barrier, when no task is in
  /// flight.
  struct Executor {
    internal::WorkStealingDeque deque;
    std::vector<std::unique_ptr<internal::TaskNode[]>> blocks;
    size_t block_used = 0;  ///< Slots used in blocks.back().
    uint64_t steal_seed;    ///< Per-executor xorshift state.

    internal::TaskNode* AllocNode();
  };

  void WorkerLoop(int self);
  /// Randomized victim sweep; nullptr when nothing was stealable.
  internal::TaskNode* TrySteal(int self);
  void RunTask(internal::TaskNode* node, int self);
  void ResetArenas();

  std::vector<std::unique_ptr<Executor>> executors_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers sleep here when starved.
  std::condition_variable idle_cv_;  ///< The coordinator sleeps here in Wait.
  /// Workers parked on work_cv_. Written under mu_; read lock-free on the
  /// submit fast path (atomic so the racy read is defined — a stale value is
  /// fine either way: the sleeper's predicate re-check under mu_ sees the
  /// already-incremented unclaimed_ count, so a missed wake cannot strand a
  /// task, and a spurious lock+notify is merely slow).
  std::atomic<int> sleepers_{0};
  /// Coordinator parked on idle_cv_ in Wait. Same discipline as sleepers_.
  std::atomic<bool> coordinator_waiting_{false};

  std::atomic<bool> stop_{false};
  std::atomic<int64_t> pending_{0};    ///< Accepted, not yet finished.
  std::atomic<int64_t> unclaimed_{0};  ///< Accepted, not yet popped/stolen.

  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_TASK_SCHEDULER_H_
