#ifndef GSTREAM_COMMON_THREAD_POOL_H_
#define GSTREAM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gstream {

/// Small fixed thread pool for the engines' sharded batch execution
/// (`ContinuousEngine::ApplyBatch`): `threads - 1` workers plus the calling
/// thread, which drains the same queue inside `Wait()`. The pool is owned by
/// one engine and driven from one coordinator thread at a time — `Submit` and
/// `Wait` are not themselves concurrent entry points; only the submitted
/// tasks run in parallel.
///
/// Tasks must not throw (the engines' update paths are exception-free by
/// construction) and must not Submit further tasks.
class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    const int workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
      workers_.emplace_back([this] { WorkerLoop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total threads that execute tasks (workers + the waiting caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues one task. Call `Wait()` before destroying captured state.
  void Submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
    }
    work_cv_.notify_one();
  }

  /// Runs queued tasks on the calling thread until the queue is empty and
  /// every in-flight task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!queue_.empty()) {
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        task();
        lock.lock();
        --active_;
        continue;
      }
      if (active_ == 0) return;
      idle_cv_.wait(lock, [this] { return !queue_.empty() || active_ == 0; });
    }
  }

 private:
  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      lock.unlock();
      task();
      lock.lock();
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals queued work / shutdown.
  std::condition_variable idle_cv_;  ///< Signals the waiting coordinator.
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_THREAD_POOL_H_
