#ifndef GSTREAM_COMMON_TIMER_H_
#define GSTREAM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gstream {

/// Wall-clock stopwatch. The paper reports wall-clock answering time per
/// update (§6.1 "The time shown in the graphs is wall-clock time").
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gstream

#endif  // GSTREAM_COMMON_TIMER_H_
