#ifndef GSTREAM_ENGINE_BUDGET_H_
#define GSTREAM_ENGINE_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace gstream {

/// Cooperative wall-clock budget for one experiment cell. The paper ran each
/// configuration with a 24-hour ceiling and marks cells that crossed it with
/// an asterisk (Figs. 12(f)–14); our driver does the same at laptop scale.
/// Engines poll `Exceeded()` inside expensive loops; the clock is sampled
/// only every `kStride` polls to keep the check out of the profile.
class Budget {
 public:
  Budget() = default;

  void SetDeadlineAfter(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    tripped_ = false;
    polls_ = 0;
  }

  void ClearDeadline() {
    deadline_ = Clock::time_point::max();
    tripped_ = false;
  }

  /// True once the deadline passed. Sticky until the next SetDeadlineAfter.
  bool Exceeded() {
    if (tripped_) return true;
    if (++polls_ % kStride != 0) return false;
    if (Clock::now() >= deadline_) tripped_ = true;
    return tripped_;
  }

  /// Non-sampling variant for cold paths.
  bool ExceededNow() {
    if (!tripped_ && Clock::now() >= deadline_) tripped_ = true;
    return tripped_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr uint64_t kStride = 512;

  Clock::time_point deadline_ = Clock::time_point::max();
  uint64_t polls_ = 0;
  bool tripped_ = false;
};

}  // namespace gstream

#endif  // GSTREAM_ENGINE_BUDGET_H_
