#include "engine/driver.h"

#include <cmath>

#include "common/timer.h"

namespace gstream {

IndexStats IndexQueries(ContinuousEngine& engine,
                        const std::vector<QueryPattern>& queries, QueryId first_qid) {
  IndexStats stats;
  WallTimer timer;
  QueryId qid = first_qid;
  for (const auto& q : queries) engine.AddQuery(qid++, q);
  stats.index_millis = timer.ElapsedMillis();
  stats.queries_indexed = queries.size();
  return stats;
}

RunStats RunStream(ContinuousEngine& engine, const UpdateStream& stream,
                   const RunConfig& config) {
  RunStats stats;
  Budget budget;
  if (std::isfinite(config.budget_seconds))
    budget.SetDeadlineAfter(config.budget_seconds);
  engine.set_budget(&budget);

  std::unordered_set<QueryId> satisfied;
  WallTimer total;
  for (const auto& u : stream.updates()) {
    UpdateResult result = engine.ApplyUpdate(u);
    ++stats.updates_applied;
    stats.new_embeddings += result.new_embeddings;
    for (QueryId qid : result.triggered) satisfied.insert(qid);
    if (result.timed_out || budget.ExceededNow()) {
      stats.timed_out = true;
      break;
    }
  }
  stats.answer_millis = total.ElapsedMillis();
  stats.queries_satisfied = satisfied.size();
  stats.memory_bytes = engine.MemoryBytes();
  engine.set_budget(nullptr);
  return stats;
}

}  // namespace gstream
