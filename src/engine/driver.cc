#include "engine/driver.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"

namespace gstream {

IndexStats IndexQueries(ContinuousEngine& engine,
                        const std::vector<QueryPattern>& queries, QueryId first_qid) {
  IndexStats stats;
  WallTimer timer;
  QueryId qid = first_qid;
  for (const auto& q : queries) engine.AddQuery(qid++, q);
  stats.index_millis = timer.ElapsedMillis();
  stats.queries_indexed = queries.size();
  return stats;
}

RunStats RunStream(ContinuousEngine& engine, const UpdateStream& stream,
                   const RunConfig& config, ResultAccumulator::Sink sink) {
  GS_CHECK_MSG(config.batch_window >= 1, "batch_window must be >= 1");
  GS_CHECK_MSG(config.batch_threads >= 1, "batch_threads must be >= 1");
  Budget budget;
  if (std::isfinite(config.budget_seconds))
    budget.SetDeadlineAfter(config.budget_seconds);
  engine.set_budget(&budget);

  ResultAccumulator acc;
  acc.sink = std::move(sink);
  RunStats& stats = acc.stats;

  WallTimer total;
  const size_t window = config.batch_window > 1 ? config.batch_window : 1;
  if (window == 1) {
    for (const auto& u : stream.updates()) {
      if (acc.Absorb(engine.ApplyUpdate(u)) || budget.ExceededNow()) {
        stats.timed_out = true;
        break;
      }
    }
  } else {
    engine.SetBatchThreads(config.batch_threads);
    const std::vector<EdgeUpdate>& updates = stream.updates();
    for (size_t pos = 0; pos < updates.size() && !stats.timed_out;) {
      const size_t n = std::min(window, updates.size() - pos);
      std::vector<UpdateResult> results = engine.ApplyBatch(&updates[pos], n);
      for (const UpdateResult& r : results)
        if (acc.Absorb(r)) stats.timed_out = true;
      // A short window means the engine dropped the suffix on timeout.
      if (results.size() < n || budget.ExceededNow()) stats.timed_out = true;
      pos += n;
    }
    engine.SetBatchThreads(1);
  }
  stats.answer_millis = total.ElapsedMillis();
  acc.Finish(engine);
  engine.set_budget(nullptr);
  return stats;
}

MixedRunStats RunMixedStream(ContinuousEngine& engine,
                             const std::vector<StreamEvent>& events,
                             const RunConfig& config) {
  GS_CHECK_MSG(config.batch_window >= 1, "batch_window must be >= 1");
  GS_CHECK_MSG(config.batch_threads >= 1, "batch_threads must be >= 1");
  MixedRunStats stats;
  Budget budget;
  if (std::isfinite(config.budget_seconds))
    budget.SetDeadlineAfter(config.budget_seconds);
  engine.set_budget(&budget);
  const size_t window = config.batch_window > 1 ? config.batch_window : 1;
  if (window > 1) engine.SetBatchThreads(config.batch_threads);

  std::unordered_set<QueryId> satisfied;
  const auto absorb = [&](const UpdateResult& result) {
    ++stats.updates_applied;
    stats.new_embeddings += result.new_embeddings;
    for (QueryId qid : result.triggered) satisfied.insert(qid);
    return result.timed_out;
  };

  size_t i = 0;
  while (i < events.size() && !stats.timed_out) {
    const StreamEvent& ev = events[i];
    if (ev.kind == StreamEvent::Kind::kUpdate) {
      // One run of consecutive updates, fed in batch windows.
      size_t j = i;
      while (j < events.size() && events[j].kind == StreamEvent::Kind::kUpdate) ++j;
      WallTimer timer;
      if (window == 1) {
        for (; i < j && !stats.timed_out; ++i) {
          if (absorb(engine.ApplyUpdate(events[i].update)) || budget.ExceededNow())
            stats.timed_out = true;
        }
      } else {
        std::vector<EdgeUpdate> batch;
        batch.reserve(std::min(window, j - i));
        while (i < j && !stats.timed_out) {
          batch.clear();
          for (; i < j && batch.size() < window; ++i) batch.push_back(events[i].update);
          std::vector<UpdateResult> results =
              engine.ApplyBatch(batch.data(), batch.size());
          for (const UpdateResult& r : results)
            if (absorb(r)) stats.timed_out = true;
          if (results.size() < batch.size() || budget.ExceededNow())
            stats.timed_out = true;
        }
      }
      stats.answer_millis += timer.ElapsedMillis();
      continue;
    }

    if (ev.kind == StreamEvent::Kind::kAddQuery) {
      WallTimer timer;
      engine.AddQuery(ev.qid, ev.query);
      stats.index_millis += timer.ElapsedMillis();
      ++stats.queries_added;
    } else {
      WallTimer timer;
      GS_CHECK_MSG(engine.RemoveQuery(ev.qid),
                   "RunMixedStream: removing unknown query id " +
                       std::to_string(ev.qid));
      stats.remove_millis += timer.ElapsedMillis();
      ++stats.queries_removed;
    }
    ++i;
    if (budget.ExceededNow()) stats.timed_out = true;
  }

  if (window > 1) engine.SetBatchThreads(1);
  stats.queries_satisfied = satisfied.size();
  stats.memory_bytes = engine.MemoryBytes();
  engine.set_budget(nullptr);
  return stats;
}

}  // namespace gstream
