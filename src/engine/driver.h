#ifndef GSTREAM_ENGINE_DRIVER_H_
#define GSTREAM_ENGINE_DRIVER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "engine/engine.h"
#include "graph/stream.h"

namespace gstream {

/// One experiment cell's configuration: how long the engine may run before
/// the cell is declared timed out (the paper's 24-hour ceiling, scaled), and
/// how updates are fed to the engine.
struct RunConfig {
  double budget_seconds = std::numeric_limits<double>::infinity();

  /// Updates per `ApplyBatch` window; 1 = classic per-update `ApplyUpdate`,
  /// > 1 = the window-delta batch pipeline. RunStream rejects 0.
  size_t batch_window = 1;

  /// Worker threads for the engines' sharded batch execution (only
  /// meaningful with batch_window > 1). RunStream rejects < 1.
  int batch_threads = 1;
};

/// Aggregate result of streaming one update sequence through one engine —
/// the quantities the paper plots.
struct RunStats {
  size_t updates_applied = 0;
  double answer_millis = 0.0;       ///< Total answering time (wall clock).
  uint64_t new_embeddings = 0;      ///< Total new embeddings reported.
  size_t queries_satisfied = 0;     ///< Distinct queries triggered at least once.
  bool timed_out = false;
  size_t memory_bytes = 0;          ///< Engine memory after the run.

  /// The paper's y-axis: average answering time per update, in msec.
  double MsecPerUpdate() const {
    return updates_applied == 0 ? 0.0 : answer_millis / updates_applied;
  }
};

/// Statistics of the query indexing phase (Fig. 13(b)).
struct IndexStats {
  size_t queries_indexed = 0;
  double index_millis = 0.0;

  double MsecPerQuery() const {
    return queries_indexed == 0 ? 0.0 : index_millis / queries_indexed;
  }
};

/// Incremental absorber of per-update results with the RunStats bookkeeping,
/// shared by RunStream, the file-replay ingest pipeline
/// (src/ingest/pipeline.h), and the socket server (src/server/) so the
/// paths cannot diverge on what "updates_applied" or "queries_satisfied"
/// mean.
struct ResultAccumulator {
  /// Notification sink: fires once per absorbed result with the update's
  /// global index among applied updates (0-based; the value of
  /// `stats.updates_applied` before this result). The socket server fans
  /// match notifications out from here, and the oracle tests capture the
  /// exact emission sequence of a RunStream run through the same hook.
  using Sink = std::function<void(uint64_t index, const UpdateResult& result)>;
  Sink sink;

  RunStats stats;
  std::unordered_set<QueryId> satisfied;

  /// Folds one update's result in; returns its timed_out flag.
  bool Absorb(const UpdateResult& result) {
    const uint64_t index = stats.updates_applied;
    ++stats.updates_applied;
    stats.new_embeddings += result.new_embeddings;
    for (QueryId qid : result.triggered) satisfied.insert(qid);
    if (sink) sink(index, result);
    return result.timed_out;
  }

  /// Final bookkeeping: distinct satisfied queries + engine memory.
  void Finish(ContinuousEngine& engine) {
    stats.queries_satisfied = satisfied.size();
    stats.memory_bytes = engine.MemoryBytes();
  }
};

/// Registers `queries` into `engine` with ids `first_qid..`, timing the
/// indexing phase.
IndexStats IndexQueries(ContinuousEngine& engine,
                        const std::vector<QueryPattern>& queries,
                        QueryId first_qid = 0);

/// Streams `stream` through `engine` under `config`, timing every update.
/// Stops early (marking `timed_out`) when the budget expires. `sink`, when
/// set, observes every per-update result in stream order (the accumulator's
/// notification hook) — the server tests capture the oracle emission
/// sequence through it.
RunStats RunStream(ContinuousEngine& engine, const UpdateStream& stream,
                   const RunConfig& config = {},
                   ResultAccumulator::Sink sink = nullptr);

/// One event of a mixed stream (the paper's dynamic query database, §3.2):
/// an edge update, a continuous-query registration, or a removal, arriving
/// in one ordered sequence while the stream runs.
struct StreamEvent {
  enum class Kind : uint8_t { kUpdate, kAddQuery, kRemoveQuery };

  Kind kind = Kind::kUpdate;
  EdgeUpdate update{};   ///< kUpdate only.
  QueryId qid = 0;       ///< kAddQuery / kRemoveQuery.
  QueryPattern query{};  ///< kAddQuery only.

  /// kAddQuery only: query lifetime in event-time units (0 = immortal).
  /// Plain RunMixedStream ignores it; the temporal runner
  /// (src/time/windowed_stream.h) auto-removes the query once the stream
  /// watermark passes registration + ttl.
  uint64_t query_ttl = 0;

  static StreamEvent Update(const EdgeUpdate& u) {
    StreamEvent e;
    e.kind = Kind::kUpdate;
    e.update = u;
    return e;
  }
  static StreamEvent Add(QueryId qid, QueryPattern q, uint64_t ttl = 0) {
    StreamEvent e;
    e.kind = Kind::kAddQuery;
    e.qid = qid;
    e.query = std::move(q);
    e.query_ttl = ttl;
    return e;
  }
  static StreamEvent Remove(QueryId qid) {
    StreamEvent e;
    e.kind = Kind::kRemoveQuery;
    e.qid = qid;
    return e;
  }
};

/// Aggregate result of a mixed update/query-event run, with the three cost
/// phases separated: indexing (AddQuery), removal GC (RemoveQuery), and
/// answering (edge updates).
struct MixedRunStats {
  size_t updates_applied = 0;
  size_t queries_added = 0;
  size_t queries_removed = 0;
  double answer_millis = 0.0;   ///< Edge-update processing wall clock.
  double index_millis = 0.0;    ///< AddQuery wall clock.
  double remove_millis = 0.0;   ///< RemoveQuery wall clock.
  uint64_t new_embeddings = 0;
  size_t queries_satisfied = 0;  ///< Distinct queries triggered at least once.
  bool timed_out = false;
  size_t memory_bytes = 0;       ///< Engine memory after the run.

  double MsecPerUpdate() const {
    return updates_applied == 0 ? 0.0 : answer_millis / updates_applied;
  }
  double MsecPerAdd() const {
    return queries_added == 0 ? 0.0 : index_millis / queries_added;
  }
  double MsecPerRemove() const {
    return queries_removed == 0 ? 0.0 : remove_millis / queries_removed;
  }
};

/// Drives `events` through `engine` in order. Consecutive edge updates form
/// windows of up to `config.batch_window` fed through `ApplyBatch` (query
/// events are window barriers — the engine API forbids lifecycle calls with
/// a batch in flight); with the default window of 1 every update goes
/// through `ApplyUpdate`. Add/remove/answer time is accounted separately.
/// The budget covers the whole run; on expiry the remaining events are
/// dropped and `timed_out` is set. Removing an unknown qid is a checked
/// error (GS_CHECK) — event streams are validated input.
MixedRunStats RunMixedStream(ContinuousEngine& engine,
                             const std::vector<StreamEvent>& events,
                             const RunConfig& config = {});

}  // namespace gstream

#endif  // GSTREAM_ENGINE_DRIVER_H_
