#include "engine/engine.h"

#include "common/logging.h"

namespace gstream {

void ContinuousEngine::AddQuery(QueryId qid, const QueryPattern& q) {
  // The one checked entry point for every engine: the "qid must be fresh"
  // contract used to live in per-engine comments (and the oracle silently
  // dropped duplicates); now a violation dies here before any shared state
  // is touched.
  GS_CHECK_MSG(q.IsValid(), "AddQuery: invalid query pattern");
  GS_CHECK_MSG(!HasQuery(qid),
               "AddQuery: duplicate query id " + std::to_string(qid));
  AddQueryImpl(qid, q);
}

bool ContinuousEngine::RemoveQuery(QueryId qid) {
  if (!HasQuery(qid)) return false;
  RemoveQueryImpl(qid);
  return true;
}

std::vector<UpdateResult> ContinuousEngine::ApplyBatch(const EdgeUpdate* updates,
                                                       size_t n) {
  std::vector<UpdateResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    results.push_back(ApplyUpdate(updates[i]));
    if (results.back().timed_out) break;
  }
  return results;
}

}  // namespace gstream
