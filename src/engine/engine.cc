#include "engine/engine.h"

namespace gstream {

std::vector<UpdateResult> ContinuousEngine::ApplyBatch(const EdgeUpdate* updates,
                                                       size_t n) {
  std::vector<UpdateResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    results.push_back(ApplyUpdate(updates[i]));
    if (results.back().timed_out) break;
  }
  return results;
}

}  // namespace gstream
