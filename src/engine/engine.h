#ifndef GSTREAM_ENGINE_ENGINE_H_
#define GSTREAM_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "engine/budget.h"
#include "engine/match.h"
#include "graph/properties.h"
#include "graph/update.h"
#include "query/pattern.h"

namespace gstream {

/// A continuous multi-query processing engine (the paper's problem
/// definition, §3.2): hold a *dynamic* query database QDB — continuous
/// queries register and expire while the stream runs — consume a stream of
/// edge updates, and report per update which queries are satisfied.
///
/// Contract:
///  * Queries register (`AddQuery`) and deregister (`RemoveQuery`) before,
///    between, or after updates — never while one is in flight. An engine
///    does not backfill results for updates that preceded a query's
///    registration beyond whatever shared state it already materialized.
///  * Removing a query garbage-collects every structure only that query
///    pinned (trie suffix nodes, materialized views, cached join indexes,
///    inverted-index postings) while leaving state shared with surviving
///    queries — and their results — untouched. `MemoryBytes()` shrinks
///    accordingly.
///  * `ApplyUpdate` returns continuous-notification results (see
///    `UpdateResult`); duplicate edges are no-ops.
///  * Engines are single-threaded; one engine instance per stream.
class ContinuousEngine {
 public:
  virtual ~ContinuousEngine() = default;

  /// Engine identifier as used in the paper's plots ("TRIC", "INV+", ...).
  virtual std::string name() const = 0;

  /// Registers a continuous query. Preconditions are checked here, once,
  /// for every engine: `q` must be valid and `qid` must be fresh — a
  /// duplicate id or invalid pattern fails loudly (GS_CHECK) instead of
  /// silently corrupting shared views. Engines implement `AddQueryImpl`.
  void AddQuery(QueryId qid, const QueryPattern& q);

  /// Deregisters a continuous query and garbage-collects the state only it
  /// pinned. Returns false (and changes nothing) when `qid` is unknown.
  /// Must not be called while a batch window is in flight.
  bool RemoveQuery(QueryId qid);

  /// True when `qid` is currently registered.
  virtual bool HasQuery(QueryId qid) const = 0;

  /// Applies one streamed edge update and reports newly satisfied queries.
  virtual UpdateResult ApplyUpdate(const EdgeUpdate& u) = 0;

  /// Applies a window of `n` consecutive stream updates and returns exactly
  /// the per-update results sequential `ApplyUpdate` calls would produce, in
  /// stream order (same match sets, same notification order). The returned
  /// vector is shorter than `n` only when the time budget tripped mid-window;
  /// the unprocessed suffix was not applied.
  ///
  /// The base implementation is the sequential loop. The view-based engines
  /// override it with footprint-sharded execution: updates whose read/write
  /// sets are provably disjoint run concurrently on the engine's batch
  /// thread pool (see `SetBatchThreads`).
  virtual std::vector<UpdateResult> ApplyBatch(const EdgeUpdate* updates, size_t n);

  /// Worker-thread count for `ApplyBatch` shards; 1 (default) keeps batched
  /// execution on the calling thread. Engines without a batch override
  /// ignore it. Must not be called while a batch is in flight.
  virtual void SetBatchThreads(int threads) { (void)threads; }

  /// Number of registered queries.
  virtual size_t NumQueries() const = 0;

  /// Diagnostic counter: final-join passes executed so far (one pass =
  /// joining one covering-path view set to produce matches). Per-update
  /// execution runs one pass per (query, update); the window-delta batch
  /// pipeline runs one per (query, window); with shared finalization
  /// (SetSharedFinalize, the default for the view engines) one per
  /// (covering-path signature group, window) — N queries joining the same
  /// shared views collapse into a single pass. Tests and the bench harness
  /// read this to verify the batching/sharing actually happened. Engines
  /// without a final-join stage report 0.
  virtual uint64_t final_join_passes() const { return 0; }

  /// Diagnostic counter companion to final_join_passes: window-finalize
  /// passes whose result was fanned out to two or more queries (each such
  /// pass replaced ≥ 2 per-query passes). 0 when sharing is off, when no
  /// two live queries share a covering-path signature, or for engines
  /// without a final-join stage.
  virtual uint64_t shared_finalize_groups() const { return 0; }

  /// Toggles cross-query shared window finalization (on by default for the
  /// view engines). With sharing off every window finalize runs one pass
  /// per (query, window) — the PR 3 behavior; results are byte-identical
  /// either way (the agreement suite holds the two modes against each
  /// other). Must not be called while a batch is in flight.
  virtual void SetSharedFinalize(bool enabled) { (void)enabled; }

  /// Diagnostic counter: candidate work items the routing layer handed to
  /// evaluation. On the legacy (linear) path this counts per-query/per-path
  /// candidates — linear in tenant count; on the routed path (DESIGN.md §12)
  /// it counts signature groups / trie-node paths — tracking distinct query
  /// structure instead. The fig_scale bench divides this by updates applied
  /// to show sublinear routing. Engines without a routing layer report 0.
  virtual uint64_t routed_candidates() const { return 0; }

  /// Diagnostic counter companion: streamed updates rejected by the O(words)
  /// routing prefilter before touching any posting list or base view.
  virtual uint64_t prefilter_rejects() const { return 0; }

  /// Diagnostic counter: tasks handed to the work-stealing batch scheduler
  /// by sharded window execution (grain-packed shard groups; see
  /// ViewEngineBase). 0 for single-threaded execution or engines without a
  /// batch override. The scheduler benches divide by windows to show the
  /// dispatch granularity.
  virtual uint64_t batch_tasks() const { return 0; }

  /// Diagnostic counter companion: how many of those tasks an idle executor
  /// acquired by stealing from another executor's deque. Nonzero steals on a
  /// skewed window are the signature of load balancing actually happening;
  /// the micro_sched skew sweep asserts on it.
  virtual uint64_t batch_steals() const { return 0; }

  /// Diagnostic counter: batch windows whose footprint/union-find shard
  /// partition was served from the generalization-profile memo instead of
  /// recomputed (see ViewEngineBase::RunInsertWindowImpl).
  virtual uint64_t footprint_cache_hits() const { return 0; }

  /// Toggles the sublinear query routing index (on by default for the view
  /// engines). With routing off the per-update dispatch takes the legacy
  /// linear path — full posting-probe fan-out plus per-query finalize
  /// candidacy; results are byte-identical either way (the routing oracle
  /// suite holds the modes against each other). Must not be called while a
  /// batch is in flight.
  virtual void SetRouteIndex(bool enabled) { (void)enabled; }

  /// Approximate bytes of all retained structures, including the peak
  /// transient join scratch observed so far (Fig. 13(c) accounting).
  virtual size_t MemoryBytes() const = 0;

  /// Order-insensitive digest of the engine's durable state: the applied
  /// edge set, the shared materialized views, and the query registry. The
  /// ingest snapshot/recovery protocol (src/ingest/snapshot.h) records it at
  /// every snapshot and re-checks it after a crash-recovery fast-forward,
  /// proving the recovered engine reconstructed the exact pre-crash state
  /// before replay resumes. Deterministic across processes and batch
  /// configurations. 0 = no fingerprint (engines without the hook); recovery
  /// then relies on the counter cross-checks alone.
  virtual uint64_t StateFingerprint() const { return 0; }

  /// Cooperative time budget; engines poll it inside expensive loops.
  void set_budget(Budget* budget) { budget_ = budget; }

  /// Shared read-only vertex property store for §4.3 property-graph
  /// constraints. Must be set before updates are applied when any
  /// registered query carries constraints; see PropertyStore's contract.
  void set_property_store(const PropertyStore* store) { properties_ = store; }

 protected:
  /// The unchecked registration/removal hooks behind the public checked
  /// entry points. Implementations may assume the preconditions hold:
  /// AddQueryImpl sees a valid pattern and a fresh id, RemoveQueryImpl a
  /// registered id.
  virtual void AddQueryImpl(QueryId qid, const QueryPattern& q) = 0;
  virtual void RemoveQueryImpl(QueryId qid) = 0;

  bool BudgetExceeded() { return budget_ != nullptr && budget_->Exceeded(); }

  /// Non-sampling variant for coarse boundaries (per query per window):
  /// `BudgetExceeded` samples the clock every ~512 polls, which lets a
  /// window finalize overshoot the deadline by hundreds of expensive query
  /// evaluations; boundaries that gate big work check the clock for real.
  bool BudgetExceededNow() { return budget_ != nullptr && budget_->ExceededNow(); }

  /// The §4.3 extra answering phase: checks a full assignment (indexed by
  /// query vertex) against the query's property constraints. Constraints on
  /// vertices without the property — or with no store attached — fail.
  bool SatisfiesConstraints(const QueryPattern& q, const VertexId* assignment) const {
    if (!q.HasConstraints()) return true;
    if (properties_ == nullptr) return false;
    for (const auto& c : q.constraints()) {
      std::optional<int64_t> value = properties_->Get(assignment[c.vertex], c.key);
      if (!value.has_value() || !QueryPattern::EvalCmp(c.op, *value, c.value))
        return false;
    }
    return true;
  }

  Budget* budget_ = nullptr;
  const PropertyStore* properties_ = nullptr;
};

/// The seven evaluated algorithms (paper §4–§5) plus the naive oracle used by
/// the test suite.
enum class EngineKind {
  kTric,
  kTricPlus,
  kInv,
  kInvPlus,
  kInc,
  kIncPlus,
  kGraphDb,  ///< Neo4j-substitute: full graph store + per-query re-execution.
  kNaive,    ///< Oracle: re-counts every query on every update.
};

/// Display name matching the paper's figures.
const char* EngineKindName(EngineKind kind);

/// Instantiates an engine.
std::unique_ptr<ContinuousEngine> CreateEngine(EngineKind kind);

/// The seven paper algorithms, in plot order (no oracle).
std::vector<EngineKind> PaperEngineKinds();

}  // namespace gstream

#endif  // GSTREAM_ENGINE_ENGINE_H_
