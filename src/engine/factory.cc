#include "engine/engine.h"

#include "baseline/inc_engine.h"
#include "baseline/inv_engine.h"
#include "common/logging.h"
#include "engine/naive_engine.h"
#include "graphdb/graphdb_engine.h"
#include "tric/tric_engine.h"

namespace gstream {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTric: return "TRIC";
    case EngineKind::kTricPlus: return "TRIC+";
    case EngineKind::kInv: return "INV";
    case EngineKind::kInvPlus: return "INV+";
    case EngineKind::kInc: return "INC";
    case EngineKind::kIncPlus: return "INC+";
    case EngineKind::kGraphDb: return "GraphDB";
    case EngineKind::kNaive: return "Naive";
  }
  return "?";
}

std::unique_ptr<ContinuousEngine> CreateEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kTric: return std::make_unique<tric::TricEngine>(false);
    case EngineKind::kTricPlus: return std::make_unique<tric::TricEngine>(true);
    case EngineKind::kInv: return std::make_unique<baseline::InvEngine>(false);
    case EngineKind::kInvPlus: return std::make_unique<baseline::InvEngine>(true);
    case EngineKind::kInc: return std::make_unique<baseline::IncEngine>(false);
    case EngineKind::kIncPlus: return std::make_unique<baseline::IncEngine>(true);
    case EngineKind::kGraphDb: return std::make_unique<graphdb::GraphDbEngine>();
    case EngineKind::kNaive: return std::make_unique<NaiveEngine>();
  }
  GS_CHECK(false);
  return nullptr;
}

std::vector<EngineKind> PaperEngineKinds() {
  return {EngineKind::kTric,    EngineKind::kTricPlus, EngineKind::kInv,
          EngineKind::kInvPlus, EngineKind::kInc,      EngineKind::kIncPlus,
          EngineKind::kGraphDb};
}

}  // namespace gstream
