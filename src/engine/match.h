#ifndef GSTREAM_ENGINE_MATCH_H_
#define GSTREAM_ENGINE_MATCH_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace gstream {

/// What one streamed update produced, in continuous-notification semantics:
/// the queries that gained at least one new embedding whose derivation uses
/// the update's edge, with per-query counts of new distinct embeddings
/// (an embedding = one homomorphic assignment of query vertices).
///
/// Because the stream is insert-only and base views are sets, "new embedding"
/// is well defined: an assignment is new iff it uses the inserted edge.
/// Every engine — TRIC's delta propagation, INV's recompute-and-diff, the
/// graph database's recount — reports the same `per_query` vector; the
/// cross-engine property suite enforces this.
struct UpdateResult {
  /// False when the update was a duplicate edge (no-op).
  bool changed = false;

  /// Query ids with >= 1 new embedding this update, ascending.
  std::vector<QueryId> triggered;

  /// (query id, #new distinct embeddings), ascending by query id; only
  /// non-zero entries.
  std::vector<std::pair<QueryId, uint64_t>> per_query;

  /// Sum over per_query.
  uint64_t new_embeddings = 0;

  /// Set when the engine aborted mid-update due to the time budget; results
  /// are partial and the engine's internal state must be discarded.
  bool timed_out = false;

  void AddQueryCount(QueryId qid, uint64_t count) {
    if (count == 0) return;
    triggered.push_back(qid);
    per_query.emplace_back(qid, count);
    new_embeddings += count;
  }

  /// Restores the ascending-qid invariant after out-of-order AddQueryCount
  /// calls: the routed window finalize emits per signature group, so counts
  /// for different queries interleave across groups. Each qid still appears
  /// at most once per result.
  void SortByQuery() {
    std::sort(per_query.begin(), per_query.end());
    triggered.clear();
    for (const auto& [qid, count] : per_query) triggered.push_back(qid);
  }
};

}  // namespace gstream

#endif  // GSTREAM_ENGINE_MATCH_H_
