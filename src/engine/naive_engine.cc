#include "engine/naive_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {

NaiveEngine::NaiveEngine() : executor_(&store_) {}

uint64_t NaiveEngine::CountQuery(const QueryEntry& entry) {
  if (!entry.pattern.HasConstraints())
    return executor_.CountMatches(entry.pattern, entry.plan);
  uint64_t count = 0;
  executor_.Enumerate(entry.pattern, entry.plan,
                      [&](const std::vector<VertexId>& assignment) {
                        if (SatisfiesConstraints(entry.pattern, assignment.data()))
                          ++count;
                        return true;
                      });
  return count;
}

void NaiveEngine::AddQueryImpl(QueryId qid, const QueryPattern& q) {
  QueryEntry entry;
  entry.pattern = q;
  entry.plan = graphdb::PlanQuery(q);
  if (store_.NumEdges() > 0) entry.last_count = CountQuery(entry);
  queries_.emplace(qid, std::move(entry));
}

UpdateResult NaiveEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    if (!store_.RemoveEdge(u.src, u.label, u.dst)) return result;  // absent
    result.changed = true;
    for (auto& [qid, entry] : queries_) entry.last_count = CountQuery(entry);
    return result;
  }
  if (!store_.AddEdge(u.src, u.label, u.dst)) return result;
  result.changed = true;

  std::vector<QueryId> qids;
  qids.reserve(queries_.size());
  for (const auto& [qid, entry] : queries_) qids.push_back(qid);
  std::sort(qids.begin(), qids.end());

  for (QueryId qid : qids) {
    auto& entry = queries_.at(qid);
    uint64_t count = CountQuery(entry);
    GS_DCHECK(count >= entry.last_count);
    result.AddQueryCount(qid, count - entry.last_count);
    entry.last_count = count;
  }
  return result;
}

size_t NaiveEngine::MemoryBytes() const {
  size_t bytes = sizeof(*this) + store_.MemoryBytes();
  for (const auto& [qid, entry] : queries_)
    bytes += sizeof(qid) + entry.pattern.MemoryBytes() + 2 * sizeof(void*);
  return bytes;
}

}  // namespace gstream
