#ifndef GSTREAM_ENGINE_NAIVE_ENGINE_H_
#define GSTREAM_ENGINE_NAIVE_ENGINE_H_

#include <unordered_map>

#include "engine/engine.h"
#include "graphdb/executor.h"
#include "graphdb/store.h"

namespace gstream {

/// Test oracle: stores the whole graph and, on every update, re-counts the
/// embeddings of *every* registered query (no inverted index, no sharing, no
/// increments). Slow by design; the property suites validate every other
/// engine's `UpdateResult` against it on small streams.
class NaiveEngine : public ContinuousEngine {
 public:
  NaiveEngine();

  std::string name() const override { return "Naive"; }
  UpdateResult ApplyUpdate(const EdgeUpdate& u) override;
  bool HasQuery(QueryId qid) const override { return queries_.count(qid) > 0; }
  size_t NumQueries() const override { return queries_.size(); }
  size_t MemoryBytes() const override;

 protected:
  void AddQueryImpl(QueryId qid, const QueryPattern& q) override;
  /// The oracle holds no shared per-query state: dropping the entry is the
  /// whole removal.
  void RemoveQueryImpl(QueryId qid) override { queries_.erase(qid); }

 private:
  struct QueryEntry {
    QueryPattern pattern;
    graphdb::ExecPlan plan;
    uint64_t last_count = 0;
  };

  /// Full recount with the §4.3 property-constraint filter applied.
  uint64_t CountQuery(const QueryEntry& entry);

  graphdb::GraphStore store_;
  graphdb::MatchExecutor executor_;
  std::unordered_map<QueryId, QueryEntry> queries_;
};

}  // namespace gstream

#endif  // GSTREAM_ENGINE_NAIVE_ENGINE_H_
