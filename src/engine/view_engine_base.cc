#include "engine/view_engine_base.h"

namespace gstream {

Relation* ViewEngineBase::GetOrCreateBaseView(const GenericEdgePattern& p) {
  auto it = base_views_.find(p);
  if (it == base_views_.end())
    it = base_views_.emplace(p, std::make_unique<Relation>(2)).first;
  return it->second.get();
}

Relation* ViewEngineBase::FindBaseView(const GenericEdgePattern& p) const {
  auto it = base_views_.find(p);
  return it == base_views_.end() ? nullptr : it->second.get();
}

void ViewEngineBase::AppendToBaseViews(const EdgeUpdate& u) {
  const VertexId row[2] = {u.src, u.dst};
  for (const auto& g : Generalizations(u)) {
    auto it = base_views_.find(g);
    if (it != base_views_.end()) it->second->Append(row);
  }
}

bool ViewEngineBase::RemoveFromBaseViews(const EdgeUpdate& u) {
  if (seen_edges_.erase(u) == 0) return false;
  for (const auto& g : Generalizations(u)) {
    auto it = base_views_.find(g);
    if (it == base_views_.end()) continue;
    it->second->RemoveRowsWhere(
        [&](const VertexId* row) { return row[0] == u.src && row[1] == u.dst; });
  }
  return true;
}

bool ViewEngineBase::IsDuplicateUpdate(const EdgeUpdate& u) {
  return !seen_edges_.insert(u).second;
}

size_t ViewEngineBase::SharedMemoryBytes() const {
  size_t bytes = sizeof(*this) + peak_transient_bytes_;
  for (const auto& [p, rel] : base_views_)
    bytes += sizeof(p) + rel->MemoryBytes() + 2 * sizeof(void*);
  bytes += seen_edges_.size() * (sizeof(EdgeUpdate) + 2 * sizeof(void*)) +
           seen_edges_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace gstream
