#include "engine/view_engine_base.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"

namespace gstream {

namespace {

/// Union-find over window slots (path-halving; windows are small).
uint32_t FindRoot(std::vector<uint32_t>& parent, uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void Union(std::vector<uint32_t>& parent, uint32_t a, uint32_t b) {
  a = FindRoot(parent, a);
  b = FindRoot(parent, b);
  if (a != b) parent[b < a ? a : b] = b < a ? b : a;  // smaller slot wins
}

struct ElemHash {
  size_t operator()(uint64_t e) const { return Mix64(e); }
};

/// Generalization-profile encoding sentinels (pattern ids are small nonzero
/// values, so the top of the 64-bit space is free for markers).
constexpr uint64_t kProfileNextUpdate = ~0ull;
constexpr uint64_t kProfileDuplicate = ~0ull - 1;

/// Partition-memo bound: windows of a homogeneous stream collapse to a
/// handful of profiles, so a small cache captures the steady state; a
/// profile churn (adversarial or ingest-phase) just degrades to recompute.
constexpr size_t kPartitionCacheMax = 64;

}  // namespace

Relation* ViewEngineBase::GetOrCreateBaseView(const GenericEdgePattern& p) {
  auto it = base_views_.find(p);
  if (it == base_views_.end())
    it = base_views_.emplace(p, std::make_unique<Relation>(2)).first;
  return it->second.get();
}

Relation* ViewEngineBase::FindBaseView(const GenericEdgePattern& p) const {
  auto it = base_views_.find(p);
  return it == base_views_.end() ? nullptr : it->second.get();
}

Relation* ViewEngineBase::RefBaseView(const GenericEdgePattern& p) {
  ++base_view_refs_[p];
  auto it = base_views_.find(p);
  if (it != base_views_.end()) return it->second.get();

  // First reference creates the view — backfilled from the live edge set,
  // so a query registered (or re-registered after a removal wave) mid-
  // stream sees exactly the base-view contents it would have seen had it
  // been registered up front. This pins down the dynamic-QDB semantics:
  // notifications report only *future* matches, but those matches may
  // combine old and new edges, same as the oracle's recount-and-diff.
  Relation* view = GetOrCreateBaseView(p);
  for (const EdgeUpdate& e : seen_edges_) {
    if (!p.Matches(e)) continue;
    const VertexId row[2] = {e.src, e.dst};
    view->Append(row);
  }
  return view;
}

void ViewEngineBase::UnrefBaseView(const GenericEdgePattern& p) {
  auto ref = base_view_refs_.find(p);
  GS_DCHECK(ref != base_view_refs_.end() && ref->second > 0);
  if (--ref->second > 0) return;
  base_view_refs_.erase(ref);

  // Last reference: no surviving query routes through this pattern, so the
  // shared view (and everything keyed on it) is garbage. The rows it held
  // are reconstructible from the seen-edge set if the pattern ever
  // re-registers — exactly the mid-stream AddQuery backfill contract.
  auto it = base_views_.find(p);
  GS_DCHECK(it != base_views_.end());
  OnRelationEvicted(it->second.get());
  base_views_.erase(it);
  pattern_ids_.Erase(p);  // footprint ids are window-scoped; safe to recycle
  // Cached partitions may key on the recycled id; the removal wave also
  // marks the reaches dirty, but clear eagerly so no window in between can
  // see a stale partition.
  partition_cache_.clear();
}

void ViewEngineBase::CompactSharedState() { pattern_ids_.Compact(); }

void ViewEngineBase::AppendToBaseViews(const EdgeUpdate& u, WindowContext* ctx) {
  const VertexId row[2] = {u.src, u.dst};
  for (const auto& g : Generalizations(u)) {
    auto it = base_views_.find(g);
    if (it == base_views_.end()) continue;
    if (ctx != nullptr) ctx->prov.Checkpoint(it->second.get(), ctx->position);
    it->second->Append(row);
  }
}

bool ViewEngineBase::RemoveFromBaseViews(const EdgeUpdate& u) {
  if (seen_edges_.erase(u) == 0) return false;
  for (const auto& g : Generalizations(u)) {
    auto it = base_views_.find(g);
    if (it == base_views_.end()) continue;
    it->second->RemoveRowsWhere(
        [&](const VertexId* row) { return row[0] == u.src && row[1] == u.dst; });
  }
  return true;
}

bool ViewEngineBase::IsDuplicateUpdate(const EdgeUpdate& u) {
  return !seen_edges_.insert(u).second;
}

void ViewEngineBase::EnsureReach() {
  if (!reach_dirty_) return;
  pattern_reach_.clear();
  BuildPatternReach();
  reach_dirty_ = false;
}

bool ViewEngineBase::CollectFootprint(const EdgeUpdate& u, Footprint& out) {
  EnsureReach();
  for (const auto& g : Generalizations(u)) {
    // Unregistered patterns have no base view and no index entries — an
    // insert matching only those touches nothing.
    auto it = pattern_reach_.find(g);
    if (it != pattern_reach_.end())
      out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return true;
}

std::vector<UpdateResult> ViewEngineBase::ApplyBatch(const EdgeUpdate* updates,
                                                     size_t n) {
  std::vector<UpdateResult> results;
  results.reserve(n);
  size_t i = 0;
  while (i < n) {
    if (updates[i].op == UpdateOp::kDelete) {
      // Deletions retract shared state with global reach; they act as
      // barriers between insert windows.
      results.push_back(ApplyUpdate(updates[i]));
      ++i;
      if (results.back().timed_out) return results;
      continue;
    }
    size_t j = i;
    while (j < n && updates[j].op != UpdateOp::kDelete) ++j;
    if (!RunInsertWindow(updates, i, j, results)) return results;
    i = j;
  }
  return results;
}

bool ViewEngineBase::RunInsertWindow(const EdgeUpdate* updates, size_t lo,
                                     size_t hi, std::vector<UpdateResult>& results) {
  if (window_cache_enabled_) window_cache_ = std::make_unique<WindowJoinCache>();
  const bool ok = RunInsertWindowImpl(updates, lo, hi, results);
  if (window_cache_ != nullptr) {
    // The window's build tables are transient scratch, never engine state.
    NotePeakTransient(window_cache_->MemoryBytes());
    window_cache_.reset();
  }
  return ok;
}

void ViewEngineBase::ProcessInsertDelta(const EdgeUpdate& u, WindowContext& ctx,
                                        UpdateResult& result) {
  (void)ctx;
  result = ProcessInsert(u);
}

void ViewEngineBase::FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) {
  (void)ctx;
  (void)window_results;
}

void ViewEngineBase::EnsureFinalizeGroups() {
  if (!finalize_groups_dirty_) return;
  finalize_groups_dirty_ = false;
  finalize_groups_.clear();
  group_of_query_.clear();
  if (!shared_finalize_enabled_ && !route_enabled_) return;

  std::vector<QueryId> qids;
  ListQueryIds(qids);
  std::sort(qids.begin(), qids.end());
  PrepareFinalizeSignatures(qids);

  // Signature encoding is per-query independent and read-only (after the
  // prepare hook), so a registration wave big enough to matter fans out
  // across the batch scheduler; the grouping below stays sequential either
  // way, so the group order is identical to a single-threaded build. Chunks
  // are deliberately smaller than executors so idle executors keep stealing
  // work off the coordinator's deque until the wave drains.
  std::vector<std::vector<uint64_t>> keys(qids.size());
  std::vector<uint8_t> shareable(qids.size(), 0);
  constexpr size_t kParallelSignatureMin = 64;
  if (sched_ != nullptr && qids.size() >= kParallelSignatureMin) {
    const size_t num_tasks = static_cast<size_t>(sched_->size()) * 4;
    const size_t chunk = (qids.size() + num_tasks - 1) / num_tasks;
    for (size_t t = 0; t < num_tasks; ++t) {
      const size_t lo = t * chunk;
      const size_t hi = std::min(lo + chunk, qids.size());
      if (lo >= hi) break;
      sched_->Submit([this, &qids, &keys, &shareable, lo, hi] {
        for (size_t i = lo; i < hi; ++i)
          shareable[i] = EncodeFinalizeSignature(qids[i], keys[i]) ? 1 : 0;
      });
    }
    sched_->Wait();
  } else {
    for (size_t i = 0; i < qids.size(); ++i)
      shareable[i] = EncodeFinalizeSignature(qids[i], keys[i]) ? 1 : 0;
  }

  // Full-key grouping (no hashing shortcut): a spurious collision would fan
  // one query's results out to an unrelated query, so keys compare by value.
  // Rebuilds are query-lifecycle-rate, not update-rate — an ordered map over
  // the encoded keys is plenty.
  std::map<std::vector<uint64_t>, std::vector<QueryId>> by_key;
  std::vector<QueryId> privates;  ///< Signatures that opted out of sharing.
  for (size_t i = 0; i < qids.size(); ++i) {
    if (shareable[i])
      by_key[std::move(keys[i])].push_back(qids[i]);  // members stay ascending
    else
      privates.push_back(qids[i]);
  }

  const auto add_group = [&](std::vector<QueryId>&& members, bool shareable) {
    auto group = std::make_unique<FinalizeGroup>();
    group->id = static_cast<uint32_t>(finalize_groups_.size());
    group->shareable = shareable;
    group->members = std::move(members);
    for (QueryId qid : group->members) group_of_query_[qid] = group.get();
    finalize_groups_.push_back(std::move(group));
  };

  for (auto& [k, members] : by_key) {
    // With routing off, groups exist only for fan-out sharing — singletons
    // take the per-query path. With routing on every query needs a group
    // (groups are the routing targets).
    if (!route_enabled_ && members.size() < 2) continue;
    add_group(std::move(members), /*shareable=*/true);
  }
  if (route_enabled_)
    for (QueryId qid : privates)
      add_group(std::vector<QueryId>{qid}, /*shareable=*/false);

  OnRouteGroupsRebuilt();
}

ViewEngineBase::SharedFinalizeMemo* ViewEngineBase::SharedMemoFor(
    QueryId qid, WindowContext& ctx) const {
  auto it = group_of_query_.find(qid);
  if (it == group_of_query_.end()) return nullptr;
  // Routed grouping materializes singleton and opted-out groups too; those
  // never share a memo.
  if (!GroupSharingApplies(*it->second)) return nullptr;
  return &ctx.shared[it->second];
}

void ViewEngineBase::AppendFilterSignature(const QueryPattern& q,
                                           std::vector<uint64_t>& out) {
  out.push_back(~0ull);  // section marker: filter spec follows
  out.push_back(q.NumVertices());
  for (const auto& c : q.constraints()) {
    out.push_back(c.vertex);
    out.push_back(c.key);
    out.push_back(static_cast<uint64_t>(c.op));
    out.push_back(static_cast<uint64_t>(c.value));
  }
}

void ViewEngineBase::ScatterTagCounts(std::vector<uint32_t>& tags, QueryId qid,
                                      UpdateResult* window_results) {
  std::sort(tags.begin(), tags.end());
  for (size_t r = 0; r < tags.size();) {
    size_t e = r;
    while (e < tags.size() && tags[e] == tags[r]) ++e;
    window_results[tags[r] - 1].AddQueryCount(qid, e - r);
    r = e;
  }
}

bool ViewEngineBase::RunInsertWindowImpl(const EdgeUpdate* updates, size_t lo,
                                           size_t hi,
                                           std::vector<UpdateResult>& results) {
  const size_t count = hi - lo;

  // Duplicate pre-pass, in stream order: the seen-edge set is global, so the
  // coordinator resolves it before any sharding. A duplicate's result is the
  // empty no-op result, exactly as in sequential execution.
  std::vector<uint8_t> dup(count);
  for (size_t k = 0; k < count; ++k)
    dup[k] = IsDuplicateUpdate(updates[lo + k]) ? 1 : 0;

  // Window-delta execution needs ≥ 2 updates to amortize anything; single-
  // insert windows take the per-update path unchanged.
  const bool delta = count > 1 && SupportsWindowDelta();

  // Shared finalization groups are read (immutably) by FinalizeWindow, which
  // may run on shard threads — rebuild on the coordinator, like the reaches.
  if (delta) EnsureFinalizeGroups();

  // On a mid-window timeout the pre-pass marked edges we never applied;
  // un-mark the suffix so it leaves no trace (ApplyBatch contract).
  const auto unwind_suffix = [&](size_t first_unapplied) {
    for (size_t j = first_unapplied; j < count; ++j)
      if (!dup[j]) seen_edges_.erase(updates[lo + j]);
  };

  // The routed finalize emits counts per signature group, interleaving query
  // ids across groups; restore each slot's ascending-qid invariant. The
  // legacy paths emit in ascending qid order already.
  const auto normalize_order = [&](std::vector<UpdateResult>& window) {
    if (!route_enabled_) return;
    for (UpdateResult& r : window) r.SortByQuery();
  };

  const auto run_sequential = [&]() {
    for (size_t k = 0; k < count; ++k) {
      results.push_back(dup[k] ? UpdateResult{} : ProcessInsert(updates[lo + k]));
      if (results.back().timed_out) {
        unwind_suffix(k + 1);
        return false;
      }
    }
    return true;
  };

  // Single-threaded delta path: maintain views per update in stream order,
  // then run every deferred final join once at the window boundary. On a
  // budget trip results are partial, as everywhere under timeout.
  const auto run_sequential_delta = [&]() {
    std::vector<UpdateResult> window(count);
    std::unique_ptr<WindowContext> ctx = NewWindowContext();
    ctx->window_updates = updates + lo;
    for (size_t k = 0; k < count; ++k) {
      if (dup[k]) continue;
      ctx->position = static_cast<uint32_t>(k) + 1;
      ProcessInsertDelta(updates[lo + k], *ctx, window[k]);
      if (BudgetExceeded()) {
        unwind_suffix(k + 1);
        for (size_t j = 0; j <= k; ++j) results.push_back(std::move(window[j]));
        results.back().timed_out = true;
        return false;
      }
    }
    FinalizeWindow(*ctx, window.data());
    normalize_order(window);
    for (size_t k = 0; k < count; ++k) results.push_back(std::move(window[k]));
    if (budget_ != nullptr && budget_->ExceededNow()) {
      results.back().timed_out = true;
      return false;
    }
    return true;
  };

  const auto run_single = [&]() { return delta ? run_sequential_delta() : run_sequential(); };
  if (sched_ == nullptr || count == 1) return run_single();

  // ---- shard partition: generalization-profile memo, else union-find ----
  //
  // The partition is a pure function of the window's *generalization
  // profile*: per update, the ids of the registered patterns it matches
  // (the default CollectFootprint concatenates exactly those patterns'
  // precomputed reaches), plus the duplicate mask. Identical-profile
  // windows — the steady state of a homogeneous stream — reuse the shard
  // member lists and skip the element-level union-find entirely.
  const std::vector<std::vector<uint32_t>>* shard_lists = nullptr;
  std::vector<uint64_t> profile;
  if (footprint_pattern_local_) {
    EnsureReach();
    profile.reserve(count * 3);
    for (size_t k = 0; k < count; ++k) {
      profile.push_back(kProfileNextUpdate);
      if (dup[k]) {
        profile.push_back(kProfileDuplicate);
        continue;
      }
      for (const auto& g : Generalizations(updates[lo + k])) {
        if (pattern_reach_.find(g) == pattern_reach_.end()) continue;
        profile.push_back(PatternId(g));
      }
    }
    auto hit = partition_cache_.find(profile);
    if (hit != partition_cache_.end()) {
      footprint_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      shard_lists = &hit->second.shard_members;
    }
  }

  std::vector<std::vector<uint32_t>> computed_shards;
  if (shard_lists == nullptr) {
    // Footprint collection + union-find grouping: two inserts sharing any
    // footprint element may interact and land in one shard; shards are
    // therefore pairwise disjoint in everything they read or write.
    std::vector<Footprint> fps(count);
    std::vector<uint32_t> parent(count);
    std::iota(parent.begin(), parent.end(), 0u);
    FlatMap<uint64_t, uint32_t, ElemHash> owner;
    for (size_t k = 0; k < count; ++k) {
      if (dup[k]) continue;
      if (!CollectFootprint(updates[lo + k], fps[k])) return run_single();
      for (uint64_t e : fps[k]) {
        uint32_t& first = owner.GetOrCreate(e);
        if (first == 0) {
          first = static_cast<uint32_t>(k) + 1;  // 1-based; 0 = unclaimed
        } else {
          Union(parent, first - 1, static_cast<uint32_t>(k));
        }
      }
    }

    // Shard member lists, ascending stream position within each shard. The
    // root is always a shard's smallest slot, so emitting shards in
    // first-member order keeps both the member lists and the shard order
    // deterministic.
    std::vector<int32_t> shard_of_root(count, -1);
    for (size_t k = 0; k < count; ++k) {
      if (dup[k]) continue;
      const uint32_t root = FindRoot(parent, static_cast<uint32_t>(k));
      if (shard_of_root[root] < 0) {
        shard_of_root[root] = static_cast<int32_t>(computed_shards.size());
        computed_shards.emplace_back();
      }
      computed_shards[static_cast<size_t>(shard_of_root[root])].push_back(
          static_cast<uint32_t>(k));
    }

    if (footprint_pattern_local_) {
      if (partition_cache_.size() >= kPartitionCacheMax)
        partition_cache_.clear();
      WindowPartition& slot = partition_cache_[std::move(profile)];
      slot.shard_members = std::move(computed_shards);
      shard_lists = &slot.shard_members;
    } else {
      shard_lists = &computed_shards;
    }
  }

  const std::vector<std::vector<uint32_t>>& shards = *shard_lists;
  if (shards.size() <= 1) return run_single();

  // ---- task planning: grain-packed shard groups ----
  //
  // Shards vastly outnumber executors on busy windows, and per-shard tasks
  // would pay queue and wakeup costs per shard — so contiguous shards are
  // packed into tasks of roughly live/(P*8) members. The over-decomposition
  // (≈8 tasks per executor) is what lets stealing balance skew: a task that
  // landed one hot shard runs alone while idle executors steal the rest one
  // task at a time, so the window's makespan tracks the hot shard instead
  // of the hot shard plus a static 1/P stripe of everything else.
  size_t live = 0;
  for (const auto& members : shards) live += members.size();
  const size_t grain =
      std::max<size_t>(1, live / (static_cast<size_t>(sched_->size()) * 8));
  struct TaskSpan {
    uint32_t first = 0;  ///< First shard index of the span.
    uint32_t limit = 0;  ///< One past the last shard index.
  };
  std::vector<TaskSpan> tasks;
  {
    TaskSpan span;
    size_t span_members = 0;
    for (uint32_t s = 0; s < shards.size(); ++s) {
      span_members += shards[s].size();
      if (span_members >= grain) {
        span.limit = s + 1;
        tasks.push_back(span);
        span.first = s + 1;
        span_members = 0;
      }
    }
    if (span.first < shards.size()) {
      span.limit = static_cast<uint32_t>(shards.size());
      tasks.push_back(span);
    }
  }

  // Shards must not poll the (non-thread-safe) budget; the coordinator
  // checks it at the window boundary instead.
  Budget* saved_budget = budget_;
  budget_ = nullptr;
  // Each task owns a full-window result arena: FinalizeWindow scatters by
  // global window position, and distinct tasks never share a position, so
  // arenas also kill false sharing on the hot result slots. On the delta
  // path each shard replays its members' maintenance in stream order, then
  // finalizes its own queries once — tags are global window positions, so
  // the merged results read exactly like sequential execution.
  const uint64_t steals_before = sched_->steals();
  std::vector<std::vector<UpdateResult>> arenas(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    sched_->Submit([this, updates, lo, count, delta, t, &tasks, &shards,
                    &arenas] {
      std::vector<UpdateResult>& arena = arenas[t];
      arena.resize(count);
      const TaskSpan span = tasks[t];
      for (uint32_t s = span.first; s < span.limit; ++s) {
        if (delta) {
          std::unique_ptr<WindowContext> ctx = NewWindowContext();
          ctx->window_updates = updates + lo;
          for (uint32_t k : shards[s]) {
            ctx->position = k + 1;
            ProcessInsertDelta(updates[lo + k], *ctx, arena[k]);
          }
          FinalizeWindow(*ctx, arena.data());
        } else {
          for (uint32_t k : shards[s]) arena[k] = ProcessInsert(updates[lo + k]);
        }
      }
    });
  }
  sched_->Wait();
  budget_ = saved_budget;
  batch_tasks_.fetch_add(tasks.size(), std::memory_order_relaxed);
  batch_steals_.fetch_add(sched_->steals() - steals_before,
                          std::memory_order_relaxed);

  // Deterministic positional merge, in task-submission order. Positions are
  // task-disjoint, so the merged window is byte-identical to sequential
  // execution no matter which executor ran which task.
  std::vector<UpdateResult> window(count);  // dup slots stay the no-op result
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (uint32_t s = tasks[t].first; s < tasks[t].limit; ++s)
      for (uint32_t k : shards[s]) window[k] = std::move(arenas[t][k]);
  }

  normalize_order(window);
  for (size_t k = 0; k < count; ++k) results.push_back(std::move(window[k]));
  if (budget_ != nullptr && budget_->ExceededNow()) {
    results.back().timed_out = true;
    return false;
  }
  return true;
}

uint64_t ViewEngineBase::StateFingerprint() const {
  // Each section folds its elements with a commutative sum of per-element
  // Mix64 digests (a multiset hash), so the unordered containers' iteration
  // order cannot leak into the value; the section digests then chain
  // order-sensitively. Base views contribute (pattern, row count) only —
  // their row *contents* are a pure function of the seen-edge set already
  // digested, and row order is batch-schedule-dependent by design.
  uint64_t edges = 0;
  for (const EdgeUpdate& e : seen_edges_)
    edges += Mix64(Mix64((static_cast<uint64_t>(e.src) << 32) ^ e.dst) ^
                   (static_cast<uint64_t>(e.label) * 0x9e3779b97f4a7c15ull));

  uint64_t views = 0;
  for (const auto& [p, rel] : base_views_) {
    uint64_t h = Mix64((static_cast<uint64_t>(p.src) << 32) ^ p.dst);
    h = Mix64(h ^ (static_cast<uint64_t>(p.label) * 0x9e3779b97f4a7c15ull));
    views += Mix64(h ^ static_cast<uint64_t>(rel->NumRows()));
  }

  std::vector<QueryId> qids;
  ListQueryIds(qids);
  std::sort(qids.begin(), qids.end());

  uint64_t fp = Mix64(0x67736220666470ull);  // section-chain salt
  fp = Mix64(fp ^ edges);
  fp = Mix64(fp ^ views);
  fp = Mix64(fp ^ static_cast<uint64_t>(qids.size()));
  for (QueryId qid : qids) fp = Mix64(fp ^ static_cast<uint64_t>(qid));
  return fp;
}

size_t ViewEngineBase::SharedMemoryBytes() const {
  size_t bytes = sizeof(*this) + peak_transient_bytes_.load(std::memory_order_relaxed);
  for (const auto& [p, rel] : base_views_)
    bytes += sizeof(p) + rel->MemoryBytes() + 2 * sizeof(void*);
  bytes += base_view_refs_.size() *
           (sizeof(GenericEdgePattern) + sizeof(uint32_t) + 2 * sizeof(void*));
  bytes += seen_edges_.size() * (sizeof(EdgeUpdate) + 2 * sizeof(void*)) +
           seen_edges_.bucket_count() * sizeof(void*);
  bytes += pattern_ids_.MemoryBytes();
  for (const auto& [p, fp] : pattern_reach_)
    bytes += sizeof(p) + fp.capacity() * sizeof(uint64_t) + 2 * sizeof(void*);
  return bytes;
}

}  // namespace gstream
