#ifndef GSTREAM_ENGINE_VIEW_ENGINE_BASE_H_
#define GSTREAM_ENGINE_VIEW_ENGINE_BASE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "engine/engine.h"
#include "matview/relation.h"
#include "query/edge_pattern.h"

namespace gstream {

/// Shared plumbing of the view-based engines (TRIC/TRIC+/INV/INV+/INC/INC+):
///
///  * the global edge-level materialized views matV[e], one per distinct
///    genericized edge pattern appearing in the query set (§4.1
///    "Materialization") — these are *shared* across queries and across
///    covering paths;
///  * duplicate-update suppression (the edge set has set semantics);
///  * peak-transient accounting: the base algorithms rebuild hash tables and
///    intermediate join results per update and discard them, which dominates
///    their real memory peaks (Fig. 13(c)); we track the high-water mark of
///    that scratch.
class ViewEngineBase : public ContinuousEngine {
 protected:
  /// The base view for `p`, created empty on first use (at query indexing).
  Relation* GetOrCreateBaseView(const GenericEdgePattern& p);

  /// The base view for `p`, or nullptr when no query uses this pattern.
  Relation* FindBaseView(const GenericEdgePattern& p) const;

  /// Records `u` into every existing base view whose pattern it satisfies
  /// (up to the 4 generalizations).
  void AppendToBaseViews(const EdgeUpdate& u);

  /// Retracts `u`'s tuple from every matching base view and forgets the
  /// edge (paper §4.3 deletions). Returns false when the edge was absent.
  bool RemoveFromBaseViews(const EdgeUpdate& u);

  /// Returns true (and remembers the edge) when `u` was already applied.
  bool IsDuplicateUpdate(const EdgeUpdate& u);

  /// Tracks the largest transient join scratch seen in one update.
  void NotePeakTransient(size_t bytes) {
    if (bytes > peak_transient_bytes_) peak_transient_bytes_ = bytes;
  }

  /// Bytes of base views + seen-edge set + transient high-water mark.
  size_t SharedMemoryBytes() const;

  std::unordered_map<GenericEdgePattern, std::unique_ptr<Relation>,
                     GenericEdgePatternHash>
      base_views_;
  std::unordered_set<EdgeUpdate, EdgeKeyHash, EdgeKeyEq> seen_edges_;
  size_t peak_transient_bytes_ = 0;
};

}  // namespace gstream

#endif  // GSTREAM_ENGINE_VIEW_ENGINE_BASE_H_
