#ifndef GSTREAM_ENGINE_VIEW_ENGINE_BASE_H_
#define GSTREAM_ENGINE_VIEW_ENGINE_BASE_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <map>

#include "common/flat_map.h"
#include "common/task_scheduler.h"
#include "engine/engine.h"
#include "matview/join_cache.h"
#include "matview/relation.h"
#include "query/edge_pattern.h"

namespace gstream {

/// Shared plumbing of the view-based engines (TRIC/TRIC+/INV/INV+/INC/INC+):
///
///  * the global edge-level materialized views matV[e], one per distinct
///    genericized edge pattern appearing in the query set (§4.1
///    "Materialization") — these are *shared* across queries and across
///    covering paths;
///  * duplicate-update suppression (the edge set has set semantics);
///  * peak-transient accounting: the base algorithms rebuild hash tables and
///    intermediate join results per update and discard them, which dominates
///    their real memory peaks (Fig. 13(c)); we track the high-water mark of
///    that scratch;
///  * sharded batch execution (`ApplyBatch`): a window of consecutive edge
///    insertions is grouped by the footprint of everything each insert's
///    processing can read or write — genericized edge patterns (base views),
///    trie nodes (prefix views), query ids (per-query state). Footprint-
///    disjoint shards commute, so they run concurrently on the engine's
///    work-stealing `TaskScheduler` while each shard replays its members in
///    stream order. Shards are packed into tasks by member count (a hot
///    shard rides alone; small shards coalesce), each task writes into its
///    own full-window result arena, and the coordinator merges the arenas
///    back in task-submission order at the window barrier — positions are
///    task-disjoint, so the merged window is byte-identical to sequential
///    execution regardless of which executor ran what. Deletions and
///    duplicate checks are order-sensitive and global, so deletions act as
///    window barriers and the duplicate pre-pass runs on the coordinator.
///    The footprint/union-find partition is memoized per window shape: the
///    shard member lists are a pure function of the window's
///    *generalization profile* (the per-update sequence of matched
///    registered pattern ids, plus the duplicate mask), so identical-shape
///    windows — the steady state of a homogeneous stream — skip the
///    element-level union-find entirely (see footprint_cache_hits).
///  * window-delta execution (DESIGN.md §7): within an insert window the
///    engines that opt in (`SupportsWindowDelta`) split each update into
///    cheap view maintenance (`ProcessInsertDelta`, run per update in stream
///    order) and the expensive final joins (`FinalizeWindow`, run once per
///    (query, window) over the window's accumulated, provenance-tagged
///    deltas). Emitted matches carry the window position they would have
///    been produced at by sequential execution, so grouping them by tag
///    reconstructs byte-identical per-update results. The per-update path
///    remains the `--batch 1` / single-insert degenerate case.
///  * shared window finalization (DESIGN.md §9): live queries are grouped by
///    their covering-path join signature — the ordered shared-view ids plus
///    the join/filter spec of the final join (`EncodeFinalizeSignature`).
///    Queries with equal signatures run *identical* finalize computations,
///    so each engine's FinalizeWindow evaluates one member per group per
///    window, memoizes the tagged result in the window context, and fans the
///    per-position counts out to every other member — collapsing N
///    per-query passes into one per distinct signature. The grouping is
///    rebuilt lazily after AddQuery/RemoveQuery (MarkReachDirty doubles as
///    the invalidation hook) and computed on the coordinator before shards
///    fan out; signature-equal queries always share a shard (their
///    footprints overlap on the very views the signature names), so the
///    shard-local memo sees every member.
class ViewEngineBase : public ContinuousEngine {
 public:
  std::vector<UpdateResult> ApplyBatch(const EdgeUpdate* updates, size_t n) override;

  void SetBatchThreads(int threads) override {
    sched_ = threads > 1 ? std::make_unique<TaskScheduler>(threads) : nullptr;
  }

  uint64_t batch_tasks() const override {
    return batch_tasks_.load(std::memory_order_relaxed);
  }

  uint64_t batch_steals() const override {
    return batch_steals_.load(std::memory_order_relaxed);
  }

  uint64_t footprint_cache_hits() const override {
    return footprint_cache_hits_.load(std::memory_order_relaxed);
  }

  uint64_t final_join_passes() const override {
    return final_join_passes_.load(std::memory_order_relaxed);
  }

  uint64_t shared_finalize_groups() const override {
    return shared_finalize_groups_.load(std::memory_order_relaxed);
  }

  void SetSharedFinalize(bool enabled) override {
    shared_finalize_enabled_ = enabled;
    finalize_groups_dirty_ = true;
  }

  uint64_t routed_candidates() const override {
    return routed_candidates_.load(std::memory_order_relaxed);
  }

  uint64_t prefilter_rejects() const override {
    return prefilter_rejects_.load(std::memory_order_relaxed);
  }

  void SetRouteIndex(bool enabled) override {
    route_enabled_ = enabled;
    finalize_groups_dirty_ = true;
  }

  /// Order-insensitive digest of the shared durable state (see engine.h):
  /// the applied edge set, every base view's (pattern, row count), and the
  /// sorted live query ids. Deterministic across processes and batch/thread
  /// configurations — the ingest recovery protocol compares it against the
  /// snapshot's value after a fast-forward replay. Engine-private structures
  /// (tries, cached indexes) are pure functions of this state plus the
  /// registration order, so the shared layer pins them down.
  uint64_t StateFingerprint() const override;

 protected:
  /// One signature group: the live queries (ascending) whose finalize
  /// signatures are equal. With the routing index off only multi-member
  /// shareable groups are materialized (singletons take the plain per-query
  /// path); with routing on *every* live query belongs to exactly one group —
  /// groups double as the routing targets (DESIGN.md §12), and queries whose
  /// signature opted out of sharing get private singleton groups
  /// (`shareable == false`).
  struct FinalizeGroup {
    uint32_t id = 0;  ///< Dense index into finalize_groups() (routing target).
    bool shareable = true;  ///< False: signature opted out of fan-out sharing.
    std::vector<QueryId> members;
  };

  /// Window-local memo of one group's finalize evaluation, held in the
  /// shard's WindowContext: the first member processed evaluates and stores
  /// the tagged outcome, every later member replays it. `runtime_key` pins
  /// the window-specific inputs (affected covering paths / seed positions) —
  /// signature-equal queries always agree on it, but a mismatch falls back
  /// to an independent evaluation rather than trusting the memo.
  struct SharedFinalizeMemo {
    bool evaluated = false;
    bool pass_ran = false;       ///< The evaluation counted a final-join pass.
    bool shared_counted = false; ///< Already counted in shared_finalize_groups.
    std::vector<uint64_t> runtime_key;
    /// Window position per new assignment (ScatterTagCounts input).
    std::vector<uint32_t> tags;
    /// Engine-specific scalar rider (INV: end-of-window embedding total).
    uint64_t total = 0;

    /// Records one evaluation outcome (the single writer path — every
    /// engine's FinalizeWindow stores through here so the fields cannot be
    /// half-updated): `t == nullptr` means a no-op outcome (no tags).
    void Store(bool ran, std::vector<uint64_t>&& key,
               const std::vector<uint32_t>* t, uint64_t tot = 0) {
      evaluated = true;
      pass_ran = ran;
      runtime_key = std::move(key);
      total = tot;
      if (t != nullptr)
        tags = *t;
      else
        tags.clear();
    }
  };

  /// Per-shard context of one delta window: the provenance checkpoints of
  /// every relation the shard's updates touch, plus the engine's deferred-
  /// finalize state (subclasses extend it). One instance per shard, so no
  /// synchronization — shards are footprint-disjoint.
  struct WindowContext {
    virtual ~WindowContext() = default;
    uint32_t position = 0;  ///< 1-based window position of the insert in flight.
    /// The window's updates; slot p - 1 is window position p (set by the
    /// coordinator before the first ProcessInsertDelta).
    const EdgeUpdate* window_updates = nullptr;
    WindowProvenance prov;
    /// Shared-finalize memos of the groups this shard finalizes.
    std::unordered_map<const FinalizeGroup*, SharedFinalizeMemo> shared;
  };

  /// True when the engine implements the window-delta protocol below;
  /// otherwise batch windows replay `ProcessInsert` per update.
  virtual bool SupportsWindowDelta() const { return false; }

  virtual std::unique_ptr<WindowContext> NewWindowContext() {
    return std::make_unique<WindowContext>();
  }

  /// Delta-path maintenance for one insert (`ctx.position` is set): update
  /// the shared views and routing state, checkpoint touched relations in
  /// `ctx.prov`, and record which queries need finalizing — but defer every
  /// final join to FinalizeWindow. `result` is the update's slot in the
  /// window's result vector; maintenance fills `changed`, FinalizeWindow
  /// adds the per-query counts.
  virtual void ProcessInsertDelta(const EdgeUpdate& u, WindowContext& ctx,
                                  UpdateResult& result);

  /// Runs the deferred final joins of `ctx`'s shard: exactly one pass per
  /// (query, window), scattering match counts onto `window_results[p - 1]`
  /// for window position `p` (tags never cross shard boundaries — a query's
  /// positions are its own shard's members).
  virtual void FinalizeWindow(WindowContext& ctx, UpdateResult* window_results);

  /// Bumps the per-query final-join pass counter (see final_join_passes).
  void NoteFinalJoinPass() {
    final_join_passes_.fetch_add(1, std::memory_order_relaxed);
  }

  // ----- shared-finalize planner (DESIGN.md §9) -----

  /// Engine hook: append a canonical encoding of `qid`'s window-finalize
  /// computation — the ordered ids of the shared views its final join reads
  /// plus the join/filter spec (binding schemas, property constraints).
  /// Two queries with equal encodings MUST produce identical FinalizeWindow
  /// outcomes for any window. Return false to opt the query out of sharing.
  /// Must be read-only (EnsureFinalizeGroups fans the encode loop out across
  /// the batch pool when a wave of queries registers at once); mutating
  /// preparation belongs in PrepareFinalizeSignatures.
  virtual bool EncodeFinalizeSignature(QueryId qid, std::vector<uint64_t>& out) {
    (void)qid;
    (void)out;
    return false;
  }

  /// Engine hook fired once on the coordinator thread before the (possibly
  /// parallel) EncodeFinalizeSignature loop: intern anything the encodes
  /// would otherwise create lazily (INV pre-interns pattern ids here), so
  /// the encodes themselves are pure reads. Default: nothing.
  virtual void PrepareFinalizeSignatures(const std::vector<QueryId>& qids) {
    (void)qids;
  }

  /// Appends the registered query ids (any order).
  virtual void ListQueryIds(std::vector<QueryId>& out) const = 0;

  /// Rebuilds the signature grouping when dirty (after AddQuery/RemoveQuery
  /// or a SetSharedFinalize/SetRouteIndex flip). Coordinator-thread only —
  /// runs before a delta window fans out so shard threads read the groups
  /// immutably. Fires OnRouteGroupsRebuilt after a rebuild.
  void EnsureFinalizeGroups();

  /// Hook fired after EnsureFinalizeGroups rebuilt the grouping: engines
  /// rebuild their group-granular routing postings here (they are exactly as
  /// stale as the groups). Coordinator-thread only. Default: nothing.
  virtual void OnRouteGroupsRebuilt() {}

  /// The signature groups, dense by FinalizeGroup::id (routing targets).
  /// Valid after EnsureFinalizeGroups until the next query-set change.
  const std::vector<std::unique_ptr<FinalizeGroup>>& finalize_groups() const {
    return finalize_groups_;
  }

  /// `qid`'s signature group, or nullptr (never null once routing
  /// materializes all-query groups and the grouping is clean).
  const FinalizeGroup* GroupOf(QueryId qid) const {
    auto it = group_of_query_.find(qid);
    return it == group_of_query_.end() ? nullptr : it->second;
  }

  bool route_enabled() const { return route_enabled_; }
  bool shared_finalize_enabled() const { return shared_finalize_enabled_; }

  /// True when `g`'s finalize evaluation may be fanned out across members:
  /// sharing is on, the signature did not opt out, and there is someone to
  /// share with. Routed finalize paths branch on this; the memo path below
  /// applies the same test.
  bool GroupSharingApplies(const FinalizeGroup& g) const {
    return shared_finalize_enabled_ && g.shareable && g.members.size() >= 2;
  }

  /// The memo slot of `qid`'s group in this window, or nullptr when sharing
  /// does not apply (disabled, unshareable signature, or singleton group).
  SharedFinalizeMemo* SharedMemoFor(QueryId qid, WindowContext& ctx) const;

  /// Member count of `qid`'s signature group, 1 when sharing does not apply:
  /// the touch weight a shared finalize pass carries into the window join
  /// cache (see JoinIndexSource::Get's weighted overload).
  uint32_t SharedGroupSize(QueryId qid) const {
    auto it = group_of_query_.find(qid);
    return it == group_of_query_.end() || !GroupSharingApplies(*it->second)
               ? 1u
               : static_cast<uint32_t>(it->second->members.size());
  }

  /// Counts one group-level finalize pass that served >= 2 members (the
  /// routed fan-out's equivalent of NoteSharedServed's first-replay count).
  void NoteSharedGroupPass() {
    shared_finalize_groups_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Counts `n` candidate work items the routing layer handed to evaluation
  /// (per-query/per-path candidates on the legacy path, group/node-path
  /// candidates on the routed path). Thread-safe (shards report
  /// concurrently).
  void NoteRoutedCandidates(uint64_t n) {
    if (n != 0) routed_candidates_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Counts one streamed update rejected by the O(words) routing prefilter.
  void NotePrefilterReject() {
    prefilter_rejects_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Counts `memo`'s pass as shared (first fan-out only): the memoized
  /// evaluation just served a second query.
  void NoteSharedServed(SharedFinalizeMemo& memo) {
    if (memo.shared_counted) return;
    memo.shared_counted = true;
    shared_finalize_groups_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Replays a memoized group evaluation for `qid`: counts the fan-out and
  /// scatters a copy of the memo's tags onto the window results. Call only
  /// after matching `memo.runtime_key`.
  void ReplaySharedTags(SharedFinalizeMemo& memo, QueryId qid,
                        UpdateResult* window_results) {
    if (memo.pass_ran) NoteSharedServed(memo);
    std::vector<uint32_t> tags = memo.tags;
    ScatterTagCounts(tags, qid, window_results);
  }

  /// Canonical encoding of the filter half of a finalize signature: the
  /// assignment arity and the §4.3 property constraints. Shared by every
  /// engine's EncodeFinalizeSignature so the filter spec cannot diverge.
  static void AppendFilterSignature(const QueryPattern& q, std::vector<uint64_t>& out);

  /// Scatters one query's finalize output back onto the per-update results:
  /// sorts `tags` (1-based window positions, one per new assignment) and
  /// adds one AddQueryCount per distinct position to its result slot.
  /// Consumes `tags`. Shared by every engine's FinalizeWindow so the
  /// attribution logic cannot diverge between families.
  static void ScatterTagCounts(std::vector<uint32_t>& tags, QueryId qid,
                               UpdateResult* window_results);
  /// Element ids of one insert's read/write footprint. The three namespaces
  /// share one id space via a 2-bit tag in the low bits.
  using Footprint = std::vector<uint64_t>;
  static uint64_t PatternElem(uint32_t pattern_id) {
    return (static_cast<uint64_t>(pattern_id) << 2) | 0;
  }
  static uint64_t NodeElem(uint64_t node_seq) { return (node_seq << 2) | 1; }
  static uint64_t QueryElem(QueryId qid) {
    return (static_cast<uint64_t>(qid) << 2) | 2;
  }

  /// Appends every element the processing of insert `u` may read or write.
  /// Must over-approximate (a missed element breaks exactness). The default
  /// implementation concatenates the precomputed per-pattern reaches of
  /// `u`'s ≤4 generalizations (lazily rebuilt via BuildPatternReach after
  /// AddQuery — the routing indexes are immutable while updates stream, so
  /// reaches are stable across a window); engines whose reach is not
  /// pattern-local may override — and must then also set
  /// `footprint_pattern_local_ = false`, because the window partition cache
  /// keys on exactly the default implementation's inputs (the matched
  /// registered pattern ids). Returning false marks the update
  /// non-shardable; its window falls back to sequential execution.
  virtual bool CollectFootprint(const EdgeUpdate& u, Footprint& out);

  /// Rebuilds `pattern_reach_` (via BuildPatternReach) when dirty.
  /// Coordinator-thread only.
  void EnsureReach();

  /// Fills `pattern_reach_`: for every *registered* genericized pattern,
  /// every element an insert matching that pattern can read or write
  /// (patterns absent from the map are unregistered — no base view, no
  /// index entries — and contribute nothing).
  virtual void BuildPatternReach() = 0;

  /// Invalidate (and release) the per-pattern reaches — call from
  /// AddQueryImpl/RemoveQueryImpl; CollectFootprint rebuilds lazily. Doubles
  /// as the shared-finalize invalidation hook: the signature grouping is
  /// exactly as stale as the reaches (both are pure functions of the live
  /// query set), so one dirty mark covers both.
  void MarkReachDirty() {
    reach_dirty_ = true;
    pattern_reach_.clear();
    finalize_groups_dirty_ = true;
    // The cached window partitions are keyed on pattern ids whose reaches
    // just changed (and whose ids may recycle) — exactly as stale as the
    // reaches themselves.
    partition_cache_.clear();
  }

  /// The insert path of `ApplyUpdate` *after* the duplicate check. Must be
  /// safe to run concurrently with other footprint-disjoint inserts; the
  /// coordinator clears the budget before fanning out, so implementations
  /// never observe a budget mid-shard.
  virtual UpdateResult ProcessInsert(const EdgeUpdate& u) = 0;

  /// Opt-in (engine constructor) for the base algorithms: inside a batch
  /// window, `window_cache()` returns a transient WindowJoinCache that
  /// amortizes repeated join builds across the window's updates (results
  /// are unchanged — an indexed equi-join emits exactly the scan join's
  /// rows). Outside batch windows it stays null, preserving the sequential
  /// base-engine cost model.
  void EnableWindowCache() { window_cache_enabled_ = true; }
  WindowJoinCache* window_cache() const { return window_cache_.get(); }

  /// Stable small id for a genericized edge pattern (footprint elements).
  /// Coordinator-thread only.
  uint32_t PatternId(const GenericEdgePattern& p) {
    uint32_t& id = pattern_ids_.GetOrCreate(p);
    if (id == 0) id = ++next_pattern_id_;
    return id;
  }

  /// Read-only PatternId lookup (0 = never interned). Safe from pool
  /// threads; pair with a PrepareFinalizeSignatures pre-intern so the id is
  /// always present when it matters.
  uint32_t PatternIdIfKnown(const GenericEdgePattern& p) const {
    const uint32_t* id = pattern_ids_.Find(p);
    return id == nullptr ? 0 : *id;
  }

  /// The base view for `p`, created empty on first use (at query indexing).
  Relation* GetOrCreateBaseView(const GenericEdgePattern& p);

  /// The base view for `p`, or nullptr when no query uses this pattern.
  Relation* FindBaseView(const GenericEdgePattern& p) const;

  /// Query-lifecycle reference counting over the shared base views: each
  /// registered query holds one reference per pattern occurrence it indexed
  /// (engines choose the granularity — per signature element for TRIC, per
  /// distinct edge pattern for INV/INC — and must release symmetrically).
  /// `RefBaseView` creates the view on first use; `UnrefBaseView` destroys
  /// it when the last reference goes, after announcing the doomed relation
  /// through `OnRelationEvicted` so engines drop dependent cached indexes.
  Relation* RefBaseView(const GenericEdgePattern& p);
  void UnrefBaseView(const GenericEdgePattern& p);

  /// Hook: `rel` (a shared base view, until now reachable through
  /// FindBaseView) is about to be destroyed by the lifecycle GC. Engines
  /// owning a JoinCache evict its indexes here. Default: nothing.
  virtual void OnRelationEvicted(const Relation* rel) { (void)rel; }

  /// Releases tombstoned/slack capacity of the shared routing structures
  /// after a removal (pattern-id table today). Engines call it at the end
  /// of RemoveQueryImpl, after compacting their own indexes.
  void CompactSharedState();

  /// Records `u` into every existing base view whose pattern it satisfies
  /// (up to the 4 generalizations). With a non-null `ctx` (delta windows)
  /// each touched view is checkpointed at `ctx->position` first, so the
  /// appended rows carry the right window tags.
  void AppendToBaseViews(const EdgeUpdate& u, WindowContext* ctx = nullptr);

  /// Retracts `u`'s tuple from every matching base view and forgets the
  /// edge (paper §4.3 deletions). Returns false when the edge was absent.
  bool RemoveFromBaseViews(const EdgeUpdate& u);

  /// Returns true (and remembers the edge) when `u` was already applied.
  bool IsDuplicateUpdate(const EdgeUpdate& u);

  /// Tracks the largest transient join scratch seen in one update.
  /// Thread-safe (shards report concurrently).
  void NotePeakTransient(size_t bytes) {
    size_t cur = peak_transient_bytes_.load(std::memory_order_relaxed);
    while (bytes > cur && !peak_transient_bytes_.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed)) {
    }
  }

  /// Bytes of base views + seen-edge set + transient high-water mark.
  size_t SharedMemoryBytes() const;

  std::unordered_map<GenericEdgePattern, std::unique_ptr<Relation>,
                     GenericEdgePatternHash>
      base_views_;
  /// Live query references per base-view pattern (see RefBaseView).
  std::unordered_map<GenericEdgePattern, uint32_t, GenericEdgePatternHash>
      base_view_refs_;
  std::unordered_set<EdgeUpdate, EdgeKeyHash, EdgeKeyEq> seen_edges_;
  std::atomic<size_t> peak_transient_bytes_{0};
  /// Work-stealing batch scheduler; non-null after SetBatchThreads(>1).
  std::unique_ptr<TaskScheduler> sched_;
  /// Per-pattern reach aggregates; see CollectFootprint/BuildPatternReach.
  std::unordered_map<GenericEdgePattern, Footprint, GenericEdgePatternHash>
      pattern_reach_;
  /// False when a subclass overrides CollectFootprint with a reach that is
  /// not a pure function of the matched registered patterns — disables the
  /// generalization-profile partition cache (see RunInsertWindowImpl).
  bool footprint_pattern_local_ = true;

 private:
  /// Executes inserts `updates[lo..hi)` (one delete-free run), appending one
  /// result per update to `results`. Returns false when the budget tripped
  /// (the window's unprocessed suffix was dropped). The outer function owns
  /// the window-cache lifecycle around the inner executor.
  bool RunInsertWindow(const EdgeUpdate* updates, size_t lo, size_t hi,
                       std::vector<UpdateResult>& results);
  bool RunInsertWindowImpl(const EdgeUpdate* updates, size_t lo, size_t hi,
                             std::vector<UpdateResult>& results);

  /// One memoized window partition: the footprint shards' member lists
  /// (window slot indices, ascending within and across shards). Keyed by the
  /// window's generalization profile — see RunInsertWindowImpl.
  struct WindowPartition {
    std::vector<std::vector<uint32_t>> shard_members;
  };

  FlatMap<GenericEdgePattern, uint32_t, GenericEdgePatternHash> pattern_ids_;
  uint32_t next_pattern_id_ = 0;
  bool reach_dirty_ = true;
  /// Generalization-profile -> shard partition memo. Full-key comparison (a
  /// hash collision here would merge/split shards — a correctness bug, not a
  /// perf miss); cleared with the reaches (MarkReachDirty) and bounded by
  /// kPartitionCacheMax.
  std::map<std::vector<uint64_t>, WindowPartition> partition_cache_;
  bool window_cache_enabled_ = false;
  std::unique_ptr<WindowJoinCache> window_cache_;
  std::atomic<uint64_t> final_join_passes_{0};
  std::atomic<uint64_t> shared_finalize_groups_{0};
  std::atomic<uint64_t> routed_candidates_{0};
  std::atomic<uint64_t> prefilter_rejects_{0};
  std::atomic<uint64_t> batch_tasks_{0};
  std::atomic<uint64_t> batch_steals_{0};
  std::atomic<uint64_t> footprint_cache_hits_{0};

  /// Signature-group planner state (shared finalization + routing targets):
  /// the groups and the qid -> group index. Rebuilt by EnsureFinalizeGroups
  /// on the coordinator; immutable while a window is in flight.
  bool shared_finalize_enabled_ = true;
  bool route_enabled_ = true;
  bool finalize_groups_dirty_ = true;
  std::vector<std::unique_ptr<FinalizeGroup>> finalize_groups_;
  std::unordered_map<QueryId, const FinalizeGroup*> group_of_query_;
};

}  // namespace gstream

#endif  // GSTREAM_ENGINE_VIEW_ENGINE_BASE_H_
