#include "graph/graph.h"

#include <algorithm>

namespace gstream {

namespace {
const std::vector<Graph::OutEdge> kNoOut;
const std::vector<Graph::InEdge> kNoIn;
}  // namespace

bool Graph::AddEdge(VertexId src, LabelId label, VertexId dst) {
  EdgeUpdate key{src, label, dst, UpdateOp::kAdd};
  if (!edge_set_.insert(key).second) return false;
  out_[src].push_back({label, dst});
  in_[dst].push_back({label, src});
  vertices_.insert(src);
  vertices_.insert(dst);
  return true;
}

bool Graph::RemoveEdge(VertexId src, LabelId label, VertexId dst) {
  EdgeUpdate key{src, label, dst, UpdateOp::kAdd};
  if (edge_set_.erase(key) == 0) return false;
  auto& outs = out_[src];
  outs.erase(std::find_if(outs.begin(), outs.end(),
                          [&](const OutEdge& e) {
                            return e.label == label && e.dst == dst;
                          }));
  auto& ins = in_[dst];
  ins.erase(std::find_if(ins.begin(), ins.end(),
                         [&](const InEdge& e) {
                           return e.label == label && e.src == src;
                         }));
  // Vertices are kept even when isolated: entity identity outlives edges.
  return true;
}

bool Graph::Apply(const EdgeUpdate& u) {
  if (u.op == UpdateOp::kAdd) return AddEdge(u.src, u.label, u.dst);
  return RemoveEdge(u.src, u.label, u.dst);
}

bool Graph::HasEdge(VertexId src, LabelId label, VertexId dst) const {
  return edge_set_.count(EdgeUpdate{src, label, dst, UpdateOp::kAdd}) > 0;
}

const std::vector<Graph::OutEdge>& Graph::Out(VertexId v) const {
  auto it = out_.find(v);
  return it == out_.end() ? kNoOut : it->second;
}

const std::vector<Graph::InEdge>& Graph::In(VertexId v) const {
  auto it = in_.find(v);
  return it == in_.end() ? kNoIn : it->second;
}

size_t Graph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += edge_set_.size() * (sizeof(EdgeUpdate) + 2 * sizeof(void*));
  bytes += vertices_.size() * (sizeof(VertexId) + 2 * sizeof(void*));
  for (const auto& [v, adj] : out_)
    bytes += sizeof(v) + adj.capacity() * sizeof(OutEdge) + 3 * sizeof(void*);
  for (const auto& [v, adj] : in_)
    bytes += sizeof(v) + adj.capacity() * sizeof(InEdge) + 3 * sizeof(void*);
  return bytes;
}

}  // namespace gstream
