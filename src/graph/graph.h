#ifndef GSTREAM_GRAPH_GRAPH_H_
#define GSTREAM_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"
#include "graph/update.h"

namespace gstream {

/// Attribute graph G = (V, E, l_V, l_E) (Definition 3.1): a directed labeled
/// multigraph. Vertices are identified by their interned label (entities);
/// parallel edges between the same vertex pair are allowed as long as their
/// edge labels differ. Duplicate (src, label, dst) triples are rejected so
/// that all engines see set semantics on the edge set.
class Graph {
 public:
  struct OutEdge {
    LabelId label;
    VertexId dst;
  };
  struct InEdge {
    LabelId label;
    VertexId src;
  };

  /// Applies an edge insertion. Returns false (no change) for duplicates.
  bool AddEdge(VertexId src, LabelId label, VertexId dst);

  /// Applies an edge deletion. Returns false if the edge was absent.
  bool RemoveEdge(VertexId src, LabelId label, VertexId dst);

  /// Applies an update (add or delete); returns whether the graph changed.
  bool Apply(const EdgeUpdate& u);

  bool HasEdge(VertexId src, LabelId label, VertexId dst) const;

  /// Outgoing adjacency of `v` (empty when unknown vertex).
  const std::vector<OutEdge>& Out(VertexId v) const;
  /// Incoming adjacency of `v` (empty when unknown vertex).
  const std::vector<InEdge>& In(VertexId v) const;

  size_t NumEdges() const { return edge_set_.size(); }
  size_t NumVertices() const { return vertices_.size(); }
  bool HasVertex(VertexId v) const { return vertices_.count(v) > 0; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::unordered_map<VertexId, std::vector<OutEdge>> out_;
  std::unordered_map<VertexId, std::vector<InEdge>> in_;
  std::unordered_set<EdgeUpdate, EdgeKeyHash, EdgeKeyEq> edge_set_;
  std::unordered_set<VertexId> vertices_;
};

}  // namespace gstream

#endif  // GSTREAM_GRAPH_GRAPH_H_
