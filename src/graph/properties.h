#ifndef GSTREAM_GRAPH_PROPERTIES_H_
#define GSTREAM_GRAPH_PROPERTIES_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/ids.h"

namespace gstream {

/// Vertex property store — the substrate of the paper's §4.3 property-graph
/// extension ("extending our solution for more general graph types, like
/// property graphs, entails ... the usage of a separate data structure to
/// appropriately index these constraints").
///
/// Properties are integer-valued attributes keyed by an interned name
/// (ages, counts, timestamps; categorical values intern their label).
/// Engines share one read-only store; query vertices may carry comparison
/// constraints against it, checked in a dedicated answering phase.
///
/// Contract: properties of a vertex are set before updates touching that
/// vertex are evaluated against constrained queries (the engines snapshot
/// nothing — late property edits would retroactively change what the
/// diff-based engines already counted).
class PropertyStore {
 public:
  void Set(VertexId vertex, LabelId key, int64_t value) {
    values_[{vertex, key}] = value;
  }

  std::optional<int64_t> Get(VertexId vertex, LabelId key) const {
    auto it = values_.find({vertex, key});
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  size_t size() const { return values_.size(); }

  size_t MemoryBytes() const {
    return sizeof(*this) +
           values_.size() * (sizeof(std::pair<VertexId, LabelId>) + sizeof(int64_t) +
                             2 * sizeof(void*)) +
           values_.bucket_count() * sizeof(void*);
  }

 private:
  std::unordered_map<std::pair<VertexId, LabelId>, int64_t, PairHash> values_;
};

}  // namespace gstream

#endif  // GSTREAM_GRAPH_PROPERTIES_H_
