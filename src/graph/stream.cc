#include "graph/stream.h"

#include <unordered_set>

namespace gstream {

Graph UpdateStream::ToGraph() const {
  Graph g;
  for (const auto& u : updates_) g.Apply(u);
  return g;
}

size_t UpdateStream::CountVertices(size_t n) const {
  std::unordered_set<VertexId> seen;
  if (n > updates_.size()) n = updates_.size();
  for (size_t i = 0; i < n; ++i) {
    seen.insert(updates_[i].src);
    seen.insert(updates_[i].dst);
  }
  return seen.size();
}

}  // namespace gstream
