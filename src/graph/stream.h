#ifndef GSTREAM_GRAPH_STREAM_H_
#define GSTREAM_GRAPH_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/interning.h"
#include "graph/graph.h"
#include "graph/update.h"

namespace gstream {

/// A graph stream S = (u_1, u_2, ..., u_t) (Definition 3.3): an ordered
/// sequence of updates over a shared label interner.
class UpdateStream {
 public:
  UpdateStream() = default;
  explicit UpdateStream(std::shared_ptr<StringInterner> interner)
      : interner_(std::move(interner)) {}

  void Append(const EdgeUpdate& u) { updates_.push_back(u); }

  const std::vector<EdgeUpdate>& updates() const { return updates_; }
  size_t size() const { return updates_.size(); }
  const EdgeUpdate& operator[](size_t i) const { return updates_[i]; }

  const std::shared_ptr<StringInterner>& interner() const { return interner_; }

  /// Truncates the stream to its first `n` updates.
  void Truncate(size_t n) {
    if (n < updates_.size()) updates_.resize(n);
  }

  /// Materializes the stream into a graph (final state after all updates).
  Graph ToGraph() const;

  /// Counts distinct vertices touched by the first `n` updates (the paper's
  /// |G_V| axis values in Figs. 12 and 14).
  size_t CountVertices(size_t n) const;

 private:
  std::shared_ptr<StringInterner> interner_;
  std::vector<EdgeUpdate> updates_;
};

}  // namespace gstream

#endif  // GSTREAM_GRAPH_STREAM_H_
