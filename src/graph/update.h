#ifndef GSTREAM_GRAPH_UPDATE_H_
#define GSTREAM_GRAPH_UPDATE_H_

#include <cstdint>
#include <tuple>

#include "common/hash.h"
#include "common/ids.h"

namespace gstream {

/// Kind of a stream operation. The paper's core model is insert-only
/// (Definition 3.2); deletions are the §4.3 extension and are supported by
/// the engines that implement `SupportsDeletion()`.
enum class UpdateOp : uint8_t { kAdd = 0, kDelete = 1 };

/// One streamed graph update `u_t = (e)` with `e = (s, t)` (Definition 3.2):
/// a labeled directed edge between two labeled vertices. Vertex labels
/// identify entities, so `src`/`dst` are interned vertex labels.
struct EdgeUpdate {
  VertexId src = kNoVertex;
  LabelId label = kNoLabel;
  VertexId dst = kNoVertex;
  UpdateOp op = UpdateOp::kAdd;

  /// Event time (0 = untimestamped). Carried for the temporal subsystem
  /// (src/time); excluded from equality — an edge's identity and effect on
  /// engine state are time-independent, only window expiry reads `ts`.
  uint64_t ts = 0;

  friend bool operator==(const EdgeUpdate& a, const EdgeUpdate& b) {
    return a.src == b.src && a.label == b.label && a.dst == b.dst && a.op == b.op;
  }
};

/// Hash over the edge identity (src, label, dst); `op` is excluded so the
/// same edge's add and delete hash alike in edge-set containers.
struct EdgeKeyHash {
  size_t operator()(const EdgeUpdate& e) const {
    size_t seed = 0;
    HashCombine(seed, e.src);
    HashCombine(seed, e.label);
    HashCombine(seed, e.dst);
    return seed;
  }
};

struct EdgeKeyEq {
  bool operator()(const EdgeUpdate& a, const EdgeUpdate& b) const {
    return a.src == b.src && a.label == b.label && a.dst == b.dst;
  }
};

}  // namespace gstream

#endif  // GSTREAM_GRAPH_UPDATE_H_
