#include "graphdb/executor.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {
namespace graphdb {

namespace {

/// Selectivity score of an edge given which vertices are bound: higher is
/// better (matched earlier).
int EdgeScore(const QueryPattern& q, const QueryPattern::Edge& e,
              const std::vector<bool>& bound) {
  int score = 0;
  auto endpoint = [&](uint32_t v) {
    if (bound[v]) return 4;                  // join against existing binding
    if (!q.vertex(v).is_var) return 3;       // literal: direct lookup
    return 0;                                // free variable
  };
  score += endpoint(e.src) + endpoint(e.dst);
  return score;
}

}  // namespace

ExecPlan PlanQuery(const QueryPattern& q) {
  const size_t n = q.NumEdges();
  ExecPlan plan;
  plan.edge_order.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<bool> bound(q.NumVertices(), false);
  // Literals are bound from the start.
  for (uint32_t v = 0; v < q.NumVertices(); ++v)
    if (!q.vertex(v).is_var) bound[v] = true;

  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    int best_score = -1;
    for (uint32_t e = 0; e < n; ++e) {
      if (used[e]) continue;
      int score = EdgeScore(q, q.edge(e), bound);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(e);
      }
    }
    GS_CHECK(best >= 0);
    used[best] = true;
    plan.edge_order.push_back(static_cast<uint32_t>(best));
    bound[q.edge(best).src] = true;
    bound[q.edge(best).dst] = true;
  }
  return plan;
}

namespace {

/// Shared recursive enumeration core. `emit` returns false to stop.
class Search {
 public:
  Search(const GraphStore& store, const QueryPattern& q, const ExecPlan& plan,
         const std::function<bool(const std::vector<VertexId>&)>& emit, Budget* budget)
      : store_(store), q_(q), plan_(plan), emit_(emit), budget_(budget) {
    assignment_.assign(q.NumVertices(), kNoVertex);
    for (uint32_t v = 0; v < q.NumVertices(); ++v)
      if (!q.vertex(v).is_var) assignment_[v] = q.vertex(v).literal;
  }

  void Run() { Step(0); }

  bool aborted() const { return aborted_; }

 private:
  /// Returns false to propagate "stop everything".
  bool Step(size_t depth) {
    if (budget_ != nullptr && budget_->Exceeded()) {
      aborted_ = true;
      return false;
    }
    if (depth == plan_.edge_order.size()) return emit_(assignment_);

    const auto& e = q_.edge(plan_.edge_order[depth]);
    VertexId s = assignment_[e.src];
    VertexId t = assignment_[e.dst];

    if (s != kNoVertex && t != kNoVertex) {
      if (!store_.HasEdge(s, e.label, t)) return true;
      return Step(depth + 1);
    }
    if (s != kNoVertex) {
      for (VertexId cand : store_.OutNeighbors(s, e.label)) {
        // Self-referencing edge (src == dst vertex) already handled: s bound
        // implies t bound in that case.
        assignment_[e.dst] = cand;
        if (!Step(depth + 1)) {
          assignment_[e.dst] = kNoVertex;
          return false;
        }
      }
      assignment_[e.dst] = kNoVertex;
      return true;
    }
    if (t != kNoVertex) {
      for (VertexId cand : store_.InNeighbors(t, e.label)) {
        assignment_[e.src] = cand;
        if (!Step(depth + 1)) {
          assignment_[e.src] = kNoVertex;
          return false;
        }
      }
      assignment_[e.src] = kNoVertex;
      return true;
    }
    // Neither endpoint bound: label scan. For a self-loop query edge
    // (e.src == e.dst) only (x, x) rows qualify.
    for (const auto& [cs, ct] : store_.EdgesByLabel(e.label)) {
      if (e.src == e.dst) {
        if (cs != ct) continue;
        assignment_[e.src] = cs;
      } else {
        assignment_[e.src] = cs;
        assignment_[e.dst] = ct;
      }
      bool keep_going = Step(depth + 1);
      assignment_[e.src] = kNoVertex;
      if (e.src != e.dst) assignment_[e.dst] = kNoVertex;
      if (!keep_going) return false;
    }
    return true;
  }

  const GraphStore& store_;
  const QueryPattern& q_;
  const ExecPlan& plan_;
  const std::function<bool(const std::vector<VertexId>&)>& emit_;
  Budget* budget_;
  std::vector<VertexId> assignment_;
  bool aborted_ = false;
};

}  // namespace

uint64_t MatchExecutor::CountMatches(const QueryPattern& q, const ExecPlan& plan,
                                     uint64_t limit, Budget* budget) const {
  uint64_t count = 0;
  auto emit = [&](const std::vector<VertexId>&) {
    ++count;
    return count < limit;
  };
  std::function<bool(const std::vector<VertexId>&)> cb = emit;
  Search search(*store_, q, plan, cb, budget);
  search.Run();
  return count;
}

void MatchExecutor::Enumerate(
    const QueryPattern& q, const ExecPlan& plan,
    const std::function<bool(const std::vector<VertexId>&)>& callback,
    Budget* budget) const {
  Search search(*store_, q, plan, callback, budget);
  search.Run();
}

}  // namespace graphdb
}  // namespace gstream
