#ifndef GSTREAM_GRAPHDB_EXECUTOR_H_
#define GSTREAM_GRAPHDB_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "engine/budget.h"
#include "graphdb/store.h"
#include "query/pattern.h"

namespace gstream {
namespace graphdb {

/// A compiled execution plan: the order in which query edges are matched.
/// Mirrors Neo4j's cached Cypher plans (paper §5.3: "the parameters syntax
/// enables the execution planner to cache the query plans for future use").
struct ExecPlan {
  std::vector<uint32_t> edge_order;
};

/// Plans a query greedily: start from the most selective edge (literal
/// endpoints first), then repeatedly take the edge with the most already-
/// bound endpoints (ties: more literals, then lower index). Disconnected
/// patterns fall back to a fresh seed per component.
ExecPlan PlanQuery(const QueryPattern& q);

/// Backtracking subgraph-matching executor over a `GraphStore`: the query
/// runtime of the Neo4j-substitute baseline. Matching semantics are
/// homomorphic, identical to the view-based engines.
class MatchExecutor {
 public:
  explicit MatchExecutor(const GraphStore* store) : store_(store) {}

  /// Counts distinct homomorphisms of `q` (each assignment enumerated exactly
  /// once). Stops early when `limit` is reached or `budget` (optional)
  /// expires; both report via the saturated return value.
  uint64_t CountMatches(const QueryPattern& q, const ExecPlan& plan,
                        uint64_t limit = UINT64_MAX, Budget* budget = nullptr) const;

  /// Enumerates homomorphisms; `callback` receives the per-vertex assignment
  /// and returns false to stop enumeration.
  void Enumerate(const QueryPattern& q, const ExecPlan& plan,
                 const std::function<bool(const std::vector<VertexId>&)>& callback,
                 Budget* budget = nullptr) const;

 private:
  const GraphStore* store_;
};

}  // namespace graphdb
}  // namespace gstream

#endif  // GSTREAM_GRAPHDB_EXECUTOR_H_
