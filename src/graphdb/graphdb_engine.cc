#include "graphdb/graphdb_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mem_tracker.h"

namespace gstream {
namespace graphdb {

GraphDbEngine::GraphDbEngine() : executor_(&store_) {}

uint64_t GraphDbEngine::CountQuery(const QueryEntry& entry) {
  if (!entry.pattern.HasConstraints())
    return executor_.CountMatches(entry.pattern, entry.plan, UINT64_MAX, budget_);
  uint64_t count = 0;
  executor_.Enumerate(
      entry.pattern, entry.plan,
      [&](const std::vector<VertexId>& assignment) {
        if (SatisfiesConstraints(entry.pattern, assignment.data())) ++count;
        return true;
      },
      budget_);
  return count;
}

void GraphDbEngine::AddQueryImpl(QueryId qid, const QueryPattern& q) {
  QueryEntry entry;
  entry.pattern = q;
  entry.plan = PlanQuery(q);
  // Queries registered mid-stream start from the current match count so they
  // only report future matches.
  if (store_.NumEdges() > 0) entry.last_count = CountQuery(entry);
  for (uint32_t e = 0; e < q.NumEdges(); ++e)
    edge_ind_[q.Genericized(e)].push_back(qid);
  queries_.emplace(qid, std::move(entry));
}

void GraphDbEngine::RemoveQueryImpl(QueryId qid) {
  const QueryPattern pattern = std::move(queries_.at(qid).pattern);
  queries_.erase(qid);
  // One posting per edge occurrence was registered; release symmetrically.
  for (uint32_t e = 0; e < pattern.NumEdges(); ++e) {
    auto it = edge_ind_.find(pattern.Genericized(e));
    GS_CHECK(it != edge_ind_.end());
    it->second.erase(std::find(it->second.begin(), it->second.end(), qid));
    if (it->second.empty()) edge_ind_.erase(it);
  }
}

UpdateResult GraphDbEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    if (!store_.RemoveEdge(u.src, u.label, u.dst)) return result;  // absent
    result.changed = true;
    // Deletions cannot create embeddings; refresh affected counts downward.
    for (const auto& g : Generalizations(u)) {
      auto it = edge_ind_.find(g);
      if (it == edge_ind_.end()) continue;
      for (QueryId qid : it->second) {
        auto& entry = queries_.at(qid);
        entry.last_count = CountQuery(entry);
      }
    }
    return result;
  }

  if (!store_.AddEdge(u.src, u.label, u.dst)) return result;  // duplicate
  result.changed = true;

  // Affected queries via the inverted pattern index.
  std::vector<QueryId> affected;
  for (const auto& g : Generalizations(u)) {
    auto it = edge_ind_.find(g);
    if (it == edge_ind_.end()) continue;
    affected.insert(affected.end(), it->second.begin(), it->second.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

  for (QueryId qid : affected) {
    if (BudgetExceeded()) {
      result.timed_out = true;
      break;
    }
    auto& entry = queries_.at(qid);
    uint64_t count = CountQuery(entry);
    if (budget_ != nullptr && budget_->ExceededNow()) {
      result.timed_out = true;
      break;
    }
    GS_DCHECK(count >= entry.last_count);
    result.AddQueryCount(qid, count - entry.last_count);
    entry.last_count = count;
  }
  return result;
}

size_t GraphDbEngine::MemoryBytes() const {
  size_t bytes = sizeof(*this) + store_.MemoryBytes();
  for (const auto& [qid, entry] : queries_) {
    bytes += sizeof(qid) + entry.pattern.MemoryBytes() +
             mem::OfVector(entry.plan.edge_order) + sizeof(entry.last_count) +
             2 * sizeof(void*);
  }
  for (const auto& [p, qids] : edge_ind_)
    bytes += sizeof(p) + mem::OfVector(qids) + 2 * sizeof(void*);
  return bytes;
}

}  // namespace graphdb
}  // namespace gstream
