#ifndef GSTREAM_GRAPHDB_GRAPHDB_ENGINE_H_
#define GSTREAM_GRAPHDB_GRAPHDB_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "graphdb/executor.h"
#include "graphdb/store.h"
#include "query/edge_pattern.h"

namespace gstream {
namespace graphdb {

/// The Neo4j-substitute baseline (paper §5.3): the whole graph lives in an
/// embedded store; an inverted index over genericized edge patterns
/// (`edgeInd`) maps an incoming update to the affected queries, which are
/// then *re-executed in full* against the store with cached execution plans.
/// New-embedding counts are obtained by diffing against the count at each
/// query's previous evaluation (sound because embeddings are monotone under
/// edge insertions and any new embedding makes its queries "affected").
class GraphDbEngine : public ContinuousEngine {
 public:
  GraphDbEngine();

  std::string name() const override { return "GraphDB"; }
  UpdateResult ApplyUpdate(const EdgeUpdate& u) override;
  bool HasQuery(QueryId qid) const override { return queries_.count(qid) > 0; }
  size_t NumQueries() const override { return queries_.size(); }
  size_t MemoryBytes() const override;

  /// Direct access for examples and the test suite.
  const GraphStore& store() const { return store_; }

 protected:
  void AddQueryImpl(QueryId qid, const QueryPattern& q) override;
  /// Removal drops the query's plan/counters and its edgeInd postings; the
  /// graph store itself is stream state and stays.
  void RemoveQueryImpl(QueryId qid) override;

 private:
  struct QueryEntry {
    QueryPattern pattern;
    ExecPlan plan;
    uint64_t last_count = 0;
  };

  /// Full re-execution of one query; applies §4.3 property constraints as a
  /// result filter when the query carries any.
  uint64_t CountQuery(const QueryEntry& entry);

  GraphStore store_;
  MatchExecutor executor_;
  std::unordered_map<QueryId, QueryEntry> queries_;
  std::unordered_map<GenericEdgePattern, std::vector<QueryId>, GenericEdgePatternHash>
      edge_ind_;
};

}  // namespace graphdb
}  // namespace gstream

#endif  // GSTREAM_GRAPHDB_GRAPHDB_ENGINE_H_
