#include "graphdb/store.h"

#include <algorithm>

namespace gstream {
namespace graphdb {

namespace {
const std::vector<VertexId> kNoVertices;
const std::vector<std::pair<VertexId, VertexId>> kNoEdges;
}  // namespace

bool GraphStore::AddEdge(VertexId src, LabelId label, VertexId dst) {
  EdgeUpdate key{src, label, dst, UpdateOp::kAdd};
  if (!edges_.insert(key).second) return false;
  out_[{src, label}].push_back(dst);
  in_[{dst, label}].push_back(src);
  by_label_[label].emplace_back(src, dst);
  vertices_.insert(src);
  vertices_.insert(dst);
  return true;
}

bool GraphStore::RemoveEdge(VertexId src, LabelId label, VertexId dst) {
  EdgeUpdate key{src, label, dst, UpdateOp::kAdd};
  if (edges_.erase(key) == 0) return false;
  auto& outs = out_[{src, label}];
  outs.erase(std::find(outs.begin(), outs.end(), dst));
  auto& ins = in_[{dst, label}];
  ins.erase(std::find(ins.begin(), ins.end(), src));
  auto& scan = by_label_[label];
  scan.erase(std::find(scan.begin(), scan.end(), std::make_pair(src, dst)));
  return true;
}

bool GraphStore::HasEdge(VertexId src, LabelId label, VertexId dst) const {
  return edges_.count(EdgeUpdate{src, label, dst, UpdateOp::kAdd}) > 0;
}

const std::vector<VertexId>& GraphStore::OutNeighbors(VertexId v, LabelId l) const {
  auto it = out_.find({v, l});
  return it == out_.end() ? kNoVertices : it->second;
}

const std::vector<VertexId>& GraphStore::InNeighbors(VertexId v, LabelId l) const {
  auto it = in_.find({v, l});
  return it == in_.end() ? kNoVertices : it->second;
}

const std::vector<std::pair<VertexId, VertexId>>& GraphStore::EdgesByLabel(
    LabelId l) const {
  auto it = by_label_.find(l);
  return it == by_label_.end() ? kNoEdges : it->second;
}

size_t GraphStore::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  auto adj_bytes = [](const auto& m) {
    size_t b = m.bucket_count() * sizeof(void*);
    for (const auto& [k, v] : m)
      b += sizeof(k) + sizeof(v) + v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type) +
           2 * sizeof(void*);
    return b;
  };
  bytes += adj_bytes(out_);
  bytes += adj_bytes(in_);
  bytes += adj_bytes(by_label_);
  bytes += edges_.size() * (sizeof(EdgeUpdate) + 2 * sizeof(void*)) +
           edges_.bucket_count() * sizeof(void*);
  bytes += vertices_.size() * (sizeof(VertexId) + 2 * sizeof(void*)) +
           vertices_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace graphdb
}  // namespace gstream
