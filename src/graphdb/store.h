#ifndef GSTREAM_GRAPHDB_STORE_H_
#define GSTREAM_GRAPHDB_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/ids.h"
#include "graph/update.h"

namespace gstream {
namespace graphdb {

/// The storage layer of the Neo4j-substitute baseline (paper §5.3): an
/// embedded in-memory property-graph store that — unlike the view-based
/// engines — retains the *entire* graph, with per-label adjacency and edge
/// scans indexed ("the graph database builds indexes on all labels of the
/// schema allowing for faster look up times").
class GraphStore {
 public:
  /// Inserts one edge; returns false on duplicates.
  bool AddEdge(VertexId src, LabelId label, VertexId dst);

  /// Deletes one edge; returns false when absent.
  bool RemoveEdge(VertexId src, LabelId label, VertexId dst);

  bool HasEdge(VertexId src, LabelId label, VertexId dst) const;

  /// Targets of label-`l` edges out of `v` (empty when none).
  const std::vector<VertexId>& OutNeighbors(VertexId v, LabelId l) const;

  /// Sources of label-`l` edges into `v`.
  const std::vector<VertexId>& InNeighbors(VertexId v, LabelId l) const;

  /// All (src, dst) pairs with label `l` — the label scan index.
  const std::vector<std::pair<VertexId, VertexId>>& EdgesByLabel(LabelId l) const;

  size_t NumEdges() const { return edges_.size(); }
  size_t NumVertices() const { return vertices_.size(); }
  bool HasVertex(VertexId v) const { return vertices_.count(v) > 0; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  using VKey = std::pair<VertexId, LabelId>;

  std::unordered_map<VKey, std::vector<VertexId>, PairHash> out_;
  std::unordered_map<VKey, std::vector<VertexId>, PairHash> in_;
  std::unordered_map<LabelId, std::vector<std::pair<VertexId, VertexId>>> by_label_;
  std::unordered_set<EdgeUpdate, EdgeKeyHash, EdgeKeyEq> edges_;
  std::unordered_set<VertexId> vertices_;
};

}  // namespace graphdb
}  // namespace gstream

#endif  // GSTREAM_GRAPHDB_STORE_H_
