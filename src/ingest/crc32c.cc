#include "ingest/crc32c.h"

namespace gstream {
namespace ingest {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected.

struct Crc32cTables {
  uint32_t t[4][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const Crc32cTables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace ingest
}  // namespace gstream
