#ifndef GSTREAM_INGEST_CRC32C_H_
#define GSTREAM_INGEST_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace gstream {
namespace ingest {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) — the checksum the
/// `.gsb` stream format uses for its header and per-block payloads. Software
/// slicing-by-4 implementation: portable (no SSE4.2 requirement), ~1 GB/s,
/// and bit-identical across every build flavor so checksums written on one
/// machine verify on any other.
///
/// `seed` chains partial computations: Crc32c(b, nb, Crc32c(a, na)) equals
/// Crc32c over the concatenation a||b.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_CRC32C_H_
