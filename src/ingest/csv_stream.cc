#include "ingest/csv_stream.h"

#include <cstdio>
#include <fstream>

namespace gstream {
namespace ingest {

std::string TrimWs(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t\r");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

bool ParseEdgeBody(const std::string& line, size_t start, UpdateOp op,
                   StringInterner& interner, EdgeUpdate* out) {
  size_t c1 = line.find(',', start);
  size_t c2 = c1 == std::string::npos ? std::string::npos : line.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  std::string src = TrimWs(line.substr(start, c1 - start));
  std::string label = TrimWs(line.substr(c1 + 1, c2 - c1 - 1));
  std::string dst = TrimWs(line.substr(c2 + 1));
  if (src.empty() || label.empty() || dst.empty()) return false;
  *out = {interner.Intern(src), interner.Intern(label), interner.Intern(dst), op};
  return true;
}

bool LoadCsvStream(const std::string& path, StringInterner& interner,
                   UpdateStream& stream) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open stream file '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    UpdateOp op = UpdateOp::kAdd;
    if (line[start] == '-') {
      op = UpdateOp::kDelete;
      ++start;
    }
    EdgeUpdate u;
    if (!ParseEdgeBody(line, start, op, interner, &u)) {
      std::fprintf(stderr, "%s:%zu: expected 'src,label,dst'\n", path.c_str(), lineno);
      return false;
    }
    stream.Append(u);
  }
  return true;
}

}  // namespace ingest
}  // namespace gstream
