#ifndef GSTREAM_INGEST_CSV_STREAM_H_
#define GSTREAM_INGEST_CSV_STREAM_H_

#include <string>

#include "common/interning.h"
#include "graph/stream.h"
#include "graph/update.h"

namespace gstream {
namespace ingest {

/// Text edge-stream parsing shared by gstream_cli and gstream_encode: one
/// "src,label,dst" triple per line, a leading '-' marks a deletion, '#'
/// starts a comment line.

/// `s` without leading/trailing spaces, tabs, and carriage returns.
std::string TrimWs(const std::string& s);

/// Parses one "src,label,dst" edge body at `line[start..]` (the leading '-'
/// already consumed into `op`). Returns false on malformed input.
bool ParseEdgeBody(const std::string& line, size_t start, UpdateOp op,
                   StringInterner& interner, EdgeUpdate* out);

/// Parses a whole CSV edge-stream file into `stream`. Returns false (with a
/// message on stderr) on I/O failure or a malformed line.
bool LoadCsvStream(const std::string& path, StringInterner& interner,
                   UpdateStream& stream);

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_CSV_STREAM_H_
