#include "ingest/fault_injector.h"

#include <algorithm>
#include <utility>

namespace gstream {
namespace ingest {

void FaultInjector::FlipBytes(std::vector<uint8_t>& image, size_t n,
                              bool anywhere) {
  const size_t lo = anywhere ? 0 : std::min(image.size(), kGsbHeaderBytes);
  if (lo >= image.size()) return;
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = lo + static_cast<size_t>(rng_.Next(image.size() - lo));
    uint8_t mask = 0;
    while (mask == 0) mask = static_cast<uint8_t>(rng_.Next(256));
    image[pos] ^= mask;
  }
}

void FaultInjector::FlipRecordBytes(std::vector<uint8_t>& image, size_t n) {
  std::vector<std::pair<uint64_t, uint64_t>> payloads;
  for (const auto& [off, len] : BlockSpans(image)) {
    if (image[off + 2] != static_cast<uint8_t>(GsbBlockKind::kRecords)) continue;
    if (len <= kGsbBlockHeaderBytes) continue;
    payloads.emplace_back(off + kGsbBlockHeaderBytes, len - kGsbBlockHeaderBytes);
  }
  if (payloads.empty()) return;
  for (size_t i = 0; i < n; ++i) {
    const auto [off, len] = payloads[rng_.Next(payloads.size())];
    uint8_t mask = 0;
    while (mask == 0) mask = static_cast<uint8_t>(rng_.Next(256));
    image[off + rng_.Next(len)] ^= mask;
  }
}

void FaultInjector::Truncate(std::vector<uint8_t>& image, size_t n) const {
  image.resize(image.size() - std::min(n, image.size()));
}

std::vector<std::pair<uint64_t, uint64_t>> FaultInjector::BlockSpans(
    const std::vector<uint8_t>& image) {
  std::vector<std::pair<uint64_t, uint64_t>> spans;
  uint64_t pos = kGsbHeaderBytes;
  while (pos + kGsbBlockHeaderBytes <= image.size()) {
    if (GetU16(image.data() + pos) != kGsbBlockMagic) break;
    const uint64_t len =
        kGsbBlockHeaderBytes + GetU32(image.data() + pos + 8);
    if (pos + len > image.size()) break;
    spans.emplace_back(pos, len);
    pos += len;
  }
  return spans;
}

void FaultInjector::DuplicateRandomBlock(std::vector<uint8_t>& image) {
  const auto spans = BlockSpans(image);
  if (spans.empty()) return;
  const auto [off, len] = spans[rng_.Next(spans.size())];
  std::vector<uint8_t> copy(image.begin() + off, image.begin() + off + len);
  image.insert(image.begin() + off + len, copy.begin(), copy.end());
}

void FaultInjector::SwapAdjacentBlocks(std::vector<uint8_t>& image) {
  const auto spans = BlockSpans(image);
  if (spans.size() < 2) return;
  const size_t i = rng_.Next(spans.size() - 1);
  const auto [off_a, len_a] = spans[i];
  const auto [off_b, len_b] = spans[i + 1];
  std::vector<uint8_t> a(image.begin() + off_a, image.begin() + off_a + len_a);
  std::vector<uint8_t> b(image.begin() + off_b, image.begin() + off_b + len_b);
  std::copy(b.begin(), b.end(), image.begin() + off_a);
  std::copy(a.begin(), a.end(), image.begin() + off_a + len_b);
}

WireFaultInjector::Action WireFaultInjector::OnFrame(
    std::vector<uint8_t> frame) {
  Action out;
  ++frame_index_;

  if (holding_) {
    // The previous frame was held back: this frame goes first (the swap),
    // then the held one — a reordered transport.
    holding_ = false;
    ++frames_reordered_;
    out.chunks.push_back(std::move(frame));
    out.chunks.push_back(std::move(held_));
    held_.clear();
    return out;
  }

  if (cfg_.delay_every > 0 && frame_index_ % cfg_.delay_every == 0)
    out.delay_micros = cfg_.delay_micros;

  if (cfg_.tear_frame > 0 && frame_index_ == cfg_.tear_frame &&
      frame.size() > 1) {
    const size_t keep = 1 + static_cast<size_t>(rng_.Next(frame.size() - 1));
    frame.resize(keep);
    ++frames_torn_;
    out.chunks.push_back(std::move(frame));
    out.drop_connection = true;
    return out;
  }

  if (cfg_.reorder_every > 0 && frame_index_ % cfg_.reorder_every == 0) {
    held_ = std::move(frame);
    holding_ = true;
    return out;  // nothing written yet; released with the next frame
  }

  if (cfg_.dup_every > 0 && frame_index_ % cfg_.dup_every == 0) {
    ++frames_duplicated_;
    out.chunks.push_back(frame);
  }
  out.chunks.push_back(std::move(frame));
  return out;
}

WireFaultInjector::Action WireFaultInjector::Flush() {
  Action out;
  if (holding_) {
    holding_ = false;
    out.chunks.push_back(std::move(held_));
    held_.clear();
  }
  return out;
}

bool WireFaultInjector::TakeHandshakeReset() {
  if (handshake_resets_fired_ >= cfg_.handshake_resets) return false;
  ++handshake_resets_fired_;
  return true;
}

}  // namespace ingest
}  // namespace gstream
