#ifndef GSTREAM_INGEST_FAULT_INJECTOR_H_
#define GSTREAM_INGEST_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace ingest {

/// Deterministic corruption of a `.gsb` byte image (tests, the CI fault
/// smoke leg, and the CLI's `--fault-*` flags). Seeded: one seed -> one
/// corrupted image, so every failure is replayable. The injector mutates a
/// copy of the bytes before they reach the reader — it models storage and
/// transport faults (bit rot, torn writes, duplicated / reordered chunks),
/// not reader bugs.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// XORs `n` random bytes (strictly after the file header, so the stream
  /// still opens and the per-block integrity machinery is what gets tested;
  /// pass `anywhere = true` to also target the header).
  void FlipBytes(std::vector<uint8_t>& image, size_t n, bool anywhere = false);

  /// XORs `n` random bytes inside *record*-block payloads only. Dictionary
  /// corruption is fatal by design (an id shift would silently remap every
  /// subsequent record), so tests of the skip-with-quarantine path corrupt
  /// records specifically. No-op when the image has no record blocks.
  void FlipRecordBytes(std::vector<uint8_t>& image, size_t n);

  /// Truncates `n` bytes off the tail (torn final write).
  void Truncate(std::vector<uint8_t>& image, size_t n) const;

  /// Duplicates one whole block (header + payload) in place, immediately
  /// after itself — the classic at-least-once transport fault. The reader
  /// must not double-count its records. No-op when the image has no blocks.
  void DuplicateRandomBlock(std::vector<uint8_t>& image);

  /// Swaps two adjacent blocks (reordered transport). No-op when the image
  /// has fewer than two blocks.
  void SwapAdjacentBlocks(std::vector<uint8_t>& image);

 private:
  /// Walks the (uncorrupted) block framing; returns {offset, total_len}
  /// per block, empty on malformed input.
  static std::vector<std::pair<uint64_t, uint64_t>> BlockSpans(
      const std::vector<uint8_t>& image);

  Rng rng_;
};

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_FAULT_INJECTOR_H_
