#ifndef GSTREAM_INGEST_FAULT_INJECTOR_H_
#define GSTREAM_INGEST_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace ingest {

/// Deterministic corruption of a `.gsb` byte image (tests, the CI fault
/// smoke leg, and the CLI's `--fault-*` flags). Seeded: one seed -> one
/// corrupted image, so every failure is replayable. The injector mutates a
/// copy of the bytes before they reach the reader — it models storage and
/// transport faults (bit rot, torn writes, duplicated / reordered chunks),
/// not reader bugs.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// XORs `n` random bytes (strictly after the file header, so the stream
  /// still opens and the per-block integrity machinery is what gets tested;
  /// pass `anywhere = true` to also target the header).
  void FlipBytes(std::vector<uint8_t>& image, size_t n, bool anywhere = false);

  /// XORs `n` random bytes inside *record*-block payloads only. Dictionary
  /// corruption is fatal by design (an id shift would silently remap every
  /// subsequent record), so tests of the skip-with-quarantine path corrupt
  /// records specifically. No-op when the image has no record blocks.
  void FlipRecordBytes(std::vector<uint8_t>& image, size_t n);

  /// Truncates `n` bytes off the tail (torn final write).
  void Truncate(std::vector<uint8_t>& image, size_t n) const;

  /// Duplicates one whole block (header + payload) in place, immediately
  /// after itself — the classic at-least-once transport fault. The reader
  /// must not double-count its records. No-op when the image has no blocks.
  void DuplicateRandomBlock(std::vector<uint8_t>& image);

  /// Swaps two adjacent blocks (reordered transport). No-op when the image
  /// has fewer than two blocks.
  void SwapAdjacentBlocks(std::vector<uint8_t>& image);

 private:
  /// Walks the (uncorrupted) block framing; returns {offset, total_len}
  /// per block, empty on malformed input.
  static std::vector<std::pair<uint64_t, uint64_t>> BlockSpans(
      const std::vector<uint8_t>& image);

  Rng rng_;
};

/// Network-side faults for the socket protocol: applied by the client
/// library to its *outgoing* frame stream (tests, `gstream_client
/// --fault-*`). Deterministic like FaultInjector — one seed + config -> one
/// fault schedule — so every kill-and-resume failure is replayable. Counts
/// are per logical frame across the connection's lifetime; reconnects keep
/// counting (the schedule spans the whole session).
struct WireFaultConfig {
  /// Tear the Nth frame (1-based): write a random strict prefix of its
  /// bytes, then hard-close the connection. 0 = never.
  uint64_t tear_frame = 0;
  /// Write every Nth frame twice (at-least-once transport). 0 = never.
  uint64_t dup_every = 0;
  /// Swap every Nth frame with its successor (reordered transport; the
  /// server closes on the sequence gap and the client resumes). 0 = never.
  uint64_t reorder_every = 0;
  /// Sleep this long before every `delay_every`-th frame (stalled link —
  /// drives heartbeat/idle machinery). 0 = never.
  uint64_t delay_every = 0;
  int delay_micros = 0;
  /// Reset (hard-close) the first N connection attempts mid-handshake,
  /// after the Hello frame is partially written.
  uint32_t handshake_resets = 0;

  bool any() const {
    return tear_frame || dup_every || reorder_every || delay_every ||
           handshake_resets;
  }
};

class WireFaultInjector {
 public:
  WireFaultInjector(uint64_t seed, const WireFaultConfig& cfg)
      : rng_(seed), cfg_(cfg) {}

  /// What to do with the next outgoing frame: write `chunks` in order
  /// (possibly a torn prefix, a duplicate, or this frame swapped behind the
  /// next), sleeping `delay_micros` first, then hard-close the connection if
  /// `drop_connection`.
  struct Action {
    std::vector<std::vector<uint8_t>> chunks;
    int delay_micros = 0;
    bool drop_connection = false;
  };
  Action OnFrame(std::vector<uint8_t> frame);

  /// Releases a frame held back for reordering with no successor to swap
  /// with (the stream ended on a reorder boundary). Reordering models a
  /// transport that delays frames, never one that drops them — callers must
  /// flush at end of stream or the tail would be silently lost.
  Action Flush();

  /// Drops a held frame outright: the connection it belonged to died, so the
  /// frame never reached the wire and the caller's at-least-once resend will
  /// cover its records. Releasing it onto the NEXT connection instead would
  /// interleave stale bytes into a fresh stream (an impossible transport).
  void DiscardHeld() {
    holding_ = false;
    held_.clear();
  }

  /// True when this connection attempt should be reset mid-handshake
  /// (consumes one of the configured resets).
  bool TakeHandshakeReset();

  /// Frames whose injected faults dropped the connection / duplicated bytes;
  /// tests assert the faults actually fired.
  uint64_t frames_torn() const { return frames_torn_; }
  uint64_t frames_duplicated() const { return frames_duplicated_; }
  uint64_t frames_reordered() const { return frames_reordered_; }
  uint64_t handshake_resets_fired() const { return handshake_resets_fired_; }

 private:
  Rng rng_;
  WireFaultConfig cfg_;
  uint64_t frame_index_ = 0;  ///< 1-based count of frames seen.
  std::vector<uint8_t> held_;  ///< Frame held back for reordering.
  bool holding_ = false;
  uint64_t frames_torn_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t frames_reordered_ = 0;
  uint64_t handshake_resets_fired_ = 0;
};

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_FAULT_INJECTOR_H_
