#ifndef GSTREAM_INGEST_GSB_FORMAT_H_
#define GSTREAM_INGEST_GSB_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace gstream {
namespace ingest {

/// The versioned binary graph-stream format `.gsb` (DESIGN.md §10).
///
/// Layout (all integers little-endian, fixed width):
///
///   file header (28 B)
///     magic      4 B   "GSB1"
///     version    u32   1
///     flags      u32   reserved, 0
///     dict_count u32   total dictionary strings (interner size)
///     rec_count  u64   total record frames in the file
///     header_crc u32   CRC32C over the preceding 24 bytes
///
///   blocks, back to back until EOF; block header (16 B):
///     magic       u16  0xB10C
///     kind        u8   1 = dictionary, 2 = records
///     reserved    u8   0
///     seq         u32  block index within the file, dense from 0
///     payload_len u32  payload bytes (<= kGsbMaxPayload)
///     payload_crc u32  CRC32C over the payload bytes
///
///   dictionary payload: u32 first_id, u32 count, then count strings of
///     {u32 len, bytes}, interner-id order. Replaying the dictionary blocks
///     in order reconstructs the writer's interner with identical ids, which
///     is what makes record frames (32-bit interned ids) and snapshots
///     position-independent of the reading process.
///
///   record payload: u32 count, then count frames of 13 bytes each:
///     {u8 op (0 = add, 1 = delete), u32 src, u32 label, u32 dst}.
///
///   timestamped record payload (kind 3, format v2): u32 count, then count
///     frames of 21 bytes each: {u8 op, u32 src, u32 label, u32 dst, u64 ts}.
///     Files containing kind-3 blocks carry version 2 and the timestamps
///     flag; an untimestamped v2 writer output stays byte-identical to v1,
///     and v1 files decode under v2 readers with every `ts` zero.
///
/// Integrity model: the file header is self-checksummed; every payload is
/// checksummed; block headers are validated structurally (magic, kind, seq
/// monotonicity, bounded payload_len that fits the file). A corrupt block
/// header loses framing, and the reader resynchronizes by scanning for the
/// next structurally valid header with a plausible seq — the skipped range
/// is quarantined, never silently consumed.

inline constexpr uint8_t kGsbMagic[4] = {'G', 'S', 'B', '1'};
inline constexpr uint32_t kGsbVersion = 1;
/// Format v2 = v1 plus the optional per-record timestamp column (kind-3
/// blocks). Writers emit v2 only when some record is timestamped; readers
/// accept both.
inline constexpr uint32_t kGsbVersionTs = 2;

/// Header flag bit: the file is an append-only *streaming journal* (the
/// socket server's write-ahead log). The header is written once at journal
/// creation, so `dict_count` / `record_count` are 0 and not authoritative —
/// readers take both from the scanned blocks instead of the header. The
/// remaining flag bits above kGsbFlagSaltShift carry a per-journal random
/// salt so two journals never share a `GsbIdentity` (the header CRC differs),
/// which keeps snapshot identity checks meaningful for journals.
inline constexpr uint32_t kGsbFlagStreaming = 1u << 0;
/// Header flag bit: some record block carries the v2 timestamp column.
inline constexpr uint32_t kGsbFlagTimestamps = 1u << 1;
inline constexpr uint32_t kGsbFlagSaltShift = 8;
inline constexpr size_t kGsbHeaderBytes = 28;
inline constexpr uint16_t kGsbBlockMagic = 0xB10C;
inline constexpr size_t kGsbBlockHeaderBytes = 16;
inline constexpr uint32_t kGsbMaxPayload = 16u << 20;
inline constexpr size_t kGsbRecordBytes = 13;    // op + src + label + dst
inline constexpr size_t kGsbRecordTsBytes = 21;  // ... + u64 ts
inline constexpr uint32_t kGsbMaxStringLen = 1u << 20;

enum class GsbBlockKind : uint8_t { kDict = 1, kRecords = 2, kRecordsTs = 3 };

// ---------------------------------------------------------------- LE codecs

inline void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
inline void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

// ------------------------------------------------------------------ headers

struct GsbHeader {
  uint32_t version = kGsbVersion;
  uint32_t flags = 0;
  uint32_t dict_count = 0;
  uint64_t record_count = 0;
};

struct GsbBlockHeader {
  GsbBlockKind kind = GsbBlockKind::kRecords;
  uint32_t seq = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// Compact identity of one `.gsb` file: enough to reject replaying a
/// snapshot against a different (or regenerated) stream file. The header CRC
/// covers dict/record counts, so matching identities mean matching metadata.
struct GsbIdentity {
  uint32_t header_crc = 0;
  uint32_t dict_count = 0;
  uint64_t record_count = 0;

  friend bool operator==(const GsbIdentity& a, const GsbIdentity& b) {
    return a.header_crc == b.header_crc && a.dict_count == b.dict_count &&
           a.record_count == b.record_count;
  }
  friend bool operator!=(const GsbIdentity& a, const GsbIdentity& b) {
    return !(a == b);
  }
};

/// Location of one structurally valid block within the file (from the
/// reader's framing scan). Payload integrity is checked later, at decode.
struct GsbBlockRef {
  GsbBlockKind kind = GsbBlockKind::kRecords;
  uint32_t seq = 0;
  uint64_t payload_offset = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_GSB_FORMAT_H_
