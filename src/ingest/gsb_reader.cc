#include "ingest/gsb_reader.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ingest/crc32c.h"

namespace gstream {
namespace ingest {

namespace {

/// Blocks lost to one framing-corruption event are bounded: a resync
/// candidate whose seq jumps further than this is itself treated as corrupt.
constexpr uint32_t kMaxSeqJump = 4096;

/// Parses the 16 block-header bytes at `p`. Returns false when the header is
/// structurally implausible (wrong magic/kind/reserved, oversized payload).
bool ParseBlockHeader(const uint8_t* p, GsbBlockHeader* out) {
  if (GetU16(p) != kGsbBlockMagic) return false;
  const uint8_t kind = p[2];
  if (kind != static_cast<uint8_t>(GsbBlockKind::kDict) &&
      kind != static_cast<uint8_t>(GsbBlockKind::kRecords) &&
      kind != static_cast<uint8_t>(GsbBlockKind::kRecordsTs))
    return false;
  if (p[3] != 0) return false;  // reserved
  out->kind = static_cast<GsbBlockKind>(kind);
  out->seq = GetU32(p + 4);
  out->payload_len = GetU32(p + 8);
  out->payload_crc = GetU32(p + 12);
  return out->payload_len <= kGsbMaxPayload;
}

}  // namespace

bool MemorySource::ReadAt(uint64_t offset, void* buf, size_t n) const {
  if (offset > bytes_.size() || n > bytes_.size() - offset) return false;
  std::memcpy(buf, bytes_.data() + offset, n);
  return true;
}

FileSource::~FileSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<FileSource> FileSource::Open(const std::string& path,
                                             std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = path + ": " + std::strerror(errno);
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) *error = path + ": fstat: " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<FileSource>(
      new FileSource(fd, static_cast<uint64_t>(st.st_size)));
}

bool FileSource::ReadAt(uint64_t offset, void* buf, size_t n) const {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    ssize_t r = ::pread(fd_, p, n, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF before n bytes
    p += r;
    offset += static_cast<uint64_t>(r);
    n -= static_cast<size_t>(r);
  }
  return true;
}

bool GsbReader::Open() {
  uint8_t buf[kGsbHeaderBytes];
  if (src_->size() < kGsbHeaderBytes ||
      !src_->ReadAt(0, buf, kGsbHeaderBytes)) {
    error_ = "gsb: file shorter than the 28-byte header";
    return false;
  }
  if (std::memcmp(buf, kGsbMagic, 4) != 0) {
    error_ = "gsb: bad magic (not a .gsb file)";
    return false;
  }
  const uint32_t stored_crc = GetU32(buf + 24);
  if (Crc32c(buf, 24) != stored_crc) {
    error_ = "gsb: header CRC mismatch (corrupt header)";
    return false;
  }
  header_.version = GetU32(buf + 4);
  if (header_.version != kGsbVersion && header_.version != kGsbVersionTs) {
    error_ = "gsb: unsupported version " + std::to_string(header_.version);
    return false;
  }
  header_.flags = GetU32(buf + 8);
  header_.dict_count = GetU32(buf + 12);
  header_.record_count = GetU64(buf + 16);
  identity_ = GsbIdentity{stored_crc, header_.dict_count, header_.record_count};
  return true;
}

bool GsbReader::ScanBlocks(CorruptPolicy policy, std::vector<GsbBlockRef>& out) {
  const uint64_t file_size = src_->size();
  uint64_t pos = kGsbHeaderBytes;
  uint32_t next_seq = 0;
  uint8_t buf[kGsbBlockHeaderBytes];

  const auto corrupt = [&](const std::string& reason) -> bool {
    if (policy == CorruptPolicy::kFail) {
      error_ = "gsb: block " + std::to_string(next_seq) + " at offset " +
               std::to_string(pos) + ": " + reason;
      return false;
    }
    // Resynchronize: the next structurally valid header whose seq continues
    // (or jumps boundedly past) the expected sequence. Everything between is
    // quarantined; blocks whose seqs were jumped over are lost with it.
    for (uint64_t cand = pos; cand + kGsbBlockHeaderBytes <= file_size; ++cand) {
      if (!src_->ReadAt(cand, buf, kGsbBlockHeaderBytes)) break;
      GsbBlockHeader h;
      if (!ParseBlockHeader(buf, &h)) continue;
      if (cand + kGsbBlockHeaderBytes + h.payload_len > file_size) continue;
      if (h.seq < next_seq || h.seq - next_seq > kMaxSeqJump) continue;
      if (cand == pos && h.seq == next_seq) continue;  // the failed header itself
      scan_quarantine_.push_back(QuarantineEntry{
          pos, next_seq,
          reason + (cand > pos ? " (resynced after " + std::to_string(cand - pos) +
                                     " bytes)"
                               : " (missing blocks " + std::to_string(next_seq) +
                                     ".." + std::to_string(h.seq - 1) + ")")});
      pos = cand;
      next_seq = h.seq;
      return true;
    }
    scan_quarantine_.push_back(
        QuarantineEntry{pos, next_seq, reason + " (tail quarantined)"});
    pos = file_size;
    return true;
  };

  while (pos < file_size) {
    if (pos + kGsbBlockHeaderBytes > file_size) {
      if (!corrupt("truncated block header")) return false;
      continue;
    }
    if (!src_->ReadAt(pos, buf, kGsbBlockHeaderBytes)) {
      if (!corrupt("short read on block header")) return false;
      continue;
    }
    GsbBlockHeader h;
    if (!ParseBlockHeader(buf, &h)) {
      if (!corrupt("invalid block header")) return false;
      continue;
    }
    if (h.seq != next_seq) {
      if (!corrupt("block seq " + std::to_string(h.seq) + " != expected " +
                   std::to_string(next_seq)))
        return false;
      continue;
    }
    if (pos + kGsbBlockHeaderBytes + h.payload_len > file_size) {
      if (!corrupt("payload extends past EOF (truncated file)")) return false;
      continue;
    }
    out.push_back(GsbBlockRef{h.kind, h.seq, pos + kGsbBlockHeaderBytes,
                              h.payload_len, h.payload_crc});
    pos += kGsbBlockHeaderBytes + h.payload_len;
    ++next_seq;
  }
  return true;
}

bool GsbReader::DecodeDict(const std::vector<GsbBlockRef>& blocks,
                           StringInterner& interner) {
  // Dictionary corruption is fatal under every policy: a lost dictionary
  // block would shift every later id, silently remapping the whole stream.
  for (const GsbBlockRef& b : blocks) {
    if (b.kind != GsbBlockKind::kDict) continue;
    std::vector<uint8_t> payload(b.payload_len);
    if (!src_->ReadAt(b.payload_offset, payload.data(), payload.size())) {
      error_ = "gsb: dictionary block " + std::to_string(b.seq) + ": short read";
      return false;
    }
    if (Crc32c(payload.data(), payload.size()) != b.payload_crc) {
      error_ = "gsb: dictionary block " + std::to_string(b.seq) +
               ": payload CRC mismatch";
      return false;
    }
    if (payload.size() < 8) {
      error_ = "gsb: dictionary block " + std::to_string(b.seq) + ": truncated";
      return false;
    }
    const uint32_t first_id = GetU32(payload.data());
    const uint32_t count = GetU32(payload.data() + 4);
    if (first_id != interner.size()) {
      error_ = "gsb: dictionary block " + std::to_string(b.seq) +
               ": id discontinuity (missing dictionary block?)";
      return false;
    }
    size_t off = 8;
    for (uint32_t i = 0; i < count; ++i) {
      if (off + 4 > payload.size()) {
        error_ = "gsb: dictionary block " + std::to_string(b.seq) + ": truncated";
        return false;
      }
      const uint32_t len = GetU32(payload.data() + off);
      off += 4;
      if (len > kGsbMaxStringLen || off + len > payload.size()) {
        error_ = "gsb: dictionary block " + std::to_string(b.seq) +
                 ": bad string length";
        return false;
      }
      const uint32_t id = interner.Intern(std::string_view(
          reinterpret_cast<const char*>(payload.data() + off), len));
      if (id != first_id + i) {
        error_ = "gsb: dictionary block " + std::to_string(b.seq) +
                 ": duplicate string breaks id order";
        return false;
      }
      off += len;
    }
    if (off != payload.size()) {
      error_ = "gsb: dictionary block " + std::to_string(b.seq) +
               ": trailing bytes after last string";
      return false;
    }
  }
  // Streaming journals write their header once, before any dictionary block
  // exists, so the header count is 0 and not authoritative — the scanned
  // blocks are the source of truth. Fixed files still get the full check.
  if ((header_.flags & kGsbFlagStreaming) == 0 &&
      interner.size() != header_.dict_count) {
    error_ = "gsb: dictionary incomplete: " + std::to_string(interner.size()) +
             " of " + std::to_string(header_.dict_count) +
             " strings (corrupt or missing dictionary blocks)";
    return false;
  }
  return true;
}

DecodeStatus GsbReader::DecodeRecords(const GsbBlockRef& block,
                                      std::vector<EdgeUpdate>& out,
                                      std::string* reason) const {
  std::vector<uint8_t> payload(block.payload_len);
  if (!src_->ReadAt(block.payload_offset, payload.data(), payload.size())) {
    *reason = "short read";
    return DecodeStatus::kCorrupt;
  }
  if (Crc32c(payload.data(), payload.size()) != block.payload_crc) {
    *reason = "payload CRC mismatch";
    return DecodeStatus::kCorrupt;
  }
  if (payload.size() < 4) {
    *reason = "truncated payload";
    return DecodeStatus::kCorrupt;
  }
  // v1 frames are 13 bytes; kind-3 frames append the 8-byte timestamp.
  const bool timestamped = block.kind == GsbBlockKind::kRecordsTs;
  const size_t frame_bytes = timestamped ? kGsbRecordTsBytes : kGsbRecordBytes;
  const uint32_t count = GetU32(payload.data());
  if (payload.size() != 4 + static_cast<size_t>(count) * frame_bytes) {
    *reason = "frame count does not match payload length";
    return DecodeStatus::kCorrupt;
  }
  out.reserve(out.size() + count);
  const uint8_t* p = payload.data() + 4;
  for (uint32_t i = 0; i < count; ++i, p += frame_bytes) {
    const uint8_t op = p[0];
    if (op > static_cast<uint8_t>(UpdateOp::kDelete)) {
      *reason = "invalid op byte in frame " + std::to_string(i);
      return DecodeStatus::kCorrupt;
    }
    EdgeUpdate u;
    u.op = static_cast<UpdateOp>(op);
    u.src = GetU32(p + 1);
    u.label = GetU32(p + 5);
    u.dst = GetU32(p + 9);
    if (timestamped) u.ts = GetU64(p + 13);
    if ((header_.flags & kGsbFlagStreaming) == 0 &&
        (u.src >= header_.dict_count || u.label >= header_.dict_count ||
         u.dst >= header_.dict_count)) {
      *reason = "frame " + std::to_string(i) + " references an id outside the dictionary";
      return DecodeStatus::kCorrupt;
    }
    out.push_back(u);
  }
  return DecodeStatus::kOk;
}

}  // namespace ingest
}  // namespace gstream
