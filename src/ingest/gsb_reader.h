#ifndef GSTREAM_INGEST_GSB_READER_H_
#define GSTREAM_INGEST_GSB_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interning.h"
#include "graph/update.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace ingest {

/// What to do with a block that fails integrity or framing checks
/// (`--on-corrupt` in the CLI): quarantine-and-skip, or fail the replay.
enum class CorruptPolicy : uint8_t { kSkip = 0, kFail = 1 };

/// One quarantined region: where it was, why it was skipped.
struct QuarantineEntry {
  uint64_t offset = 0;  ///< File offset of the bad block / region.
  uint32_t seq = 0;     ///< Expected block seq at that point.
  std::string reason;
};

/// Random-access byte source: a `.gsb` file on disk or an in-memory image
/// (tests, fault injection). `ReadAt` is thread-safe — the pipeline's reader
/// threads decode disjoint blocks concurrently.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Copies exactly `n` bytes at `offset` into `buf`; false on short read.
  virtual bool ReadAt(uint64_t offset, void* buf, size_t n) const = 0;
  virtual uint64_t size() const = 0;
};

class MemorySource : public ByteSource {
 public:
  explicit MemorySource(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}
  bool ReadAt(uint64_t offset, void* buf, size_t n) const override;
  uint64_t size() const override { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// pread(2)-based file source; one shared descriptor, no seek state.
class FileSource : public ByteSource {
 public:
  ~FileSource() override;
  /// Opens `path`; null (with `*error` set) on failure.
  static std::unique_ptr<FileSource> Open(const std::string& path,
                                          std::string* error);
  bool ReadAt(uint64_t offset, void* buf, size_t n) const override;
  uint64_t size() const override { return size_; }

 private:
  FileSource(int fd, uint64_t size) : fd_(fd), size_(size) {}
  int fd_;
  uint64_t size_;
};

/// Decode outcome of one record block.
enum class DecodeStatus : uint8_t { kOk = 0, kCorrupt = 1 };

/// Framing-scan + decode layer over one `.gsb` source (DESIGN.md §10).
///
/// `Open` validates the self-checksummed file header; `ScanBlocks` walks the
/// block headers, resynchronizing after corrupt framing by searching for the
/// next structurally valid header with a plausible seq (the skipped range is
/// quarantined); `DecodeDict` replays the dictionary blocks into an interner
/// (dictionary corruption is always fatal — losing dictionary entries would
/// silently remap every subsequent id); `DecodeRecords` CRC-checks and
/// deframes one record block and is safe to call from multiple threads.
class GsbReader {
 public:
  explicit GsbReader(const ByteSource& src) : src_(&src) {}

  /// Reads and validates the file header. False (with `error()` set) on a
  /// short, foreign, corrupt, or version-incompatible header.
  bool Open();

  const GsbHeader& header() const { return header_; }
  GsbIdentity identity() const { return identity_; }
  const std::string& error() const { return error_; }

  /// Scans block framing from the header to EOF. Structurally invalid
  /// headers (bad magic/kind/len, implausible seq, payload past EOF)
  /// quarantine the region up to the next resync point under kSkip, or fail
  /// under kFail. Returns false only on failure (kFail policy).
  bool ScanBlocks(CorruptPolicy policy, std::vector<GsbBlockRef>& out);

  /// Replays the scanned dictionary blocks into `interner`. Any dictionary
  /// corruption (CRC mismatch, bad framing, id discontinuity) fails
  /// regardless of policy. `interner` must be empty.
  bool DecodeDict(const std::vector<GsbBlockRef>& blocks, StringInterner& interner);

  /// CRC-checks and deframes one record block into `out` (appended).
  /// Thread-safe; `*reason` is set on kCorrupt.
  DecodeStatus DecodeRecords(const GsbBlockRef& block,
                             std::vector<EdgeUpdate>& out,
                             std::string* reason) const;

  /// Quarantined regions recorded by ScanBlocks (decode-time quarantine is
  /// accounted by the pipeline, which owns the threads).
  const std::vector<QuarantineEntry>& scan_quarantine() const {
    return scan_quarantine_;
  }

 private:
  const ByteSource* src_;
  GsbHeader header_;
  GsbIdentity identity_;
  std::string error_;
  std::vector<QuarantineEntry> scan_quarantine_;
};

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_GSB_READER_H_
