#include "ingest/gsb_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "ingest/crc32c.h"

namespace gstream {
namespace ingest {

void AppendGsbBlock(std::vector<uint8_t>& out, GsbBlockKind kind, uint32_t seq,
                    const std::vector<uint8_t>& payload) {
  GS_CHECK_MSG(payload.size() <= kGsbMaxPayload, "gsb block payload too large");
  PutU16(out, kGsbBlockMagic);
  out.push_back(static_cast<uint8_t>(kind));
  out.push_back(0);  // reserved
  PutU32(out, seq);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<uint8_t> EncodeGsb(const StringInterner& interner,
                               const std::vector<EdgeUpdate>& updates,
                               const GsbWriterOptions& options) {
  GS_CHECK_MSG(options.records_per_block >= 1 && options.strings_per_block >= 1,
               "gsb block sizes must be >= 1");
  std::vector<uint8_t> out;

  // The timestamp column is opt-in per file: an all-zero-`ts` stream encodes
  // as version 1 with 13-byte frames, byte-identical to a pre-v2 writer.
  const bool timestamped =
      std::any_of(updates.begin(), updates.end(),
                  [](const EdgeUpdate& u) { return u.ts != 0; });

  // File header; header_crc covers the 24 bytes before it.
  out.reserve(kGsbHeaderBytes);
  for (uint8_t c : kGsbMagic) out.push_back(c);
  PutU32(out, timestamped ? kGsbVersionTs : kGsbVersion);
  PutU32(out, timestamped ? kGsbFlagTimestamps : 0);  // flags
  PutU32(out, static_cast<uint32_t>(interner.size()));
  PutU64(out, updates.size());
  PutU32(out, Crc32c(out.data(), out.size()));

  uint32_t seq = 0;
  std::vector<uint8_t> payload;

  // Dictionary blocks: interner contents in id order, so replaying them
  // re-interns every string under its original id.
  for (size_t first = 0; first < interner.size();
       first += options.strings_per_block) {
    const size_t count =
        std::min(options.strings_per_block, interner.size() - first);
    payload.clear();
    PutU32(payload, static_cast<uint32_t>(first));
    PutU32(payload, static_cast<uint32_t>(count));
    for (size_t i = first; i < first + count; ++i) {
      const std::string& s = interner.Lookup(static_cast<uint32_t>(i));
      GS_CHECK_MSG(s.size() <= kGsbMaxStringLen, "gsb dictionary string too long");
      PutU32(payload, static_cast<uint32_t>(s.size()));
      payload.insert(payload.end(), s.begin(), s.end());
    }
    AppendGsbBlock(out, GsbBlockKind::kDict, seq++, payload);
  }

  // Record blocks: explicit frame count + fixed 13-byte (v1) or 21-byte
  // (timestamped, kind 3) frames.
  for (size_t first = 0; first < updates.size();
       first += options.records_per_block) {
    const size_t count =
        std::min(options.records_per_block, updates.size() - first);
    payload.clear();
    PutU32(payload, static_cast<uint32_t>(count));
    for (size_t i = first; i < first + count; ++i) {
      const EdgeUpdate& u = updates[i];
      payload.push_back(static_cast<uint8_t>(u.op));
      PutU32(payload, u.src);
      PutU32(payload, u.label);
      PutU32(payload, u.dst);
      if (timestamped) PutU64(payload, u.ts);
    }
    AppendGsbBlock(
        out, timestamped ? GsbBlockKind::kRecordsTs : GsbBlockKind::kRecords,
        seq++, payload);
  }
  return out;
}

bool AtomicWriteFile(const std::string& path, const void* data, size_t n,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  const auto fail = [&](const char* what) {
    if (error != nullptr)
      *error = tmp + ": " + what + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  };
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail("write");
    }
    p += w;
    left -= static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail("fsync");
  }
  if (::close(fd) != 0) return fail("close");
  if (::rename(tmp.c_str(), path.c_str()) != 0) return fail("rename");
  return true;
}

bool WriteGsbFile(const std::string& path, const StringInterner& interner,
                  const std::vector<EdgeUpdate>& updates, std::string* error,
                  const GsbWriterOptions& options) {
  const std::vector<uint8_t> image = EncodeGsb(interner, updates, options);
  return AtomicWriteFile(path, image.data(), image.size(), error);
}

}  // namespace ingest
}  // namespace gstream
