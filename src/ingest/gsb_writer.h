#ifndef GSTREAM_INGEST_GSB_WRITER_H_
#define GSTREAM_INGEST_GSB_WRITER_H_

#include <string>
#include <vector>

#include "common/interning.h"
#include "graph/update.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace ingest {

struct GsbWriterOptions {
  /// Record frames per record block. Smaller blocks bound the blast radius
  /// of one corrupt payload (one block = one quarantine unit) at the cost of
  /// per-block header+CRC overhead; micro_ingest sweeps this.
  size_t records_per_block = 4096;
  /// Dictionary strings per dictionary block.
  size_t strings_per_block = 8192;
};

/// Encodes a `.gsb` byte image: file header, the full dictionary (interner
/// contents in id order), then the record frames. The image is self-contained
/// — a reader reconstructs the interner with identical ids, so the 32-bit ids
/// inside record frames and snapshots survive process restarts.
std::vector<uint8_t> EncodeGsb(const StringInterner& interner,
                               const std::vector<EdgeUpdate>& updates,
                               const GsbWriterOptions& options = {});

/// Encodes and atomically writes `path` (tmp + rename, fsynced). Returns
/// false with `*error` set on I/O failure.
bool WriteGsbFile(const std::string& path, const StringInterner& interner,
                  const std::vector<EdgeUpdate>& updates, std::string* error,
                  const GsbWriterOptions& options = {});

/// Writes `data` to `path` atomically (tmp + fsync + rename): readers and
/// crash recovery never observe a half-written file. Shared by the `.gsb`
/// writer and the snapshot writer.
bool AtomicWriteFile(const std::string& path, const void* data, size_t n,
                     std::string* error);

/// Appends one framed block (header + CRC'd payload) to `out`. Shared by
/// the file encoder above and the server's append-only streaming journal,
/// which emits the same block format incrementally.
void AppendGsbBlock(std::vector<uint8_t>& out, GsbBlockKind kind, uint32_t seq,
                    const std::vector<uint8_t>& payload);

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_GSB_WRITER_H_
