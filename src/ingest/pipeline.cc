#include "ingest/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "engine/budget.h"

namespace gstream {
namespace ingest {

namespace {

void AddQuarantine(IngestStats& stats, QuarantineEntry entry) {
  ++stats.blocks_quarantined;
  if (stats.quarantine.size() < IngestStats::kMaxQuarantineLog)
    stats.quarantine.push_back(std::move(entry));
}

}  // namespace

bool IngestSession::Open(const ByteSource& src, CorruptPolicy on_corrupt) {
  src_ = &src;
  reader_ = std::make_unique<GsbReader>(src);
  record_blocks_.clear();
  interner_ = StringInterner();
  error_.clear();

  if (!reader_->Open()) {
    error_ = reader_->error();
    return false;
  }
  std::vector<GsbBlockRef> blocks;
  if (!reader_->ScanBlocks(on_corrupt, blocks)) {
    error_ = reader_->error();
    return false;
  }
  std::vector<GsbBlockRef> dict_blocks;
  for (const GsbBlockRef& b : blocks)
    (b.kind == GsbBlockKind::kDict ? dict_blocks : record_blocks_).push_back(b);
  if (!reader_->DecodeDict(dict_blocks, interner_)) {
    error_ = reader_->error();
    return false;
  }
  return true;
}

std::string ValidateIngestOptions(const IngestOptions& opts) {
  if (opts.batch_window < 1) return "batch_window must be >= 1";
  if (opts.batch_threads < 1) return "batch_threads must be >= 1";
  if (opts.reader_threads < 1) return "reader_threads must be >= 1";
  if (opts.ring_capacity < 1) return "ring_capacity must be >= 1";
  if (opts.consumer_stall_micros < 0)
    return "consumer_stall_micros must be >= 0";
  if (!(opts.budget_seconds > 0)) return "budget_seconds must be positive";
  if (opts.snapshot_every_windows > 0) {
    if (opts.snapshot_path.empty())
      return "snapshot cadence set but no snapshot path";
    if (opts.overload != OverloadPolicy::kBlock)
      return "snapshots require --overload=block (a shedding run has no "
             "deterministic replayable prefix)";
  }
  if (opts.resume != nullptr && opts.overload != OverloadPolicy::kBlock)
    return "recovery requires --overload=block (shedding is not replayable)";
  const std::string werr = temporal::ValidateWindowConfig(opts.window);
  if (!werr.empty()) return werr;
  if (opts.window_manager != nullptr && !opts.window_manager->config().enabled())
    return "window manager supplied without an expiry policy";
  return "";
}

IngestStats IngestSession::Replay(ContinuousEngine& engine,
                                  const IngestOptions& opts,
                                  const ResultCallback& cb) {
  IngestStats stats;
  const auto fail = [&](const std::string& why) {
    stats.failed = true;
    if (stats.error.empty()) stats.error = why;
  };

  const std::string verr = ValidateIngestOptions(opts);
  if (!verr.empty()) {
    fail(verr);
    return stats;
  }
  if (reader_ == nullptr) {
    fail("ingest session not opened");
    return stats;
  }
  const uint64_t resume_offset =
      opts.resume != nullptr ? opts.resume->record_offset : 0;
  if (opts.resume != nullptr) {
    // ResumeReplay validates these up front; re-check cheaply so a direct
    // Replay call cannot silently mix streams or engines.
    if (opts.resume->stream != identity()) {
      fail("snapshot stream identity does not match the opened file");
      return stats;
    }
    if (opts.resume->engine_name != engine.name()) {
      fail("snapshot engine '" + opts.resume->engine_name +
           "' does not match engine '" + engine.name() + "'");
      return stats;
    }
  }

  stats.record_blocks = record_blocks_.size();
  for (const QuarantineEntry& q : reader_->scan_quarantine())
    AddQuarantine(stats, q);

  Budget budget;
  if (std::isfinite(opts.budget_seconds))
    budget.SetDeadlineAfter(opts.budget_seconds);
  engine.set_budget(&budget);
  const bool batched = opts.batch_window > 1 || opts.window_per_block;
  if (batched) engine.SetBatchThreads(opts.batch_threads);

  BoundedBatchRing ring(opts.ring_capacity);
  std::atomic<size_t> next_block{0};
  std::mutex decode_mu;  // guards the decode-side aggregates below
  uint64_t decode_records = 0;
  uint64_t decode_crc_mismatches = 0;
  std::vector<QuarantineEntry> decode_quarantine;
  std::atomic<bool> decode_failed{false};
  std::string decode_error;

  const int readers = std::max(1, opts.reader_threads);
  const size_t num_blocks = record_blocks_.size();
  for (int t = 0; t < readers; ++t) ring.AddProducer();
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&] {
      // Reader thread: claim record blocks by atomic index, decode, push.
      // Batch seq is the block's dense index among *record* blocks — the
      // consumer reassembles stream order from it, so threads may finish
      // out of order.
      while (!ring.aborted()) {
        const size_t i = next_block.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_blocks) break;
        const GsbBlockRef& block = record_blocks_[i];
        RecordBatch batch;
        batch.seq = i;
        std::string reason;
        if (reader_->DecodeRecords(block, batch.records, &reason) ==
            DecodeStatus::kCorrupt) {
          std::lock_guard<std::mutex> lock(decode_mu);
          ++decode_crc_mismatches;
          if (opts.on_corrupt == CorruptPolicy::kFail) {
            if (decode_error.empty())
              decode_error = "corrupt record block seq " +
                             std::to_string(block.seq) + ": " + reason;
            decode_failed.store(true, std::memory_order_relaxed);
            ring.Abort();
            break;
          }
          decode_quarantine.push_back(
              {block.payload_offset - kGsbBlockHeaderBytes, block.seq,
               std::move(reason)});
          batch.records.clear();
          batch.corrupt = true;  // placeholder keeps the reassembly moving
        } else {
          std::lock_guard<std::mutex> lock(decode_mu);
          decode_records += batch.records.size();
        }
        const auto r = ring.Push(std::move(batch), opts.overload);
        if (r == BoundedBatchRing::PushResult::kOverflow) {
          std::lock_guard<std::mutex> lock(decode_mu);
          if (decode_error.empty())
            decode_error = "ring overflow under --overload=fail-fast";
          decode_failed.store(true, std::memory_order_relaxed);
          ring.Abort();
          break;
        }
        if (r == BoundedBatchRing::PushResult::kAborted) break;
      }
      ring.ProducerDone();
    });
  }

  // Apply side (this thread): reassemble block order, fill windows, apply.
  ResultAccumulator acc;
  std::map<uint64_t, RecordBatch> pending;  // out-of-order arrivals
  std::vector<EdgeUpdate> window_buf;
  uint64_t next_seq = 0;           // next record-block index to consume
  uint64_t records_applied = 0;    // == the next record's global index
  bool verified = resume_offset == 0;
  bool stop = false;

  // Sliding-window expiry: caller-owned manager (the server's, so recovery
  // leaves the live horizon where live splicing continues) or a local one.
  temporal::WindowManager local_wm(opts.window);
  temporal::WindowManager* wm =
      opts.window_manager != nullptr ? opts.window_manager : &local_wm;
  const bool windowed = wm->config().enabled();
  std::vector<EdgeUpdate> exec_buf;   // expiry deletions + records, spliced
  std::vector<uint8_t> is_record;     // parallel to exec_buf

  // Counter + fingerprint cross-check at the resume boundary: the
  // fast-forward just recomputed everything the snapshot recorded, so any
  // divergence means wrong queries, wrong engine build, or a stream edit.
  const auto verify_boundary = [&]() {
    const SnapshotData& snap = *opts.resume;
    if (acc.stats.updates_applied != snap.updates_applied ||
        acc.stats.new_embeddings != snap.new_embeddings ||
        stats.windows_finalized != snap.windows_finalized) {
      fail("recovery cross-check failed at record " +
           std::to_string(resume_offset) + ": replayed counters (applied=" +
           std::to_string(acc.stats.updates_applied) + ", embeddings=" +
           std::to_string(acc.stats.new_embeddings) + ", windows=" +
           std::to_string(stats.windows_finalized) +
           ") do not match the snapshot");
      return false;
    }
    std::vector<QueryId> sat(acc.satisfied.begin(), acc.satisfied.end());
    std::sort(sat.begin(), sat.end());
    if (sat != snap.satisfied) {
      fail("recovery cross-check failed: satisfied-query set diverged");
      return false;
    }
    const uint64_t fp = engine.StateFingerprint();
    if (snap.fingerprint != 0 && fp != snap.fingerprint) {
      fail("recovery fingerprint mismatch at record " +
           std::to_string(resume_offset) +
           ": the fast-forwarded engine state differs from the snapshot");
      return false;
    }
    if (wm->ingested_edges() != snap.ingested_edges ||
        wm->expired_edges() != snap.expired_edges ||
        wm->removed_edges() != snap.removed_edges ||
        wm->expiry_batches() != snap.expiry_batches ||
        wm->live_edges() != snap.live_edges ||
        wm->watermark() != snap.watermark) {
      fail("recovery cross-check failed at record " +
           std::to_string(resume_offset) +
           ": the rebuilt window horizon (live=" +
           std::to_string(wm->live_edges()) + ", expired=" +
           std::to_string(wm->expired_edges()) + ", watermark=" +
           std::to_string(wm->watermark()) +
           ") does not match the snapshot (window config drift?)");
      return false;
    }
    return true;
  };

  // Applies window_buf[0..n). Returns false when the replay must stop
  // (timeout, failed verification, failed snapshot write).
  const auto apply_window = [&](size_t n) {
    if (opts.window_begin) opts.window_begin(records_applied);
    WallTimer timer;
    std::vector<UpdateResult> results;
    size_t exec_n = n;
    if (windowed) {
      // Splice each record's due expiry deletions ahead of it, inside the
      // same batch window (deletions are ApplyBatch barriers, so the result
      // is byte-identical to an explicit-deletion stream at any window
      // size). Internal deletions never absorb into the record accounting.
      exec_buf.clear();
      is_record.clear();
      for (size_t i = 0; i < n; ++i) {
        wm->Advance(window_buf[i], exec_buf);
        is_record.resize(exec_buf.size(), 0);
        exec_buf.push_back(window_buf[i]);
        is_record.push_back(1);
      }
      exec_n = exec_buf.size();
      results = engine.ApplyBatch(exec_buf.data(), exec_n);
    } else {
      results = engine.ApplyBatch(window_buf.data(), n);
    }
    acc.stats.answer_millis += timer.ElapsedMillis();
    for (size_t k = 0; k < results.size(); ++k) {
      const UpdateResult& r = results[k];
      if (windowed && is_record[k] == 0) {
        // Internal expiry deletion: never triggers (deletions retract), so
        // only its timeout flag matters for the run accounting.
        if (r.timed_out) acc.stats.timed_out = true;
        continue;
      }
      const uint64_t idx = records_applied++;
      if (acc.Absorb(r)) acc.stats.timed_out = true;
      // Emission is suppressed over the fast-forward prefix; a resumed run
      // emits exactly the uninterrupted run's tail.
      if (cb && idx >= resume_offset) cb(idx, r);
    }
    if (results.size() < exec_n || budget.ExceededNow())
      acc.stats.timed_out = true;
    window_buf.erase(window_buf.begin(), window_buf.begin() + n);
    ++stats.windows_finalized;

    if (!verified && !acc.stats.timed_out) {
      if (records_applied == resume_offset) {
        if (!verify_boundary()) return false;
        verified = true;
      } else if (records_applied > resume_offset) {
        fail("resume offset " + std::to_string(resume_offset) +
             " is not a window boundary of this run (different batch window "
             "or stream than the snapshotted run)");
        return false;
      }
    }

    if (!acc.stats.timed_out && opts.snapshot_every_windows > 0 &&
        stats.windows_finalized % opts.snapshot_every_windows == 0 &&
        records_applied > resume_offset) {
      SnapshotData snap;
      snap.stream = identity();
      snap.engine_name = engine.name();
      snap.record_offset = records_applied;
      snap.windows_finalized = stats.windows_finalized;
      snap.updates_applied = acc.stats.updates_applied;
      snap.new_embeddings = acc.stats.new_embeddings;
      snap.fingerprint = engine.StateFingerprint();
      snap.satisfied.assign(acc.satisfied.begin(), acc.satisfied.end());
      std::sort(snap.satisfied.begin(), snap.satisfied.end());
      snap.ingested_edges = wm->ingested_edges();
      snap.expired_edges = wm->expired_edges();
      snap.removed_edges = wm->removed_edges();
      snap.expiry_batches = wm->expiry_batches();
      snap.live_edges = wm->live_edges();
      snap.watermark = wm->watermark();
      std::string werr;
      if (!WriteSnapshot(opts.snapshot_path, snap, &werr)) {
        fail("snapshot write failed: " + werr);
        return false;
      }
      ++stats.snapshots_written;
    }

    if (opts.consumer_stall_micros > 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(opts.consumer_stall_micros));
    return !acc.stats.timed_out;
  };

  const auto consume_batch = [&](RecordBatch&& batch) {
    window_buf.insert(window_buf.end(), batch.records.begin(),
                      batch.records.end());
    if (opts.window_per_block) {
      // Journal mode: one record block = one applied window, reproducing the
      // writing server's window boundaries (including drain-time partials).
      if (!window_buf.empty() && !apply_window(window_buf.size())) return false;
      return true;
    }
    while (window_buf.size() >= opts.batch_window)
      if (!apply_window(opts.batch_window)) return false;
    return true;
  };

  // Advances next_seq over pending arrivals and shed blocks; false when the
  // next block is neither (still in flight — Pop for more).
  const auto advance = [&]() {
    for (;;) {
      auto it = pending.find(next_seq);
      if (it != pending.end()) {
        RecordBatch batch = std::move(it->second);
        pending.erase(it);
        ++next_seq;
        if (!consume_batch(std::move(batch))) stop = true;
        if (stop) return false;
        continue;
      }
      if (ring.TakeShed(next_seq) >= 0) {
        ++next_seq;  // shed records counted via ring stats
        continue;
      }
      return true;
    }
  };

  RecordBatch popped;
  while (!stop && advance() && ring.Pop(popped))
    pending.emplace(popped.seq, std::move(popped));

  // Producers are done (or the run aborted): drain the remaining pending /
  // shed blocks, then apply the final partial window.
  if (!stop) advance();
  if (!stop && !window_buf.empty() && !apply_window(window_buf.size()))
    stop = true;
  ring.Abort();  // releases any producer still blocked on a full ring
  for (std::thread& t : threads) t.join();

  engine.set_budget(nullptr);
  if (batched) engine.SetBatchThreads(1);

  acc.Finish(engine);
  stats.run = acc.stats;
  stats.ingested_edges = wm->ingested_edges();
  stats.expired_edges = wm->expired_edges();
  stats.removed_edges = wm->removed_edges();
  stats.expiry_batches = wm->expiry_batches();
  stats.live_edges = wm->live_edges();
  stats.watermark = wm->watermark();
  stats.records_decoded = decode_records;
  stats.crc_mismatches = decode_crc_mismatches;
  for (QuarantineEntry& q : decode_quarantine) AddQuarantine(stats, std::move(q));
  stats.ring = ring.stats();
  const uint64_t accounted =
      stats.run.updates_applied + stats.ring.records_shed;
  stats.records_missing =
      header().record_count > accounted ? header().record_count - accounted : 0;

  if (decode_failed.load(std::memory_order_relaxed)) fail(decode_error);
  if (!verified && !stats.failed && !stats.run.timed_out)
    fail("stream ended before the snapshot's resume offset " +
         std::to_string(resume_offset) + " — truncated or wrong file");
  return stats;
}

IngestStats ResumeReplay(ContinuousEngine& engine, IngestSession& session,
                         const SnapshotData& snap, IngestOptions opts,
                         const ResultCallback& cb) {
  IngestStats stats;
  if (snap.stream != session.identity()) {
    stats.failed = true;
    stats.error = "snapshot was taken against a different stream file";
    return stats;
  }
  if (snap.engine_name != engine.name()) {
    stats.failed = true;
    stats.error = "snapshot engine '" + snap.engine_name +
                  "' does not match engine '" + engine.name() + "'";
    return stats;
  }
  opts.overload = OverloadPolicy::kBlock;  // the recovery contract
  opts.resume = &snap;
  return session.Replay(engine, opts, cb);
}

}  // namespace ingest
}  // namespace gstream
