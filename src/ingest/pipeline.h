#ifndef GSTREAM_INGEST_PIPELINE_H_
#define GSTREAM_INGEST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "engine/driver.h"
#include "engine/engine.h"
#include "ingest/gsb_reader.h"
#include "ingest/ring_buffer.h"
#include "ingest/snapshot.h"
#include "time/window.h"

namespace gstream {
namespace ingest {

/// Configuration of one file-replay run (the CLI's `--gsb` mode).
struct IngestOptions {
  /// Window/thread semantics identical to RunConfig (engine/driver.h).
  size_t batch_window = 1;
  int batch_threads = 1;

  /// Decode threads reading the `.gsb` source concurrently (block-granular).
  int reader_threads = 1;
  /// Ring capacity in batches between decode and apply.
  size_t ring_capacity = 8;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  CorruptPolicy on_corrupt = CorruptPolicy::kSkip;

  double budget_seconds = std::numeric_limits<double>::infinity();

  /// Fault injection: sleep this long after every applied window, simulating
  /// a slow consumer (drives the ring into overload deterministically).
  int consumer_stall_micros = 0;

  /// Snapshot cadence: write `snapshot_path` after every N finalized windows
  /// (0 = no snapshots). Requires OverloadPolicy::kBlock — a shedding run
  /// has no deterministic replayable prefix.
  uint64_t snapshot_every_windows = 0;
  std::string snapshot_path;

  /// Journal replay mode (the socket server's recovery path): every record
  /// block applies as its own window, so replaying a streaming journal —
  /// where the server appended exactly one block per applied window —
  /// reproduces the original run's window boundaries exactly, including
  /// drain-time partial windows. `batch_window` is ignored for windowing;
  /// `batch_threads` still applies.
  bool window_per_block = false;

  /// Crash recovery: fast-forward `[0, resume->record_offset)` with emission
  /// suppressed, verify counters + fingerprint at the boundary, then emit
  /// the tail. Use ResumeReplay, which validates the snapshot first.
  const SnapshotData* resume = nullptr;

  /// Called (when set) immediately before each window applies, with the
  /// next record's global index. The socket server's recovery uses it to
  /// re-register mid-stream subscriptions at their original registration
  /// offsets — the original run processed query registrations at window
  /// boundaries, so replaying them at the same boundaries reproduces the
  /// original engine timeline (a query never sees records older than its
  /// registration, and the boundary counter/fingerprint cross-checks hold).
  std::function<void(uint64_t next_record_index)> window_begin;

  /// Sliding-window expiry (src/time): each applied record is preceded by
  /// the internal deletions its event time makes due, spliced into the same
  /// ApplyBatch window. Internal deletions never consume record indexes —
  /// the record accounting (applied + shed + missing == header count),
  /// snapshot offsets, and the result callback all stay in file-record
  /// terms; expiry flows through the `expired_*` stats instead.
  temporal::WindowConfig window;

  /// Caller-owned WindowManager to splice from instead of a fresh internal
  /// one built from `window`. The socket server passes its own so a recovery
  /// replay leaves the live-edge horizon in the manager the server keeps
  /// splicing from afterwards.
  temporal::WindowManager* window_manager = nullptr;
};

/// Everything one replay run observed, decode side and apply side.
struct IngestStats {
  // Decode side.
  uint64_t record_blocks = 0;       ///< Structurally valid record blocks.
  uint64_t records_decoded = 0;     ///< Records leaving intact blocks.
  uint64_t crc_mismatches = 0;      ///< Record blocks failing payload CRC.
  uint64_t blocks_quarantined = 0;  ///< Framing-scan + decode quarantines.
  BoundedBatchRing::Stats ring;

  // Apply side. `run` aggregates exactly like RunStream (same accumulator).
  RunStats run;
  uint64_t windows_finalized = 0;
  uint64_t snapshots_written = 0;

  // Temporal horizon at end of replay (zero without a window config).
  // Invariant: ingested_edges == live_edges + expired_edges + removed_edges.
  uint64_t ingested_edges = 0;
  uint64_t expired_edges = 0;
  uint64_t removed_edges = 0;
  uint64_t expiry_batches = 0;
  uint64_t live_edges = 0;
  uint64_t watermark = 0;
  /// Records the header promised but the engine never applied: quarantined
  /// blocks plus shed batches. applied + shed + missing == header count.
  uint64_t records_missing = 0;

  bool failed = false;   ///< Replay aborted (corrupt under kFail, overflow
                         ///< under kFailFast, I/O error, failed recovery).
  std::string error;
  std::vector<QuarantineEntry> quarantine;  ///< Capped at kMaxQuarantineLog.

  static constexpr size_t kMaxQuarantineLog = 64;
};

/// Per-update emission hook: `record_index` is the update's global index
/// among *applied* records (quarantined/shed records never consume indexes).
/// During a recovery fast-forward the hook is suppressed for the prefix, so
/// a resumed run emits exactly the uninterrupted run's tail.
using ResultCallback =
    std::function<void(uint64_t record_index, const UpdateResult& result)>;

/// One opened `.gsb` stream: validated header, scanned block framing, and
/// the replayed dictionary. `Open` once, then `Replay` any number of times
/// (each replay re-decodes record payloads; the scan and dictionary are
/// fixed). The interner is the writer's, reconstructed with identical ids —
/// parse queries against it.
class IngestSession {
 public:
  /// Header + framing scan + dictionary replay. False with `error()` set on
  /// a corrupt header, dictionary corruption (always fatal), or — under
  /// CorruptPolicy::kFail — any framing corruption.
  bool Open(const ByteSource& src, CorruptPolicy on_corrupt);

  const std::string& error() const { return error_; }
  const GsbHeader& header() const { return reader_ ? reader_->header() : empty_header_; }
  GsbIdentity identity() const { return reader_ ? reader_->identity() : GsbIdentity{}; }
  const StringInterner& interner() const { return interner_; }
  /// Mutable access for parsing queries against the stream's dictionary:
  /// query labels absent from the dictionary intern *after* it (ids >=
  /// dict_count), so record frames are unaffected.
  StringInterner& mutable_interner() { return interner_; }
  size_t record_block_count() const { return record_blocks_.size(); }

  /// Streams the file's records through `engine`: N reader threads decode
  /// blocks into the bounded ring, the calling thread reassembles stream
  /// order and applies windows (ApplyBatch — byte-identical to sequential
  /// execution), finalizing snapshots at the configured cadence. `cb`, when
  /// set, fires once per applied record in stream order.
  IngestStats Replay(ContinuousEngine& engine, const IngestOptions& opts,
                     const ResultCallback& cb = nullptr);

 private:
  const ByteSource* src_ = nullptr;
  std::unique_ptr<GsbReader> reader_;
  std::vector<GsbBlockRef> record_blocks_;
  StringInterner interner_;
  std::string error_;
  GsbHeader empty_header_;
};

/// Validates an IngestOptions combination up front. Returns "" when valid,
/// otherwise a one-line description of the first problem (bad thread/window
/// counts, snapshot cadence without a path or under a shedding policy,
/// resume under a shedding policy). `Replay` runs this first and fails the
/// stats cleanly — it never GS_CHECK-aborts on a caller-supplied config —
/// and the socket server reuses it to reject bad configs at startup.
std::string ValidateIngestOptions(const IngestOptions& opts);

/// Crash-recovery entry point: validates `snap` against the session's stream
/// identity and `engine`'s name, pins `opts` to the recovery contract
/// (OverloadPolicy::kBlock), and replays with `opts.resume = &snap`. The
/// engine must be freshly created with the same queries registered in the
/// same order as the original run.
IngestStats ResumeReplay(ContinuousEngine& engine, IngestSession& session,
                         const SnapshotData& snap, IngestOptions opts,
                         const ResultCallback& cb = nullptr);

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_PIPELINE_H_
