#ifndef GSTREAM_INGEST_RING_BUFFER_H_
#define GSTREAM_INGEST_RING_BUFFER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/update.h"

namespace gstream {
namespace ingest {

/// What the decode side does when the ring is full (`--overload` in the
/// CLI): block the producer (backpressure), shed the oldest queued batch
/// (keeps decoding at full rate, loses data — counted), or fail the replay.
enum class OverloadPolicy : uint8_t { kBlock = 0, kShed = 1, kFailFast = 2 };

/// One decoded record block traveling decode -> apply. `seq` is the block's
/// dense index among the file's *record* blocks — the consumer reassembles
/// stream order from it, so reader threads may finish out of order.
struct RecordBatch {
  uint64_t seq = 0;
  std::vector<EdgeUpdate> records;
  /// Quarantined block placeholder (no records): emitted under
  /// CorruptPolicy::kSkip so the consumer's in-order reassembly never stalls
  /// waiting for a block that produced nothing.
  bool corrupt = false;
};

/// Bounded MPSC ring between N decode threads and the single apply thread.
/// Mutex + two condvars: correctness and TSan-cleanliness over lock-free
/// cleverness — the batches are coarse (thousands of records), so the lock
/// is nowhere near the hot path.
class BoundedBatchRing {
 public:
  struct Stats {
    uint64_t batches_pushed = 0;
    uint64_t blocked_pushes = 0;   ///< Pushes that waited for space (kBlock).
    uint64_t batches_shed = 0;     ///< Oldest-dropped batches (kShed).
    uint64_t records_shed = 0;     ///< Records inside those batches.
    size_t max_occupancy = 0;      ///< High-water batch count.
  };

  explicit BoundedBatchRing(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  enum class PushResult : uint8_t { kOk = 0, kOverflow = 1, kAborted = 2 };

  /// Producer side. kBlock waits for space; kShed drops the oldest queued
  /// batch (recording its seq + record count for the consumer's reassembly);
  /// kFailFast returns kOverflow and the pipeline aborts the run.
  PushResult Push(RecordBatch&& batch, OverloadPolicy policy) {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= capacity_) {
      switch (policy) {
        case OverloadPolicy::kBlock:
          ++stats_.blocked_pushes;
          not_full_.wait(lock,
                         [&] { return queue_.size() < capacity_ || aborted_; });
          break;
        case OverloadPolicy::kShed: {
          RecordBatch& oldest = queue_.front();
          ++stats_.batches_shed;
          stats_.records_shed += oldest.records.size();
          shed_[oldest.seq] = oldest.records.size();
          queue_.pop_front();
          break;
        }
        case OverloadPolicy::kFailFast:
          return PushResult::kOverflow;
      }
    }
    if (aborted_) return PushResult::kAborted;
    queue_.push_back(std::move(batch));
    ++stats_.batches_pushed;
    stats_.max_occupancy = std::max(stats_.max_occupancy, queue_.size());
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Consumer side: pops the earliest queued batch, waiting while producers
  /// are still active. False when drained and all producers are done (or the
  /// ring was aborted).
  bool Pop(RecordBatch& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return !queue_.empty() || producers_active_ == 0 || aborted_;
    });
    if (queue_.empty() || aborted_) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return true;
  }

  enum class PopStatus : uint8_t { kGot = 0, kTimeout = 1, kDone = 2 };

  /// Timed Pop for consumers with periodic duties (the socket server's apply
  /// thread interleaves control ops and window-flush deadlines with popping):
  /// kGot with a batch, kTimeout when the wait expired with producers still
  /// active, kDone when drained-and-finished or aborted.
  PopStatus PopFor(RecordBatch& out, int timeout_millis) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, std::chrono::milliseconds(timeout_millis), [&] {
      return !queue_.empty() || producers_active_ == 0 || aborted_;
    });
    if (aborted_) return PopStatus::kDone;
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
      return PopStatus::kGot;
    }
    return producers_active_ == 0 ? PopStatus::kDone : PopStatus::kTimeout;
  }

  /// If record-block `seq` was shed, removes the note and returns its record
  /// count; -1 when it was not shed. Consumer-side, during reassembly.
  int64_t TakeShed(uint64_t seq) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shed_.find(seq);
    if (it == shed_.end()) return -1;
    const int64_t n = static_cast<int64_t>(it->second);
    shed_.erase(it);
    return n;
  }

  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_active_;
  }

  void ProducerDone() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--producers_active_ == 0) not_empty_.notify_all();
  }

  /// Fail-fast / error path: wakes everyone; further pushes and pops fail.
  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<RecordBatch> queue_;
  std::unordered_map<uint64_t, size_t> shed_;  ///< seq -> shed record count.
  size_t producers_active_ = 0;
  bool aborted_ = false;
  Stats stats_;
};

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_RING_BUFFER_H_
