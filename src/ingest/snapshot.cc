#include "ingest/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "ingest/crc32c.h"
#include "ingest/gsb_writer.h"

namespace gstream {
namespace ingest {

namespace {

constexpr uint8_t kSnapMagic[4] = {'G', 'S', 'N', 'P'};
// v2 appends the temporal-horizon counters; v1 images still decode (the
// temporal fields stay zero).
constexpr uint32_t kSnapVersion = 2;
constexpr uint32_t kSnapVersionMin = 1;
constexpr size_t kSnapHeaderBytes = 16;  // magic + version + len + crc
constexpr uint32_t kSnapMaxPayload = 64u << 20;

}  // namespace

std::vector<uint8_t> EncodeSnapshot(const SnapshotData& snap) {
  std::vector<uint8_t> payload;
  PutU32(payload, snap.stream.header_crc);
  PutU32(payload, snap.stream.dict_count);
  PutU64(payload, snap.stream.record_count);
  PutU32(payload, static_cast<uint32_t>(snap.engine_name.size()));
  payload.insert(payload.end(), snap.engine_name.begin(), snap.engine_name.end());
  PutU64(payload, snap.record_offset);
  PutU64(payload, snap.windows_finalized);
  PutU64(payload, snap.updates_applied);
  PutU64(payload, snap.new_embeddings);
  PutU64(payload, snap.fingerprint);
  PutU32(payload, static_cast<uint32_t>(snap.satisfied.size()));
  // Stored ascending so snapshot bytes are deterministic for a given state.
  std::vector<QueryId> qids = snap.satisfied;
  std::sort(qids.begin(), qids.end());
  for (QueryId qid : qids) PutU32(payload, qid);

  // v2 temporal horizon.
  PutU64(payload, snap.ingested_edges);
  PutU64(payload, snap.expired_edges);
  PutU64(payload, snap.removed_edges);
  PutU64(payload, snap.expiry_batches);
  PutU64(payload, snap.live_edges);
  PutU64(payload, snap.watermark);

  std::vector<uint8_t> image;
  image.reserve(kSnapHeaderBytes + payload.size());
  for (uint8_t c : kSnapMagic) image.push_back(c);
  PutU32(image, kSnapVersion);
  PutU32(image, static_cast<uint32_t>(payload.size()));
  PutU32(image, Crc32c(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

bool WriteSnapshot(const std::string& path, const SnapshotData& snap,
                   std::string* error) {
  const std::vector<uint8_t> image = EncodeSnapshot(snap);
  return AtomicWriteFile(path, image.data(), image.size(), error);
}

bool DecodeSnapshot(const uint8_t* data, size_t n, SnapshotData& snap,
                    std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  if (n < kSnapHeaderBytes) return fail("short header");
  if (!std::equal(kSnapMagic, kSnapMagic + 4, data))
    return fail("bad magic (not a snapshot file)");
  const uint32_t version = GetU32(data + 4);
  if (version < kSnapVersionMin || version > kSnapVersion)
    return fail("unsupported version " + std::to_string(version));
  const uint32_t payload_len = GetU32(data + 8);
  const uint32_t payload_crc = GetU32(data + 12);
  if (payload_len > kSnapMaxPayload) return fail("implausible payload length");
  if (n != kSnapHeaderBytes + payload_len)
    return fail("payload length mismatch (torn write?)");
  const uint8_t* p = data + kSnapHeaderBytes;
  if (Crc32c(p, payload_len) != payload_crc) return fail("payload CRC mismatch");

  // Exact framing: every read below is bounds-checked, and the payload must
  // be consumed completely — trailing bytes mean a foreign layout.
  const uint8_t* end = p + payload_len;
  const auto need = [&](size_t k) { return static_cast<size_t>(end - p) >= k; };

  if (!need(16)) return fail("truncated stream identity");
  snap.stream.header_crc = GetU32(p);
  snap.stream.dict_count = GetU32(p + 4);
  snap.stream.record_count = GetU64(p + 8);
  p += 16;

  if (!need(4)) return fail("truncated engine name");
  const uint32_t name_len = GetU32(p);
  p += 4;
  if (name_len > 256 || !need(name_len)) return fail("bad engine name length");
  snap.engine_name.assign(reinterpret_cast<const char*>(p), name_len);
  p += name_len;

  if (!need(40)) return fail("truncated counters");
  snap.record_offset = GetU64(p);
  snap.windows_finalized = GetU64(p + 8);
  snap.updates_applied = GetU64(p + 16);
  snap.new_embeddings = GetU64(p + 24);
  snap.fingerprint = GetU64(p + 32);
  p += 40;

  if (!need(4)) return fail("truncated satisfied-query count");
  const uint32_t sat_count = GetU32(p);
  p += 4;
  if (!need(static_cast<size_t>(sat_count) * 4))
    return fail("truncated satisfied-query list");
  snap.satisfied.clear();
  snap.satisfied.reserve(sat_count);
  for (uint32_t i = 0; i < sat_count; ++i, p += 4)
    snap.satisfied.push_back(GetU32(p));

  snap.ingested_edges = snap.expired_edges = snap.removed_edges = 0;
  snap.expiry_batches = snap.live_edges = snap.watermark = 0;
  if (version >= 2) {
    if (!need(48)) return fail("truncated temporal horizon");
    snap.ingested_edges = GetU64(p);
    snap.expired_edges = GetU64(p + 8);
    snap.removed_edges = GetU64(p + 16);
    snap.expiry_batches = GetU64(p + 24);
    snap.live_edges = GetU64(p + 32);
    snap.watermark = GetU64(p + 40);
    p += 48;
  }

  if (p != end) return fail("trailing bytes after payload");
  // Streaming journals carry record_count 0 in the header (it is written
  // once, up front), so the offset bound only applies to fixed files.
  if (snap.stream.record_count > 0 &&
      snap.record_offset > snap.stream.record_count)
    return fail("record offset past stream end");
  return true;
}

bool ReadSnapshot(const std::string& path, SnapshotData& snap,
                  std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "snapshot " + path + ": " + why;
    return false;
  };

  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open");
  std::vector<uint8_t> image;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    image.insert(image.end(), buf, buf + n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return fail("read error");

  std::string derr;
  if (!DecodeSnapshot(image.data(), image.size(), snap, &derr))
    return fail(derr);
  return true;
}

}  // namespace ingest
}  // namespace gstream
