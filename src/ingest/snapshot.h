#ifndef GSTREAM_INGEST_SNAPSHOT_H_
#define GSTREAM_INGEST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace ingest {

/// Crash-consistency snapshot (DESIGN.md §10): the durable record of "engine
/// E had applied exactly the first `record_offset` records of stream S when
/// window W finalized". The engines are deterministic (ApplyBatch is
/// byte-identical to sequential execution), so the snapshot does NOT
/// serialize engine internals — recovery rebuilds the engine by replaying
/// `[0, record_offset)` from the `.gsb` file with emission suppressed, then
/// verifies the rebuild against the recorded fingerprint and counters before
/// resuming live emission at `record_offset`.
///
/// Snapshots are only taken at finalized-window boundaries under
/// OverloadPolicy::kBlock — shedding is timing-dependent, so a shed run has
/// no replayable prefix.
struct SnapshotData {
  /// Identity of the stream file the offsets refer to; recovery refuses a
  /// different (or regenerated) file.
  GsbIdentity stream;
  std::string engine_name;

  /// Records applied when the snapshot was taken — the global index among
  /// *applied* records (quarantined blocks never consume indexes), always at
  /// a finalized-window boundary.
  uint64_t record_offset = 0;
  uint64_t windows_finalized = 0;

  // Cross-checks: the fast-forward replay recomputes all of these; any
  // mismatch at the resume boundary aborts recovery.
  uint64_t updates_applied = 0;
  uint64_t new_embeddings = 0;
  uint64_t fingerprint = 0;             ///< Engine StateFingerprint(); 0 = none.
  std::vector<QueryId> satisfied;       ///< Distinct triggered qids, ascending.

  // Temporal horizon (snapshot v2; zero for v1 images and untemporal runs).
  // Expiry is event-time deterministic, so the WindowManager is never
  // serialized — the fast-forward rebuilds it and these counters cross-check
  // the rebuilt live-edge horizon exactly like the engine fingerprint.
  uint64_t ingested_edges = 0;
  uint64_t expired_edges = 0;
  uint64_t removed_edges = 0;
  uint64_t expiry_batches = 0;
  uint64_t live_edges = 0;
  uint64_t watermark = 0;
};

/// Serializes `snap` into the self-checksummed snapshot image (magic,
/// version, payload CRC). The server embeds these bytes inside its own
/// crash-state file so snapshot + subscriptions commit atomically together.
std::vector<uint8_t> EncodeSnapshot(const SnapshotData& snap);

/// Decodes a snapshot image produced by EncodeSnapshot. False with `*error`
/// set on any framing or integrity mismatch.
bool DecodeSnapshot(const uint8_t* data, size_t n, SnapshotData& snap,
                    std::string* error);

/// Serializes and atomically writes `snap` to `path` (tmp + fsync + rename —
/// a crash mid-snapshot leaves the previous snapshot intact). False with
/// `*error` set on I/O failure.
bool WriteSnapshot(const std::string& path, const SnapshotData& snap,
                   std::string* error);

/// Reads and validates a snapshot file (magic, version, payload CRC, exact
/// framing). False with `*error` set on any mismatch — a torn or corrupt
/// snapshot is reported, never half-trusted.
bool ReadSnapshot(const std::string& path, SnapshotData& snap,
                  std::string* error);

}  // namespace ingest
}  // namespace gstream

#endif  // GSTREAM_INGEST_SNAPSHOT_H_
