#include "matview/binding.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {

PathBindingSpec PathBindingSpec::For(const std::vector<uint32_t>& pos_to_vertex) {
  PathBindingSpec spec;
  for (uint32_t pos = 0; pos < pos_to_vertex.size(); ++pos) {
    uint32_t v = pos_to_vertex[pos];
    auto it = std::find(spec.schema.begin(), spec.schema.end(), v);
    if (it == spec.schema.end()) {
      spec.schema.push_back(v);
      spec.src_pos.push_back(pos);
    } else {
      spec.eq_checks.emplace_back(spec.src_pos[it - spec.schema.begin()], pos);
    }
  }
  return spec;
}

OwnedBindings PathRowsToBindings(RowRange rows, const PathBindingSpec& spec) {
  OwnedBindings out;
  out.schema = spec.schema;
  out.rows = std::make_unique<Relation>(static_cast<uint32_t>(spec.schema.size()));
  if (rows.rel == nullptr) return out;
  GS_DCHECK(rows.rel->arity() == spec.src_pos.size() + spec.eq_checks.size());

  std::vector<VertexId> row(spec.schema.size());
  for (size_t i = rows.begin; i < rows.end; ++i) {
    const VertexId* r = rows.rel->Row(i);
    bool ok = true;
    for (const auto& [pa, pb] : spec.eq_checks) {
      if (r[pa] != r[pb]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (size_t c = 0; c < spec.src_pos.size(); ++c) row[c] = r[spec.src_pos[c]];
    out.rows->Append(row.data());
  }
  return out;
}

OwnedBindings JoinBindingRanges(const std::vector<uint32_t>& sa, RowRange a,
                                const std::vector<uint32_t>& sb, RowRange b,
                                const HashIndex* b_first_key_index) {
  OwnedBindings out;
  out.schema = sa;
  std::vector<std::pair<uint32_t, uint32_t>> keys;  // (a col, b col)
  std::vector<uint32_t> b_extra_cols;
  for (uint32_t cb = 0; cb < sb.size(); ++cb) {
    auto it = std::find(sa.begin(), sa.end(), sb[cb]);
    if (it != sa.end()) {
      keys.emplace_back(static_cast<uint32_t>(it - sa.begin()), cb);
    } else {
      out.schema.push_back(sb[cb]);
      b_extra_cols.push_back(cb);
    }
  }

  const uint32_t a_arity = static_cast<uint32_t>(sa.size());
  out.rows = std::make_unique<Relation>(static_cast<uint32_t>(out.schema.size()));
  if (a.empty() || b.empty()) return out;
  GS_DCHECK(a.rel->arity() == sa.size() && b.rel->arity() == sb.size());

  // Join into a concatenated scratch relation, then project away b's shared
  // columns. Arities stay small (covering paths are short), so the extra copy
  // is cheap and keeps the join kernel generic.
  Relation concat(a.rel->arity() + b.rel->arity());
  JoinConcat(a, b, keys, b_first_key_index, concat);

  std::vector<VertexId> row(out.schema.size());
  for (size_t i = 0; i < concat.NumRows(); ++i) {
    const VertexId* r = concat.Row(i);
    for (uint32_t c = 0; c < a_arity; ++c) row[c] = r[c];
    for (size_t k = 0; k < b_extra_cols.size(); ++k)
      row[a_arity + k] = r[a.rel->arity() + b_extra_cols[k]];
    out.rows->Append(row.data());
  }
  return out;
}

OwnedBindings PathRowsToBindingsTagged(RowRange rows, const PathBindingSpec& spec,
                                       RowTags tags) {
  OwnedBindings out;
  out.schema = spec.schema;
  out.rows = std::make_unique<Relation>(static_cast<uint32_t>(spec.schema.size()));
  out.rows->EnableProvenance();
  if (rows.rel == nullptr) return out;
  GS_DCHECK(rows.rel->arity() == spec.src_pos.size() + spec.eq_checks.size());

  std::vector<VertexId> row(spec.schema.size());
  for (size_t i = rows.begin; i < rows.end; ++i) {
    const VertexId* r = rows.rel->Row(i);
    bool ok = true;
    for (const auto& [pa, pb] : spec.eq_checks) {
      if (r[pa] != r[pb]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (size_t c = 0; c < spec.src_pos.size(); ++c) row[c] = r[spec.src_pos[c]];
    out.rows->AppendTagged(row.data(), tags.TagOf(i));
  }
  return out;
}

OwnedBindings JoinBindingRangesTagged(const std::vector<uint32_t>& sa, RowRange a,
                                      const std::vector<uint32_t>& sb, RowRange b,
                                      RowTags b_tags,
                                      const HashIndex* b_first_key_index) {
  OwnedBindings out;
  out.schema = sa;
  std::vector<std::pair<uint32_t, uint32_t>> keys;  // (a col, b col)
  std::vector<uint32_t> b_extra_cols;
  for (uint32_t cb = 0; cb < sb.size(); ++cb) {
    auto it = std::find(sa.begin(), sa.end(), sb[cb]);
    if (it != sa.end()) {
      keys.emplace_back(static_cast<uint32_t>(it - sa.begin()), cb);
    } else {
      out.schema.push_back(sb[cb]);
      b_extra_cols.push_back(cb);
    }
  }

  const uint32_t a_arity = static_cast<uint32_t>(sa.size());
  out.rows = std::make_unique<Relation>(static_cast<uint32_t>(out.schema.size()));
  out.rows->EnableProvenance();
  if (a.empty() || b.empty()) return out;
  GS_DCHECK(a.rel->arity() == sa.size() && b.rel->arity() == sb.size());
  GS_DCHECK(a.rel->has_provenance());

  Relation concat(a.rel->arity() + b.rel->arity());
  concat.EnableProvenance();
  JoinConcatDelta(DeltaBatch{a, TagsOfProvenance(*a.rel)}, b, b_tags, keys,
                  b_first_key_index, concat);

  std::vector<VertexId> row(out.schema.size());
  for (size_t i = 0; i < concat.NumRows(); ++i) {
    const VertexId* r = concat.Row(i);
    for (uint32_t c = 0; c < a_arity; ++c) row[c] = r[c];
    for (size_t k = 0; k < b_extra_cols.size(); ++k)
      row[a_arity + k] = r[a.rel->arity() + b_extra_cols[k]];
    out.rows->AppendTagged(row.data(), concat.ProvOf(i));
  }
  return out;
}

int FirstSharedColumn(const std::vector<uint32_t>& sa, const std::vector<uint32_t>& sb) {
  for (uint32_t cb = 0; cb < sb.size(); ++cb)
    if (std::find(sa.begin(), sa.end(), sb[cb]) != sa.end()) return static_cast<int>(cb);
  return -1;
}

}  // namespace gstream
