#ifndef GSTREAM_MATVIEW_BINDING_H_
#define GSTREAM_MATVIEW_BINDING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "matview/join.h"
#include "matview/relation.h"

namespace gstream {

/// Bindings: a relation whose columns are named by query-vertex ids — the
/// intermediate form of the answering phase's final step, where the
/// materialized views of a query's covering paths are joined on their shared
/// vertices (paper §4.1: "the intersection of two paths Pi and Pj are their
/// common vertices").
struct OwnedBindings {
  std::vector<uint32_t> schema;    ///< Query-vertex ids, first-occurrence order.
  std::unique_ptr<Relation> rows;  ///< arity == schema.size().

  bool Empty() const { return rows == nullptr || rows->Empty(); }
  RowRange All() const { return rows ? AllRows(*rows) : RowRange{}; }
};

/// Computes the distinct-vertex schema of a path position map and the
/// equality checks implied by repeated vertices (cyclic covering paths).
struct PathBindingSpec {
  std::vector<uint32_t> schema;    ///< Distinct query vertices, in order.
  std::vector<uint32_t> src_pos;   ///< Source path position per schema column.
  std::vector<std::pair<uint32_t, uint32_t>> eq_checks;  ///< Positions that must agree.

  bool has_repeats() const { return !eq_checks.empty(); }

  static PathBindingSpec For(const std::vector<uint32_t>& pos_to_vertex);
};

/// Converts path-view rows into bindings using `spec` (drops rows violating
/// the equality checks, projects onto the distinct vertices, dedups).
OwnedBindings PathRowsToBindings(RowRange rows, const PathBindingSpec& spec);

/// Natural join of two binding ranges on their shared query vertices (cross
/// product when disjoint). Output schema: `sa` followed by vertices unique to
/// `sb`. `b_first_key_index`, when non-null, must index `b.rel` on the first
/// shared vertex's column in `sb` (pass the index only when such a vertex
/// exists; callers using a `JoinCache` know the column via
/// `FirstSharedColumn`).
OwnedBindings JoinBindingRanges(const std::vector<uint32_t>& sa, RowRange a,
                                const std::vector<uint32_t>& sb, RowRange b,
                                const HashIndex* b_first_key_index = nullptr);

/// Column in `sb` of the first vertex shared with `sa`, or -1 when disjoint.
int FirstSharedColumn(const std::vector<uint32_t>& sa, const std::vector<uint32_t>& sb);

/// Tagged variants (window-delta pipeline, DESIGN.md §7): identical row sets
/// to the functions above, but every produced binding row carries a window
/// provenance tag in the output relation's provenance column.

/// `PathRowsToBindings` over rows whose tags come from `tags`; each binding
/// row keeps its source row's tag.
OwnedBindings PathRowsToBindingsTagged(RowRange rows, const PathBindingSpec& spec,
                                       RowTags tags);

/// `JoinBindingRanges` where `a.rel` is provenance-enabled (a tagged
/// accumulator) and `b`'s rows are tagged by `b_tags`; output rows carry the
/// max of their inputs' tags.
OwnedBindings JoinBindingRangesTagged(const std::vector<uint32_t>& sa, RowRange a,
                                      const std::vector<uint32_t>& sb, RowRange b,
                                      RowTags b_tags,
                                      const HashIndex* b_first_key_index = nullptr);

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_BINDING_H_
