#include "matview/hash_index.h"

#include "common/logging.h"

namespace gstream {

HashIndex::HashIndex(const Relation* rel, uint32_t col, bool build)
    : rel_(rel), col_(col) {
  GS_CHECK(col < rel->arity());
  if (build) CatchUp();
}

void HashIndex::CatchUp() {
  if (generation_ != rel_->generation()) {
    map_.Clear();
    indexed_ = 0;
    generation_ = rel_->generation();
  }
  const size_t n = rel_->NumRows();
  if (indexed_ == n) return;
  // No pre-reserve: n counts rows, not distinct keys, and a fanout-f column
  // would permanently hold an f-times-oversized table (the capacity feeds
  // the fig13c memory accounting). Growth doubling keeps the build O(n).
  for (size_t i = indexed_; i < n; ++i)
    map_.Add(rel_->At(i, col_), static_cast<uint32_t>(i));
  indexed_ = n;
}

size_t HashIndex::MemoryBytes() const {
  return sizeof(*this) + map_.MemoryBytes();
}

}  // namespace gstream
