#include "matview/hash_index.h"

#include "common/logging.h"

namespace gstream {

namespace {
const std::vector<uint32_t> kNoRows;
}  // namespace

HashIndex::HashIndex(const Relation* rel, uint32_t col) : rel_(rel), col_(col) {
  GS_CHECK(col < rel->arity());
  CatchUp();
}

void HashIndex::CatchUp() {
  if (generation_ != rel_->generation()) {
    map_.clear();
    indexed_ = 0;
    generation_ = rel_->generation();
  }
  const size_t n = rel_->NumRows();
  for (size_t i = indexed_; i < n; ++i)
    map_[rel_->At(i, col_)].push_back(static_cast<uint32_t>(i));
  indexed_ = n;
}

const std::vector<uint32_t>& HashIndex::Probe(VertexId key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kNoRows : it->second;
}

size_t HashIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this) + map_.bucket_count() * sizeof(void*);
  for (const auto& [k, rows] : map_)
    bytes += sizeof(k) + sizeof(rows) + rows.capacity() * sizeof(uint32_t) +
             2 * sizeof(void*);
  return bytes;
}

}  // namespace gstream
