#ifndef GSTREAM_MATVIEW_HASH_INDEX_H_
#define GSTREAM_MATVIEW_HASH_INDEX_H_

#include <cstdint>

#include "common/flat_map.h"
#include "common/ids.h"
#include "matview/relation.h"

namespace gstream {

/// Equi-join hash index over one column of a relation: the build-phase hash
/// table of the paper's hash joins (§4.2 "Caching"). Base algorithms build
/// such tables transiently and discard them after each join; the "+"
/// variants keep them in a `JoinCache` and maintain them incrementally
/// (`CatchUp()` indexes only rows appended since the last call — relations
/// are insert-only, so this is sound).
///
/// Postings live in a flat open-addressing map with small-buffer posting
/// lists (see flat_map.h); `Probe` returns a non-owning span whose row ids
/// are in ascending order (rows are indexed in append order).
class HashIndex {
 public:
  /// With `build` (default) the constructor indexes the relation's current
  /// rows; `build = false` defers to the first CatchUp, which lets JoinCache
  /// allocate entries inside its lock and index outside it.
  HashIndex(const Relation* rel, uint32_t col, bool build = true);

  /// Indexes rows appended since construction / the previous CatchUp. When
  /// the relation has seen a retraction since (its `generation()` moved),
  /// the index is rebuilt from scratch — row indexes are only stable within
  /// a generation.
  void CatchUp();

  /// Row indexes whose `col` equals `key` (among indexed rows), ascending.
  /// The span is invalidated by the next CatchUp.
  RowIdSpan Probe(VertexId key) const { return map_.Probe(key); }

  const Relation* relation() const { return rel_; }
  uint32_t column() const { return col_; }
  size_t indexed_rows() const { return indexed_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  const Relation* rel_;
  uint32_t col_;
  size_t indexed_ = 0;
  uint64_t generation_ = 0;
  FlatPostingMap map_;
};

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_HASH_INDEX_H_
