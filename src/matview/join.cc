#include "matview/join.h"

#include <unordered_map>

#include "common/logging.h"

namespace gstream {

namespace {

/// Transient build-phase table: key column value -> row indexes in range.
std::unordered_map<VertexId, std::vector<uint32_t>> BuildTransient(RowRange range,
                                                                   uint32_t col) {
  std::unordered_map<VertexId, std::vector<uint32_t>> table;
  for (size_t i = range.begin; i < range.end; ++i)
    table[range.rel->At(i, col)].push_back(static_cast<uint32_t>(i));
  return table;
}

}  // namespace

void ExtendRight(RowRange prefix, const Relation& base, const HashIndex* base_src_index,
                 Relation& out) {
  if (prefix.empty()) return;
  const uint32_t p_arity = prefix.rel->arity();
  GS_DCHECK(out.arity() == p_arity + 1);
  GS_DCHECK(base.arity() == 2);
  std::vector<VertexId> row(p_arity + 1);

  if (base_src_index != nullptr) {
    // Cached path: probe the maintained index per prefix row.
    for (size_t i = prefix.begin; i < prefix.end; ++i) {
      const VertexId* pr = prefix.rel->Row(i);
      for (uint32_t b : base_src_index->Probe(pr[p_arity - 1])) {
        std::copy(pr, pr + p_arity, row.begin());
        row[p_arity] = base.At(b, 1);
        out.Append(row.data());
      }
    }
    return;
  }

  // Build-and-discard path (paper: hash join, build on the smaller table —
  // the delta — probe by scanning the larger base view).
  auto table = BuildTransient(prefix, p_arity - 1);
  for (size_t b = 0; b < base.NumRows(); ++b) {
    auto it = table.find(base.At(b, 0));
    if (it == table.end()) continue;
    for (uint32_t i : it->second) {
      const VertexId* pr = prefix.rel->Row(i);
      std::copy(pr, pr + p_arity, row.begin());
      row[p_arity] = base.At(b, 1);
      out.Append(row.data());
    }
  }
}

void ExtendRightSingle(RowRange prefix, VertexId src, VertexId dst,
                       const HashIndex* prefix_last_index, Relation& out) {
  if (prefix.empty()) return;
  const uint32_t p_arity = prefix.rel->arity();
  GS_DCHECK(out.arity() == p_arity + 1);
  std::vector<VertexId> row(p_arity + 1);

  auto emit = [&](size_t i) {
    const VertexId* pr = prefix.rel->Row(i);
    std::copy(pr, pr + p_arity, row.begin());
    row[p_arity] = dst;
    out.Append(row.data());
  };

  if (prefix_last_index != nullptr) {
    for (uint32_t i : prefix_last_index->Probe(src))
      if (i >= prefix.begin && i < prefix.end) emit(i);
    return;
  }
  for (size_t i = prefix.begin; i < prefix.end; ++i)
    if (prefix.rel->At(i, p_arity - 1) == src) emit(i);
}

void ExtendLeft(RowRange suffix, const Relation& base, const HashIndex* base_dst_index,
                Relation& out) {
  if (suffix.empty()) return;
  const uint32_t s_arity = suffix.rel->arity();
  GS_DCHECK(out.arity() == s_arity + 1);
  GS_DCHECK(base.arity() == 2);
  std::vector<VertexId> row(s_arity + 1);

  auto emit = [&](size_t s, size_t b) {
    row[0] = base.At(b, 0);
    const VertexId* sr = suffix.rel->Row(s);
    std::copy(sr, sr + s_arity, row.begin() + 1);
    out.Append(row.data());
  };

  if (base_dst_index != nullptr) {
    for (size_t s = suffix.begin; s < suffix.end; ++s)
      for (uint32_t b : base_dst_index->Probe(suffix.rel->At(s, 0))) emit(s, b);
    return;
  }
  auto table = BuildTransient(suffix, 0);
  for (size_t b = 0; b < base.NumRows(); ++b) {
    auto it = table.find(base.At(b, 1));
    if (it == table.end()) continue;
    for (uint32_t s : it->second) emit(s, b);
  }
}

void JoinConcat(RowRange a, RowRange b,
                const std::vector<std::pair<uint32_t, uint32_t>>& keys,
                const HashIndex* b_first_key_index, Relation& out) {
  if (a.empty() || b.empty()) return;
  const uint32_t a_arity = a.rel->arity();
  const uint32_t b_arity = b.rel->arity();
  GS_DCHECK(out.arity() == a_arity + b_arity);
  std::vector<VertexId> row(a_arity + b_arity);

  auto matches = [&](size_t ia, size_t ib) {
    for (const auto& [ca, cb] : keys)
      if (a.rel->At(ia, ca) != b.rel->At(ib, cb)) return false;
    return true;
  };
  auto emit = [&](size_t ia, size_t ib) {
    const VertexId* ra = a.rel->Row(ia);
    const VertexId* rb = b.rel->Row(ib);
    std::copy(ra, ra + a_arity, row.begin());
    std::copy(rb, rb + b_arity, row.begin() + a_arity);
    out.Append(row.data());
  };

  if (keys.empty()) {  // cross product
    for (size_t ia = a.begin; ia < a.end; ++ia)
      for (size_t ib = b.begin; ib < b.end; ++ib) emit(ia, ib);
    return;
  }

  if (b_first_key_index != nullptr) {
    GS_DCHECK(b_first_key_index->column() == keys[0].second);
    for (size_t ia = a.begin; ia < a.end; ++ia) {
      for (uint32_t ib : b_first_key_index->Probe(a.rel->At(ia, keys[0].first))) {
        if (ib < b.begin || ib >= b.end) continue;
        if (matches(ia, ib)) emit(ia, ib);
      }
    }
    return;
  }

  // Build on b's first key column, probe with a.
  auto table = BuildTransient(b, keys[0].second);
  for (size_t ia = a.begin; ia < a.end; ++ia) {
    auto it = table.find(a.rel->At(ia, keys[0].first));
    if (it == table.end()) continue;
    for (uint32_t ib : it->second)
      if (matches(ia, ib)) emit(ia, ib);
  }
}

}  // namespace gstream
