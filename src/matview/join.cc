#include "matview/join.h"

#include <algorithm>

#include "common/flat_map.h"
#include "common/logging.h"

namespace gstream {

namespace {

/// Transient build-phase table: key column value -> row indexes in range.
/// Flat open-addressing postings, pre-sized from the build range so the
/// build loop is allocation-free apart from high-fanout spills.
FlatPostingMap BuildTransient(RowRange range, uint32_t col) {
  FlatPostingMap table;
  table.Reserve(range.size());
  for (size_t i = range.begin; i < range.end; ++i)
    table.Add(range.rel->At(i, col), static_cast<uint32_t>(i));
  return table;
}

/// Below this delta width, scanning the window beats probing an index and
/// filtering its postings to the window (single-update deltas are width 1).
constexpr size_t kSmallDeltaScan = 4;

}  // namespace

void ExtendRight(RowRange prefix, const Relation& base, const HashIndex* base_src_index,
                 Relation& out) {
  if (prefix.empty()) return;
  const uint32_t p_arity = prefix.rel->arity();
  GS_DCHECK(out.arity() == p_arity + 1);
  GS_DCHECK(base.arity() == 2);
  RowScratch row(p_arity + 1);

  if (base_src_index != nullptr) {
    // Cached path: probe the maintained index per prefix row.
    for (size_t i = prefix.begin; i < prefix.end; ++i) {
      const VertexId* pr = prefix.rel->Row(i);
      RowIdSpan hits = base_src_index->Probe(pr[p_arity - 1]);
      if (hits.empty()) continue;
      std::copy(pr, pr + p_arity, row.data());
      for (uint32_t b : hits) {
        row[p_arity] = base.At(b, 1);
        out.Append(row.data());
      }
    }
    return;
  }

  // Build-and-discard path (paper: hash join, build on the smaller table —
  // the delta — probe by scanning the larger base view).
  FlatPostingMap table = BuildTransient(prefix, p_arity - 1);
  for (size_t b = 0; b < base.NumRows(); ++b) {
    RowIdSpan hits = table.Probe(base.At(b, 0));
    if (hits.empty()) continue;
    const VertexId tail = base.At(b, 1);
    for (uint32_t i : hits) {
      const VertexId* pr = prefix.rel->Row(i);
      std::copy(pr, pr + p_arity, row.data());
      row[p_arity] = tail;
      out.Append(row.data());
    }
  }
}

void ExtendRightSingle(RowRange prefix, VertexId src, VertexId dst,
                       const HashIndex* prefix_last_index, Relation& out) {
  if (prefix.empty()) return;
  const uint32_t p_arity = prefix.rel->arity();
  GS_DCHECK(out.arity() == p_arity + 1);
  RowScratch row(p_arity + 1);

  auto emit = [&](size_t i) {
    const VertexId* pr = prefix.rel->Row(i);
    std::copy(pr, pr + p_arity, row.data());
    row[p_arity] = dst;
    out.Append(row.data());
  };

  // Narrow windows (single-update deltas) are cheaper to scan than to probe:
  // the cached path must never do more work than the scan path there.
  if (prefix_last_index != nullptr && prefix.size() > kSmallDeltaScan) {
    RowIdSpan hits = prefix_last_index->Probe(src);
    // Postings are ascending row ids; binary-search the window instead of
    // filtering every hit through [begin, end).
    const uint32_t* lo =
        std::lower_bound(hits.begin(), hits.end(), static_cast<uint32_t>(prefix.begin));
    for (const uint32_t* it = lo; it != hits.end() && *it < prefix.end; ++it)
      emit(*it);
    return;
  }
  for (size_t i = prefix.begin; i < prefix.end; ++i)
    if (prefix.rel->At(i, p_arity - 1) == src) emit(i);
}

void ExtendLeft(RowRange suffix, const Relation& base, const HashIndex* base_dst_index,
                Relation& out) {
  if (suffix.empty()) return;
  const uint32_t s_arity = suffix.rel->arity();
  GS_DCHECK(out.arity() == s_arity + 1);
  GS_DCHECK(base.arity() == 2);
  RowScratch row(s_arity + 1);

  auto emit = [&](size_t s, size_t b) {
    row[0] = base.At(b, 0);
    const VertexId* sr = suffix.rel->Row(s);
    std::copy(sr, sr + s_arity, row.data() + 1);
    out.Append(row.data());
  };

  if (base_dst_index != nullptr) {
    for (size_t s = suffix.begin; s < suffix.end; ++s)
      for (uint32_t b : base_dst_index->Probe(suffix.rel->At(s, 0))) emit(s, b);
    return;
  }
  FlatPostingMap table = BuildTransient(suffix, 0);
  for (size_t b = 0; b < base.NumRows(); ++b) {
    RowIdSpan hits = table.Probe(base.At(b, 1));
    for (uint32_t s : hits) emit(s, b);
  }
}

void JoinConcat(RowRange a, RowRange b,
                const std::vector<std::pair<uint32_t, uint32_t>>& keys,
                const HashIndex* b_first_key_index, Relation& out) {
  if (a.empty() || b.empty()) return;
  const uint32_t a_arity = a.rel->arity();
  const uint32_t b_arity = b.rel->arity();
  GS_DCHECK(out.arity() == a_arity + b_arity);
  RowScratch row(a_arity + b_arity);

  auto matches = [&](size_t ia, size_t ib) {
    for (const auto& [ca, cb] : keys)
      if (a.rel->At(ia, ca) != b.rel->At(ib, cb)) return false;
    return true;
  };
  auto emit = [&](size_t ia, size_t ib) {
    const VertexId* ra = a.rel->Row(ia);
    const VertexId* rb = b.rel->Row(ib);
    std::copy(ra, ra + a_arity, row.data());
    std::copy(rb, rb + b_arity, row.data() + a_arity);
    out.Append(row.data());
  };

  if (keys.empty()) {  // cross product
    out.Reserve(out.NumRows() + a.size() * b.size());
    for (size_t ia = a.begin; ia < a.end; ++ia)
      for (size_t ib = b.begin; ib < b.end; ++ib) emit(ia, ib);
    return;
  }

  // An equi-join emits at most one row per matching pair; seed the output
  // with room for the smaller side. The reserve must stay conservative:
  // Relation::MemoryBytes() is capacity-based and feeds the paper's
  // transient-memory accounting, so over-reserving a selective join would
  // report phantom bytes.
  out.Reserve(out.NumRows() + std::min(a.size(), b.size()));

  if (b_first_key_index != nullptr) {
    GS_DCHECK(b_first_key_index->column() == keys[0].second);
    for (size_t ia = a.begin; ia < a.end; ++ia) {
      RowIdSpan hits = b_first_key_index->Probe(a.rel->At(ia, keys[0].first));
      const uint32_t* lo =
          std::lower_bound(hits.begin(), hits.end(), static_cast<uint32_t>(b.begin));
      for (const uint32_t* it = lo; it != hits.end() && *it < b.end; ++it)
        if (matches(ia, *it)) emit(ia, *it);
    }
    return;
  }

  // Build on b's first key column, probe with a.
  FlatPostingMap table = BuildTransient(b, keys[0].second);
  for (size_t ia = a.begin; ia < a.end; ++ia) {
    RowIdSpan hits = table.Probe(a.rel->At(ia, keys[0].first));
    for (uint32_t ib : hits)
      if (matches(ia, ib)) emit(ia, ib);
  }
}

void ExtendRightDelta(DeltaBatch prefix, const Relation& base,
                      const HashIndex* base_src_index, RowTags base_tags,
                      Relation& out) {
  if (prefix.rows.empty()) return;
  const RowRange range = prefix.rows;
  const uint32_t p_arity = range.rel->arity();
  GS_DCHECK(out.has_provenance() && out.arity() == p_arity + 1);
  GS_DCHECK(base.arity() == 2);
  RowScratch row(p_arity + 1);

  auto emit = [&](size_t p, size_t b) {
    const VertexId* pr = range.rel->Row(p);
    std::copy(pr, pr + p_arity, row.data());
    row[p_arity] = base.At(b, 1);
    out.AppendTagged(row.data(),
                     std::max(prefix.tags.TagOf(p), base_tags.TagOf(b)));
  };

  if (base_src_index != nullptr) {
    for (size_t i = range.begin; i < range.end; ++i)
      for (uint32_t b : base_src_index->Probe(range.rel->At(i, p_arity - 1)))
        emit(i, b);
    return;
  }
  // Build on the (smaller) tagged batch, probe by scanning the base view —
  // once per window instead of once per update.
  FlatPostingMap table = BuildTransient(range, p_arity - 1);
  for (size_t b = 0; b < base.NumRows(); ++b) {
    RowIdSpan hits = table.Probe(base.At(b, 0));
    for (uint32_t i : hits) emit(i, b);
  }
}

void ExtendLeftDelta(DeltaBatch suffix, const Relation& base,
                     const HashIndex* base_dst_index, RowTags base_tags,
                     Relation& out) {
  if (suffix.rows.empty()) return;
  const RowRange range = suffix.rows;
  const uint32_t s_arity = range.rel->arity();
  GS_DCHECK(out.has_provenance() && out.arity() == s_arity + 1);
  GS_DCHECK(base.arity() == 2);
  RowScratch row(s_arity + 1);

  auto emit = [&](size_t s, size_t b) {
    row[0] = base.At(b, 0);
    const VertexId* sr = range.rel->Row(s);
    std::copy(sr, sr + s_arity, row.data() + 1);
    out.AppendTagged(row.data(),
                     std::max(suffix.tags.TagOf(s), base_tags.TagOf(b)));
  };

  if (base_dst_index != nullptr) {
    for (size_t s = range.begin; s < range.end; ++s)
      for (uint32_t b : base_dst_index->Probe(range.rel->At(s, 0))) emit(s, b);
    return;
  }
  FlatPostingMap table = BuildTransient(range, 0);
  for (size_t b = 0; b < base.NumRows(); ++b) {
    RowIdSpan hits = table.Probe(base.At(b, 1));
    for (uint32_t s : hits) emit(s, b);
  }
}

void JoinConcatDelta(DeltaBatch a, RowRange b, RowTags b_tags,
                     const std::vector<std::pair<uint32_t, uint32_t>>& keys,
                     const HashIndex* b_first_key_index, Relation& out) {
  if (a.rows.empty() || b.empty()) return;
  const RowRange ar = a.rows;
  const uint32_t a_arity = ar.rel->arity();
  const uint32_t b_arity = b.rel->arity();
  GS_DCHECK(out.has_provenance() && out.arity() == a_arity + b_arity);
  RowScratch row(a_arity + b_arity);

  auto matches = [&](size_t ia, size_t ib) {
    for (const auto& [ca, cb] : keys)
      if (ar.rel->At(ia, ca) != b.rel->At(ib, cb)) return false;
    return true;
  };
  auto emit = [&](size_t ia, size_t ib) {
    const VertexId* ra = ar.rel->Row(ia);
    const VertexId* rb = b.rel->Row(ib);
    std::copy(ra, ra + a_arity, row.data());
    std::copy(rb, rb + b_arity, row.data() + a_arity);
    out.AppendTagged(row.data(), std::max(a.tags.TagOf(ia), b_tags.TagOf(ib)));
  };

  if (keys.empty()) {  // cross product
    out.Reserve(out.NumRows() + ar.size() * b.size());
    for (size_t ia = ar.begin; ia < ar.end; ++ia)
      for (size_t ib = b.begin; ib < b.end; ++ib) emit(ia, ib);
    return;
  }
  out.Reserve(out.NumRows() + std::min(ar.size(), b.size()));

  if (b_first_key_index != nullptr) {
    GS_DCHECK(b_first_key_index->column() == keys[0].second);
    for (size_t ia = ar.begin; ia < ar.end; ++ia) {
      RowIdSpan hits = b_first_key_index->Probe(ar.rel->At(ia, keys[0].first));
      const uint32_t* lo =
          std::lower_bound(hits.begin(), hits.end(), static_cast<uint32_t>(b.begin));
      for (const uint32_t* it = lo; it != hits.end() && *it < b.end; ++it)
        if (matches(ia, *it)) emit(ia, *it);
    }
    return;
  }

  FlatPostingMap table = BuildTransient(b, keys[0].second);
  for (size_t ia = ar.begin; ia < ar.end; ++ia) {
    RowIdSpan hits = table.Probe(ar.rel->At(ia, keys[0].first));
    for (uint32_t ib : hits)
      if (matches(ia, ib)) emit(ia, ib);
  }
}

}  // namespace gstream
