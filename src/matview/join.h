#ifndef GSTREAM_MATVIEW_JOIN_H_
#define GSTREAM_MATVIEW_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "matview/hash_index.h"
#include "matview/relation.h"

namespace gstream {

/// A contiguous run of rows of a relation — either a full view or the delta
/// appended by the current update.
struct RowRange {
  const Relation* rel = nullptr;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

inline RowRange AllRows(const Relation& r) { return {&r, 0, r.NumRows()}; }
inline RowRange DeltaRows(const Relation& r, size_t from) {
  return {&r, from, r.NumRows()};
}

/// Path-extension join (paper §4.2 Step 2): `out += prefix ⋈ base` where the
/// prefix's last column equals the base edge view's source column (column 0)
/// and the output row is the prefix row extended with the base target
/// (column 1). `out.arity() == prefix arity + 1`.
///
/// `base_src_index`, when non-null, must index `base` column 0; the cached
/// ("+") engines pass it, the base engines pass nullptr and pay the paper's
/// build-and-discard hash-join cost (build over the smaller prefix range,
/// probe by scanning `base`).
void ExtendRight(RowRange prefix, const Relation& base, const HashIndex* base_src_index,
                 Relation& out);

/// Single-update variant: `out += prefix ⋈ {(src, dst)}` joining the prefix's
/// last column against `src`. With `prefix_last_index` (cached engines) this
/// is an O(matches) probe; without it the prefix range is scanned.
void ExtendRightSingle(RowRange prefix, VertexId src, VertexId dst,
                       const HashIndex* prefix_last_index, Relation& out);

/// Leftward path extension (INC walking a path backwards from the update):
/// `out += base ⋈ suffix` joining the base target (column 1) against the
/// suffix's first column; output row is the base source prepended to the
/// suffix row. `base_dst_index`, when non-null, must index `base` column 1.
void ExtendLeft(RowRange suffix, const Relation& base, const HashIndex* base_dst_index,
                Relation& out);

/// General equi-join: emits `a_row ++ b_row` for every pair agreeing on all
/// `keys` (pairs of (a column, b column)). With empty `keys` this is a cross
/// product. `b_first_key_index`, when non-null, must index `b.rel` on
/// `keys[0].second`.
void JoinConcat(RowRange a, RowRange b,
                const std::vector<std::pair<uint32_t, uint32_t>>& keys,
                const HashIndex* b_first_key_index, Relation& out);

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_JOIN_H_
