#ifndef GSTREAM_MATVIEW_JOIN_H_
#define GSTREAM_MATVIEW_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "matview/hash_index.h"
#include "matview/relation.h"

namespace gstream {

/// A contiguous run of rows of a relation — either a full view or the delta
/// appended by the current update.
struct RowRange {
  const Relation* rel = nullptr;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

inline RowRange AllRows(const Relation& r) { return {&r, 0, r.NumRows()}; }
inline RowRange DeltaRows(const Relation& r, size_t from) {
  return {&r, from, r.NumRows()};
}

/// One window-position boundary of a shared view: rows with index >=
/// `row_begin` (up to the next checkpoint) were appended while processing
/// the window update at 1-based `position`.
struct WindowCheckpoint {
  size_t row_begin;
  uint32_t position;
};

/// Per-row window-position tags for the window-delta join pipeline
/// (DESIGN.md §7). Two backings:
///  * `column` — the dense tag array of a provenance-enabled Relation
///    (delta transients);
///  * `checkpoints` — WindowProvenance boundaries of a shared view, tags
///    derived from the row index (ascending `row_begin`; rows before the
///    first checkpoint are pre-window).
/// A default RowTags tags every row 0 (= pre-window / untouched view).
struct RowTags {
  const uint32_t* column = nullptr;
  const WindowCheckpoint* checkpoints = nullptr;
  size_t num_checkpoints = 0;

  uint32_t TagOf(size_t row) const {
    if (column != nullptr) return column[row];
    // Last checkpoint with row_begin <= row owns the interval.
    size_t lo = 0, hi = num_checkpoints;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (checkpoints[mid].row_begin <= row)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo == 0 ? 0 : checkpoints[lo - 1].position;
  }
};

/// Tags backed by `r`'s own provenance column (all-zero when absent).
inline RowTags TagsOfProvenance(const Relation& r) {
  return RowTags{r.ProvData(), nullptr, 0};
}

/// A window's worth of tagged seed rows: the delta a whole batch window
/// appended to one relation, each row tagged with the 1-based window
/// position of the update that produced it. The delta-batch kernels run one
/// build+probe pass over such a batch where the per-update path would run
/// one pass per update.
struct DeltaBatch {
  RowRange rows;
  RowTags tags;
};

/// Path-extension join (paper §4.2 Step 2): `out += prefix ⋈ base` where the
/// prefix's last column equals the base edge view's source column (column 0)
/// and the output row is the prefix row extended with the base target
/// (column 1). `out.arity() == prefix arity + 1`.
///
/// `base_src_index`, when non-null, must index `base` column 0; the cached
/// ("+") engines pass it, the base engines pass nullptr and pay the paper's
/// build-and-discard hash-join cost (build over the smaller prefix range,
/// probe by scanning `base`).
void ExtendRight(RowRange prefix, const Relation& base, const HashIndex* base_src_index,
                 Relation& out);

/// Single-update variant: `out += prefix ⋈ {(src, dst)}` joining the prefix's
/// last column against `src`. With `prefix_last_index` (cached engines) this
/// is an O(matches) probe; without it the prefix range is scanned.
void ExtendRightSingle(RowRange prefix, VertexId src, VertexId dst,
                       const HashIndex* prefix_last_index, Relation& out);

/// Leftward path extension (INC walking a path backwards from the update):
/// `out += base ⋈ suffix` joining the base target (column 1) against the
/// suffix's first column; output row is the base source prepended to the
/// suffix row. `base_dst_index`, when non-null, must index `base` column 1.
void ExtendLeft(RowRange suffix, const Relation& base, const HashIndex* base_dst_index,
                Relation& out);

/// General equi-join: emits `a_row ++ b_row` for every pair agreeing on all
/// `keys` (pairs of (a column, b column)). With empty `keys` this is a cross
/// product. `b_first_key_index`, when non-null, must index `b.rel` on
/// `keys[0].second`.
void JoinConcat(RowRange a, RowRange b,
                const std::vector<std::pair<uint32_t, uint32_t>>& keys,
                const HashIndex* b_first_key_index, Relation& out);

/// Delta-batch variants (window-delta pipeline): same join plans as the
/// untagged kernels above, but the left side is a DeltaBatch of tagged seed
/// rows, the right side's rows carry `b`/`base` tags, and every emitted row
/// lands in the provenance-enabled `out` tagged with the max of its inputs'
/// tags — the window position at which the sequential per-update path would
/// have produced it. One build+probe pass therefore serves every update in
/// the window; sorting/grouping emitted rows by tag reconstructs the exact
/// per-update results.

/// `out += prefix ⋈ base` (see ExtendRight), max-combining tags.
void ExtendRightDelta(DeltaBatch prefix, const Relation& base,
                      const HashIndex* base_src_index, RowTags base_tags,
                      Relation& out);

/// `out += base ⋈ suffix` (see ExtendLeft), max-combining tags.
void ExtendLeftDelta(DeltaBatch suffix, const Relation& base,
                     const HashIndex* base_dst_index, RowTags base_tags,
                     Relation& out);

/// General tagged equi-join (see JoinConcat), max-combining tags.
void JoinConcatDelta(DeltaBatch a, RowRange b, RowTags b_tags,
                     const std::vector<std::pair<uint32_t, uint32_t>>& keys,
                     const HashIndex* b_first_key_index, Relation& out);

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_JOIN_H_
