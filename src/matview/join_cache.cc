#include "matview/join_cache.h"

namespace gstream {

HashIndex* JoinCache::Get(const Relation* rel, uint32_t col) {
  HashIndex* index;
  {
    // The indexes live behind unique_ptr, so only the map structure needs
    // the lock; a concurrent Get for another key may rehash the slot array
    // under us the moment it is released.
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<HashIndex>& slot = cache_.GetOrCreate(Key{rel, col});
    if (slot == nullptr)
      slot = std::make_unique<HashIndex>(rel, col, /*build=*/false);
    index = slot.get();
  }
  index->CatchUp();
  return index;
}

size_t JoinCache::MemoryBytes() const {
  size_t bytes = sizeof(*this) + cache_.MemoryBytes();
  cache_.ForEach([&](const Key&, const std::unique_ptr<HashIndex>& index) {
    bytes += index->MemoryBytes();
  });
  return bytes;
}

HashIndex* WindowJoinCache::Get(const Relation* rel, uint32_t col) {
  HashIndex* index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = cache_.GetOrCreate(Key{rel, col});
    if (++entry.touches < 2) return nullptr;  // first touch: caller scans
    if (entry.index == nullptr)
      entry.index = std::make_unique<HashIndex>(rel, col, /*build=*/false);
    index = entry.index.get();
  }
  index->CatchUp();
  return index;
}

size_t WindowJoinCache::MemoryBytes() const {
  size_t bytes = sizeof(*this) + cache_.MemoryBytes();
  cache_.ForEach([&](const Key&, const Entry& entry) {
    if (entry.index != nullptr) bytes += entry.index->MemoryBytes();
  });
  return bytes;
}

}  // namespace gstream
