#include "matview/join_cache.h"

namespace gstream {

HashIndex* JoinCache::Get(const Relation* rel, uint32_t col) {
  std::unique_ptr<HashIndex>& slot = cache_.GetOrCreate(Key{rel, col});
  if (slot == nullptr) {
    slot = std::make_unique<HashIndex>(rel, col);
  } else {
    slot->CatchUp();
  }
  return slot.get();
}

size_t JoinCache::MemoryBytes() const {
  size_t bytes = sizeof(*this) + cache_.MemoryBytes();
  cache_.ForEach([&](const Key&, const std::unique_ptr<HashIndex>& index) {
    bytes += index->MemoryBytes();
  });
  return bytes;
}

}  // namespace gstream
