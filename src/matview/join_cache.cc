#include "matview/join_cache.h"

#include "common/logging.h"

namespace gstream {

HashIndex* JoinCache::Get(const Relation* rel, uint32_t col) {
  HashIndex* index;
  {
    // The indexes live behind unique_ptr, so only the map structure needs
    // the lock; a concurrent Get for another key may rehash the slot array
    // under us the moment it is released.
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<HashIndex>& slot = cache_.GetOrCreate(Key{rel, col});
    if (slot == nullptr)
      slot = std::make_unique<HashIndex>(rel, col, /*build=*/false);
    index = slot.get();
  }
  index->CatchUp();
  return index;
}

void JoinCache::Evict(const Relation* rel) {
  std::lock_guard<std::mutex> lock(mu_);
  // Collect first: Erase invalidates slot pointers mid-iteration.
  std::vector<Key> doomed;
  cache_.ForEach([&](const Key& key, const std::unique_ptr<HashIndex>&) {
    if (key.first == rel) doomed.push_back(key);
  });
  for (const Key& key : doomed) cache_.Erase(key);
}

size_t JoinCache::MemoryBytes() const {
  size_t bytes = sizeof(*this) + cache_.MemoryBytes();
  cache_.ForEach([&](const Key&, const std::unique_ptr<HashIndex>& index) {
    bytes += index->MemoryBytes();
  });
  return bytes;
}

HashIndex* WindowJoinCache::Get(const Relation* rel, uint32_t col,
                                uint32_t touch_weight) {
  HashIndex* index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = cache_.GetOrCreate(Key{rel, col});
    // A weighted touch stands for `touch_weight` per-query probes (shared
    // finalization collapses them into one call); crediting them all keeps
    // the build decision identical to the per-query pipeline's.
    entry.touches += touch_weight;
    if (entry.touches < 2) return nullptr;  // first touch: caller scans
    // Tiny views: a handful-of-rows scan beats paying the index build and
    // its CatchUp bookkeeping on every touch (ROADMAP §7.5 — plain TRIC's
    // batch overhead at small scales). Declining is result-neutral (an
    // indexed equi-join emits exactly the scan join's rows), and the view
    // is re-checked on each touch, so the index kicks in as soon as the
    // view outgrows the threshold mid-window. An already-built index keeps
    // serving (its build cost is sunk).
    if (entry.index == nullptr && rel->NumRows() < kMinIndexRows) return nullptr;
    if (entry.index == nullptr)
      entry.index = std::make_unique<HashIndex>(rel, col, /*build=*/false);
    index = entry.index.get();
  }
  index->CatchUp();
  return index;
}

size_t WindowJoinCache::MemoryBytes() const {
  size_t bytes = sizeof(*this) + cache_.MemoryBytes();
  cache_.ForEach([&](const Key&, const Entry& entry) {
    if (entry.index != nullptr) bytes += entry.index->MemoryBytes();
  });
  return bytes;
}

void WindowProvenance::Checkpoint(const Relation* rel, uint32_t position) {
  std::vector<WindowCheckpoint>& log = logs_.GetOrCreate(rel);
  const size_t rows = rel->NumRows();
  if (!log.empty()) {
    if (log.back().position == position) return;
    if (log.back().row_begin == rows) {
      // The previous position appended nothing; its empty interval folds
      // into this one.
      log.back().position = position;
      return;
    }
  }
  log.push_back(WindowCheckpoint{rows, position});
}

void WindowProvenance::Checkpoint(const Relation* rel, uint32_t position,
                                  size_t row_begin) {
  std::vector<WindowCheckpoint>& log = logs_.GetOrCreate(rel);
  if (!log.empty() && log.back().position == position) return;
  GS_DCHECK(log.empty() || log.back().row_begin <= row_begin);
  log.push_back(WindowCheckpoint{row_begin, position});
}

RowTags WindowProvenance::TagsFor(const Relation* rel) const {
  const std::vector<WindowCheckpoint>* log = logs_.Find(rel);
  if (log == nullptr || log->empty()) return RowTags{};
  return RowTags{nullptr, log->data(), log->size()};
}

size_t WindowProvenance::WindowDeltaBegin(const Relation* rel) const {
  const std::vector<WindowCheckpoint>* log = logs_.Find(rel);
  if (log == nullptr || log->empty()) return rel->NumRows();
  return log->front().row_begin;
}

size_t WindowProvenance::MemoryBytes() const {
  size_t bytes = sizeof(*this) + logs_.MemoryBytes();
  logs_.ForEach([&](const Relation*, const std::vector<WindowCheckpoint>& log) {
    bytes += log.capacity() * sizeof(WindowCheckpoint);
  });
  return bytes;
}

}  // namespace gstream
