#include "matview/join_cache.h"

namespace gstream {

HashIndex* JoinCache::Get(const Relation* rel, uint32_t col) {
  auto key = Key{rel, col};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, std::make_unique<HashIndex>(rel, col)).first;
  } else {
    it->second->CatchUp();
  }
  return it->second.get();
}

size_t JoinCache::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, index] : cache_) bytes += sizeof(key) + index->MemoryBytes();
  return bytes;
}

}  // namespace gstream
