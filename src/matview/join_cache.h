#ifndef GSTREAM_MATVIEW_JOIN_CACHE_H_
#define GSTREAM_MATVIEW_JOIN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "matview/hash_index.h"
#include "matview/join.h"

namespace gstream {

/// Source of maintained equi-join indexes. Two implementations: the "+"
/// engines' persistent `JoinCache` and the batch windows' transient
/// `WindowJoinCache`.
class JoinIndexSource {
 public:
  virtual ~JoinIndexSource() = default;

  /// A maintained index over `rel` column `col`, or nullptr when the source
  /// declines (callers fall back to the scan join).
  virtual HashIndex* Get(const Relation* rel, uint32_t col) = 0;

  /// Weighted variant for shared window finalization (DESIGN.md §9): one
  /// signature-group pass probes `rel` once where the per-query pipeline
  /// would have probed it `touch_weight` times (once per member), so
  /// touch-amortizing sources credit the full weight to keep their
  /// build-vs-scan decisions identical to the unshared pipeline. Sources
  /// that do not count touches ignore the weight.
  virtual HashIndex* Get(const Relation* rel, uint32_t col, uint32_t touch_weight) {
    (void)touch_weight;
    return Get(rel, col);
  }
};

/// The "+" extension (paper §4.2 "Caching"): instead of discarding the hash
/// tables built during each join, keep them keyed by (relation, column) and
/// maintain them incrementally as the underlying views grow. TRIC+, INV+ and
/// INC+ own one JoinCache; the base algorithms pass null indexes and rebuild
/// per join. The cache itself is a flat open-addressing map — `Get` sits on
/// the per-update hot path of every "+" engine.
class JoinCache : public JoinIndexSource {
 public:
  /// Returns a maintained index over `rel` column `col`, creating it on first
  /// use and catching up on rows appended since the previous call.
  ///
  /// Thread-safety: the cache map is guarded by a mutex so footprint-disjoint
  /// batch shards may call Get concurrently; the CatchUp itself runs outside
  /// the lock, which is sound because disjoint shards never share a relation
  /// (hence never share an index).
  HashIndex* Get(const Relation* rel, uint32_t col) override;

  size_t NumIndexes() const { return cache_.size(); }

  /// Approximate heap footprint of all cached indexes.
  size_t MemoryBytes() const;

  /// Drops every cached index over `rel` (all columns). Part of the query-
  /// lifecycle GC: a garbage-collected view's indexes must go with it, or
  /// the cache dangles into freed relation storage. Call before the
  /// relation is destroyed; finish the removal batch with `Compact()`.
  void Evict(const Relation* rel);

  /// Releases tombstoned capacity after an eviction wave (one rehash, so
  /// callers batch evictions and compact once).
  void Compact() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Compact();
  }

  void Clear() { cache_.Clear(); }

 private:
  using Key = std::pair<const Relation*, uint32_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t seed = 0;
      HashCombine(seed, reinterpret_cast<uintptr_t>(k.first));
      HashCombine(seed, k.second);
      return seed;
    }
  };
  std::mutex mu_;  ///< Guards cache_ (map structure only, not the indexes).
  FlatMap<Key, std::unique_ptr<HashIndex>, KeyHash> cache_;
};

/// Batch-window-scoped index source for the base (non-"+") engines: the
/// paper's base algorithms rebuild their join hash tables per update, so a
/// delta window that touches the same view repeatedly pays the same build
/// over and over. This cache makes the *first* touch of a (relation, column)
/// decline (the caller scans — exactly the sequential base-engine plan) and
/// amortizes from the second touch on through a transient maintained index.
/// The owning engine creates one per insert window and drops it at the
/// window boundary (its bytes count as transient scratch, not engine state),
/// so the base engines keep their defining no-persistent-cache behavior.
///
/// Thread-safety mirrors JoinCache: the map is locked, CatchUp runs outside
/// the lock (disjoint shards never share a relation).
class WindowJoinCache : public JoinIndexSource {
 public:
  /// Views below this row count are never worth an index build within a
  /// window: the break-even between per-touch scans and build-once-probe-
  /// many sits around a few dozen rows (micro_join's Window A/B pairs).
  static constexpr size_t kMinIndexRows = 16;

  HashIndex* Get(const Relation* rel, uint32_t col) override {
    return Get(rel, col, 1);
  }

  /// Touch-counted Get: a shared-finalize pass serving a whole signature
  /// group passes the group size, so the entry reaches the build threshold
  /// exactly when the equivalent per-query passes would have.
  HashIndex* Get(const Relation* rel, uint32_t col, uint32_t touch_weight) override;

  /// Approximate bytes of all indexes built this window (peak-transient
  /// accounting). Call from the coordinator only.
  size_t MemoryBytes() const;

 private:
  using Key = std::pair<const Relation*, uint32_t>;
  struct Entry {
    uint32_t touches = 0;
    std::unique_ptr<HashIndex> index;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t seed = 0;
      HashCombine(seed, reinterpret_cast<uintptr_t>(k.first));
      HashCombine(seed, k.second);
      return seed;
    }
  };
  std::mutex mu_;
  FlatMap<Key, Entry, KeyHash> cache_;
};

/// Window-scoped provenance log of the delta pipeline (DESIGN.md §7): for
/// every shared view a batch window appends to, the row-index boundaries of
/// each window position, recorded as the window replays its updates.
/// `TagsFor` then derives any row's window position from its index alone —
/// the views themselves stay untouched (no widening, no per-row tag writes
/// to shared state).
///
/// One instance per shard per window (shards touch footprint-disjoint
/// relations), so no locking. Dropped at the window boundary.
class WindowProvenance {
 public:
  /// Records that subsequent appends to `rel` belong to window `position`
  /// (1-based, ascending across calls). Call before the appends of each
  /// position; empty positions fold away.
  void Checkpoint(const Relation* rel, uint32_t position);

  /// Checkpoint with an explicit boundary: `row_begin` was `rel`'s row count
  /// before this position's appends. Callers that already track the before-
  /// count use this to log only positions that actually grew the relation
  /// (no empty-touch bookkeeping on the hot path).
  void Checkpoint(const Relation* rel, uint32_t position, size_t row_begin);

  /// Tags for `rel`'s rows; a default (all pre-window) RowTags when the
  /// window never touched `rel`.
  RowTags TagsFor(const Relation* rel) const;

  /// First window row of `rel`: the window's delta range is
  /// [WindowDeltaBegin(rel), rel->NumRows()). `rel->NumRows()` at call time
  /// when untouched.
  size_t WindowDeltaBegin(const Relation* rel) const;

  size_t MemoryBytes() const;

 private:
  struct PtrHash {
    size_t operator()(const Relation* r) const {
      return Mix64(reinterpret_cast<uintptr_t>(r));
    }
  };
  FlatMap<const Relation*, std::vector<WindowCheckpoint>, PtrHash> logs_;
};

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_JOIN_CACHE_H_
