#ifndef GSTREAM_MATVIEW_JOIN_CACHE_H_
#define GSTREAM_MATVIEW_JOIN_CACHE_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/flat_map.h"
#include "common/hash.h"
#include "matview/hash_index.h"

namespace gstream {

/// The "+" extension (paper §4.2 "Caching"): instead of discarding the hash
/// tables built during each join, keep them keyed by (relation, column) and
/// maintain them incrementally as the underlying views grow. TRIC+, INV+ and
/// INC+ own one JoinCache; the base algorithms pass null indexes and rebuild
/// per join. The cache itself is a flat open-addressing map — `Get` sits on
/// the per-update hot path of every "+" engine.
class JoinCache {
 public:
  /// Returns a maintained index over `rel` column `col`, creating it on first
  /// use and catching up on rows appended since the previous call.
  HashIndex* Get(const Relation* rel, uint32_t col);

  size_t NumIndexes() const { return cache_.size(); }

  /// Approximate heap footprint of all cached indexes.
  size_t MemoryBytes() const;

  void Clear() { cache_.Clear(); }

 private:
  using Key = std::pair<const Relation*, uint32_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t seed = 0;
      HashCombine(seed, reinterpret_cast<uintptr_t>(k.first));
      HashCombine(seed, k.second);
      return seed;
    }
  };
  FlatMap<Key, std::unique_ptr<HashIndex>, KeyHash> cache_;
};

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_JOIN_CACHE_H_
