#include "matview/relation.h"

#include <algorithm>

#include "common/logging.h"

namespace gstream {

Relation::Relation(uint32_t arity) : arity_(arity) {
  GS_CHECK_MSG(arity > 0, "relation arity must be positive");
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      prov_enabled_(other.prov_enabled_),
      num_rows_(other.num_rows_),
      generation_(other.generation_),
      data_(std::move(other.data_)),
      prov_(std::move(other.prov_)),
      row_set_(std::move(other.row_set_)) {
  // The dedup set stores hashes + row indexes only (nothing address-bound),
  // so it moves wholesale with the data buffer.
  other.num_rows_ = 0;
  other.row_set_ = FlatRowSet();
}

void Relation::EnableProvenance() {
  GS_CHECK_MSG(num_rows_ == 0, "enable provenance before the first append");
  prov_enabled_ = true;
}

bool Relation::Append(const VertexId* row) {
  const uint64_t hash = HashIds(row, arity_);
  const bool inserted = row_set_.Insert(
      hash, static_cast<uint32_t>(num_rows_),
      [&](uint32_t existing) { return RowEquals(Row(existing), row); },
      [&](uint32_t existing) { return HashIds(Row(existing), arity_); });
  if (!inserted) return false;
  if (row >= data_.data() && row < data_.data() + data_.size()) {
    // Self-append: vector::insert from the vector's own range is UB (and
    // would dangle outright across a growth realloc); stage a copy.
    RowScratch copy(arity_);
    std::copy(row, row + arity_, copy.data());
    data_.insert(data_.end(), copy.data(), copy.data() + arity_);
  } else {
    data_.insert(data_.end(), row, row + arity_);
  }
  if (prov_enabled_) prov_.push_back(0);
  ++num_rows_;
  return true;
}

bool Relation::AppendTagged(const VertexId* row, uint32_t prov) {
  GS_DCHECK(prov_enabled_);
  if (!Append(row)) return false;
  prov_.back() = prov;
  return true;
}

bool Relation::Append(const std::vector<VertexId>& row) {
  GS_DCHECK(row.size() == arity_);
  return Append(row.data());
}

void Relation::Reserve(size_t rows) {
  data_.reserve(rows * arity_);
  row_set_.Reserve(rows,
                   [&](uint32_t existing) { return HashIds(Row(existing), arity_); });
}

size_t Relation::AppendAll(const Relation& other) {
  GS_DCHECK(other.arity_ == arity_);
  Reserve(num_rows_ + other.num_rows_);
  size_t inserted = 0;
  if (prov_enabled_) {
    // Tags travel with the rows (0 when the source carries none).
    for (size_t i = 0; i < other.num_rows_; ++i)
      if (AppendTagged(other.Row(i), other.ProvOf(i))) ++inserted;
  } else {
    for (size_t i = 0; i < other.num_rows_; ++i)
      if (Append(other.Row(i))) ++inserted;
  }
  return inserted;
}

void Relation::RebuildSet() {
  const auto hash_of = [&](uint32_t existing) {
    return HashIds(Row(existing), arity_);
  };
  row_set_.Clear();
  row_set_.Reserve(num_rows_, hash_of);
  for (uint32_t i = 0; i < num_rows_; ++i) {
    const VertexId* row = Row(i);
    row_set_.Insert(
        HashIds(row, arity_), i,
        [&](uint32_t existing) { return RowEquals(Row(existing), row); }, hash_of);
  }
}

size_t Relation::RemoveRowsWhere(const std::function<bool(const VertexId*)>& pred) {
  size_t kept = 0;
  for (size_t i = 0; i < num_rows_; ++i) {
    const VertexId* row = Row(i);
    if (pred(row)) continue;
    if (kept != i) {
      std::copy(row, row + arity_, data_.begin() + kept * arity_);
      if (prov_enabled_) prov_[kept] = prov_[i];
    }
    ++kept;
  }
  const size_t removed = num_rows_ - kept;
  if (removed == 0) return 0;
  data_.resize(kept * arity_);
  if (prov_enabled_) prov_.resize(kept);
  num_rows_ = kept;
  ++generation_;
  RebuildSet();
  return removed;
}

void Relation::Clear() {
  if (num_rows_ == 0) return;
  data_.clear();
  prov_.clear();
  num_rows_ = 0;
  row_set_.Clear();
  ++generation_;
}

size_t Relation::MemoryBytes() const {
  return sizeof(*this) + data_.capacity() * sizeof(VertexId) +
         prov_.capacity() * sizeof(uint32_t) + row_set_.MemoryBytes();
}

}  // namespace gstream
