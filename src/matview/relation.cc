#include "matview/relation.h"

#include "common/logging.h"

namespace gstream {

Relation::Relation(uint32_t arity)
    : arity_(arity), row_set_(16, RowHash{this}, RowEq{this}) {
  GS_CHECK_MSG(arity > 0, "relation arity must be positive");
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      num_rows_(other.num_rows_),
      data_(std::move(other.data_)),
      row_set_(16, RowHash{this}, RowEq{this}) {
  // The dedup functors capture `this`, so the set is rebuilt rather than
  // moved. Row indexes are preserved by construction.
  row_set_.reserve(num_rows_);
  for (uint32_t i = 0; i < num_rows_; ++i) row_set_.insert(i);
  other.num_rows_ = 0;
  other.row_set_.clear();
}

bool Relation::Append(const VertexId* row) {
  // Tentatively append, then insert the index into the dedup set; roll back
  // on duplicates. This avoids hashing rows that are not yet stored.
  data_.insert(data_.end(), row, row + arity_);
  uint32_t idx = static_cast<uint32_t>(num_rows_);
  auto [it, inserted] = row_set_.insert(idx);
  (void)it;
  if (!inserted) {
    data_.resize(data_.size() - arity_);
    return false;
  }
  ++num_rows_;
  return true;
}

bool Relation::Append(const std::vector<VertexId>& row) {
  GS_DCHECK(row.size() == arity_);
  return Append(row.data());
}

size_t Relation::RemoveRowsWhere(const std::function<bool(const VertexId*)>& pred) {
  size_t kept = 0;
  for (size_t i = 0; i < num_rows_; ++i) {
    const VertexId* row = Row(i);
    if (pred(row)) continue;
    if (kept != i)
      std::copy(row, row + arity_, data_.begin() + kept * arity_);
    ++kept;
  }
  const size_t removed = num_rows_ - kept;
  if (removed == 0) return 0;
  data_.resize(kept * arity_);
  num_rows_ = kept;
  ++generation_;
  row_set_.clear();
  for (uint32_t i = 0; i < num_rows_; ++i) row_set_.insert(i);
  return removed;
}

void Relation::Clear() {
  if (num_rows_ == 0) return;
  data_.clear();
  num_rows_ = 0;
  row_set_.clear();
  ++generation_;
}

size_t Relation::MemoryBytes() const {
  return sizeof(*this) + data_.capacity() * sizeof(VertexId) +
         row_set_.size() * (sizeof(uint32_t) + 2 * sizeof(void*)) +
         row_set_.bucket_count() * sizeof(void*);
}

}  // namespace gstream
