#ifndef GSTREAM_MATVIEW_RELATION_H_
#define GSTREAM_MATVIEW_RELATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "common/ids.h"

namespace gstream {

/// A materialized view: a fixed-arity relation of vertex-id tuples with set
/// semantics (paper §4.1 "Materialization": matV[e] stores all updates that
/// match e; path views store the join results along a covering path).
///
/// Rows are append-only and duplicate rows are rejected, which is what makes
/// the delta-based answering phase exact (every derivation of a tuple may be
/// attempted; only the first lands). Insert-only lets `NumRows()` double as a
/// monotone version for incremental hash-index maintenance.
///
/// Storage is columnar-flat: one contiguous id buffer plus a flat
/// open-addressing dedup set (hash + row index, no per-row nodes), so appends
/// are allocation-free between capacity doublings.
///
/// Provenance (window-delta join pipeline, DESIGN.md §7): a relation may
/// carry an optional provenance column — one `uint32_t` window position per
/// row, packed in a parallel buffer so the id columns, their layout, and the
/// dedup hashing stay untouched. Row identity remains the id columns alone:
/// the delta pipeline guarantees every derivation of a row carries the same
/// tag (a row's contributing view rows are determined by its ids), so a
/// duplicate `AppendTagged` keeps the existing row and its tag.
///
/// Not copyable. Move-constructible, but note that hash indexes hold stable
/// pointers to a relation — anything indexed must stay put; own such
/// relations via std::unique_ptr.
class Relation {
 public:
  explicit Relation(uint32_t arity);
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&&) = delete;

  /// Appends `row` (arity() ids) unless an equal row exists.
  /// Returns true when the row was inserted.
  bool Append(const VertexId* row);
  bool Append(const std::vector<VertexId>& row);

  /// Switches on the provenance column (call before the first append; used
  /// by window-delta transients, never by shared views). Rows appended via
  /// plain `Append` get tag 0 (= pre-window).
  void EnableProvenance();
  bool has_provenance() const { return prov_enabled_; }

  /// Appends `row` tagged with window position `prov`; on a duplicate the
  /// existing row keeps its tag (derivations of equal rows carry equal tags
  /// — enforced in debug builds). Requires an enabled provenance column.
  bool AppendTagged(const VertexId* row, uint32_t prov);

  /// Window position tag of row `i` (0 when no provenance column).
  uint32_t ProvOf(size_t i) const { return prov_enabled_ ? prov_[i] : 0; }

  /// Dense per-row tag array, or nullptr without a provenance column.
  const uint32_t* ProvData() const { return prov_enabled_ ? prov_.data() : nullptr; }

  /// Pre-sizes storage for `rows` total rows (data buffer + dedup set).
  void Reserve(size_t rows);

  /// Appends every row of `other` (arities must match). Returns the number
  /// of rows actually inserted.
  size_t AppendAll(const Relation& other);

  /// Retraction support (paper §4.3: edge deletions remove the affected
  /// tuples from the materialized views). Removes every row for which
  /// `pred(row_pointer)` is true, compacting storage and rebuilding the
  /// dedup set. Returns the number of rows removed; bumps `generation()`
  /// when anything changed, which tells dependent hash indexes to rebuild.
  size_t RemoveRowsWhere(const std::function<bool(const VertexId*)>& pred);

  /// Drops all rows (bumps `generation()` when non-empty).
  void Clear();

  /// Incremented by every retraction; row indexes are only stable within a
  /// generation.
  uint64_t generation() const { return generation_; }

  uint32_t arity() const { return arity_; }
  size_t NumRows() const { return num_rows_; }
  bool Empty() const { return num_rows_ == 0; }

  /// Pointer to the first id of row `i`.
  const VertexId* Row(size_t i) const { return data_.data() + i * arity_; }
  VertexId At(size_t row, uint32_t col) const { return data_[row * arity_ + col]; }

  /// Monotone version counter (== NumRows()).
  uint64_t version() const { return num_rows_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  bool RowEquals(const VertexId* a, const VertexId* b) const {
    for (uint32_t c = 0; c < arity_; ++c)
      if (a[c] != b[c]) return false;
    return true;
  }

  /// Rebuilds the dedup set from the stored rows.
  void RebuildSet();

  uint32_t arity_;
  bool prov_enabled_ = false;
  size_t num_rows_ = 0;
  uint64_t generation_ = 0;
  std::vector<VertexId> data_;
  std::vector<uint32_t> prov_;  ///< One tag per row when prov_enabled_.
  FlatRowSet row_set_;
};

}  // namespace gstream

#endif  // GSTREAM_MATVIEW_RELATION_H_
