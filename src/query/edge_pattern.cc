#include "query/edge_pattern.h"

namespace gstream {

std::string GenericEdgePattern::ToString(const StringInterner& interner) const {
  std::string s = "(";
  s += src_is_var() ? "?var" : interner.Lookup(src);
  s += ")-[";
  s += interner.Lookup(label);
  s += "]->(";
  s += dst_is_var() ? "?var" : interner.Lookup(dst);
  s += ")";
  return s;
}

std::array<GenericEdgePattern, 4> Generalizations(const EdgeUpdate& u) {
  return {GenericEdgePattern{u.src, u.label, u.dst},
          GenericEdgePattern{u.src, u.label, kNoVertex},
          GenericEdgePattern{kNoVertex, u.label, u.dst},
          GenericEdgePattern{kNoVertex, u.label, kNoVertex}};
}

}  // namespace gstream
