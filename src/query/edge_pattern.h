#ifndef GSTREAM_QUERY_EDGE_PATTERN_H_
#define GSTREAM_QUERY_EDGE_PATTERN_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/ids.h"
#include "common/interning.h"
#include "graph/update.h"

namespace gstream {

/// A variable-genericized edge pattern: the unit of clustering in TRIC and of
/// inverted indexing in INV/INC (paper §4.1 "Variable Handling": all variable
/// vertices are substituted by the generic "?var" so that structurally equal
/// restrictions share index entries and materialized views).
///
/// `src`/`dst` hold an interned vertex label for literal endpoints and
/// `kNoVertex` for variable endpoints.
struct GenericEdgePattern {
  VertexId src = kNoVertex;
  LabelId label = kNoLabel;
  VertexId dst = kNoVertex;

  bool src_is_var() const { return src == kNoVertex; }
  bool dst_is_var() const { return dst == kNoVertex; }

  /// True iff graph edge (s, l, t) satisfies this pattern's restrictions.
  bool Matches(VertexId s, LabelId l, VertexId t) const {
    return l == label && (src_is_var() || src == s) && (dst_is_var() || dst == t);
  }
  bool Matches(const EdgeUpdate& u) const { return Matches(u.src, u.label, u.dst); }

  friend bool operator==(const GenericEdgePattern& a, const GenericEdgePattern& b) {
    return a.src == b.src && a.label == b.label && a.dst == b.dst;
  }

  /// Debug rendering, e.g. `(?var)-[knows]->(alice)`.
  std::string ToString(const StringInterner& interner) const;
};

struct GenericEdgePatternHash {
  size_t operator()(const GenericEdgePattern& p) const {
    size_t seed = 0;
    HashCombine(seed, p.src);
    HashCombine(seed, p.label);
    HashCombine(seed, p.dst);
    return seed;
  }
};

/// The (up to 4) generic patterns a concrete edge can satisfy:
/// (s, t), (s, ?var), (?var, t), (?var, ?var). Engines probe their pattern
/// indexes with each of these at answering time.
std::array<GenericEdgePattern, 4> Generalizations(const EdgeUpdate& u);

}  // namespace gstream

#endif  // GSTREAM_QUERY_EDGE_PATTERN_H_
