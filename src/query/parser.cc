#include "query/parser.h"

#include <cctype>
#include <unordered_map>

namespace gstream {

namespace {

/// Single-pass recursive-descent scanner over the pattern text.
class Scanner {
 public:
  Scanner(std::string_view text, StringInterner& interner)
      : text_(text), interner_(interner) {}

  ParseResult Run() {
    ParseResult result;
    SkipSpace();
    // Optional Cypher-flavoured MATCH keyword.
    if (MatchKeyword("MATCH")) SkipSpace();
    if (Eof()) return Fail("empty pattern");
    while (true) {
      if (!ParseClause(result)) return result;  // error already recorded
      SkipSpace();
      if (Eof()) break;
      if (!Consume(';') && !Consume(',')) return Fail("expected ';' or ',' between clauses");
      SkipSpace();
      if (Eof()) break;  // tolerate trailing separator
    }
    if (!result.pattern.IsValid()) return Fail("pattern has no edges");
    result.ok = true;
    return result;
  }

 private:
  bool ParseClause(ParseResult& result) {
    uint32_t src;
    if (!ParseVertex(result, src)) return false;
    SkipSpace();
    if (!Consume('-') || !Consume('[')) {
      result = Fail("expected '-[' after vertex");
      return false;
    }
    SkipSpace();
    std::string label = ParseIdent();
    if (label.empty()) {
      result = Fail("expected edge label");
      return false;
    }
    SkipSpace();
    if (!Consume(']') || !Consume('-') || !Consume('>')) {
      result = Fail("expected ']->' after edge label");
      return false;
    }
    SkipSpace();
    uint32_t dst;
    if (!ParseVertex(result, dst)) return false;
    result.pattern.AddEdge(src, interner_.Intern(label), dst);
    return true;
  }

  bool ParseVertex(ParseResult& result, uint32_t& out_idx) {
    SkipSpace();
    if (!Consume('(')) {
      result = Fail("expected '('");
      return false;
    }
    SkipSpace();
    bool is_var = Consume('?');
    std::string name = ParseIdent();
    if (name.empty()) {
      result = Fail("expected vertex name");
      return false;
    }
    SkipSpace();
    // Optional property constraints: (?x {age>25, city=4}).
    std::vector<QueryPattern::VertexConstraint> constraints;
    if (Consume('{')) {
      while (true) {
        SkipSpace();
        QueryPattern::VertexConstraint c;
        if (!ParseConstraint(result, c)) return false;
        constraints.push_back(c);
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume('}')) break;
        result = Fail("expected ',' or '}' in constraint list");
        return false;
      }
      SkipSpace();
    }
    if (!Consume(')')) {
      result = Fail("expected ')'");
      return false;
    }
    if (is_var) {
      std::string var = "?" + name;
      auto it = vars_.find(var);
      if (it != vars_.end()) {
        out_idx = it->second;
      } else {
        out_idx = result.pattern.AddVariable(var);
        vars_.emplace(var, out_idx);
      }
    } else {
      VertexId literal = interner_.Intern(name);
      auto it = literals_.find(literal);
      if (it != literals_.end()) {
        out_idx = it->second;
      } else {
        out_idx = result.pattern.AddLiteral(literal);
        literals_.emplace(literal, out_idx);
      }
    }
    for (const auto& c : constraints)
      result.pattern.AddConstraint(out_idx, c.key, c.op, c.value);
    return true;
  }

  bool ParseConstraint(ParseResult& result, QueryPattern::VertexConstraint& out) {
    std::string key = ParseIdent();
    if (key.empty()) {
      result = Fail("expected property name");
      return false;
    }
    SkipSpace();
    using CmpOp = QueryPattern::CmpOp;
    if (Consume('!')) {
      if (!Consume('=')) {
        result = Fail("expected '=' after '!'");
        return false;
      }
      out.op = CmpOp::kNe;
    } else if (Consume('<')) {
      out.op = Consume('=') ? CmpOp::kLe : CmpOp::kLt;
    } else if (Consume('>')) {
      out.op = Consume('=') ? CmpOp::kGe : CmpOp::kGt;
    } else if (Consume('=')) {
      out.op = CmpOp::kEq;
    } else {
      result = Fail("expected comparison operator");
      return false;
    }
    SkipSpace();
    bool negative = Consume('-');
    std::string digits;
    while (!Eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      digits += text_[pos_];
      ++pos_;
    }
    if (digits.empty()) {
      result = Fail("expected integer constraint value");
      return false;
    }
    out.key = interner_.Intern(key);
    out.value = std::stoll(digits) * (negative ? -1 : 1);
    return true;
  }

  std::string ParseIdent() {
    std::string s;
    while (!Eof()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
          c == ':' || c == '@') {
        s += c;
        ++pos_;
      } else {
        break;
      }
    }
    return s;
  }

  bool MatchKeyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) == kw) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  bool Consume(char c) {
    if (!Eof() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Eof() const { return pos_ >= text_.size(); }

  ParseResult Fail(const std::string& msg) {
    ParseResult r;
    r.ok = false;
    r.error = msg + " at offset " + std::to_string(pos_);
    return r;
  }

  std::string_view text_;
  StringInterner& interner_;
  size_t pos_ = 0;
  std::unordered_map<std::string, uint32_t> vars_;
  std::unordered_map<VertexId, uint32_t> literals_;
};

}  // namespace

ParseResult ParsePattern(std::string_view text, StringInterner& interner) {
  return Scanner(text, interner).Run();
}

}  // namespace gstream
