#ifndef GSTREAM_QUERY_PARSER_H_
#define GSTREAM_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "common/interning.h"
#include "query/pattern.h"

namespace gstream {

/// Result of parsing a textual pattern; `ok == false` carries a message with
/// the offending position.
struct ParseResult {
  bool ok = false;
  QueryPattern pattern;
  std::string error;
};

/// Parses the textual query pattern language.
///
/// Grammar (whitespace-insensitive):
///
///   pattern := [ "MATCH" ] clause { (";" | ",") clause }
///   clause  := vertex "-[" label "]->" vertex
///   vertex  := "(" name ")"
///   name    := "?" ident        -- variable (same name = same vertex)
///            | ident            -- literal entity label
///
/// Example (the paper's Fig. 3 check-in query):
///
///   (?p1)-[knows]->(?p2); (?p1)-[checksIn]->(?plc); (?p2)-[checksIn]->(?plc);
///   (?plc)-[partOf]->(rio)
///
/// Literal entity labels and edge labels are interned into `interner`.
ParseResult ParsePattern(std::string_view text, StringInterner& interner);

}  // namespace gstream

#endif  // GSTREAM_QUERY_PARSER_H_
