#include "query/path_cover.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace gstream {

namespace {

/// Backward BFS from `start` through covered edges only; returns the reversed
/// prepend path (vertices+edges ending at `start`) to the nearest root
/// (in-degree-0 vertex), or an empty path when no covered in-edge exists.
void FindPrepend(const QueryPattern& q, const std::vector<bool>& covered,
                 uint32_t start, std::vector<uint32_t>& pre_vertices,
                 std::vector<uint32_t>& pre_edges) {
  pre_vertices.clear();
  pre_edges.clear();
  std::deque<uint32_t> frontier{start};
  std::unordered_set<uint32_t> visited{start};
  // parent[v] = (prev vertex, edge used) walking backwards.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> parent;
  uint32_t root = start;
  bool found = false;
  while (!frontier.empty() && !found) {
    uint32_t v = frontier.front();
    frontier.pop_front();
    for (uint32_t e : q.InEdges(v)) {
      if (!covered[e]) continue;
      uint32_t u = q.edge(e).src;
      if (visited.count(u)) continue;
      visited.insert(u);
      parent[u] = {v, e};
      if (q.InEdges(u).empty()) {
        root = u;
        found = true;
        break;
      }
      frontier.push_back(u);
    }
  }
  if (!found) return;
  // Unroll root -> ... -> start.
  uint32_t v = root;
  pre_vertices.push_back(v);
  while (v != start) {
    auto [next, e] = parent[v];
    pre_edges.push_back(e);
    pre_vertices.push_back(next);
    v = next;
  }
}

}  // namespace

std::vector<CoveringPath> ExtractCoveringPaths(const QueryPattern& q) {
  GS_CHECK_MSG(q.IsValid(), "covering paths need a valid (edge-bearing) pattern");
  const size_t num_edges = q.NumEdges();
  std::vector<bool> covered(num_edges, false);
  size_t num_covered = 0;
  std::vector<CoveringPath> paths;

  auto pick_start = [&]() -> uint32_t {
    // Preference 1: an in-degree-0 root with an uncovered out-edge.
    for (uint32_t v = 0; v < q.NumVertices(); ++v) {
      if (!q.InEdges(v).empty()) continue;
      for (uint32_t e : q.OutEdges(v))
        if (!covered[e]) return v;
    }
    // Preference 2: the source of the smallest uncovered edge.
    for (uint32_t e = 0; e < num_edges; ++e)
      if (!covered[e]) return q.edge(e).src;
    GS_CHECK(false);
    return 0;
  };

  while (num_covered < num_edges) {
    uint32_t start = pick_start();
    CoveringPath path;

    // When the walk starts mid-graph, prepend the covered route from the
    // nearest root so shared prefixes re-appear in every path (paper Fig. 4:
    // Q1's P2 repeats the hasMod edge).
    std::vector<uint32_t> pre_v, pre_e;
    FindPrepend(q, covered, start, pre_v, pre_e);
    if (!pre_v.empty()) {
      path.vertices = pre_v;
      path.edges = pre_e;
    } else {
      path.vertices.push_back(start);
    }

    // Forward greedy walk along uncovered edges (each edge used once per
    // path).
    std::unordered_set<uint32_t> in_path(path.edges.begin(), path.edges.end());
    uint32_t v = path.vertices.back();
    while (true) {
      uint32_t chosen = kNoVertex;
      for (uint32_t e : q.OutEdges(v)) {
        if (!covered[e] && !in_path.count(e)) {
          chosen = e;
          break;
        }
      }
      if (chosen == kNoVertex) break;
      covered[chosen] = true;
      ++num_covered;
      in_path.insert(chosen);
      path.edges.push_back(chosen);
      v = q.edge(chosen).dst;
      path.vertices.push_back(v);
    }
    GS_CHECK_MSG(!path.edges.empty(), "walk made no progress");
    paths.push_back(std::move(path));
  }

  // Remove paths contiguously contained in another path (keep first of
  // duplicates).
  std::vector<CoveringPath> kept;
  for (size_t i = 0; i < paths.size(); ++i) {
    bool redundant = false;
    for (size_t j = 0; j < paths.size() && !redundant; ++j) {
      if (i == j) continue;
      if (paths[i].edges.size() > paths[j].edges.size()) continue;
      if (paths[i] == paths[j]) {
        redundant = j < i;  // exact duplicate: keep the earliest
        continue;
      }
      redundant = IsSubPath(paths[i], paths[j]);
    }
    if (!redundant) kept.push_back(paths[i]);
  }
  return kept;
}

std::vector<GenericEdgePattern> GenericSignature(const QueryPattern& q,
                                                 const CoveringPath& path) {
  std::vector<GenericEdgePattern> sig;
  sig.reserve(path.edges.size());
  for (uint32_t e : path.edges) sig.push_back(q.Genericized(e));
  return sig;
}

bool IsSubPath(const CoveringPath& inner, const CoveringPath& outer) {
  if (inner.edges.empty() || inner.edges.size() > outer.edges.size()) return false;
  auto it = std::search(outer.edges.begin(), outer.edges.end(), inner.edges.begin(),
                        inner.edges.end());
  return it != outer.edges.end();
}

}  // namespace gstream
