#ifndef GSTREAM_QUERY_PATH_COVER_H_
#define GSTREAM_QUERY_PATH_COVER_H_

#include <cstdint>
#include <vector>

#include "query/edge_pattern.h"
#include "query/pattern.h"

namespace gstream {

/// One directed path P = {v1 -e1-> v2 -e2-> ... -ek-> v(k+1)} through a query
/// graph (Definition 4.1). Entries are local indexes into the owning
/// `QueryPattern`; `vertices.size() == edges.size() + 1`. A path may revisit
/// a vertex (cycles), never an edge.
struct CoveringPath {
  std::vector<uint32_t> vertices;
  std::vector<uint32_t> edges;

  size_t Length() const { return edges.size(); }

  friend bool operator==(const CoveringPath& a, const CoveringPath& b) {
    return a.vertices == b.vertices && a.edges == b.edges;
  }
};

/// Extracts a covering path set CP(Q) (Definition 4.2): every vertex and
/// every edge of `q` appears in at least one path, redundant sub-paths are
/// removed.
///
/// Greedy strategy (paper §4.1 Step 1): repeatedly walk depth-first from a
/// preferred start vertex (in-degree-0 roots first) along unvisited edges
/// until no edge can extend the walk; a walk that must begin mid-graph is
/// first extended backwards through already-covered edges to the nearest
/// root, which recreates the paper's shared-prefix decompositions (Fig. 4:
/// P1/P2 of Q1 both carry the `hasMod` edge). Finally, paths that are
/// contiguous sub-paths of other paths are dropped.
///
/// Requires `q.IsValid()`; output is deterministic for a given pattern.
std::vector<CoveringPath> ExtractCoveringPaths(const QueryPattern& q);

/// The trie signature of a path: its genericized edge patterns in order
/// (paper §4.1 Step 2 input).
std::vector<GenericEdgePattern> GenericSignature(const QueryPattern& q,
                                                 const CoveringPath& path);

/// True if `inner`'s edge sequence occurs contiguously inside `outer`'s.
bool IsSubPath(const CoveringPath& inner, const CoveringPath& outer);

}  // namespace gstream

#endif  // GSTREAM_QUERY_PATH_COVER_H_
