#include "query/pattern.h"

#include "common/logging.h"

namespace gstream {

uint32_t QueryPattern::AddVariable(std::string name) {
  uint32_t idx = static_cast<uint32_t>(vertices_.size());
  vertices_.push_back(Vertex{true, kNoVertex, std::move(name)});
  out_.emplace_back();
  in_.emplace_back();
  return idx;
}

uint32_t QueryPattern::AddLiteral(VertexId label) {
  uint32_t idx = static_cast<uint32_t>(vertices_.size());
  vertices_.push_back(Vertex{false, label, {}});
  out_.emplace_back();
  in_.emplace_back();
  return idx;
}

uint32_t QueryPattern::AddEdge(uint32_t src, LabelId label, uint32_t dst) {
  GS_CHECK(src < vertices_.size() && dst < vertices_.size());
  uint32_t idx = static_cast<uint32_t>(edges_.size());
  edges_.push_back(Edge{src, dst, label});
  out_[src].push_back(idx);
  in_[dst].push_back(idx);
  return idx;
}

void QueryPattern::AddConstraint(uint32_t vertex, LabelId key, CmpOp op,
                                 int64_t value) {
  GS_CHECK(vertex < vertices_.size());
  constraints_.push_back(VertexConstraint{vertex, key, op, value});
}

bool QueryPattern::EvalCmp(CmpOp op, int64_t lhs, int64_t rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
  }
  return false;
}

GenericEdgePattern QueryPattern::Genericized(uint32_t edge_idx) const {
  const Edge& e = edges_[edge_idx];
  GenericEdgePattern p;
  p.label = e.label;
  p.src = vertices_[e.src].is_var ? kNoVertex : vertices_[e.src].literal;
  p.dst = vertices_[e.dst].is_var ? kNoVertex : vertices_[e.dst].literal;
  return p;
}

bool QueryPattern::IsValid() const {
  if (edges_.empty()) return false;
  for (uint32_t v = 0; v < vertices_.size(); ++v)
    if (out_[v].empty() && in_[v].empty()) return false;
  return true;
}

std::string QueryPattern::ToString(const StringInterner& interner) const {
  std::string s;
  auto render_vertex = [&](uint32_t v) -> std::string {
    const Vertex& vx = vertices_[v];
    if (vx.is_var) {
      // Positional variable naming keeps the form canonical regardless of the
      // original variable names.
      return "?v" + std::to_string(v);
    }
    return interner.Lookup(vx.literal);
  };
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) s += "; ";
    s += '(';
    s += render_vertex(edges_[i].src);
    s += ")-[";
    s += interner.Lookup(edges_[i].label);
    s += "]->(";
    s += render_vertex(edges_[i].dst);
    s += ')';
  }
  return s;
}

size_t QueryPattern::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += vertices_.capacity() * sizeof(Vertex);
  for (const auto& v : vertices_) bytes += v.var_name.capacity();
  bytes += edges_.capacity() * sizeof(Edge);
  bytes += constraints_.capacity() * sizeof(VertexConstraint);
  for (const auto& adj : out_) bytes += sizeof(adj) + adj.capacity() * sizeof(uint32_t);
  for (const auto& adj : in_) bytes += sizeof(adj) + adj.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace gstream
