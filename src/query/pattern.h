#ifndef GSTREAM_QUERY_PATTERN_H_
#define GSTREAM_QUERY_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/interning.h"
#include "query/edge_pattern.h"

namespace gstream {

/// A query graph pattern Q = (V_Q, E_Q, vars, l_V, l_E) (Definition 3.4):
/// a directed labeled multigraph whose vertices are either literals (bound to
/// a specific entity label) or variables.
///
/// Vertices are addressed by their local index in [0, NumVertices()).
/// Matching semantics are homomorphic (SPARQL/Cypher-like): literals must map
/// to the entity with that label, repeated variables bind consistently, and
/// distinct variables may map to the same graph vertex.
class QueryPattern {
 public:
  struct Vertex {
    bool is_var = true;
    VertexId literal = kNoVertex;   ///< Interned entity label when !is_var.
    std::string var_name;           ///< Diagnostic name when is_var ("?x").
  };

  struct Edge {
    uint32_t src = 0;  ///< Local index of the source vertex.
    uint32_t dst = 0;  ///< Local index of the target vertex.
    LabelId label = kNoLabel;
  };

  /// Comparison operator of a vertex property constraint.
  enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  /// A property-graph constraint (paper §4.3): the vertex bound at `vertex`
  /// must have property `key` and `property <op> value` must hold. A vertex
  /// with the property missing fails the constraint.
  struct VertexConstraint {
    uint32_t vertex = 0;
    LabelId key = kNoLabel;
    CmpOp op = CmpOp::kEq;
    int64_t value = 0;
  };

  /// Adds a variable vertex; returns its local index.
  uint32_t AddVariable(std::string name = "?var");

  /// Adds a literal vertex bound to entity `label`; returns its local index.
  uint32_t AddLiteral(VertexId label);

  /// Adds a directed edge between existing local vertex indexes.
  uint32_t AddEdge(uint32_t src, LabelId label, uint32_t dst);

  /// Adds a property constraint on local vertex `vertex`.
  void AddConstraint(uint32_t vertex, LabelId key, CmpOp op, int64_t value);

  const std::vector<VertexConstraint>& constraints() const { return constraints_; }
  bool HasConstraints() const { return !constraints_.empty(); }

  /// Evaluates one constraint against a property value (missing = fail).
  static bool EvalCmp(CmpOp op, int64_t lhs, int64_t rhs);

  size_t NumVertices() const { return vertices_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  const Vertex& vertex(uint32_t i) const { return vertices_[i]; }
  const Edge& edge(uint32_t i) const { return edges_[i]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Out-edge indexes of local vertex `v`, in insertion order.
  const std::vector<uint32_t>& OutEdges(uint32_t v) const { return out_[v]; }
  /// In-edge indexes of local vertex `v`.
  const std::vector<uint32_t>& InEdges(uint32_t v) const { return in_[v]; }

  /// The genericized pattern of edge `i` (paper §4.1 "Variable Handling").
  GenericEdgePattern Genericized(uint32_t edge_idx) const;

  /// True when every vertex touches at least one edge and there is at least
  /// one edge (single-vertex patterns are not meaningful subscriptions).
  bool IsValid() const;

  /// Canonical text form (also accepted by `ParsePattern`); stable across
  /// runs, usable as a dedup key for generated query sets.
  std::string ToString(const StringInterner& interner) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<VertexConstraint> constraints_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
};

}  // namespace gstream

#endif  // GSTREAM_QUERY_PATTERN_H_
