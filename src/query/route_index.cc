#include "query/route_index.h"

#include "common/logging.h"

namespace gstream {

void RoutePrefilter::Add(const GenericEdgePattern& p) {
  const size_t word = static_cast<size_t>(p.label) >> 6;
  if (word >= label_bits_.size()) label_bits_.resize(word + 1, 0);
  label_bits_[word] |= 1ull << (p.label & 63u);
  class_counts_.GetOrCreate(p.label).count[RouteClassOf(p)] += 1;
}

void RoutePrefilter::Remove(const GenericEdgePattern& p) {
  LabelClasses* c = class_counts_.Find(p.label);
  GS_DCHECK(c != nullptr && c->count[RouteClassOf(p)] > 0);
  if (c == nullptr) return;
  c->count[RouteClassOf(p)] -= 1;
  for (uint32_t cls = 0; cls < 4; ++cls)
    if (c->count[cls] > 0) return;
  class_counts_.Erase(p.label);
  label_bits_[static_cast<size_t>(p.label) >> 6] &= ~(1ull << (p.label & 63u));
}

size_t RoutePrefilter::MemoryBytes() const {
  return label_bits_.capacity() * sizeof(uint64_t) + class_counts_.MemoryBytes();
}

}  // namespace gstream
