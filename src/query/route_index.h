#ifndef GSTREAM_QUERY_ROUTE_INDEX_H_
#define GSTREAM_QUERY_ROUTE_INDEX_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "query/edge_pattern.h"

namespace gstream {

/// Endpoint-generalization class of a pattern: which endpoints are literal.
/// Bit 0 = literal source, bit 1 = literal target — so LL = 3, L? = 1,
/// ?L = 2, ?? = 0. The four classes partition every pattern an edge can
/// satisfy (see Generalizations), which is what lets the routing prefilter
/// skip whole probe families per label.
inline uint32_t RouteClassOf(const GenericEdgePattern& p) {
  return (p.src_is_var() ? 0u : 1u) | (p.dst_is_var() ? 0u : 2u);
}

/// O(1) reject filter in front of the routing postings: a label bitset (any
/// registered pattern with that label at all) plus a per-label 4-bit mask of
/// the endpoint-generalization classes present. Most streamed edges whose
/// label no query mentions are rejected by one word test; edges whose label
/// is registered probe only the classes that exist instead of all four
/// generalizations. Entries are refcounted per distinct pattern, so the
/// filter stays exact under query churn.
class RoutePrefilter {
 public:
  void Add(const GenericEdgePattern& p);
  void Remove(const GenericEdgePattern& p);

  /// True when some registered pattern has `u`'s label (conservative: the
  /// pattern's endpoints may still mismatch).
  bool MayMatch(const EdgeUpdate& u) const {
    const size_t word = static_cast<size_t>(u.label) >> 6;
    return word < label_bits_.size() &&
           ((label_bits_[word] >> (u.label & 63u)) & 1u) != 0;
  }

  /// Bit (1 << class) set for every endpoint class with live patterns under
  /// `label`; 0 when the label is unregistered.
  uint8_t ClassMask(LabelId label) const {
    const LabelClasses* c = class_counts_.Find(label);
    if (c == nullptr) return 0;
    uint8_t mask = 0;
    for (uint32_t cls = 0; cls < 4; ++cls)
      if (c->count[cls] > 0) mask = static_cast<uint8_t>(mask | (1u << cls));
    return mask;
  }

  bool Empty() const { return class_counts_.size() == 0; }
  void Compact() { class_counts_.Compact(); }
  size_t MemoryBytes() const;

 private:
  struct LabelClasses {
    std::array<uint32_t, 4> count{};  ///< Live patterns per endpoint class.
  };
  std::vector<uint64_t> label_bits_;
  FlatMap<uint32_t, LabelClasses, VertexIdHash> class_counts_;
};

/// The query routing index (DESIGN.md §12): genericized edge pattern ->
/// posting list of routing targets (signature-group ids for the inverted
/// engines, trie nodes for TRIC), over the SIMD flat-map family, fronted by
/// a RoutePrefilter. Routing an incoming edge is an O(1) label test plus at
/// most one probe per live endpoint class — independent of how many queries
/// are registered; the posting lists hold *shared* targets (groups/nodes),
/// so their lengths track distinct query structure, not tenant count.
template <typename Target>
class RouteIndex {
 public:
  /// Registers target `t` under pattern `p`. A (pattern, target) pair is
  /// registered at shared-structure granularity (group creation, node
  /// creation), so callers never add the same pair twice.
  void Add(const GenericEdgePattern& p, Target t) {
    std::vector<Target>& list = postings_.GetOrCreate(p);
    if (list.empty()) prefilter_.Add(p);
    list.push_back(t);
  }

  /// Unregisters one (pattern, target) pair; erases drained postings (and
  /// their prefilter counts). Returns false when the pair was absent.
  bool Remove(const GenericEdgePattern& p, Target t) {
    std::vector<Target>* list = postings_.Find(p);
    if (list == nullptr) return false;
    auto it = std::find(list->begin(), list->end(), t);
    if (it == list->end()) return false;
    list->erase(it);
    if (list->empty()) {
      postings_.Erase(p);
      prefilter_.Remove(p);
    }
    return true;
  }

  bool MayMatch(const EdgeUpdate& u) const { return prefilter_.MayMatch(u); }

  /// Appends every target whose pattern `u` satisfies, deduplicated, and
  /// returns how many were appended. Probes only the endpoint classes the
  /// prefilter records for `u`'s label.
  size_t Route(const EdgeUpdate& u, std::vector<Target>& out) const {
    if (!prefilter_.MayMatch(u)) return 0;
    const size_t begin = out.size();
    const uint8_t mask = prefilter_.ClassMask(u.label);
    int probes = 0;
    const auto probe = [&](VertexId s, VertexId t) {
      const std::vector<Target>* list =
          postings_.Find(GenericEdgePattern{s, u.label, t});
      if (list == nullptr || list->empty()) return;
      out.insert(out.end(), list->begin(), list->end());
      ++probes;
    };
    if (mask & (1u << 3)) probe(u.src, u.dst);
    if (mask & (1u << 1)) probe(u.src, kNoVertex);
    if (mask & (1u << 2)) probe(kNoVertex, u.dst);
    if (mask & (1u << 0)) probe(kNoVertex, kNoVertex);
    if (probes > 1) {
      // A target registered under several matching patterns (e.g. a group
      // whose signature uses both (a,l,?) and (?,l,b)) must route once.
      std::sort(out.begin() + begin, out.end());
      out.erase(std::unique(out.begin() + begin, out.end()), out.end());
    }
    return out.size() - begin;
  }

  /// The posting list of exactly `p` (no generalization), or null. The
  /// pointer is into flat-map slot storage — invalidated by Add/Remove/
  /// Compact, same contract as the trie's NodesFor.
  const std::vector<Target>* Find(const GenericEdgePattern& p) const {
    return postings_.Find(p);
  }

  size_t NumPatterns() const { return postings_.size(); }
  bool Empty() const { return postings_.size() == 0; }

  /// Releases tombstoned slots after a churn wave (deferred: call once per
  /// removal wave / group rebuild, not per Remove).
  void Compact() {
    postings_.Compact();
    prefilter_.Compact();
  }

  void Clear() {
    postings_ = FlatMap<GenericEdgePattern, std::vector<Target>,
                        GenericEdgePatternHash>();
    prefilter_ = RoutePrefilter();
  }

  size_t MemoryBytes() const {
    size_t bytes = postings_.MemoryBytes() + prefilter_.MemoryBytes();
    postings_.ForEach([&](const GenericEdgePattern&, const std::vector<Target>& l) {
      bytes += l.capacity() * sizeof(Target);
    });
    return bytes;
  }

 private:
  RoutePrefilter prefilter_;
  FlatMap<GenericEdgePattern, std::vector<Target>, GenericEdgePatternHash>
      postings_;
};

}  // namespace gstream

#endif  // GSTREAM_QUERY_ROUTE_INDEX_H_
