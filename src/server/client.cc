#include "server/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "server/net.h"

namespace gstream {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point Deadline(int millis) {
  return Clock::now() + std::chrono::milliseconds(millis);
}

constexpr size_t kDictStringsPerFrame = 4096;

}  // namespace

Client::~Client() { Close(); }

void Client::set_port(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.port = port;
}

void Client::SetDictionary(std::vector<std::string> strings) {
  if (strings.size() >= dict_.size()) dict_ = std::move(strings);
}

bool Client::Connect(std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      if (error != nullptr) *error = "client is closed";
      return false;
    }
    if (connected_) return true;
    if (injector_ == nullptr && opts_.faults.any()) {
      injector_ = std::make_unique<ingest::WireFaultInjector>(opts_.fault_seed,
                                                              opts_.faults);
    }
  }

  std::string err = "no connection attempt made";
  int backoff = opts_.reconnect_initial_millis;
  for (int attempt = 0; attempt <= opts_.max_reconnects; ++attempt) {
    if (attempt > 0) {
      ::usleep(static_cast<useconds_t>(backoff) * 1000);
      backoff = std::min(
          static_cast<int>(backoff * opts_.reconnect_factor + 0.5),
          opts_.reconnect_max_millis);
    }
    // Fully tear down the previous connection (stale reader included)
    // before dialing again.
    std::thread old_reader;
    int old_fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        if (error != nullptr) *error = "client is closed";
        return false;
      }
      old_fd = fd_;
      fd_ = -1;
      connected_ = false;
      old_reader = std::move(reader_);
    }
    if (old_fd >= 0) ShutdownFd(old_fd);
    if (old_reader.joinable()) old_reader.join();
    if (old_fd >= 0) CloseFd(old_fd);

    if (HandshakeOnce(&err)) return true;
  }
  if (error != nullptr) {
    *error = "connect failed after " + std::to_string(opts_.max_reconnects + 1) +
             " attempts: " + err;
  }
  return false;
}

bool Client::HandshakeOnce(std::string* error) {
  std::string host;
  int port = 0;
  uint64_t resume_notify = kNoOffset;
  bool first_connect = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    host = opts_.host;
    port = opts_.port;
    first_connect = stats_.connects == 0;
    if (!first_connect) resume_notify = next_notify_;
  }

  std::string err;
  const int fd = ConnectTcp(host, port, opts_.connect_timeout_millis, &err);
  if (fd < 0) {
    *error = err;
    return false;
  }

  HelloMsg hello;
  hello.name = opts_.name;
  hello.resume_notify = resume_notify;
  const std::vector<uint8_t> hello_frame = EncodeHello(hello);

  if (injector_ != nullptr && injector_->TakeHandshakeReset()) {
    // Write a strict prefix of the Hello, then reset — the server must
    // survive a connection that dies mid-handshake.
    SendAll(fd, hello_frame.data(), hello_frame.size() / 2);
    ShutdownFd(fd);
    CloseFd(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.handshake_resets = injector_->handshake_resets_fired();
    }
    *error = "injected handshake reset";
    return false;
  }

  if (!SendAll(fd, hello_frame.data(), hello_frame.size())) {
    CloseFd(fd);
    *error = "handshake write failed";
    return false;
  }

  Frame f;
  const ReadStatus st = ReadFrame(fd, opts_.idle_timeout_millis, f, &err);
  if (st != ReadStatus::kOk) {
    CloseFd(fd);
    *error = "handshake read failed: " + err;
    return false;
  }
  if (f.type == FrameType::kError) {
    ErrorMsg em;
    DecodeError(f.payload, em);
    CloseFd(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.server_errors;
    }
    *error = "server rejected handshake: " + em.message;
    return false;
  }
  HelloAckMsg ack;
  if (f.type != FrameType::kHelloAck || !DecodeHelloAck(f.payload, ack)) {
    CloseFd(fd);
    *error = "handshake: expected HelloAck";
    return false;
  }

  // Re-register every subscription (fire-and-forget; acks arrive through
  // the reader) and rewind the send cursors: the full dictionary is resent
  // (interning is idempotent) and edges resume from the server's acked
  // offset (at-least-once; the server deduplicates the overlap).
  std::map<uint32_t, std::string> subs_copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs_copy = subs_;
  }
  {
    std::lock_guard<std::mutex> wlock(write_mu_);
    for (const auto& [sub_id, pattern] : subs_copy) {
      SubscribeMsg sm;
      sm.sub_id = sub_id;
      sm.pattern = pattern;
      const std::vector<uint8_t> frame = EncodeSubscribe(sm);
      if (!SendAll(fd, frame.data(), frame.size())) {
        CloseFd(fd);
        *error = "handshake: resubscribe write failed";
        return false;
      }
    }
  }
  next_dict_unsent_ = 0;
  if (ack.producer_acked != kNoOffset) {
    next_unsent_ = std::min(next_unsent_, ack.producer_acked);
  }
  // A frame held back for reordering belongs to the connection that died: it
  // never hit the wire, and the rewound cursor resends its records. Releasing
  // it here would splice stale bytes into the new stream — ahead of the dict,
  // or with a base the rewind already stepped behind.
  if (injector_ != nullptr) injector_->DiscardHeld();

  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_ = fd;
    connected_ = true;
    ++epoch_;
    hello_ack_ = ack;
    applied_ = std::max(applied_, ack.applied_records);
    if (ack.producer_acked != kNoOffset)
      acked_ = std::max(acked_, ack.producer_acked);
    ++stats_.connects;
    if (stats_.connects > 1) ++stats_.reconnects;
    reader_ = std::thread(&Client::ReaderLoop, this, fd, epoch_);
    cv_.notify_all();
  }
  return true;
}

bool Client::FlushHeldFaults() {
  if (injector_ == nullptr) return true;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!connected_) return false;
    fd = fd_;
  }
  std::lock_guard<std::mutex> wlock(write_mu_);
  const ingest::WireFaultInjector::Action action = injector_->Flush();
  for (const std::vector<uint8_t>& chunk : action.chunks) {
    if (!SendAll(fd, chunk.data(), chunk.size())) {
      std::lock_guard<std::mutex> lock(mu_);
      connected_ = false;
      return false;
    }
  }
  return true;
}

bool Client::SendFrame(const std::vector<uint8_t>& frame, bool with_faults) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!connected_) return false;
    fd = fd_;
  }
  std::lock_guard<std::mutex> wlock(write_mu_);
  if (with_faults && injector_ != nullptr) {
    ingest::WireFaultInjector::Action action = injector_->OnFrame(frame);
    if (action.delay_micros > 0)
      ::usleep(static_cast<useconds_t>(action.delay_micros));
    bool ok = true;
    for (const std::vector<uint8_t>& chunk : action.chunks) {
      if (!SendAll(fd, chunk.data(), chunk.size())) {
        ok = false;
        break;
      }
    }
    if (action.drop_connection) {
      ShutdownFd(fd);
      ok = false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.faults_torn = injector_->frames_torn();
      stats_.faults_duplicated = injector_->frames_duplicated();
      stats_.faults_reordered = injector_->frames_reordered();
      if (!ok) connected_ = false;
    }
    return ok;
  }
  if (!SendAll(fd, frame.data(), frame.size())) {
    std::lock_guard<std::mutex> lock(mu_);
    connected_ = false;
    return false;
  }
  return true;
}

bool Client::SendPending(std::string* error) {
  for (;;) {
    // Dictionary delta first: edges reference these ids.
    if (next_dict_unsent_ < dict_.size()) {
      if (!Connect(error)) return false;
      const size_t n =
          std::min(kDictStringsPerFrame, dict_.size() - next_dict_unsent_);
      DictMsg dm;
      dm.first_id = static_cast<uint32_t>(next_dict_unsent_);
      dm.strings.assign(dict_.begin() + static_cast<long>(next_dict_unsent_),
                        dict_.begin() + static_cast<long>(next_dict_unsent_ + n));
      if (!SendFrame(EncodeDict(dm), /*with_faults=*/false)) continue;
      next_dict_unsent_ += n;
      continue;
    }
    if (next_unsent_ >= stream_.size()) {
      // A pass can end with the injector still holding a frame for
      // reordering; release it or the stream tail is lost, not delayed —
      // no real transport loses a frame it merely reordered. Connect first:
      // a flush failure means the connection died, and without a reconnect
      // here this loop would spin on the dead connection forever.
      if (!Connect(error)) return false;
      // Connect may have re-handshaked, rewinding the send cursors to the
      // server's acked offset — returning now would strand the rewound tail
      // as "sent" and idle forever; go around and resend it instead.
      if (next_dict_unsent_ < dict_.size() || next_unsent_ < stream_.size())
        continue;
      if (!FlushHeldFaults()) continue;
      return true;
    }
    if (!Connect(error)) return false;
    const size_t n =
        std::min(opts_.edges_per_frame, stream_.size() - next_unsent_);
    EdgesMsg em;
    em.base = next_unsent_;
    em.records.assign(stream_.begin() + static_cast<long>(next_unsent_),
                      stream_.begin() + static_cast<long>(next_unsent_ + n));
    if (!SendFrame(EncodeEdges(em), /*with_faults=*/true)) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.records_sent += n;
    }
    next_unsent_ += n;
  }
}

bool Client::Subscribe(uint32_t sub_id, const std::string& pattern,
                       SubAckMsg* ack, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs_[sub_id] = pattern;
    sub_acks_.erase(sub_id);
  }
  if (!Connect(error)) return false;
  SubscribeMsg sm;
  sm.sub_id = sub_id;
  sm.pattern = pattern;
  SendFrame(EncodeSubscribe(sm), /*with_faults=*/false);

  const auto deadline = Deadline(opts_.call_timeout_millis);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = sub_acks_.find(sub_id);
    if (it != sub_acks_.end()) {
      if (it->second.status == static_cast<uint8_t>(SubStatus::kError)) {
        // The server keeps the connection open; drop the local registration
        // so reconnects do not re-send a pattern the server rejects.
        subs_.erase(sub_id);
      }
      if (ack != nullptr) *ack = it->second;
      return true;
    }
    if (Clock::now() >= deadline) {
      if (error != nullptr) *error = "subscribe timed out";
      return false;
    }
    if (!connected_) {
      lock.unlock();
      if (!Connect(error)) return false;  // reconnect re-sends the subscribe
      lock.lock();
    } else {
      cv_.wait_until(lock, deadline);
    }
  }
}

bool Client::Unsubscribe(uint32_t sub_id, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs_.erase(sub_id);
    sub_acks_.erase(sub_id);
  }
  if (!Connect(error)) return false;
  UnsubscribeMsg um;
  um.sub_id = sub_id;
  SendFrame(EncodeUnsubscribe(um), /*with_faults=*/false);
  return true;
}

bool Client::StreamEdges(const std::vector<EdgeUpdate>& updates,
                         std::string* error) {
  stream_.insert(stream_.end(), updates.begin(), updates.end());
  return SendPending(error);
}

bool Client::WaitApplied(uint64_t target_records, std::string* error) {
  const auto deadline = Deadline(opts_.call_timeout_millis);
  for (;;) {
    bool need_reconnect = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (acked_ >= target_records) return true;
      if (Clock::now() >= deadline) {
        if (error != nullptr) {
          *error = "timed out waiting for ack of " +
                   std::to_string(target_records) + " records (acked " +
                   std::to_string(acked_) + ")";
        }
        return false;
      }
      if (connected_) {
        cv_.wait_until(lock, std::min(deadline, Deadline(50)));
        continue;
      }
      need_reconnect = true;
    }
    if (need_reconnect) {
      // The connection died with records possibly unacked: reconnect (which
      // rewinds the send cursor to the server's acked offset) and resend.
      if (!Connect(error)) return false;
      if (!SendPending(error)) return false;
    }
  }
}

void Client::ReaderLoop(int fd, uint64_t epoch) {
  int idle_millis = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || epoch_ != epoch) return;
    }
    Frame f;
    std::string err;
    const ReadStatus st = ReadFrame(fd, opts_.heartbeat_millis, f, &err);
    if (st == ReadStatus::kTimeout) {
      idle_millis += opts_.heartbeat_millis;
      if (idle_millis >= opts_.idle_timeout_millis) {
        DropConnection(epoch);
        return;
      }
      const std::vector<uint8_t> hb = EncodeHeartbeat();
      std::lock_guard<std::mutex> wlock(write_mu_);
      if (!SendAll(fd, hb.data(), hb.size())) {
        DropConnection(epoch);
        return;
      }
      continue;
    }
    if (st != ReadStatus::kOk) {
      DropConnection(epoch);
      return;
    }
    idle_millis = 0;
    switch (f.type) {
      case FrameType::kNotify: {
        NotifyMsg m;
        if (!DecodeNotify(f.payload, m)) break;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.notifies;
          next_notify_ = std::max(next_notify_, m.record_index + 1);
        }
        if (on_notify_) on_notify_(m);
        break;
      }
      case FrameType::kProgress: {
        ProgressMsg m;
        if (!DecodeProgress(f.payload, m)) break;
        std::lock_guard<std::mutex> lock(mu_);
        applied_ = std::max(applied_, m.applied_records);
        if (m.producer_acked != kNoOffset)
          acked_ = std::max(acked_, m.producer_acked);
        cv_.notify_all();
        break;
      }
      case FrameType::kSubAck: {
        SubAckMsg m;
        if (!DecodeSubAck(f.payload, m)) break;
        std::lock_guard<std::mutex> lock(mu_);
        sub_acks_[m.sub_id] = m;
        cv_.notify_all();
        break;
      }
      case FrameType::kDrain: {
        DrainMsg m;
        if (!DecodeDrain(f.payload, m)) break;
        {
          std::lock_guard<std::mutex> lock(mu_);
          drained_ = true;
          applied_ = std::max(applied_, m.applied_records);
          cv_.notify_all();
        }
        if (on_drain_) on_drain_(m);
        break;
      }
      case FrameType::kError: {
        ErrorMsg m;
        DecodeError(f.payload, m);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.server_errors;
        }
        // The server closes after an Error frame; fall through to the close
        // path on the next read (or drop now — either works).
        DropConnection(epoch);
        return;
      }
      case FrameType::kHeartbeat:
      default:
        break;
    }
  }
}

void Client::DropConnection(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ == epoch) connected_ = false;
  cv_.notify_all();
}

void Client::Close() {
  std::thread reader;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    fd = fd_;
    fd_ = -1;
    connected_ = false;
    reader = std::move(reader_);
    cv_.notify_all();
  }
  if (fd >= 0) {
    const std::vector<uint8_t> bye = EncodeBye();
    std::lock_guard<std::mutex> wlock(write_mu_);
    SendAll(fd, bye.data(), bye.size());
    ShutdownFd(fd);
  }
  if (reader.joinable()) reader.join();
  if (fd >= 0) CloseFd(fd);
}

ClientStats Client::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

HelloAckMsg Client::last_hello_ack() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hello_ack_;
}

bool Client::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drained_;
}

}  // namespace server
}  // namespace gstream
