#ifndef GSTREAM_SERVER_CLIENT_H_
#define GSTREAM_SERVER_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/update.h"
#include "ingest/fault_injector.h"
#include "server/protocol.h"

namespace gstream {
namespace server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Stable identity: the server keys the producer stream position and the
  /// subscription registry on it, which is what makes reconnect-resume exact.
  std::string name = "client";

  int connect_timeout_millis = 2000;
  /// Reads poll at heartbeat granularity; a timed-out read sends a
  /// heartbeat, and idle_timeout_millis of total silence from the server
  /// counts as a dead connection.
  int heartbeat_millis = 500;
  int idle_timeout_millis = 10000;
  /// How long a synchronous call (Subscribe, WaitApplied) waits.
  int call_timeout_millis = 30000;

  /// Exponential-backoff reconnect.
  int reconnect_initial_millis = 20;
  int reconnect_max_millis = 1000;
  double reconnect_factor = 2.0;
  int max_reconnects = 10;

  size_t edges_per_frame = 256;

  /// Outgoing-direction wire faults (torn/duplicated/reordered/delayed
  /// frames, mid-handshake resets) for the resilience tests.
  ingest::WireFaultConfig faults;
  uint64_t fault_seed = 1;
};

/// Counters the CLI greps and the tests assert.
struct ClientStats {
  uint64_t connects = 0;    ///< Successful handshakes (1 = never reconnected).
  uint64_t reconnects = 0;  ///< Handshakes after the first.
  uint64_t notifies = 0;
  uint64_t records_sent = 0;  ///< Including at-least-once resend overlap.
  uint64_t server_errors = 0;
  uint64_t faults_torn = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_reordered = 0;
  uint64_t handshake_resets = 0;
};

/// Reconnecting protocol client. A background reader thread dispatches
/// server frames to the callbacks and answers liveness; the caller's thread
/// drives Connect/Subscribe/StreamEdges/WaitApplied, transparently
/// reconnecting with exponential backoff and resuming exactly:
///  * edges resume from the server's acked producer offset (at-least-once
///    resend; the server deduplicates the overlap);
///  * notifications resume from the next index this client has not seen
///    (Hello.resume_notify; the server replays its notification log);
///  * the dictionary is resent from id 0 (interning is idempotent) and every
///    subscription is re-registered (the server reattaches by sub_id).
class Client {
 public:
  using NotifyFn = std::function<void(const NotifyMsg&)>;
  using DrainFn = std::function<void(const DrainMsg&)>;

  explicit Client(ClientOptions opts) : opts_(std::move(opts)) {}
  ~Client();

  /// Optional callbacks; set before Connect.
  void OnNotify(NotifyFn fn) { on_notify_ = std::move(fn); }
  void OnDrain(DrainFn fn) { on_drain_ = std::move(fn); }

  /// Handshakes (connecting if needed). False with `*error` set after
  /// max_reconnects failed attempts.
  bool Connect(std::string* error);

  /// Re-targets the next (re)connect — a restarted server binds a new
  /// ephemeral port.
  void set_port(int port);

  /// Registers `strings` as client dictionary ids `0..n)`; call before
  /// streaming edges that use those ids. Appending more later is fine;
  /// replacing is not.
  void SetDictionary(std::vector<std::string> strings);

  /// Synchronous subscribe: sends and waits for the matching SubAck. False
  /// with `*error` set on timeout/connection failure; a server-side reject
  /// (bad pattern) returns true with ack->status == SubStatus::kError.
  bool Subscribe(uint32_t sub_id, const std::string& pattern, SubAckMsg* ack,
                 std::string* error);

  bool Unsubscribe(uint32_t sub_id, std::string* error);

  /// Appends `updates` (client dictionary id space) to the producer stream
  /// and sends everything not yet sent, reconnecting/resending as needed.
  bool StreamEdges(const std::vector<EdgeUpdate>& updates, std::string* error);

  /// Blocks until the server acks `target_records` of this producer's
  /// stream as applied. False with `*error` set on timeout.
  bool WaitApplied(uint64_t target_records, std::string* error);

  /// Clean close: Bye, stop the reader, close the socket. Idempotent.
  void Close();

  ClientStats stats() const;
  HelloAckMsg last_hello_ack() const;
  /// True once the server announced a graceful drain.
  bool drained() const;

 private:
  bool HandshakeOnce(std::string* error);
  bool SendFrame(const std::vector<uint8_t>& frame, bool with_faults);
  bool SendPending(std::string* error);
  /// Releases a frame the fault injector held back for reordering when a
  /// send pass ends (reordering delays frames, it never drops them).
  bool FlushHeldFaults();
  void ReaderLoop(int fd, uint64_t epoch);
  void DropConnection(uint64_t epoch);

  ClientOptions opts_;
  NotifyFn on_notify_;
  DrainFn on_drain_;

  // Caller-thread state (no lock needed): the producer stream + send cursors.
  std::vector<std::string> dict_;
  std::vector<EdgeUpdate> stream_;
  uint64_t next_unsent_ = 0;
  uint64_t next_dict_unsent_ = 0;
  std::unique_ptr<ingest::WireFaultInjector> injector_;

  std::mutex write_mu_;  ///< Serializes socket writes (caller + heartbeats).

  mutable std::mutex mu_;  ///< Connection + progress state, cv-signalled.
  std::condition_variable cv_;
  int fd_ = -1;
  bool connected_ = false;
  uint64_t epoch_ = 0;  ///< Bumped per connection; stale readers exit.
  std::thread reader_;
  bool closed_ = false;
  HelloAckMsg hello_ack_;
  uint64_t acked_ = 0;          ///< Producer records the server applied.
  uint64_t applied_ = 0;        ///< Server's global applied count.
  uint64_t next_notify_ = 0;    ///< Next notification index not yet seen.
  bool drained_ = false;
  std::map<uint32_t, std::string> subs_;        ///< sub_id -> pattern.
  std::map<uint32_t, SubAckMsg> sub_acks_;      ///< Latest ack per sub_id.
  ClientStats stats_;
};

}  // namespace server
}  // namespace gstream

#endif  // GSTREAM_SERVER_CLIENT_H_
