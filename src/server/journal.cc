#include "server/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>

#include "ingest/crc32c.h"
#include "ingest/gsb_writer.h"

namespace gstream {
namespace server {

using namespace ingest;  // NOLINT: gsb codec symbols

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Journal> Journal::Create(const std::string& path,
                                         std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr)
      *error = "journal " + path + ": " + what + ": " + std::strerror(errno);
    return nullptr;
  };
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");

  // Streaming header: counts stay 0 (written once, before any data); the
  // salt in the upper flag bits makes this journal's identity unique, so a
  // snapshot can never be replayed against a different journal.
  std::random_device rd;
  const uint32_t salt = (static_cast<uint32_t>(rd()) << kGsbFlagSaltShift) |
                        kGsbFlagStreaming;
  std::vector<uint8_t> hdr;
  hdr.reserve(kGsbHeaderBytes);
  for (uint8_t c : kGsbMagic) hdr.push_back(c);
  PutU32(hdr, kGsbVersion);
  PutU32(hdr, salt);
  PutU32(hdr, 0);  // dict_count
  PutU64(hdr, 0);  // record_count
  const uint32_t crc = Crc32c(hdr.data(), hdr.size());
  PutU32(hdr, crc);

  std::unique_ptr<Journal> j(new Journal(fd, path));
  j->identity_ = GsbIdentity{crc, 0, 0};
  if (!j->WriteBytes(hdr, error)) return nullptr;
  if (!j->Fsync(error)) return nullptr;
  return j;
}

std::unique_ptr<Journal> Journal::OpenForAppend(
    const std::string& path, uint64_t valid_bytes, uint32_t next_seq,
    uint64_t records, uint32_t dict_written, const GsbIdentity& identity,
    std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr)
      *error = "journal " + path + ": " + what + ": " + std::strerror(errno);
    return nullptr;
  };
  int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return fail("open");
  // Drop any torn tail the recovery scan quarantined, then append after the
  // last valid block.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    ::close(fd);
    return fail("ftruncate");
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return fail("lseek");
  }
  std::unique_ptr<Journal> j(new Journal(fd, path));
  j->identity_ = identity;
  j->next_seq_ = next_seq;
  j->records_ = records;
  j->dict_written_ = dict_written;
  if (!j->Fsync(error)) return nullptr;
  return j;
}

bool Journal::WriteBytes(const std::vector<uint8_t>& bytes,
                         std::string* error) {
  const uint8_t* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t w = ::write(fd_, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = "journal " + path_ + ": write: " + std::strerror(errno);
      return false;
    }
    p += w;
    left -= static_cast<size_t>(w);
  }
  return true;
}

bool Journal::AppendWindow(const std::vector<std::string>& new_dict_strings,
                           const EdgeUpdate* records, size_t n,
                           std::string* error) {
  std::vector<uint8_t> out;
  std::vector<uint8_t> payload;
  if (!new_dict_strings.empty()) {
    // The delta's first id is the interner size before these strings —
    // which equals the total dict strings journaled so far, tracked by the
    // caller via the delta slices it hands us; the block is self-describing
    // through first_id, so we recompute it from the running count.
    PutU32(payload, dict_written_);
    PutU32(payload, static_cast<uint32_t>(new_dict_strings.size()));
    for (const std::string& s : new_dict_strings) {
      PutU32(payload, static_cast<uint32_t>(s.size()));
      payload.insert(payload.end(), s.begin(), s.end());
    }
    AppendGsbBlock(out, GsbBlockKind::kDict, next_seq_++, payload);
    dict_written_ += static_cast<uint32_t>(new_dict_strings.size());
  }
  payload.clear();
  // A window with any timestamped record journals as a kind-3 block (v2
  // 21-byte frames); untimestamped windows keep the v1 framing, so a
  // non-temporal server's journal bytes are unchanged.
  bool timestamped = false;
  for (size_t i = 0; i < n; ++i)
    if (records[i].ts != 0) {
      timestamped = true;
      break;
    }
  PutU32(payload, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    const EdgeUpdate& u = records[i];
    payload.push_back(static_cast<uint8_t>(u.op));
    PutU32(payload, u.src);
    PutU32(payload, u.label);
    PutU32(payload, u.dst);
    if (timestamped) PutU64(payload, u.ts);
  }
  AppendGsbBlock(
      out, timestamped ? GsbBlockKind::kRecordsTs : GsbBlockKind::kRecords,
      next_seq_++, payload);
  if (!WriteBytes(out, error)) return false;
  records_ += n;
  return true;
}

bool Journal::SyncDict(const std::vector<std::string>& new_dict_strings,
                       std::string* error) {
  if (new_dict_strings.empty()) return true;
  std::vector<uint8_t> out;
  std::vector<uint8_t> payload;
  PutU32(payload, dict_written_);
  PutU32(payload, static_cast<uint32_t>(new_dict_strings.size()));
  for (const std::string& s : new_dict_strings) {
    PutU32(payload, static_cast<uint32_t>(s.size()));
    payload.insert(payload.end(), s.begin(), s.end());
  }
  AppendGsbBlock(out, GsbBlockKind::kDict, next_seq_++, payload);
  dict_written_ += static_cast<uint32_t>(new_dict_strings.size());
  return WriteBytes(out, error);
}

bool Journal::Fsync(std::string* error) {
  if (::fsync(fd_) != 0) {
    if (error != nullptr)
      *error = "journal " + path_ + ": fsync: " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace server
}  // namespace gstream
