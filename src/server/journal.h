#ifndef GSTREAM_SERVER_JOURNAL_H_
#define GSTREAM_SERVER_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/update.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace server {

/// Append-only streaming `.gsb` journal — the socket server's write-ahead
/// log (DESIGN.md §11). The file is a regular `.gsb` stream with the
/// kGsbFlagStreaming header flag (header written once, counts 0, a random
/// salt making the GsbIdentity unique per journal), so the PR 6
/// `IngestSession` / `ResumeReplay` machinery replays it unchanged.
///
/// Invariants that make recovery exact:
///  - one record block per applied window, appended BEFORE the engine
///    applies it (WAL ordering), so replay with window_per_block reproduces
///    the original window boundaries including drain-time partials;
///  - every window's new interner strings precede it as a dict-delta block,
///    so the replayed dictionary reconstructs the server interner with
///    identical ids;
///  - Fsync before every snapshot: the snapshot's record_offset is always
///    covered by durable journal bytes. A crash mid-append leaves a torn
///    tail that the scan quarantines; reopening truncates it and continues
///    with the next block seq.
class Journal {
 public:
  ~Journal();

  /// Creates a fresh journal at `path` (truncating any existing file) and
  /// writes the streaming header. Null with `*error` set on I/O failure.
  static std::unique_ptr<Journal> Create(const std::string& path,
                                         std::string* error);

  /// Reopens an existing journal for append after recovery: truncates the
  /// file to `valid_bytes` (dropping a torn tail), and continues from block
  /// seq `next_seq`. `identity` and `records`/`dict_strings` counts come
  /// from the recovery scan. Null with `*error` set on failure.
  /// `dict_written` is the dictionary-string count already journaled (the
  /// replayed interner's size) — the first_id base for future dict deltas.
  static std::unique_ptr<Journal> OpenForAppend(
      const std::string& path, uint64_t valid_bytes, uint32_t next_seq,
      uint64_t records, uint32_t dict_written,
      const ingest::GsbIdentity& identity, std::string* error);

  /// Appends one applied window: an optional dict-delta block carrying
  /// `new_dict_strings` (the interner's growth since the last append),
  /// then one record block with `records[0..n)`. Not fsynced — call Fsync
  /// at snapshot boundaries. False with `*error` set on I/O failure.
  bool AppendWindow(const std::vector<std::string>& new_dict_strings,
                    const EdgeUpdate* records, size_t n, std::string* error);

  /// Appends a dict-delta block alone (flushes interner growth that has no
  /// window yet — e.g. query labels interned at Subscribe — so a snapshot's
  /// replay sees the full dictionary). No-op for an empty delta.
  bool SyncDict(const std::vector<std::string>& new_dict_strings,
                std::string* error);

  bool Fsync(std::string* error);

  const ingest::GsbIdentity& identity() const { return identity_; }
  uint64_t records_appended() const { return records_; }
  uint32_t next_seq() const { return next_seq_; }
  uint32_t dict_written() const { return dict_written_; }

 private:
  Journal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  bool WriteBytes(const std::vector<uint8_t>& bytes, std::string* error);

  int fd_;
  std::string path_;
  ingest::GsbIdentity identity_;
  uint32_t next_seq_ = 0;
  uint64_t records_ = 0;
  uint32_t dict_written_ = 0;
};

}  // namespace server
}  // namespace gstream

#endif  // GSTREAM_SERVER_JOURNAL_H_
