#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gstream {
namespace server {

namespace {

bool FillAddr(const std::string& host, int port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    if (error != nullptr) *error = std::string("bad IPv4 address: ") + h;
    return false;
  }
  return true;
}

}  // namespace

int ListenTcp(const std::string& host, int port, int* bound_port,
              std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr)
      *error = std::string(what) + ": " + std::strerror(errno);
    return -1;
  };
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return fail("bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return fail("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in got;
    socklen_t len = sizeof(got);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      ::close(fd);
      return fail("getsockname");
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

int ConnectTcp(const std::string& host, int port, int timeout_millis,
               std::string* error, int rcvbuf_bytes) {
  const auto fail = [&](const char* what, int fd) {
    if (error != nullptr)
      *error = std::string(what) + ": " + std::strerror(errno);
    if (fd >= 0) ::close(fd);
    return -1;
  };
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket", -1);
  if (rcvbuf_bytes > 0)
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return fail("connect", fd);
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    do {
      rc = ::poll(&p, 1, timeout_millis);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      errno = ETIMEDOUT;
      return fail("connect", fd);
    }
    if (rc < 0) return fail("poll", fd);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return fail("connect", fd);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int AcceptTcp(int listen_fd, int timeout_millis) {
  pollfd p{listen_fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_millis);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return -2;
  if (rc < 0 || (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    // The listen fd may have been shut down to stop accepting; one accept
    // attempt distinguishes "closed" from a racing connection.
  }
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd < 0 ? -1 : fd;
}

bool SendAll(int fd, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

int PollReadable(int fd, int timeout_millis) {
  pollfd p{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_millis);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return -1;
  if (rc == 0) return 0;
  return 1;  // readable, or EOF/err pending — read() will tell
}

int RecvAll(int fd, void* buf, size_t n, int timeout_millis) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  bool first = true;
  while (n > 0) {
    const int r = PollReadable(fd, timeout_millis);
    if (r <= 0) return -1;  // timeout mid-message is torn, not idle
    ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (got == 0) return first ? 0 : -1;  // EOF
    first = false;
    p += got;
    n -= static_cast<size_t>(got);
  }
  return 1;
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace server
}  // namespace gstream
