#ifndef GSTREAM_SERVER_NET_H_
#define GSTREAM_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gstream {
namespace server {

/// Thin, dependency-free POSIX TCP helpers shared by the server and the
/// client library. All functions are EINTR-safe; writes use MSG_NOSIGNAL so
/// a peer closing mid-write surfaces as an error, never SIGPIPE.

/// Binds + listens on `host:port` (port 0 = ephemeral). Returns the listen
/// fd and stores the actually bound port in `*bound_port`; -1 with `*error`
/// set on failure.
int ListenTcp(const std::string& host, int port, int* bound_port,
              std::string* error);

/// Connects to `host:port` with a bounded connect timeout. Returns the fd,
/// or -1 with `*error` set. `rcvbuf_bytes > 0` sets SO_RCVBUF before the
/// connect (so the negotiated TCP window honors it) — a deliberately tiny
/// receive buffer turns a non-reading peer into a zero-window stall fast,
/// which is how the slow-client tests force kernel buffering out of the
/// picture.
int ConnectTcp(const std::string& host, int port, int timeout_millis,
               std::string* error, int rcvbuf_bytes = 0);

/// Accepts one connection, waiting at most `timeout_millis`. Returns the
/// accepted fd, -2 on timeout, -1 on error / closed listen socket.
int AcceptTcp(int listen_fd, int timeout_millis);

/// Writes exactly `n` bytes; false on any error (peer gone).
bool SendAll(int fd, const void* data, size_t n);

/// Poll for readability: 1 = readable (or EOF pending), 0 = timeout,
/// -1 = error.
int PollReadable(int fd, int timeout_millis);

/// Reads exactly `n` bytes, polling with `timeout_millis` per chunk so a
/// stalled peer cannot wedge the caller forever. Returns 1 on success, 0 on
/// clean EOF before any byte, -1 on error / timeout / torn read.
int RecvAll(int fd, void* buf, size_t n, int timeout_millis);

/// shutdown(2) both directions — wakes any thread blocked in poll/read on
/// the fd (the cross-thread "close please" signal; the owner still closes).
void ShutdownFd(int fd);

void CloseFd(int fd);

}  // namespace server
}  // namespace gstream

#endif  // GSTREAM_SERVER_NET_H_
