#include "server/protocol.h"

#include "ingest/crc32c.h"
#include "server/net.h"

namespace gstream {
namespace server {

using ingest::Crc32c;
using ingest::GetU16;
using ingest::GetU32;
using ingest::GetU64;
using ingest::PutU16;
using ingest::PutU32;
using ingest::PutU64;

namespace {

constexpr uint32_t kMaxNameLen = 1024;
constexpr uint32_t kMaxPatternLen = 64 * 1024;
constexpr uint32_t kMaxMessageLen = 64 * 1024;

/// Bounds-checked payload cursor: every Decode* walks the payload with it
/// and requires exact consumption, so a truncated or padded payload is a
/// protocol error, never a partial parse.
struct Cursor {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  explicit Cursor(const std::vector<uint8_t>& v)
      : p(v.data()), end(v.data() + v.size()) {}

  bool Need(size_t n) {
    if (!ok || static_cast<size_t>(end - p) < n) ok = false;
    return ok;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return *p++;
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    const uint16_t v = GetU16(p);
    p += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    const uint32_t v = GetU32(p);
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    const uint64_t v = GetU64(p);
    p += 8;
    return v;
  }
  std::string Str(uint32_t len, uint32_t max) {
    if (len > max || !Need(len)) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
  bool Done() const { return ok && p == end; }
};

void PutStr16(std::vector<uint8_t>& out, const std::string& s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU16(out, kFrameMagic);
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(0);  // reserved
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> EncodeHello(const HelloMsg& m) {
  std::vector<uint8_t> p;
  PutU32(p, m.version);
  PutU64(p, m.resume_notify);
  PutStr16(p, m.name);
  return EncodeFrame(FrameType::kHello, p);
}

bool DecodeHello(const std::vector<uint8_t>& p, HelloMsg& m) {
  Cursor c(p);
  m.version = c.U32();
  m.resume_notify = c.U64();
  m.name = c.Str(c.U16(), kMaxNameLen);
  return c.Done();
}

std::vector<uint8_t> EncodeHelloAck(const HelloAckMsg& m) {
  std::vector<uint8_t> p;
  PutU32(p, m.version);
  p.push_back(m.resume_status);
  PutU64(p, m.applied_records);
  PutU64(p, m.notify_log_start);
  PutU64(p, m.producer_acked);
  p.push_back(m.window_policy);
  PutU64(p, m.window_width);
  return EncodeFrame(FrameType::kHelloAck, p);
}

bool DecodeHelloAck(const std::vector<uint8_t>& p, HelloAckMsg& m) {
  Cursor c(p);
  m.version = c.U32();
  m.resume_status = c.U8();
  m.applied_records = c.U64();
  m.notify_log_start = c.U64();
  m.producer_acked = c.U64();
  m.window_policy = c.U8();
  m.window_width = c.U64();
  return c.Done();
}

std::vector<uint8_t> EncodeDict(const DictMsg& m) {
  // Identical layout to a gsb dictionary-block payload.
  std::vector<uint8_t> p;
  PutU32(p, m.first_id);
  PutU32(p, static_cast<uint32_t>(m.strings.size()));
  for (const std::string& s : m.strings) {
    PutU32(p, static_cast<uint32_t>(s.size()));
    p.insert(p.end(), s.begin(), s.end());
  }
  return EncodeFrame(FrameType::kDict, p);
}

bool DecodeDict(const std::vector<uint8_t>& p, DictMsg& m) {
  Cursor c(p);
  m.first_id = c.U32();
  const uint32_t count = c.U32();
  m.strings.clear();
  for (uint32_t i = 0; i < count && c.ok; ++i)
    m.strings.push_back(c.Str(c.U32(), ingest::kGsbMaxStringLen));
  return c.Done();
}

std::vector<uint8_t> EncodeEdges(const EdgesMsg& m) {
  bool timestamped = m.has_ts != 0;
  for (const EdgeUpdate& u : m.records) timestamped = timestamped || u.ts != 0;
  std::vector<uint8_t> p;
  PutU64(p, m.base);
  PutU32(p, static_cast<uint32_t>(m.records.size()));
  p.push_back(timestamped ? 1 : 0);
  for (const EdgeUpdate& u : m.records) {
    // The gsb record frame (13-byte v1 / 21-byte timestamped), verbatim.
    p.push_back(static_cast<uint8_t>(u.op));
    PutU32(p, u.src);
    PutU32(p, u.label);
    PutU32(p, u.dst);
    if (timestamped) PutU64(p, u.ts);
  }
  return EncodeFrame(FrameType::kEdges, p);
}

bool DecodeEdges(const std::vector<uint8_t>& p, EdgesMsg& m) {
  Cursor c(p);
  m.base = c.U64();
  const uint32_t count = c.U32();
  m.has_ts = c.U8();
  if (m.has_ts > 1) return false;
  const size_t frame_bytes =
      m.has_ts ? ingest::kGsbRecordTsBytes : ingest::kGsbRecordBytes;
  if (!c.Need(static_cast<size_t>(count) * frame_bytes)) return false;
  m.records.clear();
  m.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EdgeUpdate u;
    const uint8_t op = c.U8();
    if (op > static_cast<uint8_t>(UpdateOp::kDelete)) return false;
    u.op = static_cast<UpdateOp>(op);
    u.src = c.U32();
    u.label = c.U32();
    u.dst = c.U32();
    if (m.has_ts) u.ts = c.U64();
    m.records.push_back(u);
  }
  return c.Done();
}

std::vector<uint8_t> EncodeSubscribe(const SubscribeMsg& m) {
  std::vector<uint8_t> p;
  PutU32(p, m.sub_id);
  PutStr16(p, m.pattern);
  return EncodeFrame(FrameType::kSubscribe, p);
}

bool DecodeSubscribe(const std::vector<uint8_t>& p, SubscribeMsg& m) {
  Cursor c(p);
  m.sub_id = c.U32();
  m.pattern = c.Str(c.U16(), kMaxPatternLen);
  return c.Done();
}

std::vector<uint8_t> EncodeSubAck(const SubAckMsg& m) {
  std::vector<uint8_t> p;
  PutU32(p, m.sub_id);
  PutU32(p, m.qid);
  p.push_back(m.status);
  PutStr16(p, m.message);
  return EncodeFrame(FrameType::kSubAck, p);
}

bool DecodeSubAck(const std::vector<uint8_t>& p, SubAckMsg& m) {
  Cursor c(p);
  m.sub_id = c.U32();
  m.qid = c.U32();
  m.status = c.U8();
  m.message = c.Str(c.U16(), kMaxMessageLen);
  return c.Done();
}

std::vector<uint8_t> EncodeUnsubscribe(const UnsubscribeMsg& m) {
  std::vector<uint8_t> p;
  PutU32(p, m.sub_id);
  return EncodeFrame(FrameType::kUnsubscribe, p);
}

bool DecodeUnsubscribe(const std::vector<uint8_t>& p, UnsubscribeMsg& m) {
  Cursor c(p);
  m.sub_id = c.U32();
  return c.Done();
}

std::vector<uint8_t> EncodeNotify(const NotifyMsg& m) {
  std::vector<uint8_t> p;
  PutU64(p, m.record_index);
  PutU32(p, static_cast<uint32_t>(m.counts.size()));
  for (const auto& [sub_id, count] : m.counts) {
    PutU32(p, sub_id);
    PutU64(p, count);
  }
  return EncodeFrame(FrameType::kNotify, p);
}

bool DecodeNotify(const std::vector<uint8_t>& p, NotifyMsg& m) {
  Cursor c(p);
  m.record_index = c.U64();
  const uint32_t count = c.U32();
  if (!c.Need(static_cast<size_t>(count) * 12)) return false;
  m.counts.clear();
  m.counts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t sub_id = c.U32();
    const uint64_t n = c.U64();
    m.counts.emplace_back(sub_id, n);
  }
  return c.Done();
}

std::vector<uint8_t> EncodeProgress(const ProgressMsg& m) {
  std::vector<uint8_t> p;
  PutU64(p, m.applied_records);
  PutU64(p, m.producer_acked);
  PutU64(p, m.notify_shed);
  return EncodeFrame(FrameType::kProgress, p);
}

bool DecodeProgress(const std::vector<uint8_t>& p, ProgressMsg& m) {
  Cursor c(p);
  m.applied_records = c.U64();
  m.producer_acked = c.U64();
  m.notify_shed = c.U64();
  return c.Done();
}

std::vector<uint8_t> EncodeDrain(const DrainMsg& m) {
  std::vector<uint8_t> p;
  PutU64(p, m.applied_records);
  p.push_back(m.snapshot_written);
  return EncodeFrame(FrameType::kDrain, p);
}

bool DecodeDrain(const std::vector<uint8_t>& p, DrainMsg& m) {
  Cursor c(p);
  m.applied_records = c.U64();
  m.snapshot_written = c.U8();
  return c.Done();
}

std::vector<uint8_t> EncodeError(const ErrorMsg& m) {
  std::vector<uint8_t> p;
  PutU16(p, m.code);
  PutStr16(p, m.message);
  return EncodeFrame(FrameType::kError, p);
}

bool DecodeError(const std::vector<uint8_t>& p, ErrorMsg& m) {
  Cursor c(p);
  m.code = c.U16();
  m.message = c.Str(c.U16(), kMaxMessageLen);
  return c.Done();
}

std::vector<uint8_t> EncodeHeartbeat() {
  return EncodeFrame(FrameType::kHeartbeat, {});
}

std::vector<uint8_t> EncodeBye() { return EncodeFrame(FrameType::kBye, {}); }

ReadStatus ReadFrame(int fd, int idle_timeout_millis, Frame& out,
                     std::string* error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return ReadStatus::kError;
  };
  const int readable = PollReadable(fd, idle_timeout_millis);
  if (readable == 0) return ReadStatus::kTimeout;
  if (readable < 0) return fail("poll error");

  uint8_t hdr[kFrameHeaderBytes];
  const int r = RecvAll(fd, hdr, kFrameHeaderBytes, idle_timeout_millis);
  if (r == 0) return ReadStatus::kClosed;
  if (r < 0) return fail("torn frame header");
  if (GetU16(hdr) != kFrameMagic) return fail("bad frame magic");
  const uint8_t type = hdr[2];
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kBye))
    return fail("unknown frame type");
  if (hdr[3] != 0) return fail("nonzero reserved byte");
  const uint32_t len = GetU32(hdr + 4);
  const uint32_t crc = GetU32(hdr + 8);
  if (len > kMaxFramePayload) return fail("oversized frame payload");

  out.type = static_cast<FrameType>(type);
  out.payload.resize(len);
  if (len > 0 &&
      RecvAll(fd, out.payload.data(), len, idle_timeout_millis) != 1)
    return fail("torn frame payload");
  if (Crc32c(out.payload.data(), out.payload.size()) != crc)
    return fail("frame payload CRC mismatch");
  return ReadStatus::kOk;
}

}  // namespace server
}  // namespace gstream
