#ifndef GSTREAM_SERVER_PROTOCOL_H_
#define GSTREAM_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/update.h"
#include "ingest/gsb_format.h"

namespace gstream {
namespace server {

/// Length-framed wire protocol (DESIGN.md §11). Every frame is
///
///   magic       u16  0xF4A3
///   type        u8   FrameType
///   reserved    u8   0
///   payload_len u32  <= kMaxFramePayload
///   payload_crc u32  CRC32C over the payload
///   payload     payload_len bytes
///
/// Payload encodings reuse the `.gsb` codecs (ingest/gsb_format.h): the
/// Dict payload *is* a gsb dictionary-block payload, and Edges carries gsb
/// 13-byte record frames — CRC32C-checked end to end with the same integrity
/// model as the file format. A frame that fails magic/CRC/framing is a
/// protocol error: the connection closes and the client resumes by
/// reconnecting (DESIGN.md §11's resume state machine), so a torn frame can
/// corrupt nothing.

inline constexpr uint16_t kFrameMagic = 0xF4A3;
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// "No offset": a subscriber that wants notifications from now on only, or
/// an unknown per-producer resume position.
inline constexpr uint64_t kNoOffset = ~0ull;

enum class FrameType : uint8_t {
  kHello = 1,        ///< client -> server: name + notify resume offset
  kHelloAck = 2,     ///< server -> client: applied/log-start/producer offsets
  kDict = 3,         ///< client -> server: dictionary delta (client id space)
  kEdges = 4,        ///< client -> server: record frames (client id space)
  kSubscribe = 5,    ///< client -> server: sub_id + pattern text
  kSubAck = 6,       ///< server -> client: sub_id -> qid (or error)
  kUnsubscribe = 7,  ///< client -> server: drop a subscription
  kNotify = 8,       ///< server -> client: one update's per-sub match counts
  kProgress = 9,     ///< server -> client: applied/acked/shed counters
  kHeartbeat = 10,   ///< either direction: liveness only
  kDrain = 11,       ///< server -> client: graceful shutdown boundary
  kError = 12,       ///< server -> client: terminal error, then close
  kBye = 13,         ///< client -> server: clean close
};

enum class ErrorCode : uint16_t {
  kProtocol = 1,     ///< malformed frame / unexpected type
  kSequenceGap = 2,  ///< Edges base jumped past the accepted offset
  kOverload = 3,     ///< slow-client disconnect policy fired
  kIdleTimeout = 4,  ///< no frames (not even heartbeats) within the timeout
  kDraining = 5,     ///< server is draining; no new work accepted
  kBadPattern = 6,   ///< subscription pattern failed to parse
};

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  /// First notification record index wanted (kNoOffset = live only).
  uint64_t resume_notify = kNoOffset;
  std::string name;  ///< Stable client identity (producer + sub registry key).
};

/// HelloAck resume_status values.
enum class ResumeStatus : uint8_t {
  kLive = 0,       ///< no replay requested
  kReplayed = 1,   ///< requested offset served from the notification log
  kGap = 2,        ///< requested offset predates the log; served from log start
};

struct HelloAckMsg {
  uint32_t version = kProtocolVersion;
  uint8_t resume_status = 0;
  uint64_t applied_records = 0;    ///< Global applied-record count.
  uint64_t notify_log_start = 0;   ///< Earliest replayable notification index.
  uint64_t producer_acked = kNoOffset;  ///< This producer's acked offset.
  /// Sliding-window advertisement (temporal::WindowPolicy numeric value +
  /// width; 0/0 = no expiry): informational for clients, so a producer can
  /// tell whether its edges will be expired server-side.
  uint8_t window_policy = 0;
  uint64_t window_width = 0;
};

struct DictMsg {
  uint32_t first_id = 0;  ///< Client-space id of strings[0]; dense onward.
  std::vector<std::string> strings;
};

struct EdgesMsg {
  /// Producer-stream index of records[0] (dense per client name). The server
  /// deduplicates overlap (base < acked: at-least-once resend) and closes on
  /// a gap (base > acked).
  uint64_t base = 0;
  std::vector<EdgeUpdate> records;  ///< Ids in the *client's* dict space.
  /// Frame layout selector (mirrors gsb v2): 0 = 13-byte frames, 1 =
  /// 21-byte timestamped frames. Encode sets it when any record carries a
  /// nonzero `ts`, so untimestamped producers stay byte-identical on the
  /// wire.
  uint8_t has_ts = 0;
};

struct SubscribeMsg {
  uint32_t sub_id = 0;  ///< Client-chosen; stable across reconnects.
  std::string pattern;  ///< Parser grammar (src/query/parser.h).
};

enum class SubStatus : uint8_t { kNew = 0, kReattached = 1, kError = 2 };

struct SubAckMsg {
  uint32_t sub_id = 0;
  uint32_t qid = 0;  ///< Server-side query id (meaningless on kError).
  uint8_t status = 0;
  std::string message;
};

struct UnsubscribeMsg {
  uint32_t sub_id = 0;
};

struct NotifyMsg {
  uint64_t record_index = 0;
  /// (sub_id, new-embedding count), ascending by sub_id; non-zero only.
  std::vector<std::pair<uint32_t, uint64_t>> counts;
};

struct ProgressMsg {
  uint64_t applied_records = 0;         ///< Global applied-record count.
  uint64_t producer_acked = kNoOffset;  ///< This client's producer offset.
  uint64_t notify_shed = 0;             ///< Notifications shed to this client.
};

struct DrainMsg {
  uint64_t applied_records = 0;
  uint8_t snapshot_written = 0;
};

struct ErrorMsg {
  uint16_t code = 0;
  std::string message;
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<uint8_t> payload;
};

/// Encodes a complete frame (header + CRC'd payload).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

// Per-message payload codecs. Encoders return the full frame bytes;
// decoders parse a received payload with exact bounds checks and return
// false on any framing violation (the caller treats that as a protocol
// error and closes).
std::vector<uint8_t> EncodeHello(const HelloMsg& m);
bool DecodeHello(const std::vector<uint8_t>& p, HelloMsg& m);
std::vector<uint8_t> EncodeHelloAck(const HelloAckMsg& m);
bool DecodeHelloAck(const std::vector<uint8_t>& p, HelloAckMsg& m);
std::vector<uint8_t> EncodeDict(const DictMsg& m);
bool DecodeDict(const std::vector<uint8_t>& p, DictMsg& m);
std::vector<uint8_t> EncodeEdges(const EdgesMsg& m);
bool DecodeEdges(const std::vector<uint8_t>& p, EdgesMsg& m);
std::vector<uint8_t> EncodeSubscribe(const SubscribeMsg& m);
bool DecodeSubscribe(const std::vector<uint8_t>& p, SubscribeMsg& m);
std::vector<uint8_t> EncodeSubAck(const SubAckMsg& m);
bool DecodeSubAck(const std::vector<uint8_t>& p, SubAckMsg& m);
std::vector<uint8_t> EncodeUnsubscribe(const UnsubscribeMsg& m);
bool DecodeUnsubscribe(const std::vector<uint8_t>& p, UnsubscribeMsg& m);
std::vector<uint8_t> EncodeNotify(const NotifyMsg& m);
bool DecodeNotify(const std::vector<uint8_t>& p, NotifyMsg& m);
std::vector<uint8_t> EncodeProgress(const ProgressMsg& m);
bool DecodeProgress(const std::vector<uint8_t>& p, ProgressMsg& m);
std::vector<uint8_t> EncodeDrain(const DrainMsg& m);
bool DecodeDrain(const std::vector<uint8_t>& p, DrainMsg& m);
std::vector<uint8_t> EncodeError(const ErrorMsg& m);
bool DecodeError(const std::vector<uint8_t>& p, ErrorMsg& m);
std::vector<uint8_t> EncodeHeartbeat();
std::vector<uint8_t> EncodeBye();

enum class ReadStatus : uint8_t {
  kOk = 0,
  kTimeout = 1,  ///< idle: no frame started within the timeout
  kClosed = 2,   ///< clean EOF at a frame boundary
  kError = 3,    ///< torn frame, bad magic/CRC, or socket error
};

/// Reads one frame from `fd`. `idle_timeout_millis` bounds the wait for the
/// frame's first byte (kTimeout drives heartbeat/idle-disconnect machinery);
/// once a frame starts, the same bound applies per chunk, and a stall
/// mid-frame is kError (torn), never kTimeout.
ReadStatus ReadFrame(int fd, int idle_timeout_millis, Frame& out,
                     std::string* error);

}  // namespace server
}  // namespace gstream

#endif  // GSTREAM_SERVER_PROTOCOL_H_
