#include "server/server.h"

#include <sys/socket.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "ingest/gsb_reader.h"
#include "ingest/pipeline.h"
#include "query/parser.h"
#include "server/net.h"

namespace gstream {
namespace server {

using ingest::BoundedBatchRing;
using ingest::RecordBatch;

// ------------------------------------------------------------ internal types

struct Server::Producer {
  std::string name;
  /// Serializes Edges acceptance across a connection takeover (a reconnect
  /// races the stale connection's last frames).
  std::mutex mu;
  uint64_t accepted = 0;  ///< Records accepted into the ring; guarded by mu.
  std::atomic<uint64_t> acked{0};  ///< Records applied by the engine.
  std::shared_ptr<Conn> conn;      ///< Active connection; guarded by
                                   ///< Server::producers_mu_.
};

struct Server::Conn {
  struct OutFrame {
    std::vector<uint8_t> bytes;
    bool sheddable = false;  ///< Only Notify frames; control frames never shed.
  };

  uint64_t id = 0;
  int fd = -1;
  std::string name;  ///< From Hello; written before the attach op is posted.
  std::shared_ptr<Producer> producer;  ///< Guarded by out_mu (writer reads it).
  std::vector<uint32_t> remap;  ///< client id -> server id; reader-thread only.
  std::thread reader;
  std::thread writer;

  std::mutex out_mu;
  std::condition_variable out_data;
  std::condition_variable out_space;
  std::deque<OutFrame> outbound;
  /// Hard stop: the queue was cleared (shed-counted) and the writer exits
  /// without sending more. Set only by HardClose.
  bool closing = false;
  /// Soft stop: the writer flushes the queue, then exits.
  bool close_after_flush = false;
  std::atomic<uint64_t> notify_shed{0};
};

struct Server::ControlOp {
  enum class Kind : uint8_t { kAttach, kSubscribe, kUnsubscribe, kDetach };
  Kind kind = Kind::kAttach;
  std::shared_ptr<Conn> conn;
  HelloMsg hello;         // kAttach
  SubscribeMsg subscribe;  // kSubscribe
  uint32_t sub_id = 0;     // kUnsubscribe
};

struct Server::NotifyLogEntry {
  uint64_t record_index = 0;
  /// (subscription slot, new-embedding count); slots are stable (never
  /// reused), so log entries survive unsubscribes.
  std::vector<std::pair<size_t, uint64_t>> counts;
};

struct Server::SubSlot {
  std::string client_name;
  uint32_t sub_id = 0;
  QueryId qid = 0;
  uint64_t registered_offset = 0;
  std::string pattern;
  bool active = true;
};

/// One ring batch's contribution to the apply window: producer attribution
/// for advancing acked offsets as records durably apply.
struct Server::Span {
  std::shared_ptr<Producer> producer;
  uint64_t base = 0;
  size_t count = 0;
  size_t applied = 0;
};

bool ParseSlowClientPolicy(const std::string& name, SlowClientPolicy* out) {
  if (name == "block") *out = SlowClientPolicy::kBlock;
  else if (name == "shed") *out = SlowClientPolicy::kShedOldest;
  else if (name == "disconnect") *out = SlowClientPolicy::kDisconnect;
  else return false;
  return true;
}

// ------------------------------------------------------------------ lifecycle

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server() {
  bool need_kill = false;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    need_kill = started_ && !stopped_;
  }
  if (need_kill) Kill();
  if (!started_ && listen_fd_ >= 0) CloseFd(listen_fd_);
}

bool Server::Start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (started_) return fail("server already started");
  if (opts_.batch_window < 1) return fail("batch_window must be >= 1");
  if (opts_.batch_threads < 1) return fail("batch_threads must be >= 1");
  if (opts_.ring_capacity < 1) return fail("ring_capacity must be >= 1");
  if (opts_.outbound_capacity < 1) return fail("outbound_capacity must be >= 1");
  if (opts_.notify_log_capacity < 1) return fail("notify_log_capacity must be >= 1");
  if (opts_.heartbeat_millis < 1) return fail("heartbeat_millis must be >= 1");
  if (opts_.idle_timeout_millis < 1) return fail("idle_timeout_millis must be >= 1");
  if (opts_.window_flush_millis < 1) return fail("window_flush_millis must be >= 1");
  {
    // The durability contract is the ingest pipeline's: shedding has no
    // replayable prefix, so snapshots (and the journal's resume semantics)
    // require backpressure on the ring.
    ingest::IngestOptions io;
    io.batch_window = opts_.batch_window;
    io.batch_threads = opts_.batch_threads;
    io.ring_capacity = opts_.ring_capacity;
    io.overload = opts_.ingest_overload;
    io.snapshot_every_windows = opts_.snapshot_every_windows;
    io.snapshot_path = opts_.state_path;
    io.window = opts_.window;
    const std::string verr = ingest::ValidateIngestOptions(io);
    if (!verr.empty()) return fail(verr);
  }
  if (opts_.snapshot_every_windows > 0 && opts_.journal_path.empty())
    return fail("snapshot cadence set but no journal path");
  if (!opts_.journal_path.empty() && opts_.state_path.empty())
    return fail("journal path set but no state path");
  if (!opts_.journal_path.empty() &&
      opts_.ingest_overload != ingest::OverloadPolicy::kBlock)
    return fail(
        "journaling requires ingest overload=block (shed records would be "
        "acked without ever reaching the journal)");

  engine_ = CreateEngine(opts_.engine);
  engine_->SetSharedFinalize(opts_.shared_finalize);
  engine_->SetBatchThreads(opts_.batch_threads);
  // Created before recovery so the replay rebuilds the live-edge horizon in
  // the exact manager live splicing continues from.
  window_mgr_ = std::make_unique<temporal::WindowManager>(opts_.window);

  if (!opts_.journal_path.empty()) {
    struct stat st;
    if (::stat(opts_.journal_path.c_str(), &st) == 0) {
      if (!Recover(error)) return false;
    } else {
      journal_ = Journal::Create(opts_.journal_path, error);
      if (journal_ == nullptr) return false;
    }
  }
  acc_.sink = [this](uint64_t index, const UpdateResult& result) {
    FanOut(index, result);
  };

  ring_ = std::make_unique<BoundedBatchRing>(opts_.ring_capacity);
  // The server holds one producer slot for its whole run, so the apply
  // thread's PopFor never reports kDone just because no client is connected;
  // Drain releases it.
  ring_->AddProducer();

  listen_fd_ = ListenTcp(opts_.host, opts_.port, &port_, error);
  if (listen_fd_ < 0) return false;
  started_ = true;
  apply_thread_ = std::thread(&Server::ApplyLoop, this);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return true;
}

bool Server::Recover(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "recovery: " + why;
    return false;
  };
  std::string err;
  auto src = ingest::FileSource::Open(opts_.journal_path, &err);
  if (src == nullptr) return fail(err);

  // Framing scan for the append position: the byte offset after the last
  // valid block (anything beyond is a torn tail — truncated on reopen) and
  // the next block seq.
  ingest::GsbReader scan(*src);
  if (!scan.Open()) return fail(scan.error());
  if ((scan.header().flags & ingest::kGsbFlagStreaming) == 0)
    return fail("journal is not a streaming gsb file");
  std::vector<ingest::GsbBlockRef> blocks;
  if (!scan.ScanBlocks(ingest::CorruptPolicy::kSkip, blocks))
    return fail(scan.error());
  uint64_t valid_bytes = ingest::kGsbHeaderBytes;
  uint32_t next_seq = 0;
  if (!blocks.empty()) {
    valid_bytes = blocks.back().payload_offset + blocks.back().payload_len;
    next_seq = blocks.back().seq + 1;
  }

  ingest::IngestSession session;
  if (!session.Open(*src, ingest::CorruptPolicy::kSkip))
    return fail(session.error());
  const uint32_t dict_journaled =
      static_cast<uint32_t>(session.interner().size());

  ServerState st;
  bool have_state = false;
  struct stat sb;
  if (!opts_.state_path.empty() && ::stat(opts_.state_path.c_str(), &sb) == 0) {
    if (!ReadServerState(opts_.state_path, st, &err)) return fail(err);
    have_state = true;
  }
  if (have_state && st.snap.engine_name != engine_->name())
    return fail("state file was written by engine " + st.snap.engine_name +
                ", this server runs " + engine_->name());

  // Rebuild the subscription registry in original registration order:
  // re-parsing against the replayed dictionary re-interns every literal
  // under its original id, and the explicit qids reproduce the engine's
  // query registry exactly. Patterns are parsed (and validated) up front,
  // but each query is registered with the engine only when the replay
  // reaches its registration offset (the window_begin hook below): the
  // original run registered it at that window boundary, and registering it
  // earlier would let the fast-forward match records the live engine never
  // saw — diverging the boundary counter/fingerprint cross-check and
  // planting pre-registration entries in the rebuilt notification log.
  std::vector<QueryPattern> recovered_patterns;
  recovered_patterns.reserve(st.subscriptions.size());
  for (const SubscriptionRecord& rec : st.subscriptions) {
    ParseResult pr = ParsePattern(rec.pattern, session.mutable_interner());
    if (!pr.ok)
      return fail("subscription '" + rec.pattern + "': " + pr.error);
    recovered_patterns.push_back(std::move(pr.pattern));
    SubSlot slot;
    slot.client_name = rec.client_name;
    slot.sub_id = rec.sub_id;
    slot.qid = rec.qid;
    slot.registered_offset = rec.registered_offset;
    slot.pattern = rec.pattern;
    subs_.push_back(std::move(slot));
    qid_to_slot_[rec.qid] = subs_.size() - 1;
    next_qid_ = std::max(next_qid_, rec.qid + 1);
  }
  // Registration offsets are nondecreasing (applied-record counts at
  // subscribe time), so a cursor suffices.
  size_t next_recovered_sub = 0;
  const auto register_reached = [&](uint64_t next_record_index) {
    while (next_recovered_sub < subs_.size() &&
           subs_[next_recovered_sub].registered_offset <= next_record_index) {
      engine_->AddQuery(subs_[next_recovered_sub].qid,
                        recovered_patterns[next_recovered_sub]);
      ++next_recovered_sub;
    }
  };

  // Replay the journal. Every record block was appended as exactly one
  // applied window, so window_per_block walks the original boundaries —
  // including drain-time partial windows — and the snapshot's offset is a
  // valid boundary by construction. The callback fires only for the
  // post-snapshot tail (the fast-forward prefix is emission-suppressed),
  // which rebuilds the replayable notification log.
  if (have_state) notify_log_start_ = st.snap.record_offset;
  ingest::IngestOptions io;
  io.window_per_block = true;
  io.batch_threads = opts_.batch_threads;
  io.overload = ingest::OverloadPolicy::kBlock;
  io.on_corrupt = ingest::CorruptPolicy::kSkip;
  io.window_begin = register_reached;
  // The journal holds original records only; replay re-derives every expiry
  // deletion into the server's own manager, leaving the live-edge horizon
  // exactly where the crashed process had it.
  io.window = opts_.window;
  if (opts_.window.enabled()) io.window_manager = window_mgr_.get();
  const auto cb = [this](uint64_t index, const UpdateResult& result) {
    for (QueryId qid : result.triggered) recovered_satisfied_.insert(qid);
    if (result.per_query.empty()) return;
    NotifyLogEntry e;
    e.record_index = index;
    for (const auto& [qid, count] : result.per_query) {
      auto it = qid_to_slot_.find(qid);
      if (it == qid_to_slot_.end()) continue;
      // Replay re-registers every subscription before record 0, so a query
      // that joined mid-stream also matches records older than its
      // registration. The live run never delivered those; the rebuilt log
      // must not either, or a resuming client would replay notifications
      // from before it subscribed.
      if (index < subs_[it->second].registered_offset) continue;
      e.counts.emplace_back(it->second, count);
    }
    if (e.counts.empty()) return;
    notify_log_.push_back(std::move(e));
    if (notify_log_.size() > opts_.notify_log_capacity) {
      notify_log_start_ = notify_log_.front().record_index + 1;
      notify_log_.pop_front();
    }
  };
  ingest::IngestStats stats =
      have_state ? ingest::ResumeReplay(*engine_, session, st.snap, io, cb)
                 : session.Replay(*engine_, io, cb);
  if (stats.failed) return fail(stats.error);
  // Subscriptions registered after the last journaled record (or an empty
  // journal) were never reached by a window boundary.
  register_reached(stats.run.updates_applied);

  acc_.stats = stats.run;
  for (QueryId qid : st.snap.satisfied) recovered_satisfied_.insert(qid);
  acc_.satisfied.insert(recovered_satisfied_.begin(),
                        recovered_satisfied_.end());
  applied_records_.store(stats.run.updates_applied);
  windows_finalized_.store(stats.windows_finalized);
  expired_edges_.store(window_mgr_->expired_edges());
  expiry_batches_.store(window_mgr_->expiry_batches());
  live_edges_.store(window_mgr_->live_edges());

  // Producer offsets. The journal does not attribute records to producers,
  // so the post-snapshot tail is attributable only when there was exactly
  // one producer — then it all belongs to it (exact resume). With several
  // producers the snapshot offsets stand and clients may resend the tail
  // overlap (§11 documented limitation).
  for (const ProducerRecord& rec : st.producers) {
    auto p = std::make_shared<Producer>();
    p->name = rec.client_name;
    uint64_t acked = rec.acked;
    if (st.producers.size() == 1)
      acked += stats.run.updates_applied - st.snap.record_offset;
    p->accepted = acked;
    p->acked.store(acked);
    producers_.emplace(rec.client_name, std::move(p));
  }

  journal_ = Journal::OpenForAppend(opts_.journal_path, valid_bytes, next_seq,
                                    stats.run.updates_applied, dict_journaled,
                                    session.identity(), error);
  if (journal_ == nullptr) return false;
  journal_dict_synced_ = dict_journaled;
  interner_ = session.mutable_interner();
  return true;
}

void Server::Drain() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!started_ || stopped_ || draining_ || killed_) return;
    draining_ = true;
    conns = conns_;
  }
  ShutdownFd(listen_fd_);
  // Stop reads but keep writes: readers see EOF, finish their in-flight ring
  // pushes, and exit; the writers stay up to flush and deliver Drain frames.
  for (const auto& c : conns) ::shutdown(c->fd, SHUT_RD);
  ring_->ProducerDone();  // release the server's slot -> the ring can finish
  if (apply_thread_.joinable()) apply_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();

  DrainMsg dm;
  dm.applied_records = applied_records_.load();
  dm.snapshot_written = drain_snapshot_written_ ? 1 : 0;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (const auto& c : conns) {
    EnqueueOutbound(*c, EncodeDrain(dm), false);
    std::lock_guard<std::mutex> lock(c->out_mu);
    c->close_after_flush = true;
    c->out_data.notify_all();
    c->out_space.notify_all();
  }
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
    CloseFd(c->fd);
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(conns_mu_);
  stopped_ = true;
}

void Server::Kill() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!started_ || stopped_ || killed_) return;
    killed_ = true;
    conns = conns_;
  }
  ring_->Abort();
  ShutdownFd(listen_fd_);
  for (const auto& c : conns) HardClose(*c);
  if (apply_thread_.joinable()) apply_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (const auto& c : conns) {
    HardClose(*c);
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
    CloseFd(c->fd);
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(conns_mu_);
  stopped_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = counters_.connections_accepted.load();
  s.records_accepted = counters_.records_accepted.load();
  s.records_applied = applied_records_.load();
  s.windows_finalized = windows_finalized_.load();
  s.notifications_produced = counters_.notifications_produced.load();
  s.notifications_delivered = counters_.notifications_delivered.load();
  s.notifications_shed = counters_.notifications_shed.load();
  s.duplicate_records_skipped = counters_.duplicate_records_skipped.load();
  s.protocol_errors = counters_.protocol_errors.load();
  s.idle_disconnects = counters_.idle_disconnects.load();
  s.slow_disconnects = counters_.slow_disconnects.load();
  s.snapshots_written = counters_.snapshots_written.load();
  s.expired_edges = expired_edges_.load();
  s.expiry_batches = expiry_batches_.load();
  s.live_edges = live_edges_.load();
  return s;
}

// ---------------------------------------------------------------- accept side

void Server::AcceptLoop() {
  for (;;) {
    const int fd = AcceptTcp(listen_fd_, 200);
    if (fd == -2) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (draining_ || killed_) return;
      continue;
    }
    if (fd < 0) return;
    if (opts_.sndbuf_bytes > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.sndbuf_bytes,
                   sizeof(opts_.sndbuf_bytes));
    std::shared_ptr<Conn> c;
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (draining_ || killed_) {
        reject = true;
      } else {
        c = std::make_shared<Conn>();
        c->id = next_conn_id_++;
        c->fd = fd;
        conns_.push_back(c);
      }
    }
    if (reject) {
      ErrorMsg m;
      m.code = static_cast<uint16_t>(ErrorCode::kDraining);
      m.message = "server is draining";
      const auto bytes = EncodeError(m);
      SendAll(fd, bytes.data(), bytes.size());
      CloseFd(fd);
      continue;
    }
    ++counters_.connections_accepted;
    c->reader = std::thread(&Server::ReaderLoop, this, c);
    c->writer = std::thread(&Server::WriterLoop, this, c);
  }
}

// ------------------------------------------------------------ per-connection

void Server::ReaderLoop(std::shared_ptr<Conn> cp) {
  Conn& c = *cp;
  ring_->AddProducer();
  bool posted_attach = false;
  std::string err;
  Frame f;

  // Handshake: the first frame must be Hello.
  ReadStatus st = ReadFrame(c.fd, opts_.idle_timeout_millis, f, &err);
  HelloMsg hello;
  bool ok = st == ReadStatus::kOk && f.type == FrameType::kHello &&
            DecodeHello(f.payload, hello);
  if (ok && hello.version != kProtocolVersion) {
    SendErrorAndFlushClose(c, ErrorCode::kProtocol,
                           "protocol version mismatch");
    ok = false;
  } else if (!ok && st != ReadStatus::kClosed) {
    ++counters_.protocol_errors;
    SendErrorAndFlushClose(c, ErrorCode::kProtocol, "expected Hello");
  }

  if (ok) {
    std::shared_ptr<Producer> producer;
    std::shared_ptr<Conn> stale;
    {
      std::lock_guard<std::mutex> lock(producers_mu_);
      auto& slot = producers_[hello.name];
      if (slot == nullptr) {
        slot = std::make_shared<Producer>();
        slot->name = hello.name;
      }
      producer = slot;
      stale = producer->conn;
      producer->conn = cp;
    }
    // A reconnect takes the producer over; the stale connection (if the old
    // socket is still lingering) is hard-closed so it cannot double-feed.
    if (stale != nullptr && stale != cp) HardClose(*stale);
    c.name = hello.name;
    {
      std::lock_guard<std::mutex> lock(c.out_mu);
      c.producer = producer;
    }
    ControlOp op;
    op.kind = ControlOp::Kind::kAttach;
    op.conn = cp;
    op.hello = hello;
    PostOp(std::move(op));
    posted_attach = true;

    for (;;) {
      st = ReadFrame(c.fd, opts_.idle_timeout_millis, f, &err);
      if (st == ReadStatus::kTimeout) {
        ++counters_.idle_disconnects;
        SendErrorAndFlushClose(c, ErrorCode::kIdleTimeout, "idle timeout");
        break;
      }
      if (st == ReadStatus::kClosed) break;
      if (st == ReadStatus::kError) {
        ++counters_.protocol_errors;
        SendErrorAndFlushClose(c, ErrorCode::kProtocol, err);
        break;
      }
      if (!HandleFrame(cp, f)) break;
    }
  }

  ring_->ProducerDone();
  {
    std::lock_guard<std::mutex> lock(producers_mu_);
    if (c.producer != nullptr && c.producer->conn == cp)
      c.producer->conn.reset();
  }
  if (posted_attach) {
    ControlOp op;
    op.kind = ControlOp::Kind::kDetach;
    op.conn = cp;
    PostOp(std::move(op));
  }
  // Flush whatever is queued and let the writer exit — unless the server is
  // draining, in which case the writer stays up for the Drain frame that
  // Drain() enqueues after the final window flushes.
  bool draining;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    draining = draining_;
  }
  if (!draining) {
    std::lock_guard<std::mutex> lock(c.out_mu);
    c.close_after_flush = true;
    c.out_data.notify_all();
    c.out_space.notify_all();
  }
}

bool Server::HandleFrame(const std::shared_ptr<Conn>& cp, Frame& f) {
  Conn& c = *cp;
  switch (f.type) {
    case FrameType::kDict: {
      DictMsg m;
      if (!DecodeDict(f.payload, m)) return ProtocolError(c, "bad Dict frame");
      if (m.first_id > c.remap.size())
        return ProtocolError(c, "dictionary id gap");
      std::lock_guard<std::mutex> lock(interner_mu_);
      for (size_t i = 0; i < m.strings.size(); ++i) {
        const size_t cid = m.first_id + i;
        const uint32_t sid = interner_.Intern(m.strings[i]);
        if (cid < c.remap.size())
          c.remap[cid] = sid;  // resend overlap: idempotent
        else
          c.remap.push_back(sid);
      }
      return true;
    }
    case FrameType::kEdges: {
      EdgesMsg m;
      if (!DecodeEdges(f.payload, m))
        return ProtocolError(c, "bad Edges frame");
      const std::shared_ptr<Producer> producer = c.producer;
      std::vector<EdgeUpdate> fresh;
      uint64_t batch_base = 0;
      {
        std::lock_guard<std::mutex> plock(producer->mu);
        {
          std::lock_guard<std::mutex> lock(producers_mu_);
          if (producer->conn != cp) return false;  // taken over by a reconnect
        }
        uint64_t expect = producer->accepted;
        if (m.base > expect) {
          // A lone producer resuming past a journal recovered without a
          // state file is reclaiming its own prefix; adopt its offset. Any
          // other forward jump is a gap: records would be silently missing.
          bool adopt = false;
          {
            std::lock_guard<std::mutex> lock(producers_mu_);
            adopt = expect == 0 && producers_.size() == 1;
          }
          if (adopt && m.base <= applied_records_.load()) {
            producer->accepted = m.base;
            producer->acked.store(m.base);
            expect = m.base;
          } else {
            SendErrorAndFlushClose(c, ErrorCode::kSequenceGap,
                                   "edges base jumped past the accepted "
                                   "offset");
            return false;
          }
        }
        const uint64_t overlap = expect - m.base;
        if (overlap >= m.records.size()) {
          counters_.duplicate_records_skipped += m.records.size();
          return true;  // full at-least-once resend overlap
        }
        counters_.duplicate_records_skipped += overlap;
        fresh.assign(m.records.begin() + static_cast<ptrdiff_t>(overlap),
                     m.records.end());
        for (EdgeUpdate& u : fresh) {
          if (u.src >= c.remap.size() || u.label >= c.remap.size() ||
              u.dst >= c.remap.size()) {
            ++counters_.protocol_errors;
            SendErrorAndFlushClose(c, ErrorCode::kProtocol,
                                   "record id outside the client dictionary");
            return false;
          }
          u.src = c.remap[u.src];
          u.label = c.remap[u.label];
          u.dst = c.remap[u.dst];
        }
        batch_base = expect;
        producer->accepted = expect + fresh.size();
      }
      RecordBatch batch;
      {
        std::lock_guard<std::mutex> lock(seq_mu_);
        batch.seq = next_push_seq_++;
        batch_meta_[batch.seq] =
            BatchMeta{producer->name, batch_base, fresh.size()};
      }
      counters_.records_accepted += fresh.size();
      batch.records = std::move(fresh);
      // Push OUTSIDE every lock: under kBlock a full ring blocks here until
      // the apply thread frees space (backpressure chains into TCP).
      const auto pr = ring_->Push(std::move(batch), opts_.ingest_overload);
      if (pr == BoundedBatchRing::PushResult::kOverflow) {
        SendErrorAndFlushClose(c, ErrorCode::kOverload, "ingest ring overflow");
        return false;
      }
      return pr == BoundedBatchRing::PushResult::kOk;
    }
    case FrameType::kSubscribe: {
      ControlOp op;
      op.kind = ControlOp::Kind::kSubscribe;
      op.conn = cp;
      if (!DecodeSubscribe(f.payload, op.subscribe))
        return ProtocolError(c, "bad Subscribe frame");
      PostOp(std::move(op));
      return true;
    }
    case FrameType::kUnsubscribe: {
      UnsubscribeMsg m;
      if (!DecodeUnsubscribe(f.payload, m))
        return ProtocolError(c, "bad Unsubscribe frame");
      ControlOp op;
      op.kind = ControlOp::Kind::kUnsubscribe;
      op.conn = cp;
      op.sub_id = m.sub_id;
      PostOp(std::move(op));
      return true;
    }
    case FrameType::kHeartbeat:
      return true;  // liveness only; ReadFrame already reset the idle clock
    case FrameType::kBye:
      return false;
    default:
      return ProtocolError(c, "unexpected frame type");
  }
}

void Server::WriterLoop(std::shared_ptr<Conn> cp) {
  Conn& c = *cp;
  for (;;) {
    Conn::OutFrame frame;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(c.out_mu);
      c.out_data.wait_for(
          lock, std::chrono::milliseconds(opts_.heartbeat_millis), [&] {
            return !c.outbound.empty() || c.closing || c.close_after_flush;
          });
      if (c.closing) break;
      if (!c.outbound.empty()) {
        frame = std::move(c.outbound.front());
        c.outbound.pop_front();
        have = true;
        c.out_space.notify_all();
      } else if (c.close_after_flush) {
        break;  // flushed
      }
    }
    if (have) {
      if (!SendAll(c.fd, frame.bytes.data(), frame.bytes.size())) {
        // The in-flight frame dies with the connection too: it is already
        // off the queue, so HardClose's shed sweep cannot see it — count it
        // here or produced == delivered + shed breaks by one.
        if (frame.sheddable) {
          ++counters_.notifications_shed;
          c.notify_shed.fetch_add(1);
        }
        HardClose(c);
        break;
      }
      if (frame.sheddable) ++counters_.notifications_delivered;
    } else {
      // Idle for a heartbeat period: a Progress frame doubles as the server
      // heartbeat and carries the client's durable offsets.
      ProgressMsg m;
      m.applied_records = applied_records_.load();
      {
        std::lock_guard<std::mutex> lock(c.out_mu);
        if (c.producer != nullptr) m.producer_acked = c.producer->acked.load();
      }
      m.notify_shed = c.notify_shed.load();
      const auto bytes = EncodeProgress(m);
      if (!SendAll(c.fd, bytes.data(), bytes.size())) {
        HardClose(c);
        break;
      }
    }
  }
  // Whatever ended the loop, every frame this connection will ever get has
  // been flushed (hard close discards by design) — shut the socket down so
  // the peer sees EOF now rather than at server teardown. The fd itself is
  // closed by Drain/Kill, which own the connection list.
  ShutdownFd(c.fd);
}

// --------------------------------------------------------------- outbound

bool Server::EnqueueOutbound(Conn& c, std::vector<uint8_t> bytes,
                             bool sheddable) {
  std::unique_lock<std::mutex> lock(c.out_mu);
  const auto count_shed = [&] {
    if (sheddable) {
      ++counters_.notifications_shed;
      c.notify_shed.fetch_add(1);
    }
  };
  if (c.closing || c.close_after_flush) {
    count_shed();
    return false;
  }
  bool force = false;
  while (!force && c.outbound.size() >= opts_.outbound_capacity) {
    switch (opts_.slow_client) {
      case SlowClientPolicy::kBlock:
        c.out_space.wait(lock, [&] {
          return c.outbound.size() < opts_.outbound_capacity || c.closing ||
                 c.close_after_flush;
        });
        if (c.closing || c.close_after_flush) {
          count_shed();
          return false;
        }
        break;
      case SlowClientPolicy::kShedOldest: {
        bool dropped = false;
        for (auto it = c.outbound.begin(); it != c.outbound.end(); ++it) {
          if (it->sheddable) {
            c.outbound.erase(it);
            ++counters_.notifications_shed;
            c.notify_shed.fetch_add(1);
            dropped = true;
            break;
          }
        }
        // Control frames never shed: with none sheddable the queue may
        // exceed its capacity rather than lose an ack.
        if (!dropped) force = true;
        break;
      }
      case SlowClientPolicy::kDisconnect: {
        ++counters_.slow_disconnects;
        c.closing = true;
        for (const auto& f : c.outbound) {
          if (f.sheddable) {
            ++counters_.notifications_shed;
            c.notify_shed.fetch_add(1);
          }
        }
        c.outbound.clear();
        count_shed();
        lock.unlock();
        c.out_data.notify_all();
        c.out_space.notify_all();
        ShutdownFd(c.fd);
        return false;
      }
    }
  }
  c.outbound.push_back(Conn::OutFrame{std::move(bytes), sheddable});
  c.out_data.notify_one();
  return true;
}

bool Server::ProtocolError(Conn& c, const std::string& message) {
  ++counters_.protocol_errors;
  SendErrorAndFlushClose(c, ErrorCode::kProtocol, message);
  return false;
}

void Server::SendErrorAndFlushClose(Conn& c, ErrorCode code,
                                    const std::string& message) {
  ErrorMsg m;
  m.code = static_cast<uint16_t>(code);
  m.message = message;
  EnqueueOutbound(c, EncodeError(m), false);
  std::lock_guard<std::mutex> lock(c.out_mu);
  c.close_after_flush = true;
  c.out_data.notify_all();
  c.out_space.notify_all();
}

void Server::HardClose(Conn& c) {
  {
    std::lock_guard<std::mutex> lock(c.out_mu);
    if (!c.closing) {
      c.closing = true;
      // Undelivered notifications die with the connection: count them shed
      // so produced == delivered + shed holds at any quiescent point.
      for (const auto& f : c.outbound) {
        if (f.sheddable) {
          ++counters_.notifications_shed;
          c.notify_shed.fetch_add(1);
        }
      }
      c.outbound.clear();
    }
  }
  c.out_data.notify_all();
  c.out_space.notify_all();
  ShutdownFd(c.fd);
}

// --------------------------------------------------------------- apply side

void Server::PostOp(ControlOp&& op) {
  std::lock_guard<std::mutex> lock(ops_mu_);
  ops_.push_back(std::move(op));
}

void Server::ProcessControlOps() {
  std::deque<ControlOp> ops;
  {
    std::lock_guard<std::mutex> lock(ops_mu_);
    ops.swap(ops_);
  }
  for (ControlOp& op : ops) {
    switch (op.kind) {
      case ControlOp::Kind::kAttach: {
        Conn& c = *op.conn;
        HelloAckMsg ack;
        ack.applied_records = acc_.stats.updates_applied;
        ack.notify_log_start = notify_log_start_;
        ack.window_policy = static_cast<uint8_t>(opts_.window.policy);
        ack.window_width = opts_.window.width;
        {
          std::lock_guard<std::mutex> lock(c.out_mu);
          if (c.producer != nullptr)
            ack.producer_acked = c.producer->acked.load();
        }
        uint64_t resume = op.hello.resume_notify;
        if (resume == kNoOffset) {
          ack.resume_status = static_cast<uint8_t>(ResumeStatus::kLive);
        } else if (resume < notify_log_start_) {
          resume = notify_log_start_;
          ack.resume_status = static_cast<uint8_t>(ResumeStatus::kGap);
        } else {
          ack.resume_status = static_cast<uint8_t>(ResumeStatus::kReplayed);
        }
        EnqueueOutbound(c, EncodeHelloAck(ack), false);
        if (op.hello.resume_notify != kNoOffset) {
          for (const NotifyLogEntry& e : notify_log_)
            if (e.record_index >= resume) SendNotifyTo(c, e);
        }
        attached_.push_back(op.conn);
        break;
      }
      case ControlOp::Kind::kSubscribe: {
        Conn& c = *op.conn;
        SubAckMsg ack;
        ack.sub_id = op.subscribe.sub_id;
        size_t found = subs_.size();
        for (size_t i = 0; i < subs_.size(); ++i) {
          if (subs_[i].active && subs_[i].client_name == c.name &&
              subs_[i].sub_id == op.subscribe.sub_id) {
            found = i;
            break;
          }
        }
        if (found != subs_.size()) {
          if (subs_[found].pattern == op.subscribe.pattern) {
            ack.qid = subs_[found].qid;
            ack.status = static_cast<uint8_t>(SubStatus::kReattached);
          } else {
            ack.status = static_cast<uint8_t>(SubStatus::kError);
            ack.message = "sub_id already bound to a different pattern";
          }
        } else {
          ParseResult pr;
          {
            std::lock_guard<std::mutex> lock(interner_mu_);
            pr = ParsePattern(op.subscribe.pattern, interner_);
          }
          if (!pr.ok) {
            ack.status = static_cast<uint8_t>(SubStatus::kError);
            ack.message = pr.error;
          } else {
            const QueryId qid = next_qid_++;
            engine_->AddQuery(qid, pr.pattern);
            SubSlot slot;
            slot.client_name = c.name;
            slot.sub_id = op.subscribe.sub_id;
            slot.qid = qid;
            slot.registered_offset = acc_.stats.updates_applied;
            slot.pattern = op.subscribe.pattern;
            subs_.push_back(std::move(slot));
            qid_to_slot_[qid] = subs_.size() - 1;
            ack.qid = qid;
            ack.status = static_cast<uint8_t>(SubStatus::kNew);
          }
        }
        EnqueueOutbound(c, EncodeSubAck(ack), false);
        break;
      }
      case ControlOp::Kind::kUnsubscribe: {
        for (SubSlot& slot : subs_) {
          if (slot.active && slot.client_name == op.conn->name &&
              slot.sub_id == op.sub_id) {
            engine_->RemoveQuery(slot.qid);
            qid_to_slot_.erase(slot.qid);
            slot.active = false;
            break;
          }
        }
        break;
      }
      case ControlOp::Kind::kDetach: {
        attached_.erase(
            std::remove(attached_.begin(), attached_.end(), op.conn),
            attached_.end());
        break;
      }
    }
  }
}

void Server::FanOut(uint64_t index, const UpdateResult& result) {
  if (result.per_query.empty()) return;
  NotifyLogEntry e;
  e.record_index = index;
  for (const auto& [qid, count] : result.per_query) {
    auto it = qid_to_slot_.find(qid);
    if (it != qid_to_slot_.end()) e.counts.emplace_back(it->second, count);
  }
  if (e.counts.empty()) return;
  for (const auto& c : attached_) SendNotifyTo(*c, e);
  notify_log_.push_back(std::move(e));
  if (notify_log_.size() > opts_.notify_log_capacity) {
    notify_log_start_ = notify_log_.front().record_index + 1;
    notify_log_.pop_front();
  }
}

void Server::SendNotifyTo(Conn& c, const NotifyLogEntry& entry) {
  NotifyMsg m;
  m.record_index = entry.record_index;
  for (const auto& [slot_index, count] : entry.counts) {
    const SubSlot& slot = subs_[slot_index];
    if (slot.active && slot.client_name == c.name)
      m.counts.emplace_back(slot.sub_id, count);
  }
  if (m.counts.empty()) return;
  std::sort(m.counts.begin(), m.counts.end());
  ++counters_.notifications_produced;
  EnqueueOutbound(c, EncodeNotify(m), true);
}

void Server::ApplyWindow(std::vector<EdgeUpdate>& window,
                         std::deque<Span>& spans, size_t n) {
  if (n == 0) return;
  // Any control op posted before these records were pushed applies first, so
  // a subscribe-then-stream client never misses its own stream's matches.
  ProcessControlOps();
  if (journal_ != nullptr) {
    // WAL ordering: the window hits the journal before the engine, so every
    // applied record is durable and a crash replays to a superset boundary.
    std::vector<std::string> delta;
    {
      std::lock_guard<std::mutex> lock(interner_mu_);
      for (size_t i = journal_dict_synced_; i < interner_.size(); ++i)
        delta.push_back(interner_.Lookup(static_cast<uint32_t>(i)));
    }
    std::string err;
    if (!journal_->AppendWindow(delta, window.data(), n, &err)) {
      std::fprintf(stderr, "gstream_server: journal write failed, durability "
                           "disabled: %s\n", err.c_str());
      journal_.reset();
    } else {
      journal_dict_synced_ += static_cast<uint32_t>(delta.size());
    }
  }
  if (window_mgr_->config().enabled()) {
    // Splice each record's due expiry deletions ahead of it in the same
    // engine window (the journal above stores original records only —
    // expiry is event-time deterministic, so recovery re-derives it).
    // Deletions never trigger notifications and never consume record
    // indexes: the notification/resume index space stays in record terms.
    exec_buf_.clear();
    std::vector<uint8_t> is_record;
    for (size_t i = 0; i < n; ++i) {
      window_mgr_->Advance(window[i], exec_buf_);
      is_record.resize(exec_buf_.size(), 0);
      exec_buf_.push_back(window[i]);
      is_record.push_back(1);
    }
    const std::vector<UpdateResult> results =
        engine_->ApplyBatch(exec_buf_.data(), exec_buf_.size());
    for (size_t k = 0; k < results.size(); ++k)
      if (is_record[k] != 0) acc_.Absorb(results[k]);
    expired_edges_.store(window_mgr_->expired_edges(),
                         std::memory_order_relaxed);
    expiry_batches_.store(window_mgr_->expiry_batches(),
                          std::memory_order_relaxed);
    live_edges_.store(window_mgr_->live_edges(), std::memory_order_relaxed);
  } else {
    const std::vector<UpdateResult> results =
        engine_->ApplyBatch(window.data(), n);
    for (const UpdateResult& r : results) acc_.Absorb(r);
  }
  applied_records_.store(acc_.stats.updates_applied, std::memory_order_relaxed);
  windows_finalized_.fetch_add(1, std::memory_order_relaxed);

  size_t left = n;
  while (left > 0 && !spans.empty()) {
    Span& s = spans.front();
    const size_t take = std::min(left, s.count - s.applied);
    s.applied += take;
    left -= take;
    if (s.producer != nullptr) s.producer->acked.store(s.base + s.applied);
    if (s.applied == s.count)
      spans.pop_front();
    else
      break;
  }
  window.erase(window.begin(), window.begin() + static_cast<ptrdiff_t>(n));

  if (opts_.snapshot_every_windows > 0 &&
      windows_finalized_.load() % opts_.snapshot_every_windows == 0)
    WriteSnapshotState();
}

void Server::WriteSnapshotState() {
  if (journal_ == nullptr) return;
  std::string err;
  std::vector<std::string> delta;
  {
    std::lock_guard<std::mutex> lock(interner_mu_);
    for (size_t i = journal_dict_synced_; i < interner_.size(); ++i)
      delta.push_back(interner_.Lookup(static_cast<uint32_t>(i)));
  }
  // Flush subscribe-time interner growth and fsync: the snapshot's offset
  // must be covered by durable journal bytes before the state file commits.
  if (!journal_->SyncDict(delta, &err) || !journal_->Fsync(&err)) {
    std::fprintf(stderr, "gstream_server: snapshot skipped: %s\n", err.c_str());
    return;
  }
  journal_dict_synced_ += static_cast<uint32_t>(delta.size());

  ServerState st;
  st.snap.stream = journal_->identity();
  st.snap.engine_name = engine_->name();
  st.snap.record_offset = acc_.stats.updates_applied;
  st.snap.windows_finalized = windows_finalized_.load();
  st.snap.updates_applied = acc_.stats.updates_applied;
  st.snap.new_embeddings = acc_.stats.new_embeddings;
  st.snap.fingerprint = engine_->StateFingerprint();
  st.snap.satisfied.assign(acc_.satisfied.begin(), acc_.satisfied.end());
  std::sort(st.snap.satisfied.begin(), st.snap.satisfied.end());
  st.snap.ingested_edges = window_mgr_->ingested_edges();
  st.snap.expired_edges = window_mgr_->expired_edges();
  st.snap.removed_edges = window_mgr_->removed_edges();
  st.snap.expiry_batches = window_mgr_->expiry_batches();
  st.snap.live_edges = window_mgr_->live_edges();
  st.snap.watermark = window_mgr_->watermark();
  for (const SubSlot& slot : subs_) {
    if (!slot.active) continue;
    SubscriptionRecord rec;
    rec.client_name = slot.client_name;
    rec.sub_id = slot.sub_id;
    rec.qid = slot.qid;
    rec.registered_offset = slot.registered_offset;
    rec.pattern = slot.pattern;
    st.subscriptions.push_back(std::move(rec));
  }
  {
    std::lock_guard<std::mutex> lock(producers_mu_);
    for (const auto& [name, p] : producers_)
      st.producers.push_back(ProducerRecord{name, p->acked.load()});
  }
  if (!WriteServerState(opts_.state_path, st, &err)) {
    std::fprintf(stderr, "gstream_server: snapshot skipped: %s\n", err.c_str());
    return;
  }
  ++counters_.snapshots_written;
}

void Server::ApplyLoop() {
  using Clock = std::chrono::steady_clock;
  std::map<uint64_t, RecordBatch> pending;
  uint64_t next_seq = 0;
  std::vector<EdgeUpdate> window;
  std::deque<Span> spans;
  bool have_deadline = false;
  Clock::time_point deadline{};
  const int tick = std::max(1, std::min(opts_.window_flush_millis, 20));

  const auto consume = [&](RecordBatch& b) {
    BatchMeta meta;
    {
      std::lock_guard<std::mutex> lock(seq_mu_);
      auto it = batch_meta_.find(b.seq);
      if (it != batch_meta_.end()) {
        meta = std::move(it->second);
        batch_meta_.erase(it);
      }
    }
    std::shared_ptr<Producer> producer;
    {
      std::lock_guard<std::mutex> lock(producers_mu_);
      auto it = producers_.find(meta.producer);
      if (it != producers_.end()) producer = it->second;
    }
    window.insert(window.end(), b.records.begin(), b.records.end());
    spans.push_back(Span{std::move(producer), meta.base, b.records.size(), 0});
  };
  // A shed batch never reaches the apply thread: advance its producer's
  // acked past it (the records are lost by policy, not awaited).
  const auto consume_shed = [&](uint64_t seq) {
    BatchMeta meta;
    {
      std::lock_guard<std::mutex> lock(seq_mu_);
      auto it = batch_meta_.find(seq);
      if (it != batch_meta_.end()) {
        meta = std::move(it->second);
        batch_meta_.erase(it);
      }
    }
    std::lock_guard<std::mutex> lock(producers_mu_);
    auto it = producers_.find(meta.producer);
    if (it != producers_.end())
      it->second->acked.store(meta.base + meta.count);
  };
  const auto advance = [&] {
    for (;;) {
      auto it = pending.find(next_seq);
      if (it != pending.end()) {
        consume(it->second);
        pending.erase(it);
        ++next_seq;
        continue;
      }
      if (ring_->TakeShed(next_seq) >= 0) {
        consume_shed(next_seq);
        ++next_seq;
        continue;
      }
      return;
    }
  };

  for (;;) {
    ProcessControlOps();
    RecordBatch batch;
    int wait = tick;
    if (have_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      wait = static_cast<int>(
          std::max<long long>(1, std::min<long long>(wait, left)));
    }
    const auto status = ring_->PopFor(batch, wait);
    if (status == BoundedBatchRing::PopStatus::kDone) break;
    if (status == BoundedBatchRing::PopStatus::kGot) {
      pending.emplace(batch.seq, std::move(batch));
      advance();
    }
    while (window.size() >= opts_.batch_window) {
      ApplyWindow(window, spans, opts_.batch_window);
      have_deadline = false;
    }
    if (!window.empty()) {
      if (!have_deadline) {
        deadline = Clock::now() +
                   std::chrono::milliseconds(opts_.window_flush_millis);
        have_deadline = true;
      } else if (Clock::now() >= deadline) {
        ApplyWindow(window, spans, window.size());
        have_deadline = false;
      }
    } else {
      have_deadline = false;
    }
  }

  bool killed;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    killed = killed_;
  }
  if (killed) return;  // crash simulation: no flush, no boundary snapshot

  // Graceful drain: every producer finished, so the leftover batches are a
  // contiguous run from next_seq. Apply them, flush the final partial
  // window, and take the boundary snapshot.
  ProcessControlOps();
  advance();
  while (window.size() >= opts_.batch_window)
    ApplyWindow(window, spans, opts_.batch_window);
  if (!window.empty()) ApplyWindow(window, spans, window.size());
  if (journal_ != nullptr) {
    WriteSnapshotState();
    drain_snapshot_written_ = true;
  }
}

}  // namespace server
}  // namespace gstream
