#ifndef GSTREAM_SERVER_SERVER_H_
#define GSTREAM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interning.h"
#include "engine/driver.h"
#include "engine/engine.h"
#include "ingest/ring_buffer.h"
#include "server/journal.h"
#include "server/protocol.h"
#include "server/server_state.h"
#include "time/window.h"

namespace gstream {
namespace server {

/// What the apply thread does when a subscriber's bounded outbound queue is
/// full — the network-side mirror of the ingest ring's OverloadPolicy.
enum class SlowClientPolicy : uint8_t {
  kBlock = 0,       ///< Backpressure: the apply thread waits for queue space,
                    ///< which stalls the ring and ultimately the producers'
                    ///< TCP writes — nothing is lost, everything slows.
  kShedOldest = 1,  ///< Drop the oldest queued *notification* (control frames
                    ///< never shed); counted per client and reported in
                    ///< Progress frames.
  kDisconnect = 2,  ///< Close the slow client; it may reconnect and resume
                    ///< from the notification log.
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port from port().
  EngineKind engine = EngineKind::kTricPlus;

  /// Window/thread semantics identical to IngestOptions (the same apply
  /// machinery runs behind the socket front-end).
  size_t batch_window = 32;
  int batch_threads = 1;
  bool shared_finalize = true;

  /// Decode->apply ring between connection readers and the apply thread.
  size_t ring_capacity = 8;
  ingest::OverloadPolicy ingest_overload = ingest::OverloadPolicy::kBlock;

  /// Subscriber-side overload machinery.
  SlowClientPolicy slow_client = SlowClientPolicy::kBlock;
  size_t outbound_capacity = 256;   ///< Frames per client outbound queue.
  size_t notify_log_capacity = 1 << 16;  ///< Replayable notifications kept.

  /// SO_SNDBUF for accepted connections (0 = system default). Kernel-side
  /// buffering sits *in front of* the outbound queue: with the default
  /// ~hundreds of KB a slow client can lag that far behind before the
  /// block/shed/disconnect policy ever sees pressure. Bounding it makes the
  /// application-level policy the real backstop (and makes the policy tests
  /// deterministic).
  int sndbuf_bytes = 0;

  /// Liveness: the writer thread emits a Progress frame (doubling as the
  /// server heartbeat) after this much outbound silence, and a connection
  /// that sends nothing — not even a heartbeat — for idle_timeout_millis is
  /// disconnected.
  int heartbeat_millis = 1000;
  int idle_timeout_millis = 10000;

  /// A partial window flushes this long after its first record arrives, so
  /// a trickling stream still notifies promptly.
  int window_flush_millis = 20;

  /// Durability (both empty = in-memory only). `journal_path` is the
  /// append-only streaming `.gsb` WAL; `state_path` holds the atomic
  /// snapshot + subscription + producer-offset image written every
  /// `snapshot_every_windows` finalized windows. Start() recovers from an
  /// existing journal automatically.
  std::string journal_path;
  std::string state_path;
  uint64_t snapshot_every_windows = 0;

  /// Sliding-window expiry (src/time): the apply thread splices each
  /// record's due internal deletions ahead of it in the same engine window.
  /// The journal stores original records only — expiry is event-time
  /// deterministic, so recovery replay re-derives it — and HelloAck
  /// advertises (policy, width) to connecting clients.
  temporal::WindowConfig window;
};

/// Monotonic counters, greppable from the CLI at exit and asserted by the
/// resilience tests. Reconciliation invariant (by construction):
///   notifications_produced == delivered + shed + still-queued.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t records_accepted = 0;     ///< Deduplicated records entering the ring.
  uint64_t records_applied = 0;
  uint64_t windows_finalized = 0;
  uint64_t notifications_produced = 0;   ///< Notify frames enqueued (per client).
  uint64_t notifications_delivered = 0;  ///< Notify frames written to a socket.
  uint64_t notifications_shed = 0;       ///< Dropped by policy / at close.
  uint64_t duplicate_records_skipped = 0;  ///< At-least-once resend overlap.
  uint64_t protocol_errors = 0;
  uint64_t idle_disconnects = 0;
  uint64_t slow_disconnects = 0;
  uint64_t snapshots_written = 0;
  uint64_t expired_edges = 0;    ///< Internal window-expiry deletions applied.
  uint64_t expiry_batches = 0;   ///< Advances that emitted >= 1 deletion.
  uint64_t live_edges = 0;       ///< Current live-edge horizon.
};

/// The resilient streaming front-end (DESIGN.md §11): one engine behind a
/// TCP accept loop. Connection readers decode frames and feed the bounded
/// ring; the single apply thread owns the engine, applies windows
/// (journaling each window before applying it — WAL ordering), fans match
/// notifications out to subscribers through bounded per-client queues, and
/// writes crash-state snapshots at the configured cadence.
class Server {
 public:
  // Out-of-line: members hold containers of nested types defined in the .cc.
  explicit Server(ServerOptions opts);
  ~Server();

  /// Validates options, recovers from an existing journal when configured,
  /// binds the socket, and starts the threads. False with `*error` set.
  bool Start(std::string* error);

  int port() const { return port_; }

  /// Graceful shutdown (SIGTERM): stop accepting, let connection readers
  /// drain, flush the final partial window, write a boundary snapshot, send
  /// every client a Drain frame, then close. Idempotent.
  void Drain();

  /// Crash simulation (kill -9): abort the ring, hard-close every socket,
  /// and join the threads with NO flush and NO final snapshot — exactly the
  /// state a killed process leaves on disk. Idempotent.
  void Kill();

  ServerStats stats() const;

  /// Applied-record count (the notification index space); exposed for tests.
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }

 private:
  struct Producer;
  struct Conn;
  struct ControlOp;
  struct NotifyLogEntry;
  struct SubSlot;
  struct Span;

  bool Recover(std::string* error);
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> c);
  void WriterLoop(std::shared_ptr<Conn> c);
  bool HandleFrame(const std::shared_ptr<Conn>& c, Frame& f);
  void ApplyLoop();
  void ApplyWindow(std::vector<EdgeUpdate>& window, std::deque<Span>& spans,
                   size_t n);
  void WriteSnapshotState();
  void ProcessControlOps();
  void PostOp(ControlOp&& op);
  bool EnqueueOutbound(Conn& c, std::vector<uint8_t> bytes, bool sheddable);
  bool ProtocolError(Conn& c, const std::string& message);
  void SendErrorAndFlushClose(Conn& c, ErrorCode code,
                              const std::string& message);
  void HardClose(Conn& c);
  void FanOut(uint64_t index, const UpdateResult& result);
  void SendNotifyTo(Conn& c, const NotifyLogEntry& entry);

  ServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<ContinuousEngine> engine_;
  ResultAccumulator acc_;
  std::unique_ptr<ingest::BoundedBatchRing> ring_;
  std::unique_ptr<Journal> journal_;

  /// Apply-thread-only (recovery replay runs on the Start() thread before
  /// the apply thread exists). Counters are mirrored into atomics for
  /// stats() readers.
  std::unique_ptr<temporal::WindowManager> window_mgr_;
  std::vector<EdgeUpdate> exec_buf_;  ///< Expiry splice scratch.
  std::atomic<uint64_t> expired_edges_{0};
  std::atomic<uint64_t> expiry_batches_{0};
  std::atomic<uint64_t> live_edges_{0};

  // Shared dictionary: every client id remaps into this interner; guarded by
  // interner_mu_ (readers intern dict frames, the apply thread parses
  // patterns and extracts journal dict deltas).
  std::mutex interner_mu_;
  StringInterner interner_;

  // Record-batch sequencing: reader threads take a dense seq + register the
  // batch's producer span under seq_mu_, then push OUTSIDE the lock (the
  // apply thread reassembles order from seq, so push order is free).
  std::mutex seq_mu_;
  uint64_t next_push_seq_ = 0;
  struct BatchMeta {
    std::string producer;
    uint64_t base = 0;  ///< Producer-stream offset of the batch's first record.
    size_t count = 0;
  };
  std::unordered_map<uint64_t, BatchMeta> batch_meta_;

  // Producer registry (client name -> durable stream position).
  std::mutex producers_mu_;
  std::unordered_map<std::string, std::shared_ptr<Producer>> producers_;

  // Control ops from connection readers to the apply thread.
  std::mutex ops_mu_;
  std::deque<ControlOp> ops_;

  // Apply-thread-only state (no locks): subscription registry, notification
  // log, attached subscriber connections.
  std::vector<SubSlot> subs_;
  std::unordered_map<QueryId, size_t> qid_to_slot_;
  QueryId next_qid_ = 0;
  std::deque<NotifyLogEntry> notify_log_;
  uint64_t notify_log_start_ = 0;
  std::vector<std::shared_ptr<Conn>> attached_;
  uint32_t journal_dict_synced_ = 0;  ///< Interner prefix already journaled.
  std::unordered_set<QueryId> recovered_satisfied_;

  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> windows_finalized_{0};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 0;
  bool draining_ = false;
  bool killed_ = false;
  bool started_ = false;
  bool stopped_ = false;
  bool drain_snapshot_written_ = false;

  std::thread accept_thread_;
  std::thread apply_thread_;

  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> records_accepted{0};
    std::atomic<uint64_t> notifications_produced{0};
    std::atomic<uint64_t> notifications_delivered{0};
    std::atomic<uint64_t> notifications_shed{0};
    std::atomic<uint64_t> duplicate_records_skipped{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> idle_disconnects{0};
    std::atomic<uint64_t> slow_disconnects{0};
    std::atomic<uint64_t> snapshots_written{0};
  };
  mutable Counters counters_;
};

/// Parses a SlowClientPolicy name ("block", "shed", "disconnect"); returns
/// false on an unknown name.
bool ParseSlowClientPolicy(const std::string& name, SlowClientPolicy* out);

}  // namespace server
}  // namespace gstream

#endif  // GSTREAM_SERVER_SERVER_H_
