#include "server/server_state.h"

#include <cstdio>

#include "ingest/crc32c.h"
#include "ingest/gsb_format.h"
#include "ingest/gsb_writer.h"

namespace gstream {
namespace server {

using ingest::Crc32c;
using ingest::GetU32;
using ingest::GetU64;
using ingest::PutU32;
using ingest::PutU64;

namespace {

// "GSRV" little-endian.
constexpr uint32_t kStateMagic = 0x56525347;
constexpr uint32_t kStateVersion = 1;
constexpr size_t kStateHeaderBytes = 16;  // magic, version, len, crc
constexpr uint32_t kMaxStateString = 64 * 1024;

void PutStr(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || static_cast<size_t>(end - p) < n) ok = false;
    return ok;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    const uint32_t v = GetU32(p);
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    const uint64_t v = GetU64(p);
    p += 8;
    return v;
  }
  std::string Str() {
    const uint32_t len = U32();
    if (len > kMaxStateString || !Need(len)) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
};

}  // namespace

bool WriteServerState(const std::string& path, const ServerState& state,
                      std::string* error) {
  std::vector<uint8_t> payload;
  const std::vector<uint8_t> snap_image = ingest::EncodeSnapshot(state.snap);
  PutU32(payload, static_cast<uint32_t>(snap_image.size()));
  payload.insert(payload.end(), snap_image.begin(), snap_image.end());

  PutU32(payload, static_cast<uint32_t>(state.subscriptions.size()));
  for (const SubscriptionRecord& s : state.subscriptions) {
    PutStr(payload, s.client_name);
    PutU32(payload, s.sub_id);
    PutU32(payload, s.qid);
    PutU64(payload, s.registered_offset);
    PutStr(payload, s.pattern);
  }
  PutU32(payload, static_cast<uint32_t>(state.producers.size()));
  for (const ProducerRecord& p : state.producers) {
    PutStr(payload, p.client_name);
    PutU64(payload, p.acked);
  }

  std::vector<uint8_t> image;
  image.reserve(kStateHeaderBytes + payload.size());
  PutU32(image, kStateMagic);
  PutU32(image, kStateVersion);
  PutU32(image, static_cast<uint32_t>(payload.size()));
  PutU32(image, Crc32c(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  return ingest::AtomicWriteFile(path, image.data(), image.size(), error);
}

bool ReadServerState(const std::string& path, ServerState& state,
                     std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "server state " + path + ": " + why;
    return false;
  };

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < static_cast<long>(kStateHeaderBytes)) {
    std::fclose(f);
    return fail("truncated header");
  }
  std::vector<uint8_t> image(static_cast<size_t>(size));
  const size_t got = std::fread(image.data(), 1, image.size(), f);
  std::fclose(f);
  if (got != image.size()) return fail("short read");

  if (GetU32(image.data()) != kStateMagic)
    return fail("bad magic (not a server-state file)");
  if (GetU32(image.data() + 4) != kStateVersion)
    return fail("unsupported version");
  const uint32_t len = GetU32(image.data() + 8);
  const uint32_t crc = GetU32(image.data() + 12);
  if (image.size() != kStateHeaderBytes + len)
    return fail("payload length mismatch");
  const uint8_t* payload = image.data() + kStateHeaderBytes;
  if (Crc32c(payload, len) != crc) return fail("payload CRC mismatch");

  Cursor c{payload, payload + len};
  const uint32_t snap_len = c.U32();
  if (!c.Need(snap_len)) return fail("truncated snapshot image");
  std::string snap_err;
  if (!ingest::DecodeSnapshot(c.p, snap_len, state.snap, &snap_err))
    return fail("embedded snapshot: " + snap_err);
  c.p += snap_len;

  const uint32_t sub_count = c.U32();
  state.subscriptions.clear();
  for (uint32_t i = 0; i < sub_count && c.ok; ++i) {
    SubscriptionRecord s;
    s.client_name = c.Str();
    s.sub_id = c.U32();
    s.qid = c.U32();
    s.registered_offset = c.U64();
    s.pattern = c.Str();
    state.subscriptions.push_back(std::move(s));
  }
  const uint32_t producer_count = c.U32();
  state.producers.clear();
  for (uint32_t i = 0; i < producer_count && c.ok; ++i) {
    ProducerRecord p;
    p.client_name = c.Str();
    p.acked = c.U64();
    state.producers.push_back(std::move(p));
  }
  if (!c.ok || c.p != c.end) return fail("payload framing mismatch");
  return true;
}

}  // namespace server
}  // namespace gstream
