#ifndef GSTREAM_SERVER_SERVER_STATE_H_
#define GSTREAM_SERVER_SERVER_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "ingest/snapshot.h"

namespace gstream {
namespace server {

/// One durable subscription record, in registration order. Registration
/// order matters: recovery re-registers queries in exactly this order so the
/// replayed engine assigns identical qids and the boundary fingerprint
/// cross-check holds.
struct SubscriptionRecord {
  std::string client_name;
  uint32_t sub_id = 0;
  QueryId qid = 0;
  /// Applied-record count when the subscription registered. A query that
  /// joined mid-stream has no backfill; recovery replays it from record 0,
  /// and the snapshot's fingerprint/counter cross-check catches any
  /// divergence that causes (the documented §11 limitation).
  uint64_t registered_offset = 0;
  /// The pattern text as received (QueryPattern::ToString drops constraints,
  /// so we persist the client's original text and re-parse on recovery).
  std::string pattern;
};

struct ProducerRecord {
  std::string client_name;
  uint64_t acked = 0;  ///< Producer-stream records durably applied.
};

/// The server's crash-state image: the engine snapshot plus everything the
/// snapshot's replay contract needs that lives outside the journal — the
/// subscription registry and per-producer offsets. Written as ONE atomic
/// file at snapshot boundaries so they can never disagree.
struct ServerState {
  ingest::SnapshotData snap;
  std::vector<SubscriptionRecord> subscriptions;
  std::vector<ProducerRecord> producers;
};

/// Atomically writes `state` to `path` (tmp + fsync + rename). False with
/// `*error` set on I/O failure.
bool WriteServerState(const std::string& path, const ServerState& state,
                      std::string* error);

/// Reads and validates a server-state file (magic, version, CRC, exact
/// framing, embedded snapshot integrity). False with `*error` set.
bool ReadServerState(const std::string& path, ServerState& state,
                     std::string* error);

}  // namespace server
}  // namespace gstream

#endif  // GSTREAM_SERVER_SERVER_STATE_H_
