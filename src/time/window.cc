#include "time/window.h"

#include <algorithm>

namespace gstream {
namespace temporal {

const char* WindowPolicyName(WindowPolicy policy) {
  switch (policy) {
    case WindowPolicy::kNone: return "none";
    case WindowPolicy::kTime: return "time";
    case WindowPolicy::kCount: return "count";
    case WindowPolicy::kLabelTtl: return "label-ttl";
  }
  return "?";
}

bool ParseWindowPolicy(const std::string& name, WindowPolicy* out) {
  if (name == "none") *out = WindowPolicy::kNone;
  else if (name == "time") *out = WindowPolicy::kTime;
  else if (name == "count") *out = WindowPolicy::kCount;
  else if (name == "label-ttl") *out = WindowPolicy::kLabelTtl;
  else return false;
  return true;
}

std::string ValidateWindowConfig(const WindowConfig& config) {
  if (!config.enabled()) {
    if (!config.label_ttls.empty())
      return "window: label TTLs given without a policy";
    return "";
  }
  if (config.width == 0) return "window: width must be >= 1";
  if (config.policy != WindowPolicy::kLabelTtl && !config.label_ttls.empty())
    return "window: label TTLs only apply to the label-ttl policy";
  for (const auto& [label, ttl] : config.label_ttls) {
    (void)label;
    if (ttl == 0) return "window: per-label TTL must be >= 1";
  }
  return "";
}

WindowManager::WindowManager(const WindowConfig& config) : config_(config) {
  for (const auto& [label, ttl] : config_.label_ttls) label_ttl_[label] = ttl;
}

uint64_t WindowManager::TtlFor(LabelId label) const {
  if (config_.policy == WindowPolicy::kLabelTtl) {
    auto it = label_ttl_.find(label);
    if (it != label_ttl_.end()) return it->second;
  }
  return config_.width;
}

bool WindowManager::PopStale() {
  bool popped = false;
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    auto it = live_.find(top.edge);
    if (it != live_.end() && it->second.seq == top.seq) break;
    heap_.pop();
    popped = true;
  }
  return popped;
}

void WindowManager::EmitExpiry(const HeapEntry& top,
                               std::vector<EdgeUpdate>& out) {
  EdgeUpdate del = top.edge;
  del.op = UpdateOp::kDelete;
  // Informational: the event time at which the edge left the window.
  del.ts = config_.policy == WindowPolicy::kCount ? watermark_ : top.key;
  out.push_back(del);
  live_.erase(top.edge);
  ++expired_edges_;
}

size_t WindowManager::Advance(const EdgeUpdate& u, std::vector<EdgeUpdate>& out) {
  if (!config_.enabled()) return 0;
  size_t emitted = 0;

  if (config_.policy != WindowPolicy::kCount) {
    // Event-time policies: the watermark only moves forward, so a straggler
    // carrying an old `ts` still lands inside a deterministic horizon.
    watermark_ = std::max(watermark_, u.ts);
    PopStale();
    while (!heap_.empty() && heap_.top().key <= watermark_) {
      EmitExpiry(heap_.top(), out);
      heap_.pop();
      ++emitted;
      PopStale();
    }
  }

  if (u.op == UpdateOp::kAdd) {
    auto it = live_.find(u);
    const bool fresh = it == live_.end();
    if (config_.policy == WindowPolicy::kCount && fresh) {
      // FIFO eviction *before* the insert keeps the live count at `width`.
      while (live_.size() >= config_.width) {
        PopStale();
        if (heap_.empty()) break;
        EmitExpiry(heap_.top(), out);
        heap_.pop();
        ++emitted;
      }
    }
    const uint64_t key = config_.policy == WindowPolicy::kCount
                             ? next_seq_
                             : u.ts + TtlFor(u.label);
    if (fresh) {
      live_.emplace(u, LiveEntry{key, next_seq_});
      ++ingested_edges_;
    } else {
      // Re-adding a live edge refreshes its horizon (the stale heap entry is
      // skipped lazily); the live set and `ingested` are unchanged, so the
      // accounting invariant ingested == live + expired + removed holds.
      it->second = LiveEntry{key, next_seq_};
    }
    heap_.push(HeapEntry{key, next_seq_, u});
    ++next_seq_;
  } else {
    // An explicit stream delete retires the edge from the window; its heap
    // entry goes stale and is skipped when it surfaces.
    auto it = live_.find(u);
    if (it != live_.end()) {
      live_.erase(it);
      ++removed_edges_;
    }
  }

  if (emitted > 0) ++expiry_batches_;
  return emitted;
}

}  // namespace temporal
}  // namespace gstream
