#ifndef GSTREAM_TIME_WINDOW_H_
#define GSTREAM_TIME_WINDOW_H_

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/update.h"

namespace gstream {
namespace temporal {

/// Expiry policy of a WindowManager. The engines never see a policy — every
/// policy reduces to the same mechanism, batched internal deletions spliced
/// into the update stream at deterministic positions (DESIGN.md §13).
enum class WindowPolicy : uint8_t {
  kNone = 0,      ///< No expiry; the manager is a pass-through.
  kTime = 1,      ///< Sliding event-time window: expire when watermark >= ts + width.
  kCount = 2,     ///< Count window: at most `width` live edges, FIFO eviction.
  kLabelTtl = 3,  ///< Per-label TTL; `width` is the default for unlisted labels.
};

const char* WindowPolicyName(WindowPolicy policy);

/// Parses a policy name ("none", "time", "count", "label-ttl"); false on an
/// unknown name. Shared by the CLI / server / bench flag parsers.
bool ParseWindowPolicy(const std::string& name, WindowPolicy* out);

/// Window configuration, carried end-to-end: CLI / bench flags →
/// IngestOptions / ServerOptions → WindowManager. Wire and snapshot
/// encodings serialize only (policy, width); label TTLs are process-local
/// configuration.
struct WindowConfig {
  WindowPolicy policy = WindowPolicy::kNone;

  /// kTime: window width in event-time units. kCount: max live edges.
  /// kLabelTtl: default TTL for labels without an override.
  uint64_t width = 0;

  /// kLabelTtl only: per-label TTL overrides.
  std::vector<std::pair<LabelId, uint64_t>> label_ttls;

  bool enabled() const { return policy != WindowPolicy::kNone; }
};

/// Empty string when valid, else a diagnostic.
std::string ValidateWindowConfig(const WindowConfig& config);

/// Tracks the live-edge horizon of a timestamped stream and converts expiry
/// into explicit `kDelete` updates. Purely event-time driven (the watermark
/// is the max observed `ts`, never wall clock), so a replay of the same
/// stream expires identically — which is what makes snapshot recovery a
/// plain fast-forward re-execution and the expiry-vs-explicit-deletes oracle
/// byte-identical by construction.
///
/// Single-threaded: owned by whichever apply loop feeds the engine (driver,
/// ingest pipeline, or server apply thread).
class WindowManager {
 public:
  explicit WindowManager(const WindowConfig& config);

  /// Observes one incoming stream update *before* it is applied and appends
  /// the internal deletions that must apply ahead of it to `out` (oldest
  /// first). Returns the number of deletions appended. The caller applies
  /// `out` then `u`; because deletions are batch-window barriers in
  /// ApplyBatch, splicing them at these positions is byte-identical to an
  /// explicit-deletion stream at any batch size.
  size_t Advance(const EdgeUpdate& u, std::vector<EdgeUpdate>& out);

  /// Accounting invariant: ingested == live + expired + removed.
  uint64_t ingested_edges() const { return ingested_edges_; }
  uint64_t expired_edges() const { return expired_edges_; }
  uint64_t removed_edges() const { return removed_edges_; }
  uint64_t expiry_batches() const { return expiry_batches_; }
  uint64_t live_edges() const { return live_.size(); }
  uint64_t watermark() const { return watermark_; }

  const WindowConfig& config() const { return config_; }

 private:
  struct LiveEntry {
    uint64_t key = 0;  ///< Expiry time (time policies) or insertion seq (count).
    uint64_t seq = 0;  ///< Monotonic insertion/refresh sequence.
  };
  struct HeapEntry {
    uint64_t key = 0;
    uint64_t seq = 0;
    EdgeUpdate edge;
    bool operator>(const HeapEntry& o) const {
      return key != o.key ? key > o.key : seq > o.seq;
    }
  };

  uint64_t TtlFor(LabelId label) const;
  /// Pops heap entries no longer matching the live map (refreshed or
  /// explicitly deleted edges leave stale heap entries behind).
  bool PopStale();
  void EmitExpiry(const HeapEntry& top, std::vector<EdgeUpdate>& out);

  WindowConfig config_;
  std::unordered_map<LabelId, uint64_t> label_ttl_;
  std::unordered_map<EdgeUpdate, LiveEntry, EdgeKeyHash, EdgeKeyEq> live_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>
      heap_;
  uint64_t watermark_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t ingested_edges_ = 0;
  uint64_t expired_edges_ = 0;
  uint64_t removed_edges_ = 0;
  uint64_t expiry_batches_ = 0;
};

}  // namespace temporal
}  // namespace gstream

#endif  // GSTREAM_TIME_WINDOW_H_
