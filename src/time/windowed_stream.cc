#include "time/windowed_stream.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"

namespace gstream {
namespace temporal {

namespace {

/// TTL'd-query expiry heap entry; lazy staleness against the expiry map (an
/// explicit RemoveQuery retires the entry before it surfaces).
struct QueryExpiry {
  uint64_t expiry = 0;
  QueryId qid = 0;
  bool operator>(const QueryExpiry& o) const {
    return expiry != o.expiry ? expiry > o.expiry : qid > o.qid;
  }
};

/// RunMixedStream's execution discipline (consecutive updates batched into
/// `config.batch_window` windows, query events as barriers) over an already
/// expanded stream, with the ResultAccumulator sink observing every
/// per-update result. Kept here rather than generalizing RunMixedStream so
/// the plain driver keeps its exact shape (and its callers their exact
/// costs).
MixedRunStats ExecuteExpanded(ContinuousEngine& engine,
                              const std::vector<StreamEvent>& events,
                              const RunConfig& config,
                              ResultAccumulator::Sink sink) {
  GS_CHECK_MSG(config.batch_window >= 1, "batch_window must be >= 1");
  GS_CHECK_MSG(config.batch_threads >= 1, "batch_threads must be >= 1");
  MixedRunStats stats;
  Budget budget;
  if (std::isfinite(config.budget_seconds))
    budget.SetDeadlineAfter(config.budget_seconds);
  engine.set_budget(&budget);
  const size_t window = config.batch_window > 1 ? config.batch_window : 1;
  if (window > 1) engine.SetBatchThreads(config.batch_threads);

  ResultAccumulator acc;
  acc.sink = std::move(sink);

  size_t i = 0;
  while (i < events.size() && !stats.timed_out) {
    const StreamEvent& ev = events[i];
    if (ev.kind == StreamEvent::Kind::kUpdate) {
      size_t j = i;
      while (j < events.size() && events[j].kind == StreamEvent::Kind::kUpdate)
        ++j;
      WallTimer timer;
      if (window == 1) {
        for (; i < j && !stats.timed_out; ++i) {
          if (acc.Absorb(engine.ApplyUpdate(events[i].update)) ||
              budget.ExceededNow())
            stats.timed_out = true;
        }
      } else {
        std::vector<EdgeUpdate> batch;
        batch.reserve(std::min(window, j - i));
        while (i < j && !stats.timed_out) {
          batch.clear();
          for (; i < j && batch.size() < window; ++i)
            batch.push_back(events[i].update);
          std::vector<UpdateResult> results =
              engine.ApplyBatch(batch.data(), batch.size());
          for (const UpdateResult& r : results)
            if (acc.Absorb(r)) stats.timed_out = true;
          if (results.size() < batch.size() || budget.ExceededNow())
            stats.timed_out = true;
        }
      }
      stats.answer_millis += timer.ElapsedMillis();
      continue;
    }

    if (ev.kind == StreamEvent::Kind::kAddQuery) {
      WallTimer timer;
      engine.AddQuery(ev.qid, ev.query);
      stats.index_millis += timer.ElapsedMillis();
      ++stats.queries_added;
    } else {
      WallTimer timer;
      GS_CHECK_MSG(engine.RemoveQuery(ev.qid),
                   "RunWindowedStream: removing unknown query id " +
                       std::to_string(ev.qid));
      stats.remove_millis += timer.ElapsedMillis();
      ++stats.queries_removed;
    }
    ++i;
    if (budget.ExceededNow()) stats.timed_out = true;
  }

  if (window > 1) engine.SetBatchThreads(1);
  stats.updates_applied = acc.stats.updates_applied;
  stats.new_embeddings = acc.stats.new_embeddings;
  stats.queries_satisfied = acc.satisfied.size();
  stats.memory_bytes = engine.MemoryBytes();
  engine.set_budget(nullptr);
  return stats;
}

}  // namespace

ExpiryOracle MaterializeExpiryOracle(const std::vector<StreamEvent>& events,
                                     const WindowConfig& config) {
  ExpiryOracle out;
  out.events.reserve(events.size());
  out.synthetic.reserve(events.size());
  WindowManager wm(config);

  std::priority_queue<QueryExpiry, std::vector<QueryExpiry>,
                      std::greater<QueryExpiry>>
      qheap;
  std::unordered_map<QueryId, uint64_t> ttl_expiry;
  uint64_t qwm = 0;  ///< Query watermark: max observed ts, any policy.

  std::vector<EdgeUpdate> deletes;
  const auto push = [&](StreamEvent e, bool synthetic) {
    out.events.push_back(std::move(e));
    out.synthetic.push_back(synthetic ? 1 : 0);
  };

  for (const StreamEvent& ev : events) {
    if (ev.kind == StreamEvent::Kind::kUpdate) {
      qwm = std::max(qwm, ev.update.ts);
      // (1) TTL'd-query removal wave due at this watermark, in (expiry, qid)
      // order. A stale heap entry (query explicitly removed first) is
      // skipped; the inverse order — an explicit RemoveQuery *after* the
      // query's TTL expiry — is invalid input and fails the executor's
      // unknown-qid check, same as any double removal.
      while (!qheap.empty() && qheap.top().expiry <= qwm) {
        const QueryExpiry top = qheap.top();
        qheap.pop();
        auto it = ttl_expiry.find(top.qid);
        if (it == ttl_expiry.end() || it->second != top.expiry) continue;
        ttl_expiry.erase(it);
        push(StreamEvent::Remove(top.qid), true);
        ++out.expired_queries;
      }
      // (2) Edge expiry due before this update.
      deletes.clear();
      wm.Advance(ev.update, deletes);
      for (const EdgeUpdate& d : deletes) push(StreamEvent::Update(d), true);
      // (3) The update itself.
      push(ev, false);
    } else if (ev.kind == StreamEvent::Kind::kAddQuery) {
      StreamEvent copy = ev;
      if (copy.query_ttl > 0) {
        const uint64_t expiry = qwm + copy.query_ttl;
        ttl_expiry[copy.qid] = expiry;
        qheap.push(QueryExpiry{expiry, copy.qid});
        copy.query_ttl = 0;  // The expansion makes the removal explicit.
      }
      push(std::move(copy), false);
    } else {
      ttl_expiry.erase(ev.qid);
      push(ev, false);
    }
  }

  out.ingested_edges = wm.ingested_edges();
  out.expired_edges = wm.expired_edges();
  out.removed_edges = wm.removed_edges();
  out.expiry_batches = wm.expiry_batches();
  out.live_edges = wm.live_edges();
  out.watermark = qwm;
  return out;
}

WindowedRunStats RunWindowedStream(ContinuousEngine& engine,
                                   const std::vector<StreamEvent>& events,
                                   const WindowConfig& window,
                                   const RunConfig& config,
                                   ResultAccumulator::Sink sink) {
  GS_CHECK_MSG(ValidateWindowConfig(window).empty(),
               "RunWindowedStream: " + ValidateWindowConfig(window));
  ExpiryOracle oracle = MaterializeExpiryOracle(events, window);
  WindowedRunStats stats;
  stats.ingested_edges = oracle.ingested_edges;
  stats.expired_edges = oracle.expired_edges;
  stats.removed_edges = oracle.removed_edges;
  stats.expiry_batches = oracle.expiry_batches;
  stats.expired_queries = oracle.expired_queries;
  stats.live_edges = oracle.live_edges;
  stats.watermark = oracle.watermark;
  stats.mixed = ExecuteExpanded(engine, oracle.events, config, std::move(sink));
  return stats;
}

}  // namespace temporal
}  // namespace gstream
