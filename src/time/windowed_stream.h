#ifndef GSTREAM_TIME_WINDOWED_STREAM_H_
#define GSTREAM_TIME_WINDOWED_STREAM_H_

#include <cstdint>
#include <vector>

#include "engine/driver.h"
#include "time/window.h"

namespace gstream {
namespace temporal {

/// An event stream with its temporal semantics made explicit: every window
/// expiry is a synthetic `kDelete` update and every query-TTL expiry a
/// synthetic `kRemoveQuery` event, spliced at the exact positions the
/// windowed runner retires them. `synthetic[i]` marks the spliced events, so
/// callers can project results back onto the original stream.
struct ExpiryOracle {
  std::vector<StreamEvent> events;
  std::vector<uint8_t> synthetic;

  /// Temporal accounting of the materialization (final WindowManager state).
  uint64_t ingested_edges = 0;
  uint64_t expired_edges = 0;
  uint64_t removed_edges = 0;
  uint64_t expiry_batches = 0;
  uint64_t expired_queries = 0;
  uint64_t live_edges = 0;
  uint64_t watermark = 0;
};

/// Expands `events` under `config` into the equivalent explicit stream.
/// Pure stream → stream: expiry decisions depend only on timestamps (the
/// event-time watermark), never on engine state, which is what makes the
/// windowed runner and this oracle agree by construction — and windowed
/// replay deterministic across restarts. With `WindowPolicy::kNone` and no
/// query TTLs this is the identity.
///
/// Splice order ahead of each update `u`: (1) the TTL'd-query removal wave
/// due at `u.ts` (a batch barrier — engines forbid lifecycle calls mid
/// batch), (2) the edge-expiry deletions due at `u.ts` (in-window: deletions
/// are ApplyBatch barriers, DESIGN.md §4), then (3) `u` itself.
ExpiryOracle MaterializeExpiryOracle(const std::vector<StreamEvent>& events,
                                     const WindowConfig& config);

/// MixedRunStats plus the temporal accounting the benches and CLI report.
/// `mixed.updates_applied` counts every engine-applied op *including*
/// synthetic expiry deletions (it is the ResultAccumulator convention);
/// `expired_edges` separates the synthetic share out, so
/// `ingested_edges == live_edges + expired_edges + removed_edges` always.
struct WindowedRunStats {
  MixedRunStats mixed;
  uint64_t ingested_edges = 0;
  uint64_t expired_edges = 0;
  uint64_t removed_edges = 0;
  uint64_t expiry_batches = 0;
  uint64_t expired_queries = 0;
  uint64_t live_edges = 0;
  uint64_t watermark = 0;
};

/// Drives `events` through `engine` with sliding-window expiry and TTL'd
/// queries: materializes the expiry oracle, then executes the expanded
/// stream exactly as RunMixedStream would (consecutive updates batched into
/// `config.batch_window` windows, query events as barriers), with `sink`
/// observing every per-update result. A run under `WindowPolicy::kNone` on
/// a pre-expanded stream is therefore the explicit-deletion oracle itself —
/// the equality the window tests assert.
WindowedRunStats RunWindowedStream(ContinuousEngine& engine,
                                   const std::vector<StreamEvent>& events,
                                   const WindowConfig& window,
                                   const RunConfig& config = {},
                                   ResultAccumulator::Sink sink = nullptr);

}  // namespace temporal
}  // namespace gstream

#endif  // GSTREAM_TIME_WINDOWED_STREAM_H_
