#include "tric/tric_engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/mem_tracker.h"

namespace gstream {
namespace tric {

TricEngine::TricEngine(const Options& options)
    : options_(options),
      cache_(options.cache ? std::make_unique<JoinCache>() : nullptr) {
  // Plain TRIC rebuilds join tables per update; batch windows may amortize
  // them (transiently — see ViewEngineBase::EnableWindowCache).
  if (!options.cache) EnableWindowCache();
}

std::string TricEngine::name() const {
  std::string name = cache_ ? "TRIC+" : "TRIC";
  if (!options_.clustering) name += "(nocluster)";
  if (options_.per_edge_paths) name += "(peredge)";
  return name;
}

void TricEngine::AddQueryImpl(QueryId qid, const QueryPattern& q) {
  MarkReachDirty();

  QueryEntry entry;
  entry.pattern = q;

  // Step 1 (paper §4.1): extract the covering paths (or the per-edge
  // decomposition for the ablation).
  std::vector<CoveringPath> paths;
  if (options_.per_edge_paths) {
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      CoveringPath p;
      p.edges = {e};
      p.vertices = {q.edge(e).src, q.edge(e).dst};
      paths.push_back(std::move(p));
    }
  } else {
    paths = ExtractCoveringPaths(q);
  }

  // Step 2: index each genericized path in the trie forest. Base views are
  // reference-counted per signature element; RemoveQueryImpl releases the
  // same references by re-walking the trie chains.
  for (uint32_t pi = 0; pi < paths.size(); ++pi) {
    std::vector<GenericEdgePattern> sig = GenericSignature(q, paths[pi]);
    for (const auto& p : sig) RefBaseView(p);
    TrieNode* terminal = forest_.InsertPath(
        sig, [this](TrieNode* n) { InitNodeView(n); }, options_.clustering);
    terminal->paths.push_back(PathRef{qid, pi});

    PathInfo info;
    info.terminal = terminal;
    info.pos_to_vertex = paths[pi].vertices;
    info.spec = PathBindingSpec::For(info.pos_to_vertex);
    if (info.spec.has_repeats())
      info.filtered =
          std::make_unique<Relation>(static_cast<uint32_t>(info.spec.schema.size()));
    entry.paths.push_back(std::move(info));
  }
  queries_.emplace(qid, std::move(entry));
}

void TricEngine::RemoveQueryImpl(QueryId qid) {
  MarkReachDirty();
  QueryEntry entry = std::move(queries_.at(qid));
  queries_.erase(qid);

  for (uint32_t pi = 0; pi < entry.paths.size(); ++pi) {
    PathInfo& info = entry.paths[pi];

    // The path's signature, reconstructed from its trie chain (identical to
    // the GenericSignature AddQueryImpl referenced, reversed): one base-view
    // release per element keeps the refcounts symmetric.
    std::vector<GenericEdgePattern> sig;
    for (const TrieNode* n = info.terminal; n != nullptr; n = n->parent)
      sig.push_back(n->pattern);

    // Unpin the covering path; suffix nodes nothing else pins are destroyed
    // together with their prefix views (paper Fig. 5 in reverse: the
    // deepest exclusively-owned node first, stopping at the shared prefix).
    forest_.RemovePathRef(info.terminal, qid, pi, [this](TrieNode* dead) {
      if (cache_ != nullptr) cache_->Evict(dead->view.get());
    });

    // Cyclic paths keep a per-query filtered projection; its indexes die
    // with the query too.
    if (cache_ != nullptr && info.filtered != nullptr)
      cache_->Evict(info.filtered.get());

    for (const auto& p : sig) UnrefBaseView(p);
  }

  // One compaction per removal (not per path/eviction): the routing indexes
  // and cache release their tombstoned capacity, making the GC visible to
  // MemoryBytes.
  forest_.CompactIndexes();
  if (cache_ != nullptr) cache_->Compact();
  CompactSharedState();
}

void TricEngine::OnRelationEvicted(const Relation* rel) {
  if (cache_ != nullptr) cache_->Evict(rel);
}

void TricEngine::InitNodeView(TrieNode* node) {
  node->view = std::make_unique<Relation>(node->depth + 2);
  Relation* base = GetOrCreateBaseView(node->pattern);
  if (base->Empty()) return;
  // Backfill from already-materialized shared state (queries registered
  // mid-stream see the data their shared prefixes retained).
  if (node->parent == nullptr) {
    node->view->AppendAll(*base);
  } else if (!node->parent->view->Empty()) {
    ExtendRight(AllRows(*node->parent->view), *base,
                cache_ ? cache_->Get(base, 0) : nullptr, *node->view);
  }
}

void TricEngine::EnsureEpoch(TrieNode* node, const DeltaScratch& ds) {
  if (node->epoch != ds.epoch) {
    node->epoch = ds.epoch;
    node->delta_begin = node->view->NumRows();
  }
}

void TricEngine::NoteWindowGrowth(TrieNode* node, size_t rows_before,
                                  const DeltaScratch& ds) {
  // Delta windows track per-position boundaries of the grown views so
  // FinalizeWindow can tag rows with the window position that created them.
  // Only terminal views are ever read by the final joins, and only actual
  // growth needs a checkpoint — empty touches stay off the books.
  if (ds.wctx != nullptr && !node->paths.empty())
    ds.wctx->prov.Checkpoint(node->view.get(), ds.wctx->position, rows_before);
}

void TricEngine::MarkAffected(TrieNode* node, DeltaScratch& ds) {
  if (node->paths.empty()) return;
  if (node->affected_epoch == ds.epoch) return;
  node->affected_epoch = ds.epoch;
  ds.affected_terminals.push_back(node);
}

void TricEngine::ProcessMatchingNode(TrieNode* node, const EdgeUpdate& u,
                                     DeltaScratch& ds) {
  EnsureEpoch(node, ds);
  Relation* view = node->view.get();
  const size_t before = view->NumRows();

  if (node->parent == nullptr) {
    const VertexId row[2] = {u.src, u.dst};
    view->Append(row);
  } else {
    Relation* pview = node->parent->view.get();
    // Join the parent's (current) prefix view against the single update
    // tuple — never a full view-by-view join (paper §4.2 Step 2). TRIC scans
    // the parent view; TRIC+ probes a maintained index on its tail column
    // (as does plain TRIC within a batch window, from the second touch on).
    ExtendRightSingle(AllRows(*pview), u.src, u.dst,
                      JoinIndexFor(pview, pview->arity() - 1), *view);
  }

  const size_t after = view->NumRows();
  if (after == before) return;
  NoteWindowGrowth(node, before, ds);
  MarkAffected(node, ds);
  Cascade(node, before, after, ds);
}

void TricEngine::Cascade(TrieNode* node, size_t lo, size_t hi, DeltaScratch& ds) {
  for (const auto& child_ptr : node->children) {
    if (BudgetExceeded()) return;
    TrieNode* child = child_ptr.get();
    Relation* base = FindBaseView(child->pattern);
    GS_DCHECK(base != nullptr);
    if (base->Empty()) continue;  // prune: sub-trie cannot produce results
    EnsureEpoch(child, ds);
    const size_t before = child->view->NumRows();
    ExtendRight(RowRange{node->view.get(), lo, hi}, *base, JoinIndexFor(base, 0),
                *child->view);
    const size_t after = child->view->NumRows();
    if (after == before) continue;  // prune: empty delta stops this branch
    NoteWindowGrowth(child, before, ds);
    MarkAffected(child, ds);
    Cascade(child, before, after, ds);
  }
}

RowRange TricEngine::FullPathRange(PathInfo& info) {
  Relation* view = info.terminal->view.get();
  if (!info.spec.has_repeats()) return AllRows(*view);
  // Cyclic path: maintain the filtered projection incrementally.
  std::vector<VertexId> row(info.spec.schema.size());
  for (size_t i = info.filtered_upto; i < view->NumRows(); ++i) {
    const VertexId* r = view->Row(i);
    bool ok = true;
    for (const auto& [pa, pb] : info.spec.eq_checks) {
      if (r[pa] != r[pb]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (size_t c = 0; c < info.spec.src_pos.size(); ++c) row[c] = r[info.spec.src_pos[c]];
    info.filtered->Append(row.data());
  }
  info.filtered_upto = view->NumRows();
  return AllRows(*info.filtered);
}

const std::vector<uint32_t>& TricEngine::PathSchema(const PathInfo& info) const {
  // Acyclic paths: positions are exactly the distinct vertices, so the view
  // doubles as the binding relation; cyclic paths use the filtered copy.
  return info.spec.has_repeats() ? info.spec.schema : info.pos_to_vertex;
}

UpdateResult TricEngine::ApplyUpdate(const EdgeUpdate& u) {
  UpdateResult result;
  if (u.op == UpdateOp::kDelete) {
    result.changed = RemoveFromBaseViews(u);
    if (result.changed) HandleDelete(u);
    return result;
  }
  if (IsDuplicateUpdate(u)) return result;
  return ProcessInsert(u);
}

bool TricEngine::RouteUpdate(const EdgeUpdate& u, DeltaScratch& ds,
                             UpdateResult& result) {
  // Routing prefilter (DESIGN.md §12): no trie node's pattern carries this
  // label. Base-view patterns are a subset of the node patterns (every
  // signature element becomes a node), so there is nothing to maintain at
  // all — the whole update is an O(words) reject.
  if (route_enabled() && !forest_.MayMatch(u)) {
    NotePrefilterReject();
    return true;
  }

  // Record the update in every shared edge-level view it satisfies, then
  // route it to the matching trie nodes via the node-granular edgeInd.
  AppendToBaseViews(u);

  std::vector<TrieNode*> matching;
  if (route_enabled()) {
    // Class-mask-gated probing: only the endpoint generalizations some
    // registered pattern actually uses are looked up (deduplicated).
    forest_.RouteNodes(u, matching);
  } else {
    for (const auto& g : Generalizations(u)) {
      const std::vector<TrieNode*>* nodes = forest_.NodesFor(g);
      if (nodes != nullptr)
        matching.insert(matching.end(), nodes->begin(), nodes->end());
    }
  }
  std::sort(matching.begin(), matching.end(), [](const TrieNode* a, const TrieNode* b) {
    return a->depth != b->depth ? a->depth < b->depth : a->seq < b->seq;
  });

  for (TrieNode* node : matching) {
    if (BudgetExceeded()) {
      result.timed_out = true;
      return false;
    }
    ProcessMatchingNode(node, u, ds);
  }
  return true;
}

UpdateResult TricEngine::ProcessInsert(const EdgeUpdate& u) {
  UpdateResult result;
  result.changed = true;

  DeltaScratch ds;
  ds.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (!RouteUpdate(u, ds, result)) return result;

  FinalizeQueries(result, ds);
  if (budget_ != nullptr && budget_->ExceededNow()) result.timed_out = true;
  return result;
}

std::unique_ptr<ViewEngineBase::WindowContext> TricEngine::NewWindowContext() {
  auto ctx = std::make_unique<TricWindowContext>();
  // A fresh epoch value window-scopes TrieNode::window_affected_epoch marks
  // (per-update epochs drawn later in the window are strictly larger).
  ctx->window_epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  return ctx;
}

void TricEngine::ProcessInsertDelta(const EdgeUpdate& u, WindowContext& ctx,
                                    UpdateResult& result) {
  TricWindowContext& wctx = static_cast<TricWindowContext&>(ctx);
  result.changed = true;

  DeltaScratch ds;
  ds.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  ds.wctx = &wctx;

  RouteUpdate(u, ds, result);

  // Fold this update's affected terminals into the window's union; the
  // final joins run once per (query, window) in FinalizeWindow.
  for (TrieNode* node : ds.affected_terminals) {
    if (node->window_affected_epoch == wctx.window_epoch) continue;
    node->window_affected_epoch = wctx.window_epoch;
    wctx.affected_terminals.push_back(node);
  }
}

void TricEngine::FinalizeQueries(UpdateResult& result, DeltaScratch& ds) {
  if (ds.affected_terminals.empty()) return;

  // Group the affected covering paths per query, ascending qid.
  std::vector<std::pair<QueryId, uint32_t>> affected_paths;  // (qid, path idx)
  for (TrieNode* node : ds.affected_terminals)
    for (const PathRef& ref : node->paths) affected_paths.emplace_back(ref.qid, ref.path_idx);
  std::sort(affected_paths.begin(), affected_paths.end());
  NoteRoutedCandidates(affected_paths.size());

  size_t i = 0;
  while (i < affected_paths.size()) {
    const QueryId qid = affected_paths[i].first;
    size_t j = i;
    while (j < affected_paths.size() && affected_paths[j].first == qid) ++j;

    if (BudgetExceeded()) {
      result.timed_out = true;
      return;
    }

    QueryEntry& entry = queries_.at(qid);

    // All covering paths must have non-empty views for any embedding to
    // exist (paper Fig. 8 line 12 precondition).
    bool feasible = true;
    for (const PathInfo& info : entry.paths) {
      if (info.terminal->view->Empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      i = j;
      continue;
    }
    NoteFinalJoinPass();

    // Transient per-update assignment set over all query vertices (dedups
    // across multiple affected paths).
    const uint32_t num_vertices = static_cast<uint32_t>(entry.pattern.NumVertices());
    Relation assignments(num_vertices);

    for (size_t k = i; k < j; ++k) {
      const uint32_t path_idx = affected_paths[k].second;
      PathInfo& seed = entry.paths[path_idx];
      TrieNode* node = seed.terminal;
      if (node->epoch != ds.epoch) continue;  // no delta after all

      OwnedBindings acc = PathRowsToBindings(
          RowRange{node->view.get(), node->delta_begin, node->view->NumRows()},
          seed.spec);
      if (acc.Empty()) continue;

      // Join the other covering paths' full views, preferring join partners
      // that share vertices with the accumulated schema.
      std::vector<uint32_t> remaining;
      for (uint32_t p = 0; p < entry.paths.size(); ++p)
        if (p != path_idx) remaining.push_back(p);

      bool dead = false;
      while (!remaining.empty() && !dead) {
        size_t pick = 0;
        for (size_t r = 0; r < remaining.size(); ++r) {
          if (FirstSharedColumn(acc.schema, PathSchema(entry.paths[remaining[r]])) >= 0) {
            pick = r;
            break;
          }
        }
        PathInfo& other = entry.paths[remaining[pick]];
        const std::vector<uint32_t>& sb = PathSchema(other);
        RowRange b = FullPathRange(other);
        const HashIndex* idx = nullptr;
        int col = FirstSharedColumn(acc.schema, sb);
        if (col >= 0) idx = JoinIndexFor(b.rel, static_cast<uint32_t>(col));
        acc = JoinBindingRanges(acc.schema, acc.All(), sb, b, idx);
        dead = acc.Empty();
        remaining.erase(remaining.begin() + pick);
        if (BudgetExceeded()) {
          result.timed_out = true;
          return;
        }
      }
      if (dead) continue;

      // Project onto canonical vertex order and dedup into the per-update
      // assignment set.
      std::vector<uint32_t> perm(num_vertices);
      for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
      std::vector<VertexId> row(num_vertices);
      for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
        const VertexId* src = acc.rows->Row(r);
        for (uint32_t v = 0; v < num_vertices; ++v) row[v] = src[perm[v]];
        // §4.3 extra phase: property constraints on the full assignment.
        if (!SatisfiesConstraints(entry.pattern, row.data())) continue;
        assignments.Append(row.data());
      }
    }

    result.AddQueryCount(qid, assignments.NumRows());
    NotePeakTransient(assignments.MemoryBytes());
    i = j;
  }
}

std::pair<RowRange, RowTags> TricEngine::FullPathRangeTagged(
    PathInfo& info, TricWindowContext& wctx) {
  Relation* view = info.terminal->view.get();
  if (!info.spec.has_repeats())
    return {AllRows(*view), wctx.prov.TagsFor(view)};

  // Cyclic path: catch the filtered projection up, mirroring each view
  // row's window tag onto the filtered relation via checkpoints (view rows
  // arrive in window order, so tags ascend and checkpointing is valid).
  RowTags view_tags = wctx.prov.TagsFor(view);
  std::vector<VertexId> row(info.spec.schema.size());
  for (size_t i = info.filtered_upto; i < view->NumRows(); ++i) {
    const VertexId* r = view->Row(i);
    bool ok = true;
    for (const auto& [pa, pb] : info.spec.eq_checks) {
      if (r[pa] != r[pb]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (size_t c = 0; c < info.spec.src_pos.size(); ++c) row[c] = r[info.spec.src_pos[c]];
    const uint32_t tag = view_tags.TagOf(i);
    if (tag > 0) wctx.prov.Checkpoint(info.filtered.get(), tag);
    info.filtered->Append(row.data());
  }
  info.filtered_upto = view->NumRows();
  return {AllRows(*info.filtered), wctx.prov.TagsFor(info.filtered.get())};
}

bool TricEngine::EncodeFinalizeSignature(QueryId qid, std::vector<uint64_t>& out) {
  const QueryEntry& entry = queries_.at(qid);
  for (const PathInfo& info : entry.paths) {
    out.push_back(~1ull);  // path delimiter: (a)(b,c) and (a,b)(c) differ
    out.push_back(info.terminal->seq);
    for (uint32_t v : info.pos_to_vertex) out.push_back(v);
  }
  AppendFilterSignature(entry.pattern, out);
  return true;
}

void TricEngine::ListQueryIds(std::vector<QueryId>& out) const {
  out.reserve(out.size() + queries_.size());
  for (const auto& [qid, entry] : queries_) out.push_back(qid);
}

bool TricEngine::EvaluateWindowTagged(QueryEntry& entry,
                                      const std::vector<uint32_t>& path_idxs,
                                      TricWindowContext& wctx,
                                      uint32_t probe_weight, bool& pass_ran,
                                      std::vector<uint32_t>& tags) {
  pass_ran = false;
  tags.clear();

  // End-of-window feasibility: views only grow inside an insert window, so
  // a path empty here was empty at every member position.
  for (const PathInfo& info : entry.paths)
    if (info.terminal->view->Empty()) return true;
  NoteFinalJoinPass();
  pass_ran = true;

  // Per-(query, window) assignment set: dedup on the vertex columns, each
  // row tagged with the window position sequential execution would have
  // reported it at (= the max tag over its contributing view rows; every
  // derivation of a row carries the same tag). `probe_weight` > 1 marks a
  // pass standing in for that many per-query chains (window-cache build
  // decisions stay identical to the per-query pipeline's).
  const uint32_t num_vertices = static_cast<uint32_t>(entry.pattern.NumVertices());
  Relation assignments(num_vertices);
  assignments.EnableProvenance();

  for (uint32_t path_idx : path_idxs) {
    PathInfo& seed = entry.paths[path_idx];
    Relation* seed_view = seed.terminal->view.get();
    const size_t delta_begin = wctx.prov.WindowDeltaBegin(seed_view);
    if (delta_begin >= seed_view->NumRows()) continue;  // no delta after all

    OwnedBindings acc = PathRowsToBindingsTagged(
        RowRange{seed_view, delta_begin, seed_view->NumRows()}, seed.spec,
        wctx.prov.TagsFor(seed_view));
    if (acc.Empty()) continue;

    // One tagged join pass against the other covering paths' end-of-window
    // views serves every update in the window; the tags reconstruct the
    // per-update attribution below.
    std::vector<uint32_t> remaining;
    for (uint32_t p = 0; p < entry.paths.size(); ++p)
      if (p != path_idx) remaining.push_back(p);

    bool dead = false;
    while (!remaining.empty() && !dead) {
      size_t pick = 0;
      for (size_t r = 0; r < remaining.size(); ++r) {
        if (FirstSharedColumn(acc.schema, PathSchema(entry.paths[remaining[r]])) >= 0) {
          pick = r;
          break;
        }
      }
      PathInfo& other = entry.paths[remaining[pick]];
      const std::vector<uint32_t>& sb = PathSchema(other);
      auto [b, b_tags] = FullPathRangeTagged(other, wctx);
      const HashIndex* idx = nullptr;
      int col = FirstSharedColumn(acc.schema, sb);
      if (col >= 0)
        idx = JoinIndexFor(b.rel, static_cast<uint32_t>(col), probe_weight);
      acc = JoinBindingRangesTagged(acc.schema, acc.All(), sb, b, b_tags, idx);
      dead = acc.Empty();
      remaining.erase(remaining.begin() + pick);
      if (BudgetExceeded()) return false;
    }
    if (dead) continue;

    std::vector<uint32_t> perm(num_vertices);
    for (uint32_t c = 0; c < acc.schema.size(); ++c) perm[acc.schema[c]] = c;
    std::vector<VertexId> row(num_vertices);
    for (size_t r = 0; r < acc.rows->NumRows(); ++r) {
      const VertexId* src = acc.rows->Row(r);
      for (uint32_t v = 0; v < num_vertices; ++v) row[v] = src[perm[v]];
      // §4.3 extra phase: property constraints on the full assignment.
      if (!SatisfiesConstraints(entry.pattern, row.data())) continue;
      assignments.AppendTagged(row.data(), acc.rows->ProvOf(r));
    }
  }

  // The deduplicated assignments' window positions (ScatterTagCounts input).
  tags.reserve(assignments.NumRows());
  for (size_t r = 0; r < assignments.NumRows(); ++r) {
    const uint32_t tag = assignments.ProvOf(r);
    GS_DCHECK(tag > 0);  // a new match always uses a window row
    tags.push_back(tag);
  }
  NotePeakTransient(assignments.MemoryBytes());
  return true;
}

void TricEngine::FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) {
  TricWindowContext& wctx = static_cast<TricWindowContext&>(ctx);
  if (route_enabled()) {
    FinalizeWindowRouted(wctx, window_results);
    return;
  }
  if (wctx.affected_terminals.empty()) return;

  // Group the window's affected covering paths per query, ascending qid, so
  // AddQueryCount calls keep every per-update result vector sorted.
  std::vector<std::pair<QueryId, uint32_t>> affected_paths;  // (qid, path idx)
  for (TrieNode* node : wctx.affected_terminals)
    for (const PathRef& ref : node->paths) affected_paths.emplace_back(ref.qid, ref.path_idx);
  std::sort(affected_paths.begin(), affected_paths.end());
  NoteRoutedCandidates(affected_paths.size());

  size_t i = 0;
  while (i < affected_paths.size()) {
    const QueryId qid = affected_paths[i].first;
    size_t j = i;
    while (j < affected_paths.size() && affected_paths[j].first == qid) ++j;

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    // Shared finalization (§9): signature-equal queries are affected through
    // the same terminals, so the first member of a group evaluates and every
    // later member replays the memoized tags — the window key (affected path
    // set) double-checks that assumption at runtime.
    SharedFinalizeMemo* memo = SharedMemoFor(qid, wctx);
    std::vector<uint64_t> window_key;
    if (memo != nullptr) {
      window_key.reserve(j - i);
      for (size_t k = i; k < j; ++k) window_key.push_back(affected_paths[k].second);
      if (memo->evaluated && memo->runtime_key == window_key) {
        ReplaySharedTags(*memo, qid, window_results);
        i = j;
        continue;
      }
    }

    std::vector<uint32_t> path_idxs;
    path_idxs.reserve(j - i);
    for (size_t k = i; k < j; ++k) path_idxs.push_back(affected_paths[k].second);
    i = j;

    QueryEntry& entry = queries_.at(qid);
    bool pass_ran = false;
    std::vector<uint32_t> tags;
    if (!EvaluateWindowTagged(entry, path_idxs, wctx, SharedGroupSize(qid),
                              pass_ran, tags))
      return;
    if (memo != nullptr) memo->Store(pass_ran, std::move(window_key), &tags);
    ScatterTagCounts(tags, qid, window_results);
  }
}

void TricEngine::OnRouteGroupsRebuilt() {
  // One bump invalidates every node's annotations at once; the rebuild below
  // re-stamps exactly the terminals the live groups route through.
  ++route_stamp_;
  if (!route_enabled()) return;
  for (const auto& group : finalize_groups()) {
    // Signature-equal members reference identical terminals at identical
    // path indices (the signature pins terminal->seq per path in order), so
    // the representative's annotations route the whole group.
    const QueryEntry& rep = queries_.at(group->members[0]);
    for (uint32_t pi = 0; pi < rep.paths.size(); ++pi) {
      TrieNode* terminal = rep.paths[pi].terminal;
      if (terminal->route_stamp != route_stamp_) {
        terminal->route_groups.clear();
        terminal->route_stamp = route_stamp_;
      }
      terminal->route_groups.emplace_back(group->id, pi);
    }
  }
}

void TricEngine::FinalizeWindowRouted(TricWindowContext& wctx,
                                      UpdateResult* window_results) {
  if (wctx.affected_terminals.empty()) return;
  const auto& groups = finalize_groups();

  // Expand the affected terminals through their group annotations into
  // (group id, representative path idx) pairs — the routed counterpart of
  // the legacy (qid, path idx) expansion, with fan-out per signature group
  // instead of per query. Sorted so each group's paths form one run.
  std::vector<std::pair<uint32_t, uint32_t>> affected;  // (group id, path idx)
  for (TrieNode* node : wctx.affected_terminals) {
    // Every path-holding terminal is some representative's terminal, and the
    // grouping was rebuilt before this window fanned out.
    GS_DCHECK(node->paths.empty() || node->route_stamp == route_stamp_);
    for (const auto& [gid, pi] : node->route_groups)
      affected.emplace_back(gid, pi);
  }
  std::sort(affected.begin(), affected.end());
  NoteRoutedCandidates(affected.size());

  size_t i = 0;
  while (i < affected.size()) {
    const uint32_t gid = affected[i].first;
    size_t j = i;
    while (j < affected.size() && affected[j].first == gid) ++j;

    if (BudgetExceededNow()) return;  // timeout: partial, flagged by the caller

    std::vector<uint32_t> path_idxs;
    path_idxs.reserve(j - i);
    for (size_t k = i; k < j; ++k) path_idxs.push_back(affected[k].second);
    i = j;

    const FinalizeGroup& group = *groups[gid];
    if (GroupSharingApplies(group)) {
      // Evaluate the group's representative once; the tagged assignment set
      // serves every member — the same invariant as the legacy memo path,
      // without materializing per-member work items.
      QueryEntry& rep = queries_.at(group.members[0]);
      bool pass_ran = false;
      std::vector<uint32_t> tags;
      if (!EvaluateWindowTagged(rep, path_idxs, wctx,
                                static_cast<uint32_t>(group.members.size()),
                                pass_ran, tags))
        return;
      if (pass_ran) NoteSharedGroupPass();
      if (tags.empty()) continue;
      for (QueryId qid : group.members) {
        std::vector<uint32_t> member_tags = tags;
        ScatterTagCounts(member_tags, qid, window_results);
      }
    } else {
      // Sharing off (or the signature opted out): per-member evaluations,
      // still routed group-at-a-time. Signature-equal members share the
      // representative's path indices.
      for (QueryId qid : group.members) {
        if (BudgetExceededNow()) return;
        bool pass_ran = false;
        std::vector<uint32_t> tags;
        if (!EvaluateWindowTagged(queries_.at(qid), path_idxs, wctx,
                                  /*probe_weight=*/1, pass_ran, tags))
          return;
        ScatterTagCounts(tags, qid, window_results);
      }
    }
  }
}

void TricEngine::HandleDelete(const EdgeUpdate& u) {
  // Locate the affected tries: every trie containing a node whose pattern
  // matches the deleted edge.
  std::unordered_set<TrieNode*> roots;
  for (const auto& g : Generalizations(u)) {
    const std::vector<TrieNode*>* nodes = forest_.NodesFor(g);
    if (nodes == nullptr) continue;
    for (TrieNode* n : *nodes) {
      while (n->parent != nullptr) n = n->parent;
      roots.insert(n);
    }
  }
  std::vector<uint32_t> depths;
  for (TrieNode* root : roots) {
    depths.clear();
    DeleteCascade(root, u, depths);
  }

  // Cyclic paths keep a filtered projection of their terminal view; those
  // shrank, so rebuild them lazily from scratch.
  for (auto& [qid, entry] : queries_) {
    for (PathInfo& info : entry.paths) {
      if (info.filtered != nullptr && info.filtered_upto > 0) {
        info.filtered->Clear();
        info.filtered_upto = 0;
      }
    }
  }
}

void TricEngine::DeleteCascade(TrieNode* node, const EdgeUpdate& u,
                               std::vector<uint32_t>& depths) {
  const bool mine = node->pattern.Matches(u);
  if (mine) depths.push_back(node->depth);
  if (!depths.empty() && !node->view->Empty()) {
    node->view->RemoveRowsWhere([&](const VertexId* row) {
      for (uint32_t d : depths)
        if (row[d] == u.src && row[d + 1] == u.dst) return true;
      return false;
    });
  }
  for (const auto& child : node->children) DeleteCascade(child.get(), u, depths);
  if (mine) depths.pop_back();
}

void TricEngine::BuildPatternReach() {
  // Pass 1: per-node subtree aggregates. ForEachNode is pre-order (parents
  // before children), so a reverse sweep folds children into parents
  // bottom-up.
  std::unordered_map<const TrieNode*, Footprint> node_reach;
  std::vector<const TrieNode*> order;
  order.reserve(forest_.NumNodes());
  forest_.ForEachNode([&](const TrieNode& n) { order.push_back(&n); });
  node_reach.reserve(order.size());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TrieNode* n = *it;
    Footprint& fp = node_reach[n];
    fp.push_back(NodeElem(n->seq));
    fp.push_back(PatternElem(PatternId(n->pattern)));
    for (const PathRef& ref : n->paths) {
      // Finalizing a query joins the delta against the *other* covering
      // paths' terminal views, so the query's whole terminal closure is in
      // reach (including the shared maintained indexes over those views).
      fp.push_back(QueryElem(ref.qid));
      for (const PathInfo& info : queries_.at(ref.qid).paths)
        fp.push_back(NodeElem(info.terminal->seq));
    }
    for (const auto& child : n->children) {
      const Footprint& cfp = node_reach.at(child.get());
      fp.insert(fp.end(), cfp.begin(), cfp.end());
    }
    std::sort(fp.begin(), fp.end());
    fp.erase(std::unique(fp.begin(), fp.end()), fp.end());
  }

  // Pass 2: fold into per-pattern reaches (one per registered base view) so
  // CollectFootprint is a handful of map lookups per update.
  for (const auto& [pattern, view] : base_views_) {
    Footprint& fp = pattern_reach_[pattern];
    fp.push_back(PatternElem(PatternId(pattern)));  // base-view append
    if (const std::vector<TrieNode*>* nodes = forest_.NodesFor(pattern)) {
      for (const TrieNode* node : *nodes) {
        if (node->parent != nullptr) fp.push_back(NodeElem(node->parent->seq));
        const Footprint& nfp = node_reach.at(node);
        fp.insert(fp.end(), nfp.begin(), nfp.end());
      }
    }
    std::sort(fp.begin(), fp.end());
    fp.erase(std::unique(fp.begin(), fp.end()), fp.end());
  }
}

size_t TricEngine::MemoryBytes() const {
  size_t bytes = SharedMemoryBytes() + forest_.MemoryBytes();
  for (const auto& [qid, entry] : queries_) {
    bytes += sizeof(qid) + entry.pattern.MemoryBytes() + 2 * sizeof(void*);
    for (const auto& info : entry.paths) {
      bytes += sizeof(info) + mem::OfVector(info.pos_to_vertex) +
               mem::OfVector(info.spec.schema) + mem::OfVector(info.spec.src_pos);
      if (info.filtered != nullptr) bytes += info.filtered->MemoryBytes();
    }
  }
  if (cache_ != nullptr) bytes += cache_->MemoryBytes();
  return bytes;
}

}  // namespace tric
}  // namespace gstream
