#ifndef GSTREAM_TRIC_TRIC_ENGINE_H_
#define GSTREAM_TRIC_TRIC_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/view_engine_base.h"
#include "matview/binding.h"
#include "matview/join_cache.h"
#include "query/path_cover.h"
#include "tric/trie.h"

namespace gstream {
namespace tric {

/// TRIC — TRIe-based Clustering (paper §4), the system's primary
/// contribution, plus its caching extension TRIC+ (§4.2 "Caching").
///
/// Indexing phase (§4.1): each query is decomposed into covering paths
/// (Definition 4.2); the genericized paths are inserted into a trie forest so
/// queries with common structural/attribute restrictions share both trie
/// nodes and the per-node materialized prefix views.
///
/// Answering phase (§4.2): an update is routed through the node-granular
/// `edgeInd` to the trie nodes storing a matching pattern. Each matching
/// node joins its parent's prefix view with the single update tuple (never a
/// full view-by-view join) and the resulting delta cascades down the
/// sub-trie, pruning branches whose delta is empty. Matching nodes are
/// processed top-down so repeated patterns along one trie path (BioGRID-style
/// chains) stay exact; set-semantics views absorb re-derivations. Queries
/// whose covering paths received delta rows are then finalized by joining the
/// affected paths' deltas against the other paths' full views on the shared
/// original-query vertices recorded at indexing time (§4.1 "Variable
/// Handling").
///
/// TRIC+ passes a `JoinCache` so every hash table built for a join is kept
/// and maintained incrementally instead of rebuilt per operation.
class TricEngine : public ViewEngineBase {
 public:
  /// Engine variants. Beyond the paper's TRIC/TRIC+ pair, two ablations
  /// isolate the design choices DESIGN.md calls out:
  ///  * `clustering = false` disables trie prefix sharing — every covering
  ///    path gets a private chain of nodes and views (quantifies the gain of
  ///    §4.1 Step 2's clustering);
  ///  * `per_edge_paths = true` replaces the covering-path decomposition
  ///    with one single-edge path per query edge (quantifies the gain of
  ///    §4.1 Step 1's path covering).
  struct Options {
    bool cache = false;
    bool clustering = true;
    bool per_edge_paths = false;
  };

  /// `enable_cache` selects TRIC+ behaviour.
  explicit TricEngine(bool enable_cache)
      : TricEngine(Options{enable_cache, true, false}) {}
  explicit TricEngine(const Options& options);

  std::string name() const override;
  UpdateResult ApplyUpdate(const EdgeUpdate& u) override;
  bool HasQuery(QueryId qid) const override { return queries_.count(qid) > 0; }
  size_t NumQueries() const override { return queries_.size(); }
  size_t MemoryBytes() const override;

  /// Diagnostics for tests and the ablation bench.
  const TrieForest& forest() const { return forest_; }

 protected:
  void AddQueryImpl(QueryId qid, const QueryPattern& q) override;

  /// Query removal (paper §3.2's dynamic QDB): drops the query's path
  /// references from the trie, garbage-collects the unpinned suffix nodes
  /// and their materialized views (shared prefixes survive), evicts the
  /// dead views' cached join indexes, releases the base-view references,
  /// and compacts the routing indexes so `MemoryBytes` reflects the GC.
  void RemoveQueryImpl(QueryId qid) override;

  /// Lifecycle GC hook: a shared base view is going away — drop TRIC+'s
  /// cached indexes over it.
  void OnRelationEvicted(const Relation* rel) override;

  /// Batch sharding (ViewEngineBase): a pattern's reach is its matching trie
  /// nodes, everything below them (cascades write those views and read their
  /// base views), the parents they join against, and the queries they can
  /// finalize (whose *other* covering-path terminals the final join reads).
  void BuildPatternReach() override;
  UpdateResult ProcessInsert(const EdgeUpdate& u) override;

  /// Window-delta pipeline (DESIGN.md §7): maintenance routes + cascades per
  /// update (checkpointing touched node views), FinalizeWindow runs one
  /// tagged final-join pass per (query, window) over the accumulated
  /// terminal deltas — one per (signature group, window) under shared
  /// finalization (§9).
  bool SupportsWindowDelta() const override { return true; }
  std::unique_ptr<WindowContext> NewWindowContext() override;
  void ProcessInsertDelta(const EdgeUpdate& u, WindowContext& ctx,
                          UpdateResult& result) override;
  void FinalizeWindow(WindowContext& ctx, UpdateResult* window_results) override;

  /// Shared-finalize signature (DESIGN.md §9): per covering path the shared
  /// terminal node (clustering maps signature-equal paths to one node, so
  /// the node id names the ordered prefix-view chain) and the path-position
  /// -> query-vertex map (the binding spec), plus the filter spec. Queries
  /// with equal encodings join the same terminal views with the same
  /// schemas and constraints.
  bool EncodeFinalizeSignature(QueryId qid, std::vector<uint64_t>& out) override;
  void ListQueryIds(std::vector<QueryId>& out) const override;

  /// Rebuilds the terminal-node routing annotations (DESIGN.md §12): each
  /// group's representative stamps its terminals with (group id, path index)
  /// pairs, so FinalizeWindow expands affected terminals straight into
  /// affected groups. Stamp-validated — no per-node cleanup on rebuild.
  void OnRouteGroupsRebuilt() override;

 private:
  struct PathInfo {
    TrieNode* terminal = nullptr;
    std::vector<uint32_t> pos_to_vertex;  ///< Path position -> query vertex.
    PathBindingSpec spec;
    /// For cyclic paths (repeated vertices): the incrementally maintained
    /// filtered+projected copy of the terminal view, schema = spec.schema.
    std::unique_ptr<Relation> filtered;
    size_t filtered_upto = 0;
  };

  struct QueryEntry {
    QueryPattern pattern;
    std::vector<PathInfo> paths;
  };

  /// Per-update delta scratch: the epoch stamping node delta windows and the
  /// affected-terminal set. One instance per in-flight update, so
  /// footprint-disjoint batch shards can process updates concurrently.
  struct DeltaScratch {
    uint64_t epoch = 0;
    std::vector<TrieNode*> affected_terminals;
    /// Non-null on the delta path: touched node views are checkpointed at
    /// the context's current window position.
    WindowContext* wctx = nullptr;
  };

  /// Shard-local window context: the affected terminals accumulated across
  /// the window (deduplicated via TrieNode::window_affected_epoch against
  /// `window_epoch`).
  struct TricWindowContext : WindowContext {
    uint64_t window_epoch = 0;
    std::vector<TrieNode*> affected_terminals;
  };

  /// Allocates a freshly created trie node's view and backfills it from its
  /// parent's view (best-effort for queries registered mid-stream).
  void InitNodeView(TrieNode* node);

  /// Joins `node`'s parent view (or the update itself at roots) with `u`,
  /// appends the delta and cascades it down the sub-trie.
  void ProcessMatchingNode(TrieNode* node, const EdgeUpdate& u, DeltaScratch& ds);

  /// Extends rows [lo, hi) of `node`'s view into each child via the child's
  /// base edge view; recurses while deltas are non-empty.
  void Cascade(TrieNode* node, size_t lo, size_t hi, DeltaScratch& ds);

  /// Lazily stamps the node's delta window for the scratch's epoch.
  void EnsureEpoch(TrieNode* node, const DeltaScratch& ds);

  /// Window-delta bookkeeping after a node's view grew from `rows_before`:
  /// checkpoints terminal views at the context's current position.
  void NoteWindowGrowth(TrieNode* node, size_t rows_before, const DeltaScratch& ds);

  /// Registers `node` in the per-update affected set when it terminates
  /// covering paths.
  void MarkAffected(TrieNode* node, DeltaScratch& ds);

  /// Catches `info.filtered` up with its terminal view; returns the full
  /// binding range + schema of the path (view-backed when acyclic).
  RowRange FullPathRange(PathInfo& info);
  const std::vector<uint32_t>& PathSchema(const PathInfo& info) const;

  /// FullPathRange plus the rows' window tags (checkpointing `filtered`
  /// rows as they are caught up, so cyclic paths tag correctly too).
  std::pair<RowRange, RowTags> FullPathRangeTagged(PathInfo& info,
                                                   TricWindowContext& wctx);

  /// Routing (paper Fig. 8 lines 1-7): resolves the matching trie nodes for
  /// `u`, top-down, and processes each. Returns false on a budget trip
  /// (`result.timed_out` is set).
  bool RouteUpdate(const EdgeUpdate& u, DeltaScratch& ds, UpdateResult& result);

  /// Per-query final join (paper Fig. 8 lines 8-13, delta-seeded).
  void FinalizeQueries(UpdateResult& result, DeltaScratch& ds);

  /// One tagged whole-window final join of `entry` seeded from the covering
  /// paths in `path_idxs` (the shared body of the legacy and routed
  /// FinalizeWindow paths). `pass_ran` is false when the feasibility gate
  /// skipped the evaluation. Returns false on a budget abort (the caller
  /// must end the finalize).
  bool EvaluateWindowTagged(QueryEntry& entry,
                            const std::vector<uint32_t>& path_idxs,
                            TricWindowContext& wctx, uint32_t probe_weight,
                            bool& pass_ran, std::vector<uint32_t>& tags);

  /// Routed finalize (DESIGN.md §12): expands the affected terminals into
  /// (signature group, path idx) pairs via the stamped annotations and runs
  /// one evaluation per group, fanning tags out to every member.
  void FinalizeWindowRouted(TricWindowContext& wctx, UpdateResult* window_results);

  /// Edge deletion (paper §4.3): retracts the tuple from the base views,
  /// then walks the affected tries removing every prefix-view row that used
  /// the deleted edge at any matching depth. Exact because a view row's edge
  /// instances are fully determined by its vertex sequence.
  void HandleDelete(const EdgeUpdate& u);
  void DeleteCascade(TrieNode* node, const EdgeUpdate& u,
                     std::vector<uint32_t>& depths);

  bool cache_enabled() const { return cache_ != nullptr; }

  /// Maintained index over `rel` column `col`: TRIC+'s persistent JoinCache,
  /// or — inside a batch window for plain TRIC — the transient window cache
  /// (null on its first touch of a view, so single-touch joins keep the
  /// paper's scan plan). Null otherwise. `touch_weight` > 1 marks a shared
  /// finalize probe standing in for that many per-query probes (§9).
  HashIndex* JoinIndexFor(const Relation* rel, uint32_t col,
                          uint32_t touch_weight = 1) {
    if (cache_ != nullptr) return cache_->Get(rel, col);
    WindowJoinCache* wc = window_cache();
    return wc != nullptr ? wc->Get(rel, col, touch_weight) : nullptr;
  }

  Options options_;
  TrieForest forest_;
  std::unordered_map<QueryId, QueryEntry> queries_;
  std::unique_ptr<JoinCache> cache_;  ///< Non-null for TRIC+.

  /// Epoch allocator; atomic so concurrent batch shards draw unique epochs.
  std::atomic<uint64_t> epoch_{0};

  /// Validity stamp of the TrieNode::route_groups annotations: a node's list
  /// is meaningful only when its route_stamp matches. Bumped on every
  /// grouping rebuild, so stale annotations expire without a trie walk.
  uint64_t route_stamp_ = 0;
};

}  // namespace tric
}  // namespace gstream

#endif  // GSTREAM_TRIC_TRIC_ENGINE_H_
