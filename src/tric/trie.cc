#include "tric/trie.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mem_tracker.h"

namespace gstream {
namespace tric {

size_t TrieNode::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += children.capacity() * sizeof(std::unique_ptr<TrieNode>);
  bytes += paths.capacity() * sizeof(PathRef);
  bytes += route_groups.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
  if (view != nullptr) bytes += view->MemoryBytes();
  return bytes;
}

TrieNode* TrieForest::InsertPath(const std::vector<GenericEdgePattern>& sig,
                                 const std::function<void(TrieNode*)>& on_create,
                                 bool share) {
  GS_CHECK_MSG(!sig.empty(), "empty path signature");

  auto make_node = [&](const GenericEdgePattern& p, TrieNode* parent) {
    auto node = std::make_unique<TrieNode>();
    node->pattern = p;
    node->parent = parent;
    node->depth = parent == nullptr ? 0 : parent->depth + 1;
    node->seq = next_seq_++;
    TrieNode* raw = node.get();
    node_ind_.Add(p, raw);
    ++num_nodes_;
    if (parent == nullptr) {
      roots_.GetOrCreate(p) = std::move(node);
    } else {
      parent->children.push_back(std::move(node));
    }
    on_create(raw);
    return raw;
  };

  // Root lookup / creation (rootInd). The no-sharing ablation keeps private
  // chains in `extra_roots_` so the rootInd invariant (one root per pattern)
  // is preserved for the clustered forest.
  TrieNode* node = nullptr;
  if (share) {
    std::unique_ptr<TrieNode>* rit = roots_.Find(sig[0]);
    if (rit != nullptr) {
      node = rit->get();
    } else {
      node = make_node(sig[0], nullptr);
    }
  } else {
    auto root = std::make_unique<TrieNode>();
    root->pattern = sig[0];
    root->seq = next_seq_++;
    node = root.get();
    node_ind_.Add(sig[0], node);
    ++num_nodes_;
    extra_roots_.push_back(std::move(root));
    on_create(node);
  }

  // Walk/extend the trie along the remaining edges.
  for (size_t i = 1; i < sig.size(); ++i) {
    TrieNode* child = nullptr;
    if (share) {
      for (const auto& c : node->children) {
        if (c->pattern == sig[i]) {
          child = c.get();
          break;
        }
      }
    }
    if (child == nullptr) child = make_node(sig[i], node);
    node = child;
  }
  return node;
}

void TrieForest::RemovePathRef(TrieNode* terminal, QueryId qid, uint32_t path_idx,
                               const std::function<void(TrieNode*)>& on_destroy) {
  // Drop the path reference from the terminal's registry.
  auto& paths = terminal->paths;
  auto ref = std::find_if(paths.begin(), paths.end(), [&](const PathRef& r) {
    return r.qid == qid && r.path_idx == path_idx;
  });
  GS_CHECK_MSG(ref != paths.end(), "RemovePathRef: unknown path reference");
  paths.erase(ref);

  // Suffix GC: free every node the removed path alone was pinning. The
  // walk stops at the first node still holding paths or children — that
  // node (and the whole prefix above it) is shared state.
  TrieNode* node = terminal;
  while (node != nullptr && node->paths.empty() && node->children.empty()) {
    TrieNode* parent = node->parent;
    on_destroy(node);

    // edgeInd: forget the node before its storage goes away.
    GS_CHECK(node_ind_.Remove(node->pattern, node));
    --num_nodes_;

    if (parent != nullptr) {
      auto& kids = parent->children;
      auto it = std::find_if(kids.begin(), kids.end(),
                             [&](const std::unique_ptr<TrieNode>& c) {
                               return c.get() == node;
                             });
      GS_CHECK(it != kids.end());
      kids.erase(it);  // destroys the node and its view
    } else {
      // Root: in rootInd for clustered tries, in extra_roots_ for the
      // no-sharing ablation's private chains (compare pointers — the
      // ablation may hold several roots with the same pattern).
      std::unique_ptr<TrieNode>* rit = roots_.Find(node->pattern);
      if (rit != nullptr && rit->get() == node) {
        roots_.Erase(node->pattern);
      } else {
        auto it = std::find_if(extra_roots_.begin(), extra_roots_.end(),
                               [&](const std::unique_ptr<TrieNode>& r) {
                                 return r.get() == node;
                               });
        GS_CHECK(it != extra_roots_.end());
        extra_roots_.erase(it);
      }
    }
    node = parent;
  }
}

void TrieForest::CompactIndexes() {
  roots_.Compact();
  node_ind_.Compact();
}

const std::vector<TrieNode*>* TrieForest::NodesFor(const GenericEdgePattern& p) const {
  return node_ind_.Find(p);
}

size_t TrieForest::MemoryBytes() const {
  // node_ind_.MemoryBytes() already includes its posting-list capacities.
  size_t bytes = sizeof(*this) + roots_.MemoryBytes() + node_ind_.MemoryBytes();
  ForEachNode([&](const TrieNode& n) { bytes += n.MemoryBytes(); });
  return bytes;
}

void TrieForest::ForEachNode(const std::function<void(const TrieNode&)>& fn) const {
  std::vector<const TrieNode*> stack;
  roots_.ForEach([&](const GenericEdgePattern&, const std::unique_ptr<TrieNode>& root) {
    stack.push_back(root.get());
  });
  for (const auto& root : extra_roots_) stack.push_back(root.get());
  while (!stack.empty()) {
    const TrieNode* n = stack.back();
    stack.pop_back();
    fn(*n);
    for (const auto& c : n->children) stack.push_back(c.get());
  }
}

}  // namespace tric
}  // namespace gstream
