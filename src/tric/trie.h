#ifndef GSTREAM_TRIC_TRIE_H_
#define GSTREAM_TRIC_TRIE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "matview/relation.h"
#include "query/edge_pattern.h"
#include "query/route_index.h"

namespace gstream {
namespace tric {

/// Reference to one covering path of one query (stored at the trie node where
/// the path terminates — paper Fig. 5 line 9: "store the query id at the last
/// node of the trie path").
struct PathRef {
  QueryId qid;
  uint32_t path_idx;
};

/// One node of the trie forest. A root-to-node path spells a sequence of
/// genericized edge patterns; `view` materializes the chain join of those
/// edges' base views (paper §4.2: "a trie path represents a series of joined
/// materialized views"), so its arity is depth + 2 (one column per path
/// vertex).
struct TrieNode {
  GenericEdgePattern pattern;
  TrieNode* parent = nullptr;  ///< Null for roots.
  uint32_t depth = 0;          ///< Root depth is 0.
  uint64_t seq = 0;            ///< Creation sequence (deterministic ordering).
  std::vector<std::unique_ptr<TrieNode>> children;
  std::unique_ptr<Relation> view;
  std::vector<PathRef> paths;  ///< Covering paths terminating here.

  /// Delta bookkeeping for the current update epoch: rows appended during the
  /// epoch are [delta_begin, view->NumRows()).
  uint64_t epoch = 0;
  size_t delta_begin = 0;
  uint64_t affected_epoch = 0;  ///< Last epoch this node entered the affected set.
  /// Last delta-window epoch this node entered the *window* affected set
  /// (window-delta pipeline; written only by the node's owning shard).
  uint64_t window_affected_epoch = 0;

  /// Routed-finalize projection of `paths` (DESIGN.md §12): the signature
  /// groups whose representative member has a covering path terminating here,
  /// as (group id, representative's path index) pairs. Valid only while
  /// `route_stamp` equals the engine's group-rebuild stamp — stale lists are
  /// lazily rebuilt, so query churn never walks the forest.
  uint64_t route_stamp = 0;
  std::vector<std::pair<uint32_t, uint32_t>> route_groups;

  size_t MemoryBytes() const;
};

/// The trie forest with its two access paths (paper Fig. 6):
///  * `rootInd`: first edge pattern -> trie root;
///  * a node-granular `edgeInd`: edge pattern -> every trie node storing it.
///    (The paper stores pattern -> trie roots and locates nodes by DFS; the
///    node-granular index visits exactly the same nodes without re-walking
///    unaffected sub-tries — pruning by empty views still happens because a
///    node under an empty ancestor joins against an empty parent view.)
class TrieForest {
 public:
  /// Inserts a covering-path signature, reusing the longest existing prefix
  /// (paper Fig. 5 lines 3-8). `on_create` runs for each newly created node
  /// (engine hook to allocate and backfill its view). Returns the terminal
  /// node. With `share == false` no prefix reuse happens — every call builds
  /// a private root-to-leaf chain (the no-clustering ablation; answering
  /// still works because the node index tracks every node).
  TrieNode* InsertPath(const std::vector<GenericEdgePattern>& sig,
                       const std::function<void(TrieNode*)>& on_create,
                       bool share = true);

  /// Removes the covering-path reference `(qid, path_idx)` stored at
  /// `terminal` and garbage-collects the now-unpinned suffix: starting at
  /// the terminal, every node left with no stored paths and no children is
  /// destroyed bottom-up, stopping at the first ancestor still pinned — so
  /// shared covering-path prefixes stay alive for surviving queries. A
  /// node's pin count is `paths.size() + children.size()`: the trie's
  /// reference count, maintained implicitly by the child lists and the
  /// per-node path registry. `on_destroy` runs for each node just before
  /// its destruction (engine hook: evict join indexes over the node's view).
  /// Checks that the reference exists.
  void RemovePathRef(TrieNode* terminal, QueryId qid, uint32_t path_idx,
                     const std::function<void(TrieNode*)>& on_destroy);

  /// Releases tombstoned/slack capacity of rootInd and edgeInd after a
  /// removal wave (one rehash each — call once per RemoveQuery, not per
  /// path). Invalidates pointers previously returned by NodesFor.
  void CompactIndexes();

  /// Nodes whose stored pattern equals `p`, in creation order; null when
  /// none. The returned pointer is into flat-map slot storage and is
  /// invalidated by the next InsertPath / RemovePathRef / CompactIndexes
  /// (rehash and erase move slots) — copy the node list out before mutating
  /// the forest.
  const std::vector<TrieNode*>* NodesFor(const GenericEdgePattern& p) const;

  /// O(words) routing prefilter: false when no live trie node's pattern can
  /// match `u` (no node stores `u`'s label at all).
  bool MayMatch(const EdgeUpdate& u) const { return node_ind_.MayMatch(u); }

  /// Appends every node whose stored pattern `u` satisfies (the union of
  /// NodesFor over `u`'s live generalizations, deduplicated) and returns the
  /// count. Probes only the endpoint classes the prefilter records for
  /// `u`'s label — the routed replacement for the 4-way NodesFor fan-out.
  size_t RouteNodes(const EdgeUpdate& u, std::vector<TrieNode*>& out) const {
    return node_ind_.Route(u, out);
  }

  size_t NumTries() const { return roots_.size(); }
  size_t NumNodes() const { return num_nodes_; }

  /// Sum of structural bytes + all node views.
  size_t MemoryBytes() const;

  /// Iterates over every node (tests/diagnostics).
  void ForEachNode(const std::function<void(const TrieNode&)>& fn) const;

 private:
  /// rootInd lives in a flat open-addressing map; edgeInd is the shared
  /// RouteIndex (same SIMD flat-map family plus the label/class prefilter).
  /// Both are probed on every streamed update (root lookup, node routing),
  /// so they share the data plane's container family (see flat_map.h).
  FlatMap<GenericEdgePattern, std::unique_ptr<TrieNode>, GenericEdgePatternHash>
      roots_;
  std::vector<std::unique_ptr<TrieNode>> extra_roots_;  ///< No-sharing chains.
  RouteIndex<TrieNode*> node_ind_;
  size_t num_nodes_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace tric
}  // namespace gstream

#endif  // GSTREAM_TRIC_TRIE_H_
