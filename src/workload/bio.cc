#include "workload/bio.h"

#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace gstream {
namespace workload {

Workload GenerateBio(const BioConfig& config) {
  Workload w;
  w.name = "BioGRID";
  w.interner = std::make_shared<StringInterner>();
  w.stream = UpdateStream(w.interner);
  Rng rng(config.seed);

  const uint32_t protein = w.schema.AddClass("Protein");
  w.entities.resize(1);
  const LabelId interacts = w.interner->Intern("interacts");
  w.schema.AddEdge(interacts, protein, protein);

  // Degree-proportional endpoint sampling: every emitted endpoint is
  // appended to `endpoints`, so a uniform draw from it is a draw weighted by
  // current degree (classic preferential attachment), clipped at the
  // configured hub cap.
  std::vector<VertexId> endpoints;
  std::unordered_map<VertexId, uint32_t> degree;

  auto target_vertices = [&](size_t edges) {
    return static_cast<size_t>(std::ceil(
        config.growth_coefficient *
        std::pow(static_cast<double>(edges + 1) / 100000.0, config.growth_exponent)));
  };

  auto sample_pa = [&]() -> VertexId {
    for (int attempt = 0; attempt < 12; ++attempt) {
      VertexId v = endpoints[rng.Next(endpoints.size())];
      if (degree[v] < config.max_degree) return v;
    }
    // Saturated region: fall back to a uniform protein.
    return w.entities[0][rng.Next(w.entities[0].size())];
  };

  // Seed proteins.
  VertexId a = w.NewEntity(protein, "protein");
  VertexId b = w.NewEntity(protein, "protein");
  w.Emit(a, interacts, b);
  endpoints.push_back(a);
  endpoints.push_back(b);
  std::unordered_set<EdgeUpdate, EdgeKeyHash, EdgeKeyEq> emitted;
  emitted.insert(EdgeUpdate{a, interacts, b, UpdateOp::kAdd});

  while (w.stream.size() < config.num_updates) {
    VertexId s = kNoVertex, t = kNoVertex;
    bool fresh = false;
    if (w.entities[protein].size() < target_vertices(w.stream.size())) {
      // Newly discovered protein interacting with a popular one.
      s = w.NewEntity(protein, "protein");
      t = sample_pa();
      if (rng.Flip(0.5)) std::swap(s, t);
      fresh = true;
    } else {
      // Degree-biased endpoints; retry duplicates/self-loops, and force a
      // fresh protein when the sampled region is saturated.
      for (int attempt = 0; attempt < 16 && !fresh; ++attempt) {
        s = sample_pa();
        t = sample_pa();
        fresh = s != t && emitted.count(EdgeUpdate{s, interacts, t, UpdateOp::kAdd}) == 0;
      }
      if (!fresh) {
        s = w.NewEntity(protein, "protein");
        t = sample_pa();
        fresh = true;
      }
    }
    emitted.insert(EdgeUpdate{s, interacts, t, UpdateOp::kAdd});
    w.Emit(s, interacts, t);
    endpoints.push_back(s);
    endpoints.push_back(t);
    ++degree[s];
    ++degree[t];
  }
  w.stream.Truncate(config.num_updates);
  return w;
}

}  // namespace workload
}  // namespace gstream
