#ifndef GSTREAM_WORKLOAD_BIO_H_
#define GSTREAM_WORKLOAD_BIO_H_

#include <cstdint>

#include "workload/workload.h"

namespace gstream {
namespace workload {

/// Configuration of the BioGRID-like protein-interaction stream (substitute
/// for the BioGRID snapshot the paper used — see DESIGN.md §1.1). The
/// dataset is the paper's stress test precisely because it has ONE vertex
/// class and ONE edge label, so every update affects the entire query
/// database. Vertices follow the paper's growth curve
/// |G_V|(E) ≈ 17.2K · (E / 100K)^0.56 (17.2K @ 100K edges, 63K @ 1M);
/// endpoints follow preferential attachment.
struct BioConfig {
  size_t num_updates = 100'000;
  uint64_t seed = 44;
  double growth_coefficient = 17200.0;  ///< Vertices at the 100K-edge anchor.
  double growth_exponent = 0.56;
  /// Preferential attachment with unbounded hubs makes k-hop path counts
  /// astronomically large; real PPI networks have bounded interaction
  /// partner counts, so we cap the degree (BioGRID's median protein has
  /// <10 partners; hubs a few hundred).
  size_t max_degree = 48;
};

/// Generates the BioGRID-like workload: `interacts` edges between proteins.
Workload GenerateBio(const BioConfig& config);

}  // namespace workload
}  // namespace gstream

#endif  // GSTREAM_WORKLOAD_BIO_H_
