#include "workload/query_gen.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "graphdb/executor.h"
#include "graphdb/store.h"

namespace gstream {
namespace workload {

namespace {

constexpr int kAttempts = 40;       ///< Per-query instance-sampling retries.
constexpr size_t kPoolCap = 512;    ///< Fragment pool size per class.
constexpr size_t kFanoutCap = 12;   ///< DFS branching cap for cycle search.

/// A planted query with >= 3 edges may have at most this many embeddings in
/// the final graph. Rejecting combinatorial outliers keeps every engine's
/// enumeration work proportionate — the paper's measured Neo4j times imply
/// per-query result sets of this order. (<= 2-edge queries are exempt: their
/// totals grow with the graph but their per-update marginals stay tiny.)
constexpr uint64_t kMaxPlantedMatches = 10'000;

/// One concrete edge instance sampled from the final graph.
struct EdgeInstance {
  VertexId src;
  LabelId label;
  VertexId dst;
};

/// A star spoke type: edge label + orientation relative to the center.
struct Spoke {
  LabelId label;
  bool outgoing;
  friend bool operator==(const Spoke& a, const Spoke& b) {
    return a.label == b.label && a.outgoing == b.outgoing;
  }
};

/// Structural fragments reused across queries to realize the overlap knob.
struct FragmentPools {
  std::deque<std::vector<LabelId>> chains;  ///< Label sequences.
  std::deque<std::pair<uint32_t, std::vector<Spoke>>> stars;  ///< (class, spokes).
  std::deque<std::vector<LabelId>> cycles;  ///< Label rings.

  template <typename T>
  static void Push(std::deque<T>& pool, T value) {
    pool.push_back(std::move(value));
    if (pool.size() > kPoolCap) pool.pop_front();
  }
};

/// Generation context shared by the per-class builders.
class Generator {
 public:
  Generator(const Workload& w, const QueryGenConfig& config)
      : w_(w),
        config_(config),
        rng_(config.seed),
        graph_(w.stream.ToGraph()),
        executor_(&store_) {
    for (const auto& u : w.stream.updates()) {
      edges_by_label_[u.label].emplace_back(u.src, u.dst);
      store_.AddEdge(u.src, u.label, u.dst);
    }
    schema_cycles_ = w.schema.FindCycles(6);
  }

  QuerySet Run() {
    QuerySet out;
    const size_t target_planted = static_cast<size_t>(
        config_.selectivity * static_cast<double>(config_.num_queries) + 0.5);
    size_t remaining = config_.num_queries;
    size_t remaining_planted = target_planted;
    std::unordered_set<std::string> seen;

    while (out.queries.size() < config_.num_queries) {
      // Exact-σ scheduling: plant with probability remaining_planted/remaining.
      const bool plant =
          remaining_planted > 0 && rng_.Next(remaining) < remaining_planted;
      QueryPattern q;
      bool accepted = false;
      for (int attempt = 0; attempt < 20 && !accepted; ++attempt) {
        q = GenerateOne(plant);
        if (plant && TooManyMatches(q)) continue;
        std::string key = q.ToString(*w_.interner);
        accepted = seen.insert(std::move(key)).second;
      }
      if (plant && !accepted) q = PlantExactChain();
      out.queries.push_back(std::move(q));
      out.planted.push_back(plant);
      if (plant) {
        ++out.num_planted;
        --remaining_planted;
      }
      --remaining;
    }
    return out;
  }

 private:
  QueryPattern GenerateOne(bool plant) {
    const QueryClass cls = static_cast<QueryClass>(rng_.Next(3));
    const size_t size = SampleSize();
    QueryPattern q;
    switch (cls) {
      case QueryClass::kChain:
        q = plant ? PlantChain(size) : SynthChain(size);
        break;
      case QueryClass::kStar:
        q = plant ? PlantStar(size) : SynthStar(size);
        break;
      case QueryClass::kCycle:
        q = plant ? PlantCycle(size) : SynthCycle(size);
        break;
    }
    GS_CHECK(q.IsValid());
    return q;
  }

  /// l_i ~ uniform{avg-2 .. avg+2}, clamped to >= 1.
  size_t SampleSize() {
    const int64_t lo = std::max<int64_t>(1, static_cast<int64_t>(config_.avg_size) - 2);
    const int64_t hi = std::max<int64_t>(lo, static_cast<int64_t>(config_.avg_size) + 2);
    return static_cast<size_t>(rng_.Range(lo, hi));
  }

  bool UseFragment() { return rng_.NextDouble() < config_.overlap; }

  /// Selectivity guard for planted queries (see kMaxPlantedMatches).
  bool TooManyMatches(const QueryPattern& q) {
    if (q.NumEdges() <= 2) return false;
    uint64_t count = executor_.CountMatches(q, graphdb::PlanQuery(q),
                                            kMaxPlantedMatches + 1);
    return count > kMaxPlantedMatches;
  }

  /// Last-resort planted query: a fully literal 1-2 edge walk — guaranteed
  /// satisfied, trivially selective, always fresh thanks to walk randomness.
  QueryPattern PlantExactChain() {
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const EdgeInstance first = RandomStreamEdge();
      QueryPattern q;
      uint32_t a = q.AddLiteral(first.src);
      uint32_t b = q.AddLiteral(first.dst);
      q.AddEdge(a, first.label, b);
      EdgeInstance next;
      if (RandomOutEdge(first.dst, kNoLabel, next)) {
        uint32_t c = next.dst == first.src ? a
                     : next.dst == first.dst ? b
                                             : q.AddLiteral(next.dst);
        q.AddEdge(b, next.label, c);
      }
      return q;
    }
    GS_CHECK(false);
    return QueryPattern();
  }

  // ----- instance sampling helpers (planted queries) -----

  const EdgeInstance RandomStreamEdge() {
    const auto& u = w_.stream[rng_.Next(w_.stream.size())];
    return {u.src, u.label, u.dst};
  }

  /// A random stream edge with the given label; `found=false` when the label
  /// never occurs.
  EdgeInstance RandomEdgeWithLabel(LabelId label, bool& found) {
    auto it = edges_by_label_.find(label);
    if (it == edges_by_label_.end() || it->second.empty()) {
      found = false;
      return {};
    }
    found = true;
    const auto& [s, t] = it->second[rng_.Next(it->second.size())];
    return {s, label, t};
  }

  /// A random out-edge of `v`, optionally constrained to `label`
  /// (kNoLabel = free).
  bool RandomOutEdge(VertexId v, LabelId label, EdgeInstance& out) {
    const auto& adj = graph_.Out(v);
    if (adj.empty()) return false;
    // Reservoir-of-one over matching edges.
    size_t matches = 0;
    for (const auto& e : adj) {
      if (label != kNoLabel && e.label != label) continue;
      ++matches;
      if (rng_.Next(matches) == 0) out = {v, e.label, e.dst};
    }
    return matches > 0;
  }

  // ----- pattern assembly -----

  /// Maps concrete instance vertices to query vertices; repeated instance
  /// vertices collapse to one query vertex, literals are chosen with
  /// `literal_prob` (value = the concrete entity, guaranteeing matchability).
  /// Every planted query gets at least one literal anchor — unanchored
  /// all-variable patterns have homomorphism counts that grow
  /// combinatorially with the graph, which no engine (and no paper
  /// measurement) sustains. `force_literals` lists instance vertices that
  /// must be literal regardless of the coin flips (star fan-out damping).
  QueryPattern InstanceToPattern(const std::vector<EdgeInstance>& instance,
                                 const std::unordered_set<VertexId>* force_literals =
                                     nullptr) {
    // First pass: distinct vertices in encounter order.
    std::vector<VertexId> distinct;
    std::unordered_map<VertexId, uint32_t> mapping;
    for (const auto& e : instance) {
      for (VertexId v : {e.src, e.dst}) {
        if (mapping.emplace(v, static_cast<uint32_t>(distinct.size())).second)
          distinct.push_back(v);
      }
    }
    // Decide literal flags; guarantee one anchor.
    std::vector<bool> literal(distinct.size(), false);
    for (size_t i = 0; i < distinct.size(); ++i) {
      literal[i] = rng_.NextDouble() < config_.literal_prob ||
                   (force_literals != nullptr && force_literals->count(distinct[i]));
    }
    bool anchored = false;
    for (bool b : literal) anchored |= b;
    if (!anchored) {
      size_t pick = 0;
      if (w_.schema.edges().size() > 1) {
        // Anchor on the most popular (earliest-interned) vertex: popular
        // entities recur across planted queries, so anchors coincide and
        // the genericized patterns still cluster in the trie.
        for (size_t i = 1; i < distinct.size(); ++i)
          if (distinct[i] < distinct[pick]) pick = i;
      }
      // Single-label datasets (BioGRID) anchor the *first* instance vertex —
      // the walk start — like real PPI subscriptions ("protein P interacts
      // with ..."); with one edge label, labels cannot segment the views, so
      // a root anchor is what keeps shared prefix views bounded.
      literal[pick] = true;
    }

    QueryPattern q;
    std::vector<uint32_t> idx(distinct.size());
    for (size_t i = 0; i < distinct.size(); ++i)
      idx[i] = literal[i] ? q.AddLiteral(distinct[i]) : q.AddVariable();
    for (const auto& e : instance)
      q.AddEdge(idx[mapping[e.src]], e.label, idx[mapping[e.dst]]);
    return q;
  }

  VertexId PhantomLiteral() {
    return w_.interner->Intern("phantom_" + std::to_string(phantom_counter_++));
  }

  /// Literal-or-variable choice for synthetic (schema-walk) vertices.
  uint32_t SynthVertex(QueryPattern& q, uint32_t cls) {
    if (rng_.NextDouble() < config_.literal_prob && !w_.entities[cls].empty()) {
      const auto& pool = w_.entities[cls];
      return q.AddLiteral(pool[rng_.Next(pool.size())]);
    }
    return q.AddVariable();
  }

  // ----- chains -----

  QueryPattern PlantChain(size_t size) {
    std::vector<LabelId> constraint;
    if (UseFragment() && !pools_.chains.empty())
      constraint = pools_.chains[rng_.Next(pools_.chains.size())];

    std::vector<EdgeInstance> best;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      std::vector<EdgeInstance> walk;
      EdgeInstance first;
      if (!constraint.empty()) {
        bool found = false;
        first = RandomEdgeWithLabel(constraint[0], found);
        if (!found) {
          constraint.clear();
          first = RandomStreamEdge();
        }
      } else {
        first = RandomStreamEdge();
      }
      walk.push_back(first);
      VertexId cur = first.dst;
      for (size_t k = 1; k < size; ++k) {
        LabelId want = k < constraint.size() ? constraint[k] : kNoLabel;
        EdgeInstance next;
        if (!RandomOutEdge(cur, want, next) &&
            (want == kNoLabel || !RandomOutEdge(cur, kNoLabel, next)))
          break;
        walk.push_back(next);
        cur = next.dst;
      }
      if (walk.size() > best.size()) best = std::move(walk);
      if (best.size() == size) break;
    }
    GS_CHECK(!best.empty());
    RecordChainFragment(best);
    return InstanceToPattern(best);
  }

  QueryPattern SynthChain(size_t size) {
    std::vector<LabelId> labels = SynthChainLabels(size);
    // Poison early (at the third vertex at the latest): the prefix before
    // the phantom still exercises the engines' materialization, while the
    // phantom guarantees unsatisfiability AND keeps the unanchored prefix —
    // and hence every shared prefix view — short. End-poisoned chains would
    // leave l-1 unselective variable edges whose path views explode.
    const size_t poison_vertex = std::min<size_t>(2, labels.size());
    QueryPattern q;
    uint32_t prev = kNoVertex;
    uint32_t prev_idx = 0;
    for (size_t k = 0; k < labels.size(); ++k) {
      const SchemaEdge* se = SchemaEdgeByLabelFrom(labels[k], prev);
      GS_CHECK(se != nullptr);
      uint32_t s_idx = k == 0 ? SynthVertex(q, se->src_class) : prev_idx;
      uint32_t t_idx = (k + 1 == poison_vertex) ? q.AddLiteral(PhantomLiteral())
                                                : SynthVertex(q, se->dst_class);
      q.AddEdge(s_idx, labels[k], t_idx);
      prev = se->dst_class;
      prev_idx = t_idx;
    }
    FragmentPools::Push(pools_.chains, std::move(labels));
    return q;
  }

  /// A schema-conformant label walk; reuses a pooled fragment as prefix with
  /// probability `overlap`.
  std::vector<LabelId> SynthChainLabels(size_t size) {
    std::vector<LabelId> labels;
    uint32_t cur_class = 0;
    if (UseFragment() && !pools_.chains.empty()) {
      const auto& frag = pools_.chains[rng_.Next(pools_.chains.size())];
      for (size_t k = 0; k < frag.size() && k < size; ++k) labels.push_back(frag[k]);
      const SchemaEdge* last = nullptr;
      uint32_t cls = kNoVertex;
      for (LabelId l : labels) {
        last = SchemaEdgeByLabelFrom(l, cls);
        if (last == nullptr) break;
        cls = last->dst_class;
      }
      if (last == nullptr) {
        labels.clear();  // stale fragment (shouldn't happen); fall through
      } else {
        cur_class = last->dst_class;
      }
    }
    if (labels.empty()) {
      const auto& all = w_.schema.edges();
      const SchemaEdge& e = all[rng_.Next(all.size())];
      labels.push_back(e.label);
      cur_class = e.dst_class;
    }
    while (labels.size() < size) {
      const auto& from = w_.schema.EdgesFrom(cur_class);
      if (from.empty()) break;  // dead-end class; accept shorter chain
      const SchemaEdge& e = from[rng_.Next(from.size())];
      labels.push_back(e.label);
      cur_class = e.dst_class;
    }
    return labels;
  }

  /// Schema edge with `label` whose source class is `from_class`
  /// (kNoVertex = any).
  const SchemaEdge* SchemaEdgeByLabelFrom(LabelId label, uint32_t from_class) const {
    for (const auto& e : w_.schema.edges())
      if (e.label == label && (from_class == kNoVertex || e.src_class == from_class))
        return &e;
    return nullptr;
  }

  void RecordChainFragment(const std::vector<EdgeInstance>& walk) {
    std::vector<LabelId> labels;
    labels.reserve(walk.size());
    for (const auto& e : walk) labels.push_back(e.label);
    FragmentPools::Push(pools_.chains, std::move(labels));
  }

  // ----- stars -----

  QueryPattern PlantStar(size_t size) {
    std::vector<Spoke> constraint;
    if (UseFragment() && !pools_.stars.empty())
      constraint = pools_.stars[rng_.Next(pools_.stars.size())].second;

    std::vector<EdgeInstance> best;
    VertexId best_center = kNoVertex;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const EdgeInstance seed = RandomStreamEdge();
      const VertexId center = rng_.Flip(0.5) ? seed.src : seed.dst;
      std::vector<EdgeInstance> incident;
      for (const auto& e : graph_.Out(center))
        incident.push_back({center, e.label, e.dst});
      for (const auto& e : graph_.In(center))
        incident.push_back({e.src, e.label, center});
      if (incident.empty()) continue;

      // Honour the fragment's spoke types first, then fill freely.
      std::vector<EdgeInstance> chosen;
      std::vector<bool> used(incident.size(), false);
      for (const Spoke& spoke : constraint) {
        if (chosen.size() >= size) break;
        for (size_t i = 0; i < incident.size(); ++i) {
          if (used[i] || incident[i].label != spoke.label) continue;
          const bool out = incident[i].src == center;
          if (out != spoke.outgoing) continue;
          used[i] = true;
          chosen.push_back(incident[i]);
          break;
        }
      }
      // Free fill with reservoir-free random picks.
      std::vector<size_t> free_idx;
      for (size_t i = 0; i < incident.size(); ++i)
        if (!used[i]) free_idx.push_back(i);
      std::shuffle(free_idx.begin(), free_idx.end(), rng_.engine());
      for (size_t i : free_idx) {
        if (chosen.size() >= size) break;
        chosen.push_back(incident[i]);
      }
      if (chosen.size() > best.size()) {
        best = std::move(chosen);
        best_center = center;
      }
      if (best.size() >= size) break;
    }
    GS_CHECK(!best.empty());
    RecordStarFragment(best_center, best);
    // Fan-out damping: at most two spokes of the same (label, direction) may
    // keep variable tips; extra repeats are anchored, otherwise the star's
    // embedding count is Π degree^k.
    std::unordered_map<uint64_t, int> type_count;
    std::unordered_set<VertexId> force;
    for (const auto& e : best) {
      const bool out = e.src == best_center;
      const uint64_t key = (static_cast<uint64_t>(e.label) << 1) | (out ? 1 : 0);
      if (++type_count[key] > 2) force.insert(out ? e.dst : e.src);
    }
    return InstanceToPattern(best, &force);
  }

  QueryPattern SynthStar(size_t size) {
    uint32_t center_class;
    std::vector<Spoke> spokes;
    if (UseFragment() && !pools_.stars.empty()) {
      const auto& frag = pools_.stars[rng_.Next(pools_.stars.size())];
      center_class = frag.first;
      spokes = frag.second;
    } else {
      center_class = static_cast<uint32_t>(rng_.Next(w_.schema.NumClasses()));
    }
    auto touching = w_.schema.EdgesTouching(center_class);
    if (touching.empty()) {
      // Class with no edges (cannot happen with our schemas); pick any edge.
      const auto& all = w_.schema.edges();
      const SchemaEdge& e = all[rng_.Next(all.size())];
      center_class = e.src_class;
      touching = w_.schema.EdgesTouching(center_class);
    }
    while (spokes.size() < size) {
      const SchemaEdge& e = touching[rng_.Next(touching.size())];
      spokes.push_back(Spoke{e.label, e.src_class == center_class});
    }
    if (spokes.size() > size) spokes.resize(size);

    QueryPattern q;
    const uint32_t center = SynthVertex(q, center_class);
    // Poison one spoke tip; the other spokes stay satisfiable so the engines
    // still do real join work on the poisoned queries. Same fan-out damping
    // as planted stars: the 3rd+ spoke of one type gets a literal tip.
    const size_t poison = rng_.Next(spokes.size());
    std::unordered_map<uint64_t, int> type_count;
    for (size_t i = 0; i < spokes.size(); ++i) {
      const Spoke& spoke = spokes[i];
      const SchemaEdge* se = SchemaEdgeTouching(spoke, center_class);
      GS_CHECK(se != nullptr);
      const uint32_t other_class = spoke.outgoing ? se->dst_class : se->src_class;
      const uint64_t key =
          (static_cast<uint64_t>(spoke.label) << 1) | (spoke.outgoing ? 1 : 0);
      const bool damp =
          ++type_count[key] > 2 && !w_.entities[other_class].empty();
      uint32_t tip;
      if (i == poison) {
        tip = q.AddLiteral(PhantomLiteral());
      } else if (damp) {
        const auto& pool = w_.entities[other_class];
        tip = q.AddLiteral(pool[rng_.Next(pool.size())]);
      } else {
        tip = SynthVertex(q, other_class);
      }
      if (spoke.outgoing)
        q.AddEdge(center, spoke.label, tip);
      else
        q.AddEdge(tip, spoke.label, center);
    }
    FragmentPools::Push(pools_.stars, {center_class, std::move(spokes)});
    return q;
  }

  const SchemaEdge* SchemaEdgeTouching(const Spoke& spoke, uint32_t center_class) const {
    for (const auto& e : w_.schema.edges()) {
      if (e.label != spoke.label) continue;
      if (spoke.outgoing && e.src_class == center_class) return &e;
      if (!spoke.outgoing && e.dst_class == center_class) return &e;
    }
    return nullptr;
  }

  void RecordStarFragment(VertexId center, const std::vector<EdgeInstance>& spokes) {
    auto cit = w_.vertex_class.find(center);
    if (cit == w_.vertex_class.end()) return;
    std::vector<Spoke> frag;
    frag.reserve(spokes.size());
    for (const auto& e : spokes) frag.push_back(Spoke{e.label, e.src == center});
    FragmentPools::Push(pools_.stars, {cit->second, std::move(frag)});
  }

  // ----- cycles -----

  QueryPattern PlantCycle(size_t size) {
    const size_t len = std::max<size_t>(2, size);
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const EdgeInstance seed = RandomStreamEdge();
      std::vector<EdgeInstance> path{seed};
      std::unordered_set<VertexId> on_path{seed.src, seed.dst};
      if (FindCycleDfs(seed.src, seed.dst, len - 1, path, on_path)) {
        RecordCycleFragment(path);
        return InstanceToPattern(path);
      }
    }
    // The graph may simply lack directed cycles (e.g. TAXI): fall back to a
    // chain instance, as documented in DESIGN.md.
    return PlantChain(size);
  }

  /// DFS from `at` back to `target` using at most `budget` more edges,
  /// visiting only fresh vertices; fanout is capped for bounded cost.
  bool FindCycleDfs(VertexId target, VertexId at, size_t budget,
                    std::vector<EdgeInstance>& path,
                    std::unordered_set<VertexId>& on_path) {
    if (budget == 0) return false;
    const auto& adj = graph_.Out(at);
    if (adj.empty()) return false;
    const size_t fanout = std::min(adj.size(), kFanoutCap);
    const size_t offset = rng_.Next(adj.size());
    for (size_t k = 0; k < fanout; ++k) {
      const auto& e = adj[(offset + k) % adj.size()];
      if (e.dst == target) {
        path.push_back({at, e.label, e.dst});
        return true;
      }
      if (budget == 1 || on_path.count(e.dst)) continue;
      path.push_back({at, e.label, e.dst});
      on_path.insert(e.dst);
      if (FindCycleDfs(target, e.dst, budget - 1, path, on_path)) return true;
      on_path.erase(e.dst);
      path.pop_back();
    }
    return false;
  }

  QueryPattern SynthCycle(size_t size) {
    std::vector<LabelId> ring;
    if (UseFragment() && !pools_.cycles.empty()) {
      ring = pools_.cycles[rng_.Next(pools_.cycles.size())];
    } else if (!schema_cycles_.empty()) {
      const auto& cyc = schema_cycles_[rng_.Next(schema_cycles_.size())];
      for (const auto& e : cyc) ring.push_back(e.label);
      // Self-class rings stretch to the requested size.
      if (cyc.size() == 2 && cyc[0].src_class == cyc[0].dst_class &&
          cyc[0].label == cyc[1].label) {
        ring.assign(std::max<size_t>(2, size), cyc[0].label);
      }
    }
    if (ring.empty()) return SynthChain(size);  // schema has no cycles (TAXI)

    // Class sequence around the ring.
    std::vector<uint32_t> classes(ring.size());
    const SchemaEdge* first = SchemaEdgeByLabelFrom(ring[0], kNoVertex);
    GS_CHECK(first != nullptr);
    classes[0] = first->src_class;
    for (size_t k = 0; k < ring.size(); ++k) {
      const SchemaEdge* se = SchemaEdgeByLabelFrom(ring[k], classes[k]);
      if (se == nullptr) return SynthChain(size);  // stale fragment
      if (k + 1 < ring.size()) classes[k + 1] = se->dst_class;
    }

    QueryPattern q;
    std::vector<uint32_t> vertices(ring.size());
    // Same early-poison rule as chains (see SynthChain).
    const size_t poison = std::min<size_t>(2, ring.size() - 1);
    for (size_t k = 0; k < ring.size(); ++k)
      vertices[k] = k == poison ? q.AddLiteral(PhantomLiteral())
                                : SynthVertex(q, classes[k]);
    for (size_t k = 0; k < ring.size(); ++k)
      q.AddEdge(vertices[k], ring[k], vertices[(k + 1) % ring.size()]);
    FragmentPools::Push(pools_.cycles, std::move(ring));
    return q;
  }

  void RecordCycleFragment(const std::vector<EdgeInstance>& path) {
    std::vector<LabelId> ring;
    ring.reserve(path.size());
    for (const auto& e : path) ring.push_back(e.label);
    FragmentPools::Push(pools_.cycles, std::move(ring));
  }

  const Workload& w_;
  const QueryGenConfig& config_;
  Rng rng_;
  Graph graph_;
  graphdb::GraphStore store_;
  graphdb::MatchExecutor executor_;
  std::unordered_map<LabelId, std::vector<std::pair<VertexId, VertexId>>>
      edges_by_label_;
  std::vector<std::vector<SchemaEdge>> schema_cycles_;
  FragmentPools pools_;
  uint64_t phantom_counter_ = 0;
};

}  // namespace

QuerySet GenerateQueries(const Workload& w, const QueryGenConfig& config) {
  GS_CHECK_MSG(w.stream.size() > 0, "workload stream is empty");
  GS_CHECK_MSG(config.tenants >= 1, "tenants must be >= 1");
  Generator generator(w, config);
  QuerySet out = generator.Run();

  // Tenant duplication: replicate the distinct per-tenant set verbatim.
  // Tenants' copies are intentionally byte-identical (no dedup across
  // tenants) — signature grouping and routing must collapse them, not the
  // generator.
  if (config.tenants > 1) {
    const size_t base = out.queries.size();
    out.queries.reserve(base * config.tenants);
    out.planted.reserve(base * config.tenants);
    for (size_t t = 1; t < config.tenants; ++t) {
      for (size_t i = 0; i < base; ++i) {
        out.queries.push_back(out.queries[i]);
        out.planted.push_back(out.planted[i]);
      }
    }
    out.num_planted *= config.tenants;
  }
  return out;
}

}  // namespace workload
}  // namespace gstream
