#ifndef GSTREAM_WORKLOAD_QUERY_GEN_H_
#define GSTREAM_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "query/pattern.h"
#include "workload/workload.h"

namespace gstream {
namespace workload {

/// The paper's three query classes (§6.1: "chains, stars, and cycles ...
/// chosen equiprobably").
enum class QueryClass : uint8_t { kChain = 0, kStar = 1, kCycle = 2 };

/// Query-set knobs, mirroring §6.1's baseline values:
///  * `avg_size` (l):     average edges per query graph pattern;
///  * `num_queries`:      |QDB|;
///  * `selectivity` (σ):  exact fraction of queries that will ultimately be
///                        satisfied by the stream — enforced by *planting*
///                        satisfied queries from real subgraph instances and
///                        *poisoning* the rest with a phantom literal that
///                        never appears in the stream (placed at a path end,
///                        so the poisoned queries still exercise the
///                        engines' materialization);
///  * `overlap` (o):      probability that a query reuses a structural
///                        fragment (label sequence / spoke set / cycle ring)
///                        from previously generated queries, creating the
///                        shared sub-patterns TRIC clusters.
struct QueryGenConfig {
  size_t num_queries = 5000;
  double avg_size = 5.0;
  double selectivity = 0.25;
  double overlap = 0.35;
  /// Fraction of query vertices bound to literals. The paper's example
  /// queries (Fig. 4) bind ~40% of their vertices (pst1, pst2, com1, ...);
  /// literal anchors are also what keeps materialized path views — and
  /// homomorphism counts — proportionate.
  double literal_prob = 0.4;
  uint64_t seed = 7;
  /// Tenant duplication (query-DB scaling, DESIGN.md §12): the generated set
  /// is replicated this many times verbatim, bypassing the uniqueness filter
  /// that applies within one tenant — each "tenant" registers the same
  /// subscriptions under fresh query ids, the realistic shape of a
  /// million-query DB. Total queries = num_queries * tenants. Must be >= 1.
  size_t tenants = 1;
};

/// A generated query set with its ground truth.
struct QuerySet {
  std::vector<QueryPattern> queries;
  /// Whether queries[i] was planted (guaranteed ultimately satisfied).
  std::vector<bool> planted;
  size_t num_planted = 0;
};

/// Generates `config.num_queries` schema-conformant patterns against `w`.
/// Deterministic for a given (workload, config) pair.
QuerySet GenerateQueries(const Workload& w, const QueryGenConfig& config);

}  // namespace workload
}  // namespace gstream

#endif  // GSTREAM_WORKLOAD_QUERY_GEN_H_
