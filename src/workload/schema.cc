#include "workload/schema.h"

#include <functional>

#include "common/logging.h"

namespace gstream {
namespace workload {

uint32_t Schema::AddClass(std::string name) {
  uint32_t id = static_cast<uint32_t>(class_names_.size());
  class_names_.push_back(std::move(name));
  from_.emplace_back();
  into_.emplace_back();
  return id;
}

void Schema::AddEdge(LabelId label, uint32_t src_class, uint32_t dst_class) {
  GS_CHECK(src_class < NumClasses() && dst_class < NumClasses());
  SchemaEdge e{label, src_class, dst_class};
  edges_.push_back(e);
  from_[src_class].push_back(e);
  into_[dst_class].push_back(e);
}

std::vector<SchemaEdge> Schema::EdgesTouching(uint32_t cls) const {
  std::vector<SchemaEdge> result = from_[cls];
  for (const auto& e : into_[cls]) {
    if (e.src_class == cls) continue;  // self-loop already included
    result.push_back(e);
  }
  return result;
}

std::vector<std::vector<SchemaEdge>> Schema::FindCycles(size_t max_len) const {
  std::vector<std::vector<SchemaEdge>> cycles;

  // Self-class loops become 2-rings (a -knows-> b -knows-> a).
  for (const auto& e : edges_)
    if (e.src_class == e.dst_class) cycles.push_back({e, e});

  // Bounded DFS for proper class cycles.
  std::vector<SchemaEdge> path;
  std::vector<bool> on_path(NumClasses(), false);

  std::function<void(uint32_t, uint32_t)> dfs = [&](uint32_t start, uint32_t at) {
    if (path.size() >= max_len) return;
    for (const auto& e : from_[at]) {
      if (e.dst_class == start && path.size() >= 1 && e.src_class != e.dst_class) {
        auto cycle = path;
        cycle.push_back(e);
        if (cycle.size() >= 2) cycles.push_back(cycle);
        continue;
      }
      if (e.dst_class == e.src_class || on_path[e.dst_class]) continue;
      on_path[e.dst_class] = true;
      path.push_back(e);
      dfs(start, e.dst_class);
      path.pop_back();
      on_path[e.dst_class] = false;
    }
  };

  for (uint32_t cls = 0; cls < NumClasses(); ++cls) {
    on_path.assign(NumClasses(), false);
    on_path[cls] = true;
    path.clear();
    dfs(cls, cls);
  }
  return cycles;
}

}  // namespace workload
}  // namespace gstream
