#ifndef GSTREAM_WORKLOAD_SCHEMA_H_
#define GSTREAM_WORKLOAD_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace gstream {
namespace workload {

/// One allowed edge type: `label` connects an entity of `src_class` to one of
/// `dst_class` (e.g. posted: Person -> Post).
struct SchemaEdge {
  LabelId label = kNoLabel;
  uint32_t src_class = 0;
  uint32_t dst_class = 0;

  friend bool operator==(const SchemaEdge& a, const SchemaEdge& b) {
    return a.label == b.label && a.src_class == b.src_class && a.dst_class == b.dst_class;
  }
};

/// The label schema of a dataset: entity classes and the edge types between
/// them. The query generator walks this graph to produce structurally valid
/// (schema-conformant) chain/star/cycle patterns (paper §6.1 "Query Set
/// Configuration").
class Schema {
 public:
  /// Registers an entity class; returns its id.
  uint32_t AddClass(std::string name);

  /// Registers an edge type.
  void AddEdge(LabelId label, uint32_t src_class, uint32_t dst_class);

  size_t NumClasses() const { return class_names_.size(); }
  const std::string& ClassName(uint32_t cls) const { return class_names_[cls]; }

  const std::vector<SchemaEdge>& edges() const { return edges_; }
  const std::vector<SchemaEdge>& EdgesFrom(uint32_t cls) const { return from_[cls]; }
  const std::vector<SchemaEdge>& EdgesInto(uint32_t cls) const { return into_[cls]; }
  /// Edge types touching `cls` on either side.
  std::vector<SchemaEdge> EdgesTouching(uint32_t cls) const;

  /// Directed label cycles of length in [2, max_len] (each returned as the
  /// edge sequence around the cycle), found by bounded DFS over classes.
  /// Length-1 cycles (self-class loops like knows: Person->Person) are
  /// returned as length-2 rings of the same label.
  std::vector<std::vector<SchemaEdge>> FindCycles(size_t max_len) const;

 private:
  std::vector<std::string> class_names_;
  std::vector<SchemaEdge> edges_;
  std::vector<std::vector<SchemaEdge>> from_;
  std::vector<std::vector<SchemaEdge>> into_;
};

}  // namespace workload
}  // namespace gstream

#endif  // GSTREAM_WORKLOAD_SCHEMA_H_
