#include "workload/snb.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace gstream {
namespace workload {

namespace {

/// Entity class ids, fixed by construction order.
struct SnbClasses {
  uint32_t person, forum, post, comment, place, tag;
};

/// Degree-skewed sampling from an entity pool: Zipf over creation rank, so
/// early entities are the popular ones (stable across the stream).
VertexId SampleZipf(const std::vector<VertexId>& pool, const ZipfSampler& zipf,
                    Rng& rng) {
  size_t idx = zipf.Sample(rng);
  if (idx >= pool.size()) idx = rng.Next(pool.size());
  return pool[idx];
}

}  // namespace

Workload GenerateSnb(const SnbConfig& config) {
  Workload w;
  w.name = "SNB";
  w.interner = std::make_shared<StringInterner>();
  w.stream = UpdateStream(w.interner);
  Rng rng(config.seed);

  SnbClasses cls;
  cls.person = w.schema.AddClass("Person");
  cls.forum = w.schema.AddClass("Forum");
  cls.post = w.schema.AddClass("Post");
  cls.comment = w.schema.AddClass("Comment");
  cls.place = w.schema.AddClass("Place");
  cls.tag = w.schema.AddClass("Tag");
  w.entities.resize(w.schema.NumClasses());

  const LabelId knows = w.interner->Intern("knows");
  const LabelId has_mod = w.interner->Intern("hasMod");
  const LabelId posted = w.interner->Intern("posted");
  const LabelId contained_in = w.interner->Intern("containedIn");
  const LabelId has_creator = w.interner->Intern("hasCreator");
  const LabelId reply = w.interner->Intern("reply");
  const LabelId likes = w.interner->Intern("likes");
  const LabelId checks_in = w.interner->Intern("checksIn");
  const LabelId has_tag = w.interner->Intern("hasTag");
  const LabelId part_of = w.interner->Intern("partOf");

  w.schema.AddEdge(knows, cls.person, cls.person);
  w.schema.AddEdge(has_mod, cls.forum, cls.person);
  w.schema.AddEdge(posted, cls.person, cls.post);
  w.schema.AddEdge(contained_in, cls.post, cls.forum);
  w.schema.AddEdge(has_creator, cls.comment, cls.person);
  w.schema.AddEdge(reply, cls.comment, cls.post);
  w.schema.AddEdge(likes, cls.person, cls.post);
  w.schema.AddEdge(checks_in, cls.person, cls.place);
  w.schema.AddEdge(has_tag, cls.post, cls.tag);
  w.schema.AddEdge(part_of, cls.place, cls.place);

  // Static pools: places form a two-level partOf hierarchy, tags are flat.
  // These setup edges are part of the stream (the graph starts empty).
  const size_t num_regions = std::max<size_t>(1, config.num_places / 20);
  std::vector<VertexId> regions;
  for (size_t i = 0; i < num_regions; ++i)
    regions.push_back(w.NewEntity(cls.place, "region"));
  for (size_t i = 0; i < config.num_places && w.stream.size() < config.num_updates; ++i) {
    VertexId place = w.NewEntity(cls.place, "place");
    w.Emit(place, part_of, regions[rng.Next(regions.size())]);
  }
  for (size_t i = 0; i < config.num_tags; ++i) w.NewEntity(cls.tag, "tag");

  // Popularity samplers (rank-skewed; pool sizes grow, sampler caps at the
  // configured horizon and falls back to uniform beyond it).
  const size_t horizon = std::max<size_t>(1024, config.num_updates / 8);
  ZipfSampler zipf(horizon, config.zipf_exponent);

  auto sample_person = [&] { return SampleZipf(w.entities[cls.person], zipf, rng); };
  auto sample_post = [&] { return SampleZipf(w.entities[cls.post], zipf, rng); };
  auto sample_forum = [&] { return SampleZipf(w.entities[cls.forum], zipf, rng); };
  auto sample_place = [&] {
    return w.entities[cls.place][rng.Next(w.entities[cls.place].size())];
  };
  auto sample_tag = [&] {
    return w.entities[cls.tag][rng.Next(w.entities[cls.tag].size())];
  };

  // Per-relation degree bookkeeping for the fan-out caps.
  using DegreeMap = std::unordered_map<VertexId, uint32_t>;
  DegreeMap knows_deg, posts_by_person, posts_in_forum, replies_on_post,
      likes_on_post, checkins_by_person;
  /// Resamples until the relation's degree cap admits the vertex.
  auto capped = [&](auto sampler, DegreeMap& deg, size_t cap) -> VertexId {
    for (int attempt = 0; attempt < 12; ++attempt) {
      VertexId v = sampler();
      auto it = deg.find(v);
      if (it == deg.end() || it->second < cap) return v;
    }
    return kNoVertex;
  };

  // Bootstrap: a couple of persons and one forum so every event has targets.
  VertexId p0 = w.NewEntity(cls.person, "person");
  VertexId p1 = w.NewEntity(cls.person, "person");
  w.Emit(p0, knows, p1);
  VertexId f0 = w.NewEntity(cls.forum, "forum");
  w.Emit(f0, has_mod, p0);
  VertexId post0 = w.NewEntity(cls.post, "post");
  w.Emit(p1, posted, post0);
  w.Emit(post0, contained_in, f0);

  // Event mix. The interaction share grows slowly with stream length, which
  // reproduces the paper's falling vertex/edge ratio across scales
  // (0.57 @ 100K -> 0.46 @ 1M -> 0.35 @ 10M).
  while (w.stream.size() < config.num_updates) {
    const double t = static_cast<double>(w.stream.size());
    const double interact_boost = 0.08 * std::log10(1.0 + t / 20000.0);
    const double r = rng.NextDouble();

    if (r < 0.20) {
      // New person: join the network, know someone, maybe check in.
      VertexId p = w.NewEntity(cls.person, "person");
      VertexId friend_p =
          capped(sample_person, knows_deg, config.max_knows_per_person);
      if (friend_p != kNoVertex) {
        w.Emit(p, knows, friend_p);
        ++knows_deg[p];
        ++knows_deg[friend_p];
      }
      if (rng.Flip(0.3)) {
        w.Emit(p, checks_in, sample_place());
        ++checkins_by_person[p];
      }
    } else if (r < 0.24) {
      // New forum with a moderator.
      VertexId f = w.NewEntity(cls.forum, "forum");
      w.Emit(f, has_mod, sample_person());
    } else if (r < 0.52) {
      // New post into a forum, sometimes tagged.
      VertexId author =
          capped(sample_person, posts_by_person, config.max_posts_per_person);
      VertexId forum = capped(sample_forum, posts_in_forum, config.max_posts_per_forum);
      if (author == kNoVertex || forum == kNoVertex) continue;
      VertexId post = w.NewEntity(cls.post, "post");
      w.Emit(author, posted, post);
      ++posts_by_person[author];
      w.Emit(post, contained_in, forum);
      ++posts_in_forum[forum];
      if (rng.Flip(0.25)) w.Emit(post, has_tag, sample_tag());
    } else if (r < 0.74) {
      // New comment replying to a post.
      VertexId target = capped(sample_post, replies_on_post, config.max_replies_per_post);
      if (target == kNoVertex) continue;
      VertexId c = w.NewEntity(cls.comment, "comment");
      w.Emit(c, has_creator, sample_person());
      w.Emit(c, reply, target);
      ++replies_on_post[target];
    } else if (r < 0.82 + interact_boost * 0.4) {
      // Friendship; half the time reciprocal (knows is symmetric in SNB).
      VertexId a = capped(sample_person, knows_deg, config.max_knows_per_person);
      VertexId b = capped(sample_person, knows_deg, config.max_knows_per_person);
      if (a != kNoVertex && b != kNoVertex && a != b) {
        w.Emit(a, knows, b);
        ++knows_deg[a];
        ++knows_deg[b];
        if (rng.Flip(0.5)) w.Emit(b, knows, a);
      }
    } else if (r < 0.92 + interact_boost * 0.7) {
      VertexId target = capped(sample_post, likes_on_post, config.max_likes_per_post);
      if (target != kNoVertex) w.Emit(sample_person(), likes, target);
      if (target != kNoVertex) ++likes_on_post[target];
    } else {
      VertexId p =
          capped(sample_person, checkins_by_person, config.max_checkins_per_person);
      if (p != kNoVertex) {
        w.Emit(p, checks_in, sample_place());
        ++checkins_by_person[p];
      }
    }
  }
  w.stream.Truncate(config.num_updates);
  return w;
}

}  // namespace workload
}  // namespace gstream
