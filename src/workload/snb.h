#ifndef GSTREAM_WORKLOAD_SNB_H_
#define GSTREAM_WORKLOAD_SNB_H_

#include <cstdint>

#include "workload/workload.h"

namespace gstream {
namespace workload {

/// Configuration of the SNB-like social-network stream (our substitute for
/// the LDBC Social Network Benchmark generator the paper used — see
/// DESIGN.md §1.1). The defaults reproduce the paper's structural statistics:
/// |G_V| / |G_E| ≈ 0.57 at 100K edges, decreasing with scale as interactions
/// densify over entity creation.
struct SnbConfig {
  size_t num_updates = 100'000;
  uint64_t seed = 42;
  size_t num_places = 200;
  size_t num_tags = 500;
  double zipf_exponent = 0.8;  ///< Popularity skew of persons/posts/forums.

  /// Per-vertex degree caps, mirroring LDBC SNB's bounded fan-outs (friend
  /// lists, replies per post, ...). Without them the rank-skewed sampling
  /// creates super-hubs whose homomorphism counts explode combinatorially —
  /// far beyond anything the paper's measurements imply.
  size_t max_knows_per_person = 24;
  size_t max_posts_per_person = 24;
  size_t max_replies_per_post = 48;
  size_t max_likes_per_post = 48;
  size_t max_posts_per_forum = 48;
  size_t max_checkins_per_person = 12;
};

/// Generates the SNB-like workload: persons, forums, posts, comments, places
/// and tags connected by knows / hasMod / posted / containedIn / hasCreator /
/// reply / likes / checksIn / hasTag / partOf edges — the schema behind the
/// paper's example queries (Figs. 1, 3, 4).
Workload GenerateSnb(const SnbConfig& config);

}  // namespace workload
}  // namespace gstream

#endif  // GSTREAM_WORKLOAD_SNB_H_
