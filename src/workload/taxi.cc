#include "workload/taxi.h"

#include "common/rng.h"

namespace gstream {
namespace workload {

Workload GenerateTaxi(const TaxiConfig& config) {
  Workload w;
  w.name = "TAXI";
  w.interner = std::make_shared<StringInterner>();
  w.stream = UpdateStream(w.interner);
  Rng rng(config.seed);

  const uint32_t ride = w.schema.AddClass("Ride");
  const uint32_t medallion = w.schema.AddClass("Medallion");
  const uint32_t driver = w.schema.AddClass("Driver");
  const uint32_t zone = w.schema.AddClass("Zone");
  const uint32_t payment = w.schema.AddClass("Payment");
  w.entities.resize(w.schema.NumClasses());

  const LabelId by_medallion = w.interner->Intern("byMedallion");
  const LabelId driven_by = w.interner->Intern("drivenBy");
  const LabelId pickup_at = w.interner->Intern("pickupAt");
  const LabelId dropoff_at = w.interner->Intern("dropoffAt");
  const LabelId paid_by = w.interner->Intern("paidBy");
  const LabelId drives = w.interner->Intern("drives");

  w.schema.AddEdge(by_medallion, ride, medallion);
  w.schema.AddEdge(driven_by, ride, driver);
  w.schema.AddEdge(pickup_at, ride, zone);
  w.schema.AddEdge(dropoff_at, ride, zone);
  w.schema.AddEdge(paid_by, ride, payment);
  w.schema.AddEdge(drives, driver, medallion);

  for (size_t i = 0; i < config.num_zones; ++i) w.NewEntity(zone, "zone");
  w.NewEntity(payment, "cash");
  w.NewEntity(payment, "card");
  ZipfSampler zone_zipf(config.num_zones, config.zipf_exponent);

  // Medallion/driver fleets grow slowly: ~13K medallions served NYC in 2013.
  auto fleet_target = [&](size_t rides) { return 50 + rides / 40; };

  size_t rides_emitted = 0;
  while (w.stream.size() < config.num_updates) {
    // Grow fleets toward their targets.
    while (w.entities[medallion].size() < fleet_target(rides_emitted))
      w.NewEntity(medallion, "medallion");
    while (w.entities[driver].size() < fleet_target(rides_emitted) * 12 / 10) {
      VertexId d = w.NewEntity(driver, "driver");
      // A new driver is licensed onto some medallion.
      w.Emit(d, drives,
             w.entities[medallion][rng.Next(w.entities[medallion].size())]);
    }

    // One ride event: a star around the fresh Ride vertex. Drivers pick up
    // in a Zipf-popular zone; 20% of dropoffs stay in the pickup zone.
    VertexId r = w.NewEntity(ride, "ride");
    VertexId m = w.entities[medallion][rng.Next(w.entities[medallion].size())];
    w.Emit(r, by_medallion, m);
    if (rng.Flip(0.6))
      w.Emit(r, driven_by, w.entities[driver][rng.Next(w.entities[driver].size())]);
    VertexId pick = w.entities[zone][zone_zipf.Sample(rng)];
    w.Emit(r, pickup_at, pick);
    VertexId drop = rng.Flip(0.2) ? pick : w.entities[zone][zone_zipf.Sample(rng)];
    w.Emit(r, dropoff_at, drop);
    if (rng.Flip(0.5))
      w.Emit(r, paid_by, w.entities[payment][rng.Flip(0.55) ? 1 : 0]);
    ++rides_emitted;
  }
  w.stream.Truncate(config.num_updates);
  return w;
}

}  // namespace workload
}  // namespace gstream
