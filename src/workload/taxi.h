#ifndef GSTREAM_WORKLOAD_TAXI_H_
#define GSTREAM_WORKLOAD_TAXI_H_

#include <cstdint>

#include "workload/workload.h"

namespace gstream {
namespace workload {

/// Configuration of the NYC-taxi-like stream (substitute for the DEBS'15
/// TAXI dataset the paper used — see DESIGN.md §1.1). Each ride event
/// becomes a small star of edges around a fresh Ride vertex; zone popularity
/// is Zipf-skewed. Defaults reproduce |G_V| / |G_E| ≈ 0.28 (paper: 1M edges,
/// 280K vertices).
struct TaxiConfig {
  size_t num_updates = 100'000;
  uint64_t seed = 43;
  size_t num_zones = 260;       ///< NYC TLC has 263 taxi zones.
  double zipf_exponent = 0.9;   ///< Zone popularity skew.
};

/// Generates the TAXI-like workload: Ride / Medallion / Driver / Zone /
/// Payment entities connected by byMedallion / drivenBy / pickupAt /
/// dropoffAt / paidBy / drives edges.
Workload GenerateTaxi(const TaxiConfig& config);

}  // namespace workload
}  // namespace gstream

#endif  // GSTREAM_WORKLOAD_TAXI_H_
