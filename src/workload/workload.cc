#include "workload/workload.h"

#include <unordered_set>

namespace gstream {
namespace workload {

VertexId Workload::NewEntity(uint32_t cls, const std::string& prefix) {
  const size_t index = entities[cls].size();
  VertexId id = interner->Intern(prefix + "_" + std::to_string(index));
  entities[cls].push_back(id);
  vertex_class[id] = cls;
  return id;
}

WorkloadStats ComputeStats(const Workload& w) {
  WorkloadStats stats;
  stats.updates = w.stream.size();
  stats.distinct_vertices = w.stream.CountVertices(w.stream.size());
  std::unordered_set<LabelId> labels;
  for (const auto& u : w.stream.updates()) labels.insert(u.label);
  stats.distinct_labels = labels.size();
  return stats;
}

}  // namespace workload
}  // namespace gstream
