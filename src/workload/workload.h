#ifndef GSTREAM_WORKLOAD_WORKLOAD_H_
#define GSTREAM_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interning.h"
#include "graph/stream.h"
#include "workload/schema.h"

namespace gstream {
namespace workload {

/// A fully generated experimental workload: the label schema, the update
/// stream, and per-class entity pools the query generator samples literals
/// from. One `Workload` corresponds to one dataset column of the paper's
/// evaluation (§6.1).
struct Workload {
  std::string name;
  std::shared_ptr<StringInterner> interner;
  Schema schema;
  UpdateStream stream;

  /// Entity labels per class, in creation order.
  std::vector<std::vector<VertexId>> entities;

  /// Class of every vertex appearing in the stream.
  std::unordered_map<VertexId, uint32_t> vertex_class;

  /// Registers a fresh entity of `cls` named `<prefix>_<index>`.
  VertexId NewEntity(uint32_t cls, const std::string& prefix);

  /// Appends an insert update.
  void Emit(VertexId src, LabelId label, VertexId dst) {
    stream.Append(EdgeUpdate{src, label, dst, UpdateOp::kAdd});
  }
};

/// Rough dataset statistics for logging / tests.
struct WorkloadStats {
  size_t updates = 0;
  size_t distinct_vertices = 0;
  size_t distinct_labels = 0;
};
WorkloadStats ComputeStats(const Workload& w);

}  // namespace workload
}  // namespace gstream

#endif  // GSTREAM_WORKLOAD_WORKLOAD_H_
