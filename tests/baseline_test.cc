#include <gtest/gtest.h>

#include "baseline/inc_engine.h"
#include "baseline/inv_engine.h"
#include "baseline/inverted_common.h"
#include "common/interning.h"
#include "query/parser.h"

namespace gstream {
namespace {

using baseline::IncEngine;
using baseline::InvEngine;
using baseline::PlanExtensionOrder;

QueryPattern Parse(const std::string& text, StringInterner& in) {
  auto r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

TEST(PlanExtensionOrder, CoversAllOtherEdges) {
  StringInterner in;
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c); (?c)-[t]->(?d)", in);
  for (uint32_t seed = 0; seed < 3; ++seed) {
    auto order = PlanExtensionOrder(q, seed);
    EXPECT_EQ(order.size(), 2u);
    for (uint32_t e : order) EXPECT_NE(e, seed);
  }
}

TEST(PlanExtensionOrder, PrefersConnectedEdges) {
  StringInterner in;
  // seed = middle edge; both neighbours are connected, the far edge is not.
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c); (?x)-[t]->(?y); (?c)-[u]->(?x)", in);
  auto order = PlanExtensionOrder(q, 1);  // seed s: binds b, c
  // First extension must touch a bound vertex (edges r or u, not t).
  EXPECT_NE(order[0], 2u);
}

TEST(InvEngine, DiffBookkeepingAcrossUpdates) {
  StringInterner in;
  InvEngine engine(false);
  engine.AddQuery(1, Parse("(?x)-[r]->(?y); (?y)-[s]->(?z)", in));
  LabelId r = in.Intern("r"), s = in.Intern("s");
  engine.ApplyUpdate({in.Intern("a"), r, in.Intern("b"), UpdateOp::kAdd});
  auto res1 = engine.ApplyUpdate({in.Intern("b"), s, in.Intern("c"), UpdateOp::kAdd});
  EXPECT_EQ(res1.new_embeddings, 1u);
  // Second completion adds exactly one more (diff, not total).
  auto res2 = engine.ApplyUpdate({in.Intern("b"), s, in.Intern("d"), UpdateOp::kAdd});
  EXPECT_EQ(res2.new_embeddings, 1u);
}

TEST(InvEngine, SkipsQueriesWithEmptyViews) {
  StringInterner in;
  InvEngine engine(false);
  engine.AddQuery(1, Parse("(?x)-[r]->(?y); (?y)-[zzz]->(?z)", in));
  // r updates affect the query, but the zzz view is empty: candidate filter
  // must skip it without a join.
  auto res = engine.ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_TRUE(res.triggered.empty());
}

TEST(IncEngine, SeedsEveryMatchingPosition) {
  StringInterner in;
  IncEngine engine(false);
  engine.AddQuery(1, Parse("(?a)-[r]->(?b); (?b)-[r]->(?c)", in));
  LabelId r = in.Intern("r");
  engine.ApplyUpdate({in.Intern("x"), r, in.Intern("y"), UpdateOp::kAdd});
  // y->y selfloop matches both positions: (x,y,y) via position 2 and (y,y,y)
  // via both.
  auto res = engine.ApplyUpdate({in.Intern("y"), r, in.Intern("y"), UpdateOp::kAdd});
  EXPECT_EQ(res.new_embeddings, 2u);
}

TEST(IncEngine, LiteralSeedRejectedWhenMismatched) {
  StringInterner in;
  IncEngine engine(false);
  engine.AddQuery(1, Parse("(?x)-[r]->(hub)", in));
  auto res = engine.ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("other"), UpdateOp::kAdd});
  EXPECT_TRUE(res.triggered.empty());
  auto res2 = engine.ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("hub"), UpdateOp::kAdd});
  EXPECT_EQ(res2.new_embeddings, 1u);
}

TEST(IncEngine, BothBoundCheckUsesEdgeSet) {
  StringInterner in;
  IncEngine engine(false);
  // Triangle query: the closing edge is checked via the seen-edge set.
  engine.AddQuery(1, Parse("(?a)-[r]->(?b); (?b)-[r]->(?c); (?c)-[r]->(?a)", in));
  LabelId r = in.Intern("r");
  engine.ApplyUpdate({in.Intern("x"), r, in.Intern("y"), UpdateOp::kAdd});
  engine.ApplyUpdate({in.Intern("y"), r, in.Intern("z"), UpdateOp::kAdd});
  auto res = engine.ApplyUpdate({in.Intern("z"), r, in.Intern("x"), UpdateOp::kAdd});
  EXPECT_EQ(res.new_embeddings, 3u);  // three rotations
}

TEST(CachedBaselines, AgreeWithUncached) {
  StringInterner in;
  InvEngine inv(false), invp(true);
  IncEngine inc(false), incp(true);
  const char* queries[] = {
      "(?x)-[knows]->(?y); (?y)-[posted]->(?p)",
      "(?x)-[posted]->(pst1)",
      "(?a)-[knows]->(?b); (?b)-[knows]->(?a)",
  };
  for (QueryId q = 0; q < 3; ++q) {
    auto pat = Parse(queries[q], in);
    inv.AddQuery(q, pat);
    invp.AddQuery(q, pat);
    inc.AddQuery(q, pat);
    incp.AddQuery(q, pat);
  }
  const char* edges[][3] = {
      {"a", "knows", "b"},    {"b", "posted", "pst1"}, {"b", "knows", "a"},
      {"c", "knows", "a"},    {"a", "posted", "pst2"}, {"a", "posted", "pst1"},
  };
  for (const auto& [s, l, t] : edges) {
    EdgeUpdate u{in.Intern(s), in.Intern(l), in.Intern(t), UpdateOp::kAdd};
    auto r_inv = inv.ApplyUpdate(u);
    auto r_invp = invp.ApplyUpdate(u);
    auto r_inc = inc.ApplyUpdate(u);
    auto r_incp = incp.ApplyUpdate(u);
    ASSERT_EQ(r_inv.per_query, r_invp.per_query);
    ASSERT_EQ(r_inv.per_query, r_inc.per_query);
    ASSERT_EQ(r_inc.per_query, r_incp.per_query);
  }
}

TEST(Baselines, NoSharingMeansPerQueryWork) {
  // Behavioural sanity: identical queries all trigger, each evaluated
  // separately (no crash, correct counts).
  StringInterner in;
  IncEngine engine(false);
  for (QueryId q = 0; q < 20; ++q)
    engine.AddQuery(q, Parse("(?x)-[knows]->(?y)", in));
  auto res = engine.ApplyUpdate(
      {in.Intern("a"), in.Intern("knows"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_EQ(res.triggered.size(), 20u);
}

TEST(Baselines, DisconnectedQueryCrossProduct) {
  StringInterner in;
  IncEngine inc(false);
  InvEngine inv(false);
  auto q = Parse("(?x)-[r]->(?y); (?u)-[s]->(?v)", in);
  inc.AddQuery(1, q);
  inv.AddQuery(1, q);
  LabelId r = in.Intern("r"), s = in.Intern("s");
  inc.ApplyUpdate({in.Intern("a"), r, in.Intern("b"), UpdateOp::kAdd});
  inv.ApplyUpdate({in.Intern("a"), r, in.Intern("b"), UpdateOp::kAdd});
  auto ri = inc.ApplyUpdate({in.Intern("c"), s, in.Intern("d"), UpdateOp::kAdd});
  auto rv = inv.ApplyUpdate({in.Intern("c"), s, in.Intern("d"), UpdateOp::kAdd});
  EXPECT_EQ(ri.new_embeddings, 1u);
  EXPECT_EQ(rv.new_embeddings, 1u);
}

}  // namespace
}  // namespace gstream
