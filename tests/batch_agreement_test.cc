#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/driver.h"
#include "engine/engine.h"
#include "graph/stream.h"
#include "query/parser.h"
#include "workload/bio.h"
#include "workload/query_gen.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace gstream {
namespace {

/// Batched execution must be observationally identical to sequential
/// execution: for every engine, `ApplyBatch` over any window partition of the
/// stream returns exactly the per-update results sequential `ApplyUpdate`
/// calls produce — same `changed` flags, same (query id, #new embeddings)
/// vectors, same notification order. This holds for the default sequential
/// fallback (naive, graphdb) and for the view engines' footprint-sharded
/// override, with and without worker threads.

std::vector<EngineKind> AllEngineKinds() {
  std::vector<EngineKind> kinds = PaperEngineKinds();
  kinds.push_back(EngineKind::kNaive);
  return kinds;
}

void ExpectBatchMatchesSequential(const std::vector<QueryPattern>& queries,
                                  const std::vector<EdgeUpdate>& updates,
                                  size_t window, int threads,
                                  const std::string& label) {
  for (EngineKind kind : AllEngineKinds()) {
    auto sequential = CreateEngine(kind);
    auto batched = CreateEngine(kind);
    for (QueryId qid = 0; qid < queries.size(); ++qid) {
      sequential->AddQuery(qid, queries[qid]);
      batched->AddQuery(qid, queries[qid]);
    }
    batched->SetBatchThreads(threads);

    std::vector<UpdateResult> expected;
    expected.reserve(updates.size());
    for (const EdgeUpdate& u : updates) expected.push_back(sequential->ApplyUpdate(u));

    size_t pos = 0;
    while (pos < updates.size()) {
      const size_t n = std::min(window, updates.size() - pos);
      std::vector<UpdateResult> got = batched->ApplyBatch(&updates[pos], n);
      ASSERT_EQ(got.size(), n) << label;  // no budget set, so no short windows
      for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(got[k].changed, expected[pos + k].changed)
            << label << ": " << sequential->name() << " window=" << window
            << " threads=" << threads << " at update " << pos + k;
        ASSERT_EQ(got[k].per_query, expected[pos + k].per_query)
            << label << ": " << sequential->name() << " window=" << window
            << " threads=" << threads << " at update " << pos + k;
        ASSERT_EQ(got[k].triggered, expected[pos + k].triggered)
            << label << ": " << sequential->name() << " at update " << pos + k;
      }
      pos += n;
    }
    EXPECT_EQ(batched->MemoryBytes() > 0, sequential->MemoryBytes() > 0);
  }
}

struct BatchCase {
  const char* name;
  const char* dataset;  // snb | taxi | bio
  size_t stream_len;
  size_t num_queries;
  double avg_size;
  double selectivity;
  double overlap;
  uint64_t seed;
  size_t window;
  int threads;
};

std::ostream& operator<<(std::ostream& os, const BatchCase& c) { return os << c.name; }

class BatchAgreementTest : public ::testing::TestWithParam<BatchCase> {};

workload::Workload MakeWorkload(const BatchCase& c) {
  if (std::string(c.dataset) == "snb") {
    workload::SnbConfig config;
    config.num_updates = c.stream_len;
    config.seed = c.seed;
    config.num_places = 10;
    config.num_tags = 10;
    return workload::GenerateSnb(config);
  }
  if (std::string(c.dataset) == "taxi") {
    workload::TaxiConfig config;
    config.num_updates = c.stream_len;
    config.seed = c.seed;
    config.num_zones = 12;
    return workload::GenerateTaxi(config);
  }
  workload::BioConfig config;
  config.num_updates = c.stream_len;
  config.seed = c.seed;
  config.growth_coefficient = 1200;
  return workload::GenerateBio(config);
}

TEST_P(BatchAgreementTest, BatchedResultsEqualSequentialForEveryEngine) {
  const BatchCase& c = GetParam();
  workload::Workload w = MakeWorkload(c);

  workload::QueryGenConfig qcfg;
  qcfg.num_queries = c.num_queries;
  qcfg.avg_size = c.avg_size;
  qcfg.selectivity = c.selectivity;
  qcfg.overlap = c.overlap;
  qcfg.seed = c.seed * 131 + 5;
  workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

  ExpectBatchMatchesSequential(qs.queries, w.stream.updates(), c.window, c.threads,
                               c.name);
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedStreams, BatchAgreementTest,
    ::testing::Values(
        // Single-threaded batching isolates the sharding/merge machinery.
        BatchCase{"SnbShardedNoThreads", "snb", 300, 30, 4.0, 0.4, 0.35, 1, 8, 1},
        // Threaded runs exercise concurrent shard execution end to end.
        BatchCase{"SnbThreads2", "snb", 300, 30, 4.0, 0.4, 0.35, 2, 8, 2},
        BatchCase{"SnbThreads4WideWindow", "snb", 400, 40, 5.0, 0.25, 0.35, 3, 32, 4},
        BatchCase{"SnbHighOverlap", "snb", 260, 30, 4.0, 0.4, 0.8, 4, 16, 4},
        BatchCase{"TaxiThreads4", "taxi", 300, 30, 4.0, 0.3, 0.35, 5, 16, 4},
        BatchCase{"TaxiTinyWindows", "taxi", 240, 25, 3.0, 0.5, 0.2, 6, 2, 2},
        BatchCase{"BioDenseThreads4", "bio", 160, 20, 3.0, 0.4, 0.35, 7, 16, 4},
        BatchCase{"BioChains", "bio", 140, 15, 4.0, 0.5, 0.5, 8, 8, 2}),
    [](const ::testing::TestParamInfo<BatchCase>& info) { return info.param.name; });

TEST(BatchAgreementDirected, DeletionsActAsWindowBarriers) {
  // Mixed add/delete stream: deletions serialize their window, and the
  // surrounding insert runs still shard. Duplicate re-adds after deletion
  // must re-trigger exactly as sequential execution does.
  StringInterner in;
  const char* patterns[] = {
      "(?a)-[r]->(?b); (?b)-[r]->(?c)",
      "(?a)-[r]->(?b); (?b)-[s]->(?c)",
      "(?x)-[s]->(?y)",
      "(v0)-[r]->(?b)",
  };
  std::vector<QueryPattern> queries;
  for (const char* p : patterns) {
    auto r = ParsePattern(p, in);
    ASSERT_TRUE(r.ok) << r.error;
    queries.push_back(r.pattern);
  }

  LabelId rl = in.Intern("r");
  LabelId sl = in.Intern("s");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };
  std::vector<EdgeUpdate> updates;
  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    EdgeUpdate u;
    u.src = v(static_cast<int>(rng.Next(8)));
    u.dst = v(static_cast<int>(rng.Next(8)));
    u.label = rng.Next(3) == 0 ? sl : rl;
    u.op = rng.Next(5) == 0 ? UpdateOp::kDelete : UpdateOp::kAdd;
    updates.push_back(u);
  }

  ExpectBatchMatchesSequential(queries, updates, /*window=*/16, /*threads=*/4,
                               "DeletionsActAsWindowBarriers");
  ExpectBatchMatchesSequential(queries, updates, /*window=*/5, /*threads=*/2,
                               "DeletionsSmallWindows");
}

TEST(BatchAgreementDirected, SameQueryWindowsSharedPrefixesDupsAndDeletions) {
  // Window-delta stress: a tiny vertex pool so many updates in one window
  // hit the same queries (shared trie prefixes, repeated covering paths),
  // plus exact duplicate edges and interleaved deletions. The delta path
  // must reconstruct byte-identical per-update notification order from the
  // provenance tags.
  StringInterner in;
  const char* patterns[] = {
      "(?a)-[knows]->(?b); (?b)-[knows]->(?c); (?c)-[likes]->(?d)",
      "(?a)-[knows]->(?b); (?a)-[likes]->(?c)",
      "(?x)-[likes]->(?y); (?z)-[likes]->(?y)",
      "(v0)-[knows]->(?b); (?b)-[knows]->(v0)",
      "(?p)-[likes]->(?q)",
  };
  std::vector<QueryPattern> queries;
  for (const char* p : patterns) {
    auto r = ParsePattern(p, in);
    ASSERT_TRUE(r.ok) << r.error;
    queries.push_back(r.pattern);
  }

  LabelId knows = in.Intern("knows");
  LabelId likes = in.Intern("likes");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };
  std::vector<EdgeUpdate> updates;
  Rng rng(29);
  for (int i = 0; i < 160; ++i) {
    if (!updates.empty() && rng.Next(8) == 0) {
      // Exact duplicate of an earlier update (same op): a no-op re-add or a
      // second delete, resolved by the coordinator pre-pass.
      updates.push_back(updates[rng.Next(updates.size())]);
      continue;
    }
    EdgeUpdate u;
    u.src = v(static_cast<int>(rng.Next(6)));
    u.dst = v(static_cast<int>(rng.Next(6)));
    u.label = rng.Next(3) == 0 ? likes : knows;
    u.op = rng.Next(6) == 0 ? UpdateOp::kDelete : UpdateOp::kAdd;
    updates.push_back(u);
  }

  ExpectBatchMatchesSequential(queries, updates, /*window=*/16, /*threads=*/1,
                               "SameQueryWindows16");
  ExpectBatchMatchesSequential(queries, updates, /*window=*/32, /*threads=*/4,
                               "SameQueryWindows32T4");
  ExpectBatchMatchesSequential(queries, updates, /*window=*/7, /*threads=*/2,
                               "SameQueryWindows7T2");
}

TEST(BatchAgreementDirected, WindowDeltaRunsOneFinalJoinPassPerQueryWindow) {
  // The acceptance gauge of the delta pipeline: a window of K inserts all
  // hitting one query costs K final-join passes per update sequentially but
  // exactly one per (query, window) batched. A deletion splits the window
  // into two delta windows (barrier), doubling the batched count.
  StringInterner in;
  auto parsed = ParsePattern("(?a)-[r]->(?b)", in);
  ASSERT_TRUE(parsed.ok);
  LabelId rl = in.Intern("r");
  LabelId sl = in.Intern("s");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  constexpr size_t kWindow = 16;
  std::vector<EdgeUpdate> inserts;
  for (size_t i = 0; i < kWindow; ++i)
    inserts.push_back({v(static_cast<int>(i)), rl, v(static_cast<int>(i) + 1),
                       UpdateOp::kAdd});

  const EngineKind view_kinds[] = {EngineKind::kTric,    EngineKind::kTricPlus,
                                   EngineKind::kInv,     EngineKind::kInvPlus,
                                   EngineKind::kInc,     EngineKind::kIncPlus};
  for (EngineKind kind : view_kinds) {
    auto sequential = CreateEngine(kind);
    sequential->AddQuery(0, parsed.pattern);
    for (const EdgeUpdate& u : inserts) sequential->ApplyUpdate(u);
    EXPECT_EQ(sequential->final_join_passes(), kWindow)
        << sequential->name() << " (per-update)";

    auto batched = CreateEngine(kind);
    batched->AddQuery(0, parsed.pattern);
    batched->ApplyBatch(inserts.data(), inserts.size());
    EXPECT_EQ(batched->final_join_passes(), 1u) << batched->name() << " (delta)";

    // Same stream with a foreign-label deletion in the middle: two insert
    // windows, two passes (the deletion itself matches no query pattern).
    std::vector<EdgeUpdate> split = inserts;
    split.insert(split.begin() + kWindow / 2,
                 EdgeUpdate{v(0), sl, v(1), UpdateOp::kDelete});
    auto barrier = CreateEngine(kind);
    barrier->AddQuery(0, parsed.pattern);
    barrier->ApplyBatch(split.data(), split.size());
    EXPECT_EQ(barrier->final_join_passes(), 2u) << barrier->name() << " (barrier)";
  }
}

TEST(BatchAgreementDirected, RunStreamBatchedMatchesSequentialStats) {
  // The driver-level entry point: RunStream with batch_window > 1 must report
  // the same aggregate stats as the classic per-update loop.
  StringInterner in;
  auto r1 = ParsePattern("(?a)-[knows]->(?b); (?b)-[knows]->(?c)", in);
  auto r2 = ParsePattern("(?p)-[posted]->(?m)", in);
  ASSERT_TRUE(r1.ok && r2.ok);

  auto interner = std::make_shared<StringInterner>(in);
  UpdateStream stream(interner);
  Rng rng(42);
  LabelId knows = interner->Intern("knows");
  LabelId posted = interner->Intern("posted");
  for (int i = 0; i < 200; ++i) {
    stream.Append({interner->Intern("p" + std::to_string(rng.Next(9))),
                   rng.Next(2) == 0 ? knows : posted,
                   interner->Intern("p" + std::to_string(rng.Next(9))),
                   UpdateOp::kAdd});
  }

  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kInc}) {
    auto seq_engine = CreateEngine(kind);
    seq_engine->AddQuery(0, r1.pattern);
    seq_engine->AddQuery(1, r2.pattern);
    RunStats seq = RunStream(*seq_engine, stream);

    auto batch_engine = CreateEngine(kind);
    batch_engine->AddQuery(0, r1.pattern);
    batch_engine->AddQuery(1, r2.pattern);
    RunConfig config;
    config.batch_window = 16;
    config.batch_threads = 4;
    RunStats bat = RunStream(*batch_engine, stream, config);

    EXPECT_EQ(bat.updates_applied, seq.updates_applied);
    EXPECT_EQ(bat.new_embeddings, seq.new_embeddings);
    EXPECT_EQ(bat.queries_satisfied, seq.queries_satisfied);
    EXPECT_FALSE(bat.timed_out);
  }
}

}  // namespace
}  // namespace gstream
