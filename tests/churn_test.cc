#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/driver.h"
#include "engine/engine.h"
#include "graph/stream.h"
#include "query/parser.h"
#include "workload/query_gen.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace gstream {
namespace {

/// Query-lifecycle (churn) suite: `RemoveQuery` across all eight engines.
/// The invariants under test:
///  * randomized interleavings of AddQuery / RemoveQuery / updates agree
///    with the naive oracle, update by update;
///  * removing a query never changes a surviving query's results;
///  * `MemoryBytes()` returns to the pre-registration baseline after
///    removing everything that was registered (shared-view GC);
///  * the checked lifecycle API fails loudly on contract violations;
///  * mixed event streams run through batch windows byte-identically to
///    sequential execution, with `final_join_passes` tracking the live QDB.

std::vector<EngineKind> AllEngineKinds() {
  std::vector<EngineKind> kinds = PaperEngineKinds();
  kinds.push_back(EngineKind::kNaive);
  return kinds;
}

QueryPattern Parse(const std::string& text, StringInterner& in) {
  ParseResult r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

void ExpectSameResult(const UpdateResult& got, const UpdateResult& want,
                      const std::string& label) {
  ASSERT_EQ(got.changed, want.changed) << label;
  ASSERT_EQ(got.per_query, want.per_query) << label;
  ASSERT_EQ(got.triggered, want.triggered) << label;
}

struct ChurnCase {
  const char* name;
  const char* dataset;  // snb | taxi
  size_t stream_len;
  size_t pool_queries;
  size_t initial_queries;
  double avg_size;
  double overlap;
  uint64_t seed;
  uint32_t add_period;     // ~1 add per `add_period` events
  uint32_t remove_period;  // ~1 remove per `remove_period` events
  bool with_deletions;
};

std::ostream& operator<<(std::ostream& os, const ChurnCase& c) { return os << c.name; }

class ChurnAgreementTest : public ::testing::TestWithParam<ChurnCase> {};

workload::Workload MakeWorkload(const ChurnCase& c) {
  if (std::string(c.dataset) == "taxi") {
    workload::TaxiConfig config;
    config.num_updates = c.stream_len;
    config.seed = c.seed;
    config.num_zones = 12;
    return workload::GenerateTaxi(config);
  }
  workload::SnbConfig config;
  config.num_updates = c.stream_len;
  config.seed = c.seed;
  config.num_places = 10;
  config.num_tags = 10;
  return workload::GenerateSnb(config);
}

TEST_P(ChurnAgreementTest, RandomizedInterleavingsAgreeWithOracle) {
  const ChurnCase& c = GetParam();
  workload::Workload w = MakeWorkload(c);

  workload::QueryGenConfig qcfg;
  qcfg.num_queries = c.pool_queries;
  qcfg.avg_size = c.avg_size;
  qcfg.selectivity = 0.4;
  qcfg.overlap = c.overlap;
  qcfg.seed = c.seed * 131 + 5;
  workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

  // Script one deterministic interleaving, then replay it against every
  // engine with a naive oracle mirroring each lifecycle call.
  std::vector<StreamEvent> events;
  {
    Rng rng(c.seed * 977 + 3);
    std::vector<QueryId> live;
    QueryId next_qid = 0;
    for (; next_qid < c.initial_queries && next_qid < qs.queries.size(); ++next_qid) {
      events.push_back(StreamEvent::Add(next_qid, qs.queries[next_qid]));
      live.push_back(next_qid);
    }
    size_t pos = 0;
    while (pos < w.stream.size()) {
      if (next_qid < qs.queries.size() && rng.Next(c.add_period) == 0) {
        events.push_back(StreamEvent::Add(next_qid, qs.queries[next_qid]));
        live.push_back(next_qid);
        ++next_qid;
        continue;
      }
      if (!live.empty() && rng.Next(c.remove_period) == 0) {
        const size_t pick = rng.Next(live.size());
        events.push_back(StreamEvent::Remove(live[pick]));
        live.erase(live.begin() + pick);
        continue;
      }
      EdgeUpdate u = w.stream[pos++];
      if (c.with_deletions && rng.Next(11) == 0) u.op = UpdateOp::kDelete;
      events.push_back(StreamEvent::Update(u));
    }
  }

  for (EngineKind kind : PaperEngineKinds()) {
    auto engine = CreateEngine(kind);
    auto oracle = CreateEngine(EngineKind::kNaive);
    size_t step = 0;
    for (const StreamEvent& ev : events) {
      const std::string label = std::string(c.name) + ": " + engine->name() +
                                " at event " + std::to_string(step++);
      switch (ev.kind) {
        case StreamEvent::Kind::kAddQuery:
          engine->AddQuery(ev.qid, ev.query);
          oracle->AddQuery(ev.qid, ev.query);
          break;
        case StreamEvent::Kind::kRemoveQuery:
          ASSERT_TRUE(engine->RemoveQuery(ev.qid)) << label;
          ASSERT_TRUE(oracle->RemoveQuery(ev.qid)) << label;
          ASSERT_FALSE(engine->HasQuery(ev.qid)) << label;
          break;
        case StreamEvent::Kind::kUpdate: {
          UpdateResult got = engine->ApplyUpdate(ev.update);
          UpdateResult want = oracle->ApplyUpdate(ev.update);
          ExpectSameResult(got, want, label);
          break;
        }
      }
      ASSERT_EQ(engine->NumQueries(), oracle->NumQueries());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedChurn, ChurnAgreementTest,
    ::testing::Values(
        ChurnCase{"SnbSteadyChurn", "snb", 220, 24, 8, 4.0, 0.35, 1, 12, 14, false},
        ChurnCase{"SnbHighOverlapSharedPrefixes", "snb", 200, 22, 10, 4.0, 0.8, 2,
                  10, 12, false},
        ChurnCase{"SnbChurnWithDeletions", "snb", 180, 20, 8, 3.0, 0.5, 3, 10, 12,
                  true},
        ChurnCase{"TaxiChurn", "taxi", 200, 20, 6, 3.0, 0.35, 4, 9, 11, false},
        ChurnCase{"SnbMassRemovalWaves", "snb", 160, 30, 16, 4.0, 0.5, 5, 20, 4,
                  false}),
    [](const ::testing::TestParamInfo<ChurnCase>& info) { return info.param.name; });

TEST(ChurnDirected, RemovalNeverChangesSurvivingQueryResults) {
  // Two queries sharing a covering-path prefix; removing one mid-stream
  // must leave the survivor's notifications identical to a run where the
  // removed query never existed — the trie GC may only collect nodes the
  // removed query alone pinned.
  const char* survivor_text = "(?a)-[knows]->(?b); (?b)-[knows]->(?c)";
  const char* doomed_text =
      "(?a)-[knows]->(?b); (?b)-[knows]->(?c); (?c)-[likes]->(?d)";

  for (EngineKind kind : AllEngineKinds()) {
    StringInterner in;
    auto subject = CreateEngine(kind);   // survivor + doomed, doomed removed
    auto control = CreateEngine(kind);   // survivor only, from the start
    subject->AddQuery(0, Parse(survivor_text, in));
    subject->AddQuery(1, Parse(doomed_text, in));
    control->AddQuery(0, Parse(survivor_text, in));

    LabelId knows = in.Intern("knows");
    LabelId likes = in.Intern("likes");
    auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };
    Rng rng(17);
    for (int i = 0; i < 150; ++i) {
      if (i == 60) {
        ASSERT_TRUE(subject->RemoveQuery(1)) << subject->name();
        EXPECT_FALSE(subject->HasQuery(1));
        EXPECT_TRUE(subject->HasQuery(0));
      }
      EdgeUpdate u{v(static_cast<int>(rng.Next(7))),
                   rng.Next(3) == 0 ? likes : knows,
                   v(static_cast<int>(rng.Next(7))),
                   rng.Next(9) == 0 ? UpdateOp::kDelete : UpdateOp::kAdd};
      UpdateResult got = subject->ApplyUpdate(u);
      UpdateResult want = control->ApplyUpdate(u);
      // Before the removal the subject also carries query 1: compare only
      // query 0's share. After it, results must be identical outright.
      if (i < 60) {
        auto count_of = [](const UpdateResult& r, QueryId qid) -> uint64_t {
          for (const auto& [q, n] : r.per_query)
            if (q == qid) return n;
          return 0;
        };
        ASSERT_EQ(count_of(got, 0), count_of(want, 0))
            << subject->name() << " at update " << i;
      } else {
        ExpectSameResult(got, want, subject->name() + " at update " +
                                        std::to_string(i));
      }
    }
  }
}

TEST(ChurnDirected, MemoryReturnsToBaselineAfterRemovingEverything) {
  // The GC acceptance gauge: register a substantial QDB, remove it all,
  // and the engine's self-reported memory must land within 10% of the
  // pre-registration baseline — shared views, trie nodes, cached indexes,
  // postings, and their container capacity all released.
  workload::SnbConfig wcfg;
  wcfg.num_updates = 200;
  wcfg.seed = 11;
  workload::Workload w = workload::GenerateSnb(wcfg);
  workload::QueryGenConfig qcfg;
  qcfg.num_queries = 40;
  qcfg.avg_size = 5.0;
  qcfg.selectivity = 0.3;
  qcfg.overlap = 0.5;
  qcfg.seed = 23;
  workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

  for (EngineKind kind : AllEngineKinds()) {
    auto engine = CreateEngine(kind);
    const size_t baseline = engine->MemoryBytes();
    for (QueryId qid = 0; qid < qs.queries.size(); ++qid)
      engine->AddQuery(qid, qs.queries[qid]);
    const size_t loaded = engine->MemoryBytes();
    EXPECT_GT(loaded, baseline) << engine->name();
    for (QueryId qid = 0; qid < qs.queries.size(); ++qid)
      ASSERT_TRUE(engine->RemoveQuery(qid)) << engine->name();
    EXPECT_EQ(engine->NumQueries(), 0u);
    const size_t after = engine->MemoryBytes();
    EXPECT_LE(after, baseline + baseline / 10)
        << engine->name() << ": baseline " << baseline << ", loaded " << loaded
        << ", after removal " << after;
  }
}

TEST(ChurnDirected, MemoryShrinksUnderChurnWithLiveStream) {
  // Under a live stream the engine keeps stream state (edge set, graph
  // store) and its transient-peak high-water mark, so removal cannot return
  // to the fresh baseline — but it must strictly undercut an identical
  // engine that kept all its queries: the removed queries' views, trie
  // nodes, cached indexes, and postings are really gone.
  StringInterner in;
  const char* survivor_text = "(?x)-[likes]->(?y)";
  const char* doomed[] = {
      "(?a)-[knows]->(?b); (?b)-[knows]->(?c)",
      "(?a)-[knows]->(?b); (?b)-[likes]->(?c); (?c)-[likes]->(?d)",
      "(?a)-[likes]->(?b); (?b)-[knows]->(?c)",
  };
  for (EngineKind kind : AllEngineKinds()) {
    auto subject = CreateEngine(kind);
    auto control = CreateEngine(kind);
    for (QueryId q = 0; q < 4; ++q) {
      const char* text = q == 0 ? survivor_text : doomed[q - 1];
      subject->AddQuery(q, Parse(text, in));
      control->AddQuery(q, Parse(text, in));
    }

    LabelId knows = in.Intern("knows");
    LabelId likes = in.Intern("likes");
    auto v = [&](int i) { return in.Intern("n" + std::to_string(i)); };
    Rng rng(31);
    for (int i = 0; i < 120; ++i) {
      EdgeUpdate u{v(static_cast<int>(rng.Next(9))),
                   rng.Next(2) == 0 ? likes : knows,
                   v(static_cast<int>(rng.Next(9))), UpdateOp::kAdd};
      subject->ApplyUpdate(u);
      control->ApplyUpdate(u);
    }
    const size_t before_removal = subject->MemoryBytes();
    for (QueryId q = 1; q < 4; ++q) ASSERT_TRUE(subject->RemoveQuery(q));

    const size_t subject_bytes = subject->MemoryBytes();
    const size_t control_bytes = control->MemoryBytes();
    EXPECT_LT(subject_bytes, control_bytes)
        << subject->name() << ": subject " << subject_bytes << " vs control "
        << control_bytes;
    EXPECT_LT(subject_bytes, before_removal) << subject->name();

    // And the survivor still answers: a fresh likes edge triggers it.
    UpdateResult got =
        subject->ApplyUpdate({v(100), likes, v(101), UpdateOp::kAdd});
    UpdateResult want =
        control->ApplyUpdate({v(100), likes, v(101), UpdateOp::kAdd});
    auto count_of = [](const UpdateResult& r, QueryId qid) -> uint64_t {
      for (const auto& [q, n] : r.per_query)
        if (q == qid) return n;
      return 0;
    };
    EXPECT_EQ(count_of(got, 0), count_of(want, 0)) << subject->name();
    EXPECT_EQ(count_of(got, 0), 1u) << subject->name();
  }
}

TEST(ChurnDirected, MixedEventBatchWindowsMatchSequentialByteForByte) {
  // Removals/additions at window boundaries: a scripted mixed stream is
  // replayed (a) sequentially via ApplyUpdate and (b) through ApplyBatch
  // windows with threads, lifecycle events applied between windows. The
  // per-update results must match element for element.
  StringInterner in;
  const char* patterns[] = {
      "(?a)-[knows]->(?b); (?b)-[knows]->(?c); (?c)-[likes]->(?d)",
      "(?a)-[knows]->(?b); (?a)-[likes]->(?c)",
      "(?x)-[likes]->(?y); (?z)-[likes]->(?y)",
      "(?p)-[likes]->(?q)",
      "(?m)-[knows]->(?n)",
  };
  std::vector<QueryPattern> pool;
  for (const char* p : patterns) pool.push_back(Parse(p, in));

  LabelId knows = in.Intern("knows");
  LabelId likes = in.Intern("likes");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  // Script: windows of updates separated by lifecycle events.
  std::vector<StreamEvent> events;
  {
    Rng rng(53);
    QueryId next_qid = 0;
    std::vector<QueryId> live;
    for (; next_qid < 3; ++next_qid) {
      events.push_back(StreamEvent::Add(next_qid, pool[next_qid]));
      live.push_back(next_qid);
    }
    for (int block = 0; block < 8; ++block) {
      for (int i = 0; i < 24; ++i) {
        events.push_back(StreamEvent::Update(
            {v(static_cast<int>(rng.Next(6))), rng.Next(3) == 0 ? likes : knows,
             v(static_cast<int>(rng.Next(6))),
             rng.Next(10) == 0 ? UpdateOp::kDelete : UpdateOp::kAdd}));
      }
      if (!live.empty() && block % 2 == 0) {
        const size_t pick = rng.Next(live.size());
        events.push_back(StreamEvent::Remove(live[pick]));
        live.erase(live.begin() + pick);
      }
      events.push_back(StreamEvent::Add(next_qid, pool[next_qid % pool.size()]));
      live.push_back(next_qid++);
    }
  }

  for (EngineKind kind : AllEngineKinds()) {
    for (const auto& [window, threads] : std::vector<std::pair<size_t, int>>{
             {8, 1}, {16, 4}}) {
      auto sequential = CreateEngine(kind);
      auto batched = CreateEngine(kind);
      batched->SetBatchThreads(threads);

      size_t i = 0;
      while (i < events.size()) {
        const StreamEvent& ev = events[i];
        if (ev.kind == StreamEvent::Kind::kAddQuery) {
          sequential->AddQuery(ev.qid, ev.query);
          batched->AddQuery(ev.qid, ev.query);
          ++i;
          continue;
        }
        if (ev.kind == StreamEvent::Kind::kRemoveQuery) {
          ASSERT_TRUE(sequential->RemoveQuery(ev.qid));
          ASSERT_TRUE(batched->RemoveQuery(ev.qid));
          ++i;
          continue;
        }
        size_t j = i;
        std::vector<EdgeUpdate> run;
        while (j < events.size() && events[j].kind == StreamEvent::Kind::kUpdate)
          run.push_back(events[j++].update);
        std::vector<UpdateResult> expected;
        for (const EdgeUpdate& u : run) expected.push_back(sequential->ApplyUpdate(u));
        size_t pos = 0;
        while (pos < run.size()) {
          const size_t n = std::min(window, run.size() - pos);
          std::vector<UpdateResult> got = batched->ApplyBatch(&run[pos], n);
          ASSERT_EQ(got.size(), n);
          for (size_t k = 0; k < n; ++k) {
            ExpectSameResult(got[k], expected[pos + k],
                             sequential->name() + " window=" +
                                 std::to_string(window) + " threads=" +
                                 std::to_string(threads) + " at update " +
                                 std::to_string(pos + k));
          }
          pos += n;
        }
        i = j;
      }
    }
  }
}

TEST(ChurnDirected, FinalJoinPassesTrackTheLiveQdb) {
  // One pass per (affected query, window) with shared finalization off:
  // after removing one of two affected queries, a window costs one pass
  // instead of two — the removed query must not leave finalize work behind.
  // (q0 and q1 are signature-equal, so the default shared mode collapses
  // them into one pass per window from the start; that mode is asserted
  // separately below and in shared_finalize_test.)
  StringInterner in;
  QueryPattern q0 = Parse("(?a)-[r]->(?b)", in);
  QueryPattern q1 = Parse("(?x)-[r]->(?y)", in);
  LabelId rl = in.Intern("r");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  const EngineKind view_kinds[] = {EngineKind::kTric, EngineKind::kTricPlus,
                                   EngineKind::kInv,  EngineKind::kInvPlus,
                                   EngineKind::kInc,  EngineKind::kIncPlus};
  for (EngineKind kind : view_kinds) {
    auto engine = CreateEngine(kind);
    engine->SetSharedFinalize(false);
    auto shared = CreateEngine(kind);
    engine->AddQuery(0, q0);
    engine->AddQuery(1, q1);
    shared->AddQuery(0, q0);
    shared->AddQuery(1, q1);

    std::vector<EdgeUpdate> window1, window2;
    for (int i = 0; i < 8; ++i)
      window1.push_back({v(i), rl, v(i + 1), UpdateOp::kAdd});
    for (int i = 20; i < 28; ++i)
      window2.push_back({v(i), rl, v(i + 1), UpdateOp::kAdd});

    engine->ApplyBatch(window1.data(), window1.size());
    shared->ApplyBatch(window1.data(), window1.size());
    const uint64_t after_first = engine->final_join_passes();
    EXPECT_EQ(after_first, 2u) << engine->name() << " (two live queries)";
    EXPECT_EQ(shared->final_join_passes(), 1u)
        << shared->name() << " (signature-equal pair shares one pass)";

    ASSERT_TRUE(engine->RemoveQuery(1));
    ASSERT_TRUE(shared->RemoveQuery(1));
    engine->ApplyBatch(window2.data(), window2.size());
    shared->ApplyBatch(window2.data(), window2.size());
    EXPECT_EQ(engine->final_join_passes(), after_first + 1)
        << engine->name() << " (one survivor)";
    EXPECT_EQ(shared->final_join_passes(), 2u)
        << shared->name() << " (survivor runs its own pass)";
    EXPECT_EQ(shared->shared_finalize_groups(), 1u)
        << shared->name() << " (only window 1 fanned out)";
  }
}

TEST(ChurnDirected, LifecyclePreconditionsFailLoudly) {
  StringInterner in;
  QueryPattern valid = Parse("(?a)-[r]->(?b)", in);
  for (EngineKind kind : AllEngineKinds()) {
    auto engine = CreateEngine(kind);
    engine->AddQuery(7, valid);
    EXPECT_TRUE(engine->HasQuery(7));
    EXPECT_FALSE(engine->HasQuery(8));

    // Unknown removals are a clean no-op...
    EXPECT_FALSE(engine->RemoveQuery(8));
    EXPECT_EQ(engine->NumQueries(), 1u);

    // ...but a duplicate id or an invalid pattern dies before any engine
    // state is touched (the previously-unenforced "qid must be fresh").
    EXPECT_DEATH(engine->AddQuery(7, valid), "duplicate query id");
    EXPECT_DEATH(engine->AddQuery(9, QueryPattern{}), "invalid query pattern");

    // Remove-then-re-add with the same id is legal and starts fresh.
    EXPECT_TRUE(engine->RemoveQuery(7));
    engine->AddQuery(7, valid);
    EXPECT_TRUE(engine->HasQuery(7));
  }
}

TEST(ChurnDirected, RunMixedStreamReportsPhasesAndMatchesRunStream) {
  // A mixed stream of pure updates must agree with RunStream's aggregates,
  // and the phase accounting must see every lifecycle event.
  StringInterner in;
  QueryPattern q = Parse("(?a)-[knows]->(?b); (?b)-[knows]->(?c)", in);
  auto interner = std::make_shared<StringInterner>(in);
  UpdateStream stream(interner);
  Rng rng(42);
  LabelId knows = interner->Intern("knows");
  for (int i = 0; i < 150; ++i) {
    stream.Append({interner->Intern("p" + std::to_string(rng.Next(8))), knows,
                   interner->Intern("p" + std::to_string(rng.Next(8))),
                   UpdateOp::kAdd});
  }

  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kInc}) {
    auto plain = CreateEngine(kind);
    plain->AddQuery(0, q);
    RunStats want = RunStream(*plain, stream);

    std::vector<StreamEvent> events;
    events.push_back(StreamEvent::Add(0, q));
    for (const EdgeUpdate& u : stream.updates())
      events.push_back(StreamEvent::Update(u));
    auto mixed = CreateEngine(kind);
    MixedRunStats got = RunMixedStream(*mixed, events);

    EXPECT_EQ(got.updates_applied, want.updates_applied);
    EXPECT_EQ(got.new_embeddings, want.new_embeddings);
    EXPECT_EQ(got.queries_satisfied, want.queries_satisfied);
    EXPECT_EQ(got.queries_added, 1u);
    EXPECT_EQ(got.queries_removed, 0u);
    EXPECT_FALSE(got.timed_out);

    // And batched mixed runs agree with sequential mixed runs.
    std::vector<StreamEvent> churny = events;
    churny.push_back(StreamEvent::Remove(0));
    churny.push_back(StreamEvent::Add(3, q));
    for (const EdgeUpdate& u : stream.updates())
      churny.push_back(StreamEvent::Update(u));

    auto seq_engine = CreateEngine(kind);
    MixedRunStats seq = RunMixedStream(*seq_engine, churny);
    auto batch_engine = CreateEngine(kind);
    RunConfig config;
    config.batch_window = 16;
    config.batch_threads = 4;
    MixedRunStats bat = RunMixedStream(*batch_engine, churny, config);

    EXPECT_EQ(bat.updates_applied, seq.updates_applied);
    EXPECT_EQ(bat.new_embeddings, seq.new_embeddings);
    EXPECT_EQ(bat.queries_added, seq.queries_added);
    EXPECT_EQ(bat.queries_removed, seq.queries_removed);
    EXPECT_FALSE(bat.timed_out);
  }
}

}  // namespace
}  // namespace gstream
