#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/flags.h"
#include "common/hash.h"
#include "common/interning.h"
#include "common/mem_tracker.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"

namespace gstream {
namespace {

TEST(StringInterner, AssignsDenseIdsInOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(StringInterner, InternIsIdempotent) {
  StringInterner interner;
  uint32_t a = interner.Intern("x");
  EXPECT_EQ(interner.Intern("x"), a);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInterner, LookupRoundTrips) {
  StringInterner interner;
  uint32_t id = interner.Intern("knows");
  EXPECT_EQ(interner.Lookup(id), "knows");
}

TEST(StringInterner, FindDoesNotCreate) {
  StringInterner interner;
  EXPECT_EQ(interner.Find("missing"), StringInterner::kNotFound);
  EXPECT_EQ(interner.size(), 0u);
  interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), 0u);
}

TEST(StringInterner, MemoryGrowsWithContent) {
  StringInterner interner;
  size_t empty = interner.MemoryBytes();
  for (int i = 0; i < 100; ++i) interner.Intern("entity_" + std::to_string(i));
  EXPECT_GT(interner.MemoryBytes(), empty);
}

TEST(Hash, Mix64SpreadsSequentialValues) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash, HashIdsDependsOnOrder) {
  uint32_t a[3] = {1, 2, 3};
  uint32_t b[3] = {3, 2, 1};
  EXPECT_NE(HashIds(a, 3), HashIds(b, 3));
}

TEST(Hash, HashIdsDependsOnLength) {
  uint32_t a[3] = {1, 2, 3};
  EXPECT_NE(HashIds(a, 2), HashIds(a, 3));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(1000), b.Next(1000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next(1u << 30) != b.Next(1u << 30)) ++diff;
  EXPECT_GT(diff, 32);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng rng(11);
  ZipfSampler zipf(1000, 1.1);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i)
    if (zipf.Sample(rng) < 10) ++low;
  // With s=1.1 the top-10 ranks should hold a large share of the mass.
  EXPECT_GT(low, total / 5);
}

TEST(Zipf, CoversSupport) {
  Rng rng(13);
  ZipfSampler zipf(4, 1.0);
  std::set<size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(zipf.Sample(rng));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.ElapsedMillis(), 4.0);
}

TEST(MemTracker, AggregatesComponents) {
  MemTracker tracker;
  tracker.Add("views", 100);
  tracker.Add("index", 50);
  tracker.Add("views", 25);
  EXPECT_EQ(tracker.TotalBytes(), 175u);
  EXPECT_EQ(tracker.breakdown().at("views"), 125u);
}

TEST(Flags, ParsesKeyValueAndSwitches) {
  const char* argv[] = {"bin", "--edges=5000", "--full", "--name=snb", "pos1"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("edges", 0), 5000);
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_EQ(flags.GetString("name", ""), "snb");
  EXPECT_FALSE(flags.Has("missing"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"bin"};
  Flags flags = Flags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("sigma", 0.25), 0.25);
  EXPECT_FALSE(flags.GetBool("full", false));
}

TEST(Flags, GetPositiveIntAcceptsValidValues) {
  const char* argv[] = {"bin", "--batch=16", "--threads=4"};
  Flags flags = Flags::Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetPositiveInt("batch", 1), 16);
  EXPECT_EQ(flags.GetPositiveInt("threads", 1), 4);
  EXPECT_EQ(flags.GetPositiveInt("absent", 7), 7);  // default is unchecked
}

TEST(FlagsDeathTest, GetPositiveIntRejectsZeroNegativeAndJunk) {
  const char* argv[] = {"bin", "--batch=0", "--threads=-3", "--seed=12x"};
  Flags flags = Flags::Parse(4, const_cast<char**>(argv));
  EXPECT_EXIT(flags.GetPositiveInt("batch", 1), ::testing::ExitedWithCode(2),
              "--batch must be >= 1");
  EXPECT_EXIT(flags.GetPositiveInt("threads", 1), ::testing::ExitedWithCode(2),
              "--threads must be >= 1");
  EXPECT_EXIT(flags.GetPositiveInt("seed", 1), ::testing::ExitedWithCode(2),
              "expected an integer");
}

TEST(FlagsDeathTest, RejectsDuplicateFlags) {
  // A repeated flag used to let the last occurrence silently win; it is now
  // an error naming the offending flag.
  const char* argv[] = {"bin", "--batch=4", "--batch=8"};
  EXPECT_EXIT(Flags::Parse(3, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--batch given more than once");
  const char* argv2[] = {"bin", "--verbose", "--verbose"};
  EXPECT_EXIT(Flags::Parse(3, const_cast<char**>(argv2)),
              ::testing::ExitedWithCode(2), "--verbose given more than once");
}

TEST(TextTable, AlignsColumnsAndMarksTimeouts) {
  TextTable table({"x", "alg"});
  table.AddRow({"10", TextTable::Num(1.5, 2)});
  table.AddRow({"20", TextTable::Num(std::nan(""), 2)});
  std::string s = table.ToString();
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("10,1.50"), std::string::npos);
}

}  // namespace
}  // namespace gstream
