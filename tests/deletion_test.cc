#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "engine/engine.h"
#include "graphdb/graphdb_engine.h"
#include "query/parser.h"

namespace gstream {
namespace {

/// Deletion semantics (paper §4.3): every engine supports edge deletions —
/// the view-based engines retract the affected tuples from their
/// materialized views, the graph database removes the edge and refreshes its
/// counts. Deletions never trigger notifications; re-added edges report
/// their matches as new again.
class DeletionTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(DeletionTest, DeleteThenReaddReportsMatchAgain) {
  StringInterner in;
  auto engine = CreateEngine(GetParam());
  engine->AddQuery(1, ParsePattern("(?x)-[r]->(?y); (?y)-[s]->(?z)", in).pattern);

  VertexId a = in.Intern("a"), b = in.Intern("b"), c = in.Intern("c");
  LabelId r = in.Intern("r"), s = in.Intern("s");

  engine->ApplyUpdate({a, r, b, UpdateOp::kAdd});
  auto done = engine->ApplyUpdate({b, s, c, UpdateOp::kAdd});
  EXPECT_EQ(done.new_embeddings, 1u);

  // Remove the middle edge: the standing match is gone; re-adding it must be
  // reported as new again.
  auto del = engine->ApplyUpdate({a, r, b, UpdateOp::kDelete});
  EXPECT_TRUE(del.changed);
  auto readd = engine->ApplyUpdate({a, r, b, UpdateOp::kAdd});
  EXPECT_EQ(readd.new_embeddings, 1u);
}

TEST_P(DeletionTest, DeletingAbsentEdgeIsANoOp) {
  StringInterner in;
  auto engine = CreateEngine(GetParam());
  engine->AddQuery(1, ParsePattern("(?x)-[r]->(?y)", in).pattern);
  auto del = engine->ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kDelete});
  EXPECT_FALSE(del.changed);
  auto add = engine->ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_EQ(add.new_embeddings, 1u);
}

TEST_P(DeletionTest, DeletionsDoNotTriggerQueries) {
  StringInterner in;
  auto engine = CreateEngine(GetParam());
  engine->AddQuery(1, ParsePattern("(?x)-[r]->(?y)", in).pattern);
  engine->ApplyUpdate({in.Intern("a"), in.Intern("r"), in.Intern("b"),
                       UpdateOp::kAdd});
  auto del = engine->ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kDelete});
  EXPECT_TRUE(del.changed);
  EXPECT_TRUE(del.triggered.empty());
  EXPECT_EQ(del.new_embeddings, 0u);
}

TEST_P(DeletionTest, PartialRetractionKeepsOtherDerivations) {
  StringInterner in;
  auto engine = CreateEngine(GetParam());
  engine->AddQuery(1, ParsePattern("(?x)-[r]->(?y); (?y)-[s]->(?z)", in).pattern);
  VertexId a1 = in.Intern("a1"), a2 = in.Intern("a2"), b = in.Intern("b"),
           c = in.Intern("c");
  LabelId r = in.Intern("r"), s = in.Intern("s");

  engine->ApplyUpdate({a1, r, b, UpdateOp::kAdd});
  engine->ApplyUpdate({a2, r, b, UpdateOp::kAdd});
  auto both = engine->ApplyUpdate({b, s, c, UpdateOp::kAdd});
  EXPECT_EQ(both.new_embeddings, 2u);

  // Retract one derivation; the other must survive: re-adding the s-edge
  // after deleting it reports only one embedding for the surviving prefix...
  engine->ApplyUpdate({a1, r, b, UpdateOp::kDelete});
  engine->ApplyUpdate({b, s, c, UpdateOp::kDelete});
  auto readd = engine->ApplyUpdate({b, s, c, UpdateOp::kAdd});
  EXPECT_EQ(readd.new_embeddings, 1u);
  // ...and re-adding the deleted prefix edge brings back exactly one more.
  auto prefix_back = engine->ApplyUpdate({a1, r, b, UpdateOp::kAdd});
  EXPECT_EQ(prefix_back.new_embeddings, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, DeletionTest,
    ::testing::Values(EngineKind::kTric, EngineKind::kTricPlus, EngineKind::kInv,
                      EngineKind::kInvPlus, EngineKind::kInc, EngineKind::kIncPlus,
                      EngineKind::kGraphDb, EngineKind::kNaive),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      std::string name = EngineKindName(info.param);
      for (auto& c : name)
        if (c == '+') c = 'P';
      return name;
    });

/// Randomized mixed add/delete streams: all engines vs the oracle. Deletes
/// pick random live edges; correctness of the retraction shows up in the
/// adds that follow.
TEST(DeletionAgreement, MixedStreamsMatchOracle) {
  StringInterner in;
  Rng rng(451);

  const char* patterns[] = {
      "(?a)-[l0]->(?b)",
      "(?a)-[l0]->(?b); (?b)-[l0]->(?c)",
      "(?a)-[l0]->(?b); (?b)-[l1]->(?c)",
      "(?a)-[l1]->(?b); (?b)-[l0]->(?a)",
      "(?a)-[l0]->(v1)",
      "(?c)-[l0]->(?x); (?c)-[l1]->(?y)",
      "(?a)-[l0]->(?b); (?b)-[l0]->(?c); (?c)-[l0]->(?d)",
  };
  auto oracle = CreateEngine(EngineKind::kNaive);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));
  for (QueryId qid = 0; qid < 7; ++qid) {
    auto r = ParsePattern(patterns[qid], in);
    ASSERT_TRUE(r.ok);
    oracle->AddQuery(qid, r.pattern);
    for (auto& e : engines) e->AddQuery(qid, r.pattern);
  }

  std::vector<EdgeUpdate> live;
  for (int i = 0; i < 400; ++i) {
    EdgeUpdate u;
    if (!live.empty() && rng.Flip(0.3)) {
      // Delete a random live edge.
      size_t pick = rng.Next(live.size());
      u = live[pick];
      u.op = UpdateOp::kDelete;
      live.erase(live.begin() + pick);
    } else {
      u = EdgeUpdate{in.Intern("v" + std::to_string(rng.Next(5))),
                     in.Intern("l" + std::to_string(rng.Next(2))),
                     in.Intern("v" + std::to_string(rng.Next(5))), UpdateOp::kAdd};
      live.push_back(u);
    }
    UpdateResult expected = oracle->ApplyUpdate(u);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(u);
      ASSERT_EQ(got.changed, expected.changed)
          << e->name() << " at op " << i << (u.op == UpdateOp::kDelete ? " DEL " : " ADD ")
          << in.Lookup(u.src) << "-" << in.Lookup(u.label) << "->" << in.Lookup(u.dst);
      ASSERT_EQ(got.per_query, expected.per_query)
          << e->name() << " at op " << i << (u.op == UpdateOp::kDelete ? " DEL " : " ADD ")
          << in.Lookup(u.src) << "-" << in.Lookup(u.label) << "->" << in.Lookup(u.dst);
    }
  }
}

}  // namespace
}  // namespace gstream
