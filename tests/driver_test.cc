#include <gtest/gtest.h>

#include "engine/driver.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace {

UpdateStream TinyStream(StringInterner& in, size_t n) {
  UpdateStream stream;
  LabelId r = in.Intern("r");
  for (uint32_t i = 0; i < n; ++i)
    stream.Append({in.Intern("v" + std::to_string(i)), r,
                   in.Intern("v" + std::to_string(i + 1)), UpdateOp::kAdd});
  return stream;
}

TEST(Driver, IndexQueriesCountsAndTimes) {
  StringInterner in;
  auto engine = CreateEngine(EngineKind::kTric);
  std::vector<QueryPattern> queries;
  for (int i = 0; i < 5; ++i)
    queries.push_back(ParsePattern("(?x)-[r" + std::to_string(i) + "]->(?y)", in).pattern);
  IndexStats stats = IndexQueries(*engine, queries);
  EXPECT_EQ(stats.queries_indexed, 5u);
  EXPECT_EQ(engine->NumQueries(), 5u);
  EXPECT_GE(stats.index_millis, 0.0);
  EXPECT_GE(stats.MsecPerQuery(), 0.0);
}

TEST(Driver, RunStreamAppliesEverythingWithoutBudget) {
  StringInterner in;
  auto engine = CreateEngine(EngineKind::kTricPlus);
  engine->AddQuery(1, ParsePattern("(?x)-[r]->(?y)", in).pattern);
  UpdateStream stream = TinyStream(in, 50);
  RunStats stats = RunStream(*engine, stream);
  EXPECT_EQ(stats.updates_applied, 50u);
  EXPECT_FALSE(stats.timed_out);
  EXPECT_EQ(stats.new_embeddings, 50u);
  EXPECT_EQ(stats.queries_satisfied, 1u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.MsecPerUpdate(), 0.0);
}

TEST(Driver, BudgetStopsLongRuns) {
  StringInterner in;
  auto engine = CreateEngine(EngineKind::kNaive);  // slowest engine
  // Several chain queries over one label: per-update naive recount.
  for (QueryId q = 0; q < 8; ++q)
    engine->AddQuery(
        q, ParsePattern("(?a)-[r]->(?b); (?b)-[r]->(?c); (?c)-[r]->(?d)", in).pattern);
  UpdateStream stream;
  LabelId r = in.Intern("r");
  // Dense-ish graph so the oracle has real work per update.
  for (uint32_t i = 0; i < 60; ++i)
    for (uint32_t j = 0; j < 60; ++j)
      if (i != j) stream.Append({i, r, j, UpdateOp::kAdd});
  RunConfig config;
  config.budget_seconds = 0.05;
  RunStats stats = RunStream(*engine, stream, config);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_LT(stats.updates_applied, stream.size());
}

TEST(Driver, SatisfiedQueriesMatchSigma) {
  workload::SnbConfig sc;
  sc.num_updates = 2500;
  workload::Workload w = workload::GenerateSnb(sc);
  workload::QueryGenConfig qc;
  qc.num_queries = 40;
  qc.selectivity = 0.25;
  workload::QuerySet qs = workload::GenerateQueries(w, qc);

  auto engine = CreateEngine(EngineKind::kTricPlus);
  IndexQueries(*engine, qs.queries);
  RunStats stats = RunStream(*engine, w.stream);
  // Exactly the planted fraction is ultimately satisfied.
  EXPECT_EQ(stats.queries_satisfied, qs.num_planted);
}

TEST(Budget, ExceededTripsAndSticks) {
  Budget budget;
  EXPECT_FALSE(budget.ExceededNow());  // no deadline set
  budget.SetDeadlineAfter(-1.0);       // already past
  EXPECT_TRUE(budget.ExceededNow());
  EXPECT_TRUE(budget.ExceededNow());
  budget.SetDeadlineAfter(100.0);
  EXPECT_FALSE(budget.ExceededNow());
  budget.ClearDeadline();
  EXPECT_FALSE(budget.ExceededNow());
}

TEST(Budget, SampledPollEventuallyTrips) {
  Budget budget;
  budget.SetDeadlineAfter(-1.0);
  bool tripped = false;
  for (int i = 0; i < 2000 && !tripped; ++i) tripped = budget.Exceeded();
  EXPECT_TRUE(tripped);
}

}  // namespace
}  // namespace gstream
