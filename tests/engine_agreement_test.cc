#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/rng.h"
#include "engine/engine.h"
#include "graph/stream.h"
#include "query/parser.h"
#include "workload/bio.h"
#include "workload/query_gen.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace gstream {
namespace {

/// The keystone property suite: every engine must emit exactly the same
/// per-update (query id, #new embeddings) vector as the naive oracle on
/// randomized streams and query sets. One disagreement anywhere in the delta
/// machinery (trie cascades, seeded joins, recompute diffs) fails here.
struct AgreementCase {
  const char* name;
  const char* dataset;      // snb | taxi | bio
  size_t stream_len;
  size_t num_queries;
  double avg_size;
  double selectivity;
  double overlap;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const AgreementCase& c) {
  return os << c.name;
}

class EngineAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

workload::Workload MakeWorkload(const AgreementCase& c) {
  if (std::string(c.dataset) == "snb") {
    workload::SnbConfig config;
    config.num_updates = c.stream_len;
    config.seed = c.seed;
    config.num_places = 10;
    config.num_tags = 10;
    return workload::GenerateSnb(config);
  }
  if (std::string(c.dataset) == "taxi") {
    workload::TaxiConfig config;
    config.num_updates = c.stream_len;
    config.seed = c.seed;
    config.num_zones = 12;
    return workload::GenerateTaxi(config);
  }
  workload::BioConfig config;
  config.num_updates = c.stream_len;
  config.seed = c.seed;
  config.growth_coefficient = 1200;  // small vertex set => dense, cyclic graph
  return workload::GenerateBio(config);
}

TEST_P(EngineAgreementTest, AllEnginesMatchTheOracle) {
  const AgreementCase& c = GetParam();
  workload::Workload w = MakeWorkload(c);

  workload::QueryGenConfig qcfg;
  qcfg.num_queries = c.num_queries;
  qcfg.avg_size = c.avg_size;
  qcfg.selectivity = c.selectivity;
  qcfg.overlap = c.overlap;
  qcfg.seed = c.seed * 31 + 7;
  workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

  auto oracle = CreateEngine(EngineKind::kNaive);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));

  for (QueryId qid = 0; qid < qs.queries.size(); ++qid) {
    oracle->AddQuery(qid, qs.queries[qid]);
    for (auto& e : engines) e->AddQuery(qid, qs.queries[qid]);
  }

  for (size_t i = 0; i < w.stream.size(); ++i) {
    const EdgeUpdate& u = w.stream[i];
    UpdateResult expected = oracle->ApplyUpdate(u);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(u);
      ASSERT_EQ(got.changed, expected.changed)
          << e->name() << " vs oracle at update " << i;
      ASSERT_EQ(got.per_query, expected.per_query)
          << e->name() << " disagrees with the oracle at update " << i << " ("
          << w.interner->Lookup(u.src) << " -" << w.interner->Lookup(u.label) << "-> "
          << w.interner->Lookup(u.dst) << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedStreams, EngineAgreementTest,
    ::testing::Values(
        AgreementCase{"SnbSmall", "snb", 220, 25, 3.0, 0.5, 0.35, 1},
        AgreementCase{"SnbMedium", "snb", 400, 40, 5.0, 0.25, 0.35, 2},
        AgreementCase{"SnbHighOverlap", "snb", 300, 30, 4.0, 0.4, 0.8, 3},
        AgreementCase{"SnbNoOverlap", "snb", 300, 30, 4.0, 0.4, 0.0, 4},
        AgreementCase{"SnbLongQueries", "snb", 260, 20, 7.0, 0.3, 0.5, 5},
        AgreementCase{"TaxiSmall", "taxi", 300, 30, 4.0, 0.3, 0.35, 6},
        AgreementCase{"TaxiTinyQueries", "taxi", 350, 30, 2.0, 0.5, 0.2, 7},
        AgreementCase{"BioDense", "bio", 180, 20, 3.0, 0.4, 0.35, 8},
        AgreementCase{"BioChains", "bio", 150, 15, 4.0, 0.5, 0.5, 9},
        AgreementCase{"BioSingleLabelStress", "bio", 120, 25, 2.0, 0.6, 0.6, 10}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name;
    });

/// Directed hand-built streams that historically break delta engines:
/// repeated labels, self loops, literal anchors arriving late.
TEST(EngineAgreementDirected, RepeatedLabelChainsOnTinyAlphabet) {
  StringInterner in;
  auto oracle = CreateEngine(EngineKind::kNaive);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));

  const char* patterns[] = {
      "(?a)-[r]->(?b); (?b)-[r]->(?c)",
      "(?a)-[r]->(?b); (?b)-[r]->(?c); (?c)-[r]->(?d)",
      "(?a)-[r]->(?b); (?b)-[r]->(?a)",
      "(?x)-[r]->(?x)",
      "(?a)-[r]->(v1)",
      "(v0)-[r]->(?b); (?b)-[r]->(?c)",
  };
  QueryId qid = 0;
  for (const char* p : patterns) {
    auto r = ParsePattern(p, in);
    ASSERT_TRUE(r.ok) << r.error;
    oracle->AddQuery(qid, r.pattern);
    for (auto& e : engines) e->AddQuery(qid, r.pattern);
    ++qid;
  }

  // All r-edges over a 5-vertex universe, in a scrambled deterministic order.
  LabelId rl = in.Intern("r");
  std::vector<EdgeUpdate> updates;
  for (uint32_t s = 0; s < 5; ++s)
    for (uint32_t t = 0; t < 5; ++t)
      updates.push_back({in.Intern("v" + std::to_string(s)), rl,
                         in.Intern("v" + std::to_string(t)), UpdateOp::kAdd});
  Rng rng(99);
  std::shuffle(updates.begin(), updates.end(), rng.engine());

  for (size_t i = 0; i < updates.size(); ++i) {
    UpdateResult expected = oracle->ApplyUpdate(updates[i]);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(updates[i]);
      ASSERT_EQ(got.per_query, expected.per_query)
          << e->name() << " at update " << i;
    }
  }
}

TEST(EngineAgreementDirected, MixedLabelsWithLiteralHubs) {
  StringInterner in;
  auto oracle = CreateEngine(EngineKind::kNaive);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));

  const char* patterns[] = {
      "(?f)-[hasMod]->(?p); (?p)-[posted]->(pst1)",
      "(?f)-[hasMod]->(?p); (?p)-[posted]->(pst2)",
      "(?c)-[reply]->(pst2)",
      "(?f)-[hasMod]->(?p)",
      "(com1)-[hasCreator]->(?v); (?v)-[posted]->(pst1); (pst1)-[containedIn]->(?w)",
      "(?f)-[hasMod]->(?p); (?p)-[posted]->(pst1); (pst1)-[containedIn]->(?w)",
  };
  QueryId qid = 0;
  for (const char* p : patterns) {
    auto r = ParsePattern(p, in);
    ASSERT_TRUE(r.ok) << r.error;
    oracle->AddQuery(qid, r.pattern);
    for (auto& e : engines) e->AddQuery(qid, r.pattern);
    ++qid;
  }

  // The paper's Fig. 4/6/9 world, streamed in an adversarial order.
  struct E {
    const char* s;
    const char* l;
    const char* t;
  };
  const E stream[] = {
      {"f1", "hasMod", "p1"},   {"p1", "posted", "pst1"},
      {"p2", "posted", "pst1"}, {"f2", "hasMod", "p1"},
      {"p1", "posted", "pst2"}, {"com1", "reply", "pst2"},
      {"com1", "hasCreator", "p1"}, {"pst1", "containedIn", "f1"},
      {"f2", "hasMod", "p2"},   {"pst1", "containedIn", "f2"},
      {"com2", "reply", "pst2"}, {"p3", "posted", "pst2"},
  };
  size_t i = 0;
  for (const auto& [s, l, t] : stream) {
    EdgeUpdate u{in.Intern(s), in.Intern(l), in.Intern(t), UpdateOp::kAdd};
    UpdateResult expected = oracle->ApplyUpdate(u);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(u);
      ASSERT_EQ(got.per_query, expected.per_query)
          << e->name() << " at update " << i << " (" << s << " -" << l << "-> " << t
          << ")";
    }
    ++i;
  }
}

}  // namespace
}  // namespace gstream
