#include <gtest/gtest.h>

#include <memory>

#include "common/interning.h"
#include "engine/driver.h"
#include "engine/engine.h"
#include "query/parser.h"

namespace gstream {
namespace {

/// Every scenario below must hold for every engine — TRIC's delta
/// propagation, INV's recompute-diff, INC's seeded joins, the graph database
/// and the naive oracle all implement the same continuous semantics.
class EngineBehaviorTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override { engine_ = CreateEngine(GetParam()); }

  void AddQuery(QueryId qid, const std::string& pattern) {
    auto r = ParsePattern(pattern, in_);
    ASSERT_TRUE(r.ok) << r.error;
    engine_->AddQuery(qid, r.pattern);
  }

  UpdateResult Apply(const std::string& s, const std::string& l,
                     const std::string& t) {
    return engine_->ApplyUpdate(
        {in_.Intern(s), in_.Intern(l), in_.Intern(t), UpdateOp::kAdd});
  }

  StringInterner in_;
  std::unique_ptr<ContinuousEngine> engine_;
};

TEST_P(EngineBehaviorTest, SingleEdgeQueryTriggersOnMatch) {
  AddQuery(1, "(?x)-[knows]->(?y)");
  auto r1 = Apply("a", "likes", "b");
  EXPECT_TRUE(r1.triggered.empty());
  auto r2 = Apply("a", "knows", "b");
  ASSERT_EQ(r2.triggered.size(), 1u);
  EXPECT_EQ(r2.triggered[0], 1u);
  EXPECT_EQ(r2.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, DuplicateUpdateIsNoOp) {
  AddQuery(1, "(?x)-[r]->(?y)");
  EXPECT_EQ(Apply("a", "r", "b").new_embeddings, 1u);
  auto dup = Apply("a", "r", "b");
  EXPECT_FALSE(dup.changed);
  EXPECT_EQ(dup.new_embeddings, 0u);
}

TEST_P(EngineBehaviorTest, ChainCompletesOnLastEdge) {
  AddQuery(1, "(?x)-[r]->(?y); (?y)-[s]->(?z); (?z)-[t]->(?w)");
  EXPECT_TRUE(Apply("a", "r", "b").triggered.empty());
  EXPECT_TRUE(Apply("b", "s", "c").triggered.empty());
  auto done = Apply("c", "t", "d");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, ChainCompletesInAnyArrivalOrder) {
  AddQuery(1, "(?x)-[r]->(?y); (?y)-[s]->(?z)");
  EXPECT_TRUE(Apply("b", "s", "c").triggered.empty());  // suffix first
  auto done = Apply("a", "r", "b");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, LiteralConstraintFilters) {
  AddQuery(1, "(?x)-[posted]->(pst1)");
  EXPECT_TRUE(Apply("u1", "posted", "pst2").triggered.empty());
  EXPECT_EQ(Apply("u1", "posted", "pst1").new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, NewEmbeddingsCountMultiplicity) {
  AddQuery(1, "(?x)-[r]->(?y); (?y)-[s]->(?z)");
  Apply("a1", "r", "b");
  Apply("a2", "r", "b");
  // One s-edge completes two embeddings (x=a1 and x=a2).
  auto done = Apply("b", "s", "c");
  EXPECT_EQ(done.new_embeddings, 2u);
}

TEST_P(EngineBehaviorTest, ContinuousNotificationKeepsFiring) {
  AddQuery(1, "(?x)-[r]->(?y)");
  EXPECT_EQ(Apply("a", "r", "b").new_embeddings, 1u);
  EXPECT_EQ(Apply("c", "r", "d").new_embeddings, 1u);
  EXPECT_EQ(Apply("e", "r", "f").new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, MultipleQueriesShareAnUpdate) {
  AddQuery(1, "(?x)-[knows]->(?y)");
  AddQuery(2, "(?x)-[knows]->(?y); (?y)-[posted]->(?p)");
  AddQuery(3, "(?x)-[likes]->(?p)");
  auto r = Apply("a", "knows", "b");
  ASSERT_EQ(r.triggered.size(), 1u);
  EXPECT_EQ(r.triggered[0], 1u);
  auto r2 = Apply("b", "posted", "p1");
  ASSERT_EQ(r2.triggered.size(), 1u);
  EXPECT_EQ(r2.triggered[0], 2u);
}

TEST_P(EngineBehaviorTest, StarQueryNeedsAllSpokes) {
  AddQuery(1, "(?c)-[r]->(?x); (?c)-[s]->(?y); (?z)-[t]->(?c)");
  EXPECT_TRUE(Apply("c", "r", "x").triggered.empty());
  EXPECT_TRUE(Apply("c", "s", "y").triggered.empty());
  auto done = Apply("z", "t", "c");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, CycleQueryRequiresClosure) {
  AddQuery(1, "(?a)-[r]->(?b); (?b)-[r]->(?c); (?c)-[r]->(?a)");
  EXPECT_TRUE(Apply("x", "r", "y").triggered.empty());
  EXPECT_TRUE(Apply("y", "r", "z").triggered.empty());
  // A non-closing edge must not trigger.
  EXPECT_TRUE(Apply("z", "r", "w").triggered.empty());
  auto done = Apply("z", "r", "x");
  ASSERT_EQ(done.triggered.size(), 1u);
  // Three rotations of the same triangle are three distinct assignments.
  EXPECT_EQ(done.new_embeddings, 3u);
}

TEST_P(EngineBehaviorTest, TwoCycleWithRepeatedVariable) {
  AddQuery(1, "(?x)-[knows]->(?y); (?y)-[knows]->(?x)");
  EXPECT_TRUE(Apply("a", "knows", "b").triggered.empty());
  auto done = Apply("b", "knows", "a");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 2u);  // (a,b) and (b,a)
}

TEST_P(EngineBehaviorTest, SelfLoopEdgePattern) {
  AddQuery(1, "(?x)-[r]->(?x)");
  EXPECT_TRUE(Apply("a", "r", "b").triggered.empty());
  auto done = Apply("a", "r", "a");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, SharedVariableAcrossBranches) {
  // Fig. 3's shape: two people check into the same place.
  AddQuery(1,
           "(?p1)-[knows]->(?p2); (?p1)-[checksIn]->(?plc);"
           "(?p2)-[checksIn]->(?plc)");
  Apply("p1", "knows", "p2");
  Apply("p1", "checksIn", "rio");
  EXPECT_TRUE(Apply("p2", "checksIn", "oslo").triggered.empty());  // different place
  auto done = Apply("p2", "checksIn", "rio");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, HomomorphicSemanticsAllowVertexReuse) {
  AddQuery(1, "(?x)-[r]->(?y); (?z)-[r]->(?y)");
  // One edge binds both x and z to the same vertex: valid homomorphism.
  auto r = Apply("a", "r", "b");
  ASSERT_EQ(r.triggered.size(), 1u);
  EXPECT_EQ(r.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, DoubleEdgeBetweenSameVertices) {
  AddQuery(1, "(?x)-[r]->(?y); (?x)-[s]->(?y)");
  Apply("a", "r", "b");
  auto done = Apply("a", "s", "b");
  ASSERT_EQ(done.triggered.size(), 1u);
  EXPECT_EQ(done.new_embeddings, 1u);
}

TEST_P(EngineBehaviorTest, TriggeredIsSortedAndUnique) {
  AddQuery(3, "(?x)-[r]->(?y)");
  AddQuery(1, "(?x)-[r]->(?y); (?y)-[s]->(?z)");
  AddQuery(2, "(?a)-[r]->(?b)");
  Apply("m", "s", "n");
  auto res = Apply("l", "r", "m");
  ASSERT_EQ(res.triggered.size(), 3u);
  EXPECT_EQ(res.triggered, (std::vector<QueryId>{1, 2, 3}));
  for (size_t i = 0; i < res.per_query.size(); ++i)
    EXPECT_EQ(res.per_query[i].first, res.triggered[i]);
}

TEST_P(EngineBehaviorTest, UpdateArrivingTwiceInDifferentRoles) {
  // The same edge can seed two different query-edge positions.
  AddQuery(1, "(?x)-[r]->(?y); (?y)-[r]->(?z)");
  EXPECT_TRUE(Apply("a", "r", "b").triggered.empty());
  auto done = Apply("b", "r", "c");
  EXPECT_EQ(done.new_embeddings, 1u);
  // A self-referential chain a->a completes two ways at once.
  auto self_done = Apply("c", "r", "c");
  EXPECT_EQ(self_done.new_embeddings, 2u);  // (b,c,c) and (c,c,c)
}

TEST_P(EngineBehaviorTest, EmptyEngineIgnoresUpdates) {
  auto r = Apply("a", "r", "b");
  EXPECT_TRUE(r.changed);
  EXPECT_TRUE(r.triggered.empty());
  EXPECT_EQ(r.new_embeddings, 0u);
}

TEST_P(EngineBehaviorTest, MemoryBytesNonZeroAndGrows) {
  AddQuery(1, "(?x)-[r]->(?y); (?y)-[s]->(?z)");
  size_t before = engine_->MemoryBytes();
  EXPECT_GT(before, 0u);
  for (int i = 0; i < 100; ++i)
    Apply("a" + std::to_string(i), "r", "b" + std::to_string(i));
  EXPECT_GT(engine_->MemoryBytes(), before);
}

TEST_P(EngineBehaviorTest, NumQueriesReflectsRegistrations) {
  EXPECT_EQ(engine_->NumQueries(), 0u);
  AddQuery(1, "(?x)-[r]->(?y)");
  AddQuery(2, "(?x)-[s]->(?y)");
  EXPECT_EQ(engine_->NumQueries(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineBehaviorTest,
    ::testing::Values(EngineKind::kTric, EngineKind::kTricPlus, EngineKind::kInv,
                      EngineKind::kInvPlus, EngineKind::kInc, EngineKind::kIncPlus,
                      EngineKind::kGraphDb, EngineKind::kNaive),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      std::string name = EngineKindName(info.param);
      for (auto& c : name)
        if (c == '+') c = 'P';
      return name;
    });

}  // namespace
}  // namespace gstream
