#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "engine/engine.h"
#include "query/parser.h"

namespace gstream {
namespace {

/// Adversarial micro-universes: every engine against the oracle on dense
/// random streams with tiny alphabets, where multi-position trie hits,
/// self-loops and literal collisions are the norm rather than the exception.
struct StressCase {
  const char* name;
  int vertices;
  int labels;
  size_t updates;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const StressCase& c) {
  return os << c.name;
}

class EngineStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(EngineStressTest, DenseRandomStreamsAgree) {
  const StressCase& c = GetParam();
  StringInterner in;
  Rng rng(c.seed);

  // Query zoo over the tiny alphabet: chains, stars, cycles, self-loops,
  // literal anchors — sizes 1..4.
  std::vector<std::string> patterns = {
      "(?a)-[l0]->(?b)",
      "(?a)-[l0]->(?b); (?b)-[l0]->(?c)",
      "(?a)-[l0]->(?b); (?b)-[l1]->(?c)",
      "(?a)-[l1]->(?b); (?b)-[l0]->(?a)",
      "(?a)-[l0]->(?a)",
      "(?a)-[l0]->(v0)",
      "(v1)-[l1]->(?b); (?b)-[l0]->(?c)",
      "(?c)-[l0]->(?x); (?c)-[l1]->(?y)",
      "(?x)-[l0]->(?c); (?y)-[l1]->(?c)",
      "(?a)-[l0]->(?b); (?b)-[l1]->(?c); (?c)-[l0]->(?a)",
      "(?a)-[l0]->(?b); (?b)-[l0]->(?c); (?c)-[l0]->(?d)",
      "(v0)-[l0]->(?b); (?b)-[l1]->(v1)",
  };

  auto oracle = CreateEngine(EngineKind::kNaive);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));
  for (QueryId qid = 0; qid < patterns.size(); ++qid) {
    auto r = ParsePattern(patterns[qid], in);
    ASSERT_TRUE(r.ok) << r.error;
    oracle->AddQuery(qid, r.pattern);
    for (auto& e : engines) e->AddQuery(qid, r.pattern);
  }

  for (size_t i = 0; i < c.updates; ++i) {
    EdgeUpdate u{
        in.Intern("v" + std::to_string(rng.Next(c.vertices))),
        in.Intern("l" + std::to_string(rng.Next(c.labels))),
        in.Intern("v" + std::to_string(rng.Next(c.vertices))),
        UpdateOp::kAdd,
    };
    UpdateResult expected = oracle->ApplyUpdate(u);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(u);
      ASSERT_EQ(got.changed, expected.changed) << e->name() << " update " << i;
      ASSERT_EQ(got.per_query, expected.per_query)
          << e->name() << " diverged at update " << i << ": ("
          << in.Lookup(u.src) << ")-[" << in.Lookup(u.label) << "]->("
          << in.Lookup(u.dst) << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MicroUniverses, EngineStressTest,
    ::testing::Values(StressCase{"Tiny3x1", 3, 1, 60, 21},
                      StressCase{"Small4x2", 4, 2, 120, 22},
                      StressCase{"Medium6x2", 6, 2, 200, 23},
                      StressCase{"SelfLoopHeavy2x2", 2, 2, 40, 24},
                      StressCase{"Wide8x1", 8, 1, 180, 25},
                      StressCase{"TwoLabels5x2", 5, 2, 160, 26}),
    [](const ::testing::TestParamInfo<StressCase>& info) { return info.param.name; });

/// Duplicate-heavy stream: most updates are repeats; engines must treat them
/// as no-ops bit-for-bit.
TEST(EngineStressDirected, DuplicateStorm) {
  StringInterner in;
  auto oracle = CreateEngine(EngineKind::kNaive);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) engines.push_back(CreateEngine(kind));
  auto q = ParsePattern("(?a)-[l]->(?b); (?b)-[l]->(?c)", in);
  oracle->AddQuery(0, q.pattern);
  for (auto& e : engines) e->AddQuery(0, q.pattern);

  Rng rng(31);
  for (int i = 0; i < 150; ++i) {
    EdgeUpdate u{in.Intern("v" + std::to_string(rng.Next(3))), in.Intern("l"),
                 in.Intern("v" + std::to_string(rng.Next(3))), UpdateOp::kAdd};
    UpdateResult expected = oracle->ApplyUpdate(u);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(u);
      ASSERT_EQ(got.changed, expected.changed) << e->name();
      ASSERT_EQ(got.per_query, expected.per_query) << e->name();
    }
  }
}

}  // namespace
}  // namespace gstream
