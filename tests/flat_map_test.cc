#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "matview/relation.h"

namespace gstream {
namespace {

// ---------------------------------------------------------------- PostingList

TEST(PostingList, InlineThenSpill) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.HeapBytes(), 0u);

  list.Append(10);
  list.Append(20);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.HeapBytes(), 0u);  // still inline

  list.Append(30);  // spills
  EXPECT_EQ(list.size(), 3u);
  EXPECT_GT(list.HeapBytes(), 0u);

  RowIdSpan span = list.Span();
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], 10u);
  EXPECT_EQ(span[1], 20u);
  EXPECT_EQ(span[2], 30u);
}

TEST(PostingList, MovePreservesContentAndEmptiesSource) {
  PostingList list;
  for (uint32_t i = 0; i < 100; ++i) list.Append(i);
  PostingList moved = std::move(list);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(moved.Span()[99], 99u);
  EXPECT_EQ(list.size(), 0u);  // NOLINT(bugprone-use-after-move)
  list.Append(7);              // reusable after move
  EXPECT_EQ(list.Span()[0], 7u);
}

// ------------------------------------------------------------- FlatPostingMap

TEST(FlatPostingMap, InsertProbeGrow) {
  FlatPostingMap map;
  EXPECT_TRUE(map.Probe(1).empty());

  const size_t n = 10'000;
  for (uint32_t k = 0; k < n; ++k) {
    map.Add(k, k * 2);
    map.Add(k, k * 2 + 1);
  }
  EXPECT_EQ(map.size(), n);
  for (uint32_t k = 0; k < n; ++k) {
    RowIdSpan span = map.Probe(k);
    ASSERT_EQ(span.size(), 2u) << k;
    EXPECT_EQ(span[0], k * 2);
    EXPECT_EQ(span[1], k * 2 + 1);
  }
  EXPECT_TRUE(map.Probe(n + 5).empty());
}

TEST(FlatPostingMap, CollisionHeavyKeys) {
  // Keys strided by a large power of two collide in small tables.
  FlatPostingMap map;
  std::vector<VertexId> keys;
  for (uint32_t i = 0; i < 512; ++i) keys.push_back(i << 16);
  for (VertexId k : keys) map.Add(k, k + 1);
  for (VertexId k : keys) {
    RowIdSpan span = map.Probe(k);
    ASSERT_EQ(span.size(), 1u);
    EXPECT_EQ(span[0], k + 1);
  }
}

TEST(FlatPostingMap, SentinelKeyIsSupported) {
  // kNoVertex is a legal key (the inverted indexes key "?var" terms by it).
  FlatPostingMap map;
  map.Add(kNoVertex, 42);
  map.Add(kNoVertex, 43);
  map.Add(7, 1);
  EXPECT_EQ(map.size(), 2u);
  RowIdSpan span = map.Probe(kNoVertex);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], 42u);
  EXPECT_EQ(span[1], 43u);
}

TEST(FlatPostingMap, ReserveDoesNotLoseEntries) {
  FlatPostingMap map;
  for (uint32_t k = 0; k < 100; ++k) map.Add(k, k);
  map.Reserve(100'000);
  for (uint32_t k = 0; k < 100; ++k) {
    ASSERT_EQ(map.Probe(k).size(), 1u);
    EXPECT_EQ(map.Probe(k)[0], k);
  }
}

TEST(FlatPostingMap, ClearResets) {
  FlatPostingMap map;
  for (uint32_t k = 0; k < 64; ++k) map.Add(k, k);
  map.Add(kNoVertex, 9);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.Probe(3).empty());
  EXPECT_TRUE(map.Probe(kNoVertex).empty());
  map.Add(3, 33);  // reusable after Clear
  EXPECT_EQ(map.Probe(3)[0], 33u);
}

TEST(FlatPostingMap, PostingsStayAscending) {
  // The join kernels binary-search postings by row id; insertion in
  // ascending row order must be preserved across spills and rehashes.
  FlatPostingMap map;
  Rng rng(99);
  std::vector<std::vector<uint32_t>> expected(37);
  for (uint32_t row = 0; row < 5000; ++row) {
    VertexId key = static_cast<VertexId>(rng.Next(37));
    map.Add(key, row);
    expected[key].push_back(row);
  }
  for (VertexId k = 0; k < 37; ++k) {
    RowIdSpan span = map.Probe(k);
    ASSERT_EQ(span.size(), expected[k].size());
    EXPECT_TRUE(std::is_sorted(span.begin(), span.end()));
    EXPECT_TRUE(std::equal(span.begin(), span.end(), expected[k].begin()));
  }
}

// ----------------------------------------------------------------- FlatRowSet

TEST(FlatRowSet, InsertRejectsEqualAcceptsDistinct) {
  // Simulate two-column rows stored externally.
  std::vector<std::pair<uint32_t, uint32_t>> rows;
  FlatRowSet set;
  auto insert = [&](uint32_t a, uint32_t b) {
    rows.emplace_back(a, b);
    const uint32_t idx = static_cast<uint32_t>(rows.size() - 1);
    uint32_t key[2] = {a, b};
    const bool ok = set.Insert(
        HashIds(key, 2), idx,
        [&](uint32_t existing) { return rows[existing] == rows[idx]; },
        [&](uint32_t existing) {
          uint32_t k[2] = {rows[existing].first, rows[existing].second};
          return HashIds(k, 2);
        });
    if (!ok) rows.pop_back();
    return ok;
  };
  EXPECT_TRUE(insert(1, 2));
  EXPECT_FALSE(insert(1, 2));
  EXPECT_TRUE(insert(2, 1));
  EXPECT_EQ(set.size(), 2u);
}

// --------------------------------------------------------------- FlatMap<K,V>

struct CollidingHash {
  size_t operator()(uint32_t) const { return 7; }  // everything collides
};

TEST(FlatMap, GetOrCreateFindGrow) {
  FlatMap<uint32_t, std::vector<int>, VertexIdHash> map;
  for (uint32_t k = 0; k < 3000; ++k) map.GetOrCreate(k).push_back(static_cast<int>(k));
  EXPECT_EQ(map.size(), 3000u);
  for (uint32_t k = 0; k < 3000; ++k) {
    const std::vector<int>* v = map.Find(k);
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->size(), 1u);
    EXPECT_EQ((*v)[0], static_cast<int>(k));
  }
  EXPECT_EQ(map.Find(99999), nullptr);
}

TEST(FlatMap, SurvivesPathologicalHash) {
  FlatMap<uint32_t, int, CollidingHash> map;
  for (uint32_t k = 0; k < 200; ++k) map.GetOrCreate(k) = static_cast<int>(k) + 1;
  for (uint32_t k = 0; k < 200; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), static_cast<int>(k) + 1);
  }
  EXPECT_EQ(map.size(), 200u);
}

TEST(FlatMap, MoveOnlyValues) {
  FlatMap<uint32_t, std::unique_ptr<int>, VertexIdHash> map;
  for (uint32_t k = 0; k < 100; ++k) map.GetOrCreate(k) = std::make_unique<int>(k);
  for (uint32_t k = 0; k < 100; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(**map.Find(k), static_cast<int>(k));
  }
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap<uint32_t, int, VertexIdHash> map;
  for (uint32_t k = 0; k < 500; ++k) map.GetOrCreate(k) = 1;
  size_t count = 0;
  map.ForEach([&](uint32_t, int v) { count += v; });
  EXPECT_EQ(count, 500u);
}

TEST(FlatMap, EraseTombstonesKeepProbeChainsIntact) {
  // Pathological hash: every key shares one probe chain, so erasing from
  // the middle must not hide the keys behind the tombstone.
  FlatMap<uint32_t, int, CollidingHash> map;
  for (uint32_t k = 0; k < 60; ++k) map.GetOrCreate(k) = static_cast<int>(k);
  for (uint32_t k = 0; k < 60; k += 2) EXPECT_TRUE(map.Erase(k));
  EXPECT_FALSE(map.Erase(0));  // already gone
  EXPECT_EQ(map.size(), 30u);
  for (uint32_t k = 0; k < 60; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.Find(k), nullptr) << k;
    } else {
      ASSERT_NE(map.Find(k), nullptr) << k;
      EXPECT_EQ(*map.Find(k), static_cast<int>(k));
    }
  }
  // Reinsertion reuses tombstoned slots and finds the fresh value.
  for (uint32_t k = 0; k < 60; k += 2) map.GetOrCreate(k) = -static_cast<int>(k);
  EXPECT_EQ(map.size(), 60u);
  for (uint32_t k = 0; k < 60; k += 2) EXPECT_EQ(*map.Find(k), -static_cast<int>(k));
}

TEST(FlatMap, EraseDestroysTheValueInPlace) {
  FlatMap<uint32_t, std::shared_ptr<int>, VertexIdHash> map;
  auto alive = std::make_shared<int>(7);
  map.GetOrCreate(1) = alive;
  EXPECT_EQ(alive.use_count(), 2);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_EQ(alive.use_count(), 1);  // the slot's copy died with the erase
}

TEST(FlatMap, CompactReleasesTombstonedAndExcessCapacity) {
  FlatMap<uint32_t, uint64_t, VertexIdHash> map;
  for (uint32_t k = 0; k < 4'000; ++k) map.GetOrCreate(k) = k;
  const size_t loaded = map.MemoryBytes();
  for (uint32_t k = 10; k < 4'000; ++k) EXPECT_TRUE(map.Erase(k));
  // Tombstones keep the capacity (and the bytes) until compaction.
  EXPECT_EQ(map.MemoryBytes(), loaded);
  map.Compact();
  EXPECT_LT(map.MemoryBytes(), loaded / 16);
  EXPECT_EQ(map.size(), 10u);
  for (uint32_t k = 0; k < 10; ++k) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), k);
  }

  // An emptied map releases everything.
  for (uint32_t k = 0; k < 10; ++k) EXPECT_TRUE(map.Erase(k));
  map.Compact();
  EXPECT_EQ(map.MemoryBytes(), sizeof(map));
  // And stays usable afterwards.
  map.GetOrCreate(5) = 55;
  EXPECT_EQ(*map.Find(5), 55u);
}

TEST(FlatMap, EraseHeavyChurnDoesNotDegradeToInfiniteProbes) {
  // Erase/insert cycles at a stable size: tombstones count against the
  // load factor, so the table rehashes instead of filling up with them.
  FlatMap<uint32_t, uint32_t, VertexIdHash> map;
  uint32_t next = 0;
  for (uint32_t k = 0; k < 64; ++k) map.GetOrCreate(next++) = 1;
  for (uint32_t round = 0; round < 2'000; ++round) {
    EXPECT_TRUE(map.Erase(next - 64));
    map.GetOrCreate(next++) = 1;
    ASSERT_EQ(map.size(), 64u);
  }
  for (uint32_t k = next - 64; k < next; ++k) ASSERT_NE(map.Find(k), nullptr);
}

// --------------------------------------- Relation dedup equivalence (flat set
// vs. reference std::set), including post-RemoveRowsWhere generations.

// --------------------------------------------- group-probe SIMD/scalar parity

std::vector<uint32_t> Lanes(flat_internal::LaneMask m) {
  std::vector<uint32_t> lanes;
  for (; static_cast<bool>(m); m.Clear()) lanes.push_back(m.Lane());
  return lanes;
}

TEST(GroupProbeParity, ActiveBackendMatchesScalarOnFuzzedControlBytes) {
  // The active Group backend (SSE2 / NEON / scalar depending on the build)
  // must report bit-identical match and empty lanes to the always-compiled
  // scalar reference, for arbitrary control-byte contents.
  Rng rng(20260728);
  alignas(16) int8_t ctrl[flat_internal::kGroupWidth];
  for (int iter = 0; iter < 20'000; ++iter) {
    for (auto& c : ctrl) {
      // Bias towards empties and towards one hot fragment so matches happen.
      const uint64_t roll = rng.Next(10);
      c = roll < 3 ? flat_internal::kCtrlEmpty
                   : static_cast<int8_t>(rng.Next(roll < 6 ? 4 : 128));
    }
    const int8_t h2 = static_cast<int8_t>(rng.Next(128));
    const flat_internal::Group active(ctrl);
    const flat_internal::ScalarGroup ref(ctrl);
    EXPECT_EQ(Lanes(active.Match(h2)), Lanes(ref.Match(h2)));
    EXPECT_EQ(Lanes(active.MatchEmpty()), Lanes(ref.MatchEmpty()));
  }
}

// ----------------------------------------- randomized container-model fuzzing
//
// The same test binary is built twice in CI (default SIMD and
// -DGSTREAM_NO_SIMD=ON); identical reference-model behavior in both builds
// proves the SIMD and scalar probe paths return identical results across
// inserts, growth, and Reserve.

TEST(FlatPostingMapFuzz, MatchesReferenceModelAcrossInsertsGrowthAndReserve) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed * 977);
    FlatPostingMap map;
    std::unordered_map<VertexId, std::vector<uint32_t>> model;
    const size_t universe = 1 + rng.Next(2'000);
    const size_t ops = 6'000;
    for (uint32_t i = 0; i < ops; ++i) {
      const uint64_t roll = rng.Next(100);
      if (roll < 2) {
        map.Reserve(rng.Next(4'000));  // must never perturb contents
      } else {
        // Include the sentinel key now and then.
        VertexId k = roll < 5 ? kNoVertex : static_cast<VertexId>(rng.Next(universe));
        map.Add(k, i);
        model[k].push_back(i);
      }
      if (i % 701 == 0) {
        for (const auto& [k, rows] : model) {
          RowIdSpan span = map.Probe(k);
          ASSERT_EQ(std::vector<uint32_t>(span.begin(), span.end()), rows)
              << "seed " << seed << " op " << i;
        }
      }
    }
    ASSERT_EQ(map.size(), model.size());
    // Misses: keys outside the inserted universe must probe empty.
    for (uint32_t k = 0; k < 64; ++k)
      EXPECT_TRUE(map.Probe(static_cast<VertexId>(universe + 1 + k)).empty());
    // ForEach visits exactly the model.
    size_t visited = 0;
    map.ForEach([&](VertexId k, RowIdSpan span) {
      ++visited;
      auto it = model.find(k);
      ASSERT_NE(it, model.end());
      EXPECT_EQ(span.size(), it->second.size());
    });
    EXPECT_EQ(visited, model.size());
  }
}

TEST(FlatRowSetFuzz, DedupDecisionsMatchReferenceModel) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    FlatRowSet set;
    std::vector<uint64_t> stored;          // values by row index
    std::set<uint64_t> model;
    const size_t universe = 1 + rng.Next(3'000);
    // Deliberately weak hash (low entropy) to force candidate collisions.
    const auto hash_of_value = [](uint64_t v) { return Mix64(v % 512); };
    const auto hash_of_row = [&](uint32_t idx) { return hash_of_value(stored[idx]); };
    for (uint32_t i = 0; i < 8'000; ++i) {
      if (rng.Next(100) < 2) set.Reserve(rng.Next(6'000), hash_of_row);
      const uint64_t value = rng.Next(universe);
      const bool inserted = set.Insert(
          hash_of_value(value), static_cast<uint32_t>(stored.size()),
          [&](uint32_t idx) { return stored[idx] == value; }, hash_of_row);
      EXPECT_EQ(inserted, model.insert(value).second) << "seed " << seed;
      if (inserted) stored.push_back(value);
      ASSERT_EQ(set.size(), model.size());
    }
  }
}

TEST(FlatMapFuzz, MatchesReferenceModelAcrossInsertsErasesGrowthAndCompact) {
  struct Hash {
    size_t operator()(uint64_t k) const { return Mix64(k % 997); }  // collisions
  };
  for (uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    FlatMap<uint64_t, uint64_t, Hash> map;
    std::unordered_map<uint64_t, uint64_t> model;
    const size_t universe = 1 + rng.Next(4'000);
    for (uint32_t i = 0; i < 8'000; ++i) {
      const uint64_t roll = rng.Next(100);
      if (roll < 2) {
        map.Reserve(rng.Next(8'000));
      } else if (roll < 4) {
        map.Compact();
      } else if (roll < 55) {
        const uint64_t k = rng.Next(universe);
        map.GetOrCreate(k) = i;
        model[k] = i;
      } else if (roll < 75) {
        const uint64_t k = rng.Next(universe * 2);  // ~50% misses
        ASSERT_EQ(map.Erase(k), model.erase(k) > 0) << "seed " << seed;
      } else {
        const uint64_t k = rng.Next(universe * 2);  // ~50% misses
        const uint64_t* found = map.Find(k);
        auto it = model.find(k);
        ASSERT_EQ(found != nullptr, it != model.end()) << "seed " << seed;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    EXPECT_EQ(map.size(), model.size());
    size_t visited = 0;
    map.ForEach([&](uint64_t k, uint64_t v) {
      ++visited;
      auto it = model.find(k);
      ASSERT_NE(it, model.end());
      EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, model.size());
  }
}

TEST(RelationDedupEquivalence, RandomizedAgainstReferenceSet) {
  Rng rng(4242);
  const uint32_t arity = 3;
  Relation rel(arity);
  std::set<std::vector<VertexId>> reference;

  auto check_equal = [&]() {
    ASSERT_EQ(rel.NumRows(), reference.size());
    std::set<std::vector<VertexId>> actual;
    for (size_t i = 0; i < rel.NumRows(); ++i)
      actual.emplace(rel.Row(i), rel.Row(i) + arity);
    EXPECT_EQ(actual, reference);
  };

  for (int round = 0; round < 3; ++round) {
    for (int step = 0; step < 4000; ++step) {
      // Small universe so duplicates are frequent.
      std::vector<VertexId> row = {static_cast<VertexId>(rng.Next(12)),
                                   static_cast<VertexId>(rng.Next(12)),
                                   static_cast<VertexId>(rng.Next(12))};
      const bool inserted = rel.Append(row);
      EXPECT_EQ(inserted, reference.insert(row).second);
    }
    check_equal();

    // Retraction bumps the generation and rebuilds the dedup set; dedup
    // must stay exact afterwards.
    const VertexId victim = static_cast<VertexId>(rng.Next(12));
    const uint64_t gen_before = rel.generation();
    size_t removed = rel.RemoveRowsWhere(
        [&](const VertexId* r) { return r[0] == victim; });
    size_t ref_removed = 0;
    for (auto it = reference.begin(); it != reference.end();) {
      if ((*it)[0] == victim) {
        it = reference.erase(it);
        ++ref_removed;
      } else {
        ++it;
      }
    }
    EXPECT_EQ(removed, ref_removed);
    if (removed > 0) {
      EXPECT_GT(rel.generation(), gen_before);
    }
    check_equal();
  }
}

TEST(RelationReserve, AppendAllDeduplicatesAcrossRelations) {
  Relation a(2), b(2);
  a.Append({1, 2});
  a.Append({3, 4});
  b.Append({3, 4});
  b.Append({5, 6});
  a.Reserve(10);
  EXPECT_EQ(a.AppendAll(b), 1u);  // {3,4} already present
  EXPECT_EQ(a.NumRows(), 3u);
}

TEST(RelationSelfAppend, RowPointerIntoOwnStorageIsSafe) {
  Relation r(2);
  r.Append({1, 2});
  // Force many appends of rows aliasing r's own buffer across growth.
  for (uint32_t i = 0; i < 200; ++i) {
    std::vector<VertexId> fresh = {i + 10, i + 11};
    r.Append(fresh);
    r.Append(r.Row(0));  // duplicate of {1,2}: must be rejected, not corrupt
  }
  EXPECT_EQ(r.At(0, 0), 1u);
  EXPECT_EQ(r.At(0, 1), 2u);
}

}  // namespace
}  // namespace gstream
