#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/stream.h"

namespace gstream {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  StringInterner interner_;
  Graph g_;

  VertexId V(const std::string& s) { return interner_.Intern(s); }
};

TEST_F(GraphTest, AddEdgeCreatesVerticesAndAdjacency) {
  ASSERT_TRUE(g_.AddEdge(V("a"), V("knows"), V("b")));
  EXPECT_EQ(g_.NumEdges(), 1u);
  EXPECT_EQ(g_.NumVertices(), 2u);
  ASSERT_EQ(g_.Out(V("a")).size(), 1u);
  EXPECT_EQ(g_.Out(V("a"))[0].dst, V("b"));
  ASSERT_EQ(g_.In(V("b")).size(), 1u);
  EXPECT_EQ(g_.In(V("b"))[0].src, V("a"));
}

TEST_F(GraphTest, DuplicateEdgeRejected) {
  EXPECT_TRUE(g_.AddEdge(V("a"), V("r"), V("b")));
  EXPECT_FALSE(g_.AddEdge(V("a"), V("r"), V("b")));
  EXPECT_EQ(g_.NumEdges(), 1u);
  EXPECT_EQ(g_.Out(V("a")).size(), 1u);
}

TEST_F(GraphTest, ParallelEdgesWithDifferentLabelsAllowed) {
  EXPECT_TRUE(g_.AddEdge(V("a"), V("likes"), V("b")));
  EXPECT_TRUE(g_.AddEdge(V("a"), V("knows"), V("b")));
  EXPECT_EQ(g_.NumEdges(), 2u);
  EXPECT_EQ(g_.Out(V("a")).size(), 2u);
}

TEST_F(GraphTest, HasEdgeChecksLabel) {
  g_.AddEdge(V("a"), V("r"), V("b"));
  EXPECT_TRUE(g_.HasEdge(V("a"), V("r"), V("b")));
  EXPECT_FALSE(g_.HasEdge(V("a"), V("s"), V("b")));
  EXPECT_FALSE(g_.HasEdge(V("b"), V("r"), V("a")));
}

TEST_F(GraphTest, RemoveEdgeUpdatesAdjacency) {
  g_.AddEdge(V("a"), V("r"), V("b"));
  g_.AddEdge(V("a"), V("r"), V("c"));
  ASSERT_TRUE(g_.RemoveEdge(V("a"), V("r"), V("b")));
  EXPECT_EQ(g_.NumEdges(), 1u);
  ASSERT_EQ(g_.Out(V("a")).size(), 1u);
  EXPECT_EQ(g_.Out(V("a"))[0].dst, V("c"));
  EXPECT_TRUE(g_.In(V("b")).empty());
  EXPECT_FALSE(g_.RemoveEdge(V("a"), V("r"), V("b")));
}

TEST_F(GraphTest, SelfLoopSupported) {
  ASSERT_TRUE(g_.AddEdge(V("x"), V("r"), V("x")));
  EXPECT_EQ(g_.NumVertices(), 1u);
  EXPECT_EQ(g_.Out(V("x")).size(), 1u);
  EXPECT_EQ(g_.In(V("x")).size(), 1u);
}

TEST_F(GraphTest, ApplyDispatchesOnOp) {
  EdgeUpdate add{V("a"), V("r"), V("b"), UpdateOp::kAdd};
  EXPECT_TRUE(g_.Apply(add));
  EdgeUpdate del{V("a"), V("r"), V("b"), UpdateOp::kDelete};
  EXPECT_TRUE(g_.Apply(del));
  EXPECT_EQ(g_.NumEdges(), 0u);
}

TEST_F(GraphTest, UnknownVertexHasEmptyAdjacency) {
  EXPECT_TRUE(g_.Out(V("ghost")).empty());
  EXPECT_TRUE(g_.In(V("ghost")).empty());
}

TEST(UpdateStreamTest, ToGraphMaterializesAllUpdates) {
  auto interner = std::make_shared<StringInterner>();
  UpdateStream stream(interner);
  VertexId a = interner->Intern("a"), b = interner->Intern("b"),
           c = interner->Intern("c");
  LabelId r = interner->Intern("r");
  stream.Append({a, r, b, UpdateOp::kAdd});
  stream.Append({b, r, c, UpdateOp::kAdd});
  Graph g = stream.ToGraph();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(a, r, b));
  EXPECT_TRUE(g.HasEdge(b, r, c));
}

TEST(UpdateStreamTest, CountVerticesOverPrefix) {
  auto interner = std::make_shared<StringInterner>();
  UpdateStream stream(interner);
  VertexId a = interner->Intern("a"), b = interner->Intern("b"),
           c = interner->Intern("c");
  LabelId r = interner->Intern("r");
  stream.Append({a, r, b, UpdateOp::kAdd});
  stream.Append({a, r, c, UpdateOp::kAdd});
  EXPECT_EQ(stream.CountVertices(1), 2u);
  EXPECT_EQ(stream.CountVertices(2), 3u);
  EXPECT_EQ(stream.CountVertices(100), 3u);  // clamped
}

TEST(UpdateStreamTest, TruncateShortensStream) {
  auto interner = std::make_shared<StringInterner>();
  UpdateStream stream(interner);
  LabelId r = interner->Intern("r");
  for (uint32_t i = 0; i < 10; ++i)
    stream.Append({i, r, i + 1, UpdateOp::kAdd});
  stream.Truncate(4);
  EXPECT_EQ(stream.size(), 4u);
  stream.Truncate(100);  // no-op
  EXPECT_EQ(stream.size(), 4u);
}

TEST(EdgeKeyTest, HashIgnoresOpCompareIgnoresOp) {
  EdgeUpdate add{1, 2, 3, UpdateOp::kAdd};
  EdgeUpdate del{1, 2, 3, UpdateOp::kDelete};
  EXPECT_EQ(EdgeKeyHash{}(add), EdgeKeyHash{}(del));
  EXPECT_TRUE(EdgeKeyEq{}(add, del));
}

}  // namespace
}  // namespace gstream
