#include <gtest/gtest.h>

#include "common/interning.h"
#include "graphdb/executor.h"
#include "graphdb/graphdb_engine.h"
#include "graphdb/store.h"
#include "query/parser.h"

namespace gstream {
namespace {

using graphdb::ExecPlan;
using graphdb::GraphDbEngine;
using graphdb::GraphStore;
using graphdb::MatchExecutor;
using graphdb::PlanQuery;

class GraphDbTest : public ::testing::Test {
 protected:
  StringInterner in_;
  GraphStore store_;

  VertexId V(const std::string& s) { return in_.Intern(s); }
  void Edge(const std::string& s, const std::string& l, const std::string& t) {
    store_.AddEdge(V(s), V(l), V(t));
  }
  uint64_t Count(const std::string& pattern) {
    auto r = ParsePattern(pattern, in_);
    EXPECT_TRUE(r.ok) << r.error;
    MatchExecutor exec(&store_);
    return exec.CountMatches(r.pattern, PlanQuery(r.pattern));
  }
};

TEST_F(GraphDbTest, StoreAdjacencyByLabel) {
  Edge("a", "r", "b");
  Edge("a", "r", "c");
  Edge("a", "s", "d");
  EXPECT_EQ(store_.OutNeighbors(V("a"), V("r")).size(), 2u);
  EXPECT_EQ(store_.OutNeighbors(V("a"), V("s")).size(), 1u);
  EXPECT_EQ(store_.InNeighbors(V("b"), V("r")).size(), 1u);
  EXPECT_EQ(store_.EdgesByLabel(V("r")).size(), 2u);
}

TEST_F(GraphDbTest, StoreRemoveEdge) {
  Edge("a", "r", "b");
  ASSERT_TRUE(store_.RemoveEdge(V("a"), V("r"), V("b")));
  EXPECT_TRUE(store_.OutNeighbors(V("a"), V("r")).empty());
  EXPECT_TRUE(store_.EdgesByLabel(V("r")).empty());
  EXPECT_EQ(store_.NumEdges(), 0u);
}

TEST_F(GraphDbTest, SingleEdgeVariables) {
  Edge("a", "knows", "b");
  Edge("b", "knows", "c");
  EXPECT_EQ(Count("(?x)-[knows]->(?y)"), 2u);
}

TEST_F(GraphDbTest, LiteralEndpointRestricts) {
  Edge("a", "knows", "b");
  Edge("c", "knows", "b");
  Edge("a", "knows", "d");
  EXPECT_EQ(Count("(?x)-[knows]->(b)"), 2u);
  EXPECT_EQ(Count("(a)-[knows]->(?y)"), 2u);
  EXPECT_EQ(Count("(a)-[knows]->(b)"), 1u);
  EXPECT_EQ(Count("(a)-[knows]->(z)"), 0u);
}

TEST_F(GraphDbTest, ChainJoinsOnSharedVariable) {
  Edge("a", "r", "b");
  Edge("b", "s", "c");
  Edge("b", "s", "d");
  EXPECT_EQ(Count("(?x)-[r]->(?y); (?y)-[s]->(?z)"), 2u);
}

TEST_F(GraphDbTest, HomomorphismAllowsSameVertexForDistinctVars) {
  Edge("a", "knows", "a2");
  Edge("a2", "knows", "a");
  // x=a,y=a2,z=a is a valid homomorphism (z and x both bind a).
  EXPECT_EQ(Count("(?x)-[knows]->(?y); (?y)-[knows]->(?z)"), 2u);
}

TEST_F(GraphDbTest, RepeatedVariableForcesCycle) {
  Edge("a", "r", "b");
  Edge("b", "r", "a");
  Edge("b", "r", "c");
  EXPECT_EQ(Count("(?x)-[r]->(?y); (?y)-[r]->(?x)"), 2u);  // (a,b) and (b,a)
}

TEST_F(GraphDbTest, TriangleCycle) {
  Edge("a", "r", "b");
  Edge("b", "r", "c");
  Edge("c", "r", "a");
  EXPECT_EQ(Count("(?x)-[r]->(?y); (?y)-[r]->(?z); (?z)-[r]->(?x)"), 3u);
}

TEST_F(GraphDbTest, SelfLoopQueryEdge) {
  Edge("a", "r", "a");
  Edge("a", "r", "b");
  EXPECT_EQ(Count("(?x)-[r]->(?x)"), 1u);
}

TEST_F(GraphDbTest, StarQuery) {
  Edge("c", "r", "x");
  Edge("c", "r", "y");
  Edge("z", "s", "c");
  EXPECT_EQ(Count("(?c)-[r]->(?a); (?c)-[r]->(?b); (?w)-[s]->(?c)"), 4u);
}

TEST_F(GraphDbTest, DisconnectedPatternIsCrossProduct) {
  Edge("a", "r", "b");
  Edge("c", "s", "d");
  Edge("e", "s", "f");
  EXPECT_EQ(Count("(?x)-[r]->(?y); (?u)-[s]->(?v)"), 2u);
}

TEST_F(GraphDbTest, CountLimitStopsEarly) {
  for (int i = 0; i < 50; ++i) Edge("a" + std::to_string(i), "r", "hub");
  auto r = ParsePattern("(?x)-[r]->(?y)", in_);
  MatchExecutor exec(&store_);
  EXPECT_EQ(exec.CountMatches(r.pattern, PlanQuery(r.pattern), 10), 10u);
}

TEST_F(GraphDbTest, EnumerateYieldsAssignments) {
  Edge("a", "r", "b");
  Edge("a", "r", "c");
  auto r = ParsePattern("(a)-[r]->(?y)", in_);
  MatchExecutor exec(&store_);
  std::vector<std::vector<VertexId>> rows;
  exec.Enumerate(r.pattern, PlanQuery(r.pattern),
                 [&](const std::vector<VertexId>& a) {
                   rows.push_back(a);
                   return true;
                 });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], V("a"));  // literal bound
}

TEST_F(GraphDbTest, PlanPrefersLiteralEdges) {
  auto r = ParsePattern("(?x)-[r]->(?y); (?y)-[s]->(lit)", in_);
  ExecPlan plan = PlanQuery(r.pattern);
  ASSERT_EQ(plan.edge_order.size(), 2u);
  EXPECT_EQ(plan.edge_order[0], 1u);  // edge with the literal goes first
}

TEST(GraphDbEngineTest, ReportsNewEmbeddingsPerUpdate) {
  StringInterner in;
  GraphDbEngine engine;
  auto r = ParsePattern("(?x)-[r]->(?y); (?y)-[s]->(?z)", in);
  ASSERT_TRUE(r.ok);
  engine.AddQuery(7, r.pattern);

  LabelId rl = in.Intern("r"), sl = in.Intern("s");
  VertexId a = in.Intern("a"), b = in.Intern("b"), c = in.Intern("c");

  auto res1 = engine.ApplyUpdate({a, rl, b, UpdateOp::kAdd});
  EXPECT_TRUE(res1.changed);
  EXPECT_TRUE(res1.triggered.empty());

  auto res2 = engine.ApplyUpdate({b, sl, c, UpdateOp::kAdd});
  ASSERT_EQ(res2.triggered.size(), 1u);
  EXPECT_EQ(res2.triggered[0], 7u);
  EXPECT_EQ(res2.new_embeddings, 1u);

  // Duplicate is a no-op.
  auto res3 = engine.ApplyUpdate({b, sl, c, UpdateOp::kAdd});
  EXPECT_FALSE(res3.changed);
  EXPECT_TRUE(res3.triggered.empty());
}

TEST(GraphDbEngineTest, UnaffectedQueriesNotEvaluated) {
  StringInterner in;
  GraphDbEngine engine;
  auto r1 = ParsePattern("(?x)-[r]->(?y)", in);
  auto r2 = ParsePattern("(?x)-[zzz]->(?y)", in);
  engine.AddQuery(1, r1.pattern);
  engine.AddQuery(2, r2.pattern);
  auto res = engine.ApplyUpdate({in.Intern("a"), in.Intern("r"), in.Intern("b"),
                                 UpdateOp::kAdd});
  ASSERT_EQ(res.triggered.size(), 1u);
  EXPECT_EQ(res.triggered[0], 1u);
}

TEST(GraphDbEngineTest, DeletionLowersCountsAndReaddTriggersAgain) {
  StringInterner in;
  GraphDbEngine engine;
  auto r = ParsePattern("(?x)-[r]->(?y)", in);
  engine.AddQuery(1, r.pattern);
  VertexId a = in.Intern("a"), b = in.Intern("b");
  LabelId rl = in.Intern("r");

  auto add = engine.ApplyUpdate({a, rl, b, UpdateOp::kAdd});
  EXPECT_EQ(add.new_embeddings, 1u);
  auto del = engine.ApplyUpdate({a, rl, b, UpdateOp::kDelete});
  EXPECT_TRUE(del.changed);
  auto readd = engine.ApplyUpdate({a, rl, b, UpdateOp::kAdd});
  EXPECT_EQ(readd.new_embeddings, 1u);
}

TEST(GraphDbEngineTest, MidStreamQueryRegistrationSeesOnlyFutureMatches) {
  StringInterner in;
  GraphDbEngine engine;
  VertexId a = in.Intern("a"), b = in.Intern("b"), c = in.Intern("c");
  LabelId rl = in.Intern("r");
  engine.ApplyUpdate({a, rl, b, UpdateOp::kAdd});

  auto r = ParsePattern("(?x)-[r]->(?y)", in);
  engine.AddQuery(1, r.pattern);
  // The pre-existing embedding (a,b) is not re-reported.
  auto res = engine.ApplyUpdate({b, rl, c, UpdateOp::kAdd});
  EXPECT_EQ(res.new_embeddings, 1u);
}

TEST(GraphDbEngineTest, MemoryGrowsWithGraph) {
  StringInterner in;
  GraphDbEngine engine;
  size_t before = engine.MemoryBytes();
  LabelId rl = in.Intern("r");
  for (uint32_t i = 0; i < 200; ++i)
    engine.ApplyUpdate({i, rl, i + 1, UpdateOp::kAdd});
  EXPECT_GT(engine.MemoryBytes(), before);
}

}  // namespace
}  // namespace gstream
