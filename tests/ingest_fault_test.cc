#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/interning.h"
#include "engine/engine.h"
#include "graph/update.h"
#include "ingest/fault_injector.h"
#include "ingest/gsb_writer.h"
#include "ingest/pipeline.h"
#include "query/parser.h"

namespace gstream {
namespace ingest {
namespace {

/// Fault-injection suite for the `.gsb` replay path. The central property is
/// the never-crash / never-double-count contract: for EVERY corrupted image
/// the pipeline must either (a) refuse to open with a clean error, (b) fail
/// the replay with a clean error (CorruptPolicy::kFail), or (c) quarantine
/// the damage and finish (kSkip) — and in every case the records it applies
/// are a subset of the originals, so counters never exceed the clean run's.
///
/// The exhaustive leg flips every single byte of a small image under both
/// policies; CI runs this file under ASan/UBSan and TSan, so "no crash" also
/// means no UB and no silent memory corruption.

// A small adds-only stream (monotone: any applied subset of the records
// yields new_embeddings <= the clean run's total, which is the quantitative
// no-double-count check).
struct TestStream {
  StringInterner interner;
  std::vector<EdgeUpdate> updates;
};

TestStream MakeAddsOnlyStream() {
  TestStream s;
  const LabelId knows = s.interner.Intern("knows");
  const LabelId likes = s.interner.Intern("likes");
  std::vector<VertexId> verts;
  for (int i = 0; i < 10; ++i)
    verts.push_back(s.interner.Intern("p" + std::to_string(i)));
  for (size_t i = 0; i < 40; ++i) {
    EdgeUpdate u;
    u.src = verts[i % verts.size()];
    u.label = (i % 3 == 0) ? likes : knows;
    u.dst = verts[(i * 7 + 3) % verts.size()];
    u.op = UpdateOp::kAdd;
    s.updates.push_back(u);
  }
  return s;
}

std::vector<uint8_t> EncodeTestStream(const TestStream& s) {
  GsbWriterOptions opt;
  opt.records_per_block = 8;
  opt.strings_per_block = 4;
  return EncodeGsb(s.interner, s.updates, opt);
}

struct ReplayOutcome {
  bool open_ok = false;
  std::string open_error;
  IngestStats stats;
};

// Opens `image` and replays it through a fresh TRIC+ engine with two fixed
// queries parsed against the stream's reconstructed dictionary.
ReplayOutcome RunImage(std::vector<uint8_t> image, CorruptPolicy policy) {
  ReplayOutcome out;
  MemorySource src(std::move(image));
  IngestSession session;
  out.open_ok = session.Open(src, policy);
  if (!out.open_ok) {
    out.open_error = session.error();
    return out;
  }
  auto engine = CreateEngine(EngineKind::kTricPlus);
  QueryId qid = 0;
  for (const char* text : {"(?a)-[knows]->(?b); (?b)-[knows]->(?c)",
                           "(?a)-[likes]->(?b); (?b)-[knows]->(?a)"}) {
    ParseResult pr = ParsePattern(text, session.mutable_interner());
    EXPECT_TRUE(pr.ok) << pr.error;
    engine->AddQuery(qid++, pr.pattern);
  }
  IngestOptions opts;
  opts.batch_window = 4;
  opts.on_corrupt = policy;
  out.stats = session.Replay(*engine, opts);
  return out;
}

// Invariants every completed kSkip replay must satisfy relative to the
// clean baseline.
void ExpectSkipInvariants(const ReplayOutcome& r, const IngestStats& base,
                          const std::string& what) {
  ASSERT_FALSE(r.stats.failed) << what << ": " << r.stats.error;
  const uint64_t total = base.run.updates_applied;
  EXPECT_LE(r.stats.run.updates_applied, total) << what;
  // Accounting closes: applied + shed + missing == header record count.
  EXPECT_EQ(r.stats.run.updates_applied + r.stats.ring.records_shed +
                r.stats.records_missing,
            total)
      << what;
  // Monotone adds-only stream: a subset of the records can never produce
  // more embeddings than the clean run (double-count detector).
  EXPECT_LE(r.stats.run.new_embeddings, base.run.new_embeddings) << what;
  // Undetected damage doesn't exist: either the integrity machinery saw
  // something (CRC, quarantine, or the header record-count cross-check —
  // which is what catches block-boundary-aligned truncation), or the replay
  // is byte-identical to the clean one.
  if (r.stats.crc_mismatches == 0 && r.stats.blocks_quarantined == 0 &&
      r.stats.records_missing == 0) {
    EXPECT_EQ(r.stats.run.updates_applied, total) << what;
    EXPECT_EQ(r.stats.run.new_embeddings, base.run.new_embeddings) << what;
  }
}

class IngestFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stream_ = MakeAddsOnlyStream();
    image_ = EncodeTestStream(stream_);
    ReplayOutcome clean = RunImage(image_, CorruptPolicy::kFail);
    ASSERT_TRUE(clean.open_ok) << clean.open_error;
    ASSERT_FALSE(clean.stats.failed) << clean.stats.error;
    ASSERT_EQ(clean.stats.run.updates_applied, stream_.updates.size());
    baseline_ = clean.stats;
  }

  TestStream stream_;
  std::vector<uint8_t> image_;
  IngestStats baseline_;
};

TEST_F(IngestFaultTest, EveryByteFlipIsHandledUnderSkip) {
  for (size_t pos = 0; pos < image_.size(); ++pos) {
    auto corrupted = image_;
    corrupted[pos] ^= 0xFF;
    ReplayOutcome r = RunImage(std::move(corrupted), CorruptPolicy::kSkip);
    const std::string what = "skip flip @" + std::to_string(pos);
    if (!r.open_ok) {
      // Header or dictionary damage: clean refusal, never a crash.
      EXPECT_FALSE(r.open_error.empty()) << what;
      continue;
    }
    ExpectSkipInvariants(r, baseline_, what);
  }
}

TEST_F(IngestFaultTest, EveryByteFlipIsHandledUnderFail) {
  for (size_t pos = 0; pos < image_.size(); ++pos) {
    auto corrupted = image_;
    corrupted[pos] ^= 0xFF;
    ReplayOutcome r = RunImage(std::move(corrupted), CorruptPolicy::kFail);
    const std::string what = "fail flip @" + std::to_string(pos);
    if (!r.open_ok) {
      EXPECT_FALSE(r.open_error.empty()) << what;
      continue;
    }
    if (r.stats.failed) {
      EXPECT_FALSE(r.stats.error.empty()) << what;
      continue;
    }
    // A flip the integrity machinery legitimately cannot see (e.g. the
    // reserved block-header byte) must leave the results untouched.
    EXPECT_EQ(r.stats.run.updates_applied, baseline_.run.updates_applied)
        << what;
    EXPECT_EQ(r.stats.run.new_embeddings, baseline_.run.new_embeddings) << what;
  }
}

TEST_F(IngestFaultTest, TruncationSweepNeverCrashes) {
  for (size_t cut = 1; cut <= image_.size(); cut += 5) {
    FaultInjector fi(1);
    auto corrupted = image_;
    fi.Truncate(corrupted, cut);
    for (CorruptPolicy policy : {CorruptPolicy::kSkip, CorruptPolicy::kFail}) {
      ReplayOutcome r = RunImage(corrupted, policy);
      const std::string what = "truncate " + std::to_string(cut) + " policy " +
                               std::to_string(static_cast<int>(policy));
      if (!r.open_ok) {
        EXPECT_FALSE(r.open_error.empty()) << what;
        continue;
      }
      if (policy == CorruptPolicy::kSkip) {
        ExpectSkipInvariants(r, baseline_, what);
        // A truncated tail loses records; the loss is visible, not silent.
        EXPECT_GT(r.stats.records_missing, 0u) << what;
      } else if (r.stats.failed) {
        EXPECT_FALSE(r.stats.error.empty()) << what;
      } else {
        EXPECT_EQ(r.stats.run.updates_applied + r.stats.records_missing,
                  baseline_.run.updates_applied)
            << what;
      }
    }
  }
}

TEST_F(IngestFaultTest, DuplicatedBlocksAreNeverDoubleCounted) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultInjector fi(seed);
    auto corrupted = image_;
    fi.DuplicateRandomBlock(corrupted);
    ASSERT_GT(corrupted.size(), image_.size());
    ReplayOutcome r = RunImage(std::move(corrupted), CorruptPolicy::kSkip);
    const std::string what = "dup seed " + std::to_string(seed);
    ASSERT_TRUE(r.open_ok) << what << ": " << r.open_error;
    ASSERT_FALSE(r.stats.failed) << what << ": " << r.stats.error;
    // At-least-once delivery: results identical to exactly-once.
    EXPECT_EQ(r.stats.run.updates_applied, baseline_.run.updates_applied)
        << what;
    EXPECT_EQ(r.stats.run.new_embeddings, baseline_.run.new_embeddings) << what;
    EXPECT_EQ(r.stats.records_missing, 0u) << what;
  }
}

TEST_F(IngestFaultTest, SwappedBlocksLoseDeterministically) {
  uint64_t total_quarantined = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultInjector fi(seed);
    auto corrupted = image_;
    fi.SwapAdjacentBlocks(corrupted);
    ReplayOutcome r = RunImage(std::move(corrupted), CorruptPolicy::kSkip);
    const std::string what = "swap seed " + std::to_string(seed);
    if (!r.open_ok) {
      // Swapping dictionary blocks shifts ids — always fatal, by design.
      EXPECT_FALSE(r.open_error.empty()) << what;
      continue;
    }
    ExpectSkipInvariants(r, baseline_, what);
    total_quarantined += r.stats.blocks_quarantined;

    // Determinism: the same corrupted image replays to the same outcome.
    ReplayOutcome again = RunImage([&] {
      auto copy = image_;
      FaultInjector fi2(seed);
      fi2.SwapAdjacentBlocks(copy);
      return copy;
    }(), CorruptPolicy::kSkip);
    ASSERT_TRUE(again.open_ok) << what;
    EXPECT_EQ(again.stats.run.updates_applied, r.stats.run.updates_applied)
        << what;
    EXPECT_EQ(again.stats.run.new_embeddings, r.stats.run.new_embeddings)
        << what;
    EXPECT_EQ(again.stats.blocks_quarantined, r.stats.blocks_quarantined)
        << what;
  }
  // Across the seed sweep at least one record-block swap must have been
  // caught by the framing scan.
  EXPECT_GT(total_quarantined, 0u);
}

TEST_F(IngestFaultTest, RecordPayloadFlipsQuarantineUnderSkip) {
  FaultInjector fi(7);
  auto corrupted = image_;
  fi.FlipRecordBytes(corrupted, 3);
  ReplayOutcome r = RunImage(std::move(corrupted), CorruptPolicy::kSkip);
  ASSERT_TRUE(r.open_ok) << r.open_error;
  ExpectSkipInvariants(r, baseline_, "record flips");
  EXPECT_GT(r.stats.crc_mismatches, 0u);
  EXPECT_GT(r.stats.blocks_quarantined, 0u);
  EXPECT_FALSE(r.stats.quarantine.empty());
  EXPECT_LT(r.stats.run.updates_applied, baseline_.run.updates_applied);
}

TEST_F(IngestFaultTest, RecordPayloadFlipsFailCleanlyUnderFailPolicy) {
  FaultInjector fi(7);
  auto corrupted = image_;
  fi.FlipRecordBytes(corrupted, 3);
  ReplayOutcome r = RunImage(std::move(corrupted), CorruptPolicy::kFail);
  ASSERT_TRUE(r.open_ok) << r.open_error;
  EXPECT_TRUE(r.stats.failed);
  EXPECT_NE(r.stats.error.find("corrupt"), std::string::npos) << r.stats.error;
}

}  // namespace
}  // namespace ingest
}  // namespace gstream
