#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/interning.h"
#include "graph/update.h"
#include "ingest/crc32c.h"
#include "ingest/gsb_format.h"
#include "ingest/gsb_reader.h"
#include "ingest/gsb_writer.h"
#include "ingest/snapshot.h"

namespace gstream {
namespace ingest {
namespace {

/// Format-layer tests of the `.gsb` binary stream container and the recovery
/// snapshot file: checksum vectors, encode/decode roundtrips (multi-block,
/// deletes, file I/O), header validation, stream identity, and snapshot
/// framing — every byte written must read back exactly, and every corrupted
/// byte must be detected.

// A small stream with interned labels, multiple dict + record blocks, and a
// delete mixed in.
struct SmallStream {
  StringInterner interner;
  std::vector<EdgeUpdate> updates;
};

SmallStream MakeSmallStream(size_t num_updates = 50) {
  SmallStream s;
  std::vector<LabelId> labels;
  for (int i = 0; i < 4; ++i)
    labels.push_back(s.interner.Intern("label_" + std::to_string(i)));
  std::vector<VertexId> verts;
  for (int i = 0; i < 8; ++i)
    verts.push_back(s.interner.Intern("v" + std::to_string(i)));
  for (size_t i = 0; i < num_updates; ++i) {
    EdgeUpdate u;
    u.src = verts[i % verts.size()];
    u.label = labels[i % labels.size()];
    u.dst = verts[(i * 3 + 1) % verts.size()];
    u.op = (i % 11 == 10) ? UpdateOp::kDelete : UpdateOp::kAdd;
    s.updates.push_back(u);
  }
  return s;
}

GsbWriterOptions SmallBlocks() {
  GsbWriterOptions opt;
  opt.records_per_block = 7;
  opt.strings_per_block = 3;
  return opt;
}

// Decodes every record block of `image` back into a flat update vector,
// asserting the scan found clean framing.
std::vector<EdgeUpdate> DecodeAll(const std::vector<uint8_t>& image,
                                  StringInterner* interner_out = nullptr) {
  MemorySource src(image);
  GsbReader reader(src);
  EXPECT_TRUE(reader.Open()) << reader.error();
  std::vector<GsbBlockRef> blocks;
  EXPECT_TRUE(reader.ScanBlocks(CorruptPolicy::kFail, blocks)) << reader.error();
  EXPECT_TRUE(reader.scan_quarantine().empty());
  StringInterner interner;
  std::vector<GsbBlockRef> dict;
  std::vector<EdgeUpdate> updates;
  for (const GsbBlockRef& b : blocks)
    if (b.kind == GsbBlockKind::kDict) dict.push_back(b);
  EXPECT_TRUE(reader.DecodeDict(dict, interner)) << reader.error();
  for (const GsbBlockRef& b : blocks) {
    if (b.kind != GsbBlockKind::kRecords) continue;
    std::string reason;
    EXPECT_EQ(reader.DecodeRecords(b, updates, &reason), DecodeStatus::kOk)
        << reason;
  }
  if (interner_out != nullptr) *interner_out = std::move(interner);
  return updates;
}

TEST(Crc32cTest, KnownVectorAndChaining) {
  // The canonical CRC32C check vector.
  const char* check = "123456789";
  EXPECT_EQ(Crc32c(check, 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);

  // Seed-chaining: crc(a||b) == crc(b, seed = crc(a)).
  const std::string a = "hello, ";
  const std::string b = "gsb world";
  const std::string ab = a + b;
  EXPECT_EQ(Crc32c(ab.data(), ab.size()),
            Crc32c(b.data(), b.size(), Crc32c(a.data(), a.size())));
}

TEST(GsbFormatTest, HeaderRoundtrip) {
  SmallStream s = MakeSmallStream();
  const auto image = EncodeGsb(s.interner, s.updates, SmallBlocks());

  MemorySource src(image);
  GsbReader reader(src);
  ASSERT_TRUE(reader.Open()) << reader.error();
  EXPECT_EQ(reader.header().version, kGsbVersion);
  EXPECT_EQ(reader.header().dict_count, s.interner.size());
  EXPECT_EQ(reader.header().record_count, s.updates.size());
}

TEST(GsbFormatTest, MultiBlockRoundtripWithDeletes) {
  SmallStream s = MakeSmallStream();
  const auto image = EncodeGsb(s.interner, s.updates, SmallBlocks());

  StringInterner decoded_interner;
  const auto decoded = DecodeAll(image, &decoded_interner);
  ASSERT_EQ(decoded.size(), s.updates.size());
  EXPECT_EQ(decoded, s.updates);

  // The dictionary reconstructs with identical dense ids.
  ASSERT_EQ(decoded_interner.size(), s.interner.size());
  for (uint32_t id = 0; id < s.interner.size(); ++id)
    EXPECT_EQ(decoded_interner.Lookup(id), s.interner.Lookup(id));
}

TEST(GsbFormatTest, SingleBlockAndEmptyStreamRoundtrip) {
  SmallStream s = MakeSmallStream(3);
  // Default (large) blocks: everything in one dict + one record block.
  EXPECT_EQ(DecodeAll(EncodeGsb(s.interner, s.updates, {})), s.updates);

  StringInterner empty;
  EXPECT_TRUE(DecodeAll(EncodeGsb(empty, {}, {})).empty());
}

TEST(GsbFormatTest, FileRoundtrip) {
  SmallStream s = MakeSmallStream();
  const std::string path = testing::TempDir() + "/gsb_format_roundtrip.gsb";
  std::string error;
  ASSERT_TRUE(WriteGsbFile(path, s.interner, s.updates, &error, SmallBlocks()))
      << error;

  auto src = FileSource::Open(path, &error);
  ASSERT_NE(src, nullptr) << error;
  GsbReader reader(*src);
  ASSERT_TRUE(reader.Open()) << reader.error();
  std::vector<GsbBlockRef> blocks;
  ASSERT_TRUE(reader.ScanBlocks(CorruptPolicy::kFail, blocks)) << reader.error();
  std::vector<EdgeUpdate> decoded;
  for (const GsbBlockRef& b : blocks) {
    if (b.kind != GsbBlockKind::kRecords) continue;
    std::string reason;
    ASSERT_EQ(reader.DecodeRecords(b, decoded, &reason), DecodeStatus::kOk)
        << reason;
  }
  EXPECT_EQ(decoded, s.updates);
  std::remove(path.c_str());
}

TEST(GsbFormatTest, OpenRejectsCorruptHeaders) {
  SmallStream s = MakeSmallStream();
  const auto image = EncodeGsb(s.interner, s.updates, SmallBlocks());

  const auto expect_open_fails = [](std::vector<uint8_t> bytes,
                                    const char* what) {
    MemorySource src(std::move(bytes));
    GsbReader reader(src);
    EXPECT_FALSE(reader.Open()) << what;
    EXPECT_FALSE(reader.error().empty()) << what;
  };

  expect_open_fails({}, "empty file");
  expect_open_fails({image.begin(), image.begin() + kGsbHeaderBytes / 2},
                    "short header");

  // Every single-byte flip inside the self-checksummed header is detected.
  for (size_t pos = 0; pos < kGsbHeaderBytes; ++pos) {
    auto bytes = image;
    bytes[pos] ^= 0xFF;
    expect_open_fails(std::move(bytes),
                      ("header flip @" + std::to_string(pos)).c_str());
  }
}

TEST(GsbFormatTest, IdentityMatchesReencodeAndRejectsDifferentStream) {
  SmallStream s = MakeSmallStream();
  const auto image_a = EncodeGsb(s.interner, s.updates, SmallBlocks());
  const auto image_b = EncodeGsb(s.interner, s.updates, SmallBlocks());

  const auto identity_of = [](const std::vector<uint8_t>& image) {
    MemorySource src(image);
    GsbReader reader(src);
    EXPECT_TRUE(reader.Open()) << reader.error();
    return reader.identity();
  };

  EXPECT_EQ(identity_of(image_a), identity_of(image_b));

  auto longer = s.updates;
  longer.push_back(s.updates.front());
  EXPECT_NE(identity_of(EncodeGsb(s.interner, longer, SmallBlocks())),
            identity_of(image_a));
}

SnapshotData MakeSnapshot() {
  SnapshotData snap;
  snap.stream.header_crc = 0xDEADBEEFu;
  snap.stream.dict_count = 123;
  snap.stream.record_count = 456789;
  snap.engine_name = "TRIC+";
  snap.record_offset = 4480;
  snap.windows_finalized = 70;
  snap.updates_applied = 4480;
  snap.new_embeddings = 991;
  snap.fingerprint = 0x0123456789ABCDEFull;
  snap.satisfied = {9, 3, 7};  // Unsorted on purpose; stored ascending.
  return snap;
}

TEST(SnapshotTest, Roundtrip) {
  const std::string path = testing::TempDir() + "/gsb_snapshot_roundtrip.snap";
  const SnapshotData snap = MakeSnapshot();
  std::string error;
  ASSERT_TRUE(WriteSnapshot(path, snap, &error)) << error;

  SnapshotData got;
  ASSERT_TRUE(ReadSnapshot(path, got, &error)) << error;
  EXPECT_EQ(got.stream, snap.stream);
  EXPECT_EQ(got.engine_name, snap.engine_name);
  EXPECT_EQ(got.record_offset, snap.record_offset);
  EXPECT_EQ(got.windows_finalized, snap.windows_finalized);
  EXPECT_EQ(got.updates_applied, snap.updates_applied);
  EXPECT_EQ(got.new_embeddings, snap.new_embeddings);
  EXPECT_EQ(got.fingerprint, snap.fingerprint);
  EXPECT_EQ(got.satisfied, (std::vector<QueryId>{3, 7, 9}));
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsEveryByteFlipAndTruncation) {
  const std::string path = testing::TempDir() + "/gsb_snapshot_corrupt.snap";
  std::string error;
  ASSERT_TRUE(WriteSnapshot(path, MakeSnapshot(), &error)) << error;

  // Slurp the written bytes back so we can corrupt copies.
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> image;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    image.insert(image.end(), buf, buf + n);
  std::fclose(f);
  ASSERT_GT(image.size(), 16u);

  const auto expect_read_fails = [&](const std::vector<uint8_t>& bytes,
                                     const std::string& what) {
    FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (!bytes.empty()) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    }
    std::fclose(out);
    SnapshotData got;
    std::string err;
    EXPECT_FALSE(ReadSnapshot(path, got, &err)) << what;
    EXPECT_FALSE(err.empty()) << what;
  };

  // The header is structurally validated and the payload is checksummed, so
  // no single-byte flip anywhere in the file can go unnoticed.
  for (size_t pos = 0; pos < image.size(); ++pos) {
    auto bytes = image;
    bytes[pos] ^= 0xFF;
    expect_read_fails(bytes, "flip @" + std::to_string(pos));
  }
  // Torn writes: every truncation length is rejected.
  for (size_t keep = 0; keep < image.size(); keep += 3)
    expect_read_fails({image.begin(), image.begin() + keep},
                      "truncate to " + std::to_string(keep));

  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsAnError) {
  SnapshotData got;
  std::string error;
  EXPECT_FALSE(ReadSnapshot(testing::TempDir() + "/no_such_snapshot.snap", got,
                            &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ingest
}  // namespace gstream
