#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/driver.h"
#include "engine/engine.h"
#include "ingest/gsb_writer.h"
#include "ingest/pipeline.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace ingest {
namespace {

/// Pipeline-layer tests: the threaded decode->ring->apply path must be
/// observationally identical to RunStream over the same updates (same
/// per-update results in stream order, same aggregate counters), and the
/// three overload policies must do exactly what they advertise — block
/// (lossless backpressure), shed (counted loss, accounting closes), and
/// fail-fast (clean abort). Reader threads decode blocks out of order by
/// design; the consumer's reassembly puts them back — TSan runs this file.

struct Fixture {
  workload::Workload w;
  std::vector<QueryPattern> queries;
  std::vector<uint8_t> image;
};

Fixture MakeFixture(size_t num_updates = 600, size_t records_per_block = 16) {
  Fixture f;
  workload::SnbConfig cfg;
  cfg.num_updates = num_updates;
  cfg.seed = 11;
  cfg.num_places = 10;
  cfg.num_tags = 10;
  f.w = workload::GenerateSnb(cfg);

  workload::QueryGenConfig qcfg;
  qcfg.num_queries = 6;
  qcfg.avg_size = 4.0;
  qcfg.selectivity = 0.5;
  qcfg.overlap = 0.5;
  qcfg.seed = 5;
  f.queries = workload::GenerateQueries(f.w, qcfg).queries;

  GsbWriterOptions opt;
  opt.records_per_block = records_per_block;
  f.image = EncodeGsb(*f.w.interner, f.w.stream.updates(), opt);
  return f;
}

// The encoded dictionary reconstructs the workload interner with identical
// ids, so patterns generated against the workload register unchanged on the
// replay engine.
std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind,
                                             const Fixture& f) {
  auto engine = CreateEngine(kind);
  for (QueryId qid = 0; qid < f.queries.size(); ++qid)
    engine->AddQuery(qid, f.queries[qid]);
  return engine;
}

struct Emission {
  uint64_t index;
  UpdateResult result;
};

IngestStats ReplayCollecting(const Fixture& f, ContinuousEngine& engine,
                             const IngestOptions& opts,
                             std::vector<Emission>& out) {
  MemorySource src(f.image);
  IngestSession session;
  EXPECT_TRUE(session.Open(src, opts.on_corrupt)) << session.error();
  return session.Replay(engine, opts, [&](uint64_t idx, const UpdateResult& r) {
    out.push_back({idx, r});
  });
}

TEST(IngestPipelineTest, ThreadedReplayMatchesSequentialRunStream) {
  const Fixture f = MakeFixture();
  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kInvPlus,
                          EngineKind::kIncPlus, EngineKind::kNaive}) {
    // Sequential ground truth, one ApplyUpdate at a time.
    auto sequential = MakeEngine(kind, f);
    std::vector<UpdateResult> expected;
    ResultAccumulator acc;
    for (const EdgeUpdate& u : f.w.stream.updates()) {
      expected.push_back(sequential->ApplyUpdate(u));
      acc.Absorb(expected.back());
    }
    acc.Finish(*sequential);

    // Threaded replay: 4 decode threads, small ring, batched windows.
    auto replayed = MakeEngine(kind, f);
    IngestOptions opts;
    opts.batch_window = 8;
    opts.reader_threads = 4;
    opts.ring_capacity = 3;
    std::vector<Emission> emissions;
    IngestStats stats = ReplayCollecting(f, *replayed, opts, emissions);
    const std::string what = replayed->name();

    ASSERT_FALSE(stats.failed) << what << ": " << stats.error;
    EXPECT_EQ(stats.crc_mismatches, 0u) << what;
    EXPECT_EQ(stats.blocks_quarantined, 0u) << what;
    EXPECT_EQ(stats.records_missing, 0u) << what;

    // Aggregates agree with the driver's accounting.
    EXPECT_EQ(stats.run.updates_applied, acc.stats.updates_applied) << what;
    EXPECT_EQ(stats.run.new_embeddings, acc.stats.new_embeddings) << what;
    EXPECT_EQ(stats.run.queries_satisfied, acc.stats.queries_satisfied) << what;

    // Per-update results agree, in stream order.
    ASSERT_EQ(emissions.size(), expected.size()) << what;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(emissions[i].index, i) << what;
      EXPECT_EQ(emissions[i].result.changed, expected[i].changed)
          << what << " @" << i;
      EXPECT_EQ(emissions[i].result.triggered, expected[i].triggered)
          << what << " @" << i;
      EXPECT_EQ(emissions[i].result.per_query, expected[i].per_query)
          << what << " @" << i;
    }
  }
}

TEST(IngestPipelineTest, BlockPolicyIsLosslessUnderSlowConsumer) {
  const Fixture f = MakeFixture(600, 4);  // 150 record blocks.
  auto engine = MakeEngine(EngineKind::kTricPlus, f);
  IngestOptions opts;
  opts.batch_window = 4;
  opts.reader_threads = 2;
  opts.ring_capacity = 2;
  opts.overload = OverloadPolicy::kBlock;
  opts.consumer_stall_micros = 300;  // Force the ring full.
  std::vector<Emission> emissions;
  IngestStats stats = ReplayCollecting(f, *engine, opts, emissions);

  ASSERT_FALSE(stats.failed) << stats.error;
  EXPECT_EQ(stats.run.updates_applied, f.w.stream.size());
  EXPECT_EQ(emissions.size(), f.w.stream.size());
  EXPECT_EQ(stats.ring.batches_shed, 0u);
  EXPECT_EQ(stats.records_missing, 0u);
  // The producers actually hit backpressure (the point of the stall).
  EXPECT_GT(stats.ring.blocked_pushes, 0u);
  EXPECT_GE(stats.ring.max_occupancy, opts.ring_capacity);
}

TEST(IngestPipelineTest, ShedPolicyCountsEveryLostRecord) {
  const Fixture f = MakeFixture(600, 4);
  auto engine = MakeEngine(EngineKind::kTricPlus, f);
  IngestOptions opts;
  opts.batch_window = 4;
  opts.reader_threads = 2;
  opts.ring_capacity = 2;
  opts.overload = OverloadPolicy::kShed;
  opts.consumer_stall_micros = 1000;
  std::vector<Emission> emissions;
  IngestStats stats = ReplayCollecting(f, *engine, opts, emissions);

  ASSERT_FALSE(stats.failed) << stats.error;
  EXPECT_GT(stats.ring.batches_shed, 0u);
  EXPECT_GT(stats.ring.records_shed, 0u);
  // Nothing lost silently: applied + shed + missing == header record count.
  EXPECT_EQ(stats.run.updates_applied + stats.ring.records_shed +
                stats.records_missing,
            f.w.stream.size());
  EXPECT_EQ(emissions.size(), stats.run.updates_applied);
  // Emission indexes stay dense over the applied records.
  for (size_t i = 0; i < emissions.size(); ++i)
    EXPECT_EQ(emissions[i].index, i);
}

TEST(IngestPipelineTest, FailFastAbortsOnOverflow) {
  const Fixture f = MakeFixture(600, 4);
  auto engine = MakeEngine(EngineKind::kTricPlus, f);
  IngestOptions opts;
  opts.batch_window = 4;
  opts.reader_threads = 2;
  opts.ring_capacity = 1;
  opts.overload = OverloadPolicy::kFailFast;
  opts.consumer_stall_micros = 2000;
  std::vector<Emission> emissions;
  IngestStats stats = ReplayCollecting(f, *engine, opts, emissions);

  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("overflow"), std::string::npos) << stats.error;
}

TEST(IngestPipelineTest, ReaderThreadCountDoesNotChangeResults) {
  const Fixture f = MakeFixture(400, 8);
  std::vector<Emission> base;
  {
    auto engine = MakeEngine(EngineKind::kIncPlus, f);
    IngestOptions opts;
    opts.batch_window = 16;
    opts.reader_threads = 1;
    ASSERT_FALSE(ReplayCollecting(f, *engine, opts, base).failed);
  }
  for (int readers : {2, 4, 8}) {
    auto engine = MakeEngine(EngineKind::kIncPlus, f);
    IngestOptions opts;
    opts.batch_window = 16;
    opts.reader_threads = readers;
    opts.ring_capacity = 2;
    std::vector<Emission> got;
    IngestStats stats = ReplayCollecting(f, *engine, opts, got);
    ASSERT_FALSE(stats.failed) << stats.error;
    ASSERT_EQ(got.size(), base.size()) << readers << " readers";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i].index, base[i].index) << readers << " readers @" << i;
      EXPECT_EQ(got[i].result.per_query, base[i].result.per_query)
          << readers << " readers @" << i;
    }
  }
}

TEST(IngestPipelineTest, ReplayIsRepeatableOnOneSession) {
  const Fixture f = MakeFixture(300, 8);
  MemorySource src(f.image);
  IngestSession session;
  ASSERT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();

  uint64_t first_embeddings = 0;
  for (int round = 0; round < 2; ++round) {
    auto engine = MakeEngine(EngineKind::kTric, f);
    IngestOptions opts;
    opts.batch_window = 8;
    opts.reader_threads = 2;
    IngestStats stats = session.Replay(*engine, opts);
    ASSERT_FALSE(stats.failed) << stats.error;
    EXPECT_EQ(stats.run.updates_applied, f.w.stream.size());
    if (round == 0)
      first_embeddings = stats.run.new_embeddings;
    else
      EXPECT_EQ(stats.run.new_embeddings, first_embeddings);
  }
}

}  // namespace
}  // namespace ingest
}  // namespace gstream
