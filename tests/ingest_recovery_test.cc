#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "ingest/gsb_writer.h"
#include "ingest/pipeline.h"
#include "ingest/snapshot.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace ingest {
namespace {

/// Crash-consistency suite for snapshot/replay recovery (DESIGN.md §10): an
/// uninterrupted replay writes snapshots at finalized-window boundaries; we
/// model a crash by grabbing the snapshot file mid-run (atomic writes
/// guarantee it is a complete boundary snapshot), then recover into a FRESH
/// engine and require the resumed run to emit the uninterrupted run's tail
/// byte-identically and land on the same final counters — for every view
/// engine. Tampered snapshots (fingerprint, counters, engine, stream
/// identity, offset) must be rejected with a clean error, never applied.

constexpr size_t kWindow = 25;
constexpr uint64_t kKillIndex = 800;  // Simulated crash point (record index).

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  std::fclose(f);
  return true;
}

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

struct Emission {
  uint64_t index;
  UpdateResult result;
};

bool operator==(const Emission& a, const Emission& b) {
  return a.index == b.index && a.result.changed == b.result.changed &&
         a.result.triggered == b.result.triggered &&
         a.result.per_query == b.result.per_query;
}

class IngestRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::SnbConfig cfg;
    cfg.num_updates = 1500;
    cfg.seed = 13;
    cfg.num_places = 10;
    cfg.num_tags = 10;
    w_ = new workload::Workload(workload::GenerateSnb(cfg));

    workload::QueryGenConfig qcfg;
    qcfg.num_queries = 8;
    qcfg.avg_size = 4.0;
    qcfg.selectivity = 0.5;
    qcfg.overlap = 0.5;
    qcfg.seed = 3;
    queries_ = new std::vector<QueryPattern>(
        workload::GenerateQueries(*w_, qcfg).queries);

    image_ = new std::vector<uint8_t>(
        EncodeGsb(*w_->interner, w_->stream.updates(), {}));
  }

  static void TearDownTestSuite() {
    delete w_;
    delete queries_;
    delete image_;
    w_ = nullptr;
    queries_ = nullptr;
    image_ = nullptr;
  }

  static std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind) {
    auto engine = CreateEngine(kind);
    for (QueryId qid = 0; qid < queries_->size(); ++qid)
      engine->AddQuery(qid, (*queries_)[qid]);
    return engine;
  }

  struct FullRun {
    IngestStats stats;
    std::vector<Emission> emissions;
    std::vector<uint8_t> killed_snapshot;  ///< Bytes grabbed at the crash.
  };

  // Uninterrupted run with snapshot cadence; grabs the snapshot file's bytes
  // the moment the emission index crosses kKillIndex (the simulated crash).
  static FullRun RunFull(EngineKind kind, const std::string& snapshot_path) {
    FullRun out;
    MemorySource src(*image_);
    IngestSession session;
    EXPECT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
    auto engine = MakeEngine(kind);
    IngestOptions opts;
    opts.batch_window = kWindow;
    opts.reader_threads = 2;
    opts.ring_capacity = 4;
    opts.snapshot_every_windows = 2;
    opts.snapshot_path = snapshot_path;
    out.stats = session.Replay(
        *engine, opts, [&](uint64_t idx, const UpdateResult& r) {
          out.emissions.push_back({idx, r});
          if (idx >= kKillIndex && out.killed_snapshot.empty())
            ReadFileBytes(snapshot_path, out.killed_snapshot);
        });
    return out;
  }

  static workload::Workload* w_;
  static std::vector<QueryPattern>* queries_;
  static std::vector<uint8_t>* image_;
};

workload::Workload* IngestRecoveryTest::w_ = nullptr;
std::vector<QueryPattern>* IngestRecoveryTest::queries_ = nullptr;
std::vector<uint8_t>* IngestRecoveryTest::image_ = nullptr;

TEST_F(IngestRecoveryTest, KillAndResumeIsExactForEveryViewEngine) {
  for (EngineKind kind : PaperEngineKinds()) {
    if (kind == EngineKind::kGraphDb) continue;  // No snapshot fingerprint.
    const std::string name = EngineKindName(kind);
    const std::string snap_path =
        testing::TempDir() + "/recovery_" + name + ".snap";
    const std::string killed_path =
        testing::TempDir() + "/recovery_" + name + "_killed.snap";

    FullRun full = RunFull(kind, snap_path);
    ASSERT_FALSE(full.stats.failed) << name << ": " << full.stats.error;
    ASSERT_EQ(full.stats.run.updates_applied, w_->stream.size()) << name;
    ASSERT_GT(full.stats.snapshots_written, 0u) << name;
    ASSERT_FALSE(full.killed_snapshot.empty()) << name;
    ASSERT_TRUE(WriteFileBytes(killed_path, full.killed_snapshot)) << name;

    SnapshotData snap;
    std::string error;
    ASSERT_TRUE(ReadSnapshot(killed_path, snap, &error)) << name << ": " << error;
    EXPECT_EQ(snap.engine_name, name);
    EXPECT_GT(snap.record_offset, 0u) << name;
    EXPECT_LE(snap.record_offset, kKillIndex + kWindow) << name;
    // Snapshots land on finalized-window boundaries only.
    EXPECT_EQ(snap.record_offset % kWindow, 0u) << name;
    // The view engines expose a real state fingerprint.
    EXPECT_NE(snap.fingerprint, 0u) << name;

    // Recover into a FRESH engine with the same queries.
    MemorySource src(*image_);
    IngestSession session;
    ASSERT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
    IngestOptions opts;
    opts.batch_window = kWindow;
    opts.reader_threads = 2;
    opts.ring_capacity = 4;
    std::vector<Emission> tail;
    auto resumed = MakeEngine(kind);
    IngestStats stats = ResumeReplay(
        *resumed, session, snap, opts,
        [&](uint64_t idx, const UpdateResult& r) { tail.push_back({idx, r}); });
    ASSERT_FALSE(stats.failed) << name << ": " << stats.error;

    // Final counters match the uninterrupted run exactly.
    EXPECT_EQ(stats.run.updates_applied, full.stats.run.updates_applied) << name;
    EXPECT_EQ(stats.run.new_embeddings, full.stats.run.new_embeddings) << name;
    EXPECT_EQ(stats.run.queries_satisfied, full.stats.run.queries_satisfied)
        << name;
    EXPECT_EQ(stats.windows_finalized, full.stats.windows_finalized) << name;

    // The resumed run emits exactly the uninterrupted run's tail.
    std::vector<Emission> expected_tail;
    for (const Emission& e : full.emissions)
      if (e.index >= snap.record_offset) expected_tail.push_back(e);
    ASSERT_EQ(tail.size(), expected_tail.size()) << name;
    for (size_t i = 0; i < tail.size(); ++i)
      EXPECT_TRUE(tail[i] == expected_tail[i])
          << name << " tail emission " << i << " (record " << tail[i].index
          << ") diverged";

    std::remove(snap_path.c_str());
    std::remove(killed_path.c_str());
  }
}

class IngestRecoveryTamperTest : public IngestRecoveryTest {
 protected:
  void SetUp() override {
    snap_path_ = testing::TempDir() + "/tamper.snap";
    FullRun full = RunFull(EngineKind::kTricPlus, snap_path_);
    ASSERT_FALSE(full.stats.failed) << full.stats.error;
    ASSERT_FALSE(full.killed_snapshot.empty());
    ASSERT_TRUE(WriteFileBytes(snap_path_, full.killed_snapshot));
    std::string error;
    ASSERT_TRUE(ReadSnapshot(snap_path_, snap_, &error)) << error;
  }

  void TearDown() override { std::remove(snap_path_.c_str()); }

  // Runs ResumeReplay with `snap` against a fresh engine of `kind`; returns
  // the stats (expected to carry a failure).
  IngestStats Resume(const SnapshotData& snap,
                     EngineKind kind = EngineKind::kTricPlus) {
    MemorySource src(*image_);
    IngestSession session;
    EXPECT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
    auto engine = MakeEngine(kind);
    IngestOptions opts;
    opts.batch_window = kWindow;
    return ResumeReplay(*engine, session, snap, opts);
  }

  std::string snap_path_;
  SnapshotData snap_;
};

TEST_F(IngestRecoveryTamperTest, TamperedFingerprintIsRejected) {
  SnapshotData bad = snap_;
  bad.fingerprint ^= 1;
  IngestStats stats = Resume(bad);
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("fingerprint"), std::string::npos) << stats.error;
}

TEST_F(IngestRecoveryTamperTest, TamperedCountersAreRejected) {
  SnapshotData bad = snap_;
  bad.updates_applied += 1;
  IngestStats stats = Resume(bad);
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("cross-check"), std::string::npos) << stats.error;
}

TEST_F(IngestRecoveryTamperTest, WrongEngineIsRejected) {
  IngestStats stats = Resume(snap_, EngineKind::kInv);
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("engine"), std::string::npos) << stats.error;
}

TEST_F(IngestRecoveryTamperTest, WrongStreamIsRejected) {
  SnapshotData bad = snap_;
  bad.stream.record_count += 1;
  IngestStats stats = Resume(bad);
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("different stream"), std::string::npos)
      << stats.error;
}

TEST_F(IngestRecoveryTamperTest, MisalignedOffsetIsRejected) {
  SnapshotData bad = snap_;
  bad.record_offset += 1;  // No longer a finalized-window boundary.
  IngestStats stats = Resume(bad);
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("window boundary"), std::string::npos)
      << stats.error;
}

}  // namespace
}  // namespace ingest
}  // namespace gstream
