#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ingest/pipeline.h"
#include "ingest/ring_buffer.h"

namespace gstream {
namespace ingest {
namespace {

/// BoundedBatchRing multi-producer stress + the PopFor/overload contracts
/// the socket server's apply loop depends on. TSan runs this file: the whole
/// point is N producer threads hammering a tiny ring while one consumer
/// reassembles — any missing synchronization in the ring shows up here.

/// One producer's batches carry seqs p, p+P, p+2P, ... so the consumer can
/// attribute every record back to its producer; each record's src encodes
/// (producer, position) for the in-order reassembly check.
void ProducerThread(BoundedBatchRing& ring, OverloadPolicy policy,
                    uint32_t producer, uint32_t num_producers,
                    uint32_t batches, uint32_t records_per_batch) {
  for (uint32_t b = 0; b < batches; ++b) {
    RecordBatch batch;
    batch.seq = producer + static_cast<uint64_t>(b) * num_producers;
    for (uint32_t r = 0; r < records_per_batch; ++r) {
      EdgeUpdate u;
      u.src = producer;
      u.label = 0;
      u.dst = b * records_per_batch + r;  // position within this producer
      batch.records.push_back(u);
    }
    const auto res = ring.Push(std::move(batch), policy);
    if (res == BoundedBatchRing::PushResult::kAborted) return;
    ASSERT_NE(res, BoundedBatchRing::PushResult::kOverflow);
  }
  ring.ProducerDone();
}

struct ConsumedTotals {
  uint64_t applied_records = 0;
  uint64_t shed_records = 0;
  std::map<uint32_t, std::vector<uint32_t>> per_producer;  // positions seen
};

/// Drains the ring with the server-style reassembly: batches arrive in any
/// order; dense seq order is reconstructed, consulting TakeShed for holes.
ConsumedTotals Consume(BoundedBatchRing& ring, uint64_t total_batches) {
  ConsumedTotals totals;
  std::map<uint64_t, RecordBatch> pending;
  uint64_t next_seq = 0;
  bool done = false;
  while (!done || !pending.empty()) {
    if (!done) {
      RecordBatch batch;
      const auto st = ring.PopFor(batch, 50);
      if (st == BoundedBatchRing::PopStatus::kGot) {
        pending.emplace(batch.seq, std::move(batch));
      } else if (st == BoundedBatchRing::PopStatus::kDone) {
        done = true;
      }
    }
    for (;;) {
      auto it = pending.find(next_seq);
      if (it != pending.end()) {
        for (const EdgeUpdate& u : it->second.records)
          totals.per_producer[u.src].push_back(u.dst);
        totals.applied_records += it->second.records.size();
        pending.erase(it);
        ++next_seq;
        continue;
      }
      const int64_t shed = ring.TakeShed(next_seq);
      if (shed >= 0) {
        totals.shed_records += static_cast<uint64_t>(shed);
        ++next_seq;
        continue;
      }
      // After the ring reports done, every remaining hole must be a shed
      // batch whose note we already consumed or a seq past the end.
      if (done && next_seq < total_batches && pending.empty()) {
        // A shed note can land in `shed_` after we first probed this seq;
        // loop around once more before giving up.
        const int64_t late = ring.TakeShed(next_seq);
        if (late >= 0) {
          totals.shed_records += static_cast<uint64_t>(late);
          ++next_seq;
          continue;
        }
      }
      break;
    }
  }
  EXPECT_EQ(next_seq, total_batches);
  return totals;
}

TEST(IngestRingStress, ShedPolicyAccountingCloses) {
  constexpr uint32_t kProducers = 8;
  constexpr uint32_t kBatches = 60;
  constexpr uint32_t kRecords = 7;
  BoundedBatchRing ring(2);  // tiny: guarantees overflow pressure

  for (uint32_t p = 0; p < kProducers; ++p) ring.AddProducer();
  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      ProducerThread(ring, OverloadPolicy::kShed, p, kProducers, kBatches,
                     kRecords);
    });
  }
  ConsumedTotals totals =
      Consume(ring, static_cast<uint64_t>(kProducers) * kBatches);
  for (auto& t : producers) t.join();

  const uint64_t produced =
      static_cast<uint64_t>(kProducers) * kBatches * kRecords;
  // The reconciliation invariant: nothing vanishes without being counted.
  EXPECT_EQ(totals.applied_records + totals.shed_records, produced);
  const auto stats = ring.stats();
  EXPECT_EQ(stats.records_shed, totals.shed_records);
  EXPECT_EQ(stats.batches_pushed, static_cast<uint64_t>(kProducers) * kBatches);

  // In-order reassembly: each producer's surviving records appear in
  // strictly increasing position order (shed batches leave gaps, never
  // reorderings).
  for (const auto& [producer, positions] : totals.per_producer) {
    for (size_t i = 1; i < positions.size(); ++i)
      ASSERT_LT(positions[i - 1], positions[i])
          << "producer " << producer << " reordered at " << i;
  }
}

TEST(IngestRingStress, BlockPolicyIsLossless) {
  constexpr uint32_t kProducers = 8;
  constexpr uint32_t kBatches = 40;
  constexpr uint32_t kRecords = 5;
  BoundedBatchRing ring(2);

  for (uint32_t p = 0; p < kProducers; ++p) ring.AddProducer();
  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      ProducerThread(ring, OverloadPolicy::kBlock, p, kProducers, kBatches,
                     kRecords);
    });
  }
  ConsumedTotals totals =
      Consume(ring, static_cast<uint64_t>(kProducers) * kBatches);
  for (auto& t : producers) t.join();

  EXPECT_EQ(totals.applied_records,
            static_cast<uint64_t>(kProducers) * kBatches * kRecords);
  EXPECT_EQ(totals.shed_records, 0u);
  const auto stats = ring.stats();
  EXPECT_GT(stats.blocked_pushes, 0u) << "capacity 2 never backpressured?";
  // Every producer delivered every position, in order.
  for (uint32_t p = 0; p < kProducers; ++p) {
    const auto& positions = totals.per_producer[p];
    ASSERT_EQ(positions.size(), static_cast<size_t>(kBatches) * kRecords);
    for (size_t i = 0; i < positions.size(); ++i)
      ASSERT_EQ(positions[i], i);
  }
}

TEST(IngestRingPopFor, TimeoutThenGotThenDone) {
  BoundedBatchRing ring(4);
  ring.AddProducer();

  RecordBatch out;
  // Producers active, nothing queued: kTimeout.
  EXPECT_EQ(ring.PopFor(out, 10), BoundedBatchRing::PopStatus::kTimeout);

  RecordBatch batch;
  batch.seq = 0;
  batch.records.push_back({});
  ASSERT_EQ(ring.Push(std::move(batch), OverloadPolicy::kBlock),
            BoundedBatchRing::PushResult::kOk);
  EXPECT_EQ(ring.PopFor(out, 10), BoundedBatchRing::PopStatus::kGot);
  EXPECT_EQ(out.seq, 0u);

  // Last producer done + empty queue: kDone, immediately and repeatably.
  ring.ProducerDone();
  EXPECT_EQ(ring.PopFor(out, 10), BoundedBatchRing::PopStatus::kDone);
  EXPECT_EQ(ring.PopFor(out, 10), BoundedBatchRing::PopStatus::kDone);
}

TEST(IngestRingPopFor, AbortWakesConsumer) {
  BoundedBatchRing ring(4);
  ring.AddProducer();
  std::atomic<bool> got_done{false};
  std::thread consumer([&] {
    RecordBatch out;
    while (ring.PopFor(out, 50) != BoundedBatchRing::PopStatus::kDone) {
    }
    got_done = true;
  });
  ring.Abort();
  consumer.join();
  EXPECT_TRUE(got_done);
}

TEST(ValidateIngestOptionsTest, RejectsDegenerateConfigs) {
  IngestOptions ok;
  EXPECT_EQ(ValidateIngestOptions(ok), "");

  IngestOptions bad = ok;
  bad.batch_window = 0;
  EXPECT_NE(ValidateIngestOptions(bad), "");

  bad = ok;
  bad.batch_threads = 0;
  EXPECT_NE(ValidateIngestOptions(bad), "");

  bad = ok;
  bad.ring_capacity = 0;
  EXPECT_NE(ValidateIngestOptions(bad), "");

  bad = ok;
  bad.snapshot_every_windows = 4;  // cadence without a path
  EXPECT_NE(ValidateIngestOptions(bad), "");

  bad = ok;
  bad.snapshot_every_windows = 4;
  bad.snapshot_path = "/tmp/snap";
  bad.overload = OverloadPolicy::kShed;  // snapshots require kBlock
  EXPECT_NE(ValidateIngestOptions(bad), "");
  bad.overload = OverloadPolicy::kBlock;
  EXPECT_EQ(ValidateIngestOptions(bad), "");
}

}  // namespace
}  // namespace ingest
}  // namespace gstream
